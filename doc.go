// Package msql is a from-scratch Go reproduction of "Execution of
// Extended Multidatabase SQL" (Suardi, Rusinkiewicz, Litwin — ICDE 1993):
// the MSQL multidatabase language with the paper's extensions (VITAL
// designators, COMP compensation clauses, multitransactions with
// acceptable termination states, INCORPORATE/IMPORT dictionaries),
// executed by translating MSQL to the DOL task language and running it on
// a Narada-style engine over heterogeneous simulated local DBMSs.
//
// See README.md for an overview, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced evaluation artifacts. The root
// package exists to host bench_test.go; the implementation lives under
// internal/.
package msql
