package main

import (
	"strings"
	"testing"

	"msql/internal/demo"
)

func TestPaperExampleTranslates(t *testing.T) {
	fed, err := demo.Build(demo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fed.DryRun = true
	results, err := fed.ExecScript(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	var dolText string
	for _, r := range results {
		if r.DOL != "" {
			dolText = r.DOL
		}
	}
	for _, want := range []string{
		"TASK T1 NOCOMMIT FOR continental",
		"IF (T1=P) AND (T3=P) THEN",
		"CLOSE continental delta united;",
	} {
		if !strings.Contains(dolText, want) {
			t.Errorf("missing %q:\n%s", want, dolText)
		}
	}
}
