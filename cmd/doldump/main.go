// Command doldump shows the DOL evaluation plans the translator generates
// for an MSQL script, without executing any subquery — the tool used to
// reproduce the Section 4.3 program listing of the paper.
//
// Usage:
//
//	doldump -f script.msql
//	echo "USE continental VITAL delta united VITAL
//	      UPDATE flight% SET rate% = rate% * 1.1
//	      WHERE sour% = 'Houston' AND dest% = 'San Antonio'" | doldump
//	doldump -paper   # dump the plan for the paper's §3.2 example
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"msql/internal/demo"
)

const paperExample = `
USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
`

func main() {
	var (
		file     = flag.String("f", "", "MSQL script file")
		paper    = flag.Bool("paper", false, "dump the paper's Section 3.2/4.3 example")
		autoCont = flag.Bool("autocommit-cont", false, "continental on an autocommit-only service")
	)
	flag.Parse()

	var src string
	switch {
	case *paper:
		src = paperExample
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src = string(data)
	default:
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src = string(data)
	}

	fed, err := demo.Build(demo.Options{ContinentalAutoCommit: *autoCont})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bootstrap:", err)
		os.Exit(1)
	}
	fed.DryRun = true
	results, err := fed.ExecScript(src)
	n := 0
	for _, r := range results {
		if r.DOL == "" {
			continue
		}
		n++
		fmt.Printf("-- plan %d --\n", n)
		fmt.Print(r.DOL)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
