// Command msql is the interactive shell and script runner for the
// extended multidatabase SQL implementation. It starts the demo
// federation of the paper's appendix (five databases on five simulated
// heterogeneous services) and executes MSQL statements against it.
//
// Usage:
//
//	msql                 # interactive shell on the demo federation
//	msql -f script.msql  # run a script
//	msql -e "USE avis national" -e "SELECT %code FROM car%"
//	msql -autocommit-cont # continental on an autocommit-only service
//	msql -journal mt.j -lam-journal lamj/  # durable 2PC on both sides
//	msql -data-dir data/ -buffer-pages 256 # disk-backed service stores
//	msql -fleet 12       # also incorporate a generated mixed-capability fleet
//	msql -serve 127.0.0.1:7940 -max-sessions 64 -max-concurrent 8 \
//	     -journal mt.j -group-commit-window 2ms  # concurrent coordinator
//
// In the shell, terminate statements with ';' or an empty line. The
// commands .dol on/.dol off toggle echoing the generated DOL programs,
// and .quit exits.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"msql/internal/admit"
	"msql/internal/core"
	"msql/internal/demo"
	"msql/internal/dol"
	"msql/internal/lam"
	"msql/internal/mdserver"
	"msql/internal/mtlog"
	"msql/internal/obs"
	"msql/internal/topology"
	"msql/internal/translate"
)

// main defers everything that must happen on the way out (journal close,
// state snapshot) inside realMain so a nonzero exit cannot skip it.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		file        = flag.String("f", "", "MSQL script file to run")
		autoCont    = flag.Bool("autocommit-cont", false, "put continental on an autocommit-only service")
		showDOL     = flag.Bool("dol", false, "echo generated DOL programs")
		seed        = flag.Int64("seed", 1, "fault-injection random seed")
		stateDir    = flag.String("state", "", "directory of per-service snapshots to load at start and save at exit")
		journalPath = flag.String("journal", "", "write-ahead multitransaction journal file: replayed at start, appended during the session, closed at exit")
		lamJournal  = flag.String("lam-journal", "", "directory of per-service participant journals: each demo service is served over TCP on a fixed loopback port with durable prepared state, replayed on the next start")
		breakerN    = flag.Int("breaker-threshold", 0, "consecutive transient failures that open a site's circuit breaker (0 disables breakers)")
		breakerCool = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before admitting a half-open trial")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /debug/traces, /debug/queries, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:6060)")
		showTrace   = flag.Bool("trace", false, "print the per-task timing tree of each executed script")
		slowMS      = flag.Int("slow-query-ms", 0, "log statements slower than this many milliseconds as JSON lines (0 disables the slow-query log)")
		slowPath    = flag.String("slow-query-log", "", "slow-query log destination file (default stderr); only meaningful with -slow-query-ms")

		dataDir     = flag.String("data-dir", "", "persist every service's store on disk under this directory: committed work checkpoints to slotted heap files and survives restarts")
		bufferPages = flag.Int("buffer-pages", 0, "buffer pool frames per disk-backed service store (0 = storage default); only meaningful with -data-dir")

		fleetN    = flag.Int("fleet", 0, "stand up an in-process mixed-capability LAM fleet of this many sites (two-phase, DDL-autocommit, and autocommit-only csv backends) and INCORPORATE them alongside the demo federation (0 disables)")
		fleetSeed = flag.Int64("fleet-seed", 1, "fleet layout seed; the same seed always generates the same site mix")
		fleetCSV  = flag.Float64("fleet-csv", 0.25, "fraction of fleet sites on the flat-file csv backend with the autocommit-only profile")
		fleetDir  = flag.String("fleet-dir", "", "directory for the fleet's participant journals and csv data (default: a temp dir removed at exit)")

		serveAddr   = flag.String("serve", "", "serve the federation to concurrent remote clients on this address instead of running a shell (SIGINT shuts down)")
		maxSessions = flag.Int("max-sessions", 0, "serve mode: connection cap; clients beyond it are answered with an overload error (0 = unlimited)")
		maxConc     = flag.Int("max-concurrent", 0, "statements executing at once before admission queues by tenant (0 = ungated)")
		tenantQueue = flag.Int("tenant-queue", 8, "queued statements allowed per tenant when -max-concurrent gates; excess is shed with an overload error")
		admitWait   = flag.Duration("admit-wait", 100*time.Millisecond, "longest a statement waits in the admission queue before being shed")
		stmtTimeout = flag.Duration("stmt-timeout", 0, "per-statement execution timeout (0 = unbounded)")
		groupWindow = flag.Duration("group-commit-window", 0, "journal group-commit batch window: decisions arriving within it share one fsync (0 = every record fsyncs)")
	)
	var execs multiFlag
	flag.Var(&execs, "e", "MSQL statement to execute (repeatable)")
	flag.Parse()

	fed, err := demo.Build(demo.Options{
		ContinentalAutoCommit: *autoCont,
		Seed:                  *seed,
		DataDir:               *dataDir,
		BufferPages:           *bufferPages,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bootstrap:", err)
		return 1
	}
	if *dataDir != "" {
		// Final checkpoint on the way out; commits already checkpointed,
		// this flushes buffer pools and closes the heap files cleanly.
		defer func() {
			if err := fed.CloseServers(); err != nil {
				fmt.Fprintln(os.Stderr, "close stores:", err)
			}
		}()
	}
	if *breakerN > 0 {
		fed.SetBreaker(lam.BreakerPolicy{Threshold: *breakerN, Cooldown: *breakerCool})
	}
	// The fleet comes up before any journal recovery so recovery can dial
	// its sites, and is incorporated through the same INCORPORATE SERVICE
	// / IMPORT DATABASE path a script would use.
	if *fleetN > 0 {
		dir := *fleetDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "msql-fleet-")
			if err != nil {
				fmt.Fprintln(os.Stderr, "fleet-dir:", err)
				return 1
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		} else if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "fleet-dir:", err)
			return 1
		}
		plan := topology.Generate(topology.Spec{
			Sites: *fleetN, Seed: *fleetSeed, CSVFraction: *fleetCSV,
		})
		fleet, err := plan.Launch(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet:", err)
			return 1
		}
		defer fleet.Close()
		if _, err := fed.ExecScript(fleet.Script()); err != nil {
			fmt.Fprintln(os.Stderr, "fleet incorporate:", err)
			return 1
		}
		byProfile := map[string]int{}
		for _, s := range fleet.Sites {
			byProfile[s.Spec.Profile]++
		}
		fmt.Fprintf(os.Stderr, "fleet: %d sites incorporated (%d oracle-like 2PC, %d ingres-like, %d autocommit-only csv), journals under %s\n",
			len(fleet.Sites), byProfile[topology.ProfileOracle], byProfile[topology.ProfileIngres],
			byProfile[topology.ProfileAutoCommit], dir)
	}
	if *debugAddr != "" {
		ln, err := obs.Serve(*debugAddr, obs.Default(), obs.DefaultTracer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "debug-addr:", err)
			return 1
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "debug: http://%s/ — /metrics, /debug/traces, /debug/queries, /debug/vars, /debug/pprof\n", ln.Addr())
	}
	if *slowMS > 0 {
		dest := io.Writer(os.Stderr)
		if *slowPath != "" {
			f, err := os.OpenFile(*slowPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, "slow-query-log:", err)
				return 1
			}
			defer f.Close()
			dest = f
		}
		obs.SetSlowQueryLog(obs.NewSlowQueryLog(dest, time.Duration(*slowMS)*time.Millisecond))
		defer obs.SetSlowQueryLog(nil)
	}
	if *stateDir != "" {
		if err := loadState(fed, *stateDir); err != nil {
			fmt.Fprintln(os.Stderr, "load state:", err)
			return 1
		}
		defer func() {
			if err := saveState(fed, *stateDir); err != nil {
				fmt.Fprintln(os.Stderr, "save state:", err)
			}
		}()
	}
	// Durable participants come up before the coordinator journal is
	// replayed: Recover must be able to dial them.
	if *lamJournal != "" {
		closeLAMs, err := serveDurableLAMs(fed, *lamJournal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lam-journal:", err)
			return 1
		}
		defer closeLAMs()
	}
	if *journalPath != "" {
		j, err := mtlog.Open(*journalPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "journal:", err)
			return 1
		}
		defer j.Close()
		if *groupWindow > 0 {
			j.SetGroupCommit(*groupWindow)
		}
		fed.SetJournal(j)
		rep, err := fed.Recover(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "recover:", err)
			return 1
		}
		printRecovery(os.Stderr, rep)
	}
	if *maxConc > 0 {
		fed.SetAdmission(admit.New(admit.Config{
			MaxConcurrent:     *maxConc,
			MaxQueuePerTenant: *tenantQueue,
			MaxWait:           *admitWait,
		}))
	}
	if *stmtTimeout > 0 {
		fed.StmtTimeout = *stmtTimeout
	}

	// First SIGINT drains: execution stops at the next statement boundary,
	// the pending unit synchronizes, snapshots and the journal close
	// normally. A second SIGINT kills the process the default way.
	drain := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "\ninterrupt: draining — stopping at the next statement boundary")
		close(drain)
		signal.Stop(sigCh)
	}()
	fed.SetDrain(drain)

	// Serve mode: the federation becomes a long-running concurrent
	// coordinator; each accepted connection is an isolated session running
	// its own multitransactions in parallel with the others. The SIGINT
	// drain doubles as the shutdown signal.
	if *serveAddr != "" {
		srv, err := mdserver.Serve(*serveAddr, fed, mdserver.Options{MaxSessions: *maxSessions})
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "msql: serving on %s (max-sessions %d, max-concurrent %d)\n",
			srv.Addr(), *maxSessions, *maxConc)
		<-drain
		srv.Close()
		return 0
	}

	run := func(src string) bool {
		return runSource(fed, src, *showDOL, *showTrace, os.Stdout, os.Stderr)
	}

	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if !run(string(data)) {
			return 1
		}
	case len(execs) > 0:
		if !run(strings.Join(execs, ";\n")) {
			return 1
		}
	default:
		repl(fed, *showDOL, *showTrace, drain)
	}
	return 0
}

// printRecovery reports one journal replay on startup.
func printRecovery(w io.Writer, rep *core.RecoveryReport) {
	if rep.Multitransactions == 0 {
		fmt.Fprintln(w, "journal: clean")
		return
	}
	fmt.Fprintf(w, "journal: examined %d open multitransaction(s): %d in-doubt participant(s) resolved, %d compensation(s) completed, %d participant(s) unreachable, %d compacted\n",
		rep.Multitransactions, len(rep.Resolved), len(rep.CompRuns), len(rep.Unreachable), rep.Compacted)
	for _, p := range rep.Resolved {
		decision := "rollback"
		if p.Commit {
			decision = "commit"
		}
		fmt.Fprintf(w, "  resolved: %s session %d at %s -> %s\n", p.Entry, p.SessionID, p.Addr, decision)
	}
	for _, p := range rep.Unreachable {
		fmt.Fprintf(w, "  unreachable: %s session %d at %s (left in journal for the next pass)\n", p.Entry, p.SessionID, p.Addr)
	}
	for _, name := range rep.CompRuns {
		fmt.Fprintf(w, "  compensation re-run: %s\n", name)
	}
}

// runSource executes one script and reports whether it succeeded. A
// script fails when parsing/execution errors out, or when any produced
// result is a failed outcome: an Incorrect or Unresolved global state, an
// Aborted state for a commit-mode synchronization (an explicit ROLLBACK
// aborting is the requested outcome, not a failure), or a
// multitransaction that reached no acceptable state. Script mode exits
// nonzero on failure so msql -f works in pipelines and CI.
func runSource(fed *core.Federation, src string, showDOL, showTrace bool, out, errw io.Writer) bool {
	results, err := fed.ExecScript(src)
	ok := true
	for _, r := range results {
		printResult(out, r, showDOL)
		if scriptFailed(r) {
			ok = false
		}
	}
	if showTrace {
		printTraceTree(fed, results, out)
	}
	if errors.Is(err, core.ErrDrained) {
		fmt.Fprintln(errw, "drained: remaining statements skipped")
		return false
	}
	if err != nil {
		fmt.Fprintln(errw, "error:", err)
		return false
	}
	return ok
}

// printTraceTree renders the timing tree of the trace the script's
// results belong to (every result of one ExecScript call shares one
// trace).
func printTraceTree(fed *core.Federation, results []*core.Result, w io.Writer) {
	if fed.Tracer == nil || len(results) == 0 {
		return
	}
	id := results[len(results)-1].TraceID
	if id == "" {
		return
	}
	if ts := fed.Tracer.ByID(id); ts != nil {
		fmt.Fprint(w, obs.FormatTrace(ts))
	}
}

// scriptFailed classifies one result as a failure for script-mode exit
// status purposes.
func scriptFailed(r *core.Result) bool {
	switch r.Kind {
	case core.KindSync:
		if r.State == core.StateAborted && r.Mode == translate.SyncRollback {
			return false // the script asked for the rollback
		}
		return r.State != core.StateSuccess
	case core.KindGlobalDML:
		return r.State != core.StateSuccess
	case core.KindMultiTx:
		return r.AchievedState == nil
	default:
		return false
	}
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func repl(fed *core.Federation, showDOL, showTrace bool, drain <-chan struct{}) {
	fmt.Println("Extended MSQL shell — demo federation: continental delta united avis national")
	fmt.Println("End statements with ';' or an empty line; .dol on|off, .trace on|off, .gdd, .services, .quit")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("msql> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	draining := func() bool {
		select {
		case <-drain:
			return true
		default:
			return false
		}
	}
	flush := func() {
		src := strings.TrimSpace(buf.String())
		buf.Reset()
		if src == "" {
			return
		}
		results, err := fed.ExecScript(src)
		for _, r := range results {
			printResult(os.Stdout, r, showDOL)
		}
		if showTrace {
			printTraceTree(fed, results, os.Stdout)
		}
		if errors.Is(err, core.ErrDrained) {
			fmt.Fprintln(os.Stderr, "drained")
		} else if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == ".quit" || trimmed == ".exit":
			return
		case trimmed == ".dol on":
			showDOL = true
		case trimmed == ".dol off":
			showDOL = false
		case trimmed == ".trace on":
			showTrace = true
		case trimmed == ".trace off":
			showTrace = false
		case trimmed == ".gdd":
			printGDD(os.Stdout, fed)
		case trimmed == ".services":
			printServices(os.Stdout, fed)
		case trimmed == "":
			flush()
		default:
			buf.WriteString(line)
			buf.WriteString("\n")
			if strings.HasSuffix(trimmed, ";") && !needsMore(buf.String()) {
				flush()
			}
		}
		if draining() {
			return
		}
		prompt()
	}
	flush()
}

// needsMore reports whether the buffered text is an unfinished
// multitransaction.
func needsMore(src string) bool {
	up := strings.ToUpper(src)
	return strings.Contains(up, "BEGIN MULTITRANSACTION") &&
		!strings.Contains(up, "END MULTITRANSACTION")
}

func printResult(w io.Writer, r *core.Result, showDOL bool) {
	if showDOL && r.DOL != "" {
		fmt.Fprintln(w, "-- generated DOL program:")
		fmt.Fprint(w, r.DOL)
	}
	switch r.Kind {
	case core.KindSelect:
		if r.Multitable != nil {
			fmt.Fprint(w, r.Multitable.Format())
		}
		// A partial answer is only honest when it says what is missing:
		// name each degraded entry and why its site was skipped.
		for _, d := range r.Degraded {
			fmt.Fprintf(w, "  degraded: %s omitted — %s\n", d.Entry, d.Reason)
		}
	case core.KindSync, core.KindGlobalDML:
		fmt.Fprintf(w, "global state: %s (DOLSTATUS=%d)\n", r.State, r.Status)
		for _, name := range sortedTaskNames(r) {
			fmt.Fprintf(w, "  %-14s %-10s %d row(s)\n", name, r.TaskStates[name], r.RowsAffected[name])
		}
		for _, c := range r.Compensated {
			fmt.Fprintf(w, "  %-14s compensated\n", c)
		}
		for _, d := range r.Degraded {
			fmt.Fprintf(w, "  degraded: %s — %s\n", d.Entry, d.Reason)
		}
		for _, p := range r.Unresolved {
			decision := "rollback"
			if p.Commit {
				decision = "commit"
			}
			fmt.Fprintf(w, "  in-doubt: %s (db %s) session %d at %s — resolve to %s\n", p.Entry, p.Database, p.SessionID, p.Addr, decision)
		}
	case core.KindMultiTx:
		if r.AchievedState != nil {
			fmt.Fprintf(w, "multitransaction committed acceptable state %d: %s\n",
				r.Status, strings.Join(r.AchievedState, " AND "))
		} else {
			fmt.Fprintf(w, "multitransaction failed: no acceptable state reachable (DOLSTATUS=%d)\n", r.Status)
		}
		for _, name := range sortedTaskNames(r) {
			fmt.Fprintf(w, "  %-14s %s\n", name, r.TaskStates[name])
		}
		for _, p := range r.Unresolved {
			decision := "rollback"
			if p.Commit {
				decision = "commit"
			}
			fmt.Fprintf(w, "  in-doubt: %s (db %s) session %d at %s — resolve to %s\n", p.Entry, p.Database, p.SessionID, p.Addr, decision)
		}
	case core.KindExplain:
		if r.Plan != nil {
			if r.PlanJSON {
				fmt.Fprintln(w, r.Plan.JSON())
			} else {
				fmt.Fprint(w, r.Plan.Render())
			}
		}
	case core.KindIncorporate:
		fmt.Fprintln(w, "service incorporated")
	case core.KindImport:
		fmt.Fprintln(w, "database imported")
	}
	for _, s := range r.Skipped {
		fmt.Fprintf(w, "  (skipped %s: %s)\n", s.Entry.Name, s.Reason)
	}
	for _, trig := range r.TriggersFired {
		fmt.Fprintf(w, "  (trigger %s fired)\n", trig)
	}
	for _, name := range sortedTaskNames(r) {
		if r.TaskStates[name] == dol.StatusError {
			fmt.Fprintf(w, "  warning: %s ended in engine error\n", name)
		}
	}
}

// demoServices are the services of the demo federation, used for
// per-service state snapshots.
var demoServices = []string{"svc_cont", "svc_delta", "svc_unit", "svc_avis", "svc_natl"}

// lamBasePort numbers the fixed loopback ports of -lam-journal TCP
// services. The ports must be stable across msql restarts: the
// coordinator journal records participant addresses at prepare time and
// recovery re-dials them.
const lamBasePort = 7841

// serveDurableLAMs puts every demo service behind a TCP LAM with a
// participant journal under dir, re-registering the federation's clients
// so synchronization points run over the wire with durable PREPARED
// votes. Starting a server replays whatever prepared state the previous
// process left in its journal. Returns a closer that shuts the servers
// down (parked in-doubt sessions stay journaled for the next start).
func serveDurableLAMs(fed *core.Federation, dir string) (func(), error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var servers []*lam.TCPServer
	closeAll := func() {
		for _, ts := range servers {
			ts.Close()
		}
	}
	for i, svc := range demoServices {
		path := filepath.Join(dir, svc+".journal")
		j, err := mtlog.OpenParticipant(path)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("%s: %w", svc, err)
		}
		addr := fmt.Sprintf("127.0.0.1:%d", lamBasePort+i)
		ts, err := lam.ServeWith(addr, fed.Server(svc), lam.ServeOptions{
			Journal:      j,
			TombstoneTTL: 5 * time.Minute,
		})
		if err != nil {
			j.Close()
			closeAll()
			return nil, fmt.Errorf("%s on %s: %w", svc, addr, err)
		}
		servers = append(servers, ts)
		c, err := lam.DialWith(context.Background(), ts.Addr(), lam.DialOptions{})
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("dial %s: %w", ts.Addr(), err)
		}
		fed.RegisterClient(svc, c)
		if n := len(ts.InDoubt()); n > 0 {
			fmt.Fprintf(os.Stderr, "lam: %s on %s (journal %s) — %d in-doubt session(s) replayed\n", svc, ts.Addr(), path, n)
		} else {
			fmt.Fprintf(os.Stderr, "lam: %s on %s (journal %s)\n", svc, ts.Addr(), path)
		}
	}
	return closeAll, nil
}

// loadState restores per-service snapshots from dir, skipping services
// without a snapshot file, then re-imports the restored schemas so the
// GDD reflects tables created in earlier sessions.
func loadState(fed *core.Federation, dir string) error {
	loaded := false
	for _, svc := range demoServices {
		path := filepath.Join(dir, svc+".snap")
		f, err := os.Open(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return err
		}
		err = fed.Server(svc).Store().Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		loaded = true
	}
	if !loaded {
		return nil
	}
	reimport := `
IMPORT DATABASE continental FROM SERVICE svc_cont;
IMPORT DATABASE delta FROM SERVICE svc_delta;
IMPORT DATABASE united FROM SERVICE svc_unit;
IMPORT DATABASE avis FROM SERVICE svc_avis;
IMPORT DATABASE national FROM SERVICE svc_natl;
`
	_, err := fed.ExecScript(reimport)
	return err
}

// saveState snapshots every demo service into dir.
func saveState(fed *core.Federation, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, svc := range demoServices {
		path := filepath.Join(dir, svc+".snap")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = fed.Server(svc).Store().Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

// printGDD lists the Global Data Dictionary contents.
func printGDD(w io.Writer, fed *core.Federation) {
	for _, dbName := range fed.GDD.DatabaseNames() {
		db, err := fed.GDD.Database(dbName)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "%s (service %s)\n", db.Name, db.Service)
		var tables []string
		for name := range db.Tables {
			tables = append(tables, name)
		}
		sort.Strings(tables)
		for _, name := range tables {
			def := db.Tables[name]
			kind := "table"
			if def.IsView {
				kind = "view"
			}
			fmt.Fprintf(w, "  %-20s %s(%s)\n", name, kind+" ", strings.Join(def.ColumnNames(), ", "))
		}
	}
	if mds := fed.GDD.MultidatabaseNames(); len(mds) > 0 {
		for _, name := range mds {
			members, _ := fed.GDD.Multidatabase(name)
			fmt.Fprintf(w, "multidatabase %s = %s\n", name, strings.Join(members, ", "))
		}
	}
}

// printServices lists the Auxiliary Directory contents.
func printServices(w io.Writer, fed *core.Federation) {
	for _, name := range fed.AD.Names() {
		entry, err := fed.AD.Lookup(name)
		if err != nil {
			continue
		}
		connect := "NOCONNECT"
		if entry.Connect {
			connect = "CONNECT"
		}
		commit := "NOCOMMIT (2PC)"
		if entry.AutoCommitOnly {
			commit = "COMMIT (autocommit only)"
		}
		site := entry.Site
		if site == "" {
			site = "(in-process)"
		}
		fmt.Fprintf(w, "%-12s site %-18s %-10s %s", name, site, connect, commit)
		for _, class := range []string{"CREATE", "INSERT", "DROP"} {
			if entry.DDLCommit[class] {
				fmt.Fprintf(w, " %s=COMMIT", class)
			}
		}
		fmt.Fprintln(w)
	}
}

func sortedTaskNames(r *core.Result) []string {
	names := make([]string, 0, len(r.TaskStates))
	for n := range r.TaskStates {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
