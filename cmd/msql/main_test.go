package main

import (
	"strings"
	"testing"

	"msql/internal/core"
	"msql/internal/demo"
	"msql/internal/ldbms"
)

func TestNeedsMore(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"SELECT 1;", false},
		{"BEGIN MULTITRANSACTION\nUSE a;", true},
		{"begin multitransaction use a commit a end multitransaction;", false},
		{"USE avis;", false},
	}
	for _, c := range cases {
		if got := needsMore(c.src); got != c.want {
			t.Errorf("needsMore(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestPrintResultShapes(t *testing.T) {
	fed, err := demo.Build(demo.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	check := func(script string, wantSubstrings ...string) {
		t.Helper()
		results, err := fed.ExecScript(script)
		if err != nil {
			t.Fatalf("%s: %v", script, err)
		}
		var b strings.Builder
		for _, r := range results {
			printResult(&b, r, true)
		}
		out := b.String()
		for _, want := range wantSubstrings {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	}
	check("USE avis\nSELECT code FROM cars WHERE carst = 'available'",
		"-- avis", "code", "generated DOL program")
	check("USE avis VITAL\nUPDATE cars SET rate = rate + 1 WHERE code = 1\nCOMMIT",
		"global state: success", "avis", "1 row(s)")
	check(`BEGIN MULTITRANSACTION
USE avis
UPDATE cars SET carst = 'TAKEN' WHERE code = 1
COMMIT avis
END MULTITRANSACTION`,
		"multitransaction committed acceptable state 0: avis")
	check("USE avis national\nSELECT code FROM cars%",
		"(skipped national")
}

func TestPrintGDDAndServices(t *testing.T) {
	fed, err := demo.Build(demo.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.ExecScript("CREATE MULTIDATABASE airlines (continental, delta, united)"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	printGDD(&b, fed)
	out := b.String()
	for _, want := range []string{
		"continental (service svc_cont)",
		"flights",
		"multidatabase airlines = continental, delta, united",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gdd output missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	printServices(&b, fed)
	out = b.String()
	for _, want := range []string{
		"svc_cont", "NOCOMMIT (2PC)", "CREATE=COMMIT", "NOCONNECT",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("services output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSourceExitStatus(t *testing.T) {
	build := func() *core.Federation {
		t.Helper()
		fed, err := demo.Build(demo.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return fed
	}

	t.Run("success", func(t *testing.T) {
		fed := build()
		var out, errw strings.Builder
		if !runSource(fed, "USE avis VITAL\nUPDATE cars SET rate = rate + 1 WHERE code = 1\nCOMMIT", false, false, &out, &errw) {
			t.Fatalf("script should succeed; stderr: %s", errw.String())
		}
	})

	t.Run("parse error fails", func(t *testing.T) {
		fed := build()
		var out, errw strings.Builder
		if runSource(fed, "NOT A STATEMENT", false, false, &out, &errw) {
			t.Fatal("malformed script should fail")
		}
		if !strings.Contains(errw.String(), "error:") {
			t.Fatalf("stderr = %s", errw.String())
		}
	})

	t.Run("aborted vital commit fails", func(t *testing.T) {
		fed := build()
		fed.Server("svc_avis").Faults().Add(ldbms.FaultRule{Op: ldbms.FaultPrepare})
		var out, errw strings.Builder
		if runSource(fed, "USE avis VITAL\nUPDATE cars SET rate = rate + 1 WHERE code = 1\nCOMMIT", false, false, &out, &errw) {
			t.Fatalf("aborted vital unit should fail script; output:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "global state: aborted") {
			t.Fatalf("output = %s", out.String())
		}
	})

	t.Run("explicit rollback is not a failure", func(t *testing.T) {
		fed := build()
		var out, errw strings.Builder
		if !runSource(fed, "USE avis VITAL\nUPDATE cars SET rate = rate + 1 WHERE code = 1\nROLLBACK", false, false, &out, &errw) {
			t.Fatalf("requested rollback should not fail the script; output:\n%s%s", out.String(), errw.String())
		}
	})
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	m.Set("a")
	m.Set("b")
	if m.String() != "a; b" || len(m) != 2 {
		t.Fatalf("m = %v", m)
	}
}

func TestPrintIncorporateImport(t *testing.T) {
	fed, err := demo.Build(demo.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	results, err := fed.ExecScript(`
INCORPORATE SERVICE svc_avis CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE avis FROM SERVICE svc_avis
`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range results {
		printResult(&b, r, false)
	}
	if !strings.Contains(b.String(), "service incorporated") || !strings.Contains(b.String(), "database imported") {
		t.Fatalf("out = %s", b.String())
	}
}
