// Command msqlbench regenerates every experiment of EXPERIMENTS.md: the
// paper's worked examples as outcome tables (E1–E5), the architecture
// exercises (F1, F2), and the performance measurements backing the
// paper's qualitative claims (B1–B6).
//
// Usage:
//
//	msqlbench            # run everything
//	msqlbench -only B1   # run one experiment
//	msqlbench -quick     # smaller sizes for a fast pass
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"msql/internal/experiments"
)

func main() {
	var (
		only  = flag.String("only", "", "run a single experiment (E1..E5, F1, F2, B1..B8)")
		quick = flag.Bool("quick", false, "reduced sizes for a fast pass")
	)
	flag.Parse()

	iters := 200
	b1Rows, b1Iters := 3000, 5
	b3Ops := 30
	f2Sizes := []int{4, 16, 64, 256}
	b4Sizes := []int{1, 8, 64, 512}
	b6Sizes := []int{100, 400, 1600}
	if *quick {
		iters = 20
		b1Rows, b1Iters = 500, 2
		b3Ops = 8
		f2Sizes = []int{4, 16}
		b4Sizes = []int{1, 8, 64}
		b6Sizes = []int{100, 400}
	}

	type experiment struct {
		id  string
		run func() error
	}
	printTable := func(t *experiments.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(t.Format())
		return nil
	}
	all := []experiment{
		{"E1", func() error { return printTable(experiments.E1Multitable()) }},
		{"E2", func() error { return printTable(experiments.E2OutcomeMatrix()) }},
		{"E3", func() error { return printTable(experiments.E3Paths()) }},
		{"E4", func() error { return printTable(experiments.E4States()) }},
		{"E5", func() error {
			prog, err := experiments.E5Program()
			if err != nil {
				return err
			}
			fmt.Println("== E5: Section 4.3 DOL program listing (regenerated) ==")
			fmt.Println(prog)
			return nil
		}},
		{"F1", func() error { return printTable(experiments.F1PhaseBreakdown(iters)) }},
		{"F2", func() error { return printTable(experiments.F2ImportScaling(f2Sizes)) }},
		{"B1", func() error {
			return printTable(experiments.B1Parallelism([]int{1, 2, 4, 8}, b1Rows, b1Iters, 2*time.Millisecond))
		}},
		{"B2", func() error { return printTable(experiments.B2CommitModes(iters * 3)) }},
		{"B3", func() error { return printTable(experiments.B3EarlyRelease(4, b3Ops, 2*time.Millisecond)) }},
		{"B4", func() error { return printTable(experiments.B4Substitution(b4Sizes, iters)) }},
		{"B5", func() error { return printTable(experiments.B5Transport(iters * 2)) }},
		{"B6", func() error { return printTable(experiments.B6CrossJoin(b6Sizes, 3)) }},
		{"B7", func() error { return printTable(experiments.B7ConsistencyLevels(iters)) }},
		{"B8", func() error { return printTable(experiments.B8SyncGranularity(8, iters/2)) }},
		{"B9", func() error { return printTable(experiments.B9JoinOptimization(b6Sizes[len(b6Sizes)-1]/2, 3)) }},
	}

	ran := 0
	for _, e := range all {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		ran++
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(1)
	}
}
