// Command msqlbench regenerates every experiment of EXPERIMENTS.md: the
// paper's worked examples as outcome tables (E1–E5), the architecture
// exercises (F1, F2), and the performance measurements backing the
// paper's qualitative claims (B1–B6).
//
// Usage:
//
//	msqlbench            # run everything
//	msqlbench -only B1   # run one experiment
//	msqlbench -quick     # smaller sizes for a fast pass
//
// With -clients N it instead runs the concurrency benchmark: N client
// connections against a served coordinator, each committing two-site
// vital units through a group-committing journal, reporting throughput,
// latency percentiles, and the decisions-per-fsync batching ratio
// (written as BENCH_concurrency.json; -baseline FILE fails the run if
// throughput drops under half a recorded baseline).
//
// With -rows N it runs the storage benchmark: a disk-backed table of N
// rows behind a buffer pool deliberately smaller than the table, timing
// bulk load, a full sequential scan, and point lookups through the
// primary-key B-tree versus the same lookups with the index disabled
// (written as BENCH_storage.json; -baseline FILE fails the run on a >2x
// regression in lookup or scan latency).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"msql/internal/experiments"
	"msql/internal/obs"
)

// report is the machine-readable form of one msqlbench run, written as
// BENCH_obs.json: every experiment table plus a snapshot of the process's
// federation metrics (the sites here are in-process, but the counters and
// latency histograms accumulate all the same).
type report struct {
	GeneratedAt string                `json:"generated_at"`
	Quick       bool                  `json:"quick"`
	Only        string                `json:"only,omitempty"`
	Experiments []*experiments.Table  `json:"experiments"`
	Listings    map[string]string     `json:"listings,omitempty"`
	Obs         *experiments.ObsStats `json:"obs,omitempty"`
	Metrics     map[string]any        `json:"metrics"`
}

// checkObsBaseline is the experiments-mode regression smoke against a
// committed BENCH_obs.json: the EXPLAIN ANALYZE path must not get over
// 2x slower, the federation plan for the reference join must keep its
// shape, and every metric name present in the baseline snapshot must
// still be registered (a vanished metric is a broken dashboard).
func checkObsBaseline(rep *report, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	base := &report{}
	if err := json.Unmarshal(data, base); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if base.Obs != nil && rep.Obs != nil {
		if base.Obs.AnalyzeUS > 0 && rep.Obs.AnalyzeUS > 2*base.Obs.AnalyzeUS {
			return fmt.Errorf("EXPLAIN ANALYZE regression: %.1f us is over 2x the baseline %.1f us",
				rep.Obs.AnalyzeUS, base.Obs.AnalyzeUS)
		}
		if base.Obs.PlanNodes != rep.Obs.PlanNodes {
			return fmt.Errorf("federation plan shape changed: %d nodes, baseline has %d",
				rep.Obs.PlanNodes, base.Obs.PlanNodes)
		}
	}
	var missing []string
	for name := range base.Metrics {
		if _, ok := rep.Metrics[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("metrics gone since the baseline: %s", strings.Join(missing, ", "))
	}
	fmt.Printf("baseline check passed: analyze %.1f us vs baseline %.1f us, %d metrics all present\n",
		rep.Obs.AnalyzeUS, base.Obs.AnalyzeUS, len(base.Metrics))
	return nil
}

func main() {
	var (
		only     = flag.String("only", "", "run a single experiment (E1..E5, F1, F2, B1..B8)")
		quick    = flag.Bool("quick", false, "reduced sizes for a fast pass")
		jsonPath = flag.String("json", "BENCH_obs.json", "write experiment tables and a metrics snapshot to this JSON file (empty disables)")

		clients  = flag.Int("clients", 0, "run the concurrency benchmark with this many concurrent client sessions (0 runs the experiments)")
		opsPer   = flag.Int("ops", 50, "operations per client in -clients mode")
		window   = flag.Duration("window", 2*time.Millisecond, "group-commit batch window in -clients mode")
		baseline = flag.String("baseline", "", "baseline JSON from a previous run of the same mode: fail on regression")

		rows     = flag.Int("rows", 0, "run the storage benchmark with a disk-backed table of this many rows (0 runs the experiments)")
		bufPages = flag.Int("buffer-pages", 128, "buffer pool frames in -rows mode; keep it smaller than the table to exercise eviction")
		lookups  = flag.Int("lookups", 2000, "point lookups to time in -rows mode")
	)
	flag.Parse()

	if *rows > 0 {
		out := *jsonPath
		if out == "BENCH_obs.json" {
			out = "BENCH_storage.json"
		}
		if err := runStorage(*rows, *bufPages, *lookups, out, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "storage bench:", err)
			os.Exit(1)
		}
		return
	}

	if *clients > 0 {
		out := *jsonPath
		if out == "BENCH_obs.json" {
			out = "BENCH_concurrency.json"
		}
		if err := runConcurrency(*clients, *opsPer, *window, out, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "concurrency bench:", err)
			os.Exit(1)
		}
		return
	}

	iters := 200
	b1Rows, b1Iters := 3000, 5
	b3Ops := 30
	f2Sizes := []int{4, 16, 64, 256}
	b4Sizes := []int{1, 8, 64, 512}
	b6Sizes := []int{100, 400, 1600}
	if *quick {
		iters = 20
		b1Rows, b1Iters = 500, 2
		b3Ops = 8
		f2Sizes = []int{4, 16}
		b4Sizes = []int{1, 8, 64}
		b6Sizes = []int{100, 400}
	}

	type experiment struct {
		id  string
		run func() error
	}
	rep := &report{Quick: *quick, Only: *only, Listings: make(map[string]string)}
	printTable := func(t *experiments.Table, err error) error {
		if err != nil {
			return err
		}
		rep.Experiments = append(rep.Experiments, t)
		fmt.Println(t.Format())
		return nil
	}
	all := []experiment{
		{"E1", func() error { return printTable(experiments.E1Multitable()) }},
		{"E2", func() error { return printTable(experiments.E2OutcomeMatrix()) }},
		{"E3", func() error { return printTable(experiments.E3Paths()) }},
		{"E4", func() error { return printTable(experiments.E4States()) }},
		{"E5", func() error {
			prog, err := experiments.E5Program()
			if err != nil {
				return err
			}
			fmt.Println("== E5: Section 4.3 DOL program listing (regenerated) ==")
			fmt.Println(prog)
			rep.Listings["E5"] = prog
			return nil
		}},
		{"F1", func() error { return printTable(experiments.F1PhaseBreakdown(iters)) }},
		{"F2", func() error { return printTable(experiments.F2ImportScaling(f2Sizes)) }},
		{"B1", func() error {
			return printTable(experiments.B1Parallelism([]int{1, 2, 4, 8}, b1Rows, b1Iters, 2*time.Millisecond))
		}},
		{"B2", func() error { return printTable(experiments.B2CommitModes(iters * 3)) }},
		{"B3", func() error { return printTable(experiments.B3EarlyRelease(4, b3Ops, 2*time.Millisecond)) }},
		{"B4", func() error { return printTable(experiments.B4Substitution(b4Sizes, iters)) }},
		{"B5", func() error { return printTable(experiments.B5Transport(iters * 2)) }},
		{"B6", func() error { return printTable(experiments.B6CrossJoin(b6Sizes, 3)) }},
		{"B7", func() error { return printTable(experiments.B7ConsistencyLevels(iters)) }},
		{"B8", func() error { return printTable(experiments.B8SyncGranularity(8, iters/2)) }},
		{"B9", func() error { return printTable(experiments.B9JoinOptimization(b6Sizes[len(b6Sizes)-1]/2, 3)) }},
		{"B10", func() error {
			tbl, stats, err := experiments.B10ObservabilityOverhead(iters)
			if err != nil {
				return err
			}
			rep.Obs = stats
			return printTable(tbl, nil)
		}},
	}

	ran := 0
	for _, e := range all {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		ran++
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(1)
	}
	if *jsonPath != "" {
		rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		rep.Metrics = obs.Default().Snapshot()
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "marshal report:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "write report:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiment tables)\n", *jsonPath, len(rep.Experiments))
	}
	if *baseline != "" {
		if err := checkObsBaseline(rep, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "baseline:", err)
			os.Exit(1)
		}
	}
}
