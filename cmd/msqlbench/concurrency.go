package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"msql/internal/core"
	"msql/internal/ldbms"
	"msql/internal/mdserver"
	"msql/internal/mtlog"
)

// concReport is the machine-readable form of one concurrency run,
// written as BENCH_concurrency.json and consumed by -baseline for
// regression smoke checks.
type concReport struct {
	GeneratedAt         string  `json:"generated_at"`
	Clients             int     `json:"clients"`
	OpsPerClient        int     `json:"ops_per_client"`
	GroupCommitWindowMS float64 `json:"group_commit_window_ms"`
	Commits             int64   `json:"commits"`
	Aborts              int64   `json:"aborts"`
	ElapsedMS           float64 `json:"elapsed_ms"`
	OpsPerSec           float64 `json:"ops_per_sec"`
	P50MS               float64 `json:"p50_ms"`
	P99MS               float64 `json:"p99_ms"`
	// SyncRecords counts journaled sync (decision) batches; Fsyncs the
	// fsync calls that made them durable. Group commit is working when
	// fsyncs < sync records: one flush acknowledged many decisions.
	SyncRecords int64 `json:"sync_records"`
	Fsyncs      int64 `json:"fsyncs"`
}

// benchFederation builds a two-site federation with one disjoint table
// pair per client, so the run measures coordinator pipeline and group
// commit rather than storage lock contention.
func benchFederation(clients int) (*core.Federation, error) {
	fed := core.New()
	for _, s := range []struct{ svc, db string }{
		{"svc_delta", "delta"},
		{"svc_unit", "united"},
	} {
		srv := fed.AddLocalService(s.svc, ldbms.ProfileOracleLike(), 0)
		if err := srv.CreateDatabase(s.db); err != nil {
			return nil, err
		}
		sess, err := srv.OpenSession(s.db)
		if err != nil {
			return nil, err
		}
		for i := 0; i < clients; i++ {
			ddl := fmt.Sprintf("CREATE TABLE bench%03d (id INTEGER, who CHAR(20), amt FLOAT)", i)
			if _, err := sess.Exec(ddl); err != nil {
				return nil, fmt.Errorf("bootstrap %s: %w", s.db, err)
			}
		}
		if err := sess.Commit(); err != nil {
			return nil, err
		}
		sess.Close()
	}
	setup := `
INCORPORATE SERVICE svc_delta CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
INCORPORATE SERVICE svc_unit CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE delta FROM SERVICE svc_delta;
IMPORT DATABASE united FROM SERVICE svc_unit;
`
	if _, err := fed.ExecScript(setup); err != nil {
		return nil, err
	}
	return fed, nil
}

// runConcurrency serves the bench federation over the wire protocol and
// drives N concurrent client connections, each committing two-site
// %-fanout vital units. It reports throughput, latency percentiles, and
// the journal's sync-vs-fsync counts proving group commit batched.
func runConcurrency(clients, ops int, window time.Duration, jsonPath, baselinePath string) error {
	fed, err := benchFederation(clients)
	if err != nil {
		return fmt.Errorf("build federation: %w", err)
	}
	dir, err := os.MkdirTemp("", "msqlbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	j, err := mtlog.Open(filepath.Join(dir, "coord.journal"))
	if err != nil {
		return err
	}
	defer j.Close()
	j.SetGroupCommit(window)
	fed.SetJournal(j)

	srv, err := mdserver.Serve("127.0.0.1:0", fed, mdserver.Options{MaxSessions: clients + 4})
	if err != nil {
		return err
	}
	defer srv.Close()

	var commits, aborts atomic.Int64
	latCh := make(chan []time.Duration, clients)
	errCh := make(chan error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := mdserver.Dial(srv.Addr(), fmt.Sprintf("t%d", i%4))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			lats := make([]time.Duration, 0, ops)
			for n := 0; n < ops; n++ {
				src := fmt.Sprintf(`USE delta VITAL united VITAL;
INSERT INTO bench%03d%% VALUES (%d, 'c%d', 1.0);
COMMIT;`, i, i*1_000_000+n, i)
				opStart := time.Now()
				res, err := c.Script(context.Background(), src)
				if err != nil {
					errCh <- fmt.Errorf("client %d op %d: %w", i, n, err)
					return
				}
				committed := false
				for _, r := range res {
					if r.Kind == "sync" && r.State == "success" {
						committed = true
					}
				}
				if committed {
					commits.Add(1)
					lats = append(lats, time.Since(opStart))
				} else {
					aborts.Add(1)
				}
			}
			latCh <- lats
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	close(latCh)
	for err := range errCh {
		return err
	}

	var lats []time.Duration
	for l := range latCh {
		lats = append(lats, l...)
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p int) float64 {
		if len(lats) == 0 {
			return 0
		}
		return float64(lats[(len(lats)*p)/100].Microseconds()) / 1000
	}
	syncs, fsyncs := j.SyncStats()

	rep := &concReport{
		GeneratedAt:         time.Now().UTC().Format(time.RFC3339),
		Clients:             clients,
		OpsPerClient:        ops,
		GroupCommitWindowMS: float64(window.Microseconds()) / 1000,
		Commits:             commits.Load(),
		Aborts:              aborts.Load(),
		ElapsedMS:           float64(elapsed.Microseconds()) / 1000,
		OpsPerSec:           float64(commits.Load()) / elapsed.Seconds(),
		P50MS:               pct(50),
		P99MS:               pct(99),
		SyncRecords:         syncs,
		Fsyncs:              fsyncs,
	}

	fmt.Printf("== Concurrency: %d clients x %d two-site commit units ==\n", clients, ops)
	fmt.Printf("committed %d units (%d aborts) in %v: %.0f units/sec, p50 %.2fms, p99 %.2fms\n",
		rep.Commits, rep.Aborts, elapsed.Round(time.Millisecond), rep.OpsPerSec, rep.P50MS, rep.P99MS)
	fmt.Printf("journal: %d sync records, %d fsyncs (group commit window %v)\n", syncs, fsyncs, window)
	if fsyncs < syncs {
		fmt.Printf("group commit batched: %.1f decisions per fsync\n", float64(syncs)/float64(fsyncs))
	} else {
		fmt.Printf("warning: no group-commit batching observed (fsyncs >= sync records)\n")
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}

	if baselinePath != "" {
		base := &concReport{}
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if err := json.Unmarshal(data, base); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if base.OpsPerSec > 0 && rep.OpsPerSec < base.OpsPerSec/2 {
			return fmt.Errorf("throughput regression: %.0f units/sec is under half the baseline %.0f",
				rep.OpsPerSec, base.OpsPerSec)
		}
		fmt.Printf("baseline check passed: %.0f units/sec vs baseline %.0f (floor %.0f)\n",
			rep.OpsPerSec, base.OpsPerSec, base.OpsPerSec/2)
	}
	return nil
}
