package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"msql/internal/relstore"
	"msql/internal/sqlengine"
	"msql/internal/sqlval"
)

// storageReport is the machine-readable form of one storage run, written
// as BENCH_storage.json and consumed by -baseline for regression smoke
// checks. The interesting numbers are the index-vs-scan point-lookup
// speedup and the buffer-pool counters proving the working set exceeded
// the pool.
type storageReport struct {
	GeneratedAt string `json:"generated_at"`
	Rows        int    `json:"rows"`
	BufferPages int    `json:"buffer_pages"`
	Lookups     int    `json:"lookups"`

	LoadMS      float64 `json:"load_ms"`
	LoadRowsSec float64 `json:"load_rows_per_sec"`
	SeqScanMS   float64 `json:"seqscan_ms"` // one full-table aggregate scan

	IndexLookupUS float64 `json:"index_lookup_us"` // per point lookup, B-tree probe
	ScanLookupUS  float64 `json:"scan_lookup_us"`  // per point lookup, forced seq scan
	Speedup       float64 `json:"speedup"`         // scan / index

	PoolHits      int64 `json:"pool_hits"`
	PoolMisses    int64 `json:"pool_misses"`
	PoolEvictions int64 `json:"pool_evictions"`
}

// runStorage loads a disk-backed table deliberately larger than the
// buffer pool, then measures sequential scans and point lookups with the
// primary-key index against the same lookups with the index disabled.
func runStorage(rows, bufferPages, lookups int, jsonPath, baselinePath string) error {
	dir, err := os.MkdirTemp("", "msqlbench-storage")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := relstore.Open(relstore.Options{Dir: dir, PoolPages: bufferPages})
	if err != nil {
		return err
	}
	defer st.Close()
	if err := st.CreateDatabase("bench"); err != nil {
		return err
	}

	// Load in batches so no single transaction pins the whole table's
	// undo state, checkpointing once at the end.
	loadStart := time.Now()
	tx := st.Begin()
	if _, err := sqlengine.ExecuteSQL(tx, "bench",
		`CREATE TABLE rec (id INTEGER PRIMARY KEY, grp INTEGER, payload CHAR(32))`); err != nil {
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	const batch = 5000
	for lo := 0; lo < rows; lo += batch {
		tx := st.Begin()
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		for i := lo; i < hi; i++ {
			row := relstore.Row{
				sqlval.Int(int64(i)),
				sqlval.Int(int64(i % 97)),
				sqlval.Str(fmt.Sprintf("payload-%024d", i)),
			}
			if err := tx.Insert("bench", "rec", row); err != nil {
				tx.Rollback()
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	if err := st.Checkpoint(); err != nil {
		return err
	}
	loadDur := time.Since(loadStart)

	query := func(q string) (*sqlengine.Result, error) {
		tx := st.Begin()
		defer tx.Rollback()
		return sqlengine.ExecuteSQL(tx, "bench", q)
	}

	// One warm-up scan, then a timed full scan through the pool.
	if _, err := query(`SELECT COUNT(*) FROM rec`); err != nil {
		return err
	}
	scanStart := time.Now()
	res, err := query(`SELECT COUNT(*) FROM rec`)
	if err != nil {
		return err
	}
	seqScan := time.Since(scanStart)
	if n, _ := res.Rows[0][0].AsInt(); int(n) != rows {
		return fmt.Errorf("scan saw %d rows, want %d", n, rows)
	}

	// Point lookups: the same query shape with and without the access
	// path. DisableJoinOptimization plans no index probes, so the second
	// loop pays a full sequential scan per lookup.
	rng := rand.New(rand.NewSource(42))
	keys := make([]int, lookups)
	for i := range keys {
		keys[i] = rng.Intn(rows)
	}
	lookup := func(k int) error {
		res, err := query(fmt.Sprintf(`SELECT payload FROM rec WHERE id = %d`, k))
		if err != nil {
			return err
		}
		if len(res.Rows) != 1 {
			return fmt.Errorf("lookup id=%d: %d rows", k, len(res.Rows))
		}
		return nil
	}
	idxStart := time.Now()
	for _, k := range keys {
		if err := lookup(k); err != nil {
			return err
		}
	}
	idxDur := time.Since(idxStart)

	scanLookups := lookups / 40
	if scanLookups < 5 {
		scanLookups = 5
	}
	sqlengine.DisableJoinOptimization = true
	scanLkStart := time.Now()
	for _, k := range keys[:scanLookups] {
		if err := lookup(k); err != nil {
			sqlengine.DisableJoinOptimization = false
			return err
		}
	}
	scanLkDur := time.Since(scanLkStart)
	sqlengine.DisableJoinOptimization = false

	ps := st.Pool().Stats()
	rep := &storageReport{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		Rows:          rows,
		BufferPages:   bufferPages,
		Lookups:       lookups,
		LoadMS:        float64(loadDur.Microseconds()) / 1000,
		LoadRowsSec:   float64(rows) / loadDur.Seconds(),
		SeqScanMS:     float64(seqScan.Microseconds()) / 1000,
		IndexLookupUS: float64(idxDur.Microseconds()) / float64(lookups),
		ScanLookupUS:  float64(scanLkDur.Microseconds()) / float64(scanLookups),
		PoolHits:      ps.Hits,
		PoolMisses:    ps.Misses,
		PoolEvictions: ps.Evictions,
	}
	if rep.IndexLookupUS > 0 {
		rep.Speedup = rep.ScanLookupUS / rep.IndexLookupUS
	}

	fmt.Printf("== Storage: %d rows, %d-page buffer pool ==\n", rows, bufferPages)
	fmt.Printf("load: %d rows in %v (%.0f rows/sec)\n", rows, loadDur.Round(time.Millisecond), rep.LoadRowsSec)
	fmt.Printf("seq scan: %.1f ms for the full table\n", rep.SeqScanMS)
	fmt.Printf("point lookup: %.1f us via B-tree, %.1f us via forced seq scan (%.0fx speedup)\n",
		rep.IndexLookupUS, rep.ScanLookupUS, rep.Speedup)
	fmt.Printf("pool: %d hits, %d misses, %d evictions (table larger than pool: %t)\n",
		ps.Hits, ps.Misses, ps.Evictions, ps.Evictions > 0)

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}

	if baselinePath != "" {
		base := &storageReport{}
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if err := json.Unmarshal(data, base); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if base.IndexLookupUS > 0 && rep.IndexLookupUS > 2*base.IndexLookupUS {
			return fmt.Errorf("index lookup regression: %.1f us is over 2x the baseline %.1f us",
				rep.IndexLookupUS, base.IndexLookupUS)
		}
		if base.SeqScanMS > 0 && rep.SeqScanMS > 2*base.SeqScanMS {
			return fmt.Errorf("seq scan regression: %.1f ms is over 2x the baseline %.1f ms",
				rep.SeqScanMS, base.SeqScanMS)
		}
		fmt.Printf("baseline check passed: lookup %.1f us vs baseline %.1f us, scan %.1f ms vs %.1f ms\n",
			rep.IndexLookupUS, base.IndexLookupUS, rep.SeqScanMS, base.SeqScanMS)
	}
	return nil
}
