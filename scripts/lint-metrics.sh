#!/bin/sh
# Metric-name lint: every metric registered in non-test code must be
# msql_-prefixed snake_case and documented in DESIGN.md's metric
# inventory (section 8). Run from the repository root; CI runs it on
# every push.
set -eu

names=$(grep -rhoE '(Counter|Gauge|Histogram|CounterVec|GaugeVec|HistogramVec)\("[^"]+"' \
    --include='*.go' --exclude='*_test.go' cmd internal |
    sed -E 's/.*\("([^"]+)"/\1/' | sort -u)

if [ -z "$names" ]; then
    echo "lint-metrics: no registered metrics found — extraction broken?" >&2
    exit 1
fi

fail=0
for n in $names; do
    case "$n" in
    msql_*) ;;
    *)
        echo "lint-metrics: $n is not msql_-prefixed" >&2
        fail=1
        ;;
    esac
    if ! printf '%s' "$n" | grep -qE '^msql_[a-z0-9_]+$'; then
        echo "lint-metrics: $n is not snake_case" >&2
        fail=1
    fi
    if ! grep -q "$n" DESIGN.md; then
        echo "lint-metrics: $n is not documented in DESIGN.md" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "lint-metrics: $(printf '%s\n' "$names" | wc -l | tr -d ' ') metrics, all msql_-prefixed and documented"
