// Package demo builds the paper's example federation: the five appendix
// databases (continental, delta, united, avis, national) hosted on five
// simulated services with heterogeneous commit capabilities, incorporated
// and imported into a Federation. The executables, examples and
// benchmarks all start from this environment.
package demo

import (
	"fmt"
	"path/filepath"

	"msql/internal/core"
	"msql/internal/ldbms"
	"msql/internal/relstore"
)

// Options configures the demo federation.
type Options struct {
	// ContinentalAutoCommit puts continental on an autocommit-only
	// service (the §3.3 compensation scenarios).
	ContinentalAutoCommit bool
	// Seed drives fault-injection randomness.
	Seed int64
	// FlightRows and SeatRows scale the airline tables (benchmarks);
	// zero means the paper's small example data.
	FlightRows int
	SeatRows   int
	// DataDir persists every service's store on disk under
	// DataDir/<service>. A service whose database already exists there
	// is reopened as-is instead of being re-bootstrapped, so committed
	// data survives restarts. Empty keeps the stores in memory.
	DataDir string
	// BufferPages caps each disk-backed store's buffer pool (0 uses
	// storage.DefaultPoolPages). Ignored without DataDir.
	BufferPages int
}

// serviceSpec declares one LDBS of the federation.
type serviceSpec struct {
	Service string
	DB      string
	Profile func() ldbms.Profile
	DDL     []string
}

func specs(o Options) []serviceSpec {
	contProfile := ldbms.ProfileOracleLike
	if o.ContinentalAutoCommit {
		contProfile = ldbms.ProfileAutoCommitOnly
	}
	return []serviceSpec{
		{
			Service: "svc_cont", DB: "continental", Profile: contProfile,
			DDL: []string{
				`CREATE TABLE flights (flnu INTEGER, source CHAR(20), dep CHAR(5), destination CHAR(20), arr CHAR(5), day CHAR(10), rate FLOAT)`,
				`CREATE TABLE f838 (seatnu INTEGER, seatty CHAR(10), seatstatus CHAR(10), clientname CHAR(20))`,
				`INSERT INTO flights VALUES
					(100, 'Houston', '08:00', 'San Antonio', '09:00', 'mon', 100.0),
					(101, 'Houston', '10:00', 'Dallas', '11:00', 'tue', 80.0),
					(102, 'Austin', '12:00', 'San Antonio', '13:00', 'wed', 60.0)`,
				`INSERT INTO f838 VALUES
					(1, 'window', 'FREE', NULL),
					(2, 'aisle', 'TAKEN', 'smith'),
					(3, 'middle', 'FREE', NULL)`,
			},
		},
		{
			Service: "svc_delta", DB: "delta", Profile: ldbms.ProfileOracleLike,
			DDL: []string{
				`CREATE TABLE flight (fnu INTEGER, source CHAR(20), dest CHAR(20), dep CHAR(5), arr CHAR(5), day CHAR(10), rate FLOAT)`,
				`CREATE TABLE fnu747 (snu INTEGER, sty CHAR(10), sstat CHAR(10), passname CHAR(20))`,
				`INSERT INTO flight VALUES
					(200, 'Houston', 'San Antonio', '09:00', '10:00', 'mon', 110.0),
					(201, 'Dallas', 'Houston', '15:00', '16:00', 'thu', 90.0)`,
				`INSERT INTO fnu747 VALUES (1, 'window', 'FREE', NULL), (2, 'aisle', 'FREE', NULL)`,
			},
		},
		{
			Service: "svc_unit", DB: "united", Profile: ldbms.ProfileIngresLike,
			DDL: []string{
				`CREATE TABLE flight (fn INTEGER, sour CHAR(20), dest CHAR(20), depa CHAR(5), arri CHAR(5), day CHAR(10), rates FLOAT)`,
				`CREATE TABLE fn727 (sn INTEGER, st CHAR(10), sst CHAR(10), pasna CHAR(20))`,
				`INSERT INTO flight VALUES
					(300, 'Houston', 'San Antonio', '11:00', '12:00', 'tue', 120.0),
					(301, 'Houston', 'Austin', '14:00', '15:00', 'fri', 70.0)`,
				`INSERT INTO fn727 VALUES (1, 'window', 'FREE', NULL)`,
			},
		},
		{
			Service: "svc_avis", DB: "avis", Profile: ldbms.ProfileOracleLike,
			DDL: []string{
				`CREATE TABLE cars (code INTEGER, cartype CHAR(20), rate FLOAT, carst CHAR(12), from_d CHAR(10), to_d CHAR(10), client CHAR(20))`,
				`INSERT INTO cars VALUES
					(1, 'suv', 49.5, 'available', NULL, NULL, NULL),
					(2, 'compact', 29.5, 'rented', NULL, NULL, 'smith'),
					(3, 'luxury', 99.0, 'FREE', NULL, NULL, NULL)`,
			},
		},
		{
			Service: "svc_natl", DB: "national", Profile: ldbms.ProfileSybaseLike,
			DDL: []string{
				`CREATE TABLE vehicle (vcode INTEGER, vty CHAR(20), vstat CHAR(12), from_d CHAR(10), to_d CHAR(10), client CHAR(20))`,
				`INSERT INTO vehicle VALUES
					(11, 'sedan', 'available', NULL, NULL, NULL),
					(12, 'truck', 'FREE', NULL, NULL, NULL)`,
			},
		},
	}
}

// Build constructs the demo federation. With Options.DataDir set, each
// service's store lives on disk and a database that survived an earlier
// run is adopted without re-running its bootstrap DDL.
func Build(o Options) (*core.Federation, error) {
	f := core.New()
	for _, sp := range specs(o) {
		var srv *ldbms.Server
		reopened := false
		if o.DataDir != "" {
			st, err := relstore.Open(relstore.Options{
				Dir:       filepath.Join(o.DataDir, sp.Service),
				PoolPages: o.BufferPages,
			})
			if err != nil {
				return nil, fmt.Errorf("demo: open %s store: %w", sp.Service, err)
			}
			srv = f.AddLocalServer(ldbms.NewServerWith(sp.Service, sp.Profile(), o.Seed, st))
			if _, err := st.Database(sp.DB); err == nil {
				reopened = true
			}
		} else {
			srv = f.AddLocalService(sp.Service, sp.Profile(), o.Seed)
		}
		if reopened {
			continue
		}
		if err := srv.CreateDatabase(sp.DB); err != nil {
			return nil, err
		}
		sess, err := srv.OpenSession(sp.DB)
		if err != nil {
			return nil, err
		}
		for _, q := range sp.DDL {
			if _, err := sess.Exec(q); err != nil {
				return nil, fmt.Errorf("demo: bootstrap %s: %q: %w", sp.DB, q, err)
			}
		}
		if err := bulkFlights(sess, sp.DB, o); err != nil {
			return nil, err
		}
		if err := sess.Commit(); err != nil {
			return nil, err
		}
		sess.Close()
	}

	contMode := "NOCOMMIT"
	if o.ContinentalAutoCommit {
		contMode = "COMMIT"
	}
	setup := `
INCORPORATE SERVICE svc_cont CONNECTMODE CONNECT COMMITMODE ` + contMode + `;
INCORPORATE SERVICE svc_delta CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
INCORPORATE SERVICE svc_unit CONNECTMODE CONNECT COMMITMODE NOCOMMIT CREATE COMMIT DROP COMMIT;
INCORPORATE SERVICE svc_avis CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
INCORPORATE SERVICE svc_natl CONNECTMODE NOCONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE continental FROM SERVICE svc_cont;
IMPORT DATABASE delta FROM SERVICE svc_delta;
IMPORT DATABASE united FROM SERVICE svc_unit;
IMPORT DATABASE avis FROM SERVICE svc_avis;
IMPORT DATABASE national FROM SERVICE svc_natl;
`
	if _, err := f.ExecScript(setup); err != nil {
		return nil, fmt.Errorf("demo: incorporate/import: %w", err)
	}
	return f, nil
}

// bulkFlights widens the airline tables for benchmarks.
func bulkFlights(sess *ldbms.Session, db string, o Options) error {
	if o.FlightRows == 0 && o.SeatRows == 0 {
		return nil
	}
	var flightIns, seatIns func(i int) string
	switch db {
	case "continental":
		flightIns = func(i int) string {
			return fmt.Sprintf("INSERT INTO flights VALUES (%d, 'Houston', '08:00', 'San Antonio', '09:00', 'mon', %d.0)", 1000+i, 50+i%200)
		}
		seatIns = func(i int) string {
			return fmt.Sprintf("INSERT INTO f838 VALUES (%d, 'window', 'FREE', NULL)", 1000+i)
		}
	case "delta":
		flightIns = func(i int) string {
			return fmt.Sprintf("INSERT INTO flight VALUES (%d, 'Houston', 'San Antonio', '09:00', '10:00', 'mon', %d.0)", 1000+i, 55+i%200)
		}
		seatIns = func(i int) string {
			return fmt.Sprintf("INSERT INTO fnu747 VALUES (%d, 'aisle', 'FREE', NULL)", 1000+i)
		}
	case "united":
		flightIns = func(i int) string {
			return fmt.Sprintf("INSERT INTO flight VALUES (%d, 'Houston', 'San Antonio', '11:00', '12:00', 'tue', %d.0)", 1000+i, 60+i%200)
		}
		seatIns = func(i int) string {
			return fmt.Sprintf("INSERT INTO fn727 VALUES (%d, 'middle', 'FREE', NULL)", 1000+i)
		}
	default:
		return nil
	}
	for i := 0; i < o.FlightRows; i++ {
		if _, err := sess.Exec(flightIns(i)); err != nil {
			return err
		}
	}
	for i := 0; i < o.SeatRows; i++ {
		if _, err := sess.Exec(seatIns(i)); err != nil {
			return err
		}
	}
	return nil
}
