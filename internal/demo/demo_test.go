package demo

import (
	"testing"

	"msql/internal/core"
)

func TestBuildDefault(t *testing.T) {
	f, err := Build(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All five databases imported.
	dbs := f.GDD.DatabaseNames()
	want := []string{"avis", "continental", "delta", "national", "united"}
	if len(dbs) != len(want) {
		t.Fatalf("dbs = %v", dbs)
	}
	for i := range want {
		if dbs[i] != want[i] {
			t.Fatalf("dbs = %v", dbs)
		}
	}
	// Appendix schemas present.
	for db, table := range map[string]string{
		"continental": "flights", "delta": "flight", "united": "flight",
		"avis": "cars", "national": "vehicle",
	} {
		if _, err := f.GDD.Table(db, table); err != nil {
			t.Errorf("missing %s.%s: %v", db, table, err)
		}
	}
	// Services in the AD with correct modes.
	cont, err := f.AD.Lookup("svc_cont")
	if err != nil || !cont.SupportsTwoPC() {
		t.Fatalf("svc_cont = %+v, %v", cont, err)
	}
	natl, err := f.AD.Lookup("svc_natl")
	if err != nil || natl.Connect {
		t.Fatalf("svc_natl should be NOCONNECT: %+v, %v", natl, err)
	}
	unit, err := f.AD.Lookup("svc_unit")
	if err != nil || !unit.DDLCommit["CREATE"] {
		t.Fatalf("svc_unit DDL modes = %+v, %v", unit, err)
	}
}

func TestBuildAutoCommitContinental(t *testing.T) {
	f, err := Build(Options{Seed: 1, ContinentalAutoCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	cont, err := f.AD.Lookup("svc_cont")
	if err != nil || cont.SupportsTwoPC() {
		t.Fatalf("svc_cont should be autocommit-only: %+v, %v", cont, err)
	}
}

func TestBuildBulkRows(t *testing.T) {
	f, err := Build(Options{Seed: 1, FlightRows: 50, SeatRows: 20})
	if err != nil {
		t.Fatal(err)
	}
	results, err := f.ExecScript("USE continental\nSELECT COUNT(flnu) AS n FROM flights")
	if err != nil {
		t.Fatal(err)
	}
	var sel *core.Result
	for _, r := range results {
		if r.Kind == core.KindSelect {
			sel = r
		}
	}
	n, _ := sel.Multitable.Tables[0].Rows[0][0].AsInt()
	if n != 53 { // 3 base + 50 bulk
		t.Fatalf("flight rows = %d", n)
	}
}
