package demo_test

import (
	"fmt"
	"log"

	"msql/internal/core"
	"msql/internal/demo"
)

// ExampleBuild runs the paper's Section 2 multiple query against the demo
// federation and prints the flattened multitable.
func ExampleBuild() {
	fed, err := demo.Build(demo.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	results, err := fed.ExecScript(`
USE avis national
LET car.type.status BE cars.cartype.carst
                       vehicle.vty.vstat
SELECT %code, type, ~rate
FROM car
WHERE status = 'available'
`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Kind != core.KindSelect || r.Multitable == nil {
			continue
		}
		flat, err := r.Multitable.Flatten()
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range flat.Rows {
			fmt.Printf("%s %s %s %s\n", row[0], row[1], row[2], row[3])
		}
	}
	// Output:
	// avis 1 suv 49.5
	// national 11 sedan NULL
}
