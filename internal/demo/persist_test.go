package demo

import (
	"testing"
)

// TestDataDirSurvivesRestart is the restart-survival contract of
// -data-dir: committed work reopens from disk, and the bootstrap DDL does
// not run again on a reopened store.
func TestDataDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	f, err := Build(Options{Seed: 1, DataDir: dir, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	count := func(q string) int {
		t.Helper()
		results, err := f.ExecScript(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		last := results[len(results)-1]
		if last.Multitable == nil {
			t.Fatalf("%q: no multitable in result", q)
		}
		return last.Multitable.TotalRows()
	}
	if n := count("USE continental; SELECT flnu FROM flights"); n != 3 {
		t.Fatalf("bootstrap flights = %d, want 3", n)
	}
	if _, err := f.ExecScript(
		"USE continental; INSERT INTO flights VALUES (999, 'Austin', '07:00', 'Dallas', '08:00', 'sat', 42.0); COMMIT"); err != nil {
		t.Fatal(err)
	}
	if err := f.CloseServers(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh federation over the same data directory.
	f, err = Build(Options{Seed: 1, DataDir: dir, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if n := count("USE continental; SELECT flnu FROM flights"); n != 4 {
		t.Fatalf("flights after restart = %d, want 4 (3 bootstrap + 1 committed; re-bootstrap would duplicate)", n)
	}
	if n := count("USE continental; SELECT flnu FROM flights WHERE flnu = 999"); n != 1 {
		t.Fatalf("committed row lost across restart")
	}
	// The reopened federation stays writable.
	if _, err := f.ExecScript(
		"USE continental; INSERT INTO flights VALUES (998, 'Austin', '07:30', 'Dallas', '08:30', 'sun', 43.0); COMMIT"); err != nil {
		t.Fatal(err)
	}
	if err := f.CloseServers(); err != nil {
		t.Fatal(err)
	}
}

// TestDataDirUncommittedWorkRollsBack: a transaction left open when the
// process dies is absent after reopen — only checkpointed commits
// survive.
func TestDataDirUncommittedWorkRollsBack(t *testing.T) {
	dir := t.TempDir()
	f, err := Build(Options{Seed: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := f.Server("svc_cont")
	sess, err := srv.OpenSession("continental")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO flights VALUES (777, 'x', '07:00', 'y', '08:00', 'sat', 1.0)"); err != nil {
		t.Fatal(err)
	}
	// No commit, no CloseServers: simulate a crash by just reopening the
	// directory. The last checkpoint (bootstrap commit) is the recovery
	// point.
	f2, err := Build(Options{Seed: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	results, err := f2.ExecScript("USE continental; SELECT flnu FROM flights WHERE flnu = 777")
	if err != nil {
		t.Fatal(err)
	}
	if n := results[len(results)-1].Multitable.TotalRows(); n != 0 {
		t.Fatalf("uncommitted row visible after crash-reopen: %d rows", n)
	}
	sess.Close()
	_ = f.CloseServers()
	_ = f2.CloseServers()
}
