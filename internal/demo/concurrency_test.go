package demo

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"msql/internal/core"
	"msql/internal/lam"
	"msql/internal/ldbms"
)

const fareUpdateScript = `
USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
`

// attach builds a second federation around the same running servers,
// simulating another multidatabase user of the same autonomous LDBSs.
func attach(t *testing.T, primary *core.Federation) *core.Federation {
	t.Helper()
	fed := core.New()
	for _, svc := range []string{"svc_cont", "svc_delta", "svc_unit", "svc_avis", "svc_natl"} {
		srv := primary.Server(svc)
		if srv == nil {
			t.Fatalf("no server %s", svc)
		}
		fed.RegisterClient(svc, lam.NewLocal(srv))
	}
	setup := `
INCORPORATE SERVICE svc_cont CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
INCORPORATE SERVICE svc_delta CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
INCORPORATE SERVICE svc_unit CONNECTMODE CONNECT COMMITMODE NOCOMMIT CREATE COMMIT DROP COMMIT;
INCORPORATE SERVICE svc_avis CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
INCORPORATE SERVICE svc_natl CONNECTMODE NOCONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE continental FROM SERVICE svc_cont;
IMPORT DATABASE delta FROM SERVICE svc_delta;
IMPORT DATABASE united FROM SERVICE svc_unit;
IMPORT DATABASE avis FROM SERVICE svc_avis;
IMPORT DATABASE national FROM SERVICE svc_natl;
`
	if _, err := fed.ExecScript(setup); err != nil {
		t.Fatal(err)
	}
	return fed
}

// TestConcurrentMultitransactions races two travel agents booking trips
// against the same autonomous databases. Whatever interleaving the locks
// produce, no seat or car may be double-booked, and every committed trip
// has exactly one seat and one car.
func TestConcurrentMultitransactions(t *testing.T) {
	primary, err := Build(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	secondary := attach(t, primary)

	script := func(client string) string {
		return fmt.Sprintf(`
BEGIN MULTITRANSACTION
  USE continental delta
  LET fitab.snu.sstat.clname BE
      f838.seatnu.seatstatus.clientname
      fnu747.snu.sstat.passname
  UPDATE fitab
  SET sstat = 'TAKEN', clname = '%s'
  WHERE snu = ( SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');
  USE avis national
  LET cartab.ccode.cstat BE
      cars.code.carst
      vehicle.vcode.vstat
  UPDATE cartab
  SET cstat = 'TAKEN', client = '%s'
  WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'FREE');
  COMMIT EFFECTIVE
    continental AND national
    delta AND avis
END MULTITRANSACTION`, client, client)
	}

	var wg sync.WaitGroup
	outcomes := make([]*core.Result, 2)
	errs := make([]error, 2)
	feds := []*core.Federation{primary, secondary}
	clients := []string{"wenders", "herzog"}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results, err := feds[i].ExecScript(script(clients[i]))
			if err != nil {
				errs[i] = err
				return
			}
			outcomes[i] = results[len(results)-1]
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}

	count := func(svc, db, sql string) int64 {
		srv := primary.Server(svc)
		sess, err := srv.OpenSession(db)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		res, err := sess.Exec(sql)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := res.Rows[0][0].AsInt()
		return n
	}

	for _, client := range clients {
		seats := count("svc_cont", "continental",
			"SELECT COUNT(seatnu) FROM f838 WHERE clientname = '"+client+"'") +
			count("svc_delta", "delta",
				"SELECT COUNT(snu) FROM fnu747 WHERE passname = '"+client+"'")
		cars := count("svc_avis", "avis",
			"SELECT COUNT(code) FROM cars WHERE client = '"+client+"'") +
			count("svc_natl", "national",
				"SELECT COUNT(vcode) FROM vehicle WHERE client = '"+client+"'")
		if seats > 1 || cars > 1 {
			t.Fatalf("%s double-booked: %d seats, %d cars", client, seats, cars)
		}
		if (seats == 1) != (cars == 1) {
			t.Fatalf("%s has a partial trip: %d seats, %d cars", client, seats, cars)
		}
	}
	// Whatever happened, the databases never recorded more reservations
	// than there were free resources.
	taken := count("svc_natl", "national", "SELECT COUNT(vcode) FROM vehicle WHERE vstat = 'TAKEN'")
	if taken > 1 {
		t.Fatalf("national had 1 free vehicle, %d taken", taken)
	}
}

// TestReducedIsolationVisibleThenCompensated demonstrates §3.4's relaxed
// isolation: with continental on an autocommit-only service, its
// subquery's result becomes visible to other users before the global
// query decides — and is then semantically undone by compensation when
// united fails.
func TestReducedIsolationVisibleThenCompensated(t *testing.T) {
	primary, err := Build(Options{Seed: 1, ContinentalAutoCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	observer := core.New()
	observer.RegisterClient("svc_cont", lam.NewLocal(primary.Server("svc_cont")))
	if _, err := observer.ExecScript(`
INCORPORATE SERVICE svc_cont CONNECTMODE CONNECT COMMITMODE COMMIT;
IMPORT DATABASE continental FROM SERVICE svc_cont;
`); err != nil {
		t.Fatal(err)
	}
	readRate := func() float64 {
		results, err := observer.ExecScript("USE continental\nSELECT rate FROM flights WHERE flnu = 100")
		if err != nil {
			t.Fatal(err)
		}
		sel := results[len(results)-1]
		f, _ := sel.Multitable.Tables[0].Rows[0][0].AsFloat()
		return f
	}

	// Slow united down and make it fail, so continental's autocommitted
	// update stays observable for a while before compensation.
	primary.Server("svc_unit").SetLatency(300 * time.Millisecond)
	primary.Server("svc_unit").Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "united"})

	done := make(chan error, 1)
	go func() {
		_, err := primary.ExecScript(`
USE continental VITAL united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
COMP continental
UPDATE flights
SET rate = rate / 1.1
WHERE source = 'Houston' AND destination = 'San Antonio'
`)
		done <- err
	}()

	// Poll until the partial result becomes visible (continental commits
	// immediately; united is still sleeping).
	sawPartial := false
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if r := readRate(); r > 105 {
			sawPartial = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !sawPartial {
		t.Fatal("partial result never became visible — isolation stronger than the paper's model")
	}
	// After the global abort, compensation restored the fare.
	if r := readRate(); r < 99.9 || r > 100.1 {
		t.Fatalf("rate after compensation = %v", r)
	}
}

// TestConcurrentVitalUpdates runs the fare update from two federations at
// once; the vital invariant must hold for both.
func TestConcurrentVitalUpdates(t *testing.T) {
	primary, err := Build(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	secondary := attach(t, primary)
	var wg sync.WaitGroup
	states := make([]core.GlobalState, 2)
	errs := make([]error, 2)
	for i, fed := range []*core.Federation{primary, secondary} {
		wg.Add(1)
		go func(i int, fed *core.Federation) {
			defer wg.Done()
			results, err := fed.ExecScript(fareUpdateScript)
			if err != nil {
				errs[i] = err
				return
			}
			states[i] = results[len(results)-1].State
		}(i, fed)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("agent %d: %v", i, errs[i])
		}
		if states[i] == core.StateIncorrect {
			t.Fatalf("agent %d reached the incorrect state", i)
		}
	}
}
