package demo

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomScriptsNeverPanic drives the full stack with seeded random
// MSQL scripts. Scripts may legitimately fail (unknown columns, ambiguous
// patterns, missing COMP clauses); the invariant is that the federation
// never panics and stays usable afterwards.
func TestRandomScriptsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	fed, err := Build(Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	dbs := []string{"continental", "delta", "united", "avis", "national", "nowhere"}
	tables := []string{"flight%", "flights", "cars%", "vehicle", "f%", "car", "bogus%"}
	cols := []string{"rate%", "%code", "day", "sour%", "~rate", "vstat", "x%", "code"}
	vals := []string{"'Houston'", "'FREE'", "42", "1.1", "NULL"}

	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }
	genUse := func() string {
		n := 1 + rng.Intn(3)
		out := "USE"
		for i := 0; i < n; i++ {
			out += " " + pick(dbs)
			if rng.Intn(3) == 0 {
				out += " VITAL"
			}
		}
		return out
	}
	genStmt := func() string {
		switch rng.Intn(5) {
		case 0:
			return fmt.Sprintf("SELECT %s, %s FROM %s", pick(cols), pick(cols), pick(tables))
		case 1:
			return fmt.Sprintf("SELECT %s FROM %s WHERE %s = %s", pick(cols), pick(tables), pick(cols), pick(vals))
		case 2:
			return fmt.Sprintf("UPDATE %s SET %s = %s WHERE %s = %s",
				pick(tables), pick(cols), pick(vals), pick(cols), pick(vals))
		case 3:
			return fmt.Sprintf("DELETE FROM %s WHERE %s = %s", pick(tables), pick(cols), pick(vals))
		default:
			return "COMMIT"
		}
	}

	okCount, errCount := 0, 0
	for i := 0; i < 300; i++ {
		script := genUse() + "\n"
		for j := 0; j <= rng.Intn(3); j++ {
			script += genStmt() + "\n"
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on script %d:\n%s\n%v", i, script, r)
				}
			}()
			if _, err := fed.ExecScript(script); err != nil {
				errCount++
			} else {
				okCount++
			}
		}()
	}
	// Sanity: the generator produces a healthy mix and the federation
	// still answers after the battering.
	if okCount == 0 {
		t.Fatal("no random script succeeded — generator broken?")
	}
	if errCount == 0 {
		t.Fatal("no random script failed — generator too tame?")
	}
	if _, err := fed.ExecScript("USE avis\nSELECT code FROM cars"); err != nil {
		t.Fatalf("federation unusable after fuzzing: %v", err)
	}
	t.Logf("random scripts: %d ok, %d failed", okCount, errCount)
}
