package demo

import (
	"os"
	"path/filepath"
	"testing"

	"msql/internal/core"
)

// TestShippedScripts executes every .msql script under examples/scripts
// against the demo federation, validating that the files the README
// points users at actually run.
func TestShippedScripts(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "scripts")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("scripts directory: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no shipped scripts found")
	}
	for _, entry := range entries {
		if filepath.Ext(entry.Name()) != ".msql" {
			continue
		}
		t.Run(entry.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, entry.Name()))
			if err != nil {
				t.Fatal(err)
			}
			fed, err := Build(Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			results, err := fed.ExecScript(string(data))
			if err != nil {
				t.Fatalf("script failed: %v", err)
			}
			if len(results) == 0 {
				t.Fatal("script produced no results")
			}
			for _, r := range results {
				if r.Kind == core.KindSync && r.State != core.StateSuccess {
					t.Fatalf("sync state = %s", r.State)
				}
				if r.Kind == core.KindMultiTx && r.AchievedState == nil {
					t.Fatalf("multitransaction failed: status %d", r.Status)
				}
			}
		})
	}
}
