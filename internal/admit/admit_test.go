package admit

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestImmediateAdmission(t *testing.T) {
	c := New(Config{MaxConcurrent: 2})
	ctx := context.Background()
	r1, err := c.Acquire(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Acquire(ctx, "b")
	if err != nil {
		t.Fatal(err)
	}
	if active, _ := c.Stats(); active != 2 {
		t.Fatalf("active = %d, want 2", active)
	}
	r1()
	r2()
	r2() // double release must be a no-op
	if active, queued := c.Stats(); active != 0 || queued != 0 {
		t.Fatalf("after release: active=%d queued=%d", active, queued)
	}
}

func TestShedOnWaitTimeout(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxWait: 30 * time.Millisecond})
	release, err := c.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	_, err = c.Acquire(context.Background(), "b")
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("shed took %v, want ~MaxWait", d)
	}
	if _, queued := c.Stats(); queued != 0 {
		t.Fatalf("abandoned waiter left in queue (queued=%d)", queued)
	}
}

func TestShedOnFullQueue(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueuePerTenant: 1, MaxWait: time.Second})
	release, err := c.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			// Give the waiter time to enqueue, then let it out.
			time.Sleep(100 * time.Millisecond)
			cancel()
		}()
		c.Acquire(ctx, "a") //nolint:errcheck
	}()
	// Wait for the first waiter to occupy tenant a's queue.
	deadline := time.Now().Add(time.Second)
	for {
		if _, queued := c.Stats(); queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	_, err = c.Acquire(context.Background(), "a")
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload (queue full)", err)
	}
	<-done
}

func TestCanceledWaiterLeavesQueue(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxWait: 10 * time.Second})
	release, err := c.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Acquire(ctx, "b")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancel honored after %v", d)
	}
	if _, queued := c.Stats(); queued != 0 {
		t.Fatalf("canceled waiter left in queue (queued=%d)", queued)
	}
}

// TestRoundRobinFairness queues three statements for a chatty tenant and
// one for a quiet tenant behind a single slot; the quiet tenant must be
// served second, not last.
func TestRoundRobinFairness(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxWait: 10 * time.Second, MaxQueuePerTenant: 8})
	release, err := c.Acquire(context.Background(), "seed")
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueued := 0
	enqueue := func(tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.Acquire(context.Background(), tenant)
			if err != nil {
				t.Errorf("acquire %s: %v", tenant, err)
				return
			}
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
			r()
		}()
		// Ensure FIFO arrival order within and across tenants.
		enqueued++
		deadline := time.Now().Add(time.Second)
		for {
			if _, queued := c.Stats(); queued >= enqueued {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("waiter never queued")
			}
			time.Sleep(time.Millisecond)
		}
	}
	enqueue("loud")
	enqueue("loud")
	enqueue("loud")
	enqueue("quiet")
	release()
	wg.Wait()

	if len(order) != 4 {
		t.Fatalf("served %d, want 4: %v", len(order), order)
	}
	// Round-robin over tenants: loud, quiet, loud, loud.
	if order[1] != "quiet" {
		t.Fatalf("quiet tenant starved: order = %v", order)
	}
}

// TestHandoffKeepsCap hammers the controller from many goroutines and
// checks the concurrency invariant: active never exceeds MaxConcurrent,
// and everything drains to zero.
func TestHandoffKeepsCap(t *testing.T) {
	const cap = 4
	c := New(Config{MaxConcurrent: cap, MaxWait: 10 * time.Second, MaxQueuePerTenant: 64})
	var inFlight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := string(rune('a' + i%4))
			for n := 0; n < 10; n++ {
				release, err := c.Acquire(context.Background(), tenant)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				cur := inFlight.Add(1)
				for {
					m := maxSeen.Load()
					if cur <= m || maxSeen.CompareAndSwap(m, cur) {
						break
					}
				}
				time.Sleep(time.Microsecond)
				inFlight.Add(-1)
				release()
			}
		}(i)
	}
	wg.Wait()
	if m := maxSeen.Load(); m > cap {
		t.Fatalf("observed %d concurrent holders, cap %d", m, cap)
	}
	if active, queued := c.Stats(); active != 0 || queued != 0 {
		t.Fatalf("did not drain: active=%d queued=%d", active, queued)
	}
}

func TestNilControllerAdmits(t *testing.T) {
	var c *Controller
	release, err := c.Acquire(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	release()
}
