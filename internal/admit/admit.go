package admit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"msql/internal/obs"
)

// ErrOverload reports that admission control shed the request: the
// federation is saturated and the statement was never started. Clients
// may retry with backoff; nothing was executed and no site was touched.
var ErrOverload = errors.New("admit: overloaded, request shed")

var (
	mActive = obs.Default().Gauge("msql_admit_active",
		"Statements currently holding an admission slot.")
	mQueued = obs.Default().Gauge("msql_admit_queued",
		"Statements currently waiting in admission queues.")
	mShed = obs.Default().CounterVec("msql_admit_shed_total",
		"Statements shed by admission control, by reason.", "reason")
	mAdmitted = obs.Default().CounterVec("msql_admit_admitted_total",
		"Statements admitted, by tenant.", "tenant")
	mWait = obs.Default().Histogram("msql_admit_wait_seconds",
		"Time statements spent queued before admission.", nil)
)

// Config bounds the controller. Zero values pick serviceable defaults.
type Config struct {
	// MaxConcurrent is the number of statements allowed to execute at
	// once across all tenants (default 8).
	MaxConcurrent int
	// MaxQueuePerTenant caps each tenant's wait queue; an arrival beyond
	// it is shed immediately (default 16).
	MaxQueuePerTenant int
	// MaxWait is the longest a statement may sit queued before it is
	// shed (default 2s).
	MaxWait time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxQueuePerTenant <= 0 {
		c.MaxQueuePerTenant = 16
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Second
	}
	return c
}

// waiter is one queued acquisition. The grantor sets granted and sends on
// ch under the controller lock; an expiring waiter marks itself abandoned
// and removes itself, so a slot is never handed to a departed caller.
type waiter struct {
	tenant  string
	ch      chan struct{}
	since   time.Time
	granted bool
}

// Controller is a fair admission gate. The zero value is not usable; see
// New. A nil *Controller admits everything (gating disabled).
type Controller struct {
	cfg Config

	mu     sync.Mutex
	active int
	queued int
	queues map[string][]*waiter
	ring   []string // tenants with waiters, round-robin order
	next   int      // ring cursor
}

// New returns a controller enforcing cfg.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults(), queues: make(map[string][]*waiter)}
}

// Acquire obtains an execution slot for tenant, waiting fairly behind
// earlier arrivals. It returns a release function that must be called
// exactly once when the statement finishes. Saturation is reported as an
// error wrapping ErrOverload; a canceled context returns ctx.Err(). A nil
// controller admits immediately.
func (c *Controller) Acquire(ctx context.Context, tenant string) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	c.mu.Lock()
	if c.active < c.cfg.MaxConcurrent && c.queued == 0 {
		c.active++
		c.mu.Unlock()
		mActive.Add(1)
		mAdmitted.With(tenant).Inc()
		return c.releaseFn(), nil
	}
	if len(c.queues[tenant]) >= c.cfg.MaxQueuePerTenant {
		c.mu.Unlock()
		mShed.With("queue-full").Inc()
		return nil, fmt.Errorf("tenant %q: queue full: %w", tenant, ErrOverload)
	}
	w := &waiter{tenant: tenant, ch: make(chan struct{}, 1), since: time.Now()}
	if len(c.queues[tenant]) == 0 {
		c.ring = append(c.ring, tenant)
	}
	c.queues[tenant] = append(c.queues[tenant], w)
	c.queued++
	c.mu.Unlock()
	mQueued.Add(1)

	timer := time.NewTimer(c.cfg.MaxWait)
	defer timer.Stop()
	select {
	case <-w.ch:
		mQueued.Add(-1)
		mWait.ObserveSince(w.since)
		mActive.Add(1)
		mAdmitted.With(tenant).Inc()
		return c.releaseFn(), nil
	case <-timer.C:
		if c.tryAbandon(w) {
			mQueued.Add(-1)
			mShed.With("timeout").Inc()
			return nil, fmt.Errorf("tenant %q: waited %v: %w", tenant, c.cfg.MaxWait, ErrOverload)
		}
	case <-ctx.Done():
		if c.tryAbandon(w) {
			mQueued.Add(-1)
			mShed.With("canceled").Inc()
			return nil, ctx.Err()
		}
	}
	// Lost the race: a grant was already in flight while we were timing
	// out. The slot is ours — use it rather than leak it.
	<-w.ch
	mQueued.Add(-1)
	mWait.ObserveSince(w.since)
	mActive.Add(1)
	mAdmitted.With(tenant).Inc()
	return c.releaseFn(), nil
}

// tryAbandon removes w from its queue if it has not been granted yet.
func (c *Controller) tryAbandon(w *waiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.granted {
		return false
	}
	q := c.queues[w.tenant]
	for i, x := range q {
		if x == w {
			c.queues[w.tenant] = append(q[:i], q[i+1:]...)
			c.queued--
			break
		}
	}
	return true
}

// releaseFn returns the once-only release closure for a granted slot. On
// release the slot is handed directly to the next queued waiter
// (round-robin over tenants) when one exists, keeping active at the cap
// under sustained load.
func (c *Controller) releaseFn() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			if !c.grantNextLocked() {
				c.active--
			}
			c.mu.Unlock()
			mActive.Add(-1)
		})
	}
}

// grantNextLocked hands the caller's slot to the next waiter in
// round-robin tenant order. Callers must hold c.mu.
func (c *Controller) grantNextLocked() bool {
	for len(c.ring) > 0 {
		if c.next >= len(c.ring) {
			c.next = 0
		}
		t := c.ring[c.next]
		q := c.queues[t]
		if len(q) == 0 {
			c.ring = append(c.ring[:c.next], c.ring[c.next+1:]...)
			delete(c.queues, t)
			continue
		}
		w := q[0]
		c.queues[t] = q[1:]
		c.queued--
		if len(c.queues[t]) == 0 {
			c.ring = append(c.ring[:c.next], c.ring[c.next+1:]...)
			delete(c.queues, t)
		} else {
			c.next++
		}
		w.granted = true
		w.ch <- struct{}{}
		return true
	}
	return false
}

// Stats reports the current slot and queue occupancy.
func (c *Controller) Stats() (active, queued int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.active, c.queued
}
