// Package admit is the coordinator's admission-control gate: it sits
// between client sessions and the DOL engine and decides, per statement,
// whether the federation takes the work now, queues it briefly, or sheds
// it with ErrOverload.
//
// The controller grants a bounded number of concurrent execution slots
// (the engine, journal flusher, and site connections behind them are the
// real capacity). Statements beyond that wait in bounded per-tenant FIFO
// queues served round-robin, so one chatty tenant cannot starve the
// others. A queue that is full, or a wait that exceeds MaxWait, sheds the
// request immediately — overload is always answered with an explicit
// error, never with unbounded queue growth or silent latency.
//
// Wiring: core.Federation.SetAdmission installs a controller in front of
// every statement a session executes, and msql -serve exposes the knobs
// as -max-concurrent, -tenant-queue, and -admit-wait (DESIGN.md §10).
package admit
