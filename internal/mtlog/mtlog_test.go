package mtlog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sampleRecords() []*Record {
	return []*Record{
		{Type: TBegin, MTID: 1, Kind: "sync", Tasks: []TaskDecl{
			{Name: "T1", Entry: "united", Database: "united", Site: "127.0.0.1:9001", Vital: true},
			{Name: "C1", Entry: "avis", Database: "avis", Site: "svc_avis", Comp: true, ForTask: "T2", SQL: "DELETE FROM cars WHERE id = 7"},
		}},
		{Type: TPrepared, MTID: 1, Task: "T1", Addr: "127.0.0.1:9001", SessionID: 42},
		{Type: TDecision, MTID: 1, Commit: true, Decided: []string{"T1"}},
		{Type: TOutcome, MTID: 1, Task: "T1", Status: StatusCommitted},
		{Type: TEnd, MTID: 1, State: "success"},
		{Type: TBegin, MTID: 2, Kind: "dml"},
		{Type: TPrepared, MTID: 2, Task: "T1", Addr: "127.0.0.1:9002", SessionID: 7},
	}
}

func writeAll(t *testing.T, j *Journal, recs []*Record) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mt.log")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, j, sampleRecords())
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs, err := j2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 {
		t.Fatalf("records = %d, want 7", len(recs))
	}
	if recs[0].Tasks[1].SQL != "DELETE FROM cars WHERE id = 7" {
		t.Fatalf("comp SQL lost: %+v", recs[0].Tasks[1])
	}
	if recs[1].SessionID != 42 || recs[1].Addr != "127.0.0.1:9001" {
		t.Fatalf("prepared record mangled: %+v", recs[1])
	}
	// MTIDs seen are 1 and 2, so the next allocation must be 3.
	if id := j2.NextID(); id != 3 {
		t.Fatalf("NextID = %d, want 3", id)
	}
}

func TestReconstructAndDecisions(t *testing.T) {
	states := Reconstruct(func() []Record {
		var out []Record
		for _, r := range sampleRecords() {
			out = append(out, *r)
		}
		return out
	}())
	if len(states) != 2 {
		t.Fatalf("states = %d, want 2", len(states))
	}
	s1, s2 := states[0], states[1]
	if !s1.Ended || s1.EndState != "success" {
		t.Fatalf("mt1 = %+v, want ended success", s1)
	}
	if commit, decided := s1.DecisionFor("T1"); !commit || !decided {
		t.Fatalf("mt1 T1 decision = %v %v, want commit", commit, decided)
	}
	if d, ok := s1.Decl("C1"); !ok || !d.Comp || d.ForTask != "T2" {
		t.Fatalf("mt1 C1 decl = %+v", d)
	}
	if s2.Ended {
		t.Fatal("mt2 must stay open")
	}
	// mt2's prepared task has no decision record: presumed abort.
	if commit, decided := s2.DecisionFor("T1"); commit || decided {
		t.Fatalf("mt2 T1 decision = %v %v, want presumed abort", commit, decided)
	}
}

func TestTornTailIsTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mt.log")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, j, sampleRecords()[:3])
	j.Close()

	// Simulate a crash mid-append: a torn half-record at the tail.
	data, _ := os.ReadFile(path)
	clean := len(data)
	torn := append(append([]byte{}, data...), recMagic, byte(TOutcome), 0xff, 0x00)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := j2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records after torn tail = %d, want 3", len(recs))
	}
	// The torn tail was truncated, so a new append lands on the valid
	// prefix and survives a re-open.
	if err := j2.Append(&Record{Type: TEnd, MTID: 1, State: "aborted"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if fi, _ := os.Stat(path); fi.Size() <= int64(clean) {
		t.Fatalf("size = %d, want > %d (appended past truncation)", fi.Size(), clean)
	}
	j3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	recs, err = j3.Records()
	if err != nil || len(recs) != 4 || recs[3].Type != TEnd {
		t.Fatalf("records = %v (err %v), want 4 ending in TEnd", len(recs), err)
	}
}

func TestBitFlipStopsAtValidPrefix(t *testing.T) {
	var buf []byte
	var err error
	for _, r := range sampleRecords() {
		if buf, err = appendRecord(buf, r); err != nil {
			t.Fatal(err)
		}
	}
	recs, _, derr := DecodeAll(buf)
	if derr != nil || len(recs) != 7 {
		t.Fatalf("clean decode = %d recs, err %v", len(recs), derr)
	}
	// Flip one bit in every byte position in turn: decoding must never
	// panic, never accept the flipped record, and always stop at a valid
	// prefix no longer than the record boundary before the flip.
	for pos := 0; pos < len(buf); pos++ {
		mut := append([]byte{}, buf...)
		mut[pos] ^= 0x10
		recs, end, derr := DecodeAll(mut)
		if end > len(mut) {
			t.Fatalf("pos %d: validEnd %d beyond input %d", pos, end, len(mut))
		}
		if derr == nil && len(recs) == 7 {
			// The flip landed inside a payload yet decoded identically —
			// impossible with a CRC over type+len+payload.
			t.Fatalf("pos %d: bit flip silently accepted", pos)
		}
		// Records before the flip's frame must decode intact.
		for _, r := range recs {
			if r.Type < TBegin || r.Type > TEnd {
				t.Fatalf("pos %d: invalid record type %d in valid prefix", pos, r.Type)
			}
		}
	}
}

func TestInterleavedGarbage(t *testing.T) {
	var buf []byte
	var err error
	for _, r := range sampleRecords()[:2] {
		if buf, err = appendRecord(buf, r); err != nil {
			t.Fatal(err)
		}
	}
	garbage := append(append([]byte{}, buf...), []byte("not a journal record at all")...)
	recs, end, derr := DecodeAll(garbage)
	if len(recs) != 2 {
		t.Fatalf("records = %d, want the 2 before the garbage", len(recs))
	}
	if end != len(buf) {
		t.Fatalf("validEnd = %d, want %d", end, len(buf))
	}
	if !errors.Is(derr, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", derr)
	}
}

func TestCompactDropsEndedMultitransactions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mt.log")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, j, sampleRecords()) // mt1 ended, mt2 open
	dropped, err := j.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	recs, err := j.Records()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.MTID == 1 {
			t.Fatalf("compaction kept ended mt1 record %v", r.String())
		}
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want mt2's 2", len(recs))
	}
	// Appends keep working on the compacted file and survive re-open.
	if err := j.Append(&Record{Type: TEnd, MTID: 2, State: "recovered"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs, err = j2.Records()
	if err != nil || len(recs) != 3 {
		t.Fatalf("records after reopen = %d (err %v), want 3", len(recs), err)
	}
	// NextID still accounts for mt2 even after mt1 was compacted away.
	if id := j2.NextID(); id != 3 {
		t.Fatalf("NextID = %d, want 3", id)
	}
}
