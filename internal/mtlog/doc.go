// Package mtlog implements the write-ahead journals of both 2PC roles:
// the coordinator's multitransaction journal (Journal) and the
// participant's prepared-state journal (Participant). Together they make
// the paper's flexible-transaction guarantees (vital sets, compensation,
// acceptable termination states) survive a crash of either side.
//
// The coordinator journal records, per multitransaction: a begin record
// carrying the plan's task topology (which tasks are vital, which are
// compensations and their SQL), a prepared record for every participant
// that entered the prepared-to-commit window (with the LAM address and
// server-side session id needed to re-attach), the global
// commit/rollback decision (forced to stable storage before any commit
// is delivered — the write-ahead rule), per-task terminal outcomes, and
// an end record once the multitransaction is fully terminal.
// SetGroupCommit batches appends from concurrent sessions into shared
// fsyncs; an Append still returns only after the flush covering its
// record completed (DESIGN.md §10).
//
// The participant journal (DESIGN.md §9) fsyncs each PREPARED vote —
// redo SQL plus the coordinator's MTID — before the vote is returned,
// replays in-doubt sessions on restart, and keeps outcome tombstones so
// retried decisions are answered idempotently; tombstones are evicted by
// coordinator acknowledgments and a TTL janitor, and the journal is
// compacted by temp-file + atomic rename.
//
// Record framing on disk:
//
//	+-------+------+----------+----------+-----------------+
//	| magic | type | len (4B) | crc (4B) | payload (JSON)  |
//	+-------+------+----------+----------+-----------------+
//
// The CRC32 (IEEE) covers the type byte, the length field, and the
// payload, so a bit flip anywhere in a record is detected. The decoder
// never trusts the tail of the file: a truncated record, a checksum
// mismatch, or trailing garbage ends the scan at the last valid record
// (the "valid prefix"), which is exactly the recovery semantics a
// crashed append needs.
package mtlog
