package mtlog

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// recMagic starts every record frame.
const recMagic byte = 0xD7

// maxPayload caps one record's payload so a corrupted length field
// cannot make the decoder allocate gigabytes.
const maxPayload = 1 << 20

// ErrCorrupt marks a journal whose tail failed validation; the records
// decoded before the corruption are still valid.
var ErrCorrupt = errors.New("mtlog: corrupt record")

// Type identifies a journal record.
type Type uint8

// Record types.
const (
	// TBegin opens a multitransaction: it carries the task topology the
	// recovery pass needs (vital entries, compensation SQL).
	TBegin Type = iota + 1
	// TPrepared records one participant entering the prepared-to-commit
	// window, with its re-attach coordinates.
	TPrepared
	// TDecision is the global synchronization-point decision for a set
	// of tasks. It is forced to stable storage before the first COMMIT
	// is delivered.
	TDecision
	// TOutcome records one task's terminal status.
	TOutcome
	// TEnd closes a multitransaction: every task is terminal and every
	// pending compensation ran. Ended multitransactions are dropped at
	// the next compaction.
	TEnd
)

// Participant-side record types (the LAM's prepared-state journal, see
// ParticipantJournal). They share the frame format and Record union with
// the coordinator records but never appear in the same file.
const (
	// PPrepared records one local session entering the prepared-to-commit
	// window: the session id a recovering coordinator re-attaches by, the
	// coordinator's multitransaction id, and the deparsed redo statements
	// needed to re-materialize the transaction on a restarted server. It
	// is forced to stable storage before the PREPARED vote goes on the
	// wire.
	PPrepared Type = iota + 16
	// POutcome records the terminal state of a once-prepared session (its
	// durable tombstone). Commit outcomes are forced to stable storage;
	// abort outcomes ride on the next sync — presumed abort covers their
	// loss.
	POutcome
	// PAck records the coordinator's end-of-multitransaction
	// acknowledgment for a session: its journal state carries no further
	// obligation and is dropped at the next compaction.
	PAck
)

func (t Type) String() string {
	switch t {
	case TBegin:
		return "begin"
	case TPrepared:
		return "prepared"
	case TDecision:
		return "decision"
	case TOutcome:
		return "outcome"
	case TEnd:
		return "end"
	case PPrepared:
		return "p-prepared"
	case POutcome:
		return "p-outcome"
	case PAck:
		return "p-ack"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Task statuses recorded in TOutcome records. The values mirror
// dol.TaskStatus but are fixed here so journal files stay readable even
// if the engine's enum is reordered.
const (
	StatusCommitted uint8 = 3
	StatusAborted   uint8 = 4
	StatusError     uint8 = 5
)

// TaskDecl declares one task of a multitransaction plan in the begin
// record: enough to map journal records back to scope entries and to
// re-run a compensation from the journal alone.
type TaskDecl struct {
	Name     string `json:"name"`
	Entry    string `json:"entry,omitempty"`
	Database string `json:"db,omitempty"`
	// Site is the service site (address or in-process service name),
	// needed to reopen a connection for compensation re-runs.
	Site  string `json:"site,omitempty"`
	Vital bool   `json:"vital,omitempty"`
	// Comp marks a compensation task; ForTask names the original task it
	// undoes and SQL is the deparsed compensating statement.
	Comp    bool   `json:"comp,omitempty"`
	ForTask string `json:"for,omitempty"`
	SQL     string `json:"sql,omitempty"`
}

// Record is one journal entry. It is a tagged union: which fields are
// meaningful depends on Type.
type Record struct {
	Type Type   `json:"t"`
	MTID uint64 `json:"mt"`

	// TBegin
	Kind  string     `json:"kind,omitempty"` // sync | dml | multitx
	Tasks []TaskDecl `json:"tasks,omitempty"`

	// TPrepared, TOutcome
	Task string `json:"task,omitempty"`

	// TPrepared: where a recovering coordinator re-attaches. An empty
	// Addr means the session was in-process and died with the
	// coordinator; it cannot be re-attached.
	Addr      string `json:"addr,omitempty"`
	SessionID int64  `json:"sid,omitempty"`

	// TDecision
	Commit  bool     `json:"commit,omitempty"`
	Decided []string `json:"decided,omitempty"`
	// TOutcome, POutcome
	Status uint8 `json:"status,omitempty"`

	// TEnd
	State string `json:"state,omitempty"`

	// PPrepared: the database the session is connected to and the
	// deparsed redo statements of its open transaction, in execution
	// order. SessionID identifies the session in every P* record; MTID
	// carries the coordinator's multitransaction id (0 when the
	// coordinator runs unjournaled).
	DB   string   `json:"pdb,omitempty"`
	Redo []string `json:"redo,omitempty"`
}

// appendRecord encodes one record frame onto buf.
func appendRecord(buf []byte, rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, err
	}
	if len(payload) > maxPayload {
		return buf, fmt.Errorf("mtlog: record payload %d exceeds %d bytes", len(payload), maxPayload)
	}
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write([]byte{byte(rec.Type)})
	crc.Write(lenb[:])
	crc.Write(payload)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc.Sum32())

	buf = append(buf, recMagic, byte(rec.Type))
	buf = append(buf, lenb[:]...)
	buf = append(buf, crcb[:]...)
	buf = append(buf, payload...)
	return buf, nil
}

// DecodeAll scans data and returns every record of its valid prefix
// together with the byte offset where the prefix ends. A clean end of
// input returns a nil error; truncation, checksum mismatch, or garbage
// returns the records decoded so far with an error wrapping ErrCorrupt.
// DecodeAll never panics on malformed input.
func DecodeAll(data []byte) (recs []Record, validEnd int, err error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 10 {
			// A partial header is a torn append, not corruption worth
			// reporting — unless it does not even start with the magic.
			if rest[0] != recMagic {
				return recs, off, fmt.Errorf("%w: garbage at offset %d", ErrCorrupt, off)
			}
			return recs, off, fmt.Errorf("%w: truncated header at offset %d", ErrCorrupt, off)
		}
		if rest[0] != recMagic {
			return recs, off, fmt.Errorf("%w: bad magic at offset %d", ErrCorrupt, off)
		}
		typ := rest[1]
		n := binary.LittleEndian.Uint32(rest[2:6])
		want := binary.LittleEndian.Uint32(rest[6:10])
		if n > maxPayload {
			return recs, off, fmt.Errorf("%w: implausible length %d at offset %d", ErrCorrupt, n, off)
		}
		if len(rest) < 10+int(n) {
			return recs, off, fmt.Errorf("%w: truncated payload at offset %d", ErrCorrupt, off)
		}
		payload := rest[10 : 10+int(n)]
		crc := crc32.NewIEEE()
		crc.Write(rest[1:6]) // type byte + length field
		crc.Write(payload)
		if crc.Sum32() != want {
			return recs, off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		var rec Record
		if uerr := json.Unmarshal(payload, &rec); uerr != nil {
			return recs, off, fmt.Errorf("%w: undecodable payload at offset %d: %v", ErrCorrupt, off, uerr)
		}
		if rec.Type != Type(typ) {
			return recs, off, fmt.Errorf("%w: frame/payload type mismatch at offset %d", ErrCorrupt, off)
		}
		recs = append(recs, rec)
		off += 10 + int(n)
	}
	return recs, off, nil
}

// ReadAll decodes every record of r's valid prefix.
func ReadAll(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	recs, _, derr := DecodeAll(data)
	return recs, derr
}
