package mtlog

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"msql/internal/obs"
)

// Journal metrics (see DESIGN.md §8). Fsync latency is the write-ahead
// rule's price: every TPrepared/TDecision append pays one forced flush —
// or, under group commit, a share of one.
var (
	mAppends = obs.Default().CounterVec("msql_journal_appends_total",
		"Journal records appended, by record type.", "type")
	mFsync = obs.Default().Histogram("msql_journal_fsync_seconds",
		"Latency of the fsync forced by TPrepared/TDecision appends.", nil)
	mBatch = obs.Default().Histogram("msql_journal_group_batch_records",
		"Sync-requiring records made durable per group-commit fsync.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
)

// Journal is an append-only multitransaction log on one file. Appends
// are serialized; records that carry a 2PC obligation (TPrepared,
// TDecision) are fsynced before Append returns, so the write-ahead rule
// — the decision is durable before the first COMMIT is delivered —
// holds across power loss, and every prepared participant the
// coordinator might strand is findable after a restart.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	nextID uint64
	closed bool

	// gc, when non-nil, batches the fsyncs of concurrent sync-requiring
	// appends (group commit). Set once via SetGroupCommit.
	gc *groupCommitter

	// syncRecs counts TPrepared/TDecision appends; fsyncs counts the
	// Append-path fsyncs actually issued. Under group commit fsyncs grows
	// sublinearly in syncRecs — the batching the bench asserts on.
	syncRecs atomic.Int64
	fsyncs   atomic.Int64
}

// Open opens (creating if needed) the journal at path, validates its
// contents, and truncates any torn tail left by a crashed append so new
// records land on a valid prefix. Corruption beyond a torn tail is
// handled the same way: the valid prefix is kept, the rest dropped.
func Open(path string) (*Journal, error) {
	f, recs, err := openValidPrefix(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path, nextID: 1}
	for _, r := range recs {
		if r.MTID >= j.nextID {
			j.nextID = r.MTID + 1
		}
	}
	return j, nil
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// NextID allocates a fresh multitransaction id, unique across restarts
// of the same journal file.
func (j *Journal) NextID() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	id := j.nextID
	j.nextID++
	return id
}

// Append writes one record. TPrepared and TDecision records are forced
// to stable storage before Append returns; an fsync also makes every
// earlier record durable, so a synced decision implies its
// multitransaction's begin and prepared records are on disk too.
//
// With group commit enabled (SetGroupCommit), sync-requiring appends from
// concurrent multitransactions share one fsync: the record's bytes are
// written under the journal lock, the caller registers as a waiter with
// the flusher goroutine, and Append returns only after the batch fsync
// covering those bytes has returned. Durability is never acknowledged
// early — only amortized.
func (j *Journal) Append(rec *Record) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return errors.New("mtlog: journal closed")
	}
	buf, err := appendRecord(nil, rec)
	if err != nil {
		j.mu.Unlock()
		return err
	}
	if _, err := j.f.Write(buf); err != nil {
		j.mu.Unlock()
		return err
	}
	gc := j.gc
	j.mu.Unlock()
	mAppends.With(rec.Type.String()).Inc()
	if rec.Type != TPrepared && rec.Type != TDecision {
		return nil
	}
	j.syncRecs.Add(1)
	if gc != nil {
		return gc.waitDurable()
	}
	start := time.Now()
	j.mu.Lock()
	err = j.syncLocked()
	j.mu.Unlock()
	if err != nil {
		return err
	}
	mFsync.ObserveSince(start)
	return nil
}

// syncLocked fsyncs the journal file and counts the fsync. Callers must
// hold j.mu. The current j.f is synced even if a concurrent Compact
// swapped files since the caller's record was written: compaction itself
// syncs the rewritten file before the rename, so the record is durable
// either way.
func (j *Journal) syncLocked() error {
	if j.closed {
		return errors.New("mtlog: journal closed")
	}
	j.fsyncs.Add(1)
	return j.f.Sync()
}

// SyncStats reports how many sync-requiring records (TPrepared,
// TDecision) have been appended and how many Append-path fsyncs were
// issued for them. Without group commit the two grow in lockstep; with it
// fsyncs lags — the observable proof that concurrent decisions share
// flushes.
func (j *Journal) SyncStats() (syncRecords, fsyncs int64) {
	return j.syncRecs.Load(), j.fsyncs.Load()
}

// SetGroupCommit enables group commit with the given batch window: a
// dedicated flusher goroutine accumulates sync-requiring appends for up
// to window, then makes the whole batch durable with a single fsync and
// only then releases the waiting appenders. A window of zero or less
// leaves the journal in inline-fsync mode. Enable before sharing the
// journal; calling it twice or after Close is a no-op.
func (j *Journal) SetGroupCommit(window time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.gc != nil || window <= 0 {
		return
	}
	gc := &groupCommitter{
		j:      j,
		window: window,
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	j.gc = gc
	go gc.run()
}

// groupCommitter is the journal's batch flusher. Appenders that need
// durability park on a per-append channel; the flusher wakes on the first
// waiter, sleeps the batch window so concurrent decisions can pile in,
// issues one fsync, and signals every waiter with that fsync's result.
type groupCommitter struct {
	j      *Journal
	window time.Duration

	mu      sync.Mutex
	waiters []chan error
	stopped bool

	kick chan struct{} // 1-buffered doorbell from appenders
	stop chan struct{}
	done chan struct{}
}

// waitDurable registers the calling append in the next batch and blocks
// until that batch's fsync has returned. If the flusher has already shut
// down (journal closing), it falls back to an inline fsync so no caller
// is ever left waiting on a dead goroutine.
func (gc *groupCommitter) waitDurable() error {
	ch := make(chan error, 1)
	gc.mu.Lock()
	if gc.stopped {
		gc.mu.Unlock()
		gc.j.mu.Lock()
		err := gc.j.syncLocked()
		gc.j.mu.Unlock()
		return err
	}
	gc.waiters = append(gc.waiters, ch)
	gc.mu.Unlock()
	select {
	case gc.kick <- struct{}{}:
	default:
	}
	return <-ch
}

func (gc *groupCommitter) run() {
	defer close(gc.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-gc.stop:
			gc.mu.Lock()
			gc.stopped = true
			gc.mu.Unlock()
			gc.flush()
			return
		case <-gc.kick:
		}
		// Hold the batch open for the window so decisions racing in from
		// other sessions share the fsync.
		timer.Reset(gc.window)
		select {
		case <-timer.C:
		case <-gc.stop:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		gc.flush()
	}
}

// flush makes every currently-registered waiter's bytes durable with one
// fsync and signals them. Waiter registration happens only after the
// record's bytes are written to the file, so syncing here covers every
// waiter collected.
func (gc *groupCommitter) flush() {
	gc.mu.Lock()
	ws := gc.waiters
	gc.waiters = nil
	gc.mu.Unlock()
	if len(ws) == 0 {
		return
	}
	start := time.Now()
	gc.j.mu.Lock()
	err := gc.j.syncLocked()
	gc.j.mu.Unlock()
	if err == nil {
		mFsync.ObserveSince(start)
		mBatch.Observe(float64(len(ws)))
	}
	for _, ch := range ws {
		ch <- err
	}
}

// Records returns every record currently in the journal (its valid
// prefix).
func (j *Journal) Records() ([]Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recordsLocked()
}

func (j *Journal) recordsLocked() ([]Record, error) {
	data, err := os.ReadFile(j.path)
	if err != nil {
		return nil, err
	}
	recs, _, _ := DecodeAll(data)
	return recs, nil
}

// Compact rewrites the journal keeping only multitransactions that have
// not ended — the fully-terminal ones carry no recovery obligation. The
// rewrite goes through a temp file and rename so a crash mid-compaction
// leaves either the old or the new journal, never a mix.
func (j *Journal) Compact() (dropped int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, errors.New("mtlog: journal closed")
	}
	recs, err := j.recordsLocked()
	if err != nil {
		return 0, err
	}
	ended := map[uint64]bool{}
	for _, r := range recs {
		if r.Type == TEnd {
			ended[r.MTID] = true
		}
	}
	var buf []byte
	for i := range recs {
		if ended[recs[i].MTID] {
			continue
		}
		if buf, err = appendRecord(buf, &recs[i]); err != nil {
			return 0, err
		}
	}
	tmp := j.path + ".compact"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return 0, err
	}
	nf, err := os.OpenFile(tmp, os.O_RDWR, 0o644)
	if err != nil {
		return 0, err
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return 0, err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		nf.Close()
		return 0, err
	}
	if _, err := nf.Seek(int64(len(buf)), 0); err != nil {
		nf.Close()
		return 0, err
	}
	old := j.f
	j.f = nf
	old.Close()
	return len(ended), nil
}

// Close syncs and closes the journal file. With group commit enabled the
// flusher is stopped first and performs a final batch fsync, so every
// append that returned nil is durable before the file handle goes away.
func (j *Journal) Close() error {
	j.mu.Lock()
	gc := j.gc
	j.gc = nil
	j.mu.Unlock()
	if gc != nil {
		close(gc.stop)
		<-gc.done
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	serr := j.f.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// TxState is the reconstructed state of one multitransaction.
type TxState struct {
	MTID  uint64
	Begin *Record
	// Prepared maps task names to their prepared records.
	Prepared map[string]*Record
	// Decisions in append order.
	Decisions []*Record
	// Outcomes maps task names to terminal statuses.
	Outcomes map[string]uint8
	Ended    bool
	EndState string
}

// DecisionFor reports the logged synchronization-point decision for a
// task. A task no decision record covers falls under presumed abort:
// decided is false and the caller must roll it back.
func (s *TxState) DecisionFor(task string) (commit, decided bool) {
	for _, d := range s.Decisions {
		for _, t := range d.Decided {
			if t == task {
				return d.Commit, true
			}
		}
	}
	return false, false
}

// Decl returns the begin-record declaration of a task.
func (s *TxState) Decl(task string) (TaskDecl, bool) {
	if s.Begin == nil {
		return TaskDecl{}, false
	}
	for _, d := range s.Begin.Tasks {
		if d.Name == task {
			return d, true
		}
	}
	return TaskDecl{}, false
}

// Reconstruct folds a record sequence into per-multitransaction states,
// returned in first-appearance order.
func Reconstruct(recs []Record) []*TxState {
	byID := map[uint64]*TxState{}
	var order []*TxState
	get := func(id uint64) *TxState {
		if s, ok := byID[id]; ok {
			return s
		}
		s := &TxState{MTID: id, Prepared: map[string]*Record{}, Outcomes: map[string]uint8{}}
		byID[id] = s
		order = append(order, s)
		return s
	}
	for i := range recs {
		r := &recs[i]
		s := get(r.MTID)
		switch r.Type {
		case TBegin:
			s.Begin = r
		case TPrepared:
			s.Prepared[r.Task] = r
		case TDecision:
			s.Decisions = append(s.Decisions, r)
		case TOutcome:
			s.Outcomes[r.Task] = r.Status
		case TEnd:
			s.Ended = true
			s.EndState = r.State
		}
	}
	return order
}

// States reads and reconstructs the journal's multitransactions.
func (j *Journal) States() ([]*TxState, error) {
	recs, err := j.Records()
	if err != nil {
		return nil, err
	}
	return Reconstruct(recs), nil
}

// String renders a record for logs and debugging.
func (r *Record) String() string {
	switch r.Type {
	case TBegin:
		return fmt.Sprintf("mt%d begin %s (%d tasks)", r.MTID, r.Kind, len(r.Tasks))
	case TPrepared:
		return fmt.Sprintf("mt%d prepared %s sid=%d at %s", r.MTID, r.Task, r.SessionID, r.Addr)
	case TDecision:
		verb := "rollback"
		if r.Commit {
			verb = "commit"
		}
		return fmt.Sprintf("mt%d decision %s %v", r.MTID, verb, r.Decided)
	case TOutcome:
		return fmt.Sprintf("mt%d outcome %s=%d", r.MTID, r.Task, r.Status)
	case TEnd:
		return fmt.Sprintf("mt%d end %s", r.MTID, r.State)
	case PPrepared:
		return fmt.Sprintf("session %d prepared (mt%d, db %s, %d redo stmts)", r.SessionID, r.MTID, r.DB, len(r.Redo))
	case POutcome:
		return fmt.Sprintf("session %d outcome %d", r.SessionID, r.Status)
	case PAck:
		return fmt.Sprintf("session %d acked", r.SessionID)
	default:
		return fmt.Sprintf("mt%d %s", r.MTID, r.Type)
	}
}
