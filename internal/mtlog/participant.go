package mtlog

import (
	"errors"
	"os"
	"sync"
	"time"

	"msql/internal/obs"
)

// Participant-journal metrics. The prepare fsync is the participant's
// half of the write-ahead rule: the vote may not go on the wire before
// the redo state is durable.
var (
	mPAppends = obs.Default().CounterVec("msql_lam_journal_appends_total",
		"Participant-journal records appended, by record type.", "type")
	mPFsync = obs.Default().Histogram("msql_lam_journal_fsync_seconds",
		"Latency of the fsync forced by prepared/commit-outcome appends.", nil)
)

// openValidPrefix opens (creating if needed) the journal file at path,
// decodes its valid prefix, and truncates any torn tail left by a
// crashed append so new records land on a valid prefix. Corruption
// beyond a torn tail is handled the same way: the valid prefix is kept,
// the rest dropped.
func openValidPrefix(path string) (*os.File, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	recs, validEnd, derr := DecodeAll(data)
	if derr != nil {
		if terr := f.Truncate(int64(validEnd)); terr != nil {
			f.Close()
			return nil, nil, terr
		}
	}
	if _, err := f.Seek(int64(validEnd), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return f, recs, nil
}

// ParticipantJournal is a LAM server's durable prepared-state log: the
// participant half of the §3.2.2 in-doubt window. It records sessions
// entering the prepared-to-commit state (with the redo statements needed
// to re-materialize them after a restart), the terminal outcomes of
// once-prepared sessions (durable tombstones), and coordinator
// end-of-multitransaction acknowledgments that release both.
//
// It shares the CRC32-framed record format with the coordinator journal
// but has its own append/fsync and compaction semantics: PPrepared and
// committed POutcome records are forced to stable storage before Append
// returns; compaction drops sessions the coordinator has acknowledged.
type ParticipantJournal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	closed bool
}

// OpenParticipant opens (creating if needed) the participant journal at
// path, truncating any torn tail so new records land on a valid prefix.
func OpenParticipant(path string) (*ParticipantJournal, error) {
	f, _, err := openValidPrefix(path)
	if err != nil {
		return nil, err
	}
	return &ParticipantJournal{f: f, path: path}, nil
}

// Path returns the journal file path.
func (j *ParticipantJournal) Path() string { return j.path }

// Append writes one record. PPrepared records and committed POutcome
// records are forced to stable storage before Append returns — the vote
// and the commit tombstone must survive a crash. Abort outcomes and acks
// ride on the next sync: presumed abort makes their loss harmless.
func (j *ParticipantJournal) Append(rec *Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("mtlog: participant journal closed")
	}
	buf, err := appendRecord(nil, rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	if rec.Type == PPrepared || (rec.Type == POutcome && rec.Status == StatusCommitted) {
		start := time.Now()
		if err := j.f.Sync(); err != nil {
			return err
		}
		mPFsync.ObserveSince(start)
	}
	mPAppends.With(rec.Type.String()).Inc()
	return nil
}

// Records returns every record currently in the journal (its valid
// prefix).
func (j *ParticipantJournal) Records() ([]Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recordsLocked()
}

func (j *ParticipantJournal) recordsLocked() ([]Record, error) {
	data, err := os.ReadFile(j.path)
	if err != nil {
		return nil, err
	}
	recs, _, _ := DecodeAll(data)
	return recs, nil
}

// PSession is the reconstructed journal state of one once-prepared
// session. State 0 means still prepared (in-doubt); otherwise it is the
// recorded terminal StatusCommitted/StatusAborted.
type PSession struct {
	SID   int64
	MTID  uint64
	DB    string
	Redo  []string
	State uint8
	Acked bool
}

// ReconstructParticipant folds a record sequence into per-session
// states, returned in first-appearance (prepare) order. Because a local
// session holds its locks from prepare to commit, prepare order is a
// valid replay order for re-applying redo state after a restart.
//
// A session id can prepare more than once: a DOL program with several
// synchronization points reuses its connection, so a new PPrepared over
// an already-terminal state opens a new round. Each round is returned as
// its own PSession (same SID, in order); an ack covers every round of
// the id, since acknowledgment happens after the whole multitransaction.
func ReconstructParticipant(recs []Record) []*PSession {
	byID := map[int64]*PSession{}
	var order []*PSession
	get := func(id int64) *PSession {
		if s, ok := byID[id]; ok {
			return s
		}
		s := &PSession{SID: id}
		byID[id] = s
		order = append(order, s)
		return s
	}
	for i := range recs {
		r := &recs[i]
		switch r.Type {
		case PPrepared:
			s := get(r.SessionID)
			if s.State != 0 {
				// A fresh prepare over a terminal round: start a new round
				// for the same id.
				s = &PSession{SID: r.SessionID}
				byID[r.SessionID] = s
				order = append(order, s)
			}
			s.MTID, s.DB, s.Redo = r.MTID, r.DB, r.Redo
		case POutcome:
			get(r.SessionID).State = r.Status
		case PAck:
			for _, s := range order {
				if s.SID == r.SessionID {
					s.Acked = true
				}
			}
		}
	}
	return order
}

// Sessions reads and reconstructs the journal's session states.
func (j *ParticipantJournal) Sessions() ([]*PSession, error) {
	recs, err := j.Records()
	if err != nil {
		return nil, err
	}
	return ReconstructParticipant(recs), nil
}

// Compact rewrites the journal keeping only sessions that still carry an
// obligation: prepared sessions awaiting a decision and terminal
// sessions the coordinator has not acknowledged. Acknowledged sessions
// are dropped. The rewrite goes through a temp file and rename so a
// crash mid-compaction leaves either the old or the new journal, never a
// mix.
func (j *ParticipantJournal) Compact() (dropped int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, errors.New("mtlog: participant journal closed")
	}
	recs, err := j.recordsLocked()
	if err != nil {
		return 0, err
	}
	acked := map[int64]bool{}
	for _, r := range recs {
		if r.Type == PAck {
			acked[r.SessionID] = true
		}
	}
	var buf []byte
	for i := range recs {
		if acked[recs[i].SessionID] {
			continue
		}
		if buf, err = appendRecord(buf, &recs[i]); err != nil {
			return 0, err
		}
	}
	tmp := j.path + ".compact"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return 0, err
	}
	nf, err := os.OpenFile(tmp, os.O_RDWR, 0o644)
	if err != nil {
		return 0, err
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return 0, err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		nf.Close()
		return 0, err
	}
	if _, err := nf.Seek(int64(len(buf)), 0); err != nil {
		nf.Close()
		return 0, err
	}
	old := j.f
	j.f = nf
	old.Close()
	return len(acked), nil
}

// Close syncs and closes the journal file.
func (j *ParticipantJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	serr := j.f.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
