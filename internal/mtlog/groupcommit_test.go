package mtlog

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitBatchesFsyncs drives many concurrent sync-requiring
// appends through a group-commit journal and checks the batching is
// real: every append returns durable, yet far fewer fsyncs than records
// were issued.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mt.log")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.SetGroupCommit(2 * time.Millisecond)

	const writers = 32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			<-start
			rec := &Record{Type: TDecision, MTID: id, Commit: true, Decided: []string{"T1"}}
			if err := j.Append(rec); err != nil {
				t.Errorf("append mt%d: %v", id, err)
			}
		}(uint64(i + 1))
	}
	close(start)
	wg.Wait()

	synced, fsyncs := j.SyncStats()
	if synced != writers {
		t.Fatalf("sync records = %d, want %d", synced, writers)
	}
	if fsyncs == 0 {
		t.Fatal("no fsyncs issued")
	}
	if fsyncs >= synced {
		t.Fatalf("group commit did not batch: %d fsyncs for %d records", fsyncs, synced)
	}
	recs, err := j.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers {
		t.Fatalf("records on disk = %d, want %d", len(recs), writers)
	}
}

// TestGroupCommitDurableBeforeReturn checks the write-ahead rule under
// group commit: when Append returns for a decision, the record is already
// in the file (re-readable by an independent open).
func TestGroupCommitDurableBeforeReturn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mt.log")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.SetGroupCommit(time.Millisecond)

	for id := uint64(1); id <= 5; id++ {
		if err := j.Append(&Record{Type: TDecision, MTID: id, Commit: true}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		recs, _, _ := DecodeAll(data)
		found := false
		for _, r := range recs {
			if r.MTID == id && r.Type == TDecision {
				found = true
			}
		}
		if !found {
			t.Fatalf("decision mt%d acknowledged but not on disk", id)
		}
	}
}

// TestGroupCommitCloseDrains races appends against Close: every append
// must return (durable or with an error), never deadlock on a dead
// flusher, and Close must not lose acknowledged records.
func TestGroupCommitCloseDrains(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mt.log")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetGroupCommit(time.Millisecond)

	const writers = 16
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			_ = j.Append(&Record{Type: TDecision, MTID: id, Commit: true})
		}(uint64(i + 1))
	}
	time.Sleep(time.Millisecond)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait() // must terminate: no waiter may hang past Close
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestGroupCommitWithCompact interleaves group-committed appends with
// compaction; the race detector guards the file-handle swap, and ended
// multitransactions must still compact away.
func TestGroupCommitWithCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mt.log")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.SetGroupCommit(time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			j.Append(&Record{Type: TBegin, MTID: id, Kind: "dml"})
			j.Append(&Record{Type: TDecision, MTID: id, Commit: true, Decided: []string{"T1"}})
			j.Append(&Record{Type: TEnd, MTID: id, State: "success"})
		}(uint64(i + 1))
	}
	compactDone := make(chan struct{})
	go func() {
		defer close(compactDone)
		for i := 0; i < 5; i++ {
			if _, err := j.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-compactDone
	if _, err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	states, err := j.States()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range states {
		if !s.Ended {
			t.Fatalf("mt%d survived compaction un-ended", s.MTID)
		}
	}
}

// TestInlineSyncStats checks the stats path without group commit: fsyncs
// track sync records one-for-one.
func TestInlineSyncStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mt.log")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for id := uint64(1); id <= 3; id++ {
		if err := j.Append(&Record{Type: TDecision, MTID: id, Commit: true}); err != nil {
			t.Fatal(err)
		}
	}
	synced, fsyncs := j.SyncStats()
	if synced != 3 || fsyncs != 3 {
		t.Fatalf("inline stats = (%d, %d), want (3, 3)", synced, fsyncs)
	}
}
