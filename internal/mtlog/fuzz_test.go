package mtlog

import (
	"testing"
)

// FuzzDecodeAll throws arbitrary byte strings at the record decoder:
// whatever the input — truncated tails, bit-flipped checksums,
// interleaved garbage — the decoder must return a consistent valid
// prefix, never panic, and never silently accept a frame whose checksum
// does not verify.
func FuzzDecodeAll(f *testing.F) {
	var seed []byte
	var err error
	for _, r := range []*Record{
		{Type: TBegin, MTID: 1, Kind: "sync", Tasks: []TaskDecl{
			{Name: "T1", Entry: "united", Database: "united", Site: "127.0.0.1:9001", Vital: true},
			{Name: "C1", Entry: "avis", Comp: true, ForTask: "T1", SQL: "DELETE FROM t"},
		}},
		{Type: TPrepared, MTID: 1, Task: "T1", Addr: "127.0.0.1:9001", SessionID: 42},
		{Type: TDecision, MTID: 1, Commit: true, Decided: []string{"T1"}},
		{Type: TOutcome, MTID: 1, Task: "T1", Status: StatusCommitted},
		{Type: TEnd, MTID: 1, State: "success"},
	} {
		if seed, err = appendRecord(seed, r); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])              // truncated tail
	f.Add(append([]byte("junk"), seed...)) // garbage prefix
	flipped := append([]byte{}, seed...)
	flipped[len(flipped)/2] ^= 0x40 // bit flip mid-stream
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{recMagic})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, end, err := DecodeAll(data)
		if end < 0 || end > len(data) {
			t.Fatalf("validEnd %d out of range [0,%d]", end, len(data))
		}
		if err == nil && end != len(data) {
			t.Fatalf("nil error but validEnd %d != len %d", end, len(data))
		}
		// The valid prefix must re-decode to the same records cleanly:
		// recovery truncates to validEnd and must not lose or invent
		// records doing so.
		again, end2, err2 := DecodeAll(data[:end])
		if err2 != nil {
			t.Fatalf("valid prefix failed to re-decode: %v", err2)
		}
		if end2 != end || len(again) != len(recs) {
			t.Fatalf("re-decode mismatch: %d/%d records, %d/%d bytes", len(again), len(recs), end2, end)
		}
		// Round-trip: every decoded record must survive re-encoding and
		// re-decoding — what recovery reads, compaction can rewrite.
		var re []byte
		for i := range again {
			var aerr error
			if re, aerr = appendRecord(re, &again[i]); aerr != nil {
				t.Fatalf("re-encode: %v", aerr)
			}
		}
		final, _, ferr := DecodeAll(re)
		if ferr != nil || len(final) != len(again) {
			t.Fatalf("re-encoded records failed to decode: %d/%d (%v)", len(final), len(again), ferr)
		}
	})
}
