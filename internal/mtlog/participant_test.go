package mtlog

import (
	"os"
	"path/filepath"
	"testing"
)

func pjPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "lam.journal")
}

func TestParticipantJournalRoundTrip(t *testing.T) {
	path := pjPath(t)
	j, err := OpenParticipant(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		{Type: PPrepared, SessionID: 1, MTID: 7, DB: "united",
			Redo: []string{"UPDATE flight SET rates = 132.0 WHERE fn = 300"}},
		{Type: PPrepared, SessionID: 2, MTID: 8, DB: "united",
			Redo: []string{"INSERT INTO flight VALUES (400, 'x', 'y', 1.0)"}},
		{Type: POutcome, SessionID: 2, Status: StatusCommitted},
		{Type: PAck, SessionID: 2},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	sessions, err := j.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
	if s := sessions[0]; s.SID != 1 || s.MTID != 7 || s.State != 0 || s.Acked || len(s.Redo) != 1 {
		t.Fatalf("session 1 = %+v", s)
	}
	if s := sessions[1]; s.State != StatusCommitted || !s.Acked {
		t.Fatalf("session 2 = %+v", s)
	}

	// Compaction drops the acknowledged session, keeps the in-doubt one.
	dropped, err := j.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	sessions, err = j.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 || sessions[0].SID != 1 {
		t.Fatalf("post-compaction sessions = %+v", sessions)
	}
	// Appends still land on the compacted file.
	if err := j.Append(&Record{Type: POutcome, SessionID: 1, Status: StatusAborted}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A reopened journal sees the full surviving state.
	j2, err := OpenParticipant(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	sessions, err = j2.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 || sessions[0].State != StatusAborted {
		t.Fatalf("reopened sessions = %+v", sessions)
	}
}

// TestParticipantJournalTornTail is the crashed-append case: a journal
// whose last record was torn mid-write must reopen cleanly on its valid
// prefix, with the torn bytes truncated away so new appends decode.
func TestParticipantJournalTornTail(t *testing.T) {
	path := pjPath(t)
	j, err := OpenParticipant(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Record{Type: PPrepared, SessionID: 5, MTID: 3, DB: "avis",
		Redo: []string{"UPDATE cars SET carst = 'rented' WHERE code = 1"}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Record{Type: POutcome, SessionID: 5, Status: StatusCommitted}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop the last record mid-payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenParticipant(path)
	if err != nil {
		t.Fatal(err)
	}
	sessions, err := j2.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	// The torn outcome is gone; the prepared record survives — exactly
	// the presumed-abort-safe prefix.
	if len(sessions) != 1 || sessions[0].State != 0 {
		t.Fatalf("sessions after torn tail = %+v", sessions)
	}
	// The file was truncated to the valid prefix, and appends decode.
	if err := j2.Append(&Record{Type: PAck, SessionID: 5}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(mustOpen(t, path))
	if err != nil {
		t.Fatalf("journal not cleanly decodable after torn-tail reopen: %v", err)
	}
	if len(recs) != 2 || recs[1].Type != PAck {
		t.Fatalf("records = %+v", recs)
	}
}

func mustOpen(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}
