package decompose

import (
	"errors"
	"strings"
	"testing"

	"msql/internal/catalog"
	"msql/internal/msqlparser"
	"msql/internal/relstore"
	"msql/internal/semvar"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
)

func paperGDD(t testing.TB) *catalog.GDD {
	t.Helper()
	g := catalog.NewGDD()
	put := func(db, svc, table string, cols ...[2]string) {
		if _, err := g.ServiceOf(db); err != nil {
			g.DefineDatabase(db, svc)
		}
		def := catalog.TableDef{Name: table}
		for _, c := range cols {
			k := sqlval.KindString
			switch c[1] {
			case "int":
				k = sqlval.KindInt
			case "float":
				k = sqlval.KindFloat
			}
			def.Columns = append(def.Columns, relstore.Column{Name: c[0], Type: k})
		}
		if err := g.PutTable(db, def); err != nil {
			t.Fatal(err)
		}
	}
	col := func(n, t string) [2]string { return [2]string{n, t} }
	put("continental", "svc1", "flights",
		col("flnu", "int"), col("source", "str"), col("destination", "str"), col("day", "str"), col("rate", "float"))
	put("united", "svc3", "flight",
		col("fn", "int"), col("sour", "str"), col("dest", "str"), col("day", "str"), col("rates", "float"))
	put("avis", "svc4", "cars",
		col("code", "int"), col("cartype", "str"), col("rate", "float"), col("carst", "str"))
	put("national", "svc5", "vehicle",
		col("vcode", "int"), col("vty", "str"), col("vstat", "str"))
	return g
}

func expandOne(t *testing.T, g *catalog.GDD, useSrc, bodySrc string) semvar.Elementary {
	t.Helper()
	st, err := msqlparser.ParseStatement(useSrc)
	if err != nil {
		t.Fatal(err)
	}
	scope := semvar.ScopeFromUse(st.(*msqlparser.UseStmt))
	body, err := sqlparser.ParseStatement(bodySrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := semvar.Expand(g, scope, nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 1 {
		t.Fatalf("expected one elementary query, got %d", len(res.Queries))
	}
	return res.Queries[0]
}

func TestDecomposeFanOutPassThrough(t *testing.T) {
	g := paperGDD(t)
	el := expandOne(t, g, "USE avis", "SELECT code FROM cars WHERE carst = 'available'")
	plan, err := Decompose(g, el)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Subqueries) != 1 || plan.Final != nil || len(plan.Ships) != 0 {
		t.Fatalf("plan = %+v", plan)
	}
	sq := plan.Subqueries[0]
	if sq.Database != "avis" || sq.SQL() != "SELECT code FROM cars WHERE carst = 'available'" {
		t.Fatalf("subquery = %+v", sq)
	}
}

func TestDecomposeSingleDBGlobalDML(t *testing.T) {
	g := paperGDD(t)
	el := expandOne(t, g, "USE continental united", "UPDATE continental.flights SET rate = rate * 1.1")
	plan, err := Decompose(g, el)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Subqueries) != 1 || plan.Subqueries[0].Database != "continental" {
		t.Fatalf("plan = %+v", plan)
	}
	if got := plan.Subqueries[0].SQL(); got != "UPDATE flights SET rate = rate * 1.1" {
		t.Fatalf("sql = %s", got)
	}
}

func TestDecomposeCrossJoinSelect(t *testing.T) {
	g := paperGDD(t)
	el := expandOne(t, g, "USE continental united",
		`SELECT c.flnu, u.fn FROM continental.flights c, united.flight u
		 WHERE c.day = 'mon' AND u.day = 'mon' AND c.rate > u.rates`)
	plan, err := Decompose(g, el)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Subqueries) != 2 || len(plan.Ships) != 2 || plan.Final == nil {
		t.Fatalf("plan shape: %d subqueries, %d ships, final=%v", len(plan.Subqueries), len(plan.Ships), plan.Final)
	}
	if plan.CoordinatorDB != "continental" {
		t.Fatalf("coordinator = %s", plan.CoordinatorDB)
	}
	// Local predicates pushed down.
	contSQL := plan.Subqueries[0].SQL()
	if !strings.Contains(contSQL, "WHERE c.day = 'mon'") {
		t.Errorf("continental subquery lost its local predicate: %s", contSQL)
	}
	if !strings.Contains(contSQL, "c.flnu AS c_flnu") || !strings.Contains(contSQL, "c.rate AS c_rate") {
		t.Errorf("continental subquery projection: %s", contSQL)
	}
	unitSQL := plan.Subqueries[1].SQL()
	if !strings.Contains(unitSQL, "WHERE u.day = 'mon'") {
		t.Errorf("united subquery: %s", unitSQL)
	}
	// The cross predicate moves to Q'.
	final := plan.FinalSQL()
	want := "SELECT c_flnu AS flnu, u_fn AS fn FROM mtmp_continental, mtmp_united WHERE c_rate > u_rates"
	if final != want {
		t.Errorf("final:\n got  %s\n want %s", final, want)
	}
	// Shipped schemas carry the GDD types.
	for _, s := range plan.Ships {
		for _, c := range s.Columns {
			if c.Name == "c_rate" && c.Type != sqlval.KindFloat {
				t.Errorf("c_rate type = %v", c.Type)
			}
			if c.Name == "c_flnu" && c.Type != sqlval.KindInt {
				t.Errorf("c_flnu type = %v", c.Type)
			}
		}
	}
	if len(plan.Cleanup) != 2 {
		t.Fatalf("cleanup = %v", plan.Cleanup)
	}
}

func TestDecomposeAggregatesStayGlobal(t *testing.T) {
	g := paperGDD(t)
	el := expandOne(t, g, "USE continental united",
		`SELECT c.source, COUNT(c.flnu) AS n FROM continental.flights c, united.flight u
		 WHERE c.day = u.day GROUP BY c.source ORDER BY n DESC`)
	plan, err := Decompose(g, el)
	if err != nil {
		t.Fatal(err)
	}
	final := plan.FinalSQL()
	if !strings.Contains(final, "GROUP BY c_source") || !strings.Contains(final, "COUNT(c_flnu)") {
		t.Errorf("final = %s", final)
	}
	for _, sq := range plan.Subqueries {
		if strings.Contains(sq.SQL(), "COUNT") {
			t.Errorf("aggregate leaked into local subquery: %s", sq.SQL())
		}
	}
}

func TestDecomposeInsertTransfer(t *testing.T) {
	g := paperGDD(t)
	el := expandOne(t, g, "USE avis national",
		"INSERT INTO avis.cars (code, cartype) SELECT v.vcode, v.vty FROM national.vehicle v WHERE v.vstat = 'FREE'")
	plan, err := Decompose(g, el)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Subqueries) != 1 || plan.Subqueries[0].Database != "national" {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.CoordinatorDB != "avis" {
		t.Fatalf("coordinator = %s", plan.CoordinatorDB)
	}
	if !strings.Contains(plan.Subqueries[0].SQL(), "FROM vehicle v WHERE v.vstat = 'FREE'") {
		t.Errorf("source subquery = %s", plan.Subqueries[0].SQL())
	}
	final := plan.FinalSQL()
	want := "INSERT INTO cars (code, cartype) SELECT code, cartype FROM mtmp_xfer"
	if final != want {
		t.Errorf("final:\n got  %s\n want %s", final, want)
	}
	if len(plan.Ships) != 1 || plan.Ships[0].Table != "mtmp_xfer" || len(plan.Ships[0].Columns) != 2 {
		t.Fatalf("ships = %+v", plan.Ships)
	}
}

func TestDecomposeInsertSameDB(t *testing.T) {
	g := paperGDD(t)
	el := expandOne(t, g, "USE avis national",
		"INSERT INTO avis.cars (code) SELECT c.code FROM avis.cars c WHERE c.carst = 'sold'")
	plan, err := Decompose(g, el)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Subqueries) != 1 || plan.Final != nil {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Subqueries[0].Database != "avis" {
		t.Fatalf("db = %s", plan.Subqueries[0].Database)
	}
}

func TestDecomposeUnsupportedShapes(t *testing.T) {
	g := paperGDD(t)

	// SELECT * across databases.
	el := expandOne(t, g, "USE continental united",
		"SELECT c.flnu, u.fn FROM continental.flights c, united.flight u")
	sel := el.Stmt.(*sqlparser.SelectStmt)
	sel.Items = []sqlparser.SelectItem{{Star: true}}
	if _, err := Decompose(g, el); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("star err = %v", err)
	}

	// Global SELECT with a subquery.
	el2 := semvar.Elementary{Global: true}
	stmt, _ := sqlparser.ParseStatement(
		"SELECT c.flnu FROM continental.flights c WHERE c.rate = (SELECT MIN(c2.rate) FROM continental.flights c2)")
	el2.Stmt = stmt
	if _, err := Decompose(g, el2); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("subquery err = %v", err)
	}
}

func TestDecomposeDiversePredicates(t *testing.T) {
	g := paperGDD(t)
	el := expandOne(t, g, "USE continental united",
		`SELECT c.flnu, u.fn FROM continental.flights c, united.flight u
		 WHERE c.rate BETWEEN 50 AND 150 AND u.day LIKE 'm%'
		   AND c.day IN ('mon', 'tue') AND u.dest IS NOT NULL
		   AND NOT (c.flnu = 0) AND c.day = u.day`)
	plan, err := Decompose(g, el)
	if err != nil {
		t.Fatal(err)
	}
	contSQL := plan.Subqueries[0].SQL()
	for _, want := range []string{"BETWEEN 50 AND 150", "IN ('mon', 'tue')", "NOT (c.flnu = 0)"} {
		if !strings.Contains(contSQL, want) {
			t.Errorf("continental predicate missing %q: %s", want, contSQL)
		}
	}
	unitSQL := plan.Subqueries[1].SQL()
	for _, want := range []string{"LIKE 'm%'", "IS NOT NULL"} {
		if !strings.Contains(unitSQL, want) {
			t.Errorf("united predicate missing %q: %s", want, unitSQL)
		}
	}
	if !strings.Contains(plan.FinalSQL(), "c_day = u_day") {
		t.Errorf("cross predicate not in Q': %s", plan.FinalSQL())
	}
}

func TestDecomposePureCrossJoinShipsConstant(t *testing.T) {
	g := paperGDD(t)
	el := expandOne(t, g, "USE continental united",
		"SELECT c.flnu FROM continental.flights c, united.flight u")
	plan, err := Decompose(g, el)
	if err != nil {
		t.Fatal(err)
	}
	// united contributes only cardinality.
	found := false
	for _, sq := range plan.Subqueries {
		if sq.Database == "united" && strings.Contains(sq.SQL(), "one_united") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected constant column for united: %+v", plan.Subqueries)
	}
}
