// Package decompose implements the decomposition phase of the paper's
// pipeline (§4.3): a global fully qualified elementary query Q is split
// into SQL subqueries q1..qn — one per involved LDBS, each as large as
// possible — plus a modified global query Q' that one LDBS, designated as
// the coordinator, evaluates over shipped partial results.
//
// Fan-out elementary queries (one database) pass through as a single
// subquery. Cross-database SELECTs are split by query-graph analysis:
// WHERE conjuncts whose references stay inside one database execute
// there; cross-database conjuncts, grouping, ordering and aggregation
// move to Q'. Cross-database INSERT ... SELECT ships the source result to
// the target database.
package decompose

import (
	"errors"
	"fmt"
	"sort"

	"msql/internal/catalog"
	"msql/internal/relstore"
	"msql/internal/semvar"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
)

// Decomposition errors.
var (
	ErrUnsupported = errors.New("decompose: unsupported global query shape")
)

// Subquery is one local piece, executed at a single database.
type Subquery struct {
	Database string // actual database name
	Name     string // scope name (alias) when known, else the database
	Vital    bool
	Stmt     sqlparser.Statement
}

// SQL renders the subquery.
func (s Subquery) SQL() string { return sqlparser.Deparse(s.Stmt) }

// Ship moves the result of a subquery into a temporary table at the
// coordinator.
type Ship struct {
	FromIndex int // index into Plan.Subqueries
	Table     string
	Columns   []relstore.Column
}

// Plan is the decomposed form of one elementary query.
type Plan struct {
	// Subqueries run at their databases, in parallel when independent.
	Subqueries []Subquery
	// CoordinatorDB hosts the temporary tables and evaluates Final. Empty
	// for plans without a global step.
	CoordinatorDB string
	// Ships move subquery results to the coordinator.
	Ships []Ship
	// Final is the modified global query Q', evaluated at the coordinator
	// after all ships complete. Nil when no global step is needed.
	Final sqlparser.Statement
	// Cleanup lists temporary tables to drop at the coordinator.
	Cleanup []string
}

// FinalSQL renders the modified global query.
func (p *Plan) FinalSQL() string {
	if p.Final == nil {
		return ""
	}
	return sqlparser.Deparse(p.Final)
}

// Decompose turns one elementary query into a plan.
func Decompose(gdd *catalog.GDD, el semvar.Elementary) (*Plan, error) {
	if !el.Global {
		return &Plan{Subqueries: []Subquery{{
			Database: el.Entry.Database,
			Name:     el.Entry.Name,
			Vital:    el.Entry.Vital,
			Stmt:     el.Stmt,
		}}}, nil
	}
	switch st := el.Stmt.(type) {
	case *sqlparser.SelectStmt:
		return decomposeSelect(gdd, st)
	case *sqlparser.InsertStmt:
		return decomposeInsert(gdd, st)
	case *sqlparser.UpdateStmt:
		return singleDBDML(st.Table, el.Stmt)
	case *sqlparser.DeleteStmt:
		return singleDBDML(st.Table, el.Stmt)
	case *sqlparser.CreateTableStmt:
		return singleDBDML(st.Table, el.Stmt)
	case *sqlparser.DropTableStmt:
		return singleDBDML(st.Table, el.Stmt)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupported, el.Stmt)
	}
}

// singleDBDML strips the database prefix of a DML/DDL statement targeting
// one database.
func singleDBDML(table sqlparser.ObjectName, stmt sqlparser.Statement) (*Plan, error) {
	if len(table.Parts) < 2 {
		return nil, fmt.Errorf("%w: unqualified global DML target", ErrUnsupported)
	}
	db := table.Parts[0]
	local := sqlparser.RewriteStatement(stmt, sqlparser.Rewriter{
		Table: func(n sqlparser.ObjectName) sqlparser.ObjectName {
			if len(n.Parts) >= 2 && n.Parts[0] == db {
				return sqlparser.Name(n.Parts[1:]...)
			}
			return n
		},
	})
	// A DML statement whose subqueries reference other databases cannot
	// be pushed to one site.
	foreign := false
	sqlparser.WalkExprs(local, func(e sqlparser.Expr) {
		sub, ok := e.(*sqlparser.SubqueryExpr)
		if !ok {
			return
		}
		for _, f := range sub.Query.From {
			if len(f.Name.Parts) >= 2 {
				foreign = true
			}
		}
	})
	if foreign {
		return nil, fmt.Errorf("%w: DML with cross-database subquery", ErrUnsupported)
	}
	return &Plan{Subqueries: []Subquery{{Database: db, Name: db, Stmt: local}}}, nil
}

// group is the per-database portion of a global SELECT.
type group struct {
	db      string
	refs    []sqlparser.TableRef // with db-qualified names
	aliases map[string]bool
}

// decomposeSelect splits a cross-database SELECT.
func decomposeSelect(gdd *catalog.GDD, sel *sqlparser.SelectStmt) (*Plan, error) {
	if hasSubquery(sel) {
		return nil, fmt.Errorf("%w: global SELECT with nested subquery", ErrUnsupported)
	}
	groups, aliasDB, err := groupByDatabase(sel.From)
	if err != nil {
		return nil, err
	}
	if len(groups) == 1 {
		// One database after all: push everything there.
		local := stripDBPrefix(sel, groups[0].db)
		return &Plan{Subqueries: []Subquery{{Database: groups[0].db, Name: groups[0].db, Stmt: local}}}, nil
	}

	conjuncts := splitConjuncts(sel.Where)
	localConj := make(map[string][]sqlparser.Expr)
	var globalConj []sqlparser.Expr
	for _, c := range conjuncts {
		dbs := referencedDBs(c, aliasDB)
		if len(dbs) == 1 {
			var db string
			for d := range dbs {
				db = d
			}
			localConj[db] = append(localConj[db], c)
		} else {
			globalConj = append(globalConj, c)
		}
	}

	// Columns needed above the local level: everything referenced by the
	// projection, global conjuncts, grouping, having and ordering.
	needed := make(map[string]map[string]bool) // alias -> column set
	note := func(e sqlparser.Expr) {
		walk(e, func(x sqlparser.Expr) {
			if c, ok := x.(sqlparser.ColRef); ok && len(c.Parts) == 2 {
				if needed[c.Parts[0]] == nil {
					needed[c.Parts[0]] = make(map[string]bool)
				}
				needed[c.Parts[0]][c.Parts[1]] = true
			}
		})
	}
	for _, it := range sel.Items {
		if it.Star {
			return nil, fmt.Errorf("%w: SELECT * in a cross-database join; name the columns", ErrUnsupported)
		}
		note(it.Expr)
	}
	for _, c := range globalConj {
		note(c)
	}
	for _, g := range sel.GroupBy {
		note(g)
	}
	note(sel.Having)
	for _, o := range sel.OrderBy {
		note(o.Expr)
	}

	coordinator := groups[0].db
	plan := &Plan{CoordinatorDB: coordinator}
	rename := make(map[string]string) // "alias.col" -> shipped column name

	for _, g := range groups {
		// Local subquery: needed columns of this group's aliases.
		var items []sqlparser.SelectItem
		var cols []relstore.Column
		aliasList := sortedKeys(g.aliases)
		for _, alias := range aliasList {
			colSet := needed[alias]
			for _, col := range sortedKeys(colSet) {
				shipped := alias + "_" + col
				items = append(items, sqlparser.SelectItem{
					Expr:  sqlparser.ColRef{Parts: []string{alias, col}},
					Alias: shipped,
				})
				rename[alias+"."+col] = shipped
				ct, err := columnType(gdd, g, alias, col)
				if err != nil {
					return nil, err
				}
				cols = append(cols, relstore.Column{Name: shipped, Type: ct.Type, Width: ct.Width})
			}
		}
		if len(items) == 0 {
			// The group participates only through its cardinality (e.g. a
			// pure cross join); ship a constant.
			items = append(items, sqlparser.SelectItem{
				Expr:  &sqlparser.Literal{Val: oneValue()},
				Alias: "one_" + g.db,
			})
			cols = append(cols, relstore.Column{Name: "one_" + g.db, Type: oneValue().K})
		}
		local := &sqlparser.SelectStmt{Items: items, Limit: -1}
		for _, r := range g.refs {
			local.From = append(local.From, sqlparser.TableRef{
				Name:  sqlparser.Name(r.Name.Parts[1]),
				Alias: r.Alias,
			})
		}
		local.Where = conjoin(localConj[g.db])
		plan.Subqueries = append(plan.Subqueries, Subquery{Database: g.db, Name: g.db, Stmt: local})
		tmp := "mtmp_" + g.db
		plan.Ships = append(plan.Ships, Ship{FromIndex: len(plan.Subqueries) - 1, Table: tmp, Columns: cols})
		plan.Cleanup = append(plan.Cleanup, tmp)
	}

	// Q': the original query over the temp tables, with alias.col renamed
	// to the shipped single-part names.
	rw := sqlparser.Rewriter{
		Col: func(c sqlparser.ColRef) sqlparser.Expr {
			if len(c.Parts) == 2 {
				if n, ok := rename[c.Parts[0]+"."+c.Parts[1]]; ok {
					return sqlparser.ColRef{Parts: []string{n}}
				}
			}
			return c
		},
	}
	final := rw.RewriteSelect(sel)
	// Keep the user's column names on the final projection: a shipped
	// column alias_col is renamed back to its original column name.
	for i := range final.Items {
		if final.Items[i].Alias != "" || final.Items[i].Star {
			continue
		}
		if orig, ok := sel.Items[i].Expr.(sqlparser.ColRef); ok && len(orig.Parts) == 2 {
			final.Items[i].Alias = orig.Parts[1]
		}
	}
	final.From = nil
	for _, s := range plan.Ships {
		final.From = append(final.From, sqlparser.TableRef{Name: sqlparser.Name(s.Table)})
	}
	final.Where = conjoinRewritten(globalConj, rw)
	plan.Final = final
	return plan, nil
}

// decomposeInsert handles INSERT INTO dbT.t ... with a SELECT possibly at
// another database.
func decomposeInsert(gdd *catalog.GDD, ins *sqlparser.InsertStmt) (*Plan, error) {
	if len(ins.Table.Parts) < 2 {
		return nil, fmt.Errorf("%w: unqualified global INSERT target", ErrUnsupported)
	}
	targetDB := ins.Table.Parts[0]
	targetTable := ins.Table.Parts[1]
	if ins.Query == nil {
		// Literal inserts go straight to the target.
		return singleDBDML(ins.Table, ins)
	}
	groups, _, err := groupByDatabase(ins.Query.From)
	if err != nil {
		return nil, err
	}
	if len(groups) == 1 && groups[0].db == targetDB {
		return singleDBDML(ins.Table, ins)
	}
	if len(groups) != 1 {
		return nil, fmt.Errorf("%w: INSERT ... SELECT joining several databases", ErrUnsupported)
	}
	srcDB := groups[0].db
	// The data transfer pattern: run the SELECT at the source, ship the
	// rows to the target, insert there from the temp table.
	localSel := stripDBPrefix(ins.Query, srcDB).(*sqlparser.SelectStmt)
	// Column descriptors for the shipped table come from the target
	// table's schema (the INSERT column list defines arity and types).
	tdef, err := gdd.Table(targetDB, targetTable)
	if err != nil {
		return nil, err
	}
	wanted := ins.Columns
	if len(wanted) == 0 {
		wanted = tdef.ColumnNames()
	}
	var cols []relstore.Column
	for _, w := range wanted {
		found := false
		for _, c := range tdef.Columns {
			if c.Name == w {
				cols = append(cols, c)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("decompose: target %s.%s has no column %s", targetDB, targetTable, w)
		}
	}
	if len(localSel.Items) != len(cols) {
		return nil, fmt.Errorf("decompose: INSERT has %d target columns but SELECT yields %d", len(cols), len(localSel.Items))
	}
	tmp := "mtmp_xfer"
	shipCols := make([]relstore.Column, len(cols))
	for i, c := range cols {
		shipCols[i] = relstore.Column{Name: c.Name, Type: c.Type, Width: c.Width}
	}
	finalIns := &sqlparser.InsertStmt{
		Table:   sqlparser.Name(targetTable),
		Columns: append([]string(nil), wanted...),
		Query: &sqlparser.SelectStmt{
			Items: starItems(wanted),
			From:  []sqlparser.TableRef{{Name: sqlparser.Name(tmp)}},
			Limit: -1,
		},
	}
	return &Plan{
		Subqueries:    []Subquery{{Database: srcDB, Name: srcDB, Stmt: localSel}},
		CoordinatorDB: targetDB,
		Ships:         []Ship{{FromIndex: 0, Table: tmp, Columns: shipCols}},
		Final:         finalIns,
		Cleanup:       []string{tmp},
	}, nil
}

func starItems(cols []string) []sqlparser.SelectItem {
	items := make([]sqlparser.SelectItem, len(cols))
	for i, c := range cols {
		items[i] = sqlparser.SelectItem{Expr: sqlparser.ColRef{Parts: []string{c}}}
	}
	return items
}

// --- helpers ---

func groupByDatabase(from []sqlparser.TableRef) ([]*group, map[string]string, error) {
	byDB := make(map[string]*group)
	aliasDB := make(map[string]string)
	var order []*group
	for _, f := range from {
		if len(f.Name.Parts) < 2 {
			return nil, nil, fmt.Errorf("%w: unqualified table %s in global query", ErrUnsupported, f.Name)
		}
		db := f.Name.Parts[0]
		g, ok := byDB[db]
		if !ok {
			g = &group{db: db, aliases: make(map[string]bool)}
			byDB[db] = g
			order = append(order, g)
		}
		alias := f.Alias
		if alias == "" {
			alias = f.Name.Parts[1]
		}
		g.refs = append(g.refs, sqlparser.TableRef{Name: f.Name, Alias: alias})
		g.aliases[alias] = true
		aliasDB[alias] = db
	}
	return order, aliasDB, nil
}

func splitConjuncts(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlparser.BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sqlparser.Expr{e}
}

func conjoin(cs []sqlparser.Expr) sqlparser.Expr {
	var out sqlparser.Expr
	for _, c := range cs {
		if out == nil {
			out = c
		} else {
			out = &sqlparser.BinaryExpr{Op: "AND", L: out, R: c}
		}
	}
	return out
}

func conjoinRewritten(cs []sqlparser.Expr, rw sqlparser.Rewriter) sqlparser.Expr {
	var rewritten []sqlparser.Expr
	for _, c := range cs {
		rewritten = append(rewritten, rw.RewriteExpr(c))
	}
	return conjoin(rewritten)
}

func referencedDBs(e sqlparser.Expr, aliasDB map[string]string) map[string]bool {
	out := make(map[string]bool)
	walk(e, func(x sqlparser.Expr) {
		if c, ok := x.(sqlparser.ColRef); ok && len(c.Parts) == 2 {
			if db, ok := aliasDB[c.Parts[0]]; ok {
				out[db] = true
			}
		}
	})
	return out
}

func walk(e sqlparser.Expr, fn func(sqlparser.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		walk(x.L, fn)
		walk(x.R, fn)
	case *sqlparser.UnaryExpr:
		walk(x.X, fn)
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			walk(a, fn)
		}
	case *sqlparser.InExpr:
		walk(x.X, fn)
		for _, a := range x.List {
			walk(a, fn)
		}
	case *sqlparser.BetweenExpr:
		walk(x.X, fn)
		walk(x.Lo, fn)
		walk(x.Hi, fn)
	case *sqlparser.IsNullExpr:
		walk(x.X, fn)
	case *sqlparser.LikeExpr:
		walk(x.X, fn)
		walk(x.Pattern, fn)
	}
}

func hasSubquery(s sqlparser.Statement) bool {
	found := false
	sqlparser.WalkExprs(s, func(e sqlparser.Expr) {
		switch x := e.(type) {
		case *sqlparser.SubqueryExpr:
			found = true
		case *sqlparser.InExpr:
			if x.Query != nil {
				found = true
			}
		}
	})
	return found
}

// stripDBPrefix removes "db." prefixes from all table references.
func stripDBPrefix(s sqlparser.Statement, db string) sqlparser.Statement {
	return sqlparser.RewriteStatement(s, sqlparser.Rewriter{
		Table: func(n sqlparser.ObjectName) sqlparser.ObjectName {
			if len(n.Parts) >= 2 && n.Parts[0] == db {
				return sqlparser.Name(n.Parts[1:]...)
			}
			return n
		},
	})
}

func columnType(gdd *catalog.GDD, g *group, alias, col string) (relstore.Column, error) {
	for _, r := range g.refs {
		if r.Alias != alias {
			continue
		}
		def, err := gdd.Table(g.db, r.Name.Parts[1])
		if err != nil {
			return relstore.Column{}, err
		}
		for _, c := range def.Columns {
			if c.Name == col {
				return c, nil
			}
		}
	}
	return relstore.Column{}, fmt.Errorf("decompose: no column %s.%s in %s", alias, col, g.db)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func oneValue() sqlval.Value { return sqlval.Int(1) }
