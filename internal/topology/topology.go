// Package topology generates reproducible mixed-capability LAM fleets
// for scale and chaos testing. A Spec (site count, backend mix, seed)
// deterministically expands into a Plan: per-site service names,
// databases, storage backends (the full relstore engine or the
// flat-file csv store), capability profiles (Oracle-like two-phase,
// Ingres-like DDL-autocommit, autocommit-only), assigned imported
// tables, and bootstrap SQL. The same seed always yields the same
// fleet, so a failing 50-site scenario replays exactly.
//
// A Plan is independent of how its sites are served: Launch stands the
// whole fleet up in-process (one lam TCP server per site, each with its
// own participant journal), while chaos tests can carve out victim
// sites and serve them as crash-test child processes from the same
// SiteSpec. Script emits the INCORPORATE SERVICE / IMPORT DATABASE
// scenario script and Units generates deterministic mixed-capability
// multitransaction workloads over the fleet.
package topology

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"time"

	"msql/internal/csvstore"
	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/mtlog"
)

// durationMS converts a millisecond count, zero staying zero (server
// default).
func durationMS(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

// Backend and profile names used in SiteSpec (the same vocabulary the
// chaos child Config speaks).
const (
	BackendRel = "rel"
	BackendCSV = "csv"

	ProfileOracle     = "oracle"
	ProfileIngres     = "ingres"
	ProfileAutoCommit = "autocommit"
)

// Spec describes the fleet to generate. The zero value is usable:
// defaults fill in below.
type Spec struct {
	// Sites is the number of LAM sites (default 12, minimum 4).
	Sites int
	// Seed makes the generation deterministic; the same seed and spec
	// always produce the same plan (default 1).
	Seed int64
	// CSVFraction is the fraction of sites on the csv backend with the
	// autocommit-only profile (default 0.25).
	CSVFraction float64
	// IngresFraction is the fraction of sites on the rel backend with
	// the Ingres-like profile — DDL autocommits (default 0.25). The
	// remainder run the Oracle-like full-2PC profile.
	IngresFraction float64
	// RowsPerTable seeds each table with that many rows (default 4).
	RowsPerTable int
	// TombstoneTTLMS and CompactEvery configure the in-process LAM
	// servers' tombstone eviction and journal compaction (zero = server
	// defaults, except CompactEvery which defaults to 1 so journals
	// drain promptly in tests).
	TombstoneTTLMS int
	CompactEvery   int
}

func (s Spec) withDefaults() Spec {
	if s.Sites <= 0 {
		s.Sites = 12
	}
	if s.Sites < 4 {
		s.Sites = 4
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.CSVFraction <= 0 {
		s.CSVFraction = 0.25
	}
	if s.IngresFraction <= 0 {
		s.IngresFraction = 0.25
	}
	if s.RowsPerTable <= 0 {
		s.RowsPerTable = 4
	}
	if s.CompactEvery <= 0 {
		s.CompactEvery = 1
	}
	return s
}

// SiteSpec is one generated site, decoupled from how it is served.
type SiteSpec struct {
	Index   int
	Service string // svc_t00, svc_t01, ...
	DB      string // db00, db01, ...
	Backend string // BackendRel or BackendCSV
	Profile string // ProfileOracle, ProfileIngres, or ProfileAutoCommit
	// AutoCommitOnly marks a site without a prepare interface; the
	// scenario script incorporates it COMMITMODE COMMIT and vital
	// workload entries on it carry compensation.
	AutoCommitOnly bool
	// Tables are the imported tables assigned to this site. Every site
	// carries "acct"; even-indexed sites also carry "orders", so
	// multitable queries exercise pertinence skipping.
	Tables []string
	// Boot is the bootstrap SQL establishing the deterministic base
	// state (the same statements a chaos child would run).
	Boot []string
}

// LDBMSProfile returns the capability profile the spec names.
func (s SiteSpec) LDBMSProfile() ldbms.Profile {
	switch s.Profile {
	case ProfileIngres:
		return ldbms.ProfileIngresLike()
	case ProfileAutoCommit:
		return ldbms.ProfileAutoCommitOnly()
	default:
		return ldbms.ProfileOracleLike()
	}
}

// Plan is a generated fleet layout.
type Plan struct {
	Spec  Spec
	Sites []SiteSpec
}

// Generate deterministically expands a Spec into a Plan. Backends are
// assigned by a seeded shuffle: round(Sites*CSVFraction) csv sites,
// round(Sites*IngresFraction) Ingres-like sites, Oracle-like remainder.
func Generate(spec Spec) *Plan {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	nCSV := int(float64(spec.Sites)*spec.CSVFraction + 0.5)
	nIng := int(float64(spec.Sites)*spec.IngresFraction + 0.5)
	if nCSV < 1 {
		nCSV = 1
	}
	if nIng < 1 {
		nIng = 1
	}
	if nCSV+nIng >= spec.Sites {
		nIng = spec.Sites - nCSV - 1
		if nIng < 0 {
			nIng = 0
		}
	}
	perm := rng.Perm(spec.Sites)
	kind := make([]string, spec.Sites) // profile name per index
	for i, idx := range perm {
		switch {
		case i < nCSV:
			kind[idx] = ProfileAutoCommit
		case i < nCSV+nIng:
			kind[idx] = ProfileIngres
		default:
			kind[idx] = ProfileOracle
		}
	}
	p := &Plan{Spec: spec}
	for i := 0; i < spec.Sites; i++ {
		s := SiteSpec{
			Index:   i,
			Service: fmt.Sprintf("svc_t%02d", i),
			DB:      fmt.Sprintf("db%02d", i),
			Profile: kind[i],
			Backend: BackendRel,
		}
		if s.Profile == ProfileAutoCommit {
			s.Backend = BackendCSV
			s.AutoCommitOnly = true
		}
		s.Tables = []string{"acct"}
		if i%2 == 0 {
			s.Tables = append(s.Tables, "orders")
		}
		s.Boot = bootSQL(s.Tables, spec.RowsPerTable)
		p.Sites = append(p.Sites, s)
	}
	return p
}

// bootSQL builds the deterministic base state for a site.
func bootSQL(tables []string, rows int) []string {
	var boot []string
	for _, tbl := range tables {
		boot = append(boot, fmt.Sprintf(
			"CREATE TABLE %s (id INTEGER, owner CHAR(16), bal FLOAT)", tbl))
		for r := 1; r <= rows; r++ {
			boot = append(boot, fmt.Sprintf(
				"INSERT INTO %s VALUES (%d, 'seed%d', 100.0)", tbl, r, r))
		}
	}
	return boot
}

// Site finds a site spec by service name, nil when absent.
func (p *Plan) Site(service string) *SiteSpec {
	for i := range p.Sites {
		if p.Sites[i].Service == service {
			return &p.Sites[i]
		}
	}
	return nil
}

// Script emits the scenario script that federates the fleet: one
// INCORPORATE SERVICE (COMMITMODE COMMIT for autocommit-only sites,
// NOCOMMIT otherwise — the capability check rejects anything else) and
// one IMPORT DATABASE per site. addr maps a site to its listen address;
// sites it returns "" for are omitted.
func (p *Plan) Script(addr func(SiteSpec) string) string {
	var b strings.Builder
	for _, s := range p.Sites {
		a := addr(s)
		if a == "" {
			continue
		}
		mode := "NOCOMMIT"
		if s.AutoCommitOnly {
			mode = "COMMIT"
		}
		fmt.Fprintf(&b, "INCORPORATE SERVICE %s SITE '%s' CONNECTMODE CONNECT COMMITMODE %s;\n",
			s.Service, a, mode)
		fmt.Fprintf(&b, "IMPORT DATABASE %s FROM SERVICE %s;\n", s.DB, s.Service)
	}
	return b.String()
}

// Site is one served fleet member: its spec, the in-process server, and
// the TCP listener journaling prepared sessions to JournalPath.
type Site struct {
	Spec        SiteSpec
	Server      *ldbms.Server
	TCP         *lam.TCPServer
	JournalPath string
}

// Addr is the site's listen address.
func (s *Site) Addr() string { return s.TCP.Addr() }

// RowCount counts the acct rows with the given id, asking the
// in-process server directly — the ground truth for atomicity checks
// (0 = no effect, 1 = applied exactly once, >1 = double-applied).
func (s *Site) RowCount(id int) (int, error) {
	sess, err := s.Server.OpenSession(s.Spec.DB)
	if err != nil {
		return 0, err
	}
	defer sess.Close()
	res, err := sess.Exec(fmt.Sprintf("SELECT id FROM acct WHERE id = %d", id))
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}

// Fleet is a plan served in-process: one LAM TCP server per site, each
// with its own participant journal under the launch directory.
type Fleet struct {
	Plan  *Plan
	Sites []*Site
}

// Launch stands the plan up in-process. Each site gets its backend (an
// in-memory relstore or csv store), runs its bootstrap SQL, and serves
// on an ephemeral loopback port with a participant journal at
// <dir>/<service>.journal. Site indices listed in skip are omitted —
// chaos tests serve those as crash-test child processes from the same
// SiteSpec instead.
func (p *Plan) Launch(dir string, skip ...int) (*Fleet, error) {
	skipped := make(map[int]bool, len(skip))
	for _, i := range skip {
		skipped[i] = true
	}
	f := &Fleet{Plan: p}
	for _, spec := range p.Sites {
		if skipped[spec.Index] {
			continue
		}
		site, err := launchSite(dir, spec, p.Spec)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("topology: site %s: %w", spec.Service, err)
		}
		f.Sites = append(f.Sites, site)
	}
	return f, nil
}

func launchSite(dir string, spec SiteSpec, fs Spec) (*Site, error) {
	var srv *ldbms.Server
	if spec.Backend == BackendCSV {
		cs, err := csvstore.Open("")
		if err != nil {
			return nil, err
		}
		srv = ldbms.NewServerOn(spec.Service, spec.LDBMSProfile(), int64(spec.Index)+1, cs)
	} else {
		srv = ldbms.NewServer(spec.Service, spec.LDBMSProfile(), int64(spec.Index)+1)
	}
	if err := srv.CreateDatabase(spec.DB); err != nil {
		return nil, err
	}
	sess, err := srv.OpenSession(spec.DB)
	if err != nil {
		return nil, err
	}
	for _, q := range spec.Boot {
		if _, err := sess.Exec(q); err != nil {
			sess.Close()
			return nil, fmt.Errorf("boot %q: %w", q, err)
		}
	}
	if err := sess.Commit(); err != nil {
		sess.Close()
		return nil, err
	}
	sess.Close()

	jp := filepath.Join(dir, spec.Service+".journal")
	j, err := mtlog.OpenParticipant(jp)
	if err != nil {
		return nil, err
	}
	ts, err := lam.ServeWith("127.0.0.1:0", srv, lam.ServeOptions{
		Journal:      j,
		TombstoneTTL: durationMS(fs.TombstoneTTLMS),
		CompactEvery: fs.CompactEvery,
	})
	if err != nil {
		j.Close()
		return nil, err
	}
	return &Site{Spec: spec, Server: srv, TCP: ts, JournalPath: jp}, nil
}

// Close shuts every site down (listener first, then the server).
func (f *Fleet) Close() {
	for _, s := range f.Sites {
		if s.TCP != nil {
			s.TCP.Close()
		}
		if s.Server != nil {
			s.Server.Close()
		}
	}
}

// Site finds a served site by service name, nil when absent.
func (f *Fleet) Site(service string) *Site {
	for _, s := range f.Sites {
		if s.Spec.Service == service {
			return s
		}
	}
	return nil
}

// Script emits the fleet's scenario script using each site's live
// listen address.
func (f *Fleet) Script() string {
	return f.Plan.Script(func(spec SiteSpec) string {
		if s := f.Site(spec.Service); s != nil {
			return s.Addr()
		}
		return ""
	})
}
