package topology

import (
	"fmt"
	"math/rand"
	"strings"
)

// unitRowBase offsets workload row ids away from the seeded base rows.
const unitRowBase = 100000

// Unit is one generated multitransaction: a vital-set INSERT fanned
// across a random mixed-capability site subset, with compensation
// attached for every vital autocommit-only entry (the translator
// rejects a vital subquery on a site that cannot hold a prepared state
// unless a COMP clause covers it).
type Unit struct {
	ID    int
	RowID int // the unique acct id this unit inserts everywhere
	// Script is the multidatabase SQL, ending in an explicit COMMIT.
	Script string
	// Vital and NonVital list the scope databases by designation.
	Vital    []string
	NonVital []string
	// CompVital lists the vital entries riding on compensation instead
	// of 2PC (autocommit-only sites).
	CompVital []string
}

// Databases returns every scope database of the unit.
func (u *Unit) Databases() []string {
	return append(append([]string(nil), u.Vital...), u.NonVital...)
}

// UnitFor builds a targeted unit over the named scope databases (vital
// flags parallel dbs), used by chaos tests to aim a multitransaction at
// specific victim sites. Compensation is attached for vital
// autocommit-only entries, exactly as in Units.
func (p *Plan) UnitFor(id int, dbs []string, vital []bool) *Unit {
	u := &Unit{ID: id, RowID: unitRowBase + id}
	autocommit := make(map[string]bool, len(p.Sites))
	for _, s := range p.Sites {
		autocommit[s.DB] = s.AutoCommitOnly
	}
	var use []string
	var comps []string
	for i, db := range dbs {
		if vital[i] {
			use = append(use, db+" VITAL")
			u.Vital = append(u.Vital, db)
			if autocommit[db] {
				u.CompVital = append(u.CompVital, db)
				comps = append(comps, fmt.Sprintf(
					"COMP %s\nDELETE FROM acct WHERE id = %d", db, u.RowID))
			}
		} else {
			use = append(use, db)
			u.NonVital = append(u.NonVital, db)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "USE %s\n", strings.Join(use, " "))
	fmt.Fprintf(&b, "INSERT INTO acct%% VALUES (%d, 'u%d', 10.0)\n", u.RowID, u.ID)
	for _, c := range comps {
		b.WriteString(c + "\n")
	}
	b.WriteString("COMMIT;")
	u.Script = b.String()
	return u
}

// Units deterministically generates n workload multitransactions over
// the plan. Each unit picks 2–4 distinct sites (at least two vital, the
// rest by coin flip), inserts one unique acct row on every scope
// database through the multitable name acct%, and attaches a DELETE
// compensation for each vital autocommit-only entry. The same seed
// always yields the same workload, so a failing scenario replays.
func (p *Plan) Units(seed int64, n int) []*Unit {
	rng := rand.New(rand.NewSource(seed))
	units := make([]*Unit, 0, n)
	for i := 0; i < n; i++ {
		width := 2 + rng.Intn(3)
		if width > len(p.Sites) {
			width = len(p.Sites)
		}
		perm := rng.Perm(len(p.Sites))[:width]
		u := &Unit{ID: i, RowID: unitRowBase + i}
		var use []string
		var comps []string
		for j, idx := range perm {
			s := p.Sites[idx]
			vital := j < 2 || rng.Intn(2) == 0
			if vital {
				use = append(use, s.DB+" VITAL")
				u.Vital = append(u.Vital, s.DB)
				if s.AutoCommitOnly {
					u.CompVital = append(u.CompVital, s.DB)
					comps = append(comps, fmt.Sprintf(
						"COMP %s\nDELETE FROM acct WHERE id = %d", s.DB, u.RowID))
				}
			} else {
				use = append(use, s.DB)
				u.NonVital = append(u.NonVital, s.DB)
			}
		}
		var b strings.Builder
		fmt.Fprintf(&b, "USE %s\n", strings.Join(use, " "))
		fmt.Fprintf(&b, "INSERT INTO acct%% VALUES (%d, 'u%d', 10.0)\n", u.RowID, u.ID)
		for _, c := range comps {
			b.WriteString(c + "\n")
		}
		b.WriteString("COMMIT;")
		u.Script = b.String()
		units = append(units, u)
	}
	return units
}
