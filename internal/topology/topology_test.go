package topology

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"msql/internal/chaos"
	"msql/internal/core"
	"msql/internal/lam"
	"msql/internal/mtlog"
	"msql/internal/netfault"
)

// TestMain routes chaos child processes (the soak's SIGKILL victims)
// before any test runs.
func TestMain(m *testing.M) {
	if chaos.IsCoordChild() {
		chaos.CoordMain()
	}
	if chaos.IsChild() {
		chaos.ChildMain()
	}
	os.Exit(m.Run())
}

// TestGenerateDeterministic: the same spec always yields the same plan
// and workload; a different seed yields a different layout.
func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Sites: 50, Seed: 7}
	a, b := Generate(spec), Generate(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec generated different plans")
	}
	if len(a.Sites) != 50 {
		t.Fatalf("sites = %d, want 50", len(a.Sites))
	}
	ua, ub := a.Units(11, 40), b.Units(11, 40)
	if !reflect.DeepEqual(ua, ub) {
		t.Fatal("same seed generated different workloads")
	}
	c := Generate(Spec{Sites: 50, Seed: 8})
	if reflect.DeepEqual(a.Sites, c.Sites) {
		t.Fatal("different seeds generated identical site layouts")
	}

	// The mix is real: all three profiles present, csv sites marked
	// autocommit-only, every site bootstraps acct.
	byProfile := map[string]int{}
	for _, s := range a.Sites {
		byProfile[s.Profile]++
		if (s.Profile == ProfileAutoCommit) != s.AutoCommitOnly {
			t.Fatalf("site %s: profile %s but AutoCommitOnly=%v", s.Service, s.Profile, s.AutoCommitOnly)
		}
		if (s.Backend == BackendCSV) != s.AutoCommitOnly {
			t.Fatalf("site %s: backend %s mismatched with AutoCommitOnly=%v", s.Service, s.Backend, s.AutoCommitOnly)
		}
		if s.Tables[0] != "acct" || len(s.Boot) == 0 {
			t.Fatalf("site %s: tables %v boot %d", s.Service, s.Tables, len(s.Boot))
		}
	}
	for _, prof := range []string{ProfileOracle, ProfileIngres, ProfileAutoCommit} {
		if byProfile[prof] == 0 {
			t.Fatalf("no %s sites in a 50-site fleet: %v", prof, byProfile)
		}
	}

	// Workload units carry compensation exactly for vital
	// autocommit-only entries.
	autocommit := map[string]bool{}
	for _, s := range a.Sites {
		autocommit[s.DB] = s.AutoCommitOnly
	}
	sawComp := false
	for _, u := range ua {
		for _, db := range u.CompVital {
			if !autocommit[db] {
				t.Fatalf("unit %d compensates two-phase site %s", u.ID, db)
			}
			sawComp = true
		}
		for _, db := range u.Vital {
			if autocommit[db] {
				found := false
				for _, c := range u.CompVital {
					found = found || c == db
				}
				if !found {
					t.Fatalf("unit %d: vital autocommit-only %s lacks compensation", u.ID, db)
				}
			}
		}
	}
	if !sawComp {
		t.Fatal("40 units over a mixed fleet produced no compensated vital entries")
	}
}

// federate builds a journaled federation over a fleet using its
// scenario script, with the capability checks live (the INCORPORATE
// dial fetches each site's real profile).
func federate(t *testing.T, f *Fleet) *core.Federation {
	t.Helper()
	fed := core.New()
	fed.SetRecovery(lam.RetryPolicy{Attempts: 6, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 100 * time.Millisecond}, time.Second)
	if _, err := fed.ExecScript(f.Script()); err != nil {
		t.Fatalf("federate: %v", err)
	}
	j, err := mtlog.Open(filepath.Join(t.TempDir(), "coord.journal"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	fed.SetJournal(j)
	return fed
}

// TestFleetRunsMixedCapabilityUnits: an 8-site fleet federates through
// its emitted script and commits generated units across two-phase,
// Ingres-like, and compensation-based sites — with vital atomicity and
// exactly-once effects verified against every site's ground truth, and
// autocommit-only sites never asked to prepare.
func TestFleetRunsMixedCapabilityUnits(t *testing.T) {
	p := Generate(Spec{Sites: 8, Seed: 3})
	fleet, err := p.Launch(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	fed := federate(t, fleet)

	units := p.Units(5, 12)
	for _, u := range units {
		results, err := fed.ExecScript(u.Script)
		if err != nil {
			t.Fatalf("unit %d (%s): %v", u.ID, u.Script, err)
		}
		sync := results[len(results)-1]
		if sync.State != core.StateSuccess {
			t.Fatalf("unit %d state = %s (tasks %v)", u.ID, sync.State, sync.TaskStates)
		}
		for _, db := range u.Databases() {
			site := fleet.Site(p.serviceOf(db))
			n, err := site.RowCount(u.RowID)
			if err != nil {
				t.Fatal(err)
			}
			if n != 1 {
				t.Fatalf("unit %d: %s row count = %d, want exactly 1", u.ID, db, n)
			}
		}
	}
	// The capability invariant: no autocommit-only site ever saw a
	// prepare request.
	for _, s := range fleet.Sites {
		if s.Spec.AutoCommitOnly {
			if n := s.Server.Stats().Prepares; n != 0 {
				t.Fatalf("autocommit-only site %s was asked to prepare %d times", s.Spec.Service, n)
			}
		}
	}
}

// serviceOf maps a database back to its site's service name.
func (p *Plan) serviceOf(db string) string {
	for _, s := range p.Sites {
		if s.DB == db {
			return s.Service
		}
	}
	return ""
}

// vitalBreakerFleet stands up a two-site fleet with the named backend
// site behind a netfault proxy, trips the proxy's breaker, and returns
// the federation plus the dark site's database name.
func vitalBreakerFleet(t *testing.T, backendSite SiteSpec, healthySite SiteSpec) (*core.Federation, string, *netfault.Proxy) {
	t.Helper()
	dir := t.TempDir()
	dark, err := launchSite(dir, backendSite, Spec{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dark.TCP.Close(); dark.Server.Close() })
	healthy, err := launchSite(dir, healthySite, Spec{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { healthy.TCP.Close(); healthy.Server.Close() })

	proxy, err := netfault.New(dark.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	fed := core.New()
	fed.CallTimeout = 150 * time.Millisecond
	fed.SetBreaker(lam.BreakerPolicy{Threshold: 1, Cooldown: time.Hour})

	mode := "NOCOMMIT"
	if backendSite.AutoCommitOnly {
		mode = "COMMIT"
	}
	setup := fmt.Sprintf(`
INCORPORATE SERVICE %s SITE '%s' CONNECTMODE CONNECT COMMITMODE %s;
INCORPORATE SERVICE %s SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE %s FROM SERVICE %s;
IMPORT DATABASE %s FROM SERVICE %s;
`, backendSite.Service, proxy.Addr(), mode,
		healthySite.Service, healthy.Addr(),
		backendSite.DB, backendSite.Service,
		healthySite.DB, healthySite.Service)
	if _, err := fed.ExecScript(setup); err != nil {
		t.Fatal(err)
	}

	// Trip the breaker: black-hole the proxy and fail statements into it
	// until the open state latches.
	proxy.SetBlackhole(true)
	probe := fmt.Sprintf("USE %s %s VITAL\nSELECT owner%% FROM acct%%", healthySite.DB, backendSite.DB)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b := fed.Breaker(proxy.Addr()); b != nil && b.State() == lam.BreakerOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never tripped")
		}
		_, _ = fed.ExecScript(probe)
	}
	return fed, backendSite.DB, proxy
}

// The satellite invariant, per backend: a VITAL scope entry behind an
// open breaker must fail the multitransaction — never silently land in
// Result.Degraded — while the same entry NON VITAL degrades cleanly.
func testVitalBehindOpenBreaker(t *testing.T, darkSpec SiteSpec) {
	healthy := SiteSpec{Index: 1, Service: "svc_ok", DB: "dbok", Backend: BackendRel,
		Profile: ProfileOracle}
	healthy.Tables = []string{"acct"}
	healthy.Boot = bootSQL(healthy.Tables, 2)
	fed, darkDB, _ := vitalBreakerFleet(t, darkSpec, healthy)

	// VITAL: the unit must fail outright.
	vital := fmt.Sprintf("USE dbok %s VITAL\nSELECT owner%% FROM acct%%", darkDB)
	results, err := fed.ExecScript(vital)
	if err == nil {
		res := results[len(results)-1]
		t.Fatalf("vital entry behind an open breaker answered: degraded=%v state=%s — must fail, never degrade",
			res.Degraded, res.State)
	}

	// NON VITAL: same site, same breaker — degrades with the partial
	// result from the healthy site.
	nonvital := fmt.Sprintf("USE dbok VITAL %s\nSELECT owner%% FROM acct%%", darkDB)
	results, err = fed.ExecScript(nonvital)
	if err != nil {
		t.Fatalf("non-vital degraded query failed: %v", err)
	}
	res := results[len(results)-1]
	if len(res.Degraded) != 1 || res.Degraded[0].Entry != darkDB {
		t.Fatalf("degraded = %v, want [%s]", res.Degraded, darkDB)
	}
	if res.Multitable == nil || len(res.Multitable.Tables) != 1 {
		t.Fatalf("multitable = %+v, want the healthy site's partial result", res.Multitable)
	}
}

func TestVitalBehindOpenBreakerRelBackend(t *testing.T) {
	dark := SiteSpec{Index: 0, Service: "svc_dark", DB: "dbdark",
		Backend: BackendRel, Profile: ProfileOracle}
	dark.Tables = []string{"acct"}
	dark.Boot = bootSQL(dark.Tables, 2)
	testVitalBehindOpenBreaker(t, dark)
}

func TestVitalBehindOpenBreakerCSVBackend(t *testing.T) {
	dark := SiteSpec{Index: 0, Service: "svc_dark", DB: "dbdark",
		Backend: BackendCSV, Profile: ProfileAutoCommit, AutoCommitOnly: true}
	dark.Tables = []string{"acct"}
	dark.Boot = bootSQL(dark.Tables, 2)
	testVitalBehindOpenBreaker(t, dark)
}
