package topology

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msql/internal/chaos"
	"msql/internal/core"
	"msql/internal/lam"
	"msql/internal/mtlog"
	"msql/internal/netfault"
	"msql/internal/obs"
	"msql/internal/sqlengine"
)

// The topology soak: a mixed-capability fleet (two-phase Oracle-like,
// DDL-autocommit Ingres-like, and csv autocommit-only sites) federated
// through the generated scenario script, loaded with generated
// multitransactions while faults are injected at every 2PC phase
// boundary — SIGKILL of victim child processes before prepare, after
// prepare, and after commit; netfault blackholes tripping circuit
// breakers; a csv crash stranding an owed compensation — and then
// machine-checked: vital atomicity on every unit, effects applied
// exactly once, compensation replayed by recovery, autocommit-only
// sites never asked to prepare, non-vital entries behind open breakers
// degraded (never vital ones), and both journal tiers drained to zero
// in-doubt sessions.
//
// Sites default to 12 (the PR gate); MSQL_TOPOLOGY_SITES=50 runs the
// full-scale soak CI schedules as its own job.

var bg = context.Background()

// soakSites reads the fleet size from the environment.
func soakSites() int {
	if v := os.Getenv("MSQL_TOPOLOGY_SITES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 6 {
			return n
		}
	}
	return 12
}

// incident is one injected fault, recorded into the chaos incident
// journal artifact.
type incident struct {
	AtMS   int64  `json:"at_ms"`
	Kind   string `json:"kind"`
	Target string `json:"target"`
}

type incidentLog struct {
	mu    sync.Mutex
	start time.Time
	list  []incident
}

func (l *incidentLog) add(kind, target string) {
	l.mu.Lock()
	l.list = append(l.list, incident{
		AtMS: time.Since(l.start).Milliseconds(), Kind: kind, Target: target})
	l.mu.Unlock()
}

func (l *incidentLog) dump(path string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, in := range l.list {
		_ = enc.Encode(in)
	}
}

// killClient wraps a victim's LAM client so the soak can SIGKILL its
// server at exact 2PC phase boundaries.
type killClient struct {
	lam.Client
	proc *chaos.Proc
	log  *incidentLog
	name string

	killBeforePrepare atomic.Bool
	killAfterPrepare  atomic.Bool
	killAfterCommit   atomic.Bool
	// killOnExecPrefix crashes the site just before it receives a
	// statement with this SQL prefix (aimed at a compensation's DELETE).
	killOnExecPrefix atomic.Value // string
}

func (c *killClient) Open(ctx context.Context, db string) (lam.Session, error) {
	s, err := c.Client.Open(ctx, db)
	if err != nil {
		return nil, err
	}
	return &killSession{Session: s, c: c}, nil
}

func (c *killClient) fire(kind string) {
	c.log.add(kind, c.name)
	_ = c.proc.Kill()
}

type killSession struct {
	lam.Session
	c *killClient
}

func (s *killSession) Exec(ctx context.Context, sql string) (*sqlengine.Result, error) {
	if pfx, _ := s.c.killOnExecPrefix.Load().(string); pfx != "" && strings.HasPrefix(sql, pfx) {
		s.c.killOnExecPrefix.Store("")
		// The site dies before the statement lands: the caller sees a
		// transport failure and the statement never executed.
		s.c.fire("sigkill-before-exec:" + pfx)
	}
	return s.Session.Exec(ctx, sql)
}

func (s *killSession) Prepare(ctx context.Context) error {
	if s.c.killBeforePrepare.CompareAndSwap(true, false) {
		s.c.fire("sigkill-before-prepare")
	}
	err := s.Session.Prepare(ctx)
	if err == nil && s.c.killAfterPrepare.CompareAndSwap(true, false) {
		s.c.fire("sigkill-after-prepare")
	}
	return err
}

func (s *killSession) Commit(ctx context.Context) error {
	err := s.Session.Commit(ctx)
	if err == nil && s.c.killAfterCommit.CompareAndSwap(true, false) {
		s.c.fire("sigkill-after-commit")
		return fmt.Errorf("topology soak: commit reply lost in crash")
	}
	return err
}

func (s *killSession) RecoveryInfo() (string, int64) {
	return s.Session.(lam.Recoverable).RecoveryInfo()
}

// rowCountTCP is the out-of-process ground truth: count acct rows with
// the given id at a victim site through a fresh TCP client.
func rowCountTCP(t *testing.T, addr, db string, id int) int {
	t.Helper()
	c, err := lam.Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer c.Close()
	sess, err := c.Open(bg, db)
	if err != nil {
		t.Fatalf("open %s at %s: %v", db, addr, err)
	}
	defer sess.Close()
	res, err := sess.Exec(bg, fmt.Sprintf("SELECT id FROM acct WHERE id = %d", id))
	if err != nil {
		t.Fatalf("count at %s: %v", addr, err)
	}
	return len(res.Rows)
}

func TestTopologySoak(t *testing.T) {
	nSites := soakSites()
	dir := t.TempDir()
	defer func() {
		if t.Failed() {
			if dst := os.Getenv(chaos.EnvArtifacts); dst != "" {
				_ = copyDirTo(dir, filepath.Join(dst, t.Name()))
			}
		}
	}()
	incidents := &incidentLog{start: time.Now()}

	slowPath := filepath.Join(dir, "slow-query.log")
	slowFile, err := os.Create(slowPath)
	if err != nil {
		t.Fatal(err)
	}
	obs.SetSlowQueryLog(obs.NewSlowQueryLog(slowFile, time.Millisecond))

	plan := Generate(Spec{Sites: nSites, Seed: 42, TombstoneTTLMS: 2000, CompactEvery: 1})

	// Victims: two Oracle-like two-phase sites (SIGKILLed at 2PC phase
	// boundaries) and one csv autocommit-only site (crashed with an owed
	// compensation) run as real child processes; everything else is
	// in-process.
	var relVictims []SiteSpec
	var csvVictim *SiteSpec
	var proxied []SiteSpec
	for i := range plan.Sites {
		s := plan.Sites[i]
		switch {
		case s.Profile == ProfileOracle && len(relVictims) < 2:
			relVictims = append(relVictims, s)
		case s.Profile == ProfileAutoCommit && csvVictim == nil:
			csvVictim = &plan.Sites[i]
		case s.Profile == ProfileOracle && len(proxied) < 2:
			proxied = append(proxied, s)
		}
	}
	if len(relVictims) < 2 || csvVictim == nil || len(proxied) < 2 {
		t.Fatalf("fleet mix too thin: %d rel victims, csv=%v, %d proxied", len(relVictims), csvVictim, len(proxied))
	}
	skip := []int{relVictims[0].Index, relVictims[1].Index, csvVictim.Index}

	launchVictim := func(s SiteSpec) *chaos.Proc {
		cfg := chaos.Config{
			Service: s.Service, DB: s.DB, Boot: s.Boot,
			Backend: s.Backend, Profile: s.Profile,
			CompactEvery: 1, TombstoneTTLMS: 2000,
		}
		if s.Backend == BackendCSV {
			cfg.Dir = filepath.Join(dir, s.Service+".data")
			if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		p, err := chaos.Launch(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Stop)
		return p
	}
	victimA := launchVictim(relVictims[0])
	victimB := launchVictim(relVictims[1])
	victimC := launchVictim(*csvVictim)

	fleet, err := plan.Launch(dir, skip...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)

	// Two in-process sites go behind netfault proxies for the
	// breaker-flap phase.
	proxyOf := map[string]*netfault.Proxy{}
	for _, s := range proxied {
		px, err := netfault.New(fleet.Site(s.Service).Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { px.Close() })
		proxyOf[s.Service] = px
	}

	// The federation: breaker-gated lazy dials for the in-process and
	// proxied sites, kill-wrapped registered clients for the victims.
	fed := core.New()
	fed.CallTimeout = 2 * time.Second
	fed.SetBreaker(lam.BreakerPolicy{Threshold: 3, Cooldown: 400 * time.Millisecond})
	fed.SetRecovery(lam.RetryPolicy{Attempts: 10, BaseDelay: 25 * time.Millisecond,
		MaxDelay: 150 * time.Millisecond}, 2*time.Second)

	wrapVictim := func(p *chaos.Proc, name string) *killClient {
		inner, err := lam.DialWith(bg, p.Addr(), lam.DialOptions{
			CallTimeout: 2 * time.Second,
			Retry:       lam.RetryPolicy{Attempts: 1, BaseDelay: 5 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		kc := &killClient{Client: inner, proc: p, log: incidents, name: name}
		fed.RegisterClient(p.Addr(), kc)
		return kc
	}
	kcA := wrapVictim(victimA, relVictims[0].Service)
	kcB := wrapVictim(victimB, relVictims[1].Service)
	kcC := wrapVictim(victimC, csvVictim.Service)

	script := plan.Script(func(s SiteSpec) string {
		switch s.Index {
		case relVictims[0].Index:
			return victimA.Addr()
		case relVictims[1].Index:
			return victimB.Addr()
		case csvVictim.Index:
			return victimC.Addr()
		}
		if px, ok := proxyOf[s.Service]; ok {
			return px.Addr()
		}
		return fleet.Site(s.Service).Addr()
	})
	if _, err := fed.ExecScript(script); err != nil {
		t.Fatalf("federate %d sites: %v", nSites, err)
	}

	j, err := mtlog.Open(filepath.Join(dir, "coord.journal"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	j.SetGroupCommit(time.Millisecond)
	fed.SetJournal(j)

	// Every unit the soak attempts, for the final atomicity audit.
	var (
		attemptedMu sync.Mutex
		attempted   []*Unit
		commits     atomic.Int64
		aborts      atomic.Int64
		unresolved  atomic.Int64
	)
	record := func(u *Unit, audit bool, results []*core.Result, err error) {
		if audit {
			attemptedMu.Lock()
			attempted = append(attempted, u)
			attemptedMu.Unlock()
		}
		if err != nil {
			aborts.Add(1)
			return
		}
		sync := results[len(results)-1]
		switch sync.State {
		case core.StateSuccess:
			commits.Add(1)
		case core.StateUnresolved:
			unresolved.Add(1)
		default:
			aborts.Add(1)
		}
	}

	// countAt reads the ground-truth row count for a unit id at a site:
	// victims through a fresh TCP client, in-process sites directly.
	countAt := func(db string, id int) int {
		if s := plan.Site(plan.serviceOf(db)); s != nil {
			switch s.Index {
			case relVictims[0].Index:
				return rowCountTCP(t, victimA.Addr(), db, id)
			case relVictims[1].Index:
				return rowCountTCP(t, victimB.Addr(), db, id)
			case csvVictim.Index:
				return rowCountTCP(t, victimC.Addr(), db, id)
			}
		}
		site := fleet.Site(plan.serviceOf(db))
		n, err := site.RowCount(id)
		if err != nil {
			t.Fatalf("count %s: %v", db, err)
		}
		return n
	}

	// auditUnit machine-checks the vital-set invariant for one unit
	// against the sites' current ground truth: no double-application
	// anywhere, and every vital site agreeing — all applied once or none.
	auditUnit := func(u *Unit, phase string) {
		t.Helper()
		seen := -1
		for _, db := range u.Vital {
			n := countAt(db, u.RowID)
			if n > 1 {
				t.Errorf("%s: unit %d: %s applied %d times — duplicated effects", phase, u.ID, db, n)
			}
			if seen == -1 {
				seen = n
			} else if n != seen {
				t.Errorf("%s: unit %d: vital set torn — %s=%d vs earlier %d (vital %v)",
					phase, u.ID, db, n, seen, u.Vital)
			}
		}
		for _, db := range u.NonVital {
			if n := countAt(db, u.RowID); n > 1 {
				t.Errorf("%s: unit %d: non-vital %s applied %d times", phase, u.ID, db, n)
			}
		}
	}

	// recoverClean drives journal recovery until no open multitransaction
	// remains (participants may still be restarting; keep sweeping).
	recoverClean := func(phase string) *core.RecoveryReport {
		t.Helper()
		agg := &core.RecoveryReport{}
		deadline := time.Now().Add(30 * time.Second)
		for {
			rep, err := fed.Recover(bg)
			if err != nil {
				t.Fatalf("%s: recover: %v", phase, err)
			}
			agg.Resolved = append(agg.Resolved, rep.Resolved...)
			agg.CompRuns = append(agg.CompRuns, rep.CompRuns...)
			if rep.Multitransactions == 0 && len(rep.Unreachable) == 0 {
				return agg
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: recovery never converged: %+v", phase, rep)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// Phase 1 — concurrent clean load. Background units avoid the victim
	// sites: the rel victims are in-memory, so a later SIGKILL wipes
	// effects committed before the crash — expected for an in-memory
	// participant, but it would invalidate the end-of-run audit. Units
	// that DO span victims are the targeted crash-window units below,
	// audited immediately after their recovery.
	bgSites := make([]SiteSpec, 0, len(plan.Sites))
	for _, s := range plan.Sites {
		if s.Index != relVictims[0].Index && s.Index != relVictims[1].Index && s.Index != csvVictim.Index {
			bgSites = append(bgSites, s)
		}
	}
	bgPlan := &Plan{Spec: plan.Spec, Sites: bgSites}
	units := bgPlan.Units(7, 24)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := fed.NewSession(fmt.Sprintf("w%d", w))
			for i := w; i < len(units); i += 4 {
				res, err := sess.ExecScript(units[i].Script)
				record(units[i], true, res, err)
			}
		}(w)
	}
	wg.Wait()

	// Phase 2 — SIGKILL at every 2PC phase boundary. Each targeted unit
	// spans the armed victim (vital) and a healthy in-process two-phase
	// site (vital); the victim restarts in the background so the
	// engine's in-doubt loop can resolve through connection-refused.
	var healthyRel SiteSpec
	for _, s := range plan.Sites {
		if s.Profile != ProfileAutoCommit && s.Index != relVictims[0].Index &&
			s.Index != relVictims[1].Index && proxyOf[s.Service] == nil {
			healthyRel = s
			break
		}
	}
	nextID := 1000
	// Each crash-window unit is audited immediately after its recovery:
	// the rel victims are in-memory, so a later crash legitimately wipes
	// effects of units already resolved and acknowledged — the invariant
	// must hold at the moment the unit's own recovery completes.
	boundary := func(kc *killClient, victim *chaos.Proc, victimDB, name string, arm func()) {
		t.Helper()
		arm()
		u := plan.UnitFor(nextID, []string{victimDB, healthyRel.DB}, []bool{true, true})
		nextID++
		go func() {
			time.Sleep(250 * time.Millisecond)
			if err := victim.Restart(); err == nil {
				incidents.add("restart", victimDB)
			}
		}()
		res, err := fed.ExecScript(u.Script)
		record(u, false, res, err)
		// The restart is synchronous in the goroutine; wait for it, then
		// resolve whatever the crash left in doubt and audit.
		time.Sleep(400 * time.Millisecond)
		recoverClean(name)
		auditUnit(u, name)
	}
	boundary(kcA, victimA, relVictims[0].DB, "kill-before-prepare",
		func() { kcA.killBeforePrepare.Store(true) })
	boundary(kcA, victimA, relVictims[0].DB, "kill-after-prepare",
		func() { kcA.killAfterPrepare.Store(true) })
	boundary(kcA, victimA, relVictims[0].DB, "kill-after-commit",
		func() { kcA.killAfterCommit.Store(true) })
	boundary(kcB, victimB, relVictims[1].DB, "kill-after-prepare-b",
		func() { kcB.killAfterPrepare.Store(true) })
	boundary(kcB, victimB, relVictims[1].DB, "kill-after-commit-b",
		func() { kcB.killAfterCommit.Store(true) })

	// Phase 3 — the stranded compensation: the csv victim's INSERT
	// autocommits cleanly (write-through, durable across the coming
	// crash); the two-phase victim dies before its vote, aborting the
	// vital set; the compensation's DELETE then finds the csv site dead
	// — killed just before the statement lands — so the multitransaction
	// stays open in the journal, compensation owed, until recovery
	// replays it against the restarted site.
	kcC.killOnExecPrefix.Store("DELETE")
	kcA.killBeforePrepare.Store(true)
	compUnit := plan.UnitFor(nextID, []string{csvVictim.DB, relVictims[0].DB}, []bool{true, true})
	nextID++
	go func() {
		time.Sleep(250 * time.Millisecond)
		if victimA.Restart() == nil {
			incidents.add("restart", relVictims[0].DB)
		}
	}()
	res, err := fed.ExecScript(compUnit.Script)
	record(compUnit, false, res, err)
	time.Sleep(400 * time.Millisecond)
	if err := victimC.Restart(); err != nil {
		t.Fatalf("csv victim restart: %v", err)
	}
	incidents.add("restart", csvVictim.DB)
	compRep := recoverClean("comp-replay")
	if len(compRep.CompRuns) == 0 {
		t.Error("recovery never replayed the owed compensation (CompRuns empty)")
	}
	auditUnit(compUnit, "comp-replay")
	if n := countAt(csvVictim.DB, compUnit.RowID); n != 0 {
		t.Errorf("csv victim still holds %d rows of the compensated unit, want 0 after comp replay", n)
	}

	// Phase 4 — breaker-tripping flaps: blackhole the proxied sites,
	// fail statements into them until the breakers latch open, then
	// assert the degradation contract both ways.
	fed.CallTimeout = 300 * time.Millisecond
	for svc, px := range proxyOf {
		px.SetBlackhole(true)
		incidents.add("blackhole", svc)
	}
	darkDB := proxied[0].DB
	probe := fmt.Sprintf("USE %s VITAL %s\nSELECT owner%% FROM acct%%", healthyRel.DB, darkDB)
	deadline := time.Now().Add(60 * time.Second)
	for {
		px := proxyOf[proxied[0].Service]
		if b := fed.Breaker(px.Addr()); b != nil && b.State() == lam.BreakerOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never tripped during the flap phase")
		}
		_, _ = fed.ExecScript(probe)
	}
	incidents.add("breaker-open", proxied[0].Service)
	// Non-vital behind the open breaker: degraded, answered.
	results, err := fed.ExecScript(probe)
	if err != nil {
		t.Fatalf("non-vital degraded query failed: %v", err)
	}
	degraded := results[len(results)-1].Degraded
	if len(degraded) != 1 || degraded[0].Entry != darkDB {
		t.Fatalf("degraded = %v, want [%s]", degraded, darkDB)
	}
	// Vital behind the open breaker: the unit fails, never degrades.
	vitalProbe := fmt.Sprintf("USE %s %s VITAL\nSELECT owner%% FROM acct%%", healthyRel.DB, darkDB)
	if res, err := fed.ExecScript(vitalProbe); err == nil {
		t.Fatalf("vital entry behind open breaker answered: %+v", res[len(results)-1])
	}
	// Flap closed: the sites heal, the cooldown half-opens the breakers,
	// and a vital unit through a previously-dark site commits again.
	for svc, px := range proxyOf {
		px.SetBlackhole(false)
		incidents.add("heal", svc)
	}
	fed.CallTimeout = 2 * time.Second
	healUnit := plan.UnitFor(nextID, []string{darkDB, healthyRel.DB}, []bool{true, true})
	nextID++
	deadline = time.Now().Add(60 * time.Second)
	for {
		res, err := fed.ExecScript(healUnit.Script)
		if err == nil && res[len(res)-1].State == core.StateSuccess {
			record(healUnit, true, res, nil)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healed site never committed again: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	incidents.add("breaker-closed", proxied[0].Service)

	// Phase 5 — drain. A final recovery sweep (now parallel across
	// sites) confirms no multitransaction remains open; the orphan sweep
	// mops up participant-side strays.
	recoveryStart := time.Now()
	recoverClean("final-drain")
	if _, err := fed.RecoverOrphans(bg); err != nil {
		t.Fatalf("orphan sweep: %v", err)
	}
	recoveryElapsed := time.Since(recoveryStart)

	// ---- Machine-checked invariants ----

	// (1) VITAL atomicity and exactly-once: for every audited unit the
	// vital sites agree — all applied once or none — and no site ever
	// double-applied. (Crash-window units were audited inline, right
	// after their own recovery.)
	for _, u := range attempted {
		auditUnit(u, "final")
	}

	// (2) Autocommit-only sites were never asked to prepare: the
	// in-process servers' counters stay zero and the csv victim's
	// participant journal never saw a session.
	for _, s := range fleet.Sites {
		if s.Spec.AutoCommitOnly {
			if n := s.Server.Stats().Prepares; n != 0 {
				t.Errorf("autocommit-only site %s: %d prepare requests", s.Spec.Service, n)
			}
		}
	}
	if sessions, err := victimC.JournalSessions(); err != nil {
		t.Fatal(err)
	} else if len(sessions) != 0 {
		t.Errorf("csv victim journal holds %d sessions; a site without prepare must never journal one", len(sessions))
	}

	// (3) Both journal tiers drain to zero in-doubt sessions.
	waitDrained(t, fed, fleet, []*chaos.Proc{victimA, victimB, victimC})

	// (4) No site still parks an in-doubt session on the wire.
	for _, s := range fleet.Sites {
		if ds, err := lam.InDoubtSessions(bg, s.Addr()); err != nil {
			t.Errorf("in-doubt query %s: %v", s.Spec.Service, err)
		} else if len(ds) != 0 {
			t.Errorf("site %s still parks %d in-doubt sessions", s.Spec.Service, len(ds))
		}
	}

	obs.SetSlowQueryLog(nil)
	slowFile.Close()

	// Artifacts: the chaos incident journal, slow-query log, and the
	// soak's benchmark summary — uploaded by CI.
	incidents.dump(filepath.Join(dir, "incidents.jsonl"))
	bench := map[string]any{
		"sites":           nSites,
		"units_attempted": len(attempted),
		"commits":         commits.Load(),
		"aborts":          aborts.Load(),
		"unresolved":      unresolved.Load(),
		"recovery_ms":     recoveryElapsed.Milliseconds(),
	}
	bj, _ := json.MarshalIndent(bench, "", "  ")
	if err := os.WriteFile(filepath.Join(dir, "BENCH_topology.json"), bj, 0o644); err != nil {
		t.Fatal(err)
	}
	if dst := os.Getenv(chaos.EnvArtifacts); dst != "" {
		if err := os.MkdirAll(dst, 0o755); err == nil {
			_ = os.WriteFile(filepath.Join(dst, "BENCH_topology.json"), bj, 0o644)
			_ = copyFileTo(filepath.Join(dir, "incidents.jsonl"), filepath.Join(dst, "incidents.jsonl"))
			_ = copyFileTo(slowPath, filepath.Join(dst, "topology-slow-query.log"))
		}
	}
	t.Logf("topology soak: %d sites, %d units (%d commits, %d aborts, %d unresolved), recovery %v",
		nSites, len(attempted), commits.Load(), aborts.Load(), unresolved.Load(), recoveryElapsed)

	if c := commits.Load(); c < int64(len(units)/2) {
		t.Errorf("commits = %d of %d background units — the soak barely loaded the fleet", c, len(units))
	}
}

// waitDrained polls until the coordinator journal holds no open
// multitransaction and no participant journal (in-process or victim)
// holds an unacknowledged session.
func waitDrained(t *testing.T, fed *core.Federation, fleet *Fleet, victims []*chaos.Proc) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		open := 0
		states, err := fed.Journal().States()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range states {
			if !s.Ended {
				open++
			}
		}
		unacked := 0
		for _, s := range fleet.Sites {
			unacked += unackedSessions(t, s.JournalPath)
		}
		for _, p := range victims {
			sessions, err := p.JournalSessions()
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range sessions {
				if !s.Acked {
					unacked++
				}
			}
		}
		if open == 0 && unacked == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("journals never drained: %d open multitransactions, %d unacked participant sessions",
				open, unacked)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// unackedSessions reads a participant journal file read-only and counts
// sessions without their end-of-multitransaction acknowledgment.
func unackedSessions(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	recs, _, _ := mtlog.DecodeAll(data)
	n := 0
	for _, s := range mtlog.ReconstructParticipant(recs) {
		if !s.Acked {
			n++
		}
	}
	return n
}

// copyDirTo copies every regular file under src into dst.
func copyDirTo(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if err := copyFileTo(filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

func copyFileTo(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}
