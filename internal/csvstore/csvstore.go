// Package csvstore is a flat-file storage engine: databases are
// directories, tables are CSV files with a typed header row, and the
// whole committed state of a table is rewritten (atomically, via
// tmp+rename) when a transaction touching it commits.
//
// It exists to be *unlike* relstore. The paper's federation incorporates
// database products of very different sophistication, and its §3.3
// compensation semantics are motivated by products that cannot hold a
// prepared-to-commit state: csvstore is that product. It has no
// write-ahead log, no locks, no prepare support — Prepare always fails —
// and transactions are copy-on-write snapshots with last-writer-wins
// visibility. Behind ldbms.ProfileAutoCommitOnly (COMMITMODE COMMIT)
// every statement commits immediately, which is the only mode the
// engine is honest about.
//
// The SQL surface is the subset a federation ships to a leaf site:
// CREATE/DROP TABLE, INSERT ... VALUES, single- and multi-table SELECT
// (nested-loop joins, WHERE, ORDER BY, LIMIT, DISTINCT, ungrouped
// aggregates), UPDATE and DELETE. Views, GROUP BY, UNION and subqueries
// are not supported and fail with ErrUnsupported.
package csvstore

import (
	"encoding/csv"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"msql/internal/relstore"
	"msql/internal/sqlval"
)

// Engine errors. ErrNoTable/ErrNoDatabase reuse the relstore sentinels
// so the wire protocol's error taxonomy (and everything the coordinator
// branches on) is backend-agnostic.
var (
	ErrNoPrepare   = errors.New("csvstore: backend cannot prepare")
	ErrUnsupported = errors.New("csvstore: unsupported SQL for this backend")
	ErrExists      = errors.New("csvstore: object already exists")
)

// nullMark encodes SQL NULL in a CSV cell.
const nullMark = `\N`

// table is one committed table image. Committed tables are immutable:
// writers stage deep copies and swap whole *table pointers at commit, so
// concurrent readers keep a consistent snapshot without locks.
type table struct {
	cols []relstore.Column
	rows [][]sqlval.Value
}

type database struct {
	tables map[string]*table
}

// Store is one CSV engine instance. A non-empty dir makes it
// file-backed: every commit rewrites the touched tables' files.
type Store struct {
	dir string

	mu  sync.Mutex
	dbs map[string]*database
}

// Open creates a store rooted at dir, loading any databases a previous
// process left there. An empty dir keeps the store memory-only.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, dbs: make(map[string]*database)}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		db := &database{tables: make(map[string]*table)}
		files, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(f.Name(), ".csv") {
				continue
			}
			t, err := loadTable(filepath.Join(dir, e.Name(), f.Name()))
			if err != nil {
				return nil, fmt.Errorf("csvstore: load %s/%s: %w", e.Name(), f.Name(), err)
			}
			db.tables[strings.TrimSuffix(f.Name(), ".csv")] = t
		}
		s.dbs[e.Name()] = db
	}
	return s, nil
}

// Dir returns the data directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// CreateDatabase implements backend.Backend.
func (s *Store) CreateDatabase(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.dbs[name]; ok {
		return fmt.Errorf("%w: database %s", ErrExists, name)
	}
	if s.dir != "" {
		if err := os.MkdirAll(filepath.Join(s.dir, name), 0o755); err != nil {
			return err
		}
	}
	s.dbs[name] = &database{tables: make(map[string]*table)}
	return nil
}

// DatabaseNames implements backend.Backend.
func (s *Store) DatabaseNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HasDatabase implements backend.Backend.
func (s *Store) HasDatabase(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.dbs[name]
	return ok
}

// ListTables implements backend.Backend.
func (s *Store) ListTables(db string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.dbs[db]
	if !ok {
		return nil, fmt.Errorf("%w: %s", relstore.ErrNoDatabase, db)
	}
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// ListViews implements backend.Backend; the engine has no views.
func (s *Store) ListViews(db string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.dbs[db]; !ok {
		return nil, fmt.Errorf("%w: %s", relstore.ErrNoDatabase, db)
	}
	return nil, nil
}

// Durable implements backend.Backend. Commits write through to the CSV
// files themselves, so there is no separate checkpoint step.
func (s *Store) Durable() bool { return false }

// Checkpoint implements backend.Backend (write-through engine: no-op).
func (s *Store) Checkpoint() error { return nil }

// Close implements backend.Backend (nothing held open between commits).
func (s *Store) Close() error { return nil }

// lookup returns the committed image of db.table.
func (s *Store) lookup(db, name string) (*table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.dbs[db]
	if !ok {
		return nil, fmt.Errorf("%w: %s", relstore.ErrNoDatabase, db)
	}
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", relstore.ErrNoTable, db, name)
	}
	return t, nil
}

// clone deep-copies a table image for copy-on-write staging.
func (t *table) clone() *table {
	c := &table{cols: append([]relstore.Column(nil), t.cols...)}
	c.rows = make([][]sqlval.Value, len(t.rows))
	for i, r := range t.rows {
		c.rows[i] = append([]sqlval.Value(nil), r...)
	}
	return c
}

// ---- CSV encoding ----

func encodeColumn(c relstore.Column) string {
	typ := c.Type.String()
	if c.Type == sqlval.KindString && c.Width > 0 {
		typ = fmt.Sprintf("CHAR(%d)", c.Width)
	}
	if c.Key {
		return c.Name + ":" + typ + ":key"
	}
	return c.Name + ":" + typ
}

func decodeColumn(s string) (relstore.Column, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 {
		return relstore.Column{}, fmt.Errorf("csvstore: bad column header %q", s)
	}
	c := relstore.Column{Name: parts[0]}
	typ := parts[1]
	if strings.HasPrefix(typ, "CHAR(") && strings.HasSuffix(typ, ")") {
		w, err := strconv.Atoi(typ[5 : len(typ)-1])
		if err != nil {
			return relstore.Column{}, fmt.Errorf("csvstore: bad column header %q", s)
		}
		c.Type, c.Width = sqlval.KindString, w
	} else {
		switch typ {
		case "INTEGER":
			c.Type = sqlval.KindInt
		case "FLOAT":
			c.Type = sqlval.KindFloat
		case "CHAR":
			c.Type = sqlval.KindString
		case "BOOLEAN":
			c.Type = sqlval.KindBool
		default:
			return relstore.Column{}, fmt.Errorf("csvstore: bad column type %q", typ)
		}
	}
	c.Key = len(parts) > 2 && parts[2] == "key"
	return c, nil
}

func encodeCell(v sqlval.Value) string {
	if v.IsNull() {
		return nullMark
	}
	return v.String()
}

func decodeCell(s string, kind sqlval.Kind) (sqlval.Value, error) {
	if s == nullMark {
		return sqlval.Null(), nil
	}
	switch kind {
	case sqlval.KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return sqlval.Value{}, err
		}
		return sqlval.Int(i), nil
	case sqlval.KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return sqlval.Value{}, err
		}
		return sqlval.Float(f), nil
	case sqlval.KindBool:
		return sqlval.Bool(s == "TRUE"), nil
	default:
		return sqlval.Str(s), nil
	}
}

func loadTable(path string) (*table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	records, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, errors.New("csvstore: missing header row")
	}
	t := &table{}
	for _, h := range records[0] {
		c, err := decodeColumn(h)
		if err != nil {
			return nil, err
		}
		t.cols = append(t.cols, c)
	}
	for _, rec := range records[1:] {
		if len(rec) != len(t.cols) {
			return nil, fmt.Errorf("csvstore: row has %d cells, want %d", len(rec), len(t.cols))
		}
		row := make([]sqlval.Value, len(rec))
		for i, cell := range rec {
			v, err := decodeCell(cell, t.cols[i].Type)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		t.rows = append(t.rows, row)
	}
	return t, nil
}

// removeFile deletes a table file, tolerating its absence (the table
// may never have been committed to disk).
func removeFile(path string) error {
	err := os.Remove(path)
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// writeTable persists one table image atomically (tmp + rename).
func writeTable(path string, t *table) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	header := make([]string, len(t.cols))
	for i, c := range t.cols {
		header[i] = encodeColumn(c)
	}
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	cells := make([]string, len(t.cols))
	for _, row := range t.rows {
		for i, v := range row {
			cells[i] = encodeCell(v)
		}
		if err := w.Write(cells); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
