package csvstore

import (
	"fmt"
	"path/filepath"
	"time"

	"msql/internal/backend"
	"msql/internal/relstore"
	"msql/internal/sqlengine"
	"msql/internal/sqlparser"
)

// Tx is one copy-on-write transaction. Reads see the committed images
// plus this transaction's own staged writes; Commit swaps staged table
// images into the store (and rewrites their CSV files) under the store
// lock, last writer wins. There is no prepare support and no locking —
// the honesty of COMMITMODE COMMIT.
type Tx struct {
	s *Store
	// staged maps db -> table -> staged image; a nil image is a staged
	// DROP TABLE.
	staged map[string]map[string]*table
	done   bool
}

// Begin implements backend.Backend.
func (s *Store) Begin() backend.Tx {
	return &Tx{s: s, staged: make(map[string]map[string]*table)}
}

// read returns the table image this transaction sees.
func (t *Tx) read(db, name string) (*table, error) {
	if m, ok := t.staged[db]; ok {
		if img, ok := m[name]; ok {
			if img == nil {
				return nil, fmt.Errorf("%w: %s.%s", relstore.ErrNoTable, db, name)
			}
			return img, nil
		}
	}
	return t.s.lookup(db, name)
}

// write returns a mutable staged copy of the table, staging it on first
// touch.
func (t *Tx) write(db, name string) (*table, error) {
	if m, ok := t.staged[db]; ok {
		if img, ok := m[name]; ok {
			if img == nil {
				return nil, fmt.Errorf("%w: %s.%s", relstore.ErrNoTable, db, name)
			}
			return img, nil
		}
	}
	committed, err := t.s.lookup(db, name)
	if err != nil {
		return nil, err
	}
	img := committed.clone()
	t.stage(db, name, img)
	return img, nil
}

func (t *Tx) stage(db, name string, img *table) {
	m, ok := t.staged[db]
	if !ok {
		m = make(map[string]*table)
		t.staged[db] = m
	}
	m[name] = img
}

// Exec implements backend.Tx; see exec.go for the statement surface.
func (t *Tx) Exec(db, sql string, stmt sqlparser.Statement) (*sqlengine.Result, error) {
	if t.done {
		return nil, fmt.Errorf("csvstore: transaction already finished")
	}
	return t.exec(db, stmt)
}

// Describe implements backend.Tx.
func (t *Tx) Describe(db, name string) ([]relstore.Column, error) {
	img, err := t.read(db, name)
	if err != nil {
		return nil, err
	}
	return append([]relstore.Column(nil), img.cols...), nil
}

// Prepare implements backend.Tx: the engine cannot hold a
// prepared-to-commit state. A correctly incorporated csvstore site
// (COMMITMODE COMMIT) never receives this call; the error is the
// backstop for misdeclared profiles.
func (t *Tx) Prepare() error { return ErrNoPrepare }

// Commit publishes the staged table images and rewrites their files.
func (t *Tx) Commit() error {
	if t.done {
		return nil
	}
	t.done = true
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	for db, m := range t.staged {
		d, ok := s.dbs[db]
		if !ok {
			return fmt.Errorf("%w: %s", relstore.ErrNoDatabase, db)
		}
		for name, img := range m {
			if img == nil {
				delete(d.tables, name)
			} else {
				d.tables[name] = img
			}
			if s.dir == "" {
				continue
			}
			path := filepath.Join(s.dir, db, name+".csv")
			if img == nil {
				if err := removeFile(path); err != nil {
					return err
				}
			} else if err := writeTable(path, img); err != nil {
				return err
			}
		}
	}
	return nil
}

// Rollback discards the staged writes.
func (t *Tx) Rollback() error {
	t.done = true
	t.staged = nil
	return nil
}

// SetLockTimeout implements backend.Tx; the engine takes no locks.
func (t *Tx) SetLockTimeout(time.Duration) {}
