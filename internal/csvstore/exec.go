package csvstore

import (
	"errors"
	"fmt"
	"sort"

	"msql/internal/relstore"
	"msql/internal/sqlengine"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
)

// exec dispatches one parsed statement against the transaction.
func (t *Tx) exec(db string, stmt sqlparser.Statement) (*sqlengine.Result, error) {
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		return t.execSelect(db, s)
	case *sqlparser.InsertStmt:
		return t.execInsert(db, s)
	case *sqlparser.UpdateStmt:
		return t.execUpdate(db, s)
	case *sqlparser.DeleteStmt:
		return t.execDelete(db, s)
	case *sqlparser.CreateTableStmt:
		return t.execCreateTable(db, s)
	case *sqlparser.DropTableStmt:
		return t.execDropTable(db, s)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupported, stmt)
	}
}

func splitName(db string, n sqlparser.ObjectName) (string, string) {
	if len(n.Parts) >= 2 {
		return n.Parts[0], n.Parts[1]
	}
	return db, n.Last()
}

func (t *Tx) execCreateTable(db string, s *sqlparser.CreateTableStmt) (*sqlengine.Result, error) {
	tdb, name := splitName(db, s.Table)
	if !t.s.HasDatabase(tdb) {
		return nil, fmt.Errorf("%w: %s", relstore.ErrNoDatabase, tdb)
	}
	if _, err := t.read(tdb, name); err == nil {
		return nil, fmt.Errorf("%w: table %s.%s", ErrExists, tdb, name)
	}
	cols := make([]relstore.Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = relstore.Column{Name: c.Name, Type: c.Type, Width: c.Width, Key: c.Key}
	}
	t.stage(tdb, name, &table{cols: cols})
	return &sqlengine.Result{}, nil
}

func (t *Tx) execDropTable(db string, s *sqlparser.DropTableStmt) (*sqlengine.Result, error) {
	tdb, name := splitName(db, s.Table)
	if _, err := t.read(tdb, name); err != nil {
		if s.IfExists && errors.Is(err, relstore.ErrNoTable) {
			return &sqlengine.Result{}, nil
		}
		return nil, err
	}
	t.stage(tdb, name, nil)
	return &sqlengine.Result{}, nil
}

func (t *Tx) execInsert(db string, s *sqlparser.InsertStmt) (*sqlengine.Result, error) {
	if s.Query != nil {
		return nil, fmt.Errorf("%w: INSERT ... SELECT", ErrUnsupported)
	}
	tdb, name := splitName(db, s.Table)
	img, err := t.write(tdb, name)
	if err != nil {
		return nil, err
	}
	// Map the statement's column list (or positional order) onto the
	// table's columns.
	target := make([]int, 0, len(img.cols))
	if len(s.Columns) == 0 {
		for i := range img.cols {
			target = append(target, i)
		}
	} else {
		for _, cn := range s.Columns {
			idx := -1
			for i, c := range img.cols {
				if c.Name == cn {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("csvstore: unknown column %q in %s.%s", cn, tdb, name)
			}
			target = append(target, idx)
		}
	}
	for _, exprs := range s.Rows {
		if len(exprs) != len(target) {
			return nil, fmt.Errorf("csvstore: %d values for %d columns", len(exprs), len(target))
		}
		row := make([]sqlval.Value, len(img.cols))
		for i, e := range exprs {
			v, err := evalExpr(nil, nil, e)
			if err != nil {
				return nil, err
			}
			row[target[i]] = coerce(v, img.cols[target[i]].Type)
		}
		img.rows = append(img.rows, row)
	}
	return &sqlengine.Result{RowsAffected: len(s.Rows)}, nil
}

// coerce aligns a value with the column's declared type where a lossless
// conversion exists (integer literals into FLOAT columns); anything else
// is stored as written — a flat-file engine does not validate hard.
func coerce(v sqlval.Value, kind sqlval.Kind) sqlval.Value {
	if v.K == sqlval.KindInt && kind == sqlval.KindFloat {
		return sqlval.Float(float64(v.I))
	}
	return v
}

func (t *Tx) execUpdate(db string, s *sqlparser.UpdateStmt) (*sqlengine.Result, error) {
	tdb, name := splitName(db, s.Table)
	img, err := t.write(tdb, name)
	if err != nil {
		return nil, err
	}
	env := envForTable(tdb, name, "", img)
	// Resolve assignment targets once.
	targets := make([]int, len(s.Assigns))
	for i, a := range s.Assigns {
		idx, err := env.resolve(a.Column)
		if err != nil {
			return nil, err
		}
		targets[i] = idx
	}
	n := 0
	for _, row := range img.rows {
		ok, err := truthyWhere(env, row, s.Where)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		for i, a := range s.Assigns {
			v, err := evalExpr(env, row, a.Expr)
			if err != nil {
				return nil, err
			}
			row[targets[i]] = coerce(v, img.cols[targets[i]].Type)
		}
		n++
	}
	return &sqlengine.Result{RowsAffected: n}, nil
}

func (t *Tx) execDelete(db string, s *sqlparser.DeleteStmt) (*sqlengine.Result, error) {
	tdb, name := splitName(db, s.Table)
	img, err := t.write(tdb, name)
	if err != nil {
		return nil, err
	}
	env := envForTable(tdb, name, "", img)
	kept := img.rows[:0]
	n := 0
	for _, row := range img.rows {
		ok, err := truthyWhere(env, row, s.Where)
		if err != nil {
			return nil, err
		}
		if ok {
			n++
			continue
		}
		kept = append(kept, row)
	}
	img.rows = kept
	return &sqlengine.Result{RowsAffected: n}, nil
}

func (t *Tx) execSelect(db string, s *sqlparser.SelectStmt) (*sqlengine.Result, error) {
	switch {
	case len(s.Unions) > 0:
		return nil, fmt.Errorf("%w: UNION", ErrUnsupported)
	case len(s.GroupBy) > 0 || s.Having != nil:
		return nil, fmt.Errorf("%w: GROUP BY / HAVING", ErrUnsupported)
	case len(s.From) == 0:
		return nil, fmt.Errorf("%w: SELECT without FROM", ErrUnsupported)
	}
	// Bind FROM tables and build the joint column environment.
	env := &colEnv{}
	var tables []*table
	for _, ref := range s.From {
		tdb, name := splitName(db, ref.Name)
		img, err := t.read(tdb, name)
		if err != nil {
			return nil, err
		}
		tables = append(tables, img)
		env.add(tdb, name, ref.Alias, img)
	}
	// Nested-loop cross product filtered by WHERE.
	var matched [][]sqlval.Value
	joint := make([]sqlval.Value, 0, len(env.cols))
	var loop func(level int) error
	loop = func(level int) error {
		if level == len(tables) {
			ok, err := truthyWhere(env, joint, s.Where)
			if err != nil {
				return err
			}
			if ok {
				matched = append(matched, append([]sqlval.Value(nil), joint...))
			}
			return nil
		}
		for _, row := range tables[level].rows {
			joint = append(joint, row...)
			if err := loop(level + 1); err != nil {
				return err
			}
			joint = joint[:len(joint)-len(row)]
		}
		return nil
	}
	if err := loop(0); err != nil {
		return nil, err
	}

	if hasAggregate(s.Items) {
		return aggregate(env, matched, s.Items)
	}

	// ORDER BY before projection so sort keys may reference any column.
	if len(s.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(matched, func(i, j int) bool {
			for _, o := range s.OrderBy {
				vi, err := evalExpr(env, matched[i], o.Expr)
				if err != nil {
					sortErr = err
					return false
				}
				vj, err := evalExpr(env, matched[j], o.Expr)
				if err != nil {
					sortErr = err
					return false
				}
				c := sqlval.SortCompare(vi, vj)
				if c == 0 {
					continue
				}
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	res := &sqlengine.Result{}
	proj, err := projection(env, s.Items)
	if err != nil {
		return nil, err
	}
	res.Columns = proj.cols
	seen := make(map[string]bool)
	for _, row := range matched {
		out, err := proj.apply(env, row)
		if err != nil {
			return nil, err
		}
		if s.Distinct {
			key := ""
			for _, v := range out {
				key += v.GroupKey() + "|"
			}
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		res.Rows = append(res.Rows, out)
		if s.Limit >= 0 && len(res.Rows) >= s.Limit {
			break
		}
	}
	return res, nil
}

// projector maps a joint row to output columns.
type projector struct {
	cols  []sqlengine.ResultCol
	exprs []sqlparser.Expr // nil entry = direct column index
	idxs  []int
}

func projection(env *colEnv, items []sqlparser.SelectItem) (*projector, error) {
	p := &projector{}
	for _, it := range items {
		if it.Star {
			for i, c := range env.cols {
				if it.Qualifier != "" && env.quals[i] != it.Qualifier {
					continue
				}
				p.cols = append(p.cols, sqlengine.ResultCol{Name: c.Name, Type: c.Type})
				p.exprs = append(p.exprs, nil)
				p.idxs = append(p.idxs, i)
			}
			continue
		}
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(sqlparser.ColRef); ok {
				name = cr.Last()
			} else {
				name = sqlparser.DeparseExpr(it.Expr)
			}
		}
		if cr, ok := it.Expr.(sqlparser.ColRef); ok {
			idx, err := env.resolve(cr)
			if err != nil {
				return nil, err
			}
			p.cols = append(p.cols, sqlengine.ResultCol{Name: name, Type: env.cols[idx].Type})
			p.exprs = append(p.exprs, nil)
			p.idxs = append(p.idxs, idx)
			continue
		}
		p.cols = append(p.cols, sqlengine.ResultCol{Name: name})
		p.exprs = append(p.exprs, it.Expr)
		p.idxs = append(p.idxs, -1)
	}
	return p, nil
}

func (p *projector) apply(env *colEnv, row []sqlval.Value) ([]sqlval.Value, error) {
	out := make([]sqlval.Value, len(p.cols))
	for i := range p.cols {
		if p.exprs[i] == nil {
			out[i] = row[p.idxs[i]]
			continue
		}
		v, err := evalExpr(env, row, p.exprs[i])
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func hasAggregate(items []sqlparser.SelectItem) bool {
	for _, it := range items {
		if _, ok := it.Expr.(*sqlparser.FuncCall); ok {
			return true
		}
	}
	return false
}

// aggregate evaluates ungrouped aggregates (COUNT/SUM/AVG/MIN/MAX) over
// the matched rows — the one-row summaries verification queries use.
func aggregate(env *colEnv, rows [][]sqlval.Value, items []sqlparser.SelectItem) (*sqlengine.Result, error) {
	res := &sqlengine.Result{}
	out := make([]sqlval.Value, len(items))
	for i, it := range items {
		fc, ok := it.Expr.(*sqlparser.FuncCall)
		if !ok {
			return nil, fmt.Errorf("%w: mixing aggregates with plain columns", ErrUnsupported)
		}
		name := it.Alias
		if name == "" {
			name = fc.Name
		}
		res.Columns = append(res.Columns, sqlengine.ResultCol{Name: name})
		if fc.Name == "COUNT" && fc.Star {
			out[i] = sqlval.Int(int64(len(rows)))
			continue
		}
		if len(fc.Args) != 1 {
			return nil, fmt.Errorf("%w: %s with %d args", ErrUnsupported, fc.Name, len(fc.Args))
		}
		var sum float64
		var count int64
		var best sqlval.Value
		for _, row := range rows {
			v, err := evalExpr(env, row, fc.Args[0])
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				continue
			}
			count++
			if f, ok := v.AsFloat(); ok {
				sum += f
			}
			if best.IsNull() {
				best = v
				continue
			}
			c := sqlval.SortCompare(v, best)
			if (fc.Name == "MIN" && c < 0) || (fc.Name == "MAX" && c > 0) {
				best = v
			}
		}
		switch fc.Name {
		case "COUNT":
			out[i] = sqlval.Int(count)
		case "SUM":
			if count == 0 {
				out[i] = sqlval.Null()
			} else {
				out[i] = sqlval.Float(sum)
			}
		case "AVG":
			if count == 0 {
				out[i] = sqlval.Null()
			} else {
				out[i] = sqlval.Float(sum / float64(count))
			}
		case "MIN", "MAX":
			out[i] = best
		default:
			return nil, fmt.Errorf("%w: function %s", ErrUnsupported, fc.Name)
		}
	}
	res.Rows = append(res.Rows, out)
	return res, nil
}
