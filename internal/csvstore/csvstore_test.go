package csvstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"msql/internal/ldbms"
	"msql/internal/relstore"
	"msql/internal/sqlengine"
	"msql/internal/sqlparser"
)

func mustExec(t *testing.T, tx *Tx, db, sql string) *sqlengine.Result {
	t.Helper()
	stmt, err := sqlparser.ParseStatement(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := tx.Exec(db, sql, stmt)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func begin(t *testing.T, s *Store) *Tx {
	t.Helper()
	return s.Begin().(*Tx)
}

func newDB(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCRUDRoundTrip(t *testing.T) {
	s := newDB(t, "")
	tx := begin(t, s)
	mustExec(t, tx, "d", "CREATE TABLE fleet (id INTEGER, city CHAR(20), rate FLOAT)")
	mustExec(t, tx, "d", "INSERT INTO fleet VALUES (1, 'Houston', 10.5), (2, 'Austin', 20.0), (3, 'Dallas', 30.0)")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx = begin(t, s)
	res := mustExec(t, tx, "d", "SELECT city FROM fleet WHERE rate > 15 ORDER BY rate DESC")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "Dallas" || res.Rows[1][0].S != "Austin" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, tx, "d", "UPDATE fleet SET rate = rate + 1 WHERE id = 1")
	if res.RowsAffected != 1 {
		t.Fatalf("updated %d rows", res.RowsAffected)
	}
	res = mustExec(t, tx, "d", "SELECT rate FROM fleet WHERE id = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].F != 11.5 {
		t.Fatalf("rate = %v", res.Rows)
	}
	res = mustExec(t, tx, "d", "DELETE FROM fleet WHERE city = 'Austin'")
	if res.RowsAffected != 1 {
		t.Fatalf("deleted %d rows", res.RowsAffected)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx = begin(t, s)
	res = mustExec(t, tx, "d", "SELECT COUNT(*) FROM fleet")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestRollbackDiscardsStagedWrites(t *testing.T) {
	s := newDB(t, "")
	tx := begin(t, s)
	mustExec(t, tx, "d", "CREATE TABLE x (a INTEGER)")
	mustExec(t, tx, "d", "INSERT INTO x VALUES (1)")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx = begin(t, s)
	mustExec(t, tx, "d", "INSERT INTO x VALUES (2)")
	mustExec(t, tx, "d", "DELETE FROM x WHERE a = 1")
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	tx = begin(t, s)
	res := mustExec(t, tx, "d", "SELECT a FROM x")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows after rollback = %v", res.Rows)
	}
}

func TestPrepareAlwaysRefused(t *testing.T) {
	s := newDB(t, "")
	tx := begin(t, s)
	if err := tx.Prepare(); !errors.Is(err, ErrNoPrepare) {
		t.Fatalf("Prepare = %v, want ErrNoPrepare", err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := newDB(t, dir)
	tx := begin(t, s)
	mustExec(t, tx, "d", "CREATE TABLE kv (k CHAR(10), v INTEGER, f FLOAT, b BOOLEAN)")
	mustExec(t, tx, "d", "INSERT INTO kv VALUES ('a, with ''quote''', 1, 2.5, TRUE)")
	mustExec(t, tx, "d", "INSERT INTO kv (k) VALUES ('nulls')")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory sees the committed state.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.HasDatabase("d") {
		t.Fatal("database lost across reopen")
	}
	tx = begin(t, s2)
	res := mustExec(t, tx, "d", "SELECT k, v, f, b FROM kv ORDER BY k")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "a, with 'quote'" || res.Rows[0][1].I != 1 || res.Rows[0][2].F != 2.5 || !res.Rows[0][3].B {
		t.Fatalf("row 0 = %v", res.Rows[0])
	}
	if !res.Rows[1][1].IsNull() || !res.Rows[1][3].IsNull() {
		t.Fatalf("NULLs not preserved: %v", res.Rows[1])
	}

	// DROP TABLE removes the file.
	tx = begin(t, s2)
	mustExec(t, tx, "d", "DROP TABLE kv")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "d", "kv.csv")); !os.IsNotExist(err) {
		t.Fatalf("kv.csv survived DROP TABLE: %v", err)
	}
}

func TestJoinAndAggregates(t *testing.T) {
	s := newDB(t, "")
	tx := begin(t, s)
	mustExec(t, tx, "d", "CREATE TABLE flights (fno INTEGER, dest CHAR(20))")
	mustExec(t, tx, "d", "CREATE TABLE fares (fno INTEGER, fare FLOAT)")
	mustExec(t, tx, "d", "INSERT INTO flights VALUES (1, 'Houston'), (2, 'Austin')")
	mustExec(t, tx, "d", "INSERT INTO fares VALUES (1, 100.0), (2, 50.0), (2, 60.0)")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx = begin(t, s)
	res := mustExec(t, tx, "d",
		"SELECT flights.dest, fares.fare FROM flights, fares WHERE flights.fno = fares.fno AND fares.fare < 90 ORDER BY fare")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "Austin" || res.Rows[0][1].F != 50.0 {
		t.Fatalf("join rows = %v", res.Rows)
	}
	res = mustExec(t, tx, "d", "SELECT COUNT(fare), SUM(fare), MIN(fare), MAX(fare) FROM fares")
	r := res.Rows[0]
	if r[0].I != 3 || r[1].F != 210.0 || r[2].F != 50.0 || r[3].F != 100.0 {
		t.Fatalf("aggregates = %v", r)
	}
}

func TestUnsupportedSurfaceFailsCleanly(t *testing.T) {
	s := newDB(t, "")
	tx := begin(t, s)
	mustExec(t, tx, "d", "CREATE TABLE x (a INTEGER)")
	for _, q := range []string{
		"SELECT a FROM x GROUP BY a",
		"CREATE VIEW v AS SELECT a FROM x",
	} {
		stmt, err := sqlparser.ParseStatement(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := tx.Exec("d", q, stmt); !errors.Is(err, ErrUnsupported) {
			t.Fatalf("%q: err = %v, want ErrUnsupported", q, err)
		}
	}
	stmt, _ := sqlparser.ParseStatement("SELECT a FROM nosuch")
	if _, err := tx.Exec("d", "", stmt); !errors.Is(err, relstore.ErrNoTable) {
		t.Fatalf("missing table err = %v, want relstore.ErrNoTable", err)
	}
}

// TestBehindLDBMSAutoCommitProfile drives the engine through the full
// session layer: behind ProfileAutoCommitOnly every statement commits
// on its own, Prepare is refused by the profile, and the server's
// Prepares counter stays zero — the invariant the fleet soak asserts.
func TestBehindLDBMSAutoCommitProfile(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	srv := ldbms.NewServerOn("csvsvc", ldbms.ProfileAutoCommitOnly(), 1, s)
	if err := srv.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.OpenSession("d")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO t VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.SilentCommits != 2 {
		t.Fatalf("silent commits = %d, want 2 (every statement autocommits)", st.SilentCommits)
	}
	if err := sess.Prepare(); !errors.Is(err, ldbms.ErrNoTwoPC) {
		t.Fatalf("Prepare = %v, want ErrNoTwoPC", err)
	}
	if srv.Stats().Prepares != 0 {
		t.Fatal("autocommit-only server counted a prepare")
	}
	// Another session sees the committed rows; Store() has no relstore
	// behind it.
	sess2, err := srv.OpenSession("d")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess2.Exec("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if srv.Store() != nil {
		t.Fatal("csv-backed server leaked a relstore")
	}
	names, err := sess2.ListTables()
	if err != nil || len(names) != 1 || names[0] != "t" {
		t.Fatalf("ListTables = %v, %v", names, err)
	}
	cols, err := sess2.Describe("t")
	if err != nil || len(cols) != 1 || cols[0].Name != "a" {
		t.Fatalf("Describe = %v, %v", cols, err)
	}
}
