package csvstore

import (
	"fmt"
	"strings"

	"msql/internal/relstore"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
)

// colEnv is the joint column namespace of a statement: the columns of
// every FROM table concatenated in order, each with the qualifier (alias
// or table name) it answers to.
type colEnv struct {
	cols  []relstore.Column
	quals []string // alias or table name per column
	dbs   []string // owning database per column
}

func (e *colEnv) add(db, name, alias string, img *table) {
	q := alias
	if q == "" {
		q = name
	}
	for _, c := range img.cols {
		e.cols = append(e.cols, c)
		e.quals = append(e.quals, q)
		e.dbs = append(e.dbs, db)
	}
}

// envForTable builds the environment of a single-table statement.
func envForTable(db, name, alias string, img *table) *colEnv {
	e := &colEnv{}
	e.add(db, name, alias, img)
	return e
}

// resolve maps a column reference to its joint-row index.
func (e *colEnv) resolve(cr sqlparser.ColRef) (int, error) {
	var qual, db, col string
	switch len(cr.Parts) {
	case 1:
		col = cr.Parts[0]
	case 2:
		qual, col = cr.Parts[0], cr.Parts[1]
	case 3:
		db, qual, col = cr.Parts[0], cr.Parts[1], cr.Parts[2]
	default:
		return 0, fmt.Errorf("csvstore: bad column reference %q", cr.Name())
	}
	found := -1
	for i, c := range e.cols {
		if !strings.EqualFold(c.Name, col) {
			continue
		}
		if qual != "" && !strings.EqualFold(e.quals[i], qual) {
			continue
		}
		if db != "" && !strings.EqualFold(e.dbs[i], db) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("csvstore: ambiguous column %q", cr.Name())
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("csvstore: unknown column %q", cr.Name())
	}
	return found, nil
}

// truthyWhere evaluates an optional WHERE clause against a joint row.
func truthyWhere(env *colEnv, row []sqlval.Value, where sqlparser.Expr) (bool, error) {
	if where == nil {
		return true, nil
	}
	v, err := evalExpr(env, row, where)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// evalExpr evaluates the engine's expression subset. env/row may be nil
// for constant expressions (INSERT values).
func evalExpr(env *colEnv, row []sqlval.Value, e sqlparser.Expr) (sqlval.Value, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return x.Val, nil
	case sqlparser.ColRef:
		if env == nil {
			return sqlval.Value{}, fmt.Errorf("csvstore: column %q in constant context", x.Name())
		}
		idx, err := env.resolve(x)
		if err != nil {
			return sqlval.Value{}, err
		}
		return row[idx], nil
	case *sqlparser.BinaryExpr:
		return evalBinary(env, row, x)
	case *sqlparser.UnaryExpr:
		v, err := evalExpr(env, row, x.X)
		if err != nil {
			return sqlval.Value{}, err
		}
		switch x.Op {
		case "-":
			switch v.K {
			case sqlval.KindInt:
				return sqlval.Int(-v.I), nil
			case sqlval.KindFloat:
				return sqlval.Float(-v.F), nil
			case sqlval.KindNull:
				return sqlval.Null(), nil
			}
			return sqlval.Value{}, fmt.Errorf("csvstore: cannot negate %s", v.K)
		case "NOT":
			if v.IsNull() {
				return sqlval.Null(), nil
			}
			return sqlval.Bool(!v.Truthy()), nil
		}
		return sqlval.Value{}, fmt.Errorf("%w: unary %s", ErrUnsupported, x.Op)
	case *sqlparser.IsNullExpr:
		v, err := evalExpr(env, row, x.X)
		if err != nil {
			return sqlval.Value{}, err
		}
		return sqlval.Bool(v.IsNull() != x.Not), nil
	case *sqlparser.BetweenExpr:
		v, err := evalExpr(env, row, x.X)
		if err != nil {
			return sqlval.Value{}, err
		}
		lo, err := evalExpr(env, row, x.Lo)
		if err != nil {
			return sqlval.Value{}, err
		}
		hi, err := evalExpr(env, row, x.Hi)
		if err != nil {
			return sqlval.Value{}, err
		}
		cl, ok1 := sqlval.Compare(v, lo)
		ch, ok2 := sqlval.Compare(v, hi)
		if !ok1 || !ok2 {
			return sqlval.Null(), nil
		}
		in := cl >= 0 && ch <= 0
		return sqlval.Bool(in != x.Not), nil
	case *sqlparser.InExpr:
		if x.Query != nil {
			return sqlval.Value{}, fmt.Errorf("%w: IN (subquery)", ErrUnsupported)
		}
		v, err := evalExpr(env, row, x.X)
		if err != nil {
			return sqlval.Value{}, err
		}
		for _, le := range x.List {
			lv, err := evalExpr(env, row, le)
			if err != nil {
				return sqlval.Value{}, err
			}
			if sqlval.Equal(v, lv) {
				return sqlval.Bool(!x.Not), nil
			}
		}
		return sqlval.Bool(x.Not), nil
	case *sqlparser.LikeExpr:
		v, err := evalExpr(env, row, x.X)
		if err != nil {
			return sqlval.Value{}, err
		}
		p, err := evalExpr(env, row, x.Pattern)
		if err != nil {
			return sqlval.Value{}, err
		}
		if v.IsNull() || p.IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Bool(likeMatch(v.String(), p.String()) != x.Not), nil
	default:
		return sqlval.Value{}, fmt.Errorf("%w: expression %T", ErrUnsupported, e)
	}
}

func evalBinary(env *colEnv, row []sqlval.Value, x *sqlparser.BinaryExpr) (sqlval.Value, error) {
	// AND/OR short-circuit on the left operand.
	switch x.Op {
	case "AND":
		l, err := evalExpr(env, row, x.L)
		if err != nil {
			return sqlval.Value{}, err
		}
		if !l.IsNull() && !l.Truthy() {
			return sqlval.Bool(false), nil
		}
		r, err := evalExpr(env, row, x.R)
		if err != nil {
			return sqlval.Value{}, err
		}
		if !r.IsNull() && !r.Truthy() {
			return sqlval.Bool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Bool(true), nil
	case "OR":
		l, err := evalExpr(env, row, x.L)
		if err != nil {
			return sqlval.Value{}, err
		}
		if l.Truthy() {
			return sqlval.Bool(true), nil
		}
		r, err := evalExpr(env, row, x.R)
		if err != nil {
			return sqlval.Value{}, err
		}
		if r.Truthy() {
			return sqlval.Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Bool(false), nil
	}
	l, err := evalExpr(env, row, x.L)
	if err != nil {
		return sqlval.Value{}, err
	}
	r, err := evalExpr(env, row, x.R)
	if err != nil {
		return sqlval.Value{}, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c, ok := sqlval.Compare(l, r)
		if !ok {
			return sqlval.Null(), nil
		}
		switch x.Op {
		case "=":
			return sqlval.Bool(c == 0), nil
		case "<>":
			return sqlval.Bool(c != 0), nil
		case "<":
			return sqlval.Bool(c < 0), nil
		case "<=":
			return sqlval.Bool(c <= 0), nil
		case ">":
			return sqlval.Bool(c > 0), nil
		default:
			return sqlval.Bool(c >= 0), nil
		}
	case "+", "-", "*", "/":
		if l.IsNull() || r.IsNull() {
			return sqlval.Null(), nil
		}
		if l.K == sqlval.KindInt && r.K == sqlval.KindInt && x.Op != "/" {
			switch x.Op {
			case "+":
				return sqlval.Int(l.I + r.I), nil
			case "-":
				return sqlval.Int(l.I - r.I), nil
			default:
				return sqlval.Int(l.I * r.I), nil
			}
		}
		lf, ok1 := l.AsFloat()
		rf, ok2 := r.AsFloat()
		if !ok1 || !ok2 {
			return sqlval.Value{}, fmt.Errorf("csvstore: non-numeric operand for %s", x.Op)
		}
		switch x.Op {
		case "+":
			return sqlval.Float(lf + rf), nil
		case "-":
			return sqlval.Float(lf - rf), nil
		case "*":
			return sqlval.Float(lf * rf), nil
		default:
			if rf == 0 {
				return sqlval.Value{}, fmt.Errorf("csvstore: division by zero")
			}
			return sqlval.Float(lf / rf), nil
		}
	}
	return sqlval.Value{}, fmt.Errorf("%w: operator %s", ErrUnsupported, x.Op)
}

// likeMatch implements SQL LIKE ('%' any run, '_' any single rune).
func likeMatch(s, pattern string) bool {
	if pattern == "" {
		return s == ""
	}
	switch pattern[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeMatch(s[i:], pattern[1:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && likeMatch(s[1:], pattern[1:])
	default:
		return s != "" && s[0] == pattern[0] && likeMatch(s[1:], pattern[1:])
	}
}
