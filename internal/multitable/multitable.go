// Package multitable implements MSQL's result representation: a multiple
// query returns a multitable — a set of tables, one per elementary query,
// each generated as a partial result by the accessed database (§2 of the
// paper). A multitable can be flattened into a single table for display,
// aligning columns positionally and labelling them with the first
// table's names.
package multitable

import (
	"fmt"
	"strings"

	"msql/internal/sqlengine"
	"msql/internal/sqlval"
)

// Table is one member of a multitable, labelled with its origin.
type Table struct {
	Database string
	Columns  []sqlengine.ResultCol
	Rows     [][]sqlval.Value
}

// Multitable is a set of tables produced by one multiple query.
type Multitable struct {
	Tables []Table
}

// Empty reports whether no table carries any column.
func (m *Multitable) Empty() bool {
	for _, t := range m.Tables {
		if len(t.Columns) > 0 {
			return false
		}
	}
	return true
}

// TotalRows counts rows across member tables.
func (m *Multitable) TotalRows() int {
	n := 0
	for _, t := range m.Tables {
		n += len(t.Rows)
	}
	return n
}

// Flatten merges the member tables into one, aligning columns by
// position. All members must have the same arity; the first member's
// column names label the result, and an origin column is prepended.
func (m *Multitable) Flatten() (*Table, error) {
	if len(m.Tables) == 0 {
		return &Table{}, nil
	}
	arity := len(m.Tables[0].Columns)
	for _, t := range m.Tables[1:] {
		if len(t.Columns) != arity {
			return nil, fmt.Errorf("multitable: cannot flatten: %s has %d columns, %s has %d",
				m.Tables[0].Database, arity, t.Database, len(t.Columns))
		}
	}
	out := &Table{Database: "(flattened)"}
	out.Columns = append(out.Columns, sqlengine.ResultCol{Name: "origin", Type: sqlval.KindString})
	out.Columns = append(out.Columns, m.Tables[0].Columns...)
	for _, t := range m.Tables {
		for _, r := range t.Rows {
			row := make([]sqlval.Value, 0, arity+1)
			row = append(row, sqlval.Str(t.Database))
			row = append(row, r...)
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c.Name)
	}
	cells := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		cells[ri] = make([]string, len(r))
		for ci, v := range r {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c.Name)
	}
	b.WriteString("\n")
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range cells {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Format renders every member table with a database heading.
func (m *Multitable) Format() string {
	var b strings.Builder
	for i, t := range m.Tables {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "-- %s (%d rows)\n", t.Database, len(t.Rows))
		b.WriteString(t.Format())
	}
	return b.String()
}
