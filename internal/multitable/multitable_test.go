package multitable

import (
	"strings"
	"testing"

	"msql/internal/sqlengine"
	"msql/internal/sqlval"
)

func sample() *Multitable {
	return &Multitable{Tables: []Table{
		{
			Database: "avis",
			Columns: []sqlengine.ResultCol{
				{Name: "code", Type: sqlval.KindInt},
				{Name: "cartype", Type: sqlval.KindString},
				{Name: "rate", Type: sqlval.KindFloat},
			},
			Rows: [][]sqlval.Value{
				{sqlval.Int(1), sqlval.Str("suv"), sqlval.Float(49.5)},
			},
		},
		{
			Database: "national",
			Columns: []sqlengine.ResultCol{
				{Name: "vcode", Type: sqlval.KindInt},
				{Name: "vty", Type: sqlval.KindString},
				{Name: "NULL", Type: sqlval.KindNull},
			},
			Rows: [][]sqlval.Value{
				{sqlval.Int(11), sqlval.Str("sedan"), sqlval.Null()},
				{sqlval.Int(12), sqlval.Str("truck"), sqlval.Null()},
			},
		},
	}}
}

func TestTotalRowsAndEmpty(t *testing.T) {
	m := sample()
	if m.TotalRows() != 3 {
		t.Fatalf("total = %d", m.TotalRows())
	}
	if m.Empty() {
		t.Fatal("not empty")
	}
	empty := &Multitable{}
	if !empty.Empty() {
		t.Fatal("empty multitable should report Empty")
	}
	flat, err := empty.Flatten()
	if err != nil || len(flat.Rows) != 0 {
		t.Fatalf("flatten empty = %+v, %v", flat, err)
	}
}

func TestFlatten(t *testing.T) {
	m := sample()
	flat, err := m.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Rows) != 3 || len(flat.Columns) != 4 {
		t.Fatalf("flat = %d rows, %d cols", len(flat.Rows), len(flat.Columns))
	}
	if flat.Columns[0].Name != "origin" || flat.Columns[1].Name != "code" {
		t.Fatalf("cols = %v", flat.Columns)
	}
	if flat.Rows[0][0].S != "avis" || flat.Rows[1][0].S != "national" {
		t.Fatalf("origins = %v, %v", flat.Rows[0][0], flat.Rows[1][0])
	}
}

func TestFlattenArityMismatch(t *testing.T) {
	m := sample()
	m.Tables[1].Columns = m.Tables[1].Columns[:2]
	if _, err := m.Flatten(); err == nil {
		t.Fatal("arity mismatch should error")
	}
}

func TestFormat(t *testing.T) {
	m := sample()
	out := m.Format()
	for _, want := range []string{"-- avis (1 rows)", "-- national (2 rows)", "code", "suv", "sedan", "NULL"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
	// Alignment: header separator present.
	if !strings.Contains(out, "----") {
		t.Errorf("missing separator:\n%s", out)
	}
}
