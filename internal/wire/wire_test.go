package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"

	"msql/internal/ldbms"
	"msql/internal/relstore"
	"msql/internal/sqlval"
)

func TestErrorCodesRoundTrip(t *testing.T) {
	cases := []error{
		ldbms.ErrNoTwoPC,
		ldbms.ErrInjected,
		ldbms.ErrSessionState,
		relstore.ErrLockTimeout,
		relstore.ErrNoTable,
		relstore.ErrNoDatabase,
	}
	for _, sentinel := range cases {
		code, msg := EncodeError(sentinel)
		back := DecodeError(code, msg)
		if !errors.Is(back, sentinel) {
			t.Errorf("sentinel %v lost across the wire: %v", sentinel, back)
		}
	}
	code, msg := EncodeError(errors.New("plain failure"))
	if code != CodeOther {
		t.Fatalf("code = %s", code)
	}
	if DecodeError(code, msg).Error() != "plain failure" {
		t.Fatal("message lost")
	}
	if DecodeError(CodeNone, "") != nil {
		t.Fatal("empty code should be nil error")
	}
	if c, _ := EncodeError(nil); c != CodeNone {
		t.Fatal("nil error should encode to CodeNone")
	}
}

func TestProfileRoundTrip(t *testing.T) {
	p := ldbms.ProfileIngresLike()
	w := FromProfile(p)
	back := w.ToProfile()
	if back.Name != p.Name || back.TwoPC != p.TwoPC || back.MultiDatabase != p.MultiDatabase {
		t.Fatalf("profile = %+v", back)
	}
	if !back.AutoCommits(ldbms.ClassCreate) || back.AutoCommits(ldbms.ClassUpdate) {
		t.Fatalf("autocommit classes lost: %+v", back.AutoCommitClasses)
	}
}

func TestColumnsRoundTrip(t *testing.T) {
	cols := []relstore.Column{
		{Name: "code", Type: sqlval.KindInt},
		{Name: "cartype", Type: sqlval.KindString, Width: 20},
	}
	back := ToRelstoreColumns(FromRelstoreColumns(cols))
	if len(back) != 2 || back[1].Width != 20 || back[0].Type != sqlval.KindInt {
		t.Fatalf("cols = %+v", back)
	}
}

func TestGobEncodableMessages(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	req := Request{Kind: ReqExec, SessionID: 7, SQL: "SELECT 1"}
	if err := enc.Encode(&req); err != nil {
		t.Fatal(err)
	}
	var gotReq Request
	if err := dec.Decode(&gotReq); err != nil {
		t.Fatal(err)
	}
	if gotReq.SQL != "SELECT 1" || gotReq.SessionID != 7 {
		t.Fatalf("req = %+v", gotReq)
	}

	resp := Response{
		Result: &Result{
			Columns: []Column{{Name: "a", Type: uint8(sqlval.KindInt)}},
			Rows:    [][]sqlval.Value{{sqlval.Int(1)}, {sqlval.Null()}},
		},
	}
	if err := enc.Encode(&resp); err != nil {
		t.Fatal(err)
	}
	var gotResp Response
	if err := dec.Decode(&gotResp); err != nil {
		t.Fatal(err)
	}
	if len(gotResp.Result.Rows) != 2 || !gotResp.Result.Rows[1][0].IsNull() {
		t.Fatalf("resp = %+v", gotResp.Result)
	}
}

func TestReqKindStrings(t *testing.T) {
	if ReqExec.String() != "exec" || ReqOpen.String() != "open" {
		t.Fatal("kind names wrong")
	}
	if ReqKind(200).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}
