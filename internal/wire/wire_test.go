package wire

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"msql/internal/ldbms"
	"msql/internal/relstore"
	"msql/internal/sqlval"
)

func TestErrorCodesRoundTrip(t *testing.T) {
	cases := []error{
		ldbms.ErrNoTwoPC,
		ldbms.ErrInjected,
		ldbms.ErrSessionState,
		relstore.ErrLockTimeout,
		relstore.ErrNoTable,
		relstore.ErrNoDatabase,
	}
	for _, sentinel := range cases {
		code, msg := EncodeError(sentinel)
		back := DecodeError(code, msg)
		if !errors.Is(back, sentinel) {
			t.Errorf("sentinel %v lost across the wire: %v", sentinel, back)
		}
	}
	code, msg := EncodeError(errors.New("plain failure"))
	if code != CodeOther {
		t.Fatalf("code = %s", code)
	}
	if DecodeError(code, msg).Error() != "plain failure" {
		t.Fatal("message lost")
	}
	if DecodeError(CodeNone, "") != nil {
		t.Fatal("empty code should be nil error")
	}
	if c, _ := EncodeError(nil); c != CodeNone {
		t.Fatal("nil error should encode to CodeNone")
	}
}

func TestProfileRoundTrip(t *testing.T) {
	p := ldbms.ProfileIngresLike()
	w := FromProfile(p)
	back := w.ToProfile()
	if back.Name != p.Name || back.TwoPC != p.TwoPC || back.MultiDatabase != p.MultiDatabase {
		t.Fatalf("profile = %+v", back)
	}
	if !back.AutoCommits(ldbms.ClassCreate) || back.AutoCommits(ldbms.ClassUpdate) {
		t.Fatalf("autocommit classes lost: %+v", back.AutoCommitClasses)
	}
}

func TestColumnsRoundTrip(t *testing.T) {
	cols := []relstore.Column{
		{Name: "code", Type: sqlval.KindInt},
		{Name: "cartype", Type: sqlval.KindString, Width: 20},
	}
	back := ToRelstoreColumns(FromRelstoreColumns(cols))
	if len(back) != 2 || back[1].Width != 20 || back[0].Type != sqlval.KindInt {
		t.Fatalf("cols = %+v", back)
	}
}

func TestGobEncodableMessages(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	req := Request{Kind: ReqExec, SessionID: 7, SQL: "SELECT 1"}
	if err := enc.Encode(&req); err != nil {
		t.Fatal(err)
	}
	var gotReq Request
	if err := dec.Decode(&gotReq); err != nil {
		t.Fatal(err)
	}
	if gotReq.SQL != "SELECT 1" || gotReq.SessionID != 7 {
		t.Fatalf("req = %+v", gotReq)
	}

	resp := Response{
		Result: &Result{
			Columns: []Column{{Name: "a", Type: uint8(sqlval.KindInt)}},
			Rows:    [][]sqlval.Value{{sqlval.Int(1)}, {sqlval.Null()}},
		},
	}
	if err := enc.Encode(&resp); err != nil {
		t.Fatal(err)
	}
	var gotResp Response
	if err := dec.Decode(&gotResp); err != nil {
		t.Fatal(err)
	}
	if len(gotResp.Result.Rows) != 2 || !gotResp.Result.Rows[1][0].IsNull() {
		t.Fatalf("resp = %+v", gotResp.Result)
	}
}

func TestReqKindStrings(t *testing.T) {
	if ReqExec.String() != "exec" || ReqOpen.String() != "open" {
		t.Fatal("kind names wrong")
	}
	if ReqKind(200).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"eof", io.EOF, true},
		{"unexpected-eof", io.ErrUnexpectedEOF, true},
		{"net-closed", net.ErrClosed, true},
		{"deadline", context.DeadlineExceeded, true},
		{"conn-reset", syscall.ECONNRESET, true},
		{"conn-refused", syscall.ECONNREFUSED, true},
		{"wrapped-eof", fmt.Errorf("exec: %w", io.EOF), true},
		{"op-error-dial", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, true},
		// Definite: the server answered.
		{"server-answered", DecodeError(CodeNoTable, "no such table"), false},
		{"injected", DecodeError(CodeInjected, "fault"), false},
		{"plain", errors.New("syntax error"), false},
		// A canceled context is the caller's own decision, not a fault.
		{"canceled", context.Canceled, false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBenignCloseClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		// The ways a peer hanging up cleanly (or our own shutdown racing a
		// reader) surfaces on a server loop.
		{"nil", nil, true},
		{"eof", io.EOF, true},
		{"net-closed", net.ErrClosed, true},
		{"conn-reset", syscall.ECONNRESET, true},
		{"conn-aborted", syscall.ECONNABORTED, true},
		{"epipe", syscall.EPIPE, true},
		{"wrapped-reset", fmt.Errorf("read: %w", syscall.ECONNRESET), true},
		{"op-error-reset", &net.OpError{Op: "read", Err: syscall.ECONNRESET}, true},
		// A stream cut mid-message is data loss, never benign.
		{"unexpected-eof", io.ErrUnexpectedEOF, false},
		{"wrapped-unexpected-eof", fmt.Errorf("decode: %w", io.ErrUnexpectedEOF), false},
		{"deadline", context.DeadlineExceeded, false},
		{"plain", errors.New("gob: type mismatch"), false},
	}
	for _, c := range cases {
		if got := BenignClose(c.err); got != c.want {
			t.Errorf("BenignClose(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestTransientTimeoutInterface(t *testing.T) {
	// Any net.Error reporting Timeout() is transient, e.g. the error an
	// expired conn deadline produces.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
	_, rerr := c.Read(make([]byte, 1))
	if rerr == nil {
		t.Fatal("read should have timed out")
	}
	if !Transient(rerr) {
		t.Fatalf("deadline error %v should be transient", rerr)
	}
}

func TestTruncatedStreamDecodeIsTransient(t *testing.T) {
	// A gob stream cut mid-message decodes to an EOF-family error, which
	// must classify as transient (outcome unknown).
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&Response{ServiceNm: "svc", ErrMsg: "x"}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	var resp Response
	err := gob.NewDecoder(bytes.NewReader(cut)).Decode(&resp)
	if err == nil {
		t.Fatal("truncated stream should fail to decode")
	}
	if !Transient(err) {
		t.Fatalf("truncated-stream error %v should be transient", err)
	}
}

func TestAttachKindString(t *testing.T) {
	if ReqAttach.String() != "attach" {
		t.Fatalf("attach kind = %q", ReqAttach.String())
	}
}
