package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"msql/internal/sqlval"
)

// fuzzSeedRequests covers every request kind plus the durability fields
// (MTID, trace correlation) so the corpus exercises the full frame
// vocabulary.
func fuzzSeedRequests() []Request {
	return []Request{
		{Kind: ReqHello},
		{Kind: ReqOpen, Database: "united"},
		{Kind: ReqExec, SessionID: 7, SQL: "UPDATE flight SET rates = 132.0 WHERE fn = 300"},
		{Kind: ReqPrepare, SessionID: 7, MTID: 42, TraceID: "t1", ParentSpan: 9},
		{Kind: ReqCommit, SessionID: 7},
		{Kind: ReqAttach, SessionID: 7},
		{Kind: ReqForget, SessionID: 7},
		{Kind: ReqDescribe, Database: "avis", Name: "cars"},
	}
}

// FuzzRequestDecode throws arbitrary byte strings at the server side of
// the wire protocol: a gob decode of a Request must either fail with an
// error or yield a value — never panic, whatever a malicious or torn
// client stream contains. Valid frames must round-trip unchanged
// (mirrors the mtlog decoder fuzzer for the journal framing).
func FuzzRequestDecode(f *testing.F) {
	for _, req := range fuzzSeedRequests() {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
			f.Fatal(err)
		}
		b := buf.Bytes()
		f.Add(b)
		f.Add(b[:len(b)/2])                 // torn frame
		f.Add(append([]byte("junk"), b...)) // garbage prefix
		if len(b) > 8 {
			flipped := append([]byte{}, b...)
			flipped[len(flipped)/2] ^= 0x40
			f.Add(flipped)
		}
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&req); err != nil {
			return // rejected, as it should be for garbage
		}
		// Whatever decoded must re-encode and re-decode to the same frame:
		// the request loop forwards decoded values into dispatch verbatim.
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
			t.Fatalf("decoded request failed to re-encode: %+v: %v", req, err)
		}
		var again Request
		if err := gob.NewDecoder(&buf).Decode(&again); err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		if again != req {
			t.Fatalf("round trip mismatch: %+v != %+v", again, req)
		}
	})
}

// FuzzResponseDecode is the client half: arbitrary bytes fed to the
// Response decoder must never panic, and decodable responses must
// round-trip (including nested results, columns, and error codes).
func FuzzResponseDecode(f *testing.F) {
	seeds := []Response{
		{ServiceNm: "svc_unit"},
		{SessionID: 7, ServerNS: 1234},
		{ErrCode: CodeNoSession, ErrMsg: "wire: unknown session: 7"},
		{State: 2},
		{Result: &Result{
			Columns:      []Column{{Name: "fn", Type: 1}, {Name: "rates", Type: 2, Width: 8}},
			Rows:         [][]sqlval.Value{{sqlval.Int(300), sqlval.Float(132)}},
			RowsAffected: 1,
		}},
		{Names: []string{"flight", "fn727"}},
		{Profile: Profile{Name: "ORACLE-like", TwoPC: true, MultiDatabase: true, AutoCommitClasses: []uint8{1}}},
	}
	for _, resp := range seeds {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&resp); err != nil {
			f.Fatal(err)
		}
		b := buf.Bytes()
		f.Add(b)
		f.Add(b[:len(b)/2])
		if len(b) > 8 {
			flipped := append([]byte{}, b...)
			flipped[len(flipped)/3] ^= 0x10
			f.Add(flipped)
		}
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var resp Response
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&resp); err != nil {
			return
		}
		// The decoded error path must behave: Err() never panics and
		// DecodeError(EncodeError(e)) keeps the code stable.
		if err := resp.Err(); err != nil {
			code, _ := EncodeError(err)
			if code == CodeNone {
				t.Fatalf("non-nil decoded error re-encoded to no code: %v", err)
			}
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&resp); err != nil {
			t.Fatalf("decoded response failed to re-encode: %v", err)
		}
		var again Response
		if err := gob.NewDecoder(&buf).Decode(&again); err != nil {
			t.Fatalf("re-encoded response failed to decode: %v", err)
		}
	})
}
