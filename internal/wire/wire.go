// Package wire defines the message protocol spoken between the DOL engine
// and the Local Access Managers. Messages are gob-encoded over any
// net.Conn; the same structures back the in-process transport, so both
// paths exercise identical marshalling.
//
// The protocol mirrors the operations the paper's evaluation plans need
// from a LAM: open a session on a database, execute local SQL, drive the
// 2PC interface (prepare/commit/rollback), inspect the session state, and
// describe schemas for IMPORT.
package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"

	"msql/internal/admit"
	"msql/internal/ldbms"
	"msql/internal/obs"
	"msql/internal/relstore"
	"msql/internal/sqlval"
)

// ReqKind identifies a request operation.
type ReqKind uint8

// Request kinds.
const (
	ReqHello ReqKind = iota
	ReqProfile
	ReqOpen
	ReqExec
	ReqPrepare
	ReqCommit
	ReqRollback
	ReqState
	ReqCloseSession
	ReqDescribe
	ReqListTables
	ReqListViews
	// ReqAttach re-binds a prepared session orphaned by a lost connection
	// (an in-doubt participant) to the requesting connection, so a
	// recovering coordinator can query its state and drive it to
	// commit/rollback. For sessions already resolved after detaching, the
	// response carries the recorded terminal state instead of binding.
	ReqAttach
	// ReqForget is the coordinator's end-of-multitransaction
	// acknowledgment for a once-prepared session: the coordinator has a
	// durable terminal outcome and will never ask about the session
	// again, so the participant may evict its tombstone and compact the
	// session out of its journal. Forgetting an unknown session is a
	// no-op, making the acknowledgment idempotent and safe to retry.
	ReqForget
	// ReqScript asks a coordinator server (msqld) to execute an MSQL
	// script in the requesting connection's session. Unlike the other
	// kinds — which a LAM serves — this one is served by the coordinator
	// tier: SQL carries the script source, Tenant the admission-control
	// identity, and the response's Script field the per-statement
	// outcomes. Sequential ReqScripts on one connection share session
	// state (scope, LETs, the open unit); independent connections run in
	// parallel.
	ReqScript
	// ReqInDoubt asks a LAM for its parked prepared sessions — the
	// in-doubt inventory awaiting a coordinator decision — together with
	// the multitransaction ids their prepare requests carried. A
	// recovering coordinator uses the listing to find sessions whose
	// votes never reached its own journal (the crash landed between the
	// participant's vote and the coordinator's prepared record) and
	// terminate them under presumed abort.
	ReqInDoubt
)

func (k ReqKind) String() string {
	names := [...]string{"hello", "profile", "open", "exec", "prepare", "commit",
		"rollback", "state", "close-session", "describe", "list-tables", "list-views",
		"attach", "forget", "script", "in-doubt"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("ReqKind(%d)", uint8(k))
}

// Request is one client message.
type Request struct {
	Kind      ReqKind
	SessionID int64
	Database  string // ReqOpen
	SQL       string // ReqExec
	Name      string // ReqDescribe: table or view name
	// TraceID correlates this request with a coordinator-side trace
	// (internal/obs): when nonempty the server records its own span for
	// the request under the same trace id, so client and server timing
	// lines up in /debug/traces. ParentSpan is the coordinator-side call
	// span the server-side span attaches under. Both are ignored by
	// servers predating the observability plane (gob drops unknown
	// fields), keeping the protocol compatible in both directions.
	TraceID    string
	ParentSpan uint64
	// MTID is the coordinator's multitransaction id, riding on
	// ReqPrepare so the participant's prepared-state journal can
	// correlate its session records with the coordinator's journal. Zero
	// when the coordinator runs unjournaled; ignored by servers
	// predating participant durability.
	MTID uint64
	// Tenant identifies the client for admission control and fair
	// queueing on ReqScript. Empty means the anonymous tenant. Ignored
	// by LAM servers (gob drops unknown fields).
	Tenant string
}

// Column mirrors relstore.Column across the wire.
type Column struct {
	Name  string
	Type  uint8
	Width int
}

// ToRelstore converts wire columns back.
func ToRelstoreColumns(cols []Column) []relstore.Column {
	out := make([]relstore.Column, len(cols))
	for i, c := range cols {
		out[i] = relstore.Column{Name: c.Name, Type: sqlval.Kind(c.Type), Width: c.Width}
	}
	return out
}

// FromRelstoreColumns converts storage columns to wire form.
func FromRelstoreColumns(cols []relstore.Column) []Column {
	out := make([]Column, len(cols))
	for i, c := range cols {
		out[i] = Column{Name: c.Name, Type: uint8(c.Type), Width: c.Width}
	}
	return out
}

// Result carries a query result across the wire. Plan is non-nil only
// for EXPLAIN statements; older peers drop the field silently (gob
// ignores unknown fields in both directions).
type Result struct {
	Columns      []Column
	Rows         [][]sqlval.Value
	RowsAffected int
	Plan         *obs.PlanNode
}

// Profile mirrors ldbms.Profile across the wire.
type Profile struct {
	Name              string
	MultiDatabase     bool
	TwoPC             bool
	AutoCommitClasses []uint8
}

// FromProfile converts a server profile to wire form.
func FromProfile(p ldbms.Profile) Profile {
	w := Profile{Name: p.Name, MultiDatabase: p.MultiDatabase, TwoPC: p.TwoPC}
	for c, on := range p.AutoCommitClasses {
		if on {
			w.AutoCommitClasses = append(w.AutoCommitClasses, uint8(c))
		}
	}
	return w
}

// ToProfile converts wire form back to a server profile.
func (w Profile) ToProfile() ldbms.Profile {
	p := ldbms.Profile{
		Name:              w.Name,
		MultiDatabase:     w.MultiDatabase,
		TwoPC:             w.TwoPC,
		AutoCommitClasses: make(map[ldbms.StmtClass]bool, len(w.AutoCommitClasses)),
	}
	for _, c := range w.AutoCommitClasses {
		p.AutoCommitClasses[ldbms.StmtClass(c)] = true
	}
	return p
}

// ErrNoSession reports that a server has no live session, parked
// in-doubt session, or outcome tombstone under the requested id. It is a
// definite answer, not a transport failure: under presumed abort a
// participant with no record of a session either never voted or was
// already acknowledged and allowed to forget, so the coordinator can
// terminate the protocol from its own journal instead of retrying.
var ErrNoSession = errors.New("wire: unknown session")

// Error codes preserved across the wire so errors.Is keeps working for
// the sentinels the coordinator's plans branch on.
const (
	CodeNone        = ""
	CodeNoTwoPC     = "no-2pc"
	CodeInjected    = "injected-fault"
	CodeLockTimeout = "lock-timeout"
	CodeState       = "session-state"
	CodeNoTable     = "no-table"
	CodeNoDatabase  = "no-database"
	CodeNoSession   = "no-session"
	CodeOverload    = "overload"
	CodeOther       = "error"
)

// EncodeError maps an error to a wire code plus message.
func EncodeError(err error) (code, msg string) {
	if err == nil {
		return CodeNone, ""
	}
	switch {
	case errors.Is(err, ldbms.ErrNoTwoPC):
		code = CodeNoTwoPC
	case errors.Is(err, ldbms.ErrInjected):
		code = CodeInjected
	case errors.Is(err, relstore.ErrLockTimeout):
		code = CodeLockTimeout
	case errors.Is(err, ldbms.ErrSessionState):
		code = CodeState
	case errors.Is(err, relstore.ErrNoTable):
		code = CodeNoTable
	case errors.Is(err, relstore.ErrNoDatabase):
		code = CodeNoDatabase
	case errors.Is(err, ErrNoSession):
		code = CodeNoSession
	case errors.Is(err, admit.ErrOverload):
		code = CodeOverload
	default:
		code = CodeOther
	}
	return code, err.Error()
}

// DecodeError reconstructs an error from a wire code and message, wrapping
// the matching sentinel when one exists.
func DecodeError(code, msg string) error {
	if code == CodeNone {
		return nil
	}
	var sentinel error
	switch code {
	case CodeNoTwoPC:
		sentinel = ldbms.ErrNoTwoPC
	case CodeInjected:
		sentinel = ldbms.ErrInjected
	case CodeLockTimeout:
		sentinel = relstore.ErrLockTimeout
	case CodeState:
		sentinel = ldbms.ErrSessionState
	case CodeNoTable:
		sentinel = relstore.ErrNoTable
	case CodeNoDatabase:
		sentinel = relstore.ErrNoDatabase
	case CodeNoSession:
		sentinel = ErrNoSession
	case CodeOverload:
		sentinel = admit.ErrOverload
	default:
		return errors.New(msg)
	}
	return fmt.Errorf("%w: remote: %s", sentinel, msg)
}

// Response is one server message.
type Response struct {
	ErrCode   string
	ErrMsg    string
	SessionID int64
	Result    *Result
	Columns   []Column
	Names     []string
	State     uint8
	Profile   Profile
	ServiceNm string
	// ServerNS is the server-side processing time of the request in
	// nanoseconds (0 when unmeasured), letting the client split each
	// call span into wire time vs. LAM work.
	ServerNS int64
	// Script carries the per-statement outcomes of a ReqScript. A
	// script-level failure (parse error, admission shed, timeout) is
	// reported through ErrCode/ErrMsg instead; Script then holds the
	// statements that did complete before the failure.
	Script []ScriptResult
	// InDoubt answers ReqInDoubt with the server's parked prepared
	// sessions.
	InDoubt []InDoubtSession
}

// InDoubtSession identifies one parked prepared session awaiting a
// coordinator decision, keyed by the session id a recovering
// coordinator re-attaches with and the multitransaction id its prepare
// carried (zero for unjournaled coordinators).
type InDoubtSession struct {
	SessionID int64
	MTID      uint64
}

// ScriptResult is the wire form of one statement's outcome inside a
// ReqScript reply — enough for a client to see what committed, what
// aborted, and what each query returned, without dragging the
// coordinator's full result type across the protocol.
type ScriptResult struct {
	// Kind echoes the coordinator's result kind (query, global update,
	// multitransaction, command) as a short string.
	Kind string
	// State is the terminal global state of a synced unit ("committed",
	// "aborted", ...); empty for plain commands.
	State string
	// Failed marks a statement that errored; Detail then carries the
	// message.
	Failed bool
	// Detail is a one-line human-readable summary (row counts, state
	// transitions, error text).
	Detail string
	// Rows and Columns carry query output for SELECT-like statements.
	Columns []string
	Rows    [][]string
}

// Err returns the decoded error of the response.
func (r *Response) Err() error { return DecodeError(r.ErrCode, r.ErrMsg) }

// BenignClose reports whether an error is the ordinary signature of a
// peer closing its connection — EOF at a message boundary, a reset or
// aborted socket, or a read on a locally closed listener/conn during
// shutdown. Server request loops see these constantly when clients
// disconnect or a shutdown races an in-flight read; they are part of
// normal connection lifecycle and must not surface as errors in logs or
// tests. A torn message (io.ErrUnexpectedEOF) is NOT benign: the peer
// died mid-frame, which matters to whoever was decoding it.
func BenignClose(err error) bool {
	if err == nil {
		return true
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return false
	}
	switch {
	case errors.Is(err, io.EOF),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.EPIPE):
		return true
	}
	return false
}

// Transient reports whether an error is a transport-level failure whose
// outcome at the server is unknown (timeout, severed or refused
// connection, torn gob stream). Transient errors may be retried on the
// control plane and mark in-flight transaction work as in-doubt. Errors
// the server answered with (wire Response errors) are definite and never
// transient; a caller-canceled context is deliberate and not transient
// either.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	switch {
	case errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, syscall.ETIMEDOUT):
		return true
	}
	return false
}
