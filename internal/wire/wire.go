// Package wire defines the message protocol spoken between the DOL engine
// and the Local Access Managers. Messages are gob-encoded over any
// net.Conn; the same structures back the in-process transport, so both
// paths exercise identical marshalling.
//
// The protocol mirrors the operations the paper's evaluation plans need
// from a LAM: open a session on a database, execute local SQL, drive the
// 2PC interface (prepare/commit/rollback), inspect the session state, and
// describe schemas for IMPORT.
package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"

	"msql/internal/ldbms"
	"msql/internal/relstore"
	"msql/internal/sqlval"
)

// ReqKind identifies a request operation.
type ReqKind uint8

// Request kinds.
const (
	ReqHello ReqKind = iota
	ReqProfile
	ReqOpen
	ReqExec
	ReqPrepare
	ReqCommit
	ReqRollback
	ReqState
	ReqCloseSession
	ReqDescribe
	ReqListTables
	ReqListViews
	// ReqAttach re-binds a prepared session orphaned by a lost connection
	// (an in-doubt participant) to the requesting connection, so a
	// recovering coordinator can query its state and drive it to
	// commit/rollback. For sessions already resolved after detaching, the
	// response carries the recorded terminal state instead of binding.
	ReqAttach
	// ReqForget is the coordinator's end-of-multitransaction
	// acknowledgment for a once-prepared session: the coordinator has a
	// durable terminal outcome and will never ask about the session
	// again, so the participant may evict its tombstone and compact the
	// session out of its journal. Forgetting an unknown session is a
	// no-op, making the acknowledgment idempotent and safe to retry.
	ReqForget
)

func (k ReqKind) String() string {
	names := [...]string{"hello", "profile", "open", "exec", "prepare", "commit",
		"rollback", "state", "close-session", "describe", "list-tables", "list-views",
		"attach", "forget"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("ReqKind(%d)", uint8(k))
}

// Request is one client message.
type Request struct {
	Kind      ReqKind
	SessionID int64
	Database  string // ReqOpen
	SQL       string // ReqExec
	Name      string // ReqDescribe: table or view name
	// TraceID correlates this request with a coordinator-side trace
	// (internal/obs): when nonempty the server records its own span for
	// the request under the same trace id, so client and server timing
	// lines up in /debug/traces. ParentSpan is the coordinator-side call
	// span the server-side span attaches under. Both are ignored by
	// servers predating the observability plane (gob drops unknown
	// fields), keeping the protocol compatible in both directions.
	TraceID    string
	ParentSpan uint64
	// MTID is the coordinator's multitransaction id, riding on
	// ReqPrepare so the participant's prepared-state journal can
	// correlate its session records with the coordinator's journal. Zero
	// when the coordinator runs unjournaled; ignored by servers
	// predating participant durability.
	MTID uint64
}

// Column mirrors relstore.Column across the wire.
type Column struct {
	Name  string
	Type  uint8
	Width int
}

// ToRelstore converts wire columns back.
func ToRelstoreColumns(cols []Column) []relstore.Column {
	out := make([]relstore.Column, len(cols))
	for i, c := range cols {
		out[i] = relstore.Column{Name: c.Name, Type: sqlval.Kind(c.Type), Width: c.Width}
	}
	return out
}

// FromRelstoreColumns converts storage columns to wire form.
func FromRelstoreColumns(cols []relstore.Column) []Column {
	out := make([]Column, len(cols))
	for i, c := range cols {
		out[i] = Column{Name: c.Name, Type: uint8(c.Type), Width: c.Width}
	}
	return out
}

// Result carries a query result across the wire.
type Result struct {
	Columns      []Column
	Rows         [][]sqlval.Value
	RowsAffected int
}

// Profile mirrors ldbms.Profile across the wire.
type Profile struct {
	Name              string
	MultiDatabase     bool
	TwoPC             bool
	AutoCommitClasses []uint8
}

// FromProfile converts a server profile to wire form.
func FromProfile(p ldbms.Profile) Profile {
	w := Profile{Name: p.Name, MultiDatabase: p.MultiDatabase, TwoPC: p.TwoPC}
	for c, on := range p.AutoCommitClasses {
		if on {
			w.AutoCommitClasses = append(w.AutoCommitClasses, uint8(c))
		}
	}
	return w
}

// ToProfile converts wire form back to a server profile.
func (w Profile) ToProfile() ldbms.Profile {
	p := ldbms.Profile{
		Name:              w.Name,
		MultiDatabase:     w.MultiDatabase,
		TwoPC:             w.TwoPC,
		AutoCommitClasses: make(map[ldbms.StmtClass]bool, len(w.AutoCommitClasses)),
	}
	for _, c := range w.AutoCommitClasses {
		p.AutoCommitClasses[ldbms.StmtClass(c)] = true
	}
	return p
}

// ErrNoSession reports that a server has no live session, parked
// in-doubt session, or outcome tombstone under the requested id. It is a
// definite answer, not a transport failure: under presumed abort a
// participant with no record of a session either never voted or was
// already acknowledged and allowed to forget, so the coordinator can
// terminate the protocol from its own journal instead of retrying.
var ErrNoSession = errors.New("wire: unknown session")

// Error codes preserved across the wire so errors.Is keeps working for
// the sentinels the coordinator's plans branch on.
const (
	CodeNone        = ""
	CodeNoTwoPC     = "no-2pc"
	CodeInjected    = "injected-fault"
	CodeLockTimeout = "lock-timeout"
	CodeState       = "session-state"
	CodeNoTable     = "no-table"
	CodeNoDatabase  = "no-database"
	CodeNoSession   = "no-session"
	CodeOther       = "error"
)

// EncodeError maps an error to a wire code plus message.
func EncodeError(err error) (code, msg string) {
	if err == nil {
		return CodeNone, ""
	}
	switch {
	case errors.Is(err, ldbms.ErrNoTwoPC):
		code = CodeNoTwoPC
	case errors.Is(err, ldbms.ErrInjected):
		code = CodeInjected
	case errors.Is(err, relstore.ErrLockTimeout):
		code = CodeLockTimeout
	case errors.Is(err, ldbms.ErrSessionState):
		code = CodeState
	case errors.Is(err, relstore.ErrNoTable):
		code = CodeNoTable
	case errors.Is(err, relstore.ErrNoDatabase):
		code = CodeNoDatabase
	case errors.Is(err, ErrNoSession):
		code = CodeNoSession
	default:
		code = CodeOther
	}
	return code, err.Error()
}

// DecodeError reconstructs an error from a wire code and message, wrapping
// the matching sentinel when one exists.
func DecodeError(code, msg string) error {
	if code == CodeNone {
		return nil
	}
	var sentinel error
	switch code {
	case CodeNoTwoPC:
		sentinel = ldbms.ErrNoTwoPC
	case CodeInjected:
		sentinel = ldbms.ErrInjected
	case CodeLockTimeout:
		sentinel = relstore.ErrLockTimeout
	case CodeState:
		sentinel = ldbms.ErrSessionState
	case CodeNoTable:
		sentinel = relstore.ErrNoTable
	case CodeNoDatabase:
		sentinel = relstore.ErrNoDatabase
	case CodeNoSession:
		sentinel = ErrNoSession
	default:
		return errors.New(msg)
	}
	return fmt.Errorf("%w: remote: %s", sentinel, msg)
}

// Response is one server message.
type Response struct {
	ErrCode   string
	ErrMsg    string
	SessionID int64
	Result    *Result
	Columns   []Column
	Names     []string
	State     uint8
	Profile   Profile
	ServiceNm string
	// ServerNS is the server-side processing time of the request in
	// nanoseconds (0 when unmeasured), letting the client split each
	// call span into wire time vs. LAM work.
	ServerNS int64
}

// Err returns the decoded error of the response.
func (r *Response) Err() error { return DecodeError(r.ErrCode, r.ErrMsg) }

// BenignClose reports whether an error is the ordinary signature of a
// peer closing its connection — EOF at a message boundary, a reset or
// aborted socket, or a read on a locally closed listener/conn during
// shutdown. Server request loops see these constantly when clients
// disconnect or a shutdown races an in-flight read; they are part of
// normal connection lifecycle and must not surface as errors in logs or
// tests. A torn message (io.ErrUnexpectedEOF) is NOT benign: the peer
// died mid-frame, which matters to whoever was decoding it.
func BenignClose(err error) bool {
	if err == nil {
		return true
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return false
	}
	switch {
	case errors.Is(err, io.EOF),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.EPIPE):
		return true
	}
	return false
}

// Transient reports whether an error is a transport-level failure whose
// outcome at the server is unknown (timeout, severed or refused
// connection, torn gob stream). Transient errors may be retried on the
// control plane and mark in-flight transaction work as in-doubt. Errors
// the server answered with (wire Response errors) are definite and never
// transient; a caller-canceled context is deliberate and not transient
// either.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	switch {
	case errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, syscall.ETIMEDOUT):
		return true
	}
	return false
}
