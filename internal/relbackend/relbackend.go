// Package relbackend adapts the relstore/sqlengine pair to the
// backend.Backend seam. It is the full-capability engine of the
// federation: slotted heap pages with a buffer pool underneath, strict
// 2PL with undo-based rollback, and a real prepared-to-commit state —
// the stand-in for the paper's Oracle/Ingres/Sybase products whose
// COMMITMODE NOCOMMIT profiles expose a user-controlled 2PC interface.
package relbackend

import (
	"time"

	"msql/internal/backend"
	"msql/internal/relstore"
	"msql/internal/sqlengine"
	"msql/internal/sqlparser"
)

// Backend wraps a relstore.Store (memory- or disk-backed).
type Backend struct {
	store *relstore.Store
}

// New adapts an existing store — typically relstore.NewStore() for
// memory or relstore.Open(Options{Dir: ...}) for disk persistence.
func New(store *relstore.Store) *Backend { return &Backend{store: store} }

// Store exposes the underlying relstore for bootstrap (snapshot
// load/save) and inspection. ldbms.Server.Store discovers it through
// this method.
func (b *Backend) Store() *relstore.Store { return b.store }

// CreateDatabase implements backend.Backend.
func (b *Backend) CreateDatabase(name string) error { return b.store.CreateDatabase(name) }

// DatabaseNames implements backend.Backend.
func (b *Backend) DatabaseNames() []string { return b.store.DatabaseNames() }

// HasDatabase implements backend.Backend.
func (b *Backend) HasDatabase(name string) bool {
	_, err := b.store.Database(name)
	return err == nil
}

// ListTables implements backend.Backend.
func (b *Backend) ListTables(db string) ([]string, error) {
	d, err := b.store.Database(db)
	if err != nil {
		return nil, err
	}
	return d.TableNames(), nil
}

// ListViews implements backend.Backend.
func (b *Backend) ListViews(db string) ([]string, error) {
	d, err := b.store.Database(db)
	if err != nil {
		return nil, err
	}
	return d.ViewNames(), nil
}

// Begin implements backend.Backend.
func (b *Backend) Begin() backend.Tx { return &Tx{tx: b.store.Begin()} }

// Durable reports whether the store writes through to a data directory.
func (b *Backend) Durable() bool { return b.store.Dir() != "" }

// Checkpoint implements backend.Backend.
func (b *Backend) Checkpoint() error {
	if !b.Durable() {
		return nil
	}
	return b.store.Checkpoint()
}

// Close implements backend.Backend.
func (b *Backend) Close() error {
	if !b.Durable() {
		return nil
	}
	return b.store.Close()
}

// Tx adapts relstore.Tx + sqlengine to backend.Tx.
type Tx struct {
	tx *relstore.Tx
}

// Exec implements backend.Tx by delegating to the full SQL engine.
func (t *Tx) Exec(db, sql string, stmt sqlparser.Statement) (*sqlengine.Result, error) {
	return sqlengine.Execute(t.tx, db, stmt)
}

// Describe implements backend.Tx.
func (t *Tx) Describe(db, name string) ([]relstore.Column, error) {
	return sqlengine.DescribeTable(t.tx, db, name)
}

// Prepare implements backend.Tx.
func (t *Tx) Prepare() error { return t.tx.Prepare() }

// Commit implements backend.Tx.
func (t *Tx) Commit() error { return t.tx.Commit() }

// Rollback implements backend.Tx.
func (t *Tx) Rollback() error { return t.tx.Rollback() }

// SetLockTimeout implements backend.Tx.
func (t *Tx) SetLockTimeout(d time.Duration) { t.tx.LockTimeout = d }
