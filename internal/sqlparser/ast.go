package sqlparser

import (
	"strings"

	"msql/internal/sqlval"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any parsed SQL expression.
type Expr interface{ expr() }

// ObjectName is a possibly qualified object name such as table,
// db.table, or the MSQL semantic-variable paths used by LET. Parts may
// contain the '%' wildcard when the name is an MSQL multiple identifier.
type ObjectName struct {
	Parts []string
}

// Name builds an ObjectName from parts.
func Name(parts ...string) ObjectName { return ObjectName{Parts: parts} }

// String renders the dotted form.
func (n ObjectName) String() string { return strings.Join(n.Parts, ".") }

// Last returns the final (least qualified) component, or "".
func (n ObjectName) Last() string {
	if len(n.Parts) == 0 {
		return ""
	}
	return n.Parts[len(n.Parts)-1]
}

// IsMultiple reports whether any component contains the MSQL '%' wildcard.
func (n ObjectName) IsMultiple() bool {
	for _, p := range n.Parts {
		if strings.Contains(p, "%") {
			return true
		}
	}
	return false
}

// ColumnDef describes one column in CREATE TABLE.
type ColumnDef struct {
	Name  string
	Type  sqlval.Kind
	Width int  // declared width for CHAR(n); 0 when unspecified
	Key   bool // part of the PRIMARY KEY (column-level or table-level)
}

// SelectItem is one projection in a SELECT list.
type SelectItem struct {
	Star      bool   // SELECT * or q.*
	Qualifier string // for q.*
	Expr      Expr   // nil when Star
	Alias     string // AS alias
}

// TableRef is one FROM-clause table with optional alias.
type TableRef struct {
	Name  ObjectName
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// UnionPart is one UNION [ALL] branch appended to a SELECT.
type UnionPart struct {
	All    bool
	Select *SelectStmt
}

// SelectStmt is a SELECT query. ORDER BY and LIMIT apply per branch; the
// union of branches is deduplicated unless every part is UNION ALL.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Unions   []UnionPart
}

// InsertStmt is INSERT INTO ... VALUES or INSERT INTO ... SELECT.
type InsertStmt struct {
	Table   ObjectName
	Columns []string
	Rows    [][]Expr    // literal rows, when Query is nil
	Query   *SelectStmt // INSERT ... SELECT
}

// Assign is one SET clause of an UPDATE.
type Assign struct {
	Column ColRef
	Expr   Expr
}

// UpdateStmt is UPDATE ... SET ... WHERE.
type UpdateStmt struct {
	Table   ObjectName
	Assigns []Assign
	Where   Expr
}

// DeleteStmt is DELETE FROM ... WHERE.
type DeleteStmt struct {
	Table ObjectName
	Where Expr
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Table   ObjectName
	Columns []ColumnDef
}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Table    ObjectName
	IfExists bool
}

// CreateDatabaseStmt is CREATE DATABASE.
type CreateDatabaseStmt struct {
	Database string
}

// DropDatabaseStmt is DROP DATABASE.
type DropDatabaseStmt struct {
	Database string
}

// CreateViewStmt is CREATE VIEW name AS select.
type CreateViewStmt struct {
	View  ObjectName
	Query *SelectStmt
}

// DropViewStmt is DROP VIEW.
type DropViewStmt struct {
	View ObjectName
}

// ExplainStmt is EXPLAIN [ANALYZE] [FORMAT JSON] <stmt>: render the local
// plan for Target, executing it first when Analyze is set so the plan
// carries runtime statistics.
type ExplainStmt struct {
	Analyze bool
	JSON    bool
	Target  Statement
}

// BeginStmt, CommitStmt and RollbackStmt are local transaction control.
type BeginStmt struct{}

// CommitStmt commits the current local transaction.
type CommitStmt struct{}

// RollbackStmt rolls back the current local transaction.
type RollbackStmt struct{}

func (*SelectStmt) stmt()         {}
func (*InsertStmt) stmt()         {}
func (*UpdateStmt) stmt()         {}
func (*DeleteStmt) stmt()         {}
func (*CreateTableStmt) stmt()    {}
func (*DropTableStmt) stmt()      {}
func (*CreateDatabaseStmt) stmt() {}
func (*DropDatabaseStmt) stmt()   {}
func (*CreateViewStmt) stmt()     {}
func (*DropViewStmt) stmt()       {}
func (*ExplainStmt) stmt()        {}
func (*BeginStmt) stmt()          {}
func (*CommitStmt) stmt()         {}
func (*RollbackStmt) stmt()       {}

// Literal is a constant value.
type Literal struct {
	Val sqlval.Value
}

// ColRef is a possibly qualified column reference. Optional marks the MSQL
// '~' prefix: the column contributes NULLs where a database lacks it.
// Components may contain '%' when the reference is a multiple identifier.
type ColRef struct {
	Parts    []string
	Optional bool
}

// Name returns the dotted spelling without the '~' marker.
func (c ColRef) Name() string { return strings.Join(c.Parts, ".") }

// Last returns the final path component.
func (c ColRef) Last() string {
	if len(c.Parts) == 0 {
		return ""
	}
	return c.Parts[len(c.Parts)-1]
}

// IsMultiple reports whether the reference contains a '%' wildcard.
func (c ColRef) IsMultiple() bool {
	for _, p := range c.Parts {
		if strings.Contains(p, "%") {
			return true
		}
	}
	return false
}

// BinaryExpr applies Op ("+", "-", "*", "/", "=", "<>", "<", "<=", ">",
// ">=", "AND", "OR") to L and R.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies Op ("-" or "NOT") to X.
type UnaryExpr struct {
	Op string
	X  Expr
}

// FuncCall is an aggregate or scalar function call.
type FuncCall struct {
	Name     string // upper-cased
	Star     bool   // COUNT(*)
	Distinct bool   // COUNT(DISTINCT x)
	Args     []Expr
}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct {
	Query *SelectStmt
}

// InExpr is X [NOT] IN (list) or X [NOT] IN (subquery).
type InExpr struct {
	X     Expr
	Not   bool
	List  []Expr
	Query *SelectStmt
}

// BetweenExpr is X [NOT] BETWEEN Lo AND Hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// IsNullExpr is X IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// LikeExpr is X [NOT] LIKE pattern.
type LikeExpr struct {
	X, Pattern Expr
	Not        bool
}

func (*Literal) expr()      {}
func (ColRef) expr()        {}
func (*BinaryExpr) expr()   {}
func (*UnaryExpr) expr()    {}
func (*FuncCall) expr()     {}
func (*SubqueryExpr) expr() {}
func (*InExpr) expr()       {}
func (*BetweenExpr) expr()  {}
func (*IsNullExpr) expr()   {}
func (*LikeExpr) expr()     {}

// WalkExprs calls fn for every expression in the statement, including
// nested subquery expressions. It is used by the semantic-variable
// expander and the decomposer.
func WalkExprs(s Statement, fn func(Expr)) {
	switch st := s.(type) {
	case *SelectStmt:
		walkSelect(st, fn)
	case *InsertStmt:
		for _, row := range st.Rows {
			for _, e := range row {
				walkExpr(e, fn)
			}
		}
		if st.Query != nil {
			walkSelect(st.Query, fn)
		}
	case *UpdateStmt:
		for _, a := range st.Assigns {
			walkExpr(a.Column, fn)
			walkExpr(a.Expr, fn)
		}
		walkExpr(st.Where, fn)
	case *DeleteStmt:
		walkExpr(st.Where, fn)
	case *CreateViewStmt:
		walkSelect(st.Query, fn)
	case *ExplainStmt:
		WalkExprs(st.Target, fn)
	}
}

func walkSelect(s *SelectStmt, fn func(Expr)) {
	if s == nil {
		return
	}
	for _, it := range s.Items {
		walkExpr(it.Expr, fn)
	}
	walkExpr(s.Where, fn)
	for _, g := range s.GroupBy {
		walkExpr(g, fn)
	}
	walkExpr(s.Having, fn)
	for _, o := range s.OrderBy {
		walkExpr(o.Expr, fn)
	}
	for _, u := range s.Unions {
		walkSelect(u.Select, fn)
	}
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *UnaryExpr:
		walkExpr(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *SubqueryExpr:
		walkSelect(x.Query, fn)
	case *InExpr:
		walkExpr(x.X, fn)
		for _, a := range x.List {
			walkExpr(a, fn)
		}
		walkSelect(x.Query, fn)
	case *BetweenExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *IsNullExpr:
		walkExpr(x.X, fn)
	case *LikeExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Pattern, fn)
	}
}
