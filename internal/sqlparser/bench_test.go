package sqlparser

import "testing"

const benchQuery = `SELECT DISTINCT f.source, COUNT(*) AS n, AVG(rate) r
FROM flights f, f838 s
WHERE f.rate > 100 AND s.seatstatus <> 'FREE' AND f.day IN ('mon', 'tue')
GROUP BY f.source HAVING COUNT(*) > 2
ORDER BY n DESC, f.source LIMIT 10`

func BenchmarkParseSelect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseStatement(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseUpdate(b *testing.B) {
	const q = "UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston' AND dest% = 'San Antonio'"
	for i := 0; i < b.N; i++ {
		if _, err := ParseStatement(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeparse(b *testing.B) {
	s, err := ParseStatement(benchQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Deparse(s) == "" {
			b.Fatal("empty deparse")
		}
	}
}

func BenchmarkTokenize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Tokenize(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRewrite(b *testing.B) {
	s, err := ParseStatement(benchQuery)
	if err != nil {
		b.Fatal(err)
	}
	rw := Rewriter{
		Table: func(n ObjectName) ObjectName { return n },
		Col:   func(c ColRef) Expr { return c },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if RewriteStatement(s, rw) == nil {
			b.Fatal("nil rewrite")
		}
	}
}
