package sqlparser

// Rewriter transforms a statement bottom-up, producing a deep copy. The
// multiple-identifier substitution phase uses it to turn an MSQL query
// into fully qualified elementary queries: Table maps table names, Col
// maps column references (and may replace an optional column that a
// database lacks with a NULL literal).
type Rewriter struct {
	// Table maps a FROM/target table name. Nil leaves names unchanged.
	Table func(ObjectName) ObjectName
	// Col maps a column reference to a replacement expression. Nil leaves
	// references unchanged. The returned expression is used as-is.
	Col func(ColRef) Expr
}

func (rw Rewriter) table(n ObjectName) ObjectName {
	cp := ObjectName{Parts: append([]string(nil), n.Parts...)}
	if rw.Table == nil {
		return cp
	}
	return rw.Table(cp)
}

func (rw Rewriter) col(c ColRef) Expr {
	cp := ColRef{Parts: append([]string(nil), c.Parts...), Optional: c.Optional}
	if rw.Col == nil {
		return cp
	}
	return rw.Col(cp)
}

// RewriteStatement returns a transformed deep copy of s.
func RewriteStatement(s Statement, rw Rewriter) Statement {
	switch st := s.(type) {
	case *SelectStmt:
		return rw.rewriteSelect(st)
	case *InsertStmt:
		out := &InsertStmt{
			Table:   rw.table(st.Table),
			Columns: rw.rewriteColumnNames(st.Columns),
		}
		for _, row := range st.Rows {
			nr := make([]Expr, len(row))
			for i, e := range row {
				nr[i] = rw.rewriteExpr(e)
			}
			out.Rows = append(out.Rows, nr)
		}
		if st.Query != nil {
			out.Query = rw.rewriteSelect(st.Query)
		}
		return out
	case *UpdateStmt:
		out := &UpdateStmt{Table: rw.table(st.Table)}
		for _, a := range st.Assigns {
			na := Assign{Expr: rw.rewriteExpr(a.Expr)}
			switch c := rw.col(a.Column).(type) {
			case ColRef:
				na.Column = c
			default:
				// A SET target must remain a column; keep the original
				// spelling when the rewriter degrades it.
				na.Column = ColRef{Parts: append([]string(nil), a.Column.Parts...)}
			}
			out.Assigns = append(out.Assigns, na)
		}
		out.Where = rw.rewriteExpr(st.Where)
		return out
	case *DeleteStmt:
		return &DeleteStmt{Table: rw.table(st.Table), Where: rw.rewriteExpr(st.Where)}
	case *CreateTableStmt:
		return &CreateTableStmt{Table: rw.table(st.Table), Columns: append([]ColumnDef(nil), st.Columns...)}
	case *DropTableStmt:
		return &DropTableStmt{Table: rw.table(st.Table), IfExists: st.IfExists}
	case *CreateViewStmt:
		return &CreateViewStmt{View: rw.table(st.View), Query: rw.rewriteSelect(st.Query)}
	case *DropViewStmt:
		return &DropViewStmt{View: rw.table(st.View)}
	case *CreateDatabaseStmt:
		cp := *st
		return &cp
	case *DropDatabaseStmt:
		cp := *st
		return &cp
	case *BeginStmt:
		return &BeginStmt{}
	case *CommitStmt:
		return &CommitStmt{}
	case *RollbackStmt:
		return &RollbackStmt{}
	default:
		return s
	}
}

// rewriteColumnNames maps bare INSERT column-name lists through the column
// rewriter.
func (rw Rewriter) rewriteColumnNames(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if c, ok := rw.col(ColRef{Parts: []string{n}}).(ColRef); ok {
			out[i] = c.Last()
		} else {
			out[i] = n
		}
	}
	return out
}

func (rw Rewriter) rewriteSelect(s *SelectStmt) *SelectStmt {
	if s == nil {
		return nil
	}
	out := &SelectStmt{Distinct: s.Distinct, Limit: s.Limit}
	for _, it := range s.Items {
		ni := SelectItem{Star: it.Star, Qualifier: it.Qualifier, Alias: it.Alias}
		if it.Expr != nil {
			ni.Expr = rw.rewriteExpr(it.Expr)
		}
		out.Items = append(out.Items, ni)
	}
	for _, f := range s.From {
		out.From = append(out.From, TableRef{Name: rw.table(f.Name), Alias: f.Alias})
	}
	out.Where = rw.rewriteExpr(s.Where)
	for _, g := range s.GroupBy {
		out.GroupBy = append(out.GroupBy, rw.rewriteExpr(g))
	}
	out.Having = rw.rewriteExpr(s.Having)
	for _, o := range s.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderItem{Expr: rw.rewriteExpr(o.Expr), Desc: o.Desc})
	}
	for _, u := range s.Unions {
		out.Unions = append(out.Unions, UnionPart{All: u.All, Select: rw.rewriteSelect(u.Select)})
	}
	return out
}

func (rw Rewriter) rewriteExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Literal:
		cp := *x
		return &cp
	case ColRef:
		return rw.col(x)
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, L: rw.rewriteExpr(x.L), R: rw.rewriteExpr(x.R)}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, X: rw.rewriteExpr(x.X)}
	case *FuncCall:
		out := &FuncCall{Name: x.Name, Star: x.Star, Distinct: x.Distinct}
		for _, a := range x.Args {
			out.Args = append(out.Args, rw.rewriteExpr(a))
		}
		return out
	case *SubqueryExpr:
		return &SubqueryExpr{Query: rw.rewriteSelect(x.Query)}
	case *InExpr:
		out := &InExpr{X: rw.rewriteExpr(x.X), Not: x.Not}
		for _, a := range x.List {
			out.List = append(out.List, rw.rewriteExpr(a))
		}
		if x.Query != nil {
			out.Query = rw.rewriteSelect(x.Query)
		}
		return out
	case *BetweenExpr:
		return &BetweenExpr{X: rw.rewriteExpr(x.X), Lo: rw.rewriteExpr(x.Lo), Hi: rw.rewriteExpr(x.Hi), Not: x.Not}
	case *IsNullExpr:
		return &IsNullExpr{X: rw.rewriteExpr(x.X), Not: x.Not}
	case *LikeExpr:
		return &LikeExpr{X: rw.rewriteExpr(x.X), Pattern: rw.rewriteExpr(x.Pattern), Not: x.Not}
	default:
		return e
	}
}

// RewriteSelect applies the rewriter to a SELECT, returning a deep copy.
func (rw Rewriter) RewriteSelect(s *SelectStmt) *SelectStmt { return rw.rewriteSelect(s) }

// RewriteExpr applies the rewriter to an expression, returning a deep
// copy.
func (rw Rewriter) RewriteExpr(e Expr) Expr { return rw.rewriteExpr(e) }

// CloneStatement returns a deep copy of s.
func CloneStatement(s Statement) Statement { return RewriteStatement(s, Rewriter{}) }
