// Package sqlparser implements the lexer, AST, recursive-descent parser and
// deparser for the SQL subset executed by the local engines, extended with
// the MSQL identifier forms the paper relies on: multiple identifiers
// containing the wildcard '%' (flight%, %code, rate%) and optional columns
// prefixed with '~' (~rate). The MSQL front end (internal/msqlparser)
// reuses this package's lexer and parser for embedded query bodies.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF    TokenKind = iota
	TokIdent            // identifier, possibly containing '%' wildcards
	TokNumber           // integer or float literal
	TokString           // single-quoted string literal
	TokPunct            // operators and punctuation
)

// Token is one lexical token. Text preserves the original spelling except
// that string literals are unquoted and unescaped.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the source
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// Lexer turns MSQL/SQL source text into tokens. Identifiers may contain
// '%' anywhere (leading, trailing, or interior) per the MSQL multiple
// identifier rules; keywords are recognized case-insensitively by the
// parser, not the lexer.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

func isIdentStart(r byte) bool {
	return r == '_' || r == '%' || 'a' <= r && r <= 'z' || 'A' <= r && r <= 'Z'
}

func isIdentPart(r byte) bool {
	return isIdentStart(r) || '0' <= r && r <= '9' || r == '$' || r == '#'
}

func isDigit(r byte) bool { return '0' <= r && r <= '9' }

// Next scans and returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Pos: start}, nil
	case isDigit(c) || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
				seenDot = true
				l.pos++
				continue
			}
			break
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == quote {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
					b.WriteByte(quote)
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
			}
			b.WriteByte(ch)
			l.pos++
		}
		return Token{}, fmt.Errorf("unterminated string literal at offset %d", start)
	default:
		// Multi-character operators first.
		for _, op := range [...]string{"<>", "!=", "<=", ">="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return Token{Kind: TokPunct, Text: op, Pos: start}, nil
			}
		}
		if strings.ContainsRune("(),.;=<>+-*/~{}", rune(c)) {
			l.pos++
			return Token{Kind: TokPunct, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("unexpected character %q at offset %d", c, start)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsSpace(rune(c)):
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

// Tokenize scans all of src, returning the token list without the trailing
// EOF token.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
