package sqlparser

import (
	"strings"
	"testing"
)

// countRefs walks a statement and counts column references.
func countRefs(t *testing.T, src string) int {
	t.Helper()
	s, err := ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	WalkExprs(s, func(e Expr) {
		if _, ok := e.(ColRef); ok {
			n++
		}
	})
	return n
}

func TestWalkExprsAcrossStatements(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"SELECT a, b FROM t WHERE c = 1", 3},
		{"INSERT INTO t (a) VALUES (b + c)", 2}, // column list is not an expression
		{"INSERT INTO t SELECT a FROM u WHERE b = 1", 2},
		{"UPDATE t SET a = b WHERE c = 1", 3},
		{"DELETE FROM t WHERE a = 1 AND b = 2", 2},
		{"CREATE VIEW v AS SELECT a FROM t WHERE b = 1", 2},
		{"SELECT a FROM t WHERE b IN (SELECT c FROM u WHERE d = 1)", 4},
		{"SELECT a FROM t WHERE b = (SELECT MAX(c) FROM u)", 3},
		{"SELECT a FROM t WHERE b BETWEEN c AND d", 4},
		{"SELECT a FROM t WHERE b IS NULL AND c LIKE d", 4},
		{"SELECT a FROM t GROUP BY b HAVING COUNT(c) > 1 ORDER BY d", 4},
		{"SELECT a FROM t UNION SELECT b FROM u WHERE c = 1", 3},
		{"SELECT -a FROM t WHERE NOT (b = 1)", 2},
	}
	for _, c := range cases {
		if got := countRefs(t, c.src); got != c.want {
			t.Errorf("WalkExprs(%q) saw %d refs, want %d", c.src, got, c.want)
		}
	}
}

func TestWalkExprsDDLIsEmpty(t *testing.T) {
	for _, src := range []string{
		"CREATE TABLE t (a INTEGER)",
		"DROP TABLE t",
		"CREATE DATABASE d",
		"BEGIN", "COMMIT", "ROLLBACK",
	} {
		if got := countRefs(t, src); got != 0 {
			t.Errorf("WalkExprs(%q) saw %d refs, want 0", src, got)
		}
	}
}

func TestCloneStatementIsDeep(t *testing.T) {
	src := "UPDATE t SET a = b + 1 WHERE c = (SELECT MAX(d) FROM u)"
	s1, err := ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	s2 := CloneStatement(s1)
	// Mutate the clone; the original must not change.
	s2.(*UpdateStmt).Table = Name("other")
	s2.(*UpdateStmt).Assigns[0].Column = ColRef{Parts: []string{"x"}}
	if Deparse(s1) != src {
		t.Fatalf("original mutated: %s", Deparse(s1))
	}
	if Deparse(s2) == src {
		t.Fatal("clone not mutated")
	}
}

func TestDeparseTypeNames(t *testing.T) {
	src := "CREATE TABLE t (a INTEGER, b FLOAT, c CHAR(8), d CHAR, e BOOLEAN)"
	s, err := ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Deparse(s)
	for _, want := range []string{"a INTEGER", "b FLOAT", "c CHAR(8)", "d CHAR", "e BOOLEAN"} {
		if !strings.Contains(out, want) {
			t.Errorf("deparse missing %q: %s", want, out)
		}
	}
}
