package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"msql/internal/sqlval"
)

// Parser is a recursive-descent parser over a token stream. Its primitive
// token operations are exported so that the MSQL front end can parse its
// own top-level constructs and delegate embedded query bodies back here.
type Parser struct {
	toks []Token
	pos  int
}

// NewParser tokenizes src and returns a parser positioned at the start.
func NewParser(src string) (*Parser, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks}, nil
}

// Peek returns the current token without consuming it.
func (p *Parser) Peek() Token {
	if p.pos >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos]
}

// PeekAt returns the token n positions ahead of the cursor.
func (p *Parser) PeekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos+n]
}

// Next consumes and returns the current token.
func (p *Parser) Next() Token {
	t := p.Peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

// AtEOF reports whether all tokens are consumed.
func (p *Parser) AtEOF() bool { return p.Peek().Kind == TokEOF }

// PeekKeyword reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *Parser) PeekKeyword(kw string) bool {
	t := p.Peek()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

// AcceptKeyword consumes the keyword if present and reports whether it did.
func (p *Parser) AcceptKeyword(kw string) bool {
	if p.PeekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

// ExpectKeyword consumes the keyword or fails.
func (p *Parser) ExpectKeyword(kw string) error {
	if !p.AcceptKeyword(kw) {
		return fmt.Errorf("expected %s, found %s", strings.ToUpper(kw), p.Peek())
	}
	return nil
}

// PeekPunct reports whether the current token is the punctuation s.
func (p *Parser) PeekPunct(s string) bool {
	t := p.Peek()
	return t.Kind == TokPunct && t.Text == s
}

// AcceptPunct consumes the punctuation if present.
func (p *Parser) AcceptPunct(s string) bool {
	if p.PeekPunct(s) {
		p.pos++
		return true
	}
	return false
}

// ExpectPunct consumes the punctuation or fails.
func (p *Parser) ExpectPunct(s string) error {
	if !p.AcceptPunct(s) {
		return fmt.Errorf("expected %q, found %s", s, p.Peek())
	}
	return nil
}

// Ident consumes an identifier token (that is not necessarily a keyword)
// and returns its text.
func (p *Parser) Ident() (string, error) {
	t := p.Peek()
	if t.Kind != TokIdent {
		return "", fmt.Errorf("expected identifier, found %s", t)
	}
	p.pos++
	return t.Text, nil
}

// SkipSemicolons consumes any run of ';' separators.
func (p *Parser) SkipSemicolons() {
	for p.AcceptPunct(";") {
	}
}

// reservedAfterTable are keywords that terminate clause lists, so a bare
// identifier position must not swallow them as aliases.
var reservedAfterTable = map[string]bool{
	"WHERE": true, "GROUP": true, "HAVING": true, "ORDER": true, "LIMIT": true,
	"SET": true, "VALUES": true, "FROM": true, "AND": true, "OR": true,
	"ON": true, "UNION": true, "COMP": true, "VITAL": true, "INTO": true,
	"SELECT": true, "INSERT": true, "UPDATE": true, "DELETE": true, "USE": true,
	"LET": true, "BEGIN": true, "END": true, "COMMIT": true, "ROLLBACK": true,
	"EXPLAIN": true,
	"DESC":    true, "ASC": true, "AS": true, "NOT": true, "IN": true,
	"BETWEEN": true, "LIKE": true, "IS": true,
}

// ParseStatement parses one SQL statement. The trailing ';', if present,
// is consumed.
func ParseStatement(src string) (Statement, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	s, err := p.ParseStatement()
	if err != nil {
		return nil, err
	}
	p.SkipSemicolons()
	if !p.AtEOF() {
		return nil, fmt.Errorf("unexpected trailing input: %s", p.Peek())
	}
	return s, nil
}

// ParseScript parses a ';'-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	var out []Statement
	for {
		p.SkipSemicolons()
		if p.AtEOF() {
			return out, nil
		}
		s, err := p.ParseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

// ParseStatement parses one statement at the cursor, consuming an optional
// trailing ';'.
func (p *Parser) ParseStatement() (Statement, error) {
	t := p.Peek()
	if t.Kind != TokIdent {
		return nil, fmt.Errorf("expected statement, found %s", t)
	}
	var s Statement
	var err error
	switch strings.ToUpper(t.Text) {
	case "SELECT":
		s, err = p.ParseSelect()
	case "INSERT":
		s, err = p.parseInsert()
	case "UPDATE":
		s, err = p.parseUpdate()
	case "DELETE":
		s, err = p.parseDelete()
	case "CREATE":
		s, err = p.parseCreate()
	case "DROP":
		s, err = p.parseDrop()
	case "BEGIN":
		p.Next()
		p.AcceptKeyword("WORK")
		p.AcceptKeyword("TRANSACTION")
		s = &BeginStmt{}
	case "COMMIT":
		p.Next()
		p.AcceptKeyword("WORK")
		s = &CommitStmt{}
	case "ROLLBACK":
		p.Next()
		p.AcceptKeyword("WORK")
		s = &RollbackStmt{}
	case "EXPLAIN":
		s, err = p.parseExplain()
	default:
		return nil, fmt.Errorf("unsupported statement %q", t.Text)
	}
	if err != nil {
		return nil, err
	}
	p.AcceptPunct(";")
	return s, nil
}

// parseExplain parses EXPLAIN [ANALYZE] [FORMAT JSON] <stmt>.
func (p *Parser) parseExplain() (*ExplainStmt, error) {
	if err := p.ExpectKeyword("EXPLAIN"); err != nil {
		return nil, err
	}
	e := &ExplainStmt{}
	e.Analyze = p.AcceptKeyword("ANALYZE")
	if p.AcceptKeyword("FORMAT") {
		if err := p.ExpectKeyword("JSON"); err != nil {
			return nil, err
		}
		e.JSON = true
	}
	target, err := p.ParseStatement()
	if err != nil {
		return nil, err
	}
	if _, nested := target.(*ExplainStmt); nested {
		return nil, fmt.Errorf("EXPLAIN of EXPLAIN is not supported")
	}
	e.Target = target
	return e, nil
}

// ParseSelect parses a SELECT statement at the cursor.
func (p *Parser) ParseSelect() (*SelectStmt, error) {
	if err := p.ExpectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	if p.AcceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.AcceptKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.AcceptPunct(",") {
			break
		}
	}
	if p.AcceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, ref)
			if !p.AcceptPunct(",") {
				break
			}
		}
	}
	if p.AcceptKeyword("WHERE") {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.AcceptKeyword("GROUP") {
		if err := p.ExpectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.AcceptPunct(",") {
				break
			}
		}
	}
	if p.AcceptKeyword("HAVING") {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.AcceptKeyword("ORDER") {
		if err := p.ExpectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.AcceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.AcceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.AcceptPunct(",") {
				break
			}
		}
	}
	if p.AcceptKeyword("LIMIT") {
		t := p.Next()
		if t.Kind != TokNumber {
			return nil, fmt.Errorf("expected LIMIT count, found %s", t)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, fmt.Errorf("bad LIMIT count %q", t.Text)
		}
		sel.Limit = n
	}
	for p.AcceptKeyword("UNION") {
		all := p.AcceptKeyword("ALL")
		part, err := p.ParseSelect()
		if err != nil {
			return nil, err
		}
		// Flatten: nested unions hang off the outermost select.
		sel.Unions = append(sel.Unions, UnionPart{All: all, Select: part})
		sel.Unions = append(sel.Unions, part.Unions...)
		part.Unions = nil
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.AcceptPunct("*") {
		return SelectItem{Star: true}, nil
	}
	// q.* form
	if p.Peek().Kind == TokIdent && p.PeekAt(1).Kind == TokPunct && p.PeekAt(1).Text == "." &&
		p.PeekAt(2).Kind == TokPunct && p.PeekAt(2).Text == "*" {
		q := p.Next().Text
		p.Next()
		p.Next()
		return SelectItem{Star: true, Qualifier: q}, nil
	}
	e, err := p.ParseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.AcceptKeyword("AS") {
		a, err := p.Ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if t := p.Peek(); t.Kind == TokIdent && !reservedAfterTable[strings.ToUpper(t.Text)] {
		item.Alias = p.Next().Text
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	name, err := p.ParseObjectName()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.AcceptKeyword("AS") {
		a, err := p.Ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a
	} else if t := p.Peek(); t.Kind == TokIdent && !reservedAfterTable[strings.ToUpper(t.Text)] {
		ref.Alias = p.Next().Text
	}
	return ref, nil
}

// ParseObjectName parses a dotted identifier path.
func (p *Parser) ParseObjectName() (ObjectName, error) {
	var parts []string
	id, err := p.Ident()
	if err != nil {
		return ObjectName{}, err
	}
	parts = append(parts, id)
	for p.PeekPunct(".") && p.PeekAt(1).Kind == TokIdent {
		p.Next()
		parts = append(parts, p.Next().Text)
	}
	return ObjectName{Parts: parts}, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.ExpectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.ExpectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ParseObjectName()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name}
	if p.AcceptPunct("(") {
		for {
			c, err := p.Ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.AcceptPunct(",") {
				break
			}
		}
		if err := p.ExpectPunct(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.AcceptKeyword("VALUES"):
		for {
			if err := p.ExpectPunct("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.ParseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.AcceptPunct(",") {
					break
				}
			}
			if err := p.ExpectPunct(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.AcceptPunct(",") {
				break
			}
		}
	case p.PeekKeyword("SELECT"):
		q, err := p.ParseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = q
	default:
		return nil, fmt.Errorf("expected VALUES or SELECT in INSERT, found %s", p.Peek())
	}
	return ins, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	if err := p.ExpectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.ParseObjectName()
	if err != nil {
		return nil, err
	}
	upd := &UpdateStmt{Table: name}
	if err := p.ExpectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		if err := p.ExpectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		upd.Assigns = append(upd.Assigns, Assign{Column: col, Expr: e})
		if !p.AcceptPunct(",") {
			break
		}
	}
	if p.AcceptKeyword("WHERE") {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = e
	}
	return upd, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	if err := p.ExpectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.ExpectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ParseObjectName()
	if err != nil {
		return nil, err
	}
	del := &DeleteStmt{Table: name}
	if p.AcceptKeyword("WHERE") {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.ExpectKeyword("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.AcceptKeyword("DATABASE"):
		db, err := p.Ident()
		if err != nil {
			return nil, err
		}
		return &CreateDatabaseStmt{Database: db}, nil
	case p.AcceptKeyword("TABLE"):
		name, err := p.ParseObjectName()
		if err != nil {
			return nil, err
		}
		ct := &CreateTableStmt{Table: name}
		if err := p.ExpectPunct("("); err != nil {
			return nil, err
		}
		for {
			// Table-level PRIMARY KEY (a, b) marks the named columns.
			if p.AcceptKeyword("PRIMARY") {
				if err := p.ExpectKeyword("KEY"); err != nil {
					return nil, err
				}
				if err := p.ExpectPunct("("); err != nil {
					return nil, err
				}
				for {
					kc, err := p.Ident()
					if err != nil {
						return nil, err
					}
					found := false
					for i := range ct.Columns {
						if ct.Columns[i].Name == kc {
							ct.Columns[i].Key = true
							found = true
							break
						}
					}
					if !found {
						return nil, fmt.Errorf("PRIMARY KEY names unknown column %q", kc)
					}
					if !p.AcceptPunct(",") {
						break
					}
				}
				if err := p.ExpectPunct(")"); err != nil {
					return nil, err
				}
			} else {
				col, err := p.parseColumnDef()
				if err != nil {
					return nil, err
				}
				ct.Columns = append(ct.Columns, col)
			}
			if !p.AcceptPunct(",") {
				break
			}
		}
		if err := p.ExpectPunct(")"); err != nil {
			return nil, err
		}
		return ct, nil
	case p.AcceptKeyword("VIEW"):
		name, err := p.ParseObjectName()
		if err != nil {
			return nil, err
		}
		if err := p.ExpectKeyword("AS"); err != nil {
			return nil, err
		}
		q, err := p.ParseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{View: name, Query: q}, nil
	default:
		return nil, fmt.Errorf("expected DATABASE, TABLE or VIEW after CREATE, found %s", p.Peek())
	}
}

func (p *Parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.Ident()
	if err != nil {
		return ColumnDef{}, err
	}
	t := p.Peek()
	if t.Kind != TokIdent {
		return ColumnDef{}, fmt.Errorf("expected column type, found %s", t)
	}
	p.Next()
	def := ColumnDef{Name: name}
	switch strings.ToUpper(t.Text) {
	case "INT", "INTEGER", "SMALLINT", "BIGINT":
		def.Type = sqlval.KindInt
	case "FLOAT", "REAL", "DOUBLE", "NUMERIC", "DECIMAL":
		def.Type = sqlval.KindFloat
	case "CHAR", "VARCHAR", "TEXT", "STRING":
		def.Type = sqlval.KindString
	case "BOOL", "BOOLEAN":
		def.Type = sqlval.KindBool
	default:
		return ColumnDef{}, fmt.Errorf("unsupported column type %q", t.Text)
	}
	if p.AcceptPunct("(") {
		n := p.Next()
		if n.Kind != TokNumber {
			return ColumnDef{}, fmt.Errorf("expected width, found %s", n)
		}
		w, err := strconv.Atoi(n.Text)
		if err != nil {
			return ColumnDef{}, fmt.Errorf("bad width %q", n.Text)
		}
		def.Width = w
		if p.AcceptPunct(",") { // NUMERIC(p, s): ignore the scale
			if sc := p.Next(); sc.Kind != TokNumber {
				return ColumnDef{}, fmt.Errorf("expected scale, found %s", sc)
			}
		}
		if err := p.ExpectPunct(")"); err != nil {
			return ColumnDef{}, err
		}
	}
	if p.AcceptKeyword("PRIMARY") {
		if err := p.ExpectKeyword("KEY"); err != nil {
			return ColumnDef{}, err
		}
		def.Key = true
	}
	return def, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	if err := p.ExpectKeyword("DROP"); err != nil {
		return nil, err
	}
	switch {
	case p.AcceptKeyword("DATABASE"):
		db, err := p.Ident()
		if err != nil {
			return nil, err
		}
		return &DropDatabaseStmt{Database: db}, nil
	case p.AcceptKeyword("TABLE"):
		var ifExists bool
		if p.AcceptKeyword("IF") {
			if err := p.ExpectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			ifExists = true
		}
		name, err := p.ParseObjectName()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Table: name, IfExists: ifExists}, nil
	case p.AcceptKeyword("VIEW"):
		name, err := p.ParseObjectName()
		if err != nil {
			return nil, err
		}
		return &DropViewStmt{View: name}, nil
	default:
		return nil, fmt.Errorf("expected DATABASE, TABLE or VIEW after DROP, found %s", p.Peek())
	}
}

// ParseExpr parses an expression with standard SQL precedence:
// OR < AND < NOT < comparison/IN/LIKE/BETWEEN/IS < additive <
// multiplicative < unary < primary.
func (p *Parser) ParseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.AcceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.PeekKeyword("AND") {
		// BETWEEN lo AND hi is handled inside parseComparison; here AND is
		// only a boolean conjunction.
		p.Next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.AcceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Postfix predicates.
	for {
		not := false
		if p.PeekKeyword("NOT") {
			nxt := p.PeekAt(1)
			if nxt.Kind == TokIdent {
				switch strings.ToUpper(nxt.Text) {
				case "IN", "LIKE", "BETWEEN":
					p.Next()
					not = true
				}
			}
			if !not {
				break
			}
		}
		switch {
		case p.AcceptKeyword("IN"):
			return p.parseInTail(l, not)
		case p.AcceptKeyword("LIKE"):
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &LikeExpr{X: l, Pattern: pat, Not: not}
			continue
		case p.AcceptKeyword("BETWEEN"):
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.ExpectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: not}
			continue
		case p.AcceptKeyword("IS"):
			isNot := p.AcceptKeyword("NOT")
			if err := p.ExpectKeyword("NULL"); err != nil {
				return nil, err
			}
			l = &IsNullExpr{X: l, Not: isNot}
			continue
		}
		break
	}
	for _, op := range [...]string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.PeekPunct(op) {
			p.Next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			o := op
			if o == "!=" {
				o = "<>"
			}
			return &BinaryExpr{Op: o, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *Parser) parseInTail(l Expr, not bool) (Expr, error) {
	if err := p.ExpectPunct("("); err != nil {
		return nil, err
	}
	in := &InExpr{X: l, Not: not}
	if p.PeekKeyword("SELECT") {
		q, err := p.ParseSelect()
		if err != nil {
			return nil, err
		}
		in.Query = q
	} else {
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.AcceptPunct(",") {
				break
			}
		}
	}
	if err := p.ExpectPunct(")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.AcceptPunct("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "+", L: l, R: r}
		case p.AcceptPunct("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.AcceptPunct("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "*", L: l, R: r}
		case p.AcceptPunct("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.AcceptPunct("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	p.AcceptPunct("+")
	return p.parsePrimary()
}

// exprReserved are keywords that cannot begin an expression primary. The
// set is deliberately small: the paper's example schemas use column names
// such as "from", "to", "day" and "client", which remain usable in SET
// clauses (parsed via parseColRef directly) and as result columns.
var exprReserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true,
	"HAVING": true, "ORDER": true, "VALUES": true, "INSERT": true,
	"UPDATE": true, "DELETE": true, "CREATE": true, "DROP": true,
	"UNION": true, "LIMIT": true,
}

var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// scalar built-ins supported by the engine.
var scalarNames = map[string]bool{
	"UPPER": true, "LOWER": true, "LENGTH": true, "ABS": true, "ROUND": true,
	"SUBSTR": true, "COALESCE": true, "CONCAT": true,
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.Peek()
	switch t.Kind {
	case TokNumber:
		p.Next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("bad number %q", t.Text)
			}
			return &Literal{Val: sqlval.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, fmt.Errorf("bad number %q", t.Text)
			}
			return &Literal{Val: sqlval.Float(f)}, nil
		}
		return &Literal{Val: sqlval.Int(i)}, nil
	case TokString:
		p.Next()
		return &Literal{Val: sqlval.Str(t.Text)}, nil
	case TokPunct:
		switch t.Text {
		case "(":
			p.Next()
			if p.PeekKeyword("SELECT") {
				q, err := p.ParseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.ExpectPunct(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Query: q}, nil
			}
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.ExpectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "~":
			p.Next()
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			c.Optional = true
			return c, nil
		}
	case TokIdent:
		up := strings.ToUpper(t.Text)
		switch up {
		case "NULL":
			p.Next()
			return &Literal{Val: sqlval.Null()}, nil
		case "TRUE":
			p.Next()
			return &Literal{Val: sqlval.Bool(true)}, nil
		case "FALSE":
			p.Next()
			return &Literal{Val: sqlval.Bool(false)}, nil
		}
		if exprReserved[up] {
			return nil, fmt.Errorf("unexpected keyword %s in expression", up)
		}
		if (aggregateNames[up] || scalarNames[up]) && p.PeekAt(1).Kind == TokPunct && p.PeekAt(1).Text == "(" {
			p.Next()
			p.Next()
			fc := &FuncCall{Name: up}
			if p.AcceptPunct("*") {
				fc.Star = true
			} else {
				if p.AcceptKeyword("DISTINCT") {
					fc.Distinct = true
				}
				if !p.PeekPunct(")") {
					for {
						a, err := p.ParseExpr()
						if err != nil {
							return nil, err
						}
						fc.Args = append(fc.Args, a)
						if !p.AcceptPunct(",") {
							break
						}
					}
				}
			}
			if err := p.ExpectPunct(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		return p.parseColRef()
	}
	return nil, fmt.Errorf("unexpected token %s in expression", t)
}

func (p *Parser) parseColRef() (ColRef, error) {
	optional := p.AcceptPunct("~")
	id, err := p.Ident()
	if err != nil {
		return ColRef{}, err
	}
	parts := []string{id}
	for p.PeekPunct(".") && p.PeekAt(1).Kind == TokIdent {
		p.Next()
		parts = append(parts, p.Next().Text)
	}
	return ColRef{Parts: parts, Optional: optional}, nil
}
