package sqlparser

import (
	"strings"
	"testing"
	"testing/quick"

	"msql/internal/sqlval"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	s, err := ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return s
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("SELECT %code, type, ~rate FROM car WHERE status = 'available'")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "%code", ",", "type", ",", "~", "rate", "FROM", "car", "WHERE", "status", "=", "available"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Fatalf("tokens = %v, want %v", texts, want)
	}
}

func TestLexerMultipleIdentifierForms(t *testing.T) {
	toks, err := Tokenize("flight% rate% sour% %code fl%ght")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 5 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for _, tk := range toks {
		if tk.Kind != TokIdent {
			t.Errorf("token %q should be an identifier", tk.Text)
		}
	}
}

func TestLexerStringEscapes(t *testing.T) {
	toks, err := Tokenize("'O''Hare' 'San Antonio'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "O'Hare" || toks[1].Text != "San Antonio" {
		t.Fatalf("strings = %q, %q", toks[0].Text, toks[1].Text)
	}
}

func TestLexerUnterminatedString(t *testing.T) {
	if _, err := Tokenize("'oops"); err == nil {
		t.Fatal("want error for unterminated string")
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := Tokenize("SELECT -- line comment\n a /* block\ncomment */ FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexerNumbers(t *testing.T) {
	toks, err := Tokenize("1.1 42 0.5 7")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1.1", "42", "0.5", "7"}
	for i, w := range want {
		if toks[i].Kind != TokNumber || toks[i].Text != w {
			t.Errorf("token %d = %v, want number %q", i, toks[i], w)
		}
	}
}

func TestParsePaperMultipleSelect(t *testing.T) {
	// The Section 2 example body.
	s := mustParse(t, "SELECT %code, type, ~rate FROM car WHERE status = 'available'")
	sel := s.(*SelectStmt)
	if len(sel.Items) != 3 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	c0 := sel.Items[0].Expr.(ColRef)
	if c0.Name() != "%code" || !c0.IsMultiple() {
		t.Fatalf("item0 = %+v", c0)
	}
	c2 := sel.Items[2].Expr.(ColRef)
	if !c2.Optional || c2.Name() != "rate" {
		t.Fatalf("item2 = %+v", c2)
	}
	if sel.From[0].Name.String() != "car" {
		t.Fatalf("from = %v", sel.From)
	}
	be := sel.Where.(*BinaryExpr)
	if be.Op != "=" {
		t.Fatalf("where op = %s", be.Op)
	}
}

func TestParsePaperFareUpdate(t *testing.T) {
	s := mustParse(t, `UPDATE flight% SET rate% = rate% * 1.1
		WHERE sour% = 'Houston' AND dest% = 'San Antonio'`)
	u := s.(*UpdateStmt)
	if u.Table.String() != "flight%" || !u.Table.IsMultiple() {
		t.Fatalf("table = %v", u.Table)
	}
	if len(u.Assigns) != 1 || u.Assigns[0].Column.Name() != "rate%" {
		t.Fatalf("assigns = %+v", u.Assigns)
	}
	mult := u.Assigns[0].Expr.(*BinaryExpr)
	if mult.Op != "*" {
		t.Fatalf("set op = %s", mult.Op)
	}
	and := u.Where.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("where = %+v", and)
	}
}

func TestParseScalarSubquery(t *testing.T) {
	// The travel-agent reservation pattern.
	s := mustParse(t, `UPDATE fitab SET sstat = 'TAKEN', clname = 'wenders'
		WHERE snu = (SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE')`)
	u := s.(*UpdateStmt)
	if len(u.Assigns) != 2 {
		t.Fatalf("assigns = %d", len(u.Assigns))
	}
	eq := u.Where.(*BinaryExpr)
	sub, ok := eq.R.(*SubqueryExpr)
	if !ok {
		t.Fatalf("rhs = %T", eq.R)
	}
	agg := sub.Query.Items[0].Expr.(*FuncCall)
	if agg.Name != "MIN" {
		t.Fatalf("agg = %s", agg.Name)
	}
}

func TestParseSelectFull(t *testing.T) {
	s := mustParse(t, `SELECT DISTINCT f.source, COUNT(*) AS n, AVG(rate) r
		FROM flights f, f838 s
		WHERE f.rate > 100 AND s.seatstatus <> 'FREE'
		GROUP BY f.source HAVING COUNT(*) > 2
		ORDER BY n DESC, f.source LIMIT 10`)
	sel := s.(*SelectStmt)
	if !sel.Distinct || len(sel.Items) != 3 || len(sel.From) != 2 {
		t.Fatalf("parsed = %+v", sel)
	}
	if sel.Items[1].Alias != "n" || sel.Items[2].Alias != "r" {
		t.Fatalf("aliases = %q %q", sel.Items[1].Alias, sel.Items[2].Alias)
	}
	if sel.From[0].Alias != "f" || sel.From[1].Alias != "s" {
		t.Fatalf("from aliases = %+v", sel.From)
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatal("missing group/having")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("order = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Fatalf("limit = %d", sel.Limit)
	}
}

func TestParseStarForms(t *testing.T) {
	s := mustParse(t, "SELECT *, f.* FROM flights f")
	sel := s.(*SelectStmt)
	if !sel.Items[0].Star || sel.Items[0].Qualifier != "" {
		t.Fatalf("item0 = %+v", sel.Items[0])
	}
	if !sel.Items[1].Star || sel.Items[1].Qualifier != "f" {
		t.Fatalf("item1 = %+v", sel.Items[1])
	}
}

func TestParseInsertForms(t *testing.T) {
	s := mustParse(t, "INSERT INTO cars (code, cartype, rate) VALUES (1, 'suv', 49.5), (2, 'compact', NULL)")
	ins := s.(*InsertStmt)
	if len(ins.Columns) != 3 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	if lit := ins.Rows[1][2].(*Literal); !lit.Val.IsNull() {
		t.Fatal("expected NULL literal")
	}

	s = mustParse(t, "INSERT INTO t2 SELECT a, b FROM t1 WHERE a > 0")
	ins = s.(*InsertStmt)
	if ins.Query == nil {
		t.Fatal("expected INSERT...SELECT")
	}
}

func TestParseDelete(t *testing.T) {
	s := mustParse(t, "DELETE FROM cars WHERE carst = 'RETIRED'")
	del := s.(*DeleteStmt)
	if del.Table.String() != "cars" || del.Where == nil {
		t.Fatalf("delete = %+v", del)
	}
	s = mustParse(t, "DELETE FROM cars")
	if s.(*DeleteStmt).Where != nil {
		t.Fatal("expected nil where")
	}
}

func TestParseDDL(t *testing.T) {
	s := mustParse(t, "CREATE TABLE flights (flnu INTEGER, source CHAR(20), rate FLOAT, ok BOOLEAN)")
	ct := s.(*CreateTableStmt)
	if len(ct.Columns) != 4 {
		t.Fatalf("cols = %+v", ct.Columns)
	}
	if ct.Columns[1].Type != sqlval.KindString || ct.Columns[1].Width != 20 {
		t.Fatalf("col1 = %+v", ct.Columns[1])
	}
	if ct.Columns[3].Type != sqlval.KindBool {
		t.Fatalf("col3 = %+v", ct.Columns[3])
	}

	mustParse(t, "CREATE DATABASE avis")
	mustParse(t, "DROP DATABASE avis")
	mustParse(t, "DROP TABLE IF EXISTS flights")
	mustParse(t, "CREATE VIEW v AS SELECT a FROM t")
	mustParse(t, "DROP VIEW v")
	mustParse(t, "BEGIN")
	mustParse(t, "COMMIT WORK")
	mustParse(t, "ROLLBACK")
}

func TestParsePrimaryKey(t *testing.T) {
	// Column-level form.
	s := mustParse(t, "CREATE TABLE t (a INTEGER PRIMARY KEY, b CHAR(10))")
	ct := s.(*CreateTableStmt)
	if !ct.Columns[0].Key || ct.Columns[1].Key {
		t.Fatalf("column-level keys = %+v", ct.Columns)
	}

	// Table-level form, composite, declaration order independent.
	s = mustParse(t, "CREATE TABLE t (a INTEGER, b CHAR(5), c FLOAT, PRIMARY KEY (c, a))")
	ct = s.(*CreateTableStmt)
	if !ct.Columns[0].Key || ct.Columns[1].Key || !ct.Columns[2].Key {
		t.Fatalf("table-level keys = %+v", ct.Columns)
	}

	// Both forms deparse to the canonical table-level clause and
	// round-trip.
	for _, src := range []string{
		"CREATE TABLE t (a INTEGER PRIMARY KEY, b CHAR(10))",
		"CREATE TABLE t (a INTEGER, b CHAR(5), PRIMARY KEY (a, b))",
	} {
		out := Deparse(mustParse(t, src))
		again, err := ParseStatement(out)
		if err != nil {
			t.Fatalf("reparse %q: %v", out, err)
		}
		a, b := mustParse(t, src).(*CreateTableStmt), again.(*CreateTableStmt)
		for i := range a.Columns {
			if a.Columns[i].Key != b.Columns[i].Key {
				t.Fatalf("%q: key flags lost through deparse %q", src, out)
			}
		}
	}

	// Unknown column in the table-level clause is an error.
	if _, err := ParseStatement("CREATE TABLE t (a INTEGER, PRIMARY KEY (zz))"); err == nil {
		t.Fatal("PRIMARY KEY over unknown column parsed")
	}
}

func TestParseNumericWidthScale(t *testing.T) {
	s := mustParse(t, "CREATE TABLE t (x NUMERIC(10, 2))")
	ct := s.(*CreateTableStmt)
	if ct.Columns[0].Type != sqlval.KindFloat || ct.Columns[0].Width != 10 {
		t.Fatalf("col = %+v", ct.Columns[0])
	}
}

func TestParsePredicates(t *testing.T) {
	s := mustParse(t, `SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN (SELECT b FROM u)
		AND c BETWEEN 1 AND 10 AND d IS NOT NULL AND e LIKE 'H%' AND NOT (f = 1 OR g = 2)`)
	sel := s.(*SelectStmt)
	n := 0
	WalkExprs(sel, func(e Expr) {
		switch e.(type) {
		case *InExpr, *BetweenExpr, *IsNullExpr, *LikeExpr:
			n++
		}
	})
	if n != 5 {
		t.Fatalf("predicate count = %d, want 5", n)
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a + b * c - d FROM t")
	e := s.(*SelectStmt).Items[0].Expr
	// ((a + (b*c)) - d)
	sub := e.(*BinaryExpr)
	if sub.Op != "-" {
		t.Fatalf("top = %s", sub.Op)
	}
	add := sub.L.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("left = %s", add.Op)
	}
	mul := add.R.(*BinaryExpr)
	if mul.Op != "*" {
		t.Fatalf("inner = %s", mul.Op)
	}
}

func TestParseBooleanPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
	or := s.(*SelectStmt).Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top = %s", or.Op)
	}
	and := or.R.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("right = %s", and.Op)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEKT a FROM t",
		"SELECT FROM t",
		"INSERT INTO t",
		"UPDATE t SET",
		"CREATE TABLE t (a BLOB)",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"DELETE cars",
		"SELECT (a FROM t",
	}
	for _, src := range bad {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q) succeeded, want error", src)
		}
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("CREATE DATABASE d; SELECT a FROM t; ; UPDATE t SET a = 1;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
}

func TestDeparseRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT %code, type, ~rate FROM car WHERE status = 'available'",
		"UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston' AND dest% = 'San Antonio'",
		"SELECT DISTINCT a, COUNT(*) AS n FROM t, u WHERE t.x = u.y GROUP BY a HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 5",
		"INSERT INTO t (a, b) VALUES (1, 'x''y'), (NULL, 2.5)",
		"INSERT INTO t SELECT a FROM u WHERE a IN (1, 2)",
		"DELETE FROM t WHERE a BETWEEN 1 AND 2 OR b IS NULL",
		"CREATE TABLE t (a INTEGER, b CHAR(10), c FLOAT)",
		"CREATE VIEW v AS SELECT a FROM t",
		"SELECT a FROM t WHERE NOT (a = 1) AND b LIKE 'x%'",
		"SELECT a - (b + c) FROM t",
		"SELECT (a + b) * c FROM t",
		"UPDATE fitab SET sstat = 'TAKEN' WHERE snu = (SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE')",
	}
	for _, src := range srcs {
		s1 := mustParse(t, src)
		out1 := Deparse(s1)
		s2, err := ParseStatement(out1)
		if err != nil {
			t.Fatalf("reparse of %q -> %q failed: %v", src, out1, err)
		}
		out2 := Deparse(s2)
		if out1 != out2 {
			t.Errorf("deparse not stable:\n  src  %q\n  out1 %q\n  out2 %q", src, out1, out2)
		}
	}
}

func TestObjectNameHelpers(t *testing.T) {
	n := Name("avis", "cars")
	if n.String() != "avis.cars" || n.Last() != "cars" || n.IsMultiple() {
		t.Fatalf("name = %+v", n)
	}
	m := Name("flight%")
	if !m.IsMultiple() {
		t.Fatal("flight% must be multiple")
	}
	var empty ObjectName
	if empty.Last() != "" {
		t.Fatal("empty name Last() should be empty")
	}
}

// Property: deparse→parse→deparse is a fixpoint for generated simple
// SELECTs over random identifiers and integer literals.
func TestQuickDeparseFixpoint(t *testing.T) {
	ident := func(seed uint32) string {
		letters := "abcdefgh"
		n := 1 + int(seed%5)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(letters[int(seed>>(i*3))%len(letters)])
		}
		return b.String()
	}
	f := func(colSeed, tblSeed uint32, lit int32) bool {
		src := "SELECT " + ident(colSeed) + " FROM " + ident(tblSeed) +
			" WHERE " + ident(colSeed) + " = " + strings.TrimSpace(sqlval.Int(int64(lit)).String())
		s1, err := ParseStatement(src)
		if err != nil {
			return false
		}
		out1 := Deparse(s1)
		s2, err := ParseStatement(out1)
		if err != nil {
			return false
		}
		return Deparse(s2) == out1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
