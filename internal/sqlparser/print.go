package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"msql/internal/sqlval"
)

// Deparse renders a statement back to SQL text. The output reparses to an
// equivalent AST; the decomposer uses it to ship subqueries to LAMs.
func Deparse(s Statement) string {
	var b strings.Builder
	deparseStmt(&b, s)
	return b.String()
}

func deparseStmt(b *strings.Builder, s Statement) {
	switch st := s.(type) {
	case *SelectStmt:
		deparseSelect(b, st)
	case *InsertStmt:
		b.WriteString("INSERT INTO ")
		b.WriteString(st.Table.String())
		if len(st.Columns) > 0 {
			b.WriteString(" (")
			b.WriteString(strings.Join(st.Columns, ", "))
			b.WriteString(")")
		}
		if st.Query != nil {
			b.WriteString(" ")
			deparseSelect(b, st.Query)
			return
		}
		b.WriteString(" VALUES ")
		for i, row := range st.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("(")
			for j, e := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(DeparseExpr(e))
			}
			b.WriteString(")")
		}
	case *UpdateStmt:
		b.WriteString("UPDATE ")
		b.WriteString(st.Table.String())
		b.WriteString(" SET ")
		for i, a := range st.Assigns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(deparseColRef(a.Column))
			b.WriteString(" = ")
			b.WriteString(DeparseExpr(a.Expr))
		}
		if st.Where != nil {
			b.WriteString(" WHERE ")
			b.WriteString(DeparseExpr(st.Where))
		}
	case *DeleteStmt:
		b.WriteString("DELETE FROM ")
		b.WriteString(st.Table.String())
		if st.Where != nil {
			b.WriteString(" WHERE ")
			b.WriteString(DeparseExpr(st.Where))
		}
	case *CreateTableStmt:
		b.WriteString("CREATE TABLE ")
		b.WriteString(st.Table.String())
		b.WriteString(" (")
		var keys []string
		for i, c := range st.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Name)
			b.WriteString(" ")
			b.WriteString(typeName(c))
			if c.Key {
				keys = append(keys, c.Name)
			}
		}
		if len(keys) > 0 {
			b.WriteString(", PRIMARY KEY (")
			b.WriteString(strings.Join(keys, ", "))
			b.WriteString(")")
		}
		b.WriteString(")")
	case *DropTableStmt:
		b.WriteString("DROP TABLE ")
		if st.IfExists {
			b.WriteString("IF EXISTS ")
		}
		b.WriteString(st.Table.String())
	case *CreateDatabaseStmt:
		b.WriteString("CREATE DATABASE ")
		b.WriteString(st.Database)
	case *DropDatabaseStmt:
		b.WriteString("DROP DATABASE ")
		b.WriteString(st.Database)
	case *CreateViewStmt:
		b.WriteString("CREATE VIEW ")
		b.WriteString(st.View.String())
		b.WriteString(" AS ")
		deparseSelect(b, st.Query)
	case *DropViewStmt:
		b.WriteString("DROP VIEW ")
		b.WriteString(st.View.String())
	case *ExplainStmt:
		b.WriteString("EXPLAIN ")
		if st.Analyze {
			b.WriteString("ANALYZE ")
		}
		if st.JSON {
			b.WriteString("FORMAT JSON ")
		}
		deparseStmt(b, st.Target)
	case *BeginStmt:
		b.WriteString("BEGIN")
	case *CommitStmt:
		b.WriteString("COMMIT")
	case *RollbackStmt:
		b.WriteString("ROLLBACK")
	default:
		fmt.Fprintf(b, "/* unknown statement %T */", s)
	}
}

func typeName(c ColumnDef) string {
	switch c.Type {
	case sqlval.KindInt:
		return "INTEGER"
	case sqlval.KindFloat:
		return "FLOAT"
	case sqlval.KindString:
		if c.Width > 0 {
			return "CHAR(" + strconv.Itoa(c.Width) + ")"
		}
		return "CHAR"
	case sqlval.KindBool:
		return "BOOLEAN"
	default:
		return "CHAR"
	}
}

func deparseSelect(b *strings.Builder, s *SelectStmt) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.Qualifier != "":
			b.WriteString(it.Qualifier)
			b.WriteString(".*")
		case it.Star:
			b.WriteString("*")
		default:
			b.WriteString(DeparseExpr(it.Expr))
			if it.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Name.String())
			if f.Alias != "" {
				b.WriteString(" ")
				b.WriteString(f.Alias)
			}
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(DeparseExpr(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(DeparseExpr(g))
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(DeparseExpr(s.Having))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(DeparseExpr(o.Expr))
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(s.Limit))
	}
	for _, u := range s.Unions {
		b.WriteString(" UNION ")
		if u.All {
			b.WriteString("ALL ")
		}
		deparseSelect(b, u.Select)
	}
}

// DeparseExpr renders an expression back to SQL text.
func DeparseExpr(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Literal:
		return x.Val.SQL()
	case ColRef:
		return deparseColRef(x)
	case *BinaryExpr:
		l, r := DeparseExpr(x.L), DeparseExpr(x.R)
		if needsParens(x.L, x.Op) {
			l = "(" + l + ")"
		}
		if needsParens(x.R, x.Op) {
			r = "(" + r + ")"
		}
		return l + " " + x.Op + " " + r
	case *UnaryExpr:
		if x.Op == "NOT" {
			return "NOT (" + DeparseExpr(x.X) + ")"
		}
		return x.Op + DeparseExpr(x.X)
	case *FuncCall:
		if x.Star {
			return x.Name + "(*)"
		}
		var args []string
		for _, a := range x.Args {
			args = append(args, DeparseExpr(a))
		}
		d := ""
		if x.Distinct {
			d = "DISTINCT "
		}
		return x.Name + "(" + d + strings.Join(args, ", ") + ")"
	case *SubqueryExpr:
		var b strings.Builder
		deparseSelect(&b, x.Query)
		return "(" + b.String() + ")"
	case *InExpr:
		not := ""
		if x.Not {
			not = " NOT"
		}
		if x.Query != nil {
			var b strings.Builder
			deparseSelect(&b, x.Query)
			return DeparseExpr(x.X) + not + " IN (" + b.String() + ")"
		}
		var items []string
		for _, it := range x.List {
			items = append(items, DeparseExpr(it))
		}
		return DeparseExpr(x.X) + not + " IN (" + strings.Join(items, ", ") + ")"
	case *BetweenExpr:
		not := ""
		if x.Not {
			not = " NOT"
		}
		return DeparseExpr(x.X) + not + " BETWEEN " + DeparseExpr(x.Lo) + " AND " + DeparseExpr(x.Hi)
	case *IsNullExpr:
		if x.Not {
			return DeparseExpr(x.X) + " IS NOT NULL"
		}
		return DeparseExpr(x.X) + " IS NULL"
	case *LikeExpr:
		not := ""
		if x.Not {
			not = " NOT"
		}
		return DeparseExpr(x.X) + not + " LIKE " + DeparseExpr(x.Pattern)
	default:
		return fmt.Sprintf("/* unknown expr %T */", e)
	}
}

func deparseColRef(c ColRef) string {
	s := strings.Join(c.Parts, ".")
	if c.Optional {
		return "~" + s
	}
	return s
}

// precedence for parenthesization during deparse.
func prec(op string) int {
	switch op {
	case "OR":
		return 1
	case "AND":
		return 2
	case "=", "<>", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/":
		return 5
	default:
		return 6
	}
}

func needsParens(e Expr, parentOp string) bool {
	b, ok := e.(*BinaryExpr)
	if !ok {
		return false
	}
	return prec(b.Op) < prec(parentOp)
}
