package sqlengine

import (
	"testing"
)

func TestUnionDedupes(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental",
		"SELECT source FROM flights UNION SELECT destination FROM flights")
	// sources: Houston, Austin; destinations: San Antonio, Dallas.
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUnionAllKeepsDuplicates(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental",
		"SELECT source FROM flights UNION ALL SELECT source FROM flights")
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestUnionThreeBranches(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental",
		"SELECT flnu FROM flights WHERE flnu = 100 UNION SELECT flnu FROM flights WHERE flnu = 101 UNION SELECT flnu FROM flights WHERE flnu = 100")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUnionArityMismatch(t *testing.T) {
	s := paperStore(t)
	tx := s.Begin()
	defer tx.Rollback()
	_, err := ExecuteSQL(tx, "continental", "SELECT flnu FROM flights UNION SELECT flnu, rate FROM flights")
	if err == nil {
		t.Fatal("arity mismatch should error")
	}
}

func TestUnionWithBranchOrderAndLimit(t *testing.T) {
	s := paperStore(t)
	// Per-branch ORDER BY/LIMIT: first branch takes the 2 priciest.
	res := query(t, s, "continental",
		"SELECT flnu FROM flights ORDER BY rate DESC LIMIT 2 UNION ALL SELECT seatnu FROM f838 WHERE seatnu = 1")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUnionInsideInsertSelect(t *testing.T) {
	s := paperStore(t)
	exec(t, s, "continental", "CREATE TABLE all_places (p CHAR(20))")
	res := exec(t, s, "continental",
		"INSERT INTO all_places SELECT source FROM flights UNION SELECT destination FROM flights")
	if res.RowsAffected != 4 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
}

func TestUnionDeparseRoundTrip(t *testing.T) {
	src := "SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT c FROM v"
	s := mustParseStmt(t, src)
	out := deparse(s)
	s2 := mustParseStmt(t, out)
	if deparse(s2) != out {
		t.Fatalf("not stable: %q vs %q", out, deparse(s2))
	}
}
