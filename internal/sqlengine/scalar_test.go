package sqlengine

import (
	"testing"
)

func TestScalarFunctionEdgeCases(t *testing.T) {
	s := paperStore(t)
	// NULL propagation through scalar functions.
	res := query(t, s, "continental",
		"SELECT UPPER(clientname), LOWER(clientname), LENGTH(clientname), ABS(seatnu - 2) FROM f838 WHERE seatnu = 1")
	r := res.Rows[0]
	if !r[0].IsNull() || !r[1].IsNull() || !r[2].IsNull() {
		t.Fatalf("null propagation broken: %v", r)
	}
	if n, _ := r[3].AsInt(); n != 1 {
		t.Fatalf("abs = %v", r[3])
	}

	// ROUND single argument; SUBSTR two arguments; COALESCE all-null.
	res = query(t, s, "continental",
		"SELECT ROUND(rate / 3), SUBSTR(source, 4), COALESCE(clientname, clientname) FROM flights f, f838 s WHERE f.flnu = 100 AND s.seatnu = 1")
	r = res.Rows[0]
	if f, _ := r[0].AsFloat(); f != 33 {
		t.Fatalf("round = %v", r[0])
	}
	if r[1].S != "ston" {
		t.Fatalf("substr = %v", r[1])
	}
	if !r[2].IsNull() {
		t.Fatalf("coalesce = %v", r[2])
	}

	// SUBSTR out-of-range start; negative ABS of float.
	res = query(t, s, "continental",
		"SELECT SUBSTR(source, 99), ABS(0.0 - rate) FROM flights WHERE flnu = 100")
	if res.Rows[0][0].S != "" {
		t.Fatalf("substr oob = %q", res.Rows[0][0].S)
	}
	if f, _ := res.Rows[0][1].AsFloat(); f != 100 {
		t.Fatalf("abs float = %v", res.Rows[0][1])
	}
}

func TestScalarFunctionErrors(t *testing.T) {
	s := paperStore(t)
	tx := s.Begin()
	defer tx.Rollback()
	for _, q := range []string{
		"SELECT UPPER(source, day) FROM flights",            // arity
		"SELECT LENGTH() FROM flights",                      // arity
		"SELECT ABS(source) FROM flights",                   // type
		"SELECT ROUND(source) FROM flights",                 // type
		"SELECT SUM(rate) FROM flights WHERE SUM(rate) > 1", // aggregate in WHERE
	} {
		if _, err := ExecuteSQL(tx, "continental", q); err == nil {
			t.Errorf("%q should error", q)
		}
	}
}

func TestConcatAndBoolRendering(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental",
		"SELECT CONCAT('x', NULL, 42, 1.5), 1 = 1, 1 = 2 FROM flights WHERE flnu = 100")
	r := res.Rows[0]
	if r[0].S != "x421.5" {
		t.Fatalf("concat = %q", r[0].S)
	}
	if r[1].String() != "TRUE" || r[2].String() != "FALSE" {
		t.Fatalf("bools = %v %v", r[1], r[2])
	}
}
