package sqlengine

import (
	"fmt"
	"testing"

	"msql/internal/relstore"
)

func joinStore(t testing.TB) *relstore.Store {
	t.Helper()
	s := relstore.NewStore()
	if err := s.CreateDatabase("db"); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	for _, q := range []string{
		"CREATE TABLE l (id INTEGER, lv CHAR(4))",
		"CREATE TABLE r (id INTEGER, rv CHAR(4))",
		"CREATE TABLE m (id INTEGER, mv CHAR(4))",
		"INSERT INTO l VALUES (1, 'a'), (2, 'b'), (3, 'c'), (NULL, 'n')",
		"INSERT INTO r VALUES (1, 'x'), (3, 'y'), (3, 'z'), (NULL, 'w')",
		"INSERT INTO m VALUES (1, 'p'), (9, 'q')",
	} {
		if _, err := ExecuteSQL(tx, "db", q); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	return s
}

func TestHashJoinEquality(t *testing.T) {
	s := joinStore(t)
	res := query(t, s, "db", "SELECT l.lv, r.rv FROM l, r WHERE l.id = r.id ORDER BY rv")
	// Matches: (1,a,x), (3,c,y), (3,c,z). NULLs never join.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].S != "x" || res.Rows[2][1].S != "z" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestHashJoinNullsNeverMatch(t *testing.T) {
	s := joinStore(t)
	res := query(t, s, "db", "SELECT l.lv FROM l, r WHERE l.id = r.id AND l.lv = 'n'")
	if len(res.Rows) != 0 {
		t.Fatalf("NULL ids joined: %v", res.Rows)
	}
}

func TestHashJoinWithExpressionSide(t *testing.T) {
	s := joinStore(t)
	// r.id = l.id + 2 matches l.id=1 with r.id=3 (twice).
	res := query(t, s, "db", "SELECT l.lv, r.rv FROM l, r WHERE r.id = l.id + 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[0].S != "a" {
			t.Fatalf("rows = %v", r)
		}
	}
}

func TestHashJoinThreeWay(t *testing.T) {
	s := joinStore(t)
	res := query(t, s, "db",
		"SELECT l.lv, r.rv, m.mv FROM l, r, m WHERE l.id = r.id AND m.id = l.id")
	// Only id=1 appears in all three.
	if len(res.Rows) != 1 || res.Rows[0][2].S != "p" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoinResidualPredicateStillApplies(t *testing.T) {
	s := joinStore(t)
	// Equality drives the hash join; the inequality filters the result.
	res := query(t, s, "db", "SELECT r.rv FROM l, r WHERE l.id = r.id AND r.rv <> 'x'")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoinOrPredicateNotPushedIncorrectly(t *testing.T) {
	s := joinStore(t)
	// OR across sources is one conjunct; must evaluate with all bound.
	res := query(t, s, "db",
		"SELECT l.lv, r.rv FROM l, r WHERE l.id = 1 OR r.rv = 'y'")
	// l.id=1 pairs with all 4 r rows; r.rv='y' pairs with remaining 3 l
	// rows (l.id=1 already counted) -> 4 + 3 = 7.
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d: %v", len(res.Rows), res.Rows)
	}
}

func TestJoinAgreesWithNestedLoopSemantics(t *testing.T) {
	// Cross-check: the optimized join must produce exactly the rows that
	// brute-force row enumeration + full WHERE evaluation would.
	s := relstore.NewStore()
	if err := s.CreateDatabase("db"); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	ExecuteSQL(tx, "db", "CREATE TABLE a (x INTEGER)")
	ExecuteSQL(tx, "db", "CREATE TABLE b (y INTEGER)")
	for i := 0; i < 12; i++ {
		ExecuteSQL(tx, "db", fmt.Sprintf("INSERT INTO a VALUES (%d)", i%5))
		ExecuteSQL(tx, "db", fmt.Sprintf("INSERT INTO b VALUES (%d)", i%4))
	}
	tx.Commit()

	res := query(t, s, "db", "SELECT x, y FROM a, b WHERE x = y")
	expected := 0
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if i%5 == j%4 {
				expected++
			}
		}
	}
	if len(res.Rows) != expected {
		t.Fatalf("rows = %d, want %d", len(res.Rows), expected)
	}
	for _, r := range res.Rows {
		xi, _ := r[0].AsInt()
		yi, _ := r[1].AsInt()
		if xi != yi {
			t.Fatalf("bad row %v", r)
		}
	}
}

func TestJoinCorrelatedSubqueryStaysUnplanned(t *testing.T) {
	s := joinStore(t)
	// A correlated subquery in WHERE must evaluate with all sources
	// bound, never get pushed down.
	res := query(t, s, "db",
		"SELECT l.lv FROM l WHERE l.id = (SELECT MIN(r.id) FROM r WHERE r.id = l.id)")
	if len(res.Rows) != 2 { // ids 1 and 3
		t.Fatalf("rows = %v", res.Rows)
	}
}
