package sqlengine

import (
	"fmt"
	"sort"

	"msql/internal/relstore"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
)

// boundSource is one FROM-clause input. Base tables carry the storage-
// backed table and are scanned lazily through its heap; views (and all
// sources under LegacyMaterialize) are materialized into rows.
type boundSource struct {
	qualifier string // alias, or the table/view name
	cols      []relstore.Column
	tbl       *relstore.Table // base table scanned in place; nil for views
	rows      []relstore.Row  // materialized rows when tbl is nil
}

// env is the expression evaluation environment: the current row of every
// bound source, an optional parent for correlated subqueries, and
// aggregate results when evaluating grouped projections.
type env struct {
	tx      *relstore.Tx
	db      string
	sources []*boundSource
	current []relstore.Row // current row per source
	parent  *env
	aggs    map[*sqlparser.FuncCall]sqlval.Value
	stats   *execStats // per-level runtime counters; non-nil under ANALYZE
}

// execSelect runs a SELECT, including UNION branches. outer is the
// enclosing environment for correlated subqueries, nil at the top level.
func execSelect(tx *relstore.Tx, db string, sel *sqlparser.SelectStmt, outer *env) (*Result, error) {
	return execSelectEx(tx, db, sel, outer, nil)
}

// execSelectEx is execSelect with an optional explain context: when ec is
// non-nil the chosen plan is recorded under ec.node, and with ec.analyze
// unset the statement is planned but not executed.
func execSelectEx(tx *relstore.Tx, db string, sel *sqlparser.SelectStmt, outer *env, ec *explainCtx) (*Result, error) {
	if len(sel.Unions) == 0 {
		return execSingleSelect(tx, db, sel, outer, ec)
	}
	if ec != nil {
		ec.node.Op = "union"
	}
	base := *sel
	base.Unions = nil
	res, err := execSingleSelect(tx, db, &base, outer, ec.branch())
	if err != nil {
		return nil, err
	}
	dedupe := false
	for _, u := range sel.Unions {
		if !u.All {
			dedupe = true
		}
		part, err := execSelectEx(tx, db, u.Select, outer, ec.branch())
		if err != nil {
			return nil, err
		}
		if len(part.Columns) != len(res.Columns) {
			return nil, fmt.Errorf("sqlengine: UNION branches have %d and %d columns", len(res.Columns), len(part.Columns))
		}
		res.Rows = append(res.Rows, part.Rows...)
	}
	if dedupe {
		seen := map[string]bool{}
		kept := res.Rows[:0]
		for _, r := range res.Rows {
			key := ""
			for _, v := range r {
				key += v.GroupKey() + "\x00"
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			kept = append(kept, r)
		}
		res.Rows = kept
	}
	res.RowsAffected = len(res.Rows)
	return res, nil
}

// execSingleSelect runs one union-free SELECT branch.
func execSingleSelect(tx *relstore.Tx, db string, sel *sqlparser.SelectStmt, outer *env, ec *explainCtx) (*Result, error) {
	e := &env{tx: tx, db: db, parent: outer}
	for _, ref := range sel.From {
		src, err := bindSource(tx, db, ref)
		if err != nil {
			return nil, err
		}
		e.sources = append(e.sources, src)
	}
	e.current = make([]relstore.Row, len(e.sources))

	// The join planner pushes WHERE conjuncts down to the first loop
	// level where they are fully bound, turns equality conjuncts across
	// sources into hash-join probes, and upgrades levels whose primary
	// key is fully pinned to single-row index probes. buildNodes turns
	// the plan into an iterator per level and runLoops drives them.
	plan, err := planJoin(e, sel.Where)
	if err != nil {
		return nil, err
	}
	if ec != nil {
		ec.describe(e, sel, plan)
		if !ec.analyze {
			// Plain EXPLAIN: report the plan without executing. Output
			// columns are still computed so UNION shape checks hold.
			cols, _, err := expandItems(e, sel)
			if err != nil {
				cols = nil
			}
			return &Result{Columns: cols}, nil
		}
		e.stats = newExecStats(len(e.sources))
		defer ec.annotate(e)
	}

	// noFromRow runs the FROM-less case: one empty row, unless WHERE
	// filters it.
	noFromRow := func(emit func() (bool, error)) error {
		keep := true
		if sel.Where != nil {
			v, err := evalExpr(e, sel.Where)
			if err != nil {
				return err
			}
			keep = v.Truthy()
		}
		if keep {
			_, err := emit()
			return err
		}
		return nil
	}

	if len(sel.GroupBy) > 0 || hasAggregate(sel) {
		// Grouped queries need every input row before aggregation, so
		// they still collect the joined rows.
		var inputs [][]relstore.Row
		collect := func() (bool, error) {
			inputs = append(inputs, append([]relstore.Row(nil), e.current...))
			return true, nil
		}
		if len(e.sources) == 0 {
			if err := noFromRow(collect); err != nil {
				return nil, err
			}
		} else if err := runLoops(e, buildNodes(e, plan), collect); err != nil {
			return nil, err
		}
		return execGrouped(e, sel, inputs)
	}

	// Ungrouped: stream each joined row straight through the projection.
	// Without ORDER BY or DISTINCT a LIMIT can stop the scan early.
	cols, items, err := expandItems(e, sel)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cols}
	var outs []rowWithKeys
	earlyLimit := sel.Limit >= 0 && len(sel.OrderBy) == 0 && !sel.Distinct
	emit := func() (bool, error) {
		if earlyLimit && len(outs) >= sel.Limit {
			return false, nil
		}
		vals := make([]sqlval.Value, len(items))
		for i, it := range items {
			v, err := evalExpr(e, it)
			if err != nil {
				return false, err
			}
			vals[i] = v
		}
		keys, err := orderKeys(e, sel, cols, vals)
		if err != nil {
			return false, err
		}
		outs = append(outs, rowWithKeys{vals: vals, keys: keys})
		return !earlyLimit || len(outs) < sel.Limit, nil
	}
	if len(e.sources) == 0 {
		if err := noFromRow(emit); err != nil {
			return nil, err
		}
	} else if err := runLoops(e, buildNodes(e, plan), emit); err != nil {
		return nil, err
	}
	return finishResult(sel, res, outs)
}

// bindSource binds one FROM entry: a base table, a view, or a
// database-qualified name. Base tables are bound by reference and
// scanned lazily during execution; views run their definition and
// materialize the result.
func bindSource(tx *relstore.Tx, db string, ref sqlparser.TableRef) (*boundSource, error) {
	tdb, tname := splitName(db, ref.Name)
	qual := ref.Alias
	if qual == "" {
		qual = tname
	}
	d, err := tx.StoreDatabase(tdb)
	if err != nil {
		return nil, err
	}
	if _, err := d.Table(tname); err == nil {
		tbl, err := tx.TableForRead(tdb, tname)
		if err != nil {
			return nil, err
		}
		src := &boundSource{qualifier: qual, cols: append([]relstore.Column(nil), tbl.Columns...)}
		if LegacyMaterialize {
			tbl.ForEach(func(idx int, row relstore.Row) bool {
				src.rows = append(src.rows, row)
				return true
			})
			if err := tbl.Err(); err != nil {
				return nil, err
			}
		} else {
			src.tbl = tbl
		}
		return src, nil
	}
	if v, err := d.View(tname); err == nil {
		stmt, err := sqlparser.ParseStatement(v.Definition)
		if err != nil {
			return nil, fmt.Errorf("sqlengine: bad view definition %s.%s: %v", tdb, tname, err)
		}
		vsel, ok := stmt.(*sqlparser.SelectStmt)
		if !ok {
			return nil, fmt.Errorf("sqlengine: view %s.%s is not a SELECT", tdb, tname)
		}
		res, err := execSelect(tx, tdb, vsel, nil)
		if err != nil {
			return nil, err
		}
		src := &boundSource{qualifier: qual}
		for _, c := range res.Columns {
			src.cols = append(src.cols, relstore.Column{Name: c.Name, Type: c.Type})
		}
		for _, r := range res.Rows {
			src.rows = append(src.rows, relstore.Row(r))
		}
		return src, nil
	}
	return nil, fmt.Errorf("%w: %s.%s", relstore.ErrNoTable, tdb, tname)
}

type rowWithKeys struct {
	vals []sqlval.Value
	keys []sqlval.Value
}

// finishResult applies ORDER BY keys, DISTINCT and LIMIT.
func finishResult(sel *sqlparser.SelectStmt, res *Result, rows []rowWithKeys) (*Result, error) {
	if len(sel.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for k := range sel.OrderBy {
				c := sqlval.SortCompare(rows[i].keys[k], rows[j].keys[k])
				if c == 0 {
					continue
				}
				if sel.OrderBy[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if sel.Distinct {
			key := ""
			for _, v := range r.vals {
				key += v.GroupKey() + "\x00"
			}
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		res.Rows = append(res.Rows, r.vals)
		if sel.Limit >= 0 && len(res.Rows) >= sel.Limit {
			break
		}
	}
	if sel.Limit == 0 {
		res.Rows = nil
	}
	res.RowsAffected = len(res.Rows)
	// Infer types for columns whose type is still NULL from the data.
	for ci := range res.Columns {
		if res.Columns[ci].Type != sqlval.KindNull {
			continue
		}
		for _, r := range res.Rows {
			if !r[ci].IsNull() {
				res.Columns[ci].Type = r[ci].K
				break
			}
		}
	}
	return res, nil
}

// expandItems expands stars and computes output column descriptors.
func expandItems(e *env, sel *sqlparser.SelectStmt) ([]ResultCol, []sqlparser.Expr, error) {
	var cols []ResultCol
	var items []sqlparser.Expr
	for _, it := range sel.Items {
		switch {
		case it.Star && it.Qualifier == "":
			for _, src := range e.sources {
				for _, c := range src.cols {
					cols = append(cols, ResultCol{Name: c.Name, Type: c.Type})
					items = append(items, sqlparser.ColRef{Parts: []string{src.qualifier, c.Name}})
				}
			}
			if len(e.sources) == 0 {
				return nil, nil, fmt.Errorf("sqlengine: SELECT * without FROM")
			}
		case it.Star:
			src := e.findSource(it.Qualifier)
			if src == nil {
				return nil, nil, fmt.Errorf("sqlengine: unknown qualifier %q", it.Qualifier)
			}
			for _, c := range src.cols {
				cols = append(cols, ResultCol{Name: c.Name, Type: c.Type})
				items = append(items, sqlparser.ColRef{Parts: []string{src.qualifier, c.Name}})
			}
		default:
			name := it.Alias
			if name == "" {
				if cr, ok := it.Expr.(sqlparser.ColRef); ok {
					name = cr.Last()
				} else {
					name = sqlparser.DeparseExpr(it.Expr)
				}
			}
			typ := sqlval.KindNull
			if cr, ok := it.Expr.(sqlparser.ColRef); ok {
				if _, c, err := e.resolve(cr); err == nil {
					typ = c.Type
				}
			}
			cols = append(cols, ResultCol{Name: name, Type: typ})
			items = append(items, it.Expr)
		}
	}
	return cols, items, nil
}

// orderKeys evaluates ORDER BY expressions for one output row. An ORDER BY
// expression that names an output alias uses the projected value.
func orderKeys(e *env, sel *sqlparser.SelectStmt, cols []ResultCol, vals []sqlval.Value) ([]sqlval.Value, error) {
	if len(sel.OrderBy) == 0 {
		return nil, nil
	}
	keys := make([]sqlval.Value, len(sel.OrderBy))
	for i, ob := range sel.OrderBy {
		if cr, ok := ob.Expr.(sqlparser.ColRef); ok && len(cr.Parts) == 1 {
			found := false
			for ci, c := range cols {
				if c.Name == cr.Parts[0] {
					keys[i] = vals[ci]
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		// Positional ORDER BY n.
		if lit, ok := ob.Expr.(*sqlparser.Literal); ok {
			if n, isInt := lit.Val.AsInt(); isInt && lit.Val.K == sqlval.KindInt && n >= 1 && int(n) <= len(vals) {
				keys[i] = vals[n-1]
				continue
			}
		}
		v, err := evalExpr(e, ob.Expr)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

func (e *env) findSource(qual string) *boundSource {
	for _, s := range e.sources {
		if s.qualifier == qual {
			return s
		}
	}
	return nil
}

// resolve finds the source and column for a reference.
func (e *env) resolve(cr sqlparser.ColRef) (int, relstore.Column, error) {
	switch len(cr.Parts) {
	case 1:
		name := cr.Parts[0]
		foundSrc, foundCol := -1, -1
		for si, s := range e.sources {
			for ci, c := range s.cols {
				if c.Name == name {
					if foundSrc >= 0 {
						return 0, relstore.Column{}, fmt.Errorf("%w: %s", ErrAmbiguousColumn, name)
					}
					foundSrc, foundCol = si, ci
				}
			}
		}
		if foundSrc < 0 {
			return 0, relstore.Column{}, fmt.Errorf("%w: %s", ErrUnknownColumn, name)
		}
		return foundSrc*1000 + foundCol, e.sources[foundSrc].cols[foundCol], nil
	case 2:
		qual, name := cr.Parts[0], cr.Parts[1]
		for si, s := range e.sources {
			if s.qualifier != qual {
				continue
			}
			for ci, c := range s.cols {
				if c.Name == name {
					return si*1000 + ci, c, nil
				}
			}
			return 0, relstore.Column{}, fmt.Errorf("%w: %s.%s", ErrUnknownColumn, qual, name)
		}
		return 0, relstore.Column{}, fmt.Errorf("%w: %s.%s", ErrUnknownColumn, qual, name)
	default:
		// db.table.column: match on the trailing two components.
		return e.resolve(sqlparser.ColRef{Parts: cr.Parts[len(cr.Parts)-2:], Optional: cr.Optional})
	}
}

// lookup returns the current value of a reference, consulting parent
// environments for correlated subqueries.
func (e *env) lookup(cr sqlparser.ColRef) (sqlval.Value, error) {
	idx, _, err := e.resolve(cr)
	if err == nil {
		si, ci := idx/1000, idx%1000
		row := e.current[si]
		if row == nil {
			return sqlval.Null(), nil
		}
		return row[ci], nil
	}
	if e.parent != nil {
		if v, perr := e.parent.lookup(cr); perr == nil {
			return v, nil
		}
	}
	if cr.Optional {
		return sqlval.Null(), nil
	}
	return sqlval.Null(), err
}
