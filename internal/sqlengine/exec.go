package sqlengine

// Volcano-style executor: each FROM source becomes a levelNode — an
// iterator producing that source's candidate rows one at a time into
// e.current — and runLoops drives the nodes as nested loops, emitting a
// joined row whenever every level holds one. Base tables are pulled
// page-at-a-time through the storage layer's buffer pool instead of
// being materialized up front, so working-set size is bounded by the
// pool, not the table.

import (
	"time"

	"msql/internal/relstore"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
	"msql/internal/storage"
)

// LegacyMaterialize reverts bindSource to materializing base tables into
// row slices before execution, disabling index probes, as the engine did
// before the iterator executor. It exists for equivalence testing and
// ablation benchmarks; it is not synchronized.
var LegacyMaterialize = false

// levelNode produces candidate rows for one loop level. reset repositions
// it for the current bindings of earlier levels; next advances to the
// next row passing this level's filters, publishing it in e.current, and
// reports false when the level is exhausted (leaving e.current nil so
// correlated lookups see NULL).
type levelNode interface {
	reset() error
	next() (bool, error)
}

// runLoops drives the node chain as nested loops. emit is called with
// e.current fully populated; returning false stops the scan early (LIMIT).
func runLoops(e *env, nodes []levelNode, emit func() (bool, error)) error {
	if len(nodes) == 0 {
		return nil
	}
	i := 0
	if err := nodes[0].reset(); err != nil {
		return err
	}
	for i >= 0 {
		ok, err := nodes[i].next()
		if err != nil {
			return err
		}
		if !ok {
			i--
			continue
		}
		if i == len(nodes)-1 {
			cont, err := emit()
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
			continue
		}
		i++
		if err := nodes[i].reset(); err != nil {
			return err
		}
	}
	return nil
}

// buildNodes picks the access path for every level: index probe when the
// planner pinned all key columns, hash join for an equality across
// levels, sequential scan otherwise. Under EXPLAIN ANALYZE (e.stats set)
// each node is wrapped in a statNode that meters rows, loops and wall
// time, and its page traffic is attributed to the level's PageCounters.
func buildNodes(e *env, plan *joinPlan) []levelNode {
	nodes := make([]levelNode, len(e.sources))
	for i := range e.sources {
		filters := plan.level[i]
		var pc *storage.PageCounters
		if e.stats != nil {
			pc = &e.stats.nodes[i].pc
		}
		switch {
		case plan.probe[i] != nil:
			nodes[i] = &probeNode{
				e: e, si: i, probe: plan.probe[i], filters: filters, pc: pc,
				fallback: &scanNode{e: e, si: i, filters: filters, pc: pc},
			}
		case plan.hash[i] != nil:
			nodes[i] = &hashNode{e: e, si: i, h: plan.hash[i], filters: filters, pc: pc}
		default:
			nodes[i] = &scanNode{e: e, si: i, filters: filters, pc: pc}
		}
		if e.stats != nil {
			nodes[i] = &statNode{inner: nodes[i], st: &e.stats.nodes[i]}
		}
	}
	return nodes
}

// execStats holds the per-level runtime counters of one EXPLAIN ANALYZE
// execution. Page traffic is recorded per level rather than per table
// because concurrent statements share tables (and their buffer pool).
type execStats struct {
	nodes []nodeStats
}

type nodeStats struct {
	rows   int64
	loops  int64
	timeNS int64
	pc     storage.PageCounters
}

func newExecStats(levels int) *execStats {
	return &execStats{nodes: make([]nodeStats, levels)}
}

// statNode meters the node it wraps. It exists only under EXPLAIN
// ANALYZE, so the normal execution path pays no timing overhead.
type statNode struct {
	inner levelNode
	st    *nodeStats
}

func (n *statNode) reset() error {
	n.st.loops++
	t0 := time.Now()
	err := n.inner.reset()
	n.st.timeNS += time.Since(t0).Nanoseconds()
	return err
}

func (n *statNode) next() (bool, error) {
	t0 := time.Now()
	ok, err := n.inner.next()
	n.st.timeNS += time.Since(t0).Nanoseconds()
	if ok {
		n.st.rows++
	}
	return ok, err
}

// passFilters evaluates this level's pushed-down conjuncts against the
// current bindings.
func passFilters(e *env, filters []sqlparser.Expr) (bool, error) {
	for _, c := range filters {
		v, err := evalExpr(e, c)
		if err != nil {
			return false, err
		}
		if !v.Truthy() {
			return false, nil
		}
	}
	return true, nil
}

// scanNode is a sequential scan: over the table's heap via a pull cursor
// for base tables, or over materialized rows for views and legacy mode.
type scanNode struct {
	e       *env
	si      int
	filters []sqlparser.Expr
	pc      *storage.PageCounters
	it      *relstore.TableIter
	pos     int
}

func (n *scanNode) reset() error {
	if src := n.e.sources[n.si]; src.tbl != nil {
		if n.it == nil {
			n.it = src.tbl.IterCounted(n.pc)
		} else {
			n.it.Reset()
		}
	}
	n.pos = 0
	return nil
}

func (n *scanNode) next() (bool, error) {
	src := n.e.sources[n.si]
	for {
		var row relstore.Row
		if n.it != nil {
			_, r, ok := n.it.Next()
			if !ok {
				n.e.current[n.si] = nil
				return false, src.tbl.Err()
			}
			row = r
		} else {
			if n.pos >= len(src.rows) {
				n.e.current[n.si] = nil
				return false, nil
			}
			row = src.rows[n.pos]
			n.pos++
		}
		n.e.current[n.si] = row
		ok, err := passFilters(n.e, n.filters)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
}

// hashNode probes a hash table built over its source, bucketed by the
// join key, instead of scanning every row per outer binding.
type hashNode struct {
	e       *env
	si      int
	h       *hashJoin
	filters []sqlparser.Expr
	pc      *storage.PageCounters
	bucket  []relstore.Row
	pos     int
}

func (n *hashNode) reset() error {
	if err := n.h.build(n.e, n.si, n.pc); err != nil {
		return err
	}
	key, err := evalExpr(n.e, n.h.probeExpr)
	if err != nil {
		return err
	}
	n.bucket = nil
	n.pos = 0
	if !key.IsNull() { // NULL never joins
		n.bucket = n.h.table[key.GroupKey()]
	}
	return nil
}

func (n *hashNode) next() (bool, error) {
	for n.pos < len(n.bucket) {
		row := n.bucket[n.pos]
		n.pos++
		n.e.current[n.si] = row
		ok, err := passFilters(n.e, n.filters)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	n.e.current[n.si] = nil
	return false, nil
}

// probeNode answers a level with a single primary-key index lookup: the
// planner pinned every key column to an expression over earlier levels,
// so at most one row can match. The pinning conjuncts remain in filters,
// which keeps the probe a pure access path — it can only skip rows the
// filters would reject anyway — and lets a probe value that has no exact
// representation in the key's type fall back to a filtered scan.
type probeNode struct {
	e        *env
	si       int
	probe    *indexProbe
	filters  []sqlparser.Expr
	pc       *storage.PageCounters
	fallback *scanNode

	scanning bool // coercion failed; fallback scan took over for this reset
	row      relstore.Row
}

func (n *probeNode) reset() error {
	n.scanning = false
	n.row = nil
	src := n.e.sources[n.si]
	vals := make([]sqlval.Value, len(n.probe.exprs))
	for i, x := range n.probe.exprs {
		v, err := evalExpr(n.e, x)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil // NULL never equals a key: no match
		}
		cv, err := sqlval.CoerceTo(v, src.cols[n.probe.keyCols[i]].Type)
		if err != nil {
			n.scanning = true
			return n.fallback.reset()
		}
		vals[i] = cv
	}
	if idx, ok := src.tbl.LookupKey(vals); ok {
		n.row = src.tbl.RowAtCounted(idx, n.pc)
	}
	return src.tbl.Err()
}

func (n *probeNode) next() (bool, error) {
	if n.scanning {
		return n.fallback.next()
	}
	row := n.row
	if row == nil {
		n.e.current[n.si] = nil
		return false, nil
	}
	n.row = nil
	n.e.current[n.si] = row
	ok, err := passFilters(n.e, n.filters)
	if err != nil {
		return false, err
	}
	if !ok {
		n.e.current[n.si] = nil
		return false, nil
	}
	return true, nil
}
