package sqlengine

import (
	"fmt"

	"msql/internal/relstore"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
)

// execInsert handles INSERT ... VALUES and INSERT ... SELECT.
func execInsert(tx *relstore.Tx, db string, ins *sqlparser.InsertStmt) (*Result, error) {
	tdb, tname := splitName(db, ins.Table)
	tbl, err := tx.TableForWrite(tdb, tname)
	if err != nil {
		return nil, err
	}
	colIdx := make([]int, 0, len(tbl.Columns))
	if len(ins.Columns) == 0 {
		for i := range tbl.Columns {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range ins.Columns {
			i := tbl.ColumnIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("%w: %s in %s.%s", ErrUnknownColumn, name, tdb, tname)
			}
			colIdx = append(colIdx, i)
		}
	}

	buildRow := func(vals []sqlval.Value) (relstore.Row, error) {
		if len(vals) != len(colIdx) {
			return nil, fmt.Errorf("sqlengine: INSERT has %d values for %d columns", len(vals), len(colIdx))
		}
		row := make(relstore.Row, len(tbl.Columns))
		for i := range row {
			row[i] = sqlval.Null()
		}
		for vi, ti := range colIdx {
			v, err := sqlval.CoerceTo(vals[vi], tbl.Columns[ti].Type)
			if err != nil {
				return nil, fmt.Errorf("sqlengine: column %s: %v", tbl.Columns[ti].Name, err)
			}
			row[ti] = v
		}
		return row, nil
	}

	n := 0
	if ins.Query != nil {
		res, err := execSelect(tx, db, ins.Query, nil)
		if err != nil {
			return nil, err
		}
		for _, r := range res.Rows {
			row, err := buildRow(r)
			if err != nil {
				return nil, err
			}
			if err := tx.Insert(tdb, tname, row); err != nil {
				return nil, err
			}
			n++
		}
		return &Result{RowsAffected: n}, nil
	}

	e := &env{tx: tx, db: db}
	for _, exprRow := range ins.Rows {
		vals := make([]sqlval.Value, len(exprRow))
		for i, ex := range exprRow {
			v, err := evalExpr(e, ex)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		row, err := buildRow(vals)
		if err != nil {
			return nil, err
		}
		if err := tx.Insert(tdb, tname, row); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{RowsAffected: n}, nil
}

// execUpdate handles UPDATE ... SET ... WHERE. Assignments are evaluated
// against the pre-update row values, and all matching rows are collected
// before any is modified, per SQL semantics.
func execUpdate(tx *relstore.Tx, db string, upd *sqlparser.UpdateStmt) (*Result, error) {
	tdb, tname := splitName(db, upd.Table)
	tbl, err := tx.TableForWrite(tdb, tname)
	if err != nil {
		return nil, err
	}
	assignIdx := make([]int, len(upd.Assigns))
	for i, a := range upd.Assigns {
		ci := tbl.ColumnIndex(a.Column.Last())
		if ci < 0 {
			return nil, fmt.Errorf("%w: %s in %s.%s", ErrUnknownColumn, a.Column.Last(), tdb, tname)
		}
		assignIdx[i] = ci
	}

	e := &env{
		tx: tx, db: db,
		sources: []*boundSource{{qualifier: tname, cols: append([]relstore.Column(nil), tbl.Columns...)}},
	}
	e.current = make([]relstore.Row, 1)

	type pending struct {
		idx int
		row relstore.Row
	}
	var updates []pending
	var scanErr error
	tbl.ForEach(func(idx int, row relstore.Row) bool {
		e.current[0] = row
		if upd.Where != nil {
			v, err := evalExpr(e, upd.Where)
			if err != nil {
				scanErr = err
				return false
			}
			if !v.Truthy() {
				return true
			}
		}
		newRow := row.Clone()
		for ai, a := range upd.Assigns {
			v, err := evalExpr(e, a.Expr)
			if err != nil {
				scanErr = err
				return false
			}
			cv, err := sqlval.CoerceTo(v, tbl.Columns[assignIdx[ai]].Type)
			if err != nil {
				scanErr = fmt.Errorf("sqlengine: column %s: %v", tbl.Columns[assignIdx[ai]].Name, err)
				return false
			}
			newRow[assignIdx[ai]] = cv
		}
		updates = append(updates, pending{idx: idx, row: newRow})
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	for _, u := range updates {
		if err := tx.Update(tdb, tname, u.idx, u.row); err != nil {
			return nil, err
		}
	}
	return &Result{RowsAffected: len(updates)}, nil
}

// execDelete handles DELETE FROM ... WHERE.
func execDelete(tx *relstore.Tx, db string, del *sqlparser.DeleteStmt) (*Result, error) {
	tdb, tname := splitName(db, del.Table)
	tbl, err := tx.TableForWrite(tdb, tname)
	if err != nil {
		return nil, err
	}
	e := &env{
		tx: tx, db: db,
		sources: []*boundSource{{qualifier: del.Table.Last(), cols: append([]relstore.Column(nil), tbl.Columns...)}},
	}
	e.current = make([]relstore.Row, 1)

	var victims []int
	var scanErr error
	tbl.ForEach(func(idx int, row relstore.Row) bool {
		e.current[0] = row
		if del.Where != nil {
			v, err := evalExpr(e, del.Where)
			if err != nil {
				scanErr = err
				return false
			}
			if !v.Truthy() {
				return true
			}
		}
		victims = append(victims, idx)
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	for _, idx := range victims {
		if err := tx.Delete(tdb, tname, idx); err != nil {
			return nil, err
		}
	}
	return &Result{RowsAffected: len(victims)}, nil
}
