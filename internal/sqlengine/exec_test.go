package sqlengine

import (
	"reflect"
	"testing"

	"msql/internal/relstore"
	"msql/internal/sqlparser"
)

// keyedStore extends the paper's CONTINENTAL database with PRIMARY KEY
// tables so the planner has indexes to probe.
func keyedStore(t testing.TB) *relstore.Store {
	t.Helper()
	s := paperStore(t)
	tx := s.Begin()
	script := []string{
		`CREATE TABLE seats (snu INTEGER PRIMARY KEY, owner CHAR(20))`,
		`INSERT INTO seats VALUES (1, 'ng'), (2, 'smith'), (3, NULL), (4, 'jones'), (100, 'root')`,
		`CREATE TABLE legs (flnu INTEGER, seq INTEGER, stop CHAR(20), PRIMARY KEY (flnu, seq))`,
		`INSERT INTO legs VALUES
			(100, 1, 'Houston'), (100, 2, 'San Antonio'),
			(102, 1, 'Houston'), (102, 2, 'Dallas'), (103, 1, 'Austin')`,
		`CREATE VIEW cheap AS SELECT flnu, rate FROM flights WHERE rate < 110.0`,
	}
	for _, q := range script {
		if _, err := ExecuteSQL(tx, "continental", q); err != nil {
			t.Fatalf("setup %q: %v", q, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestIteratorMatchesLegacyExecutor runs a corpus of queries under both
// the iterator executor (index probes, lazy heap scans) and the legacy
// materializing executor, and requires identical results including row
// order. This is the equivalence guarantee for the storage rebuild.
func TestIteratorMatchesLegacyExecutor(t *testing.T) {
	queries := []string{
		// Scans and projections.
		`SELECT * FROM flights`,
		`SELECT flnu, rate * 2 FROM flights WHERE rate >= 80.0`,
		`SELECT 1 + 2, 'x'`,
		// Point lookups eligible for index probes, including coercions.
		`SELECT * FROM seats WHERE snu = 2`,
		`SELECT * FROM seats WHERE snu = '2'`,
		`SELECT * FROM seats WHERE snu = 2.0`,
		`SELECT * FROM seats WHERE snu = 2.5`,
		`SELECT * FROM seats WHERE snu = 'two'`,
		`SELECT * FROM seats WHERE snu = NULL`,
		`SELECT * FROM seats WHERE snu = 1 + 1`,
		`SELECT * FROM seats WHERE 2 = snu AND owner IS NOT NULL`,
		`SELECT * FROM seats WHERE snu = 3 AND owner = 'smith'`,
		// Composite key: full pin probes, partial pin scans.
		`SELECT * FROM legs WHERE flnu = 100 AND seq = 2`,
		`SELECT * FROM legs WHERE seq = 1 AND flnu = 102`,
		`SELECT * FROM legs WHERE flnu = 100`,
		`SELECT * FROM legs WHERE seq = 1`,
		// Joins: index-nested-loop, hash, cartesian, self-join.
		`SELECT f.flnu, s.owner FROM flights f, seats s WHERE s.snu = f.flnu - 99`,
		`SELECT f.flnu, l.stop FROM flights f, legs l WHERE l.flnu = f.flnu AND l.seq = 2`,
		`SELECT f.day, s.seatty FROM flights f, f838 s WHERE f.flnu = 100 AND s.seatstatus = 'FREE'`,
		`SELECT a.flnu, b.flnu FROM flights a, flights b WHERE a.day = b.day AND a.rate < b.rate`,
		`SELECT f.flnu, l.stop, s.owner FROM flights f, legs l, seats s
			WHERE l.flnu = f.flnu AND l.seq = 1 AND s.snu = l.seq`,
		// Aggregates, grouping, having.
		`SELECT COUNT(*), MIN(rate), MAX(rate) FROM flights`,
		`SELECT day, COUNT(*), AVG(rate) FROM flights GROUP BY day ORDER BY day`,
		`SELECT destination, COUNT(*) FROM flights GROUP BY destination HAVING COUNT(*) > 1`,
		// Subqueries, IN, correlation.
		`SELECT flnu FROM flights WHERE rate > (SELECT AVG(rate) FROM flights)`,
		`SELECT flnu FROM flights f WHERE rate >= (SELECT MAX(rate) FROM flights WHERE day = f.day)`,
		`SELECT owner FROM seats WHERE snu IN (SELECT seatnu FROM f838 WHERE seatstatus = 'FREE')`,
		`SELECT flnu FROM flights WHERE day IN ('mon', 'wed')`,
		// ORDER BY, DISTINCT, LIMIT in every combination that matters.
		`SELECT flnu FROM flights ORDER BY rate DESC`,
		`SELECT flnu FROM flights LIMIT 2`,
		`SELECT flnu FROM flights LIMIT 0`,
		`SELECT flnu FROM flights ORDER BY rate LIMIT 2`,
		`SELECT DISTINCT day FROM flights`,
		`SELECT DISTINCT source FROM flights LIMIT 1`,
		// Views and UNION.
		`SELECT * FROM cheap ORDER BY flnu`,
		`SELECT flnu FROM cheap WHERE rate < 90.0`,
		`SELECT source FROM flights UNION SELECT destination FROM flights`,
		`SELECT flnu FROM flights WHERE day = 'mon' UNION ALL SELECT snu FROM seats WHERE snu = 2`,
	}
	s := keyedStore(t)
	run := func(q string, legacy bool) (*Result, error) {
		old := LegacyMaterialize
		LegacyMaterialize = legacy
		defer func() { LegacyMaterialize = old }()
		tx := s.Begin()
		defer tx.Rollback()
		return ExecuteSQL(tx, "continental", q)
	}
	for _, q := range queries {
		iter, ierr := run(q, false)
		legacy, lerr := run(q, true)
		if (ierr == nil) != (lerr == nil) {
			t.Fatalf("%q: iterator err=%v, legacy err=%v", q, ierr, lerr)
		}
		if ierr != nil {
			continue
		}
		if !reflect.DeepEqual(iter.ColumnNames(), legacy.ColumnNames()) {
			t.Fatalf("%q: columns %v vs %v", q, iter.ColumnNames(), legacy.ColumnNames())
		}
		if len(iter.Rows) != len(legacy.Rows) {
			t.Fatalf("%q: %d rows vs %d rows", q, len(iter.Rows), len(legacy.Rows))
		}
		for i := range iter.Rows {
			if !reflect.DeepEqual(iter.Rows[i], legacy.Rows[i]) {
				t.Fatalf("%q row %d: %v vs %v", q, i, iter.Rows[i], legacy.Rows[i])
			}
		}
	}
}

// planFor binds the query's sources and plans its WHERE clause.
func planFor(t *testing.T, tx *relstore.Tx, q string) (*env, *joinPlan) {
	t.Helper()
	sel := mustParseStmt(t, q).(*sqlparser.SelectStmt)
	e := &env{tx: tx, db: "continental"}
	for _, ref := range sel.From {
		src, err := bindSource(tx, "continental", ref)
		if err != nil {
			t.Fatal(err)
		}
		e.sources = append(e.sources, src)
	}
	e.current = make([]relstore.Row, len(e.sources))
	plan, err := planJoin(e, sel.Where)
	if err != nil {
		t.Fatal(err)
	}
	return e, plan
}

func TestPlannerChoosesIndexProbe(t *testing.T) {
	s := keyedStore(t)
	tx := s.Begin()
	defer tx.Rollback()

	cases := []struct {
		q     string
		probe map[int]bool // level -> probe expected
	}{
		{`SELECT * FROM seats WHERE snu = 2`, map[int]bool{0: true}},
		{`SELECT * FROM seats WHERE 2 = snu`, map[int]bool{0: true}},
		{`SELECT * FROM seats WHERE snu = 2 AND owner = 'x'`, map[int]bool{0: true}},
		// Non-key predicate, inequality, or missing key column: no probe.
		{`SELECT * FROM seats WHERE owner = 'x'`, map[int]bool{0: false}},
		{`SELECT * FROM seats WHERE snu > 2`, map[int]bool{0: false}},
		{`SELECT * FROM legs WHERE flnu = 100`, map[int]bool{0: false}},
		// Composite key fully pinned, in either order.
		{`SELECT * FROM legs WHERE flnu = 100 AND seq = 2`, map[int]bool{0: true}},
		{`SELECT * FROM legs WHERE seq = 2 AND flnu = 100`, map[int]bool{0: true}},
		// The probe side must reference earlier levels only: the outer
		// flights scan cannot probe, the inner seats lookup can.
		{`SELECT * FROM flights f, seats s WHERE s.snu = f.flnu`, map[int]bool{0: false, 1: true}},
		// A key equality against a *later* level is a hash opportunity
		// for that level, not a probe for this one.
		{`SELECT * FROM seats s, flights f WHERE s.snu = f.flnu`, map[int]bool{0: false, 1: false}},
		// Self-reference pins nothing.
		{`SELECT * FROM seats WHERE snu = snu`, map[int]bool{0: false}},
		// Tables without a declared key never probe.
		{`SELECT * FROM flights WHERE flnu = 100`, map[int]bool{0: false}},
	}
	for _, c := range cases {
		_, plan := planFor(t, tx, c.q)
		for lvl, want := range c.probe {
			if got := plan.probe[lvl] != nil; got != want {
				t.Errorf("%q level %d: probe=%v, want %v", c.q, lvl, got, want)
			}
		}
	}
}

func TestPlannerProbeRetainsFilters(t *testing.T) {
	s := keyedStore(t)
	tx := s.Begin()
	defer tx.Rollback()
	_, plan := planFor(t, tx, `SELECT * FROM seats WHERE snu = 2 AND owner = 'smith'`)
	if plan.probe[0] == nil {
		t.Fatal("expected an index probe")
	}
	if len(plan.level[0]) != 2 {
		t.Fatalf("probe must keep both conjuncts as filters, got %d", len(plan.level[0]))
	}
}

func TestDisableJoinOptimizationDisablesProbes(t *testing.T) {
	s := keyedStore(t)
	tx := s.Begin()
	defer tx.Rollback()
	DisableJoinOptimization = true
	defer func() { DisableJoinOptimization = false }()
	_, plan := planFor(t, tx, `SELECT * FROM seats WHERE snu = 2`)
	if len(plan.probe) != 0 || len(plan.hash) != 0 {
		t.Fatalf("ablation mode must plan no probes or hash joins, got %+v", plan)
	}
	res := query(t, s, "continental", `SELECT owner FROM seats WHERE snu = 2`)
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "smith" {
		t.Fatalf("ablation result = %+v", res.Rows)
	}
}

// TestProbeSeesUncommittedWrites guards the access-path contract: an
// index probe must observe the transaction's own uncommitted inserts,
// updates and deletes exactly as a scan would.
func TestProbeSeesUncommittedWrites(t *testing.T) {
	s := keyedStore(t)
	tx := s.Begin()
	defer tx.Rollback()
	mustExec := func(q string) {
		t.Helper()
		if _, err := ExecuteSQL(tx, "continental", q); err != nil {
			t.Fatalf("%q: %v", q, err)
		}
	}
	q := func(q string) *Result {
		t.Helper()
		res, err := ExecuteSQL(tx, "continental", q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		return res
	}
	mustExec(`INSERT INTO seats VALUES (50, 'new')`)
	if res := q(`SELECT owner FROM seats WHERE snu = 50`); len(res.Rows) != 1 || res.Rows[0][0].String() != "new" {
		t.Fatalf("uncommitted insert invisible to probe: %+v", res.Rows)
	}
	mustExec(`UPDATE seats SET snu = 60 WHERE snu = 50`)
	if res := q(`SELECT * FROM seats WHERE snu = 50`); len(res.Rows) != 0 {
		t.Fatalf("stale key still probes after key update: %+v", res.Rows)
	}
	if res := q(`SELECT owner FROM seats WHERE snu = 60`); len(res.Rows) != 1 {
		t.Fatalf("moved key invisible to probe: %+v", res.Rows)
	}
	mustExec(`DELETE FROM seats WHERE snu = 60`)
	if res := q(`SELECT * FROM seats WHERE snu = 60`); len(res.Rows) != 0 {
		t.Fatalf("deleted key still probes: %+v", res.Rows)
	}
}
