package sqlengine

import (
	"fmt"
	"strings"
	"time"

	"msql/internal/obs"
	"msql/internal/relstore"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
)

// explainCtx carries EXPLAIN state through the select executor. node is
// where the current select attaches its plan subtree; analyze turns on
// the metering wrappers and executes the statement for real.
type explainCtx struct {
	analyze bool
	node    *obs.PlanNode
	// levels are the plan nodes of the current select's loop levels, in
	// source order, so annotate can copy runtime stats onto them.
	levels []*obs.PlanNode
}

// branch returns a child context attached to a fresh subtree node, for
// UNION branches. Nil-safe: a nil receiver yields a nil child.
func (ec *explainCtx) branch() *explainCtx {
	if ec == nil {
		return nil
	}
	child := ec.node.Add(&obs.PlanNode{Op: "select"})
	return &explainCtx{analyze: ec.analyze, node: child}
}

// describe records the chosen plan shape for one union-free select: one
// child per loop level (outermost first) naming the access path, plus an
// aggregate step when the query groups.
func (ec *explainCtx) describe(e *env, sel *sqlparser.SelectStmt, plan *joinPlan) {
	n := ec.node
	if n.Op == "" {
		n.Op = "select"
	}
	var mods []string
	if sel.Distinct {
		mods = append(mods, "distinct")
	}
	if len(sel.OrderBy) > 0 {
		mods = append(mods, "order")
	}
	if sel.Limit >= 0 {
		mods = append(mods, fmt.Sprintf("limit %d", sel.Limit))
	}
	n.Detail = strings.Join(mods, " ")
	parent := n
	if len(sel.GroupBy) > 0 || hasAggregate(sel) {
		parent = n.Add(&obs.PlanNode{Op: "aggregate",
			Detail: fmt.Sprintf("group by %d key(s)", len(sel.GroupBy))})
	}
	ec.levels = make([]*obs.PlanNode, len(e.sources))
	for i, src := range e.sources {
		var ln *obs.PlanNode
		switch {
		case plan.probe[i] != nil:
			p := plan.probe[i]
			var keys []string
			for _, ci := range p.keyCols {
				keys = append(keys, src.cols[ci].Name)
			}
			ln = &obs.PlanNode{Op: "index-probe",
				Detail: fmt.Sprintf("%s key(%s)", src.qualifier, strings.Join(keys, ", "))}
		case plan.hash[i] != nil:
			h := plan.hash[i]
			ln = &obs.PlanNode{Op: "hash-join",
				Detail: fmt.Sprintf("%s build(%s) probe(%s)", src.qualifier,
					sqlparser.DeparseExpr(h.buildExpr), sqlparser.DeparseExpr(h.probeExpr))}
		default:
			ln = &obs.PlanNode{Op: "scan", Detail: src.qualifier}
			if src.tbl == nil {
				ln.Detail += " [materialized]"
			}
		}
		if fs := plan.level[i]; len(fs) > 0 {
			var parts []string
			for _, f := range fs {
				parts = append(parts, sqlparser.DeparseExpr(f))
			}
			ln.Detail += " filter(" + strings.Join(parts, " AND ") + ")"
		}
		ec.levels[i] = parent.Add(ln)
	}
}

// annotate copies the executed levels' runtime counters onto their plan
// nodes. Called via defer so early-limit and error returns still report
// whatever ran.
func (ec *explainCtx) annotate(e *env) {
	if e.stats == nil {
		return
	}
	for i, ln := range ec.levels {
		if ln == nil || i >= len(e.stats.nodes) {
			continue
		}
		st := &e.stats.nodes[i]
		ln.Analyzed = true
		ln.Rows = st.rows
		ln.Loops = st.loops
		ln.TimeNS = st.timeNS
		ln.PageHits = st.pc.Hits()
		ln.PageMisses = st.pc.Misses()
	}
}

// ExplainSelect plans (and with analyze, executes) a SELECT and returns
// the plan tree plus — under analyze — the statement's normal result.
// Plain EXPLAIN returns an empty result carrying only output columns.
func ExplainSelect(tx *relstore.Tx, db string, sel *sqlparser.SelectStmt, analyze bool) (*Result, *obs.PlanNode, error) {
	root := &obs.PlanNode{}
	ec := &explainCtx{analyze: analyze, node: root}
	t0 := time.Now()
	res, err := execSelectEx(tx, db, sel, nil, ec)
	if err != nil {
		return nil, nil, err
	}
	if analyze {
		root.Analyzed = true
		root.Rows = int64(len(res.Rows))
		root.Loops = 1
		root.TimeNS = time.Since(t0).Nanoseconds()
		// Page counters are set only on access-path leaves, which may sit
		// below intermediate aggregate/select nodes — sum the whole tree.
		var sumPages func(n *obs.PlanNode)
		sumPages = func(n *obs.PlanNode) {
			for _, c := range n.Children {
				root.PageHits += c.PageHits
				root.PageMisses += c.PageMisses
				sumPages(c)
			}
		}
		sumPages(root)
	}
	return res, root, nil
}

// execExplain implements the EXPLAIN statement at the local-engine tier.
// Plain EXPLAIN renders the plan as QUERY PLAN text rows without running
// the target. EXPLAIN ANALYZE executes the target and returns the
// target's own rows with the annotated tree attached in Result.Plan — the
// federation coordinator relies on getting both, so it can assemble the
// global result and graft the local subtree into the statement-wide plan.
func execExplain(tx *relstore.Tx, db string, ex *sqlparser.ExplainStmt) (*Result, error) {
	sel, ok := ex.Target.(*sqlparser.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqlengine: EXPLAIN supports SELECT statements, not %s",
			strings.Fields(sqlparser.Deparse(ex.Target))[0])
	}
	res, plan, err := ExplainSelect(tx, db, sel, ex.Analyze)
	if err != nil {
		return nil, err
	}
	if ex.Analyze {
		res.Plan = plan
		return res, nil
	}
	return planTextResult(plan, ex.JSON), nil
}

// planTextResult renders a plan tree as a single-column QUERY PLAN result.
func planTextResult(plan *obs.PlanNode, asJSON bool) *Result {
	text := plan.Render()
	if asJSON {
		text = plan.JSON() + "\n"
	}
	res := &Result{
		Columns: []ResultCol{{Name: "QUERY PLAN", Type: sqlval.KindString}},
		Plan:    plan,
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, []sqlval.Value{sqlval.Str(line)})
	}
	res.RowsAffected = len(res.Rows)
	return res
}
