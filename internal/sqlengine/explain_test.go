package sqlengine

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"msql/internal/relstore"
)

// pagedStore builds a database with a small driver table and a large
// keyed table spanning many heap pages, so page-accounting differences
// between access paths are visible.
func pagedStore(t testing.TB) *relstore.Store {
	t.Helper()
	s := relstore.NewStore()
	if err := s.CreateDatabase("db"); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	setup := []string{
		`CREATE TABLE drivers (id INTEGER, note CHAR(10))`,
		`INSERT INTO drivers VALUES (7, 'a'), (211, 'b'), (499, 'c')`,
		`CREATE TABLE big (id INTEGER PRIMARY KEY, pad CHAR(60), val INTEGER)`,
	}
	for _, q := range setup {
		if _, err := ExecuteSQL(tx, "db", q); err != nil {
			t.Fatalf("setup %q: %v", q, err)
		}
	}
	for i := 0; i < 500; i += 50 {
		var vals []string
		for j := i; j < i+50; j++ {
			vals = append(vals, fmt.Sprintf("(%d, 'xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx', %d)", j, j%13))
		}
		q := "INSERT INTO big VALUES " + strings.Join(vals, ", ")
		if _, err := ExecuteSQL(tx, "db", q); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExplainPlainDoesNotExecute(t *testing.T) {
	s := pagedStore(t)
	tx := s.Begin()
	defer tx.Rollback()
	res, err := ExecuteSQL(tx, "db", `EXPLAIN SELECT * FROM big WHERE id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0].Name != "QUERY PLAN" {
		t.Fatalf("columns = %v", res.ColumnNames())
	}
	if res.Plan == nil {
		t.Fatal("no plan attached")
	}
	if res.Plan.Analyzed {
		t.Fatal("plain EXPLAIN must not execute")
	}
	if res.Plan.Find("index-probe") == nil && res.Plan.Find("scan") == nil {
		t.Fatalf("plan has no access-path node: %s", res.Plan.Render())
	}
	if _, err := ExecuteSQL(tx, "db", `EXPLAIN INSERT INTO drivers VALUES (1, 'x')`); err == nil {
		t.Fatal("EXPLAIN of a non-SELECT must be rejected")
	}
}

func TestExplainAnalyzeRowsMatchPlainSelect(t *testing.T) {
	s := pagedStore(t)
	tx := s.Begin()
	defer tx.Rollback()
	const q = `SELECT d.id, b.val FROM drivers d, big b WHERE b.id = d.id ORDER BY d.id`
	plain, err := ExecuteSQL(tx, "db", q)
	if err != nil {
		t.Fatal(err)
	}
	analyzed, err := ExecuteSQL(tx, "db", "EXPLAIN ANALYZE "+q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Rows, analyzed.Rows) {
		t.Fatalf("ANALYZE changed the result: %v vs %v", plain.Rows, analyzed.Rows)
	}
	p := analyzed.Plan
	if p == nil || !p.Analyzed {
		t.Fatal("no analyzed plan attached")
	}
	if p.Rows != int64(len(plain.Rows)) {
		t.Fatalf("root rows = %d, result has %d", p.Rows, len(plain.Rows))
	}
	probe := p.Find("index-probe")
	if probe == nil {
		t.Fatalf("expected an index-probe node:\n%s", p.Render())
	}
	if probe.Rows != int64(len(plain.Rows)) || probe.Loops != 3 {
		t.Fatalf("probe rows=%d loops=%d, want rows=%d loops=3", probe.Rows, probe.Loops, len(plain.Rows))
	}
}

// TestExplainProbeReadsFewerPagesThanScan is the acceptance ablation:
// the index-probe path must touch fewer heap pages than the same join
// forced onto nested scans.
func TestExplainProbeReadsFewerPagesThanScan(t *testing.T) {
	s := pagedStore(t)
	const q = `EXPLAIN ANALYZE SELECT d.id, b.val FROM drivers d, big b WHERE b.id = d.id`
	run := func(forceScan bool) (pages int64, op string) {
		old := DisableJoinOptimization
		DisableJoinOptimization = forceScan
		defer func() { DisableJoinOptimization = old }()
		tx := s.Begin()
		defer tx.Rollback()
		res, err := ExecuteSQL(tx, "db", q)
		if err != nil {
			t.Fatal(err)
		}
		// The inner level's node is the access path onto big.
		for _, cand := range []string{"index-probe", "hash-join", "scan"} {
			for _, n := range res.Plan.FindAll(cand) {
				if strings.HasPrefix(n.Detail, "b ") || n.Detail == "b" {
					return n.PageHits + n.PageMisses, n.Op
				}
			}
		}
		t.Fatalf("no node for big:\n%s", res.Plan.Render())
		return 0, ""
	}
	probePages, probeOp := run(false)
	scanPages, scanOp := run(true)
	if probeOp != "index-probe" {
		t.Fatalf("optimized path is %s, want index-probe", probeOp)
	}
	if scanOp != "scan" {
		t.Fatalf("ablated path is %s, want scan", scanOp)
	}
	if probePages >= scanPages {
		t.Fatalf("index-probe read %d pages, forced scan %d — probe must be cheaper", probePages, scanPages)
	}
}

// TestConcurrentAnalyzePageCountsDoNotBleed runs two different ANALYZE
// statements concurrently against the same store and requires every run
// to report exactly the page counts of a solo run: per-statement
// counters must not leak across concurrently executing statements.
func TestConcurrentAnalyzePageCountsDoNotBleed(t *testing.T) {
	s := pagedStore(t)
	pagesOf := func(q string) int64 {
		tx := s.Begin()
		defer tx.Rollback()
		res, err := ExecuteSQL(tx, "db", q)
		if err != nil {
			t.Fatal(err)
		}
		return res.Plan.PageHits + res.Plan.PageMisses
	}
	const qBig = `EXPLAIN ANALYZE SELECT COUNT(val) FROM big`
	const qSmall = `EXPLAIN ANALYZE SELECT id FROM drivers`
	wantBig := pagesOf(qBig)
	wantSmall := pagesOf(qSmall)
	if wantBig <= wantSmall {
		t.Fatalf("setup: big scan (%d pages) must dwarf small scan (%d pages)", wantBig, wantSmall)
	}
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, 2*iters)
	for _, tc := range []struct {
		q    string
		want int64
	}{{qBig, wantBig}, {qSmall, wantSmall}} {
		wg.Add(1)
		go func(q string, want int64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tx := s.Begin()
				res, err := ExecuteSQL(tx, "db", q)
				if err != nil {
					tx.Rollback()
					errs <- err
					return
				}
				got := res.Plan.PageHits + res.Plan.PageMisses
				tx.Rollback()
				if got != want {
					errs <- fmt.Errorf("%s: %d pages on iteration %d, solo run reads %d — counters bled", q, got, i, want)
					return
				}
			}
		}(tc.q, tc.want)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
