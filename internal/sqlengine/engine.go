// Package sqlengine executes parsed SQL statements against a relstore
// transaction. It implements the complete local query surface the paper's
// LDBMSs need: SELECT with joins, aggregates, grouping, ordering, scalar
// and IN subqueries; INSERT/UPDATE/DELETE; and transactional DDL including
// views.
//
// The engine is stateless: every call receives the transaction and the
// session's current database, so the LDBMS session layer above it can
// implement autocommit and 2PC policies freely.
package sqlengine

import (
	"errors"
	"fmt"

	"msql/internal/obs"
	"msql/internal/relstore"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
)

// Common engine errors.
var (
	ErrUnknownColumn   = errors.New("sqlengine: unknown column")
	ErrAmbiguousColumn = errors.New("sqlengine: ambiguous column")
	ErrNotScalar       = errors.New("sqlengine: subquery returned more than one row")
)

// ResultCol describes one output column.
type ResultCol struct {
	Name string
	Type sqlval.Kind
}

// Result is the outcome of one statement. Plan is non-nil only for
// EXPLAIN statements: the plan tree the executor chose, annotated with
// runtime statistics under ANALYZE.
type Result struct {
	Columns      []ResultCol
	Rows         [][]sqlval.Value
	RowsAffected int
	Plan         *obs.PlanNode
}

// ColumnNames returns the output column names.
func (r *Result) ColumnNames() []string {
	names := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		names[i] = c.Name
	}
	return names
}

// Execute runs stmt inside tx with db as the session's current database.
// Table names may be qualified as database.table on servers exposing
// multiple databases.
func Execute(tx *relstore.Tx, db string, stmt sqlparser.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		return execSelect(tx, db, s, nil)
	case *sqlparser.ExplainStmt:
		return execExplain(tx, db, s)
	case *sqlparser.InsertStmt:
		return execInsert(tx, db, s)
	case *sqlparser.UpdateStmt:
		return execUpdate(tx, db, s)
	case *sqlparser.DeleteStmt:
		return execDelete(tx, db, s)
	case *sqlparser.CreateTableStmt:
		tdb, tname := splitName(db, s.Table)
		cols := make([]relstore.Column, len(s.Columns))
		for i, c := range s.Columns {
			cols[i] = relstore.Column{Name: c.Name, Type: c.Type, Width: c.Width, Key: c.Key}
		}
		if err := tx.CreateTable(tdb, tname, cols); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.DropTableStmt:
		tdb, tname := splitName(db, s.Table)
		err := tx.DropTable(tdb, tname)
		if err != nil && s.IfExists && errors.Is(err, relstore.ErrNoTable) {
			return &Result{}, nil
		}
		if err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.CreateDatabaseStmt:
		if err := tx.CreateDatabase(s.Database); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.DropDatabaseStmt:
		if err := tx.DropDatabase(s.Database); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.CreateViewStmt:
		vdb, vname := splitName(db, s.View)
		if err := tx.CreateView(vdb, vname, sqlparser.Deparse(s.Query)); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.DropViewStmt:
		vdb, vname := splitName(db, s.View)
		if err := tx.DropView(vdb, vname); err != nil {
			return nil, err
		}
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("sqlengine: unsupported statement %T", stmt)
	}
}

// ExecuteSQL parses and executes one statement given as text.
func ExecuteSQL(tx *relstore.Tx, db, src string) (*Result, error) {
	stmt, err := sqlparser.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	return Execute(tx, db, stmt)
}

// splitName resolves an optionally database-qualified object name against
// the session's current database.
func splitName(db string, n sqlparser.ObjectName) (string, string) {
	if len(n.Parts) >= 2 {
		return n.Parts[0], n.Parts[1]
	}
	return db, n.Last()
}

// DescribeTable reports the schema of a table or view for IMPORT. Views
// are described by executing their definition against an empty result.
func DescribeTable(tx *relstore.Tx, db, name string) ([]relstore.Column, error) {
	d, err := txStoreDatabase(tx, db)
	if err != nil {
		return nil, err
	}
	if tbl, err := d.Table(name); err == nil {
		return append([]relstore.Column(nil), tbl.Columns...), nil
	}
	v, err := d.View(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %s.%s", relstore.ErrNoTable, db, name)
	}
	stmt, err := sqlparser.ParseStatement(v.Definition)
	if err != nil {
		return nil, fmt.Errorf("sqlengine: bad view definition %s.%s: %v", db, name, err)
	}
	sel, ok := stmt.(*sqlparser.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqlengine: view %s.%s is not a SELECT", db, name)
	}
	res, err := execSelect(tx, db, sel, nil)
	if err != nil {
		return nil, err
	}
	cols := make([]relstore.Column, len(res.Columns))
	for i, c := range res.Columns {
		cols[i] = relstore.Column{Name: c.Name, Type: c.Type}
	}
	return cols, nil
}

// txStoreDatabase fetches the database through the transaction's store via
// a read lock on nothing — schema reads are catalog lookups.
func txStoreDatabase(tx *relstore.Tx, db string) (*relstore.Database, error) {
	// The Tx does not expose its store; take a shared table lock lazily in
	// the scan paths instead. Schema metadata reads are safe because DDL
	// under way in another transaction holds exclusive locks on the names
	// it touches, and Go map reads here are guarded by the store lock.
	return tx.StoreDatabase(db)
}
