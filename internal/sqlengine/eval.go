package sqlengine

import (
	"fmt"
	"math"
	"strings"

	"msql/internal/relstore"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
)

// evalExpr evaluates an expression in the environment.
func evalExpr(e *env, ex sqlparser.Expr) (sqlval.Value, error) {
	switch x := ex.(type) {
	case *sqlparser.Literal:
		return x.Val, nil
	case sqlparser.ColRef:
		return e.lookup(x)
	case *sqlparser.BinaryExpr:
		return evalBinary(e, x)
	case *sqlparser.UnaryExpr:
		v, err := evalExpr(e, x.X)
		if err != nil {
			return sqlval.Null(), err
		}
		if x.Op == "NOT" {
			if v.IsNull() {
				return sqlval.Null(), nil
			}
			return sqlval.Bool(!v.Truthy()), nil
		}
		return sqlval.Neg(v)
	case *sqlparser.FuncCall:
		if e.aggs != nil {
			if v, ok := e.aggs[x]; ok {
				return v, nil
			}
		}
		if aggregateFuncs[x.Name] {
			return sqlval.Null(), fmt.Errorf("sqlengine: aggregate %s outside grouped context", x.Name)
		}
		return evalScalarFunc(e, x)
	case *sqlparser.SubqueryExpr:
		res, err := execSelect(e.tx, e.db, x.Query, e)
		if err != nil {
			return sqlval.Null(), err
		}
		if len(res.Rows) == 0 {
			return sqlval.Null(), nil
		}
		if len(res.Rows) > 1 {
			return sqlval.Null(), ErrNotScalar
		}
		if len(res.Rows[0]) != 1 {
			return sqlval.Null(), fmt.Errorf("sqlengine: scalar subquery must return one column")
		}
		return res.Rows[0][0], nil
	case *sqlparser.InExpr:
		return evalIn(e, x)
	case *sqlparser.BetweenExpr:
		v, err := evalExpr(e, x.X)
		if err != nil {
			return sqlval.Null(), err
		}
		lo, err := evalExpr(e, x.Lo)
		if err != nil {
			return sqlval.Null(), err
		}
		hi, err := evalExpr(e, x.Hi)
		if err != nil {
			return sqlval.Null(), err
		}
		cLo, ok1 := sqlval.Compare(v, lo)
		cHi, ok2 := sqlval.Compare(v, hi)
		if !ok1 || !ok2 {
			return sqlval.Null(), nil
		}
		in := cLo >= 0 && cHi <= 0
		if x.Not {
			in = !in
		}
		return sqlval.Bool(in), nil
	case *sqlparser.IsNullExpr:
		v, err := evalExpr(e, x.X)
		if err != nil {
			return sqlval.Null(), err
		}
		isNull := v.IsNull()
		if x.Not {
			isNull = !isNull
		}
		return sqlval.Bool(isNull), nil
	case *sqlparser.LikeExpr:
		v, err := evalExpr(e, x.X)
		if err != nil {
			return sqlval.Null(), err
		}
		p, err := evalExpr(e, x.Pattern)
		if err != nil {
			return sqlval.Null(), err
		}
		if v.IsNull() || p.IsNull() {
			return sqlval.Null(), nil
		}
		m := sqlval.Like(v.String(), p.String())
		if x.Not {
			m = !m
		}
		return sqlval.Bool(m), nil
	default:
		return sqlval.Null(), fmt.Errorf("sqlengine: unsupported expression %T", ex)
	}
}

func evalBinary(e *env, x *sqlparser.BinaryExpr) (sqlval.Value, error) {
	switch x.Op {
	case "AND":
		l, err := evalExpr(e, x.L)
		if err != nil {
			return sqlval.Null(), err
		}
		if !l.IsNull() && !l.Truthy() {
			return sqlval.Bool(false), nil
		}
		r, err := evalExpr(e, x.R)
		if err != nil {
			return sqlval.Null(), err
		}
		if !r.IsNull() && !r.Truthy() {
			return sqlval.Bool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Bool(true), nil
	case "OR":
		l, err := evalExpr(e, x.L)
		if err != nil {
			return sqlval.Null(), err
		}
		if !l.IsNull() && l.Truthy() {
			return sqlval.Bool(true), nil
		}
		r, err := evalExpr(e, x.R)
		if err != nil {
			return sqlval.Null(), err
		}
		if !r.IsNull() && r.Truthy() {
			return sqlval.Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Bool(false), nil
	}
	l, err := evalExpr(e, x.L)
	if err != nil {
		return sqlval.Null(), err
	}
	r, err := evalExpr(e, x.R)
	if err != nil {
		return sqlval.Null(), err
	}
	switch x.Op {
	case "+":
		return sqlval.Arith(sqlval.OpAdd, l, r)
	case "-":
		return sqlval.Arith(sqlval.OpSub, l, r)
	case "*":
		return sqlval.Arith(sqlval.OpMul, l, r)
	case "/":
		return sqlval.Arith(sqlval.OpDiv, l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return sqlval.Null(), nil
		}
		c, ok := sqlval.Compare(l, r)
		if !ok {
			return sqlval.Bool(false), nil
		}
		switch x.Op {
		case "=":
			return sqlval.Bool(c == 0), nil
		case "<>":
			return sqlval.Bool(c != 0), nil
		case "<":
			return sqlval.Bool(c < 0), nil
		case "<=":
			return sqlval.Bool(c <= 0), nil
		case ">":
			return sqlval.Bool(c > 0), nil
		default:
			return sqlval.Bool(c >= 0), nil
		}
	default:
		return sqlval.Null(), fmt.Errorf("sqlengine: unsupported operator %q", x.Op)
	}
}

func evalIn(e *env, x *sqlparser.InExpr) (sqlval.Value, error) {
	v, err := evalExpr(e, x.X)
	if err != nil {
		return sqlval.Null(), err
	}
	if v.IsNull() {
		return sqlval.Null(), nil
	}
	var candidates []sqlval.Value
	if x.Query != nil {
		res, err := execSelect(e.tx, e.db, x.Query, e)
		if err != nil {
			return sqlval.Null(), err
		}
		for _, r := range res.Rows {
			if len(r) != 1 {
				return sqlval.Null(), fmt.Errorf("sqlengine: IN subquery must return one column")
			}
			candidates = append(candidates, r[0])
		}
	} else {
		for _, item := range x.List {
			iv, err := evalExpr(e, item)
			if err != nil {
				return sqlval.Null(), err
			}
			candidates = append(candidates, iv)
		}
	}
	found := false
	sawNull := false
	for _, c := range candidates {
		if c.IsNull() {
			sawNull = true
			continue
		}
		if sqlval.Equal(v, c) {
			found = true
			break
		}
	}
	if !found && sawNull {
		return sqlval.Null(), nil
	}
	if x.Not {
		found = !found
	}
	return sqlval.Bool(found), nil
}

var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

func evalScalarFunc(e *env, x *sqlparser.FuncCall) (sqlval.Value, error) {
	args := make([]sqlval.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := evalExpr(e, a)
		if err != nil {
			return sqlval.Null(), err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sqlengine: %s expects %d argument(s), got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "UPPER":
		if err := need(1); err != nil {
			return sqlval.Null(), err
		}
		if args[0].IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Str(strings.ToUpper(args[0].String())), nil
	case "LOWER":
		if err := need(1); err != nil {
			return sqlval.Null(), err
		}
		if args[0].IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Str(strings.ToLower(args[0].String())), nil
	case "LENGTH":
		if err := need(1); err != nil {
			return sqlval.Null(), err
		}
		if args[0].IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Int(int64(len(args[0].String()))), nil
	case "ABS":
		if err := need(1); err != nil {
			return sqlval.Null(), err
		}
		switch args[0].K {
		case sqlval.KindNull:
			return sqlval.Null(), nil
		case sqlval.KindInt:
			if args[0].I < 0 {
				return sqlval.Int(-args[0].I), nil
			}
			return args[0], nil
		case sqlval.KindFloat:
			return sqlval.Float(math.Abs(args[0].F)), nil
		}
		return sqlval.Null(), fmt.Errorf("sqlengine: ABS of %s", args[0].K)
	case "ROUND":
		if len(args) == 1 {
			args = append(args, sqlval.Int(0))
		}
		if err := need(2); err != nil {
			return sqlval.Null(), err
		}
		if args[0].IsNull() {
			return sqlval.Null(), nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return sqlval.Null(), fmt.Errorf("sqlengine: ROUND of %s", args[0].K)
		}
		d, _ := args[1].AsInt()
		scale := math.Pow(10, float64(d))
		return sqlval.Float(math.Round(f*scale) / scale), nil
	case "SUBSTR":
		if len(args) == 2 {
			args = append(args, sqlval.Int(math.MaxInt32))
		}
		if err := need(3); err != nil {
			return sqlval.Null(), err
		}
		if args[0].IsNull() {
			return sqlval.Null(), nil
		}
		s := args[0].String()
		start, _ := args[1].AsInt()
		length, _ := args[2].AsInt()
		if start < 1 {
			start = 1
		}
		if int(start) > len(s) {
			return sqlval.Str(""), nil
		}
		end := int(start-1) + int(length)
		if end > len(s) || end < 0 {
			end = len(s)
		}
		return sqlval.Str(s[start-1 : end]), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return sqlval.Null(), nil
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			if !a.IsNull() {
				b.WriteString(a.String())
			}
		}
		return sqlval.Str(b.String()), nil
	default:
		return sqlval.Null(), fmt.Errorf("sqlengine: unknown function %s", x.Name)
	}
}

// hasAggregate reports whether the query's projection, HAVING or ORDER BY
// contains an aggregate call at the current query level (subqueries are
// their own level).
func hasAggregate(sel *sqlparser.SelectStmt) bool {
	found := false
	check := func(e sqlparser.Expr) {
		walkShallow(e, func(x sqlparser.Expr) {
			if fc, ok := x.(*sqlparser.FuncCall); ok && aggregateFuncs[fc.Name] {
				found = true
			}
		})
	}
	for _, it := range sel.Items {
		check(it.Expr)
	}
	check(sel.Having)
	for _, o := range sel.OrderBy {
		check(o.Expr)
	}
	return found
}

// walkShallow visits expressions without descending into subqueries.
func walkShallow(e sqlparser.Expr, fn func(sqlparser.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		walkShallow(x.L, fn)
		walkShallow(x.R, fn)
	case *sqlparser.UnaryExpr:
		walkShallow(x.X, fn)
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			walkShallow(a, fn)
		}
	case *sqlparser.InExpr:
		walkShallow(x.X, fn)
		for _, a := range x.List {
			walkShallow(a, fn)
		}
	case *sqlparser.BetweenExpr:
		walkShallow(x.X, fn)
		walkShallow(x.Lo, fn)
		walkShallow(x.Hi, fn)
	case *sqlparser.IsNullExpr:
		walkShallow(x.X, fn)
	case *sqlparser.LikeExpr:
		walkShallow(x.X, fn)
		walkShallow(x.Pattern, fn)
	}
}

// collectAggregates gathers the distinct aggregate calls in the query.
func collectAggregates(sel *sqlparser.SelectStmt) []*sqlparser.FuncCall {
	var aggs []*sqlparser.FuncCall
	seen := map[*sqlparser.FuncCall]bool{}
	collect := func(e sqlparser.Expr) {
		walkShallow(e, func(x sqlparser.Expr) {
			if fc, ok := x.(*sqlparser.FuncCall); ok && aggregateFuncs[fc.Name] && !seen[fc] {
				seen[fc] = true
				aggs = append(aggs, fc)
			}
		})
	}
	for _, it := range sel.Items {
		collect(it.Expr)
	}
	collect(sel.Having)
	for _, o := range sel.OrderBy {
		collect(o.Expr)
	}
	return aggs
}

// execGrouped evaluates a grouped (or implicitly aggregated) SELECT.
func execGrouped(e *env, sel *sqlparser.SelectStmt, inputs [][]relstore.Row) (*Result, error) {
	aggs := collectAggregates(sel)

	type group struct {
		rep  []relstore.Row // representative input row
		rows [][]relstore.Row
	}
	groups := map[string]*group{}
	var order []string
	for _, in := range inputs {
		e.current = in
		key := ""
		for _, g := range sel.GroupBy {
			v, err := evalExpr(e, g)
			if err != nil {
				return nil, err
			}
			key += v.GroupKey() + "\x00"
		}
		grp, ok := groups[key]
		if !ok {
			grp = &group{rep: in}
			groups[key] = grp
			order = append(order, key)
		}
		grp.rows = append(grp.rows, in)
	}
	// Implicit single group for aggregate-only queries, even with no rows.
	if len(sel.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &group{rep: nil}
		order = append(order, "")
	}

	cols, items, err := expandItems(e, sel)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cols}
	var outs []rowWithKeys
	for _, key := range order {
		grp := groups[key]
		aggVals := make(map[*sqlparser.FuncCall]sqlval.Value, len(aggs))
		for _, agg := range aggs {
			v, err := computeAggregate(e, agg, grp.rows)
			if err != nil {
				return nil, err
			}
			aggVals[agg] = v
		}
		e.current = grp.rep
		e.aggs = aggVals
		if sel.Having != nil {
			hv, err := evalExpr(e, sel.Having)
			if err != nil {
				return nil, err
			}
			if !hv.Truthy() {
				e.aggs = nil
				continue
			}
		}
		vals := make([]sqlval.Value, len(items))
		for i, it := range items {
			v, err := evalExpr(e, it)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		keys, err := orderKeys(e, sel, cols, vals)
		if err != nil {
			return nil, err
		}
		e.aggs = nil
		outs = append(outs, rowWithKeys{vals: vals, keys: keys})
	}
	return finishResult(sel, res, outs)
}

// computeAggregate evaluates one aggregate over a group's input rows.
func computeAggregate(e *env, agg *sqlparser.FuncCall, rows [][]relstore.Row) (sqlval.Value, error) {
	var vals []sqlval.Value
	if agg.Star {
		return sqlval.Int(int64(len(rows))), nil
	}
	if len(agg.Args) != 1 {
		return sqlval.Null(), fmt.Errorf("sqlengine: %s expects one argument", agg.Name)
	}
	saved := e.current
	defer func() { e.current = saved }()
	seen := map[string]bool{}
	for _, in := range rows {
		e.current = in
		v, err := evalExpr(e, agg.Args[0])
		if err != nil {
			return sqlval.Null(), err
		}
		if v.IsNull() {
			continue
		}
		if agg.Distinct {
			k := v.GroupKey()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch agg.Name {
	case "COUNT":
		return sqlval.Int(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return sqlval.Null(), nil
		}
		sum := sqlval.Value(vals[0])
		var err error
		for _, v := range vals[1:] {
			sum, err = sqlval.Arith(sqlval.OpAdd, sum, v)
			if err != nil {
				return sqlval.Null(), err
			}
		}
		if agg.Name == "SUM" {
			return sum, nil
		}
		return sqlval.Arith(sqlval.OpDiv, sum, sqlval.Float(float64(len(vals))))
	case "MIN", "MAX":
		if len(vals) == 0 {
			return sqlval.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, ok := sqlval.Compare(v, best)
			if !ok {
				continue
			}
			if agg.Name == "MIN" && c < 0 || agg.Name == "MAX" && c > 0 {
				best = v
			}
		}
		return best, nil
	default:
		return sqlval.Null(), fmt.Errorf("sqlengine: unknown aggregate %s", agg.Name)
	}
}
