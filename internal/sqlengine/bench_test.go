package sqlengine

import (
	"fmt"
	"testing"

	"msql/internal/relstore"
)

func benchDB(b *testing.B, rows int) *relstore.Store {
	b.Helper()
	s := relstore.NewStore()
	if err := s.CreateDatabase("d"); err != nil {
		b.Fatal(err)
	}
	tx := s.Begin()
	if _, err := ExecuteSQL(tx, "d", "CREATE TABLE t (id INTEGER, grp CHAR(4), val FLOAT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i += 50 {
		stmt := "INSERT INTO t VALUES "
		for j := 0; j < 50 && i+j < rows; j++ {
			if j > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'g%d', %d.5)", i+j, (i+j)%7, (i+j)%500)
		}
		if _, err := ExecuteSQL(tx, "d", stmt); err != nil {
			b.Fatal(err)
		}
	}
	tx.Commit()
	return s
}

func BenchmarkSelectFilter(b *testing.B) {
	s := benchDB(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin()
		res, err := ExecuteSQL(tx, "d", "SELECT id FROM t WHERE val > 250 AND grp = 'g3'")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
		tx.Rollback()
	}
}

func BenchmarkSelectGroupBy(b *testing.B) {
	s := benchDB(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin()
		res, err := ExecuteSQL(tx, "d", "SELECT grp, COUNT(id), AVG(val) FROM t GROUP BY grp")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 7 {
			b.Fatalf("groups = %d", len(res.Rows))
		}
		tx.Rollback()
	}
}

func BenchmarkHashJoin(b *testing.B) {
	s := benchDB(b, 2000)
	tx := s.Begin()
	if _, err := ExecuteSQL(tx, "d", "CREATE TABLE u (id INTEGER, tag CHAR(4))"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i += 50 {
		stmt := "INSERT INTO u VALUES "
		for j := 0; j < 50; j++ {
			if j > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'x')", i+j)
		}
		if _, err := ExecuteSQL(tx, "d", stmt); err != nil {
			b.Fatal(err)
		}
	}
	tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rtx := s.Begin()
		res, err := ExecuteSQL(rtx, "d", "SELECT COUNT(t.id) FROM t, u WHERE t.id = u.id")
		if err != nil {
			b.Fatal(err)
		}
		if n, _ := res.Rows[0][0].AsInt(); n != 2000 {
			b.Fatalf("count = %d", n)
		}
		rtx.Rollback()
	}
}

func BenchmarkUpdateWhere(b *testing.B) {
	s := benchDB(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin()
		if _, err := ExecuteSQL(tx, "d", "UPDATE t SET val = val + 1 WHERE grp = 'g1'"); err != nil {
			b.Fatal(err)
		}
		tx.Rollback()
	}
}
