package sqlengine

import (
	"msql/internal/relstore"
	"msql/internal/sqlparser"
)

// joinPlan distributes WHERE conjuncts over the join's loop levels and
// records hash-join opportunities. Conjuncts that cannot be classified
// safely (subqueries, unresolvable references) stay at the last level,
// where every source is bound.
type joinPlan struct {
	level map[int][]sqlparser.Expr
	hash  map[int]*hashJoin
}

// hashJoin is one equality-driven probe: source i's rows indexed by
// buildExpr, probed with probeExpr (which references earlier sources
// only).
type hashJoin struct {
	buildExpr sqlparser.Expr
	probeExpr sqlparser.Expr
	table     map[string][]relstore.Row
}

// build populates the hash table once.
func (h *hashJoin) build(e *env, i int) error {
	if h.table != nil {
		return nil
	}
	h.table = make(map[string][]relstore.Row)
	saved := e.current[i]
	for _, row := range e.sources[i].rows {
		e.current[i] = row
		v, err := evalExpr(e, h.buildExpr)
		if err != nil {
			e.current[i] = saved
			return err
		}
		if v.IsNull() {
			continue // NULL never joins
		}
		key := v.GroupKey()
		h.table[key] = append(h.table[key], row)
	}
	e.current[i] = saved
	return nil
}

// DisableJoinOptimization turns off predicate pushdown and hash joins,
// reverting to full cartesian enumeration with post-filtering. It exists
// only for the B9 ablation benchmark and must stay false in production
// use; it is not synchronized.
var DisableJoinOptimization = false

// planJoin analyzes the WHERE clause against the bound sources.
func planJoin(e *env, where sqlparser.Expr) (*joinPlan, error) {
	plan := &joinPlan{
		level: make(map[int][]sqlparser.Expr),
		hash:  make(map[int]*hashJoin),
	}
	if where == nil || len(e.sources) == 0 {
		return plan, nil
	}
	last := len(e.sources) - 1
	if DisableJoinOptimization {
		plan.level[last] = splitConjuncts(where)
		return plan, nil
	}
	for _, c := range splitConjuncts(where) {
		mask, pure := conjunctSources(e, c)
		lvl := last
		if pure {
			lvl = highestSource(mask, last)
		}
		// Hash-join opportunity: a pure equality whose sides split into
		// {source lvl} and {sources < lvl}.
		if pure && lvl > 0 {
			if eq, ok := c.(*sqlparser.BinaryExpr); ok && eq.Op == "=" && plan.hash[lvl] == nil {
				lm, lok := exprSources(e, eq.L)
				rm, rok := exprSources(e, eq.R)
				ownBit := uint64(1) << uint(lvl)
				below := ownBit - 1
				switch {
				case lok && rok && lm == ownBit && rm != 0 && rm&^below == 0:
					plan.hash[lvl] = &hashJoin{buildExpr: eq.L, probeExpr: eq.R}
				case lok && rok && rm == ownBit && lm != 0 && lm&^below == 0:
					plan.hash[lvl] = &hashJoin{buildExpr: eq.R, probeExpr: eq.L}
				}
			}
		}
		plan.level[lvl] = append(plan.level[lvl], c)
	}
	return plan, nil
}

func splitConjuncts(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlparser.BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sqlparser.Expr{e}
}

// conjunctSources returns the bitmask of source indexes a conjunct
// references. pure is false when the conjunct contains subqueries or
// references this level cannot resolve (e.g. correlated names), in which
// case it must wait until every source is bound.
func conjunctSources(e *env, c sqlparser.Expr) (uint64, bool) {
	return exprSources(e, c)
}

func exprSources(e *env, x sqlparser.Expr) (uint64, bool) {
	var mask uint64
	pure := true
	walkShallow(x, func(n sqlparser.Expr) {
		switch v := n.(type) {
		case sqlparser.ColRef:
			idx, _, err := e.resolve(v)
			if err != nil {
				pure = false
				return
			}
			mask |= 1 << uint(idx/1000)
		case *sqlparser.SubqueryExpr:
			pure = false
		case *sqlparser.InExpr:
			if v.Query != nil {
				pure = false
			}
		}
	})
	return mask, pure
}

func highestSource(mask uint64, last int) int {
	for i := last; i >= 0; i-- {
		if mask&(1<<uint(i)) != 0 {
			return i
		}
	}
	return 0
}
