package sqlengine

import (
	"msql/internal/relstore"
	"msql/internal/sqlparser"
	"msql/internal/storage"
)

// joinPlan distributes WHERE conjuncts over the join's loop levels and
// records hash-join and index-probe opportunities. Conjuncts that cannot
// be classified safely (subqueries, unresolvable references) stay at the
// last level, where every source is bound.
type joinPlan struct {
	level map[int][]sqlparser.Expr
	hash  map[int]*hashJoin
	probe map[int]*indexProbe
}

// indexProbe answers a loop level with one primary-key lookup instead of
// a scan: every key column of the level's base table is pinned by a pure
// equality whose other side references only earlier levels or constants.
// The pinning conjuncts stay in plan.level as filters, so the probe is
// purely an access path.
type indexProbe struct {
	keyCols []int            // key column positions, in KeyColumns order
	exprs   []sqlparser.Expr // probe expressions, parallel to keyCols
}

// hashJoin is one equality-driven probe: source i's rows indexed by
// buildExpr, probed with probeExpr (which references earlier sources
// only).
type hashJoin struct {
	buildExpr sqlparser.Expr
	probeExpr sqlparser.Expr
	table     map[string][]relstore.Row
}

// build populates the hash table once, pulling base tables through their
// heap cursor and materialized sources from their row slice. Page traffic
// is recorded on pc (nil-safe) so an EXPLAIN ANALYZE attributes the build
// scan to the hash-join operator.
func (h *hashJoin) build(e *env, i int, pc *storage.PageCounters) error {
	if h.table != nil {
		return nil
	}
	h.table = make(map[string][]relstore.Row)
	saved := e.current[i]
	add := func(row relstore.Row) error {
		e.current[i] = row
		v, err := evalExpr(e, h.buildExpr)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil // NULL never joins
		}
		key := v.GroupKey()
		h.table[key] = append(h.table[key], row)
		return nil
	}
	src := e.sources[i]
	if src.tbl != nil {
		it := src.tbl.IterCounted(pc)
		for {
			_, row, ok := it.Next()
			if !ok {
				break
			}
			if err := add(row); err != nil {
				e.current[i] = saved
				return err
			}
		}
		if err := src.tbl.Err(); err != nil {
			e.current[i] = saved
			return err
		}
	} else {
		for _, row := range src.rows {
			if err := add(row); err != nil {
				e.current[i] = saved
				return err
			}
		}
	}
	e.current[i] = saved
	return nil
}

// DisableJoinOptimization turns off predicate pushdown and hash joins,
// reverting to full cartesian enumeration with post-filtering. It exists
// only for the B9 ablation benchmark and must stay false in production
// use; it is not synchronized.
var DisableJoinOptimization = false

// planJoin analyzes the WHERE clause against the bound sources.
func planJoin(e *env, where sqlparser.Expr) (*joinPlan, error) {
	plan := &joinPlan{
		level: make(map[int][]sqlparser.Expr),
		hash:  make(map[int]*hashJoin),
		probe: make(map[int]*indexProbe),
	}
	if where == nil || len(e.sources) == 0 {
		return plan, nil
	}
	last := len(e.sources) - 1
	if DisableJoinOptimization {
		plan.level[last] = splitConjuncts(where)
		return plan, nil
	}
	for _, c := range splitConjuncts(where) {
		mask, pure := conjunctSources(e, c)
		lvl := last
		if pure {
			lvl = highestSource(mask, last)
		}
		// Hash-join opportunity: a pure equality whose sides split into
		// {source lvl} and {sources < lvl}.
		if pure && lvl > 0 {
			if eq, ok := c.(*sqlparser.BinaryExpr); ok && eq.Op == "=" && plan.hash[lvl] == nil {
				lm, lok := exprSources(e, eq.L)
				rm, rok := exprSources(e, eq.R)
				ownBit := uint64(1) << uint(lvl)
				below := ownBit - 1
				switch {
				case lok && rok && lm == ownBit && rm != 0 && rm&^below == 0:
					plan.hash[lvl] = &hashJoin{buildExpr: eq.L, probeExpr: eq.R}
				case lok && rok && rm == ownBit && lm != 0 && lm&^below == 0:
					plan.hash[lvl] = &hashJoin{buildExpr: eq.R, probeExpr: eq.L}
				}
			}
		}
		plan.level[lvl] = append(plan.level[lvl], c)
	}
	planProbes(e, plan, splitConjuncts(where))
	return plan, nil
}

// planProbes upgrades loop levels to primary-key index probes. A level
// qualifies when pure equality conjuncts pin every key column of its
// base table to expressions over strictly earlier levels (or constants).
// The equalities stay behind as filters, so a probe can only skip rows
// the filters would reject anyway.
func planProbes(e *env, plan *joinPlan, conjuncts []sqlparser.Expr) {
	for lvl, src := range e.sources {
		if src.tbl == nil {
			continue
		}
		keys := src.tbl.KeyColumns()
		if len(keys) == 0 {
			continue
		}
		slot := make(map[int]int, len(keys)) // column index -> key position
		for i, k := range keys {
			slot[k] = i
		}
		exprs := make([]sqlparser.Expr, len(keys))
		found := 0
		below := uint64(1)<<uint(lvl) - 1
		for _, c := range conjuncts {
			eq, ok := c.(*sqlparser.BinaryExpr)
			if !ok || eq.Op != "=" {
				continue
			}
			for _, side := range [2][2]sqlparser.Expr{{eq.L, eq.R}, {eq.R, eq.L}} {
				ci, ok := colRefAt(e, side[0], lvl)
				if !ok {
					continue
				}
				si, isKey := slot[ci]
				if !isKey || exprs[si] != nil {
					continue
				}
				if m, pure := exprSources(e, side[1]); !pure || m&^below != 0 {
					continue
				}
				exprs[si] = side[1]
				found++
				break
			}
		}
		if found == len(keys) {
			plan.probe[lvl] = &indexProbe{keyCols: keys, exprs: exprs}
		}
	}
}

// colRefAt reports whether x is a bare column reference into source si,
// returning the column index within that source.
func colRefAt(e *env, x sqlparser.Expr, si int) (int, bool) {
	cr, ok := x.(sqlparser.ColRef)
	if !ok {
		return 0, false
	}
	idx, _, err := e.resolve(cr)
	if err != nil || idx/1000 != si {
		return 0, false
	}
	return idx % 1000, true
}

func splitConjuncts(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlparser.BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sqlparser.Expr{e}
}

// conjunctSources returns the bitmask of source indexes a conjunct
// references. pure is false when the conjunct contains subqueries or
// references this level cannot resolve (e.g. correlated names), in which
// case it must wait until every source is bound.
func conjunctSources(e *env, c sqlparser.Expr) (uint64, bool) {
	return exprSources(e, c)
}

func exprSources(e *env, x sqlparser.Expr) (uint64, bool) {
	var mask uint64
	pure := true
	walkShallow(x, func(n sqlparser.Expr) {
		switch v := n.(type) {
		case sqlparser.ColRef:
			idx, _, err := e.resolve(v)
			if err != nil {
				pure = false
				return
			}
			mask |= 1 << uint(idx/1000)
		case *sqlparser.SubqueryExpr:
			pure = false
		case *sqlparser.InExpr:
			if v.Query != nil {
				pure = false
			}
		}
	})
	return mask, pure
}

func highestSource(mask uint64, last int) int {
	for i := last; i >= 0; i-- {
		if mask&(1<<uint(i)) != 0 {
			return i
		}
	}
	return 0
}
