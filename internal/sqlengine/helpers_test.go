package sqlengine

import (
	"testing"

	"msql/internal/sqlparser"
)

func mustParseStmt(t *testing.T, src string) sqlparser.Statement {
	t.Helper()
	s, err := sqlparser.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func deparse(s sqlparser.Statement) string { return sqlparser.Deparse(s) }
