package sqlengine

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"msql/internal/relstore"
	"msql/internal/sqlval"
)

// paperStore builds the CONTINENTAL airline database from the paper's
// appendix, plus enough rows to exercise every query form.
func paperStore(t testing.TB) *relstore.Store {
	t.Helper()
	s := relstore.NewStore()
	if err := s.CreateDatabase("continental"); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	script := []string{
		`CREATE TABLE flights (flnu INTEGER, source CHAR(20), dep CHAR(5),
			destination CHAR(20), arr CHAR(5), day CHAR(10), rate FLOAT)`,
		`CREATE TABLE f838 (seatnu INTEGER, seatty CHAR(10), seatstatus CHAR(10), clientname CHAR(20))`,
		`INSERT INTO flights VALUES
			(100, 'Houston', '08:00', 'San Antonio', '09:00', 'mon', 100.0),
			(101, 'Houston', '10:00', 'San Antonio', '11:00', 'tue', 120.0),
			(102, 'Houston', '12:00', 'Dallas', '13:00', 'mon', 80.0),
			(103, 'Austin', '09:00', 'San Antonio', '09:45', 'wed', 60.0)`,
		`INSERT INTO f838 VALUES
			(1, 'window', 'FREE', NULL),
			(2, 'aisle', 'TAKEN', 'smith'),
			(3, 'window', 'FREE', NULL),
			(4, 'middle', 'FREE', NULL)`,
	}
	for _, q := range script {
		if _, err := ExecuteSQL(tx, "continental", q); err != nil {
			t.Fatalf("setup %q: %v", q, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return s
}

func query(t *testing.T, s *relstore.Store, db, q string) *Result {
	t.Helper()
	tx := s.Begin()
	defer tx.Rollback()
	res, err := ExecuteSQL(tx, db, q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

func exec(t *testing.T, s *relstore.Store, db, q string) *Result {
	t.Helper()
	tx := s.Begin()
	res, err := ExecuteSQL(tx, db, q)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSelectStar(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental", "SELECT * FROM flights")
	if len(res.Rows) != 4 || len(res.Columns) != 7 {
		t.Fatalf("rows=%d cols=%d", len(res.Rows), len(res.Columns))
	}
	if res.Columns[0].Name != "flnu" || res.Columns[6].Name != "rate" {
		t.Fatalf("columns = %v", res.ColumnNames())
	}
}

func TestSelectWhere(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental",
		"SELECT flnu, rate FROM flights WHERE source = 'Houston' AND destination = 'San Antonio'")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if n, _ := r[0].AsInt(); n != 100 && n != 101 {
			t.Fatalf("unexpected flnu %v", r[0])
		}
	}
}

func TestSelectExpressionsAndAliases(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental",
		"SELECT flnu, rate * 1.1 AS raised FROM flights WHERE flnu = 100")
	if res.Columns[1].Name != "raised" {
		t.Fatalf("columns = %v", res.ColumnNames())
	}
	f, _ := res.Rows[0][1].AsFloat()
	if f < 109.99 || f > 110.01 {
		t.Fatalf("raised = %v", res.Rows[0][1])
	}
}

func TestSelectOrderLimit(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental", "SELECT flnu FROM flights ORDER BY rate DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	a, _ := res.Rows[0][0].AsInt()
	b, _ := res.Rows[1][0].AsInt()
	if a != 101 || b != 100 {
		t.Fatalf("order = %d, %d", a, b)
	}
}

func TestSelectOrderByAliasAndPosition(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental", "SELECT flnu, rate AS r FROM flights ORDER BY r")
	first, _ := res.Rows[0][0].AsInt()
	if first != 103 {
		t.Fatalf("cheapest = %d", first)
	}
	res = query(t, s, "continental", "SELECT flnu, rate FROM flights ORDER BY 2 DESC")
	first, _ = res.Rows[0][0].AsInt()
	if first != 101 {
		t.Fatalf("priciest = %d", first)
	}
}

func TestSelectDistinct(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental", "SELECT DISTINCT source FROM flights")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental",
		"SELECT COUNT(*), MIN(rate), MAX(rate), AVG(rate), SUM(rate) FROM flights")
	r := res.Rows[0]
	if n, _ := r[0].AsInt(); n != 4 {
		t.Fatalf("count = %v", r[0])
	}
	if f, _ := r[1].AsFloat(); f != 60 {
		t.Fatalf("min = %v", r[1])
	}
	if f, _ := r[2].AsFloat(); f != 120 {
		t.Fatalf("max = %v", r[2])
	}
	if f, _ := r[3].AsFloat(); f != 90 {
		t.Fatalf("avg = %v", r[3])
	}
	if f, _ := r[4].AsFloat(); f != 360 {
		t.Fatalf("sum = %v", r[4])
	}
}

func TestAggregateIgnoresNulls(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental", "SELECT COUNT(clientname) FROM f838")
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Fatalf("count(clientname) = %v", res.Rows[0][0])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental", "SELECT COUNT(*), SUM(rate) FROM flights WHERE flnu > 999")
	if n, _ := res.Rows[0][0].AsInt(); n != 0 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	if !res.Rows[0][1].IsNull() {
		t.Fatalf("sum over empty = %v", res.Rows[0][1])
	}
}

func TestGroupByHaving(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental",
		`SELECT source, COUNT(*) AS n, AVG(rate) FROM flights
		 GROUP BY source HAVING COUNT(*) > 1 ORDER BY n DESC`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].S != "Houston" {
		t.Fatalf("group = %v", res.Rows[0][0])
	}
	if n, _ := res.Rows[0][1].AsInt(); n != 3 {
		t.Fatalf("n = %v", res.Rows[0][1])
	}
}

func TestCountDistinct(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental", "SELECT COUNT(DISTINCT source) FROM flights")
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Fatalf("count distinct = %v", res.Rows[0][0])
	}
}

func TestJoinTwoTables(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental",
		`SELECT f.flnu, s.seatnu FROM flights f, f838 s
		 WHERE f.flnu = 100 AND s.seatstatus = 'FREE'`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestScalarSubquery(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental",
		"SELECT seatnu FROM f838 WHERE seatnu = (SELECT MIN(seatnu) FROM f838 WHERE seatstatus = 'FREE')")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Fatalf("min free seat = %v", res.Rows[0][0])
	}
}

func TestCorrelatedSubquery(t *testing.T) {
	s := paperStore(t)
	// Flights that are the cheapest from their source.
	res := query(t, s, "continental",
		`SELECT flnu FROM flights f WHERE rate = (SELECT MIN(rate) FROM flights g WHERE g.source = f.source) ORDER BY flnu`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	a, _ := res.Rows[0][0].AsInt()
	b, _ := res.Rows[1][0].AsInt()
	if a != 102 || b != 103 {
		t.Fatalf("cheapest per source = %d, %d", a, b)
	}
}

func TestScalarSubqueryCardinalityError(t *testing.T) {
	s := paperStore(t)
	tx := s.Begin()
	defer tx.Rollback()
	_, err := ExecuteSQL(tx, "continental", "SELECT flnu FROM flights WHERE rate = (SELECT rate FROM flights)")
	if !errors.Is(err, ErrNotScalar) {
		t.Fatalf("err = %v", err)
	}
}

func TestInSubqueryAndList(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental",
		"SELECT flnu FROM flights WHERE flnu IN (100, 103) ORDER BY flnu")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = query(t, s, "continental",
		"SELECT seatnu FROM f838 WHERE seatnu NOT IN (SELECT seatnu FROM f838 WHERE seatstatus = 'TAKEN') ORDER BY seatnu")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestPredicates(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental", "SELECT flnu FROM flights WHERE rate BETWEEN 80 AND 100 ORDER BY flnu")
	if len(res.Rows) != 2 {
		t.Fatalf("between rows = %v", res.Rows)
	}
	res = query(t, s, "continental", "SELECT seatnu FROM f838 WHERE clientname IS NULL")
	if len(res.Rows) != 3 {
		t.Fatalf("is null rows = %v", res.Rows)
	}
	res = query(t, s, "continental", "SELECT seatnu FROM f838 WHERE clientname IS NOT NULL")
	if len(res.Rows) != 1 {
		t.Fatalf("is not null rows = %v", res.Rows)
	}
	res = query(t, s, "continental", "SELECT flnu FROM flights WHERE destination LIKE 'San%'")
	if len(res.Rows) != 3 {
		t.Fatalf("like rows = %v", res.Rows)
	}
	res = query(t, s, "continental", "SELECT flnu FROM flights WHERE NOT (source = 'Houston')")
	if len(res.Rows) != 1 {
		t.Fatalf("not rows = %v", res.Rows)
	}
}

func TestNullComparisonsAreUnknown(t *testing.T) {
	s := paperStore(t)
	// clientname = 'smith' is UNKNOWN for NULL rows -> excluded; and so is
	// its negation.
	a := query(t, s, "continental", "SELECT seatnu FROM f838 WHERE clientname = 'smith'")
	b := query(t, s, "continental", "SELECT seatnu FROM f838 WHERE NOT (clientname = 'smith')")
	if len(a.Rows)+len(b.Rows) != 1 {
		t.Fatalf("three-valued logic broken: %d + %d rows", len(a.Rows), len(b.Rows))
	}
}

func TestScalarFunctions(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental",
		"SELECT UPPER(source), LOWER(day), LENGTH(source), ABS(0 - rate), ROUND(rate / 3, 1), SUBSTR(source, 1, 3), COALESCE(NULL, 'x'), CONCAT(source, '-', day) FROM flights WHERE flnu = 100")
	r := res.Rows[0]
	if r[0].S != "HOUSTON" || r[1].S != "mon" {
		t.Fatalf("upper/lower = %v %v", r[0], r[1])
	}
	if n, _ := r[2].AsInt(); n != 7 {
		t.Fatalf("length = %v", r[2])
	}
	if f, _ := r[3].AsFloat(); f != 100 {
		t.Fatalf("abs = %v", r[3])
	}
	if f, _ := r[4].AsFloat(); f != 33.3 {
		t.Fatalf("round = %v", r[4])
	}
	if r[5].S != "Hou" {
		t.Fatalf("substr = %v", r[5])
	}
	if r[6].S != "x" {
		t.Fatalf("coalesce = %v", r[6])
	}
	if r[7].S != "Houston-mon" {
		t.Fatalf("concat = %v", r[7])
	}
}

func TestUpdatePaperFareRaise(t *testing.T) {
	s := paperStore(t)
	res := exec(t, s, "continental",
		"UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston' AND destination = 'San Antonio'")
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	check := query(t, s, "continental", "SELECT rate FROM flights WHERE flnu = 100")
	f, _ := check.Rows[0][0].AsFloat()
	if f < 109.99 || f > 110.01 {
		t.Fatalf("rate = %v", check.Rows[0][0])
	}
	// Unmatched rows untouched.
	check = query(t, s, "continental", "SELECT rate FROM flights WHERE flnu = 102")
	if f, _ := check.Rows[0][0].AsFloat(); f != 80 {
		t.Fatalf("rate = %v", check.Rows[0][0])
	}
}

func TestUpdateWithSubquery(t *testing.T) {
	s := paperStore(t)
	res := exec(t, s, "continental",
		`UPDATE f838 SET seatstatus = 'TAKEN', clientname = 'wenders'
		 WHERE seatnu = (SELECT MIN(seatnu) FROM f838 WHERE seatstatus = 'FREE')`)
	if res.RowsAffected != 1 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	check := query(t, s, "continental", "SELECT clientname FROM f838 WHERE seatnu = 1")
	if check.Rows[0][0].S != "wenders" {
		t.Fatalf("client = %v", check.Rows[0][0])
	}
}

func TestUpdateUsesPreImage(t *testing.T) {
	s := paperStore(t)
	// Swapping via pre-image semantics: both assignments read old values.
	exec(t, s, "continental", "UPDATE flights SET dep = arr, arr = dep WHERE flnu = 100")
	check := query(t, s, "continental", "SELECT dep, arr FROM flights WHERE flnu = 100")
	if check.Rows[0][0].S != "09:00" || check.Rows[0][1].S != "08:00" {
		t.Fatalf("swap failed: %v", check.Rows[0])
	}
}

func TestDelete(t *testing.T) {
	s := paperStore(t)
	res := exec(t, s, "continental", "DELETE FROM flights WHERE rate < 90")
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	check := query(t, s, "continental", "SELECT COUNT(*) FROM flights")
	if n, _ := check.Rows[0][0].AsInt(); n != 2 {
		t.Fatalf("remaining = %v", check.Rows[0][0])
	}
}

func TestInsertPartialColumnsAndCoercion(t *testing.T) {
	s := paperStore(t)
	exec(t, s, "continental", "INSERT INTO flights (flnu, source, rate) VALUES (200, 'Dallas', 75)")
	check := query(t, s, "continental", "SELECT destination, rate FROM flights WHERE flnu = 200")
	if !check.Rows[0][0].IsNull() {
		t.Fatalf("dest should be NULL, got %v", check.Rows[0][0])
	}
	if check.Rows[0][1].K != sqlval.KindFloat {
		t.Fatalf("rate kind = %v", check.Rows[0][1].K)
	}
}

func TestInsertSelect(t *testing.T) {
	s := paperStore(t)
	exec(t, s, "continental", "CREATE TABLE cheap (flnu INTEGER, rate FLOAT)")
	res := exec(t, s, "continental", "INSERT INTO cheap SELECT flnu, rate FROM flights WHERE rate < 90")
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	check := query(t, s, "continental", "SELECT COUNT(*) FROM cheap")
	if n, _ := check.Rows[0][0].AsInt(); n != 2 {
		t.Fatalf("cheap rows = %v", check.Rows[0][0])
	}
}

func TestViews(t *testing.T) {
	s := paperStore(t)
	exec(t, s, "continental", "CREATE VIEW sa_flights AS SELECT flnu, rate FROM flights WHERE destination = 'San Antonio'")
	res := query(t, s, "continental", "SELECT COUNT(*) FROM sa_flights")
	if n, _ := res.Rows[0][0].AsInt(); n != 3 {
		t.Fatalf("view rows = %v", res.Rows[0][0])
	}
	// Join a view with a table.
	res = query(t, s, "continental", "SELECT v.flnu FROM sa_flights v, flights f WHERE v.flnu = f.flnu AND f.day = 'mon'")
	if len(res.Rows) != 1 {
		t.Fatalf("join rows = %v", res.Rows)
	}
	exec(t, s, "continental", "DROP VIEW sa_flights")
	tx := s.Begin()
	defer tx.Rollback()
	if _, err := ExecuteSQL(tx, "continental", "SELECT * FROM sa_flights"); err == nil {
		t.Fatal("dropped view still queryable")
	}
}

func TestDescribeTable(t *testing.T) {
	s := paperStore(t)
	tx := s.Begin()
	defer tx.Rollback()
	cols, err := DescribeTable(tx, "continental", "flights")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 7 || cols[0].Name != "flnu" || cols[1].Width != 20 {
		t.Fatalf("cols = %+v", cols)
	}
	if _, err := DescribeTable(tx, "continental", "nope"); err == nil {
		t.Fatal("missing table should error")
	}
}

func TestDescribeView(t *testing.T) {
	s := paperStore(t)
	exec(t, s, "continental", "CREATE VIEW v2 AS SELECT flnu, rate FROM flights")
	tx := s.Begin()
	defer tx.Rollback()
	cols, err := DescribeTable(tx, "continental", "v2")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0].Name != "flnu" {
		t.Fatalf("view cols = %+v", cols)
	}
}

func TestAmbiguousAndUnknownColumns(t *testing.T) {
	s := paperStore(t)
	tx := s.Begin()
	defer tx.Rollback()
	// day exists only in flights, seatnu only in f838 -> fine unqualified.
	if _, err := ExecuteSQL(tx, "continental", "SELECT day, seatnu FROM flights, f838"); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteSQL(tx, "continental", "SELECT bogus FROM flights"); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("unknown col err = %v", err)
	}
	// Self-join makes every column ambiguous unqualified.
	if _, err := ExecuteSQL(tx, "continental", "SELECT flnu FROM flights a, flights b"); !errors.Is(err, ErrAmbiguousColumn) {
		t.Fatalf("ambiguous err = %v", err)
	}
}

func TestOptionalColumnYieldsNull(t *testing.T) {
	s := paperStore(t)
	// f838 has no "rate": the MSQL optional marker degrades to NULL.
	res := query(t, s, "continental", "SELECT seatnu, ~rate FROM f838 WHERE seatnu = 1")
	if !res.Rows[0][1].IsNull() {
		t.Fatalf("optional col = %v", res.Rows[0][1])
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental", "SELECT 1 + 2 AS three")
	if n, _ := res.Rows[0][0].AsInt(); n != 3 {
		t.Fatalf("value = %v", res.Rows[0][0])
	}
	res = query(t, s, "continental", "SELECT 1 WHERE 1 = 2")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDatabaseQualifiedAccess(t *testing.T) {
	s := paperStore(t)
	if err := s.CreateDatabase("scratch"); err != nil {
		t.Fatal(err)
	}
	exec(t, s, "scratch", "CREATE TABLE notes (txt CHAR(40))")
	// Cross-database reference from a session whose current db differs.
	exec(t, s, "scratch", "INSERT INTO scratch.notes VALUES ('hello')")
	res := query(t, s, "continental", "SELECT txt FROM scratch.notes")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "hello" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDDLThroughEngine(t *testing.T) {
	s := paperStore(t)
	exec(t, s, "continental", "CREATE DATABASE extra")
	exec(t, s, "extra", "CREATE TABLE t (a INTEGER)")
	exec(t, s, "extra", "DROP TABLE t")
	exec(t, s, "continental", "DROP TABLE IF EXISTS never_there")
	exec(t, s, "continental", "DROP DATABASE extra")
	tx := s.Begin()
	defer tx.Rollback()
	if _, err := ExecuteSQL(tx, "extra", "SELECT 1 FROM t"); err == nil {
		t.Fatal("dropped database still accessible")
	}
}

func TestLimitZero(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental", "SELECT flnu FROM flights LIMIT 0")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestQualifiedStar(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental", "SELECT f.* FROM flights f, f838 s WHERE s.seatnu = 1")
	if len(res.Columns) != 7 || len(res.Rows) != 4 {
		t.Fatalf("cols=%d rows=%d", len(res.Columns), len(res.Rows))
	}
}

// Property: UPDATE then reverse UPDATE restores all rates (the paper's
// compensation pattern rate/1.1 after rate*1.1, within float tolerance).
func TestQuickCompensationRestoresRates(t *testing.T) {
	s := paperStore(t)
	readRates := func() []float64 {
		res := query(t, s, "continental", "SELECT rate FROM flights ORDER BY flnu")
		var out []float64
		for _, r := range res.Rows {
			f, _ := r[0].AsFloat()
			out = append(out, f)
		}
		return out
	}
	f := func(mult uint8) bool {
		factor := 1.0 + float64(mult%50+1)/100.0
		before := readRates()
		factorStr := sqlval.Float(factor).String()
		exec(t, s, "continental", "UPDATE flights SET rate = rate * "+factorStr+" WHERE source = 'Houston'")
		exec(t, s, "continental", "UPDATE flights SET rate = rate / "+factorStr+" WHERE source = 'Houston'")
		after := readRates()
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if diff := before[i] - after[i]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: COUNT(*) equals the number of inserted rows for arbitrary
// small batches.
func TestQuickInsertCount(t *testing.T) {
	s := relstore.NewStore()
	if err := s.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	if _, err := ExecuteSQL(tx, "d", "CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	total := 0
	f := func(k uint8) bool {
		n := int(k % 8)
		tx := s.Begin()
		for i := 0; i < n; i++ {
			if _, err := ExecuteSQL(tx, "d", "INSERT INTO t VALUES (1)"); err != nil {
				tx.Rollback()
				return false
			}
		}
		tx.Commit()
		total += n
		res, err := func() (*Result, error) {
			tx := s.Begin()
			defer tx.Rollback()
			return ExecuteSQL(tx, "d", "SELECT COUNT(*) FROM t")
		}()
		if err != nil {
			return false
		}
		got, _ := res.Rows[0][0].AsInt()
		return got == int64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorMessagesMentionObjects(t *testing.T) {
	s := paperStore(t)
	tx := s.Begin()
	defer tx.Rollback()
	_, err := ExecuteSQL(tx, "continental", "SELECT * FROM nothere")
	if err == nil || !strings.Contains(err.Error(), "nothere") {
		t.Fatalf("err = %v", err)
	}
	_, err = ExecuteSQL(tx, "nodb", "SELECT 1 FROM t")
	if err == nil || !strings.Contains(err.Error(), "nodb") {
		t.Fatalf("err = %v", err)
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	s := paperStore(t)
	// Implicit single group: HAVING filters the lone aggregate row.
	res := query(t, s, "continental", "SELECT COUNT(*) FROM flights HAVING COUNT(*) > 10")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = query(t, s, "continental", "SELECT COUNT(*) FROM flights HAVING COUNT(*) > 2")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderByAggregateExpression(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental",
		"SELECT source FROM flights GROUP BY source ORDER BY SUM(rate) DESC")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "Houston" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestGroupByExpression(t *testing.T) {
	s := paperStore(t)
	// Group by a computed bucket.
	res := query(t, s, "continental",
		"SELECT COUNT(*) FROM flights GROUP BY rate > 90 ORDER BY 1")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAggregateOfExpression(t *testing.T) {
	s := paperStore(t)
	res := query(t, s, "continental", "SELECT SUM(rate * 2) FROM flights")
	if f, _ := res.Rows[0][0].AsFloat(); f != 720 {
		t.Fatalf("sum = %v", res.Rows[0][0])
	}
}
