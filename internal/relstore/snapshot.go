package relstore

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"msql/internal/sqlval"
)

// snapshot is the serialized form of a store. Only durable state is
// captured: open transactions, locks and tombstones are not part of a
// snapshot (Save waits for no one — take snapshots on quiescent stores).
type snapshot struct {
	Databases []dbSnapshot
}

type dbSnapshot struct {
	Name   string
	Tables []tableSnapshot
	Views  []View
}

type tableSnapshot struct {
	Name    string
	Columns []Column
	Rows    []Row
}

// Save writes a snapshot of all committed data to w.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var snap snapshot
	for _, name := range s.databaseNamesLocked() {
		d := s.databases[name]
		ds := dbSnapshot{Name: d.Name}
		for _, tn := range d.TableNames() {
			t := d.tables[tn]
			ts := tableSnapshot{Name: t.Name, Columns: append([]Column(nil), t.Columns...)}
			t.ForEach(func(idx int, row Row) bool {
				ts.Rows = append(ts.Rows, row)
				return true
			})
			if t.ioErr != nil {
				return t.ioErr
			}
			ds.Tables = append(ds.Tables, ts)
		}
		for _, vn := range d.ViewNames() {
			ds.Views = append(ds.Views, *d.views[vn])
		}
		snap.Databases = append(snap.Databases, ds)
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load replaces the store's contents with a snapshot previously written
// by Save. The store must be quiescent.
func (s *Store) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("relstore: load snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Release the heaps of whatever the snapshot replaces.
	for _, d := range s.databases {
		for _, t := range d.tables {
			t.destroy(s)
		}
	}
	s.databases = make(map[string]*Database, len(snap.Databases))
	for _, ds := range snap.Databases {
		d := &Database{
			Name:   ds.Name,
			tables: make(map[string]*Table, len(ds.Tables)),
			views:  make(map[string]*View, len(ds.Views)),
		}
		for _, ts := range ds.Tables {
			t, err := s.newTable(ts.Name, ts.Columns)
			if err != nil {
				return fmt.Errorf("relstore: load snapshot: %w", err)
			}
			for _, r := range ts.Rows {
				if _, err := t.insertRow(r, false); err != nil {
					return fmt.Errorf("relstore: load snapshot: %w", err)
				}
			}
			d.tables[ts.Name] = t
		}
		for i := range ds.Views {
			v := ds.Views[i]
			d.views[v.Name] = &v
		}
		s.databases[ds.Name] = d
	}
	return nil
}

// databaseNamesLocked returns sorted names; callers hold s.mu.
func (s *Store) databaseNamesLocked() []string {
	names := make([]string, 0, len(s.databases))
	for n := range s.databases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// register concrete value types carried inside rows.
func init() {
	gob.Register(sqlval.Value{})
}
