package relstore

import (
	"fmt"
	"testing"

	"msql/internal/sqlval"
)

func benchStore(b *testing.B, rows int) *Store {
	b.Helper()
	s := NewStore()
	if err := s.CreateDatabase("d"); err != nil {
		b.Fatal(err)
	}
	tx := s.Begin()
	if err := tx.CreateTable("d", "t", []Column{
		{Name: "id", Type: sqlval.KindInt},
		{Name: "val", Type: sqlval.KindFloat},
		{Name: "label", Type: sqlval.KindString, Width: 32},
	}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		row := Row{sqlval.Int(int64(i)), sqlval.Float(float64(i) / 3), sqlval.Str(fmt.Sprintf("label-%d", i))}
		if err := tx.Insert("d", "t", row); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkInsertCommit(b *testing.B) {
	s := benchStore(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin()
		row := Row{sqlval.Int(int64(i)), sqlval.Float(1.5), sqlval.Str("x")}
		if err := tx.Insert("d", "t", row); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan1k(b *testing.B) {
	s := benchStore(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin()
		tbl, err := tx.TableForRead("d", "t")
		if err != nil {
			b.Fatal(err)
		}
		count := 0
		tbl.ForEach(func(idx int, row Row) bool {
			count++
			return true
		})
		if count != 1000 {
			b.Fatalf("count = %d", count)
		}
		tx.Rollback()
	}
}

func BenchmarkUpdateRollback(b *testing.B) {
	s := benchStore(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin()
		if err := tx.Update("d", "t", 0, Row{sqlval.Int(0), sqlval.Float(9), sqlval.Str("y")}); err != nil {
			b.Fatal(err)
		}
		if err := tx.Rollback(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrepareCommitCycle(b *testing.B) {
	s := benchStore(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin()
		if err := tx.Update("d", "t", 0, Row{sqlval.Int(0), sqlval.Float(float64(i)), sqlval.Str("z")}); err != nil {
			b.Fatal(err)
		}
		if err := tx.Prepare(); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
