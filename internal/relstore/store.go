// Package relstore implements the relational storage layer that backs
// each simulated local DBMS: named databases holding tables and view
// definitions, with undo-logged transactions, a visible prepared-to-commit
// state, and table-granularity two-phase locking with timeout-based
// deadlock resolution.
//
// Table data lives in internal/storage heap files behind a per-store
// buffer pool: slotted 4 KiB pages, optionally persisted to a data
// directory, with a B-tree index over each table's declared key columns.
// The transaction layer addresses rows by stable index — the position in
// the table's RID table — so undo records survive any page-level
// relocation the heap performs underneath.
//
// The package is deliberately ignorant of SQL; internal/sqlengine drives it
// through Tx methods. Keeping the storage layer independent lets the LDBMS
// simulator expose exactly the commit-capability heterogeneity the paper's
// semantics depend on.
package relstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"msql/internal/sqlval"
	"msql/internal/storage"
)

// Common storage errors.
var (
	ErrNoDatabase    = errors.New("relstore: no such database")
	ErrNoTable       = errors.New("relstore: no such table")
	ErrTableExists   = errors.New("relstore: table already exists")
	ErrDBExists      = errors.New("relstore: database already exists")
	ErrNoView        = errors.New("relstore: no such view")
	ErrViewExists    = errors.New("relstore: view already exists")
	ErrLockTimeout   = errors.New("relstore: lock wait timeout (possible deadlock)")
	ErrTxDone        = errors.New("relstore: transaction is not active")
	ErrNotPrepared   = errors.New("relstore: transaction is not prepared")
	ErrWidthExceeded = errors.New("relstore: value exceeds declared column width")
	ErrDuplicateKey  = errors.New("relstore: duplicate primary key")
	ErrNullKey       = errors.New("relstore: NULL in primary key column")
)

// Column describes one table column.
type Column struct {
	Name  string
	Type  sqlval.Kind
	Width int  // CHAR(n) width; 0 = unbounded
	Key   bool // part of the primary key: indexed, unique, NOT NULL
}

// Row is one tuple.
type Row []sqlval.Value

// Clone copies the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Table holds a schema and rows. Row data lives on heap pages; the table
// keeps one RID per row in insertion order, and that position — the
// stable index — is how transactions address rows. Deleted rows become
// NilRID tombstones so undo records stay valid within a transaction's
// lifetime; tombstones are compacted when the deleting transaction
// finishes, while it still holds the table exclusively.
type Table struct {
	Name    string
	Columns []Column
	keys    []int // Columns positions with Key set, declaration order
	heap    *storage.HeapFile
	backing storage.Backing
	file    string // file name under the store dir; "" when in memory
	rids    []storage.RID
	dead    int
	index   *storage.BTree // non-nil iff len(keys) > 0
	ioErr   error          // first storage fault, sticky
}

func keyColumns(cols []Column) []int {
	var keys []int
	for i, c := range cols {
		if c.Key {
			keys = append(keys, i)
		}
	}
	return keys
}

// newTable creates an empty table with a fresh heap in s's pool.
func (s *Store) newTable(name string, cols []Column) (*Table, error) {
	t := &Table{
		Name:    name,
		Columns: append([]Column(nil), cols...),
	}
	t.keys = keyColumns(t.Columns)
	if len(t.keys) > 0 {
		t.index = storage.NewBTree()
	}
	b, file, err := s.newBacking(name)
	if err != nil {
		return nil, err
	}
	t.backing = b
	t.file = file
	t.heap = storage.NewHeapFile(s.pool, b)
	return t, nil
}

// destroy releases the table's heap: pool frames, backing, and the data
// file if persistent. Called when a create is rolled back or a drop
// commits.
func (t *Table) destroy(s *Store) {
	t.heap.Drop()
	t.backing.Close()
	if t.file != "" {
		os.Remove(filepath.Join(s.dir, t.file))
	}
}

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return len(t.rids) - t.dead }

// KeyColumns returns the positions of the primary-key columns, in
// declaration order, or nil when the table has no declared key.
func (t *Table) KeyColumns() []int { return append([]int(nil), t.keys...) }

// Err returns the first storage fault the table hit, if any. Reads that
// fail (a torn page surfacing at runtime, an I/O error on a persistent
// heap) latch here rather than panicking mid-scan.
func (t *Table) Err() error { return t.ioErr }

func (t *Table) fault(err error) {
	if t.ioErr == nil {
		t.ioErr = fmt.Errorf("relstore: table %s: %w", t.Name, err)
	}
}

// keyOf encodes row's primary-key columns in index order.
func (t *Table) keyOf(row Row) []byte {
	vals := make([]sqlval.Value, len(t.keys))
	for i, ci := range t.keys {
		vals[i] = row[ci]
	}
	return storage.EncodeKey(nil, vals)
}

// rowAt reads and decodes the row at a stable index; nil for tombstones
// and out-of-range indexes.
func (t *Table) rowAt(idx int) (Row, error) {
	return t.rowAtCounted(idx, nil)
}

// rowAtCounted is rowAt with page traffic recorded on pc (nil-safe). The
// counter is per-call rather than per-table because concurrent readers
// share the Table under shared locks — attribution must follow the
// statement, not the structure.
func (t *Table) rowAtCounted(idx int, pc *storage.PageCounters) (Row, error) {
	if idx < 0 || idx >= len(t.rids) || t.rids[idx].IsNil() {
		return nil, nil
	}
	data, err := t.heap.ReadCounted(t.rids[idx], pc)
	if err != nil {
		return nil, err
	}
	vals, err := storage.DecodeRow(data)
	if err != nil {
		return nil, err
	}
	return Row(vals), nil
}

// RowAt returns the row at a stable index, or nil when deleted.
func (t *Table) RowAt(idx int) Row {
	return t.RowAtCounted(idx, nil)
}

// RowAtCounted is RowAt with page traffic recorded on pc (nil-safe).
func (t *Table) RowAtCounted(idx int, pc *storage.PageCounters) Row {
	row, err := t.rowAtCounted(idx, pc)
	if err != nil {
		t.fault(err)
		return nil
	}
	return row
}

// ForEach iterates live rows with their stable indexes, stopping when fn
// returns false. The caller must hold a lock on the table via a Tx.
func (t *Table) ForEach(fn func(idx int, row Row) bool) {
	t.ForEachCounted(fn, nil)
}

// ForEachCounted is ForEach with page traffic recorded on pc (nil-safe).
func (t *Table) ForEachCounted(fn func(idx int, row Row) bool, pc *storage.PageCounters) {
	for i, rid := range t.rids {
		if rid.IsNil() {
			continue
		}
		data, err := t.heap.ReadCounted(rid, pc)
		if err != nil {
			t.fault(err)
			return
		}
		vals, err := storage.DecodeRow(data)
		if err != nil {
			t.fault(err)
			return
		}
		if !fn(i, Row(vals)) {
			return
		}
	}
}

// TableIter is a pull-based cursor over a table's live rows in stable-
// index order, for volcano-style executors. The caller must hold a lock
// on the table via a Tx for the cursor's lifetime.
type TableIter struct {
	t   *Table
	pos int
	pc  *storage.PageCounters
}

// Iter returns a cursor positioned before the first row.
func (t *Table) Iter() *TableIter { return &TableIter{t: t} }

// IterCounted returns a cursor recording its page traffic on pc
// (nil-safe), attributing reads to the statement driving the cursor.
func (t *Table) IterCounted(pc *storage.PageCounters) *TableIter {
	return &TableIter{t: t, pc: pc}
}

// Next returns the next live row and its stable index; ok is false at
// the end of the table (or on a storage fault, which latches in Err).
func (it *TableIter) Next() (idx int, row Row, ok bool) {
	for it.pos < len(it.t.rids) {
		i := it.pos
		it.pos++
		if it.t.rids[i].IsNil() {
			continue
		}
		r, err := it.t.rowAtCounted(i, it.pc)
		if err != nil {
			it.t.fault(err)
			return 0, nil, false
		}
		return i, r, true
	}
	return 0, nil, false
}

// Reset repositions the cursor before the first row.
func (it *TableIter) Reset() { it.pos = 0 }

// LookupKey probes the primary-key index with the given key values and
// returns the matching row's stable index. ok is false when the table
// has no index, the key shape is wrong, or no row matches.
func (t *Table) LookupKey(vals []sqlval.Value) (int, bool) {
	if t.index == nil || len(vals) != len(t.keys) {
		return -1, false
	}
	v, ok := t.index.Get(storage.EncodeKey(nil, vals))
	if !ok {
		return -1, false
	}
	return int(v), true
}

// insertRow places a validated, normalized row on the heap and returns
// its stable index. checkUnique is false only on undo paths, which
// restore states that were valid when recorded.
func (t *Table) insertRow(row Row, checkUnique bool) (int, error) {
	var key []byte
	if t.index != nil {
		key = t.keyOf(row)
		if checkUnique {
			if _, dup := t.index.Get(key); dup {
				return 0, fmt.Errorf("%w in %s", ErrDuplicateKey, t.Name)
			}
		}
	}
	rid, err := t.heap.Insert(storage.EncodeRow(nil, row))
	if err != nil {
		return 0, err
	}
	idx := len(t.rids)
	t.rids = append(t.rids, rid)
	if t.index != nil {
		t.index.Insert(key, int64(idx))
	}
	return idx, nil
}

// updateRow overwrites the row at a stable index.
func (t *Table) updateRow(idx int, row Row, checkUnique bool) error {
	old, err := t.rowAt(idx)
	if err != nil {
		return err
	}
	if old == nil {
		return fmt.Errorf("relstore: update of missing row %d in %s", idx, t.Name)
	}
	var okey, nkey []byte
	if t.index != nil {
		okey, nkey = t.keyOf(old), t.keyOf(row)
		if checkUnique && !bytes.Equal(okey, nkey) {
			if _, dup := t.index.Get(nkey); dup {
				return fmt.Errorf("%w in %s", ErrDuplicateKey, t.Name)
			}
		}
	}
	nrid, err := t.heap.Update(t.rids[idx], storage.EncodeRow(nil, row))
	if err != nil {
		return err
	}
	t.rids[idx] = nrid
	if t.index != nil && !bytes.Equal(okey, nkey) {
		t.index.Delete(okey)
		t.index.Insert(nkey, int64(idx))
	}
	return nil
}

// deleteRow tombstones the row at a stable index and returns its prior
// contents for the undo log.
func (t *Table) deleteRow(idx int) (Row, error) {
	old, err := t.rowAt(idx)
	if err != nil {
		return nil, err
	}
	if old == nil {
		return nil, fmt.Errorf("relstore: delete of missing row %d in %s", idx, t.Name)
	}
	if err := t.heap.Delete(t.rids[idx]); err != nil {
		return nil, err
	}
	t.rids[idx] = storage.NilRID
	t.dead++
	if t.index != nil {
		t.index.Delete(t.keyOf(old))
	}
	return old, nil
}

// restoreRow undoes a delete: the row returns to the heap under its old
// stable index (its page placement may differ; nothing observes that).
func (t *Table) restoreRow(idx int, row Row) error {
	if idx < 0 || idx >= len(t.rids) || !t.rids[idx].IsNil() {
		return nil
	}
	rid, err := t.heap.Insert(storage.EncodeRow(nil, row))
	if err != nil {
		return err
	}
	t.rids[idx] = rid
	t.dead--
	if t.index != nil {
		t.index.Insert(t.keyOf(row), int64(idx))
	}
	return nil
}

// compact squeezes tombstones out of the RID table, renumbering stable
// indexes. The caller must hold the table exclusively: stable indexes
// handed to other transactions die here. Index entries are remapped in
// place — keys do not change, only the positions they point at.
func (t *Table) compact() {
	if t.dead == 0 {
		return
	}
	remap := make([]int64, len(t.rids))
	live := t.rids[:0]
	for i, rid := range t.rids {
		if rid.IsNil() {
			remap[i] = -1
			continue
		}
		remap[i] = int64(len(live))
		live = append(live, rid)
	}
	t.rids = live
	t.dead = 0
	if t.index != nil {
		type kv struct {
			k []byte
			v int64
		}
		var ents []kv
		t.index.Ascend(nil, func(k []byte, v int64) bool {
			if remap[v] != v {
				ents = append(ents, kv{k, remap[v]})
			}
			return true
		})
		for _, e := range ents {
			t.index.Insert(e.k, e.v)
		}
	}
}

// View is a stored view definition. The definition is kept as SQL text so
// the storage layer stays parser-independent.
type View struct {
	Name       string
	Definition string
}

// Database is a named collection of tables and views.
type Database struct {
	Name   string
	tables map[string]*Table
	views  map[string]*View
}

// TableNames returns the sorted table names.
func (d *Database) TableNames() []string {
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ViewNames returns the sorted view names.
func (d *Database) ViewNames() []string {
	names := make([]string, 0, len(d.views))
	for n := range d.views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table returns the named table.
func (d *Database) Table(name string) (*Table, error) {
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoTable, d.Name, name)
	}
	return t, nil
}

// View returns the named view.
func (d *Database) View(name string) (*View, error) {
	v, ok := d.views[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoView, d.Name, name)
	}
	return v, nil
}

// Store is the storage root of one simulated DBMS server: databases over
// a shared buffer pool, optionally persisted to a data directory.
type Store struct {
	mu        sync.RWMutex
	databases map[string]*Database
	locks     *lockManager
	nextTx    int64
	pool      *storage.Pool
	dir       string // "" = memory-only
	nextFile  int64  // atomic; names heap files uniquely
}

// NewStore returns an empty in-memory store with the default pool size.
func NewStore() *Store {
	s, _ := Open(Options{})
	return s
}

// Pool returns the store's buffer pool, for stats surfaces.
func (s *Store) Pool() *storage.Pool { return s.pool }

// Dir returns the data directory, or "" for an in-memory store.
func (s *Store) Dir() string { return s.dir }

// newBacking creates the page store for one new table: a file under the
// data directory, or memory.
func (s *Store) newBacking(table string) (storage.Backing, string, error) {
	if s.dir == "" {
		return storage.NewMemBacking(), "", nil
	}
	n := atomic.AddInt64(&s.nextFile, 1)
	file := fmt.Sprintf("t%06d.heap", n)
	fb, err := storage.OpenFileBacking(filepath.Join(s.dir, file))
	if err != nil {
		return nil, "", err
	}
	return fb, file, nil
}

// CreateDatabase adds a database outside any transaction (bootstrap use).
func (s *Store) CreateDatabase(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.databases[name]; ok {
		return fmt.Errorf("%w: %s", ErrDBExists, name)
	}
	s.databases[name] = &Database{
		Name:   name,
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
	}
	return nil
}

// DropDatabase removes a database outside any transaction, releasing the
// heaps of its tables.
func (s *Store) DropDatabase(name string) error {
	s.mu.Lock()
	d, ok := s.databases[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoDatabase, name)
	}
	delete(s.databases, name)
	s.mu.Unlock()
	for _, t := range d.tables {
		t.destroy(s)
	}
	return nil
}

// Database returns the named database.
func (s *Store) Database(name string) (*Database, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.databases[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDatabase, name)
	}
	return d, nil
}

// DatabaseNames returns the sorted database names.
func (s *Store) DatabaseNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.databases))
	for n := range s.databases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Clone deep-copies the store's data (not its lock or transaction state)
// into a fresh in-memory store. Benchmarks use it to reset working sets.
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := NewStore()
	for dn, d := range s.databases {
		nd := &Database{Name: dn, tables: make(map[string]*Table), views: make(map[string]*View)}
		for tn, t := range d.tables {
			nt, err := c.newTable(tn, t.Columns)
			if err != nil {
				continue // memory backing cannot fail
			}
			t.ForEach(func(idx int, row Row) bool {
				_, err := nt.insertRow(row.Clone(), false)
				return err == nil
			})
			nd.tables[tn] = nt
		}
		for vn, v := range d.views {
			vv := *v
			nd.views[vn] = &vv
		}
		c.databases[dn] = nd
	}
	return c
}
