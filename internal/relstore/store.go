// Package relstore implements the in-memory relational storage layer that
// backs each simulated local DBMS: named databases holding tables and view
// definitions, with undo-logged transactions, a visible prepared-to-commit
// state, and table-granularity two-phase locking with timeout-based
// deadlock resolution.
//
// The package is deliberately ignorant of SQL; internal/sqlengine drives it
// through Tx methods. Keeping the storage layer independent lets the LDBMS
// simulator expose exactly the commit-capability heterogeneity the paper's
// semantics depend on.
package relstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"msql/internal/sqlval"
)

// Common storage errors.
var (
	ErrNoDatabase    = errors.New("relstore: no such database")
	ErrNoTable       = errors.New("relstore: no such table")
	ErrTableExists   = errors.New("relstore: table already exists")
	ErrDBExists      = errors.New("relstore: database already exists")
	ErrNoView        = errors.New("relstore: no such view")
	ErrViewExists    = errors.New("relstore: view already exists")
	ErrLockTimeout   = errors.New("relstore: lock wait timeout (possible deadlock)")
	ErrTxDone        = errors.New("relstore: transaction is not active")
	ErrNotPrepared   = errors.New("relstore: transaction is not prepared")
	ErrWidthExceeded = errors.New("relstore: value exceeds declared column width")
)

// Column describes one table column.
type Column struct {
	Name  string
	Type  sqlval.Kind
	Width int // CHAR(n) width; 0 = unbounded
}

// Row is one tuple.
type Row []sqlval.Value

// Clone copies the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Table holds a schema and rows. Deleted rows become nil tombstones so
// that undo records can address rows by stable index within a
// transaction's lifetime; tombstones are compacted when no transaction
// holds the table.
type Table struct {
	Name    string
	Columns []Column
	rows    []Row
	dead    int
}

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return len(t.rows) - t.dead }

func (t *Table) compact() {
	if t.dead == 0 {
		return
	}
	live := t.rows[:0]
	for _, r := range t.rows {
		if r != nil {
			live = append(live, r)
		}
	}
	t.rows = live
	t.dead = 0
}

// View is a stored view definition. The definition is kept as SQL text so
// the storage layer stays parser-independent.
type View struct {
	Name       string
	Definition string
}

// Database is a named collection of tables and views.
type Database struct {
	Name   string
	tables map[string]*Table
	views  map[string]*View
}

// TableNames returns the sorted table names.
func (d *Database) TableNames() []string {
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ViewNames returns the sorted view names.
func (d *Database) ViewNames() []string {
	names := make([]string, 0, len(d.views))
	for n := range d.views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table returns the named table.
func (d *Database) Table(name string) (*Table, error) {
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoTable, d.Name, name)
	}
	return t, nil
}

// View returns the named view.
func (d *Database) View(name string) (*View, error) {
	v, ok := d.views[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoView, d.Name, name)
	}
	return v, nil
}

// Store is the storage root of one simulated DBMS server.
type Store struct {
	mu        sync.RWMutex
	databases map[string]*Database
	locks     *lockManager
	nextTx    int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		databases: make(map[string]*Database),
		locks:     newLockManager(),
	}
}

// CreateDatabase adds a database outside any transaction (bootstrap use).
func (s *Store) CreateDatabase(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.databases[name]; ok {
		return fmt.Errorf("%w: %s", ErrDBExists, name)
	}
	s.databases[name] = &Database{
		Name:   name,
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
	}
	return nil
}

// DropDatabase removes a database outside any transaction.
func (s *Store) DropDatabase(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.databases[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoDatabase, name)
	}
	delete(s.databases, name)
	return nil
}

// Database returns the named database.
func (s *Store) Database(name string) (*Database, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.databases[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDatabase, name)
	}
	return d, nil
}

// DatabaseNames returns the sorted database names.
func (s *Store) DatabaseNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.databases))
	for n := range s.databases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Clone deep-copies the store's data (not its lock or transaction state).
// Benchmarks use it to reset working sets cheaply.
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := NewStore()
	for dn, d := range s.databases {
		nd := &Database{Name: dn, tables: make(map[string]*Table), views: make(map[string]*View)}
		for tn, t := range d.tables {
			nt := &Table{Name: tn, Columns: append([]Column(nil), t.Columns...)}
			for _, r := range t.rows {
				if r != nil {
					nt.rows = append(nt.rows, r.Clone())
				}
			}
			nd.tables[tn] = nt
		}
		for vn, v := range d.views {
			vv := *v
			nd.views[vn] = &vv
		}
		c.databases[dn] = nd
	}
	return c
}
