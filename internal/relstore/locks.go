package relstore

import (
	"sync"
	"time"
)

// LockMode is the strength of a table lock.
type LockMode uint8

// Lock modes: shared for readers, exclusive for writers and DDL.
const (
	LockShared LockMode = iota
	LockExclusive
)

func (m LockMode) String() string {
	if m == LockShared {
		return "S"
	}
	return "X"
}

// lockManager grants table-granularity S/X locks to transactions, waiting
// up to a deadline on conflict. Timeouts stand in for local deadlock
// detection, one of the abort causes the paper lists for subqueries.
type lockManager struct {
	mu    sync.Mutex
	locks map[string]*entityLock
}

func newLockManager() *lockManager {
	return &lockManager{locks: make(map[string]*entityLock)}
}

type entityLock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	holders map[int64]LockMode
}

func (lm *lockManager) get(key string) *entityLock {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	l, ok := lm.locks[key]
	if !ok {
		l = &entityLock{holders: make(map[int64]LockMode)}
		l.cond = sync.NewCond(&l.mu)
		lm.locks[key] = l
	}
	return l
}

// acquire grants mode on key to tx, waiting up to timeout. A transaction
// already holding the key upgrades in place when it is the sole holder.
func (lm *lockManager) acquire(txID int64, key string, mode LockMode, timeout time.Duration) error {
	l := lm.get(key)
	l.mu.Lock()
	defer l.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for !l.compatible(txID, mode) {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return ErrLockTimeout
		}
		timer := time.AfterFunc(remaining, l.cond.Broadcast)
		l.cond.Wait()
		timer.Stop()
	}
	if cur, ok := l.holders[txID]; !ok || mode == LockExclusive && cur == LockShared {
		l.holders[txID] = mode
	}
	return nil
}

// compatible reports whether tx may take mode given current holders.
// Callers must hold l.mu.
func (l *entityLock) compatible(txID int64, mode LockMode) bool {
	for id, held := range l.holders {
		if id == txID {
			continue
		}
		if mode == LockExclusive || held == LockExclusive {
			return false
		}
	}
	return true
}

// releaseAll drops every lock tx holds.
func (lm *lockManager) releaseAll(txID int64) {
	lm.mu.Lock()
	keys := make([]*entityLock, 0, len(lm.locks))
	for _, l := range lm.locks {
		keys = append(keys, l)
	}
	lm.mu.Unlock()
	for _, l := range keys {
		l.mu.Lock()
		if _, ok := l.holders[txID]; ok {
			delete(l.holders, txID)
			l.cond.Broadcast()
		}
		l.mu.Unlock()
	}
}
