package relstore

import (
	"errors"
	"fmt"
	"testing"

	"msql/internal/sqlval"
)

func keyedStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateDatabase("db"); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	err = tx.CreateTable("db", "kv", []Column{
		{Name: "k", Type: sqlval.KindInt, Key: true},
		{Name: "v", Type: sqlval.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPrimaryKeyUniqueAndNotNull(t *testing.T) {
	s := keyedStore(t, "")
	tx := s.Begin()
	if err := tx.Insert("db", "kv", Row{sqlval.Int(1), sqlval.Str("one")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("db", "kv", Row{sqlval.Int(1), sqlval.Str("dup")}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate insert err = %v", err)
	}
	if err := tx.Insert("db", "kv", Row{sqlval.Null(), sqlval.Str("nil")}); !errors.Is(err, ErrNullKey) {
		t.Fatalf("null key err = %v", err)
	}
	if err := tx.Insert("db", "kv", Row{sqlval.Int(2), sqlval.Str("two")}); err != nil {
		t.Fatal(err)
	}
	// Updating a row onto an existing key is rejected; onto a fresh key is
	// not; updating in place (same key) is always fine.
	if err := tx.Update("db", "kv", 1, Row{sqlval.Int(1), sqlval.Str("clash")}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("update onto taken key err = %v", err)
	}
	if err := tx.Update("db", "kv", 1, Row{sqlval.Int(3), sqlval.Str("three")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("db", "kv", 1, Row{sqlval.Int(3), sqlval.Str("still three")}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	// The index tracked all of it.
	d, _ := s.Database("db")
	tbl, _ := d.Table("kv")
	if idx, ok := tbl.LookupKey([]sqlval.Value{sqlval.Int(3)}); !ok || tbl.RowAt(idx)[1].S != "still three" {
		t.Fatalf("LookupKey(3) = %d,%v", idx, ok)
	}
	if _, ok := tbl.LookupKey([]sqlval.Value{sqlval.Int(99)}); ok {
		t.Fatal("LookupKey found a missing key")
	}
}

func TestIndexSurvivesRollbackAndCompaction(t *testing.T) {
	s := keyedStore(t, "")
	tx := s.Begin()
	for i := 0; i < 10; i++ {
		if err := tx.Insert("db", "kv", Row{sqlval.Int(int64(i)), sqlval.Str(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()

	// Rollback of delete+update restores index entries.
	tx = s.Begin()
	if err := tx.Delete("db", "kv", 3); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("db", "kv", 4, Row{sqlval.Int(40), sqlval.Str("moved")}); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	d, _ := s.Database("db")
	tbl, _ := d.Table("kv")
	for i := 0; i < 10; i++ {
		idx, ok := tbl.LookupKey([]sqlval.Value{sqlval.Int(int64(i))})
		if !ok {
			t.Fatalf("key %d lost after rollback", i)
		}
		if got := tbl.RowAt(idx); got[0].I != int64(i) {
			t.Fatalf("key %d points at row %v", i, got)
		}
	}
	if _, ok := tbl.LookupKey([]sqlval.Value{sqlval.Int(40)}); ok {
		t.Fatal("rolled-back key 40 still indexed")
	}

	// Committed deletes compact the table; the index must follow the
	// renumbered stable indexes.
	tx = s.Begin()
	for _, idx := range []int{0, 2, 4} {
		if err := tx.Delete("db", "kv", idx); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	if tbl.dead != 0 {
		t.Fatalf("dead = %d after commit", tbl.dead)
	}
	for _, k := range []int64{1, 3, 5, 6, 7, 8, 9} {
		idx, ok := tbl.LookupKey([]sqlval.Value{sqlval.Int(k)})
		if !ok {
			t.Fatalf("key %d lost after compaction", k)
		}
		if got := tbl.RowAt(idx); got == nil || got[0].I != k {
			t.Fatalf("key %d remapped to wrong row %v", k, got)
		}
	}
	for _, k := range []int64{0, 2, 4} {
		if _, ok := tbl.LookupKey([]sqlval.Value{sqlval.Int(k)}); ok {
			t.Fatalf("deleted key %d still indexed", k)
		}
	}
}

func TestPersistCheckpointReopen(t *testing.T) {
	dir := t.TempDir()
	s := keyedStore(t, dir)
	tx := s.Begin()
	for i := 0; i < 500; i++ {
		if err := tx.Insert("db", "kv", Row{sqlval.Int(int64(i)), sqlval.Str(fmt.Sprintf("value-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	tx = s.Begin()
	if err := tx.CreateView("db", "vw", "SELECT k FROM kv"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir, PoolPages: 64})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	d, err := s2.Database("db")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := d.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 500 {
		t.Fatalf("rows after reopen = %d", tbl.RowCount())
	}
	// Keys, schema and the rebuilt index survive.
	if !tbl.Columns[0].Key || tbl.Columns[1].Width != 0 {
		t.Fatalf("schema after reopen = %+v", tbl.Columns)
	}
	idx, ok := tbl.LookupKey([]sqlval.Value{sqlval.Int(250)})
	if !ok {
		t.Fatal("index not rebuilt on reopen")
	}
	if row := tbl.RowAt(idx); row[1].S != "value-250" {
		t.Fatalf("row via rebuilt index = %v", row)
	}
	if _, err := d.View("vw"); err != nil {
		t.Fatalf("view lost: %v", err)
	}
	// And the store keeps working.
	tx = s2.Begin()
	if err := tx.Insert("db", "kv", Row{sqlval.Int(1000), sqlval.Str("post-reopen")}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	s2.Close()
}

func TestUncheckpointedWorkIsLost(t *testing.T) {
	// The durability unit is the checkpoint: rows committed after the last
	// checkpoint may or may not reach the heap file (steal policy), and the
	// catalog only records checkpointed schemas. Simulate a crash by
	// reopening without Close.
	dir := t.TempDir()
	s := keyedStore(t, dir)
	tx := s.Begin()
	tx.Insert("db", "kv", Row{sqlval.Int(1), sqlval.Str("durable")})
	tx.Commit()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx = s.Begin()
	tx.Insert("db", "kv", Row{sqlval.Int(2), sqlval.Str("volatile")})
	tx.Commit()
	// No checkpoint, no Close: crash.

	s2, err := Open(Options{Dir: dir, PoolPages: 64})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	d, _ := s2.Database("db")
	tbl, err := d.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	if idx, ok := tbl.LookupKey([]sqlval.Value{sqlval.Int(1)}); !ok || tbl.RowAt(idx) == nil {
		t.Fatal("checkpointed row lost")
	}
}

func TestDropTableRemovesHeapFile(t *testing.T) {
	dir := t.TempDir()
	s := keyedStore(t, dir)
	tx := s.Begin()
	tx.Insert("db", "kv", Row{sqlval.Int(1), sqlval.Str("x")})
	tx.Commit()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx = s.Begin()
	if err := tx.DropTable("db", "kv"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(Options{Dir: dir, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s2.Database("db")
	if _, err := d.Table("kv"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("dropped table resurfaced: %v", err)
	}
}
