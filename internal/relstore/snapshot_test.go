package relstore

import (
	"bytes"
	"strings"
	"testing"

	"msql/internal/sqlval"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := carRentalStore(t)
	tx := s.Begin()
	if err := tx.CreateView("avis", "v", "SELECT code FROM cars"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	loaded := NewStore()
	if err := loaded.Load(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := loaded.Database("avis")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := d.Table("cars")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 3 {
		t.Fatalf("rows = %d", tbl.RowCount())
	}
	if tbl.ColumnIndex("rate") != 2 {
		t.Fatalf("schema lost: %+v", tbl.Columns)
	}
	// Values intact, including types.
	row := tbl.RowAt(0)
	if row[0] != sqlval.Int(1) || row[1].S != "suv" {
		t.Fatalf("row = %v", row)
	}
	v, err := d.View("v")
	if err != nil || v.Definition != "SELECT code FROM cars" {
		t.Fatalf("view = %+v, %v", v, err)
	}
	// The loaded store is fully operational.
	tx2 := loaded.Begin()
	if err := tx2.Insert("avis", "cars", Row{sqlval.Int(9), sqlval.Str("van"), sqlval.Float(1), sqlval.Str("ok")}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotExcludesUncommitted(t *testing.T) {
	s := carRentalStore(t)
	// Snapshot after a committed delete: tombstones must not resurrect.
	tx := s.Begin()
	if err := tx.Delete("avis", "cars", 0); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore()
	if err := loaded.Load(&buf); err != nil {
		t.Fatal(err)
	}
	d, _ := loaded.Database("avis")
	tbl, _ := d.Table("cars")
	if tbl.RowCount() != 2 {
		t.Fatalf("rows = %d", tbl.RowCount())
	}
}

func TestLoadGarbage(t *testing.T) {
	s := NewStore()
	if err := s.Load(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage should fail to load")
	}
}
