package relstore

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"msql/internal/sqlval"
)

func carRentalStore(t testing.TB) *Store {
	s := NewStore()
	if err := s.CreateDatabase("avis"); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	err := tx.CreateTable("avis", "cars", []Column{
		{Name: "code", Type: sqlval.KindInt},
		{Name: "cartype", Type: sqlval.KindString, Width: 20},
		{Name: "rate", Type: sqlval.KindFloat},
		{Name: "carst", Type: sqlval.KindString, Width: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{sqlval.Int(1), sqlval.Str("suv"), sqlval.Float(49.5), sqlval.Str("available")},
		{sqlval.Int(2), sqlval.Str("compact"), sqlval.Float(29.5), sqlval.Str("rented")},
		{sqlval.Int(3), sqlval.Str("luxury"), sqlval.Float(99.0), sqlval.Str("available")},
	}
	for _, r := range rows {
		if err := tx.Insert("avis", "cars", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateAndDropDatabase(t *testing.T) {
	s := NewStore()
	if err := s.CreateDatabase("avis"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateDatabase("avis"); !errors.Is(err, ErrDBExists) {
		t.Fatalf("dup create err = %v", err)
	}
	if _, err := s.Database("none"); !errors.Is(err, ErrNoDatabase) {
		t.Fatalf("missing db err = %v", err)
	}
	if err := s.DropDatabase("avis"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropDatabase("avis"); !errors.Is(err, ErrNoDatabase) {
		t.Fatalf("double drop err = %v", err)
	}
}

func TestInsertScanCommit(t *testing.T) {
	s := carRentalStore(t)
	tx := s.Begin()
	tbl, err := tx.TableForRead("avis", "cars")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 3 {
		t.Fatalf("rows = %d", tbl.RowCount())
	}
	var count int
	tbl.ForEach(func(idx int, row Row) bool {
		count++
		return true
	})
	if count != 3 {
		t.Fatalf("ForEach visited %d", count)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackUndoesInsertUpdateDelete(t *testing.T) {
	s := carRentalStore(t)
	tx := s.Begin()
	if err := tx.Insert("avis", "cars", Row{sqlval.Int(4), sqlval.Str("van"), sqlval.Float(59), sqlval.Str("available")}); err != nil {
		t.Fatal(err)
	}
	tbl, _ := tx.TableForWrite("avis", "cars")
	if err := tx.Update("avis", "cars", 0, Row{sqlval.Int(1), sqlval.Str("suv"), sqlval.Float(999), sqlval.Str("available")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("avis", "cars", 1); err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 3 { // 3 + 1 insert - 1 delete
		t.Fatalf("mid-tx rows = %d", tbl.RowCount())
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	check := s.Begin()
	tbl, err := check.TableForRead("avis", "cars")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 3 {
		t.Fatalf("post-rollback rows = %d", tbl.RowCount())
	}
	f, _ := tbl.RowAt(0)[2].AsFloat()
	if f != 49.5 {
		t.Fatalf("rate after rollback = %v", tbl.RowAt(0)[2])
	}
	if tbl.RowAt(1) == nil {
		t.Fatal("deleted row not restored")
	}
	check.Rollback()
}

func TestPreparedStateVisible(t *testing.T) {
	s := carRentalStore(t)
	tx := s.Begin()
	if err := tx.Delete("avis", "cars", 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != TxPrepared {
		t.Fatalf("state = %s", tx.State())
	}
	// Work is forbidden in the prepared state.
	if err := tx.Insert("avis", "cars", Row{sqlval.Int(9), sqlval.Str("x"), sqlval.Null(), sqlval.Str("s")}); !errors.Is(err, ErrTxDone) {
		t.Fatalf("insert in prepared state err = %v", err)
	}
	// Commit from prepared works.
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != TxCommitted {
		t.Fatalf("state = %s", tx.State())
	}
}

func TestPreparedThenRollback(t *testing.T) {
	s := carRentalStore(t)
	tx := s.Begin()
	if err := tx.Delete("avis", "cars", 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	check := s.Begin()
	tbl, _ := check.TableForRead("avis", "cars")
	if tbl.RowCount() != 3 {
		t.Fatalf("rows = %d", tbl.RowCount())
	}
	check.Rollback()
}

func TestDoubleCommitFails(t *testing.T) {
	s := carRentalStore(t)
	tx := s.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit err = %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("rollback after commit err = %v", err)
	}
}

func TestDDLRollback(t *testing.T) {
	s := carRentalStore(t)
	tx := s.Begin()
	if err := tx.CreateTable("avis", "tmp", []Column{{Name: "a", Type: sqlval.KindInt}}); err != nil {
		t.Fatal(err)
	}
	if err := tx.DropTable("avis", "cars"); err != nil {
		t.Fatal(err)
	}
	if err := tx.CreateDatabase("hertz"); err != nil {
		t.Fatal(err)
	}
	if err := tx.CreateView("avis", "v", "SELECT code FROM cars"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	d, err := s.Database("avis")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Table("tmp"); !errors.Is(err, ErrNoTable) {
		t.Fatal("tmp table survived rollback")
	}
	if _, err := d.Table("cars"); err != nil {
		t.Fatal("cars not restored by rollback")
	}
	if _, err := s.Database("hertz"); !errors.Is(err, ErrNoDatabase) {
		t.Fatal("hertz survived rollback")
	}
	if _, err := d.View("v"); !errors.Is(err, ErrNoView) {
		t.Fatal("view survived rollback")
	}
}

func TestDropDatabaseRollbackRestoresData(t *testing.T) {
	s := carRentalStore(t)
	tx := s.Begin()
	if err := tx.DropDatabase("avis"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Database("avis"); err == nil {
		t.Fatal("avis should be gone mid-tx")
	}
	tx.Rollback()
	d, err := s.Database("avis")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := d.Table("cars")
	if err != nil || tbl.RowCount() != 3 {
		t.Fatalf("restore failed: %v, rows=%d", err, tbl.RowCount())
	}
}

func TestValidation(t *testing.T) {
	s := carRentalStore(t)
	tx := s.Begin()
	defer tx.Rollback()
	// Wrong arity.
	if err := tx.Insert("avis", "cars", Row{sqlval.Int(1)}); err == nil {
		t.Fatal("arity error expected")
	}
	// Wrong kind.
	if err := tx.Insert("avis", "cars", Row{sqlval.Str("x"), sqlval.Str("a"), sqlval.Null(), sqlval.Str("s")}); err == nil {
		t.Fatal("kind error expected")
	}
	// Width exceeded.
	err := tx.Insert("avis", "cars", Row{sqlval.Int(5), sqlval.Str("this type name is far too long for the column"), sqlval.Null(), sqlval.Str("ok")})
	if !errors.Is(err, ErrWidthExceeded) {
		t.Fatalf("width err = %v", err)
	}
	// NULL always fits; int widens into float column.
	if err := tx.Insert("avis", "cars", Row{sqlval.Int(5), sqlval.Null(), sqlval.Int(42), sqlval.Str("ok")}); err != nil {
		t.Fatal(err)
	}
	tbl, _ := tx.TableForRead("avis", "cars")
	var last Row
	tbl.ForEach(func(idx int, row Row) bool { last = row; return true })
	if last[2].K != sqlval.KindFloat {
		t.Fatalf("int not widened to float: %v", last[2])
	}
}

func TestLockConflictTimeout(t *testing.T) {
	s := carRentalStore(t)
	writer := s.Begin()
	if _, err := writer.TableForWrite("avis", "cars"); err != nil {
		t.Fatal(err)
	}
	reader := s.Begin()
	reader.LockTimeout = 50 * time.Millisecond
	if _, err := reader.TableForRead("avis", "cars"); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("expected lock timeout, got %v", err)
	}
	writer.Commit()
	// After release the reader can proceed.
	reader2 := s.Begin()
	if _, err := reader2.TableForRead("avis", "cars"); err != nil {
		t.Fatal(err)
	}
	reader2.Rollback()
	reader.Rollback()
}

func TestSharedLocksCoexist(t *testing.T) {
	s := carRentalStore(t)
	r1, r2 := s.Begin(), s.Begin()
	if _, err := r1.TableForRead("avis", "cars"); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.TableForRead("avis", "cars"); err != nil {
		t.Fatal(err)
	}
	r1.Commit()
	r2.Commit()
}

func TestLockUpgrade(t *testing.T) {
	s := carRentalStore(t)
	tx := s.Begin()
	if _, err := tx.TableForRead("avis", "cars"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.TableForWrite("avis", "cars"); err != nil {
		t.Fatalf("self-upgrade failed: %v", err)
	}
	tx.Commit()
}

func TestWriterBlocksUntilRelease(t *testing.T) {
	s := carRentalStore(t)
	r := s.Begin()
	if _, err := r.TableForRead("avis", "cars"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		w := s.Begin()
		_, err := w.TableForWrite("avis", "cars")
		if err == nil {
			w.Commit()
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	r.Commit()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("writer failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("writer never unblocked")
	}
}

func TestConcurrentInsertersSerialize(t *testing.T) {
	s := carRentalStore(t)
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := s.Begin()
			tx.LockTimeout = 5 * time.Second
			if err := tx.Insert("avis", "cars", Row{sqlval.Int(int64(100 + i)), sqlval.Str("x"), sqlval.Null(), sqlval.Str("new")}); err != nil {
				t.Error(err)
				tx.Rollback()
				return
			}
			tx.Commit()
		}(i)
	}
	wg.Wait()
	tx := s.Begin()
	tbl, _ := tx.TableForRead("avis", "cars")
	if tbl.RowCount() != 3+n {
		t.Fatalf("rows = %d, want %d", tbl.RowCount(), 3+n)
	}
	tx.Rollback()
}

func TestCloneIsDeep(t *testing.T) {
	s := carRentalStore(t)
	c := s.Clone()
	tx := s.Begin()
	if err := tx.Delete("avis", "cars", 0); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	d, _ := c.Database("avis")
	tbl, _ := d.Table("cars")
	if tbl.RowCount() != 3 {
		t.Fatalf("clone affected by original: rows = %d", tbl.RowCount())
	}
}

func TestTombstoneCompaction(t *testing.T) {
	s := carRentalStore(t)
	tx := s.Begin()
	if err := tx.Delete("avis", "cars", 1); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	d, _ := s.Database("avis")
	tbl, _ := d.Table("cars")
	if tbl.dead != 0 {
		t.Fatalf("tombstones not compacted: dead = %d", tbl.dead)
	}
	if tbl.RowCount() != 2 {
		t.Fatalf("rows = %d", tbl.RowCount())
	}
}

func TestNames(t *testing.T) {
	s := carRentalStore(t)
	s.CreateDatabase("national")
	got := s.DatabaseNames()
	if len(got) != 2 || got[0] != "avis" || got[1] != "national" {
		t.Fatalf("db names = %v", got)
	}
	d, _ := s.Database("avis")
	if names := d.TableNames(); len(names) != 1 || names[0] != "cars" {
		t.Fatalf("table names = %v", names)
	}
	tx := s.Begin()
	tx.CreateView("avis", "v", "SELECT code FROM cars")
	tx.Commit()
	if names := d.ViewNames(); len(names) != 1 || names[0] != "v" {
		t.Fatalf("view names = %v", names)
	}
}

func TestColumnIndex(t *testing.T) {
	s := carRentalStore(t)
	d, _ := s.Database("avis")
	tbl, _ := d.Table("cars")
	if tbl.ColumnIndex("rate") != 2 {
		t.Fatalf("rate idx = %d", tbl.ColumnIndex("rate"))
	}
	if tbl.ColumnIndex("bogus") != -1 {
		t.Fatal("missing column should be -1")
	}
}

func TestDeadlockResolvedByTimeout(t *testing.T) {
	// Classic two-table deadlock: tx1 holds cars and wants trucks, tx2
	// holds trucks and wants cars. The lock-wait timeout breaks it.
	s := carRentalStore(t)
	tx := s.Begin()
	if err := tx.CreateTable("avis", "trucks", []Column{{Name: "id", Type: sqlval.KindInt}}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx1, tx2 := s.Begin(), s.Begin()
	tx1.LockTimeout = 150 * time.Millisecond
	tx2.LockTimeout = 150 * time.Millisecond
	if _, err := tx1.TableForWrite("avis", "cars"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.TableForWrite("avis", "trucks"); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() {
		_, err := tx1.TableForWrite("avis", "trucks")
		errs <- err
	}()
	go func() {
		_, err := tx2.TableForWrite("avis", "cars")
		errs <- err
	}()
	timedOut := 0
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrLockTimeout) {
				timedOut++
			}
		case <-time.After(3 * time.Second):
			t.Fatal("deadlock not resolved")
		}
	}
	if timedOut == 0 {
		t.Fatal("expected at least one lock timeout")
	}
	tx1.Rollback()
	tx2.Rollback()
}

// Property: a transaction that inserts k rows and rolls back leaves the
// table byte-identical in row count and contents.
func TestQuickRollbackRestores(t *testing.T) {
	s := carRentalStore(t)
	f := func(k uint8, del bool) bool {
		before := s.Begin()
		tbl, err := before.TableForRead("avis", "cars")
		if err != nil {
			return false
		}
		want := tbl.RowCount()
		before.Commit()

		tx := s.Begin()
		n := int(k%16) + 1
		for i := 0; i < n; i++ {
			if err := tx.Insert("avis", "cars", Row{sqlval.Int(int64(1000 + i)), sqlval.Str("q"), sqlval.Null(), sqlval.Str("new")}); err != nil {
				tx.Rollback()
				return false
			}
		}
		if del {
			if err := tx.Delete("avis", "cars", 0); err != nil {
				tx.Rollback()
				return false
			}
		}
		tx.Rollback()

		after := s.Begin()
		tbl, err = after.TableForRead("avis", "cars")
		if err != nil {
			return false
		}
		got := tbl.RowCount()
		after.Commit()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
