package relstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"msql/internal/sqlval"
	"msql/internal/storage"
)

// Options configures Open.
type Options struct {
	// Dir is the data directory. Empty means an in-memory store: the
	// same page/pool machinery, backed by RAM.
	Dir string
	// PoolPages is the buffer pool size in 4 KiB frames; 0 means
	// storage.DefaultPoolPages.
	PoolPages int
}

// catalogFile is the store's schema manifest inside the data directory.
const catalogFile = "catalog.json"

// The catalog records schemas and heap-file names; page data lives in
// the .heap files it points at. It is rewritten atomically at each
// checkpoint, so a crash leaves either the old or the new catalog.
type catalog struct {
	NextFile  int64       `json:"next_file"`
	Databases []catalogDB `json:"databases"`
}

type catalogDB struct {
	Name   string         `json:"name"`
	Tables []catalogTable `json:"tables"`
	Views  []catalogView  `json:"views"`
}

type catalogTable struct {
	Name    string       `json:"name"`
	File    string       `json:"file"`
	Columns []catalogCol `json:"columns"`
}

type catalogCol struct {
	Name  string `json:"name"`
	Type  uint8  `json:"type"`
	Width int    `json:"width,omitempty"`
	Key   bool   `json:"key,omitempty"`
}

type catalogView struct {
	Name       string `json:"name"`
	Definition string `json:"definition"`
}

// Open creates or reopens a store. With a data directory, the catalog is
// loaded and every table's heap file is opened with repair enabled: torn
// tail pages are truncated and pages failing their CRC are reinitialized
// (the durability unit is the checkpoint — see Checkpoint). Without one,
// the store is memory-backed.
func Open(opts Options) (*Store, error) {
	pages := opts.PoolPages
	if pages <= 0 {
		pages = storage.DefaultPoolPages
	}
	s := &Store{
		databases: make(map[string]*Database),
		locks:     newLockManager(),
		pool:      storage.NewPool(pages),
		dir:       opts.Dir,
	}
	if opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("relstore: open data dir: %w", err)
	}
	raw, err := os.ReadFile(filepath.Join(opts.Dir, catalogFile))
	if os.IsNotExist(err) {
		return s, nil // fresh directory
	}
	if err != nil {
		return nil, fmt.Errorf("relstore: read catalog: %w", err)
	}
	var cat catalog
	if err := json.Unmarshal(raw, &cat); err != nil {
		return nil, fmt.Errorf("relstore: parse catalog: %w", err)
	}
	s.nextFile = cat.NextFile
	for _, cd := range cat.Databases {
		d := &Database{
			Name:   cd.Name,
			tables: make(map[string]*Table),
			views:  make(map[string]*View),
		}
		for _, ct := range cd.Tables {
			t, err := s.openTable(ct)
			if err != nil {
				return nil, fmt.Errorf("relstore: reopen %s.%s: %w", cd.Name, ct.Name, err)
			}
			d.tables[ct.Name] = t
		}
		for _, cv := range cd.Views {
			d.views[cv.Name] = &View{Name: cv.Name, Definition: cv.Definition}
		}
		s.databases[cd.Name] = d
	}
	return s, nil
}

// openTable attaches one table's heap file, rebuilding its RID table and
// primary-key index by scanning. Stable indexes restart in heap order —
// they only need to stay stable within one server uptime.
func (s *Store) openTable(ct catalogTable) (*Table, error) {
	cols := make([]Column, len(ct.Columns))
	for i, cc := range ct.Columns {
		cols[i] = Column{Name: cc.Name, Type: sqlval.Kind(cc.Type), Width: cc.Width, Key: cc.Key}
	}
	t := &Table{Name: ct.Name, Columns: cols, keys: keyColumns(cols), file: ct.File}
	if len(t.keys) > 0 {
		t.index = storage.NewBTree()
	}
	fb, _, err := storage.RepairFileBacking(filepath.Join(s.dir, ct.File))
	if err != nil {
		return nil, err
	}
	t.backing = fb
	h, _, err := storage.OpenHeapFile(s.pool, fb, storage.OpenOptions{Repair: true})
	if err != nil {
		fb.Close()
		return nil, err
	}
	t.heap = h
	var scanErr error
	err = h.Scan(func(rid storage.RID, data []byte) bool {
		vals, derr := storage.DecodeRow(data)
		if derr != nil {
			scanErr = derr
			return false
		}
		idx := len(t.rids)
		t.rids = append(t.rids, rid)
		if t.index != nil {
			t.index.Insert(t.keyOf(Row(vals)), int64(idx))
		}
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		h.Drop()
		fb.Close()
		return nil, err
	}
	return t, nil
}

// Checkpoint makes the store's current committed state the durable one:
// every dirty page is written back and fsynced, then the catalog is
// atomically replaced. In-memory stores checkpoint trivially.
//
// The pool follows a steal policy: eviction under memory pressure may
// write uncommitted pages to disk between checkpoints. A crash therefore
// recovers to the last checkpoint plus whatever the LDBMS redo/termination
// protocol replays on top; callers that need transactional durability
// checkpoint on commit (see internal/ldbms).
func (s *Store) Checkpoint() error {
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	if s.dir == "" {
		return nil
	}
	s.mu.RLock()
	var cat catalog
	cat.NextFile = s.nextFile
	for _, dn := range s.databaseNamesLocked() {
		d := s.databases[dn]
		cd := catalogDB{Name: dn}
		for _, tn := range d.TableNames() {
			t := d.tables[tn]
			ct := catalogTable{Name: tn, File: t.file}
			for _, c := range t.Columns {
				ct.Columns = append(ct.Columns, catalogCol{
					Name: c.Name, Type: uint8(c.Type), Width: c.Width, Key: c.Key,
				})
			}
			cd.Tables = append(cd.Tables, ct)
			if err := t.backing.Sync(); err != nil {
				s.mu.RUnlock()
				return err
			}
		}
		for _, vn := range d.ViewNames() {
			cd.Views = append(cd.Views, catalogView{Name: vn, Definition: d.views[vn].Definition})
		}
		cat.Databases = append(cat.Databases, cd)
	}
	s.mu.RUnlock()
	raw, err := json.MarshalIndent(&cat, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, catalogFile+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.dir, catalogFile))
}

// Close checkpoints and releases the store's file handles.
func (s *Store) Close() error {
	err := s.Checkpoint()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range s.databases {
		for _, t := range d.tables {
			if cerr := t.backing.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}
