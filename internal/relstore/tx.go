package relstore

import (
	"fmt"
	"sync"
	"time"

	"msql/internal/sqlval"
)

// TxState is the lifecycle state of a transaction. Prepared is the
// externally visible prepared-to-commit state that the paper's VITAL
// semantics require from a 2PC-capable LDBMS.
type TxState uint8

// Transaction states.
const (
	TxActive TxState = iota
	TxPrepared
	TxCommitted
	TxAborted
)

func (s TxState) String() string {
	switch s {
	case TxActive:
		return "active"
	case TxPrepared:
		return "prepared"
	case TxCommitted:
		return "committed"
	case TxAborted:
		return "aborted"
	default:
		return fmt.Sprintf("TxState(%d)", uint8(s))
	}
}

// DefaultLockTimeout is the lock wait budget standing in for local
// deadlock detection.
const DefaultLockTimeout = 2 * time.Second

type undoKind uint8

const (
	undoInsert undoKind = iota
	undoDelete
	undoUpdate
	undoCreateTable
	undoDropTable
	undoCreateDB
	undoDropDB
	undoCreateView
	undoDropView
)

type undoRec struct {
	kind  undoKind
	db    string
	name  string
	idx   int
	row   Row
	table *Table
	dbObj *Database
	view  *View
}

// touchedTable remembers a table this transaction locked and the
// strongest mode it holds, so finishLocked knows which tables it may
// compact while still exclusively locked.
type touchedTable struct {
	tbl  *Table
	mode LockMode
}

// Tx is an undo-logged transaction over a Store. A Tx is not safe for
// concurrent use by multiple goroutines; the session layer serializes it.
type Tx struct {
	store       *Store
	id          int64
	mu          sync.Mutex
	state       TxState
	undo        []undoRec
	touched     map[string]touchedTable
	LockTimeout time.Duration
}

// Begin starts a transaction.
func (s *Store) Begin() *Tx {
	s.mu.Lock()
	s.nextTx++
	id := s.nextTx
	s.mu.Unlock()
	return &Tx{
		store:       s,
		id:          id,
		state:       TxActive,
		touched:     make(map[string]touchedTable),
		LockTimeout: DefaultLockTimeout,
	}
}

// ID returns the transaction id.
func (t *Tx) ID() int64 { return t.id }

// State returns the current lifecycle state.
func (t *Tx) State() TxState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

func (t *Tx) active() error {
	if t.state != TxActive {
		return fmt.Errorf("%w (state %s)", ErrTxDone, t.state)
	}
	return nil
}

func tableKey(db, table string) string { return db + "." + table }
func viewKey(db, view string) string   { return db + ".view:" + view }

func (t *Tx) lock(key string, mode LockMode) error {
	return t.store.locks.acquire(t.id, key, mode, t.LockTimeout)
}

// TableForRead S-locks and returns the table for scanning. Callers may
// read Columns and iterate rows via ForEach while the transaction holds
// the lock.
func (t *Tx) TableForRead(db, table string) (*Table, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.active(); err != nil {
		return nil, err
	}
	d, err := t.store.Database(db)
	if err != nil {
		return nil, err
	}
	tbl, err := d.Table(table)
	if err != nil {
		return nil, err
	}
	if err := t.lock(tableKey(db, table), LockShared); err != nil {
		return nil, err
	}
	// Never downgrade a recorded X touch: the lock manager upgrades in
	// place, and finishLocked compacts only exclusively-held tables.
	if _, ok := t.touched[tableKey(db, table)]; !ok {
		t.touched[tableKey(db, table)] = touchedTable{tbl: tbl, mode: LockShared}
	}
	return tbl, nil
}

// TableForWrite X-locks and returns the table.
func (t *Tx) TableForWrite(db, table string) (*Table, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.active(); err != nil {
		return nil, err
	}
	return t.tableForWriteLocked(db, table)
}

func (t *Tx) tableForWriteLocked(db, table string) (*Table, error) {
	d, err := t.store.Database(db)
	if err != nil {
		return nil, err
	}
	tbl, err := d.Table(table)
	if err != nil {
		return nil, err
	}
	if err := t.lock(tableKey(db, table), LockExclusive); err != nil {
		return nil, err
	}
	t.touched[tableKey(db, table)] = touchedTable{tbl: tbl, mode: LockExclusive}
	return tbl, nil
}

// validate checks arity, kinds, CHAR widths and key nullability against
// the schema.
func (t *Table) validate(row Row) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("relstore: row has %d values, table %s has %d columns", len(row), t.Name, len(t.Columns))
	}
	for i, v := range row {
		c := t.Columns[i]
		if v.IsNull() {
			if c.Key {
				return fmt.Errorf("%w: %s.%s", ErrNullKey, t.Name, c.Name)
			}
			continue
		}
		if v.K != c.Type {
			// Numeric widening is legal: int into float column.
			if c.Type == sqlval.KindFloat && v.K == sqlval.KindInt {
				continue
			}
			return fmt.Errorf("relstore: column %s.%s expects %s, got %s", t.Name, c.Name, c.Type, v.K)
		}
		if c.Type == sqlval.KindString && c.Width > 0 && len(v.S) > c.Width {
			return fmt.Errorf("%w: %s.%s width %d, value %q", ErrWidthExceeded, t.Name, c.Name, c.Width, v.S)
		}
	}
	return nil
}

func normalize(t *Table, row Row) Row {
	out := row.Clone()
	for i, v := range out {
		if !v.IsNull() && t.Columns[i].Type == sqlval.KindFloat && v.K == sqlval.KindInt {
			out[i] = sqlval.Float(float64(v.I))
		}
	}
	return out
}

// Insert appends a row, X-locking the table.
func (t *Tx) Insert(db, table string, row Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.active(); err != nil {
		return err
	}
	tbl, err := t.tableForWriteLocked(db, table)
	if err != nil {
		return err
	}
	if err := tbl.validate(row); err != nil {
		return err
	}
	idx, err := tbl.insertRow(normalize(tbl, row), true)
	if err != nil {
		return err
	}
	t.undo = append(t.undo, undoRec{kind: undoInsert, db: db, name: table, idx: idx})
	return nil
}

// Update replaces the row at idx. The caller must have obtained idx from a
// scan under this transaction (the X lock keeps indexes stable).
func (t *Tx) Update(db, table string, idx int, row Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.active(); err != nil {
		return err
	}
	tbl, err := t.tableForWriteLocked(db, table)
	if err != nil {
		return err
	}
	old := tbl.RowAt(idx)
	if old == nil {
		return fmt.Errorf("relstore: update of missing row %d in %s.%s", idx, db, table)
	}
	if err := tbl.validate(row); err != nil {
		return err
	}
	if err := tbl.updateRow(idx, normalize(tbl, row), true); err != nil {
		return err
	}
	t.undo = append(t.undo, undoRec{kind: undoUpdate, db: db, name: table, idx: idx, row: old})
	return nil
}

// Delete tombstones the row at idx.
func (t *Tx) Delete(db, table string, idx int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.active(); err != nil {
		return err
	}
	tbl, err := t.tableForWriteLocked(db, table)
	if err != nil {
		return err
	}
	old, err := tbl.deleteRow(idx)
	if err != nil {
		return err
	}
	t.undo = append(t.undo, undoRec{kind: undoDelete, db: db, name: table, idx: idx, row: old})
	return nil
}

// CreateTable creates a table inside db.
func (t *Tx) CreateTable(db, name string, cols []Column) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.active(); err != nil {
		return err
	}
	d, err := t.store.Database(db)
	if err != nil {
		return err
	}
	if err := t.lock(tableKey(db, name), LockExclusive); err != nil {
		return err
	}
	if _, ok := d.tables[name]; ok {
		return fmt.Errorf("%w: %s.%s", ErrTableExists, db, name)
	}
	tbl, err := t.store.newTable(name, cols)
	if err != nil {
		return err
	}
	d.tables[name] = tbl
	t.undo = append(t.undo, undoRec{kind: undoCreateTable, db: db, name: name})
	return nil
}

// DropTable removes a table.
func (t *Tx) DropTable(db, name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.active(); err != nil {
		return err
	}
	d, err := t.store.Database(db)
	if err != nil {
		return err
	}
	if err := t.lock(tableKey(db, name), LockExclusive); err != nil {
		return err
	}
	tbl, ok := d.tables[name]
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoTable, db, name)
	}
	delete(d.tables, name)
	t.undo = append(t.undo, undoRec{kind: undoDropTable, db: db, name: name, table: tbl})
	return nil
}

// CreateDatabase creates a database transactionally.
func (t *Tx) CreateDatabase(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.active(); err != nil {
		return err
	}
	if err := t.lock(name, LockExclusive); err != nil {
		return err
	}
	if err := t.store.CreateDatabase(name); err != nil {
		return err
	}
	t.undo = append(t.undo, undoRec{kind: undoCreateDB, name: name})
	return nil
}

// DropDatabase drops a database transactionally.
func (t *Tx) DropDatabase(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.active(); err != nil {
		return err
	}
	if err := t.lock(name, LockExclusive); err != nil {
		return err
	}
	d, err := t.store.Database(name)
	if err != nil {
		return err
	}
	if err := t.store.DropDatabase(name); err != nil {
		return err
	}
	t.undo = append(t.undo, undoRec{kind: undoDropDB, name: name, dbObj: d})
	return nil
}

// CreateView stores a view definition.
func (t *Tx) CreateView(db, name, definition string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.active(); err != nil {
		return err
	}
	d, err := t.store.Database(db)
	if err != nil {
		return err
	}
	if err := t.lock(viewKey(db, name), LockExclusive); err != nil {
		return err
	}
	if _, ok := d.views[name]; ok {
		return fmt.Errorf("%w: %s.%s", ErrViewExists, db, name)
	}
	d.views[name] = &View{Name: name, Definition: definition}
	t.undo = append(t.undo, undoRec{kind: undoCreateView, db: db, name: name})
	return nil
}

// DropView removes a view definition.
func (t *Tx) DropView(db, name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.active(); err != nil {
		return err
	}
	d, err := t.store.Database(db)
	if err != nil {
		return err
	}
	if err := t.lock(viewKey(db, name), LockExclusive); err != nil {
		return err
	}
	v, ok := d.views[name]
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoView, db, name)
	}
	delete(d.views, name)
	t.undo = append(t.undo, undoRec{kind: undoDropView, db: db, name: name, view: v})
	return nil
}

// StoreDatabase returns the named database from the underlying store, for
// catalog metadata lookups by the engine layer.
func (t *Tx) StoreDatabase(name string) (*Database, error) {
	return t.store.Database(name)
}

// Prepare moves the transaction to the visible prepared-to-commit state.
// Locks stay held until Commit or Rollback.
func (t *Tx) Prepare() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.active(); err != nil {
		return err
	}
	t.state = TxPrepared
	return nil
}

// Commit makes all changes durable and releases locks. Valid from the
// active or prepared state.
func (t *Tx) Commit() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != TxActive && t.state != TxPrepared {
		return fmt.Errorf("%w (state %s)", ErrTxDone, t.state)
	}
	t.state = TxCommitted
	// A committed drop is the point of no return for the dropped object's
	// heap pages and data files: release them now that no rollback can
	// resurrect the object.
	for _, u := range t.undo {
		switch u.kind {
		case undoDropTable:
			u.table.destroy(t.store)
		case undoDropDB:
			for _, tbl := range u.dbObj.tables {
				tbl.destroy(t.store)
			}
		}
	}
	t.undo = nil
	t.finishLocked()
	return nil
}

// Rollback undoes all changes in reverse order and releases locks.
func (t *Tx) Rollback() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != TxActive && t.state != TxPrepared {
		return fmt.Errorf("%w (state %s)", ErrTxDone, t.state)
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.applyUndo(t.undo[i])
	}
	t.undo = nil
	t.state = TxAborted
	t.finishLocked()
	return nil
}

func (t *Tx) applyUndo(u undoRec) {
	switch u.kind {
	case undoInsert:
		if d, err := t.store.Database(u.db); err == nil {
			if tbl, ok := d.tables[u.name]; ok && tbl.RowAt(u.idx) != nil {
				if _, err := tbl.deleteRow(u.idx); err != nil {
					tbl.fault(err)
				}
			}
		}
	case undoDelete:
		if d, err := t.store.Database(u.db); err == nil {
			if tbl, ok := d.tables[u.name]; ok {
				if err := tbl.restoreRow(u.idx, u.row); err != nil {
					tbl.fault(err)
				}
			}
		}
	case undoUpdate:
		if d, err := t.store.Database(u.db); err == nil {
			if tbl, ok := d.tables[u.name]; ok && tbl.RowAt(u.idx) != nil {
				if err := tbl.updateRow(u.idx, u.row, false); err != nil {
					tbl.fault(err)
				}
			}
		}
	case undoCreateTable:
		if d, err := t.store.Database(u.db); err == nil {
			if tbl, ok := d.tables[u.name]; ok {
				tbl.destroy(t.store)
				delete(d.tables, u.name)
			}
		}
	case undoDropTable:
		if d, err := t.store.Database(u.db); err == nil {
			d.tables[u.name] = u.table
		}
	case undoCreateDB:
		t.store.mu.Lock()
		delete(t.store.databases, u.name)
		t.store.mu.Unlock()
	case undoDropDB:
		t.store.mu.Lock()
		t.store.databases[u.name] = u.dbObj
		t.store.mu.Unlock()
	case undoCreateView:
		if d, err := t.store.Database(u.db); err == nil {
			delete(d.views, u.name)
		}
	case undoDropView:
		if d, err := t.store.Database(u.db); err == nil {
			d.views[u.name] = u.view
		}
	}
}

// finishLocked compacts tombstoned tables this transaction still holds
// exclusively, then releases its locks. Compaction must precede the
// release: the X lock is what keeps other transactions out of the rows
// being moved — compacting after releaseAll would race a waiter that
// acquires the lock the moment the release broadcasts. Tables touched
// only with S locks are left to their next writer's finish.
func (t *Tx) finishLocked() {
	for _, tt := range t.touched {
		if tt.mode == LockExclusive {
			tt.tbl.compact()
		}
	}
	t.touched = make(map[string]touchedTable)
	t.store.locks.releaseAll(t.id)
}
