// Package translate generates DOL evaluation plans from MSQL statements —
// the translator box of the paper's architecture (Figure 1). It
// implements the semantics of Section 3:
//
//   - multiple queries are decomposed into at most one subquery per
//     database; VITAL subqueries run NOCOMMIT and reach the visible
//     prepared-to-commit state, NON VITAL subqueries autocommit and never
//     affect the global outcome (§3.2.1);
//   - at a synchronization point, either every VITAL subquery commits or
//     every one is rolled back or compensated (§3.2.2);
//   - a VITAL database whose service offers no 2PC must carry a COMP
//     clause, whose compensating subquery runs exactly when the original
//     subquery committed but the global query aborts (§3.3);
//   - multitransactions keep every subquery prepared until the COMMIT
//     point, then walk the acceptable termination states in specification
//     order, committing the members of the first reachable state and
//     rolling back or compensating everything else (§3.4).
package translate

import (
	"errors"
	"fmt"
	"strconv"

	"msql/internal/catalog"
	"msql/internal/decompose"
	"msql/internal/dol"
	"msql/internal/msqlparser"
	"msql/internal/relstore"
	"msql/internal/semvar"
	"msql/internal/sqlparser"
)

// Translation errors.
var (
	ErrVitalNeedsComp = errors.New("translate: VITAL database without 2PC requires a COMP clause")
	ErrAmbiguousDML   = errors.New("translate: multiple update resolves ambiguously; refine the pattern")
	ErrDuplicateDB    = errors.New("translate: database receives more than one subquery")
	ErrBadState       = errors.New("translate: acceptable state names unknown database")
	ErrCrossInUnit    = errors.New("translate: cross-database statement cannot join a transaction unit")
	ErrNoScope        = errors.New("translate: no scope; issue USE first")
)

// Return codes reported through DOLSTATUS.
const (
	StatusSuccess = 0 // all VITAL subqueries committed
	StatusAborted = 1 // all VITAL subqueries rolled back or compensated
)

// Context carries the dictionaries needed for plan generation.
type Context struct {
	AD  *catalog.AD
	GDD *catalog.GDD
}

// serviceInfo resolves a database to its service record.
func (c *Context) serviceInfo(db string) (site string, twoPC bool, err error) {
	site, entry, err := c.serviceEntry(db)
	if err != nil {
		return "", false, err
	}
	return site, entry.SupportsTwoPC(), nil
}

// serviceEntry resolves a database to its full Auxiliary Directory
// record.
func (c *Context) serviceEntry(db string) (site string, entry *catalog.ServiceEntry, err error) {
	svc, err := c.GDD.ServiceOf(db)
	if err != nil {
		return "", nil, err
	}
	entry, err = c.AD.Lookup(svc)
	if err != nil {
		return "", nil, err
	}
	site = entry.Site
	if site == "" {
		site = svc
	}
	return site, entry, nil
}

// ddlClassOf returns the INCORPORATE DDL class of a statement ("CREATE",
// "INSERT", "DROP"), or "" when the statement's commit behaviour is not
// recorded per class in the AD.
func ddlClassOf(s sqlparser.Statement) string {
	switch s.(type) {
	case *sqlparser.CreateTableStmt, *sqlparser.CreateViewStmt:
		return "CREATE"
	case *sqlparser.DropTableStmt, *sqlparser.DropViewStmt:
		return "DROP"
	case *sqlparser.InsertStmt:
		return "INSERT"
	default:
		return ""
	}
}

// TaskRole classifies a task in the plan.
type TaskRole uint8

// Task roles.
const (
	RoleRead  TaskRole = iota // partial-result subquery of a SELECT
	RoleWrite                 // update subquery
	RoleComp                  // compensating action
	RoleFinal                 // coordinator's modified global query
)

// TaskMeta maps one DOL task back to MSQL-level concepts.
type TaskMeta struct {
	Name      string
	Entry     semvar.ScopeEntry
	Role      TaskRole
	StmtIndex int  // which unit statement produced it
	Comp      bool // true when the task's database relies on compensation
	// Stmt is the first substituted statement of the task body (the
	// elementary query), used by the executor to maintain the GDD after
	// successful DDL.
	Stmt sqlparser.Statement
}

// ProvisionalDef records a table definition entered into the GDD at
// translation time so that later statements of the same unit can
// reference a table the unit itself creates. The executor removes the
// definition if the creating task does not commit.
type ProvisionalDef struct {
	Database string
	Table    string
	TaskName string
}

// Meta describes a generated plan for the executor layer.
type Meta struct {
	Tasks            []TaskMeta
	Skipped          []semvar.Skip
	FinalTask        string
	VitalNames       []string
	AcceptableStates [][]string
	// FailStatus is the DOLSTATUS value meaning "no acceptable state
	// reached" for multitransactions.
	FailStatus int
	// Provisional lists GDD entries added during translation.
	Provisional []ProvisionalDef
}

// TaskFor returns the task name serving a scope entry name, or "".
func (m *Meta) TaskFor(entryName string) string {
	for _, t := range m.Tasks {
		if t.Entry.Name == entryName && t.Role != RoleComp {
			return t.Name
		}
	}
	return ""
}

// UnitQuery is one manipulation statement inside a transaction unit,
// together with the LET bindings in force when it was issued.
type UnitQuery struct {
	Lets  []msqlparser.LetBinding
	Query *msqlparser.QueryStmt
}

// SyncMode selects what happens at the unit's synchronization point.
type SyncMode uint8

// Synchronization modes: Commit attempts global commit of the vital set,
// Rollback forces global rollback.
const (
	SyncCommit SyncMode = iota
	SyncRollback
)

// planBuilder accumulates a DOL program.
type planBuilder struct {
	ctx      *Context
	prog     *dol.Program
	meta     *Meta
	opened   map[string]bool // entry name -> opened
	lastTask map[string]string
	nTasks   int
	nComps   int
}

func newBuilder(ctx *Context) *planBuilder {
	return &planBuilder{
		ctx:      ctx,
		prog:     &dol.Program{},
		meta:     &Meta{},
		opened:   map[string]bool{},
		lastTask: map[string]string{},
	}
}

// open ensures a connection for a scope entry and returns its alias.
func (b *planBuilder) open(entry semvar.ScopeEntry) (string, error) {
	if b.opened[entry.Name] {
		return entry.Name, nil
	}
	site, _, err := b.ctx.serviceInfo(entry.Database)
	if err != nil {
		return "", err
	}
	b.prog.Stmts = append(b.prog.Stmts, &dol.OpenStmt{
		Database: entry.Database,
		Site:     site,
		Alias:    entry.Name,
	})
	b.opened[entry.Name] = true
	return entry.Name, nil
}

// addTask appends a task on the entry's connection, chained after the
// previous task on the same connection.
func (b *planBuilder) addTask(entry semvar.ScopeEntry, noCommit bool, role TaskRole, stmtIdx int, comp bool, body ...sqlparser.Statement) (*dol.TaskStmt, error) {
	alias, err := b.open(entry)
	if err != nil {
		return nil, err
	}
	b.nTasks++
	name := "T" + strconv.Itoa(b.nTasks)
	task := &dol.TaskStmt{Name: name, NoCommit: noCommit, Conn: alias, Body: body}
	if prev, ok := b.lastTask[alias]; ok {
		task.After = append(task.After, prev)
	}
	b.lastTask[alias] = name
	b.prog.Stmts = append(b.prog.Stmts, task)
	tm := TaskMeta{Name: name, Entry: entry, Role: role, StmtIndex: stmtIdx, Comp: comp}
	if len(body) > 0 {
		tm.Stmt = body[0]
	}
	b.meta.Tasks = append(b.meta.Tasks, tm)
	return task, nil
}

// compTaskStmt builds (without appending) a compensation task for a
// committed subquery, to be nested under a condition.
func (b *planBuilder) compTaskStmt(entry semvar.ScopeEntry, stmtIdx int, body sqlparser.Statement) *dol.TaskStmt {
	b.nComps++
	name := "C" + strconv.Itoa(b.nComps)
	task := &dol.TaskStmt{Name: name, Conn: entry.Name, Body: []sqlparser.Statement{body}}
	b.meta.Tasks = append(b.meta.Tasks, TaskMeta{
		Name: name, Entry: entry, Role: RoleComp, StmtIndex: stmtIdx, Comp: true, Stmt: body,
	})
	return task
}

// closeAll appends the CLOSE statement.
func (b *planBuilder) closeAll() {
	if len(b.opened) == 0 {
		return
	}
	var aliases []string
	for _, s := range b.prog.Stmts {
		if o, ok := s.(*dol.OpenStmt); ok {
			aliases = append(aliases, o.Alias)
		}
	}
	b.prog.Stmts = append(b.prog.Stmts, &dol.CloseStmt{Aliases: aliases})
}

// conj folds status conditions into a conjunction.
func conj(conds []dol.Cond) dol.Cond {
	var out dol.Cond
	for _, c := range conds {
		if out == nil {
			out = c
		} else {
			out = &dol.AndCond{L: out, R: c}
		}
	}
	return out
}

// findComp locates the COMP clause for an entry within a statement.
func findComp(q *msqlparser.QueryStmt, entry semvar.ScopeEntry) (sqlparser.Statement, bool) {
	for _, c := range q.Comps {
		if c.Database == entry.Name || c.Database == entry.Database {
			return c.Body, true
		}
	}
	return nil, false
}

// vitalTaskKind decides how a subquery on an entry executes.
type vitalTaskKind struct {
	noCommit bool // run NOCOMMIT and hold prepared
	comp     sqlparser.Statement
	isVital  bool
}

// vitalKind decides how a vital subquery executes. Besides the
// COMMITMODE, the per-class commit modes the INCORPORATE statement
// recorded matter: a service that autocommits CREATE (the paper's Ingres
// observation) cannot hold a VITAL CREATE in the prepared state, so such
// a statement needs compensation exactly like one on an autocommit-only
// service.
func (c *Context) vitalKind(entry semvar.ScopeEntry, q *msqlparser.QueryStmt, stmt sqlparser.Statement) (vitalTaskKind, error) {
	if !entry.Vital {
		return vitalTaskKind{}, nil
	}
	_, svc, err := c.serviceEntry(entry.Database)
	if err != nil {
		return vitalTaskKind{}, err
	}
	rollbackable := svc.SupportsTwoPC()
	if rollbackable && stmt != nil {
		if class := ddlClassOf(stmt); class != "" && svc.DDLCommit[class] {
			rollbackable = false
		}
	}
	if rollbackable {
		return vitalTaskKind{noCommit: true, isVital: true}, nil
	}
	comp, ok := findComp(q, entry)
	if !ok {
		return vitalTaskKind{}, fmt.Errorf("%w: %s", ErrVitalNeedsComp, entry.Name)
	}
	return vitalTaskKind{comp: comp, isVital: true}, nil
}

// TranslateUnit builds the evaluation plan for a transaction unit: a
// sequence of manipulation statements sharing one scope, ended by a
// synchronization point (explicit COMMIT/ROLLBACK, scope change, or end
// of script).
func (c *Context) TranslateUnit(scope []semvar.ScopeEntry, unit []UnitQuery, mode SyncMode) (*dol.Program, *Meta, error) {
	if len(scope) == 0 {
		return nil, nil, ErrNoScope
	}
	b := newBuilder(c)
	var vitals []vitalPair

	for i, uq := range unit {
		res, err := semvar.Expand(c.GDD, scope, uq.Lets, uq.Query.Body)
		if err != nil {
			return nil, nil, fmt.Errorf("statement %d: %w", i+1, err)
		}
		b.meta.Skipped = append(b.meta.Skipped, res.Skipped...)
		perDB := map[string]int{}
		for _, el := range res.Queries {
			if el.Global {
				return nil, nil, fmt.Errorf("statement %d: %w", i+1, ErrCrossInUnit)
			}
			perDB[el.Entry.Database]++
			if perDB[el.Entry.Database] > 1 {
				return nil, nil, fmt.Errorf("statement %d: %w (%s)", i+1, ErrAmbiguousDML, el.Entry.Database)
			}
		}
		for _, el := range res.Queries {
			kind, err := c.vitalKind(el.Entry, uq.Query, el.Stmt)
			if err != nil {
				return nil, nil, fmt.Errorf("statement %d: %w", i+1, err)
			}
			task, err := b.addTask(el.Entry, kind.noCommit, RoleWrite, i, kind.comp != nil, el.Stmt)
			if err != nil {
				return nil, nil, err
			}
			if kind.isVital {
				vitals = append(vitals, vitalPair{task: task, entry: el.Entry, comp: kind.comp, stmt: i})
				if !containsString(b.meta.VitalNames, el.Entry.Name) {
					b.meta.VitalNames = append(b.meta.VitalNames, el.Entry.Name)
				}
			}
			// A table created by this statement becomes visible to later
			// statements of the unit, provisionally.
			if ct, ok := el.Stmt.(*sqlparser.CreateTableStmt); ok {
				def := catalog.TableDef{Name: ct.Table.Last()}
				for _, col := range ct.Columns {
					def.Columns = append(def.Columns, relstore.Column{
						Name: col.Name, Type: col.Type, Width: col.Width, Key: col.Key,
					})
				}
				if err := c.GDD.PutTable(el.Entry.Database, def); err == nil {
					b.meta.Provisional = append(b.meta.Provisional, ProvisionalDef{
						Database: el.Entry.Database, Table: def.Name, TaskName: task.Name,
					})
				}
			}
		}
	}

	// Synchronization point.
	switch mode {
	case SyncCommit:
		if len(vitals) == 0 {
			// A multiple query with an empty vital set is always
			// successful (§3.2.1).
			b.prog.Stmts = append(b.prog.Stmts, &dol.StatusStmt{Code: StatusSuccess})
			break
		}
		b.appendVitalSync(vitals)
	case SyncRollback:
		stmts := b.abortAndCompensate(vitals)
		stmts = append(stmts, &dol.StatusStmt{Code: StatusAborted})
		b.prog.Stmts = append(b.prog.Stmts, stmts...)
	}
	b.closeAll()
	return b.prog, b.meta, nil
}

// vitalPair pairs a vital task with its entry and optional compensation.
// A nil comp means the task ran NOCOMMIT on a 2PC service.
type vitalPair struct {
	task  *dol.TaskStmt
	entry semvar.ScopeEntry
	comp  sqlparser.Statement
	stmt  int
}

// abortAndCompensate builds the global-abort statements: roll back every
// prepared vital task, then compensate (in reverse order) every vital
// subquery that already committed on a non-2PC service.
func (b *planBuilder) abortAndCompensate(vitals []vitalPair) []dol.Stmt {
	var out []dol.Stmt
	var aborts []string
	for _, v := range vitals {
		if v.comp == nil {
			aborts = append(aborts, v.task.Name)
		}
	}
	if len(aborts) > 0 {
		out = append(out, &dol.AbortStmt{Tasks: aborts})
	}
	for i := len(vitals) - 1; i >= 0; i-- {
		v := vitals[i]
		if v.comp == nil {
			continue
		}
		compTask := b.compTaskStmt(v.entry, v.stmt, v.comp)
		out = append(out, &dol.IfStmt{
			Cond: &dol.StatusCond{Task: v.task.Name, Status: dol.StatusCommitted},
			Then: []dol.Stmt{compTask},
		})
	}
	return out
}

func containsString(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// TranslateQuery builds the plan for one immediate statement: a SELECT
// (fan-out or global), or a cross-database DML that forms its own unit.
func (c *Context) TranslateQuery(scope []semvar.ScopeEntry, lets []msqlparser.LetBinding, q *msqlparser.QueryStmt) (*dol.Program, *Meta, error) {
	if len(scope) == 0 {
		return nil, nil, ErrNoScope
	}
	res, err := semvar.Expand(c.GDD, scope, lets, q.Body)
	if err != nil {
		return nil, nil, err
	}
	b := newBuilder(c)
	b.meta.Skipped = res.Skipped

	if len(res.Queries) == 1 && res.Queries[0].Global {
		if err := c.translateGlobal(b, scope, res.Queries[0], q); err != nil {
			return nil, nil, err
		}
		b.prog.Stmts = append(b.prog.Stmts, &dol.StatusStmt{Code: StatusSuccess})
		b.closeAll()
		return b.prog, b.meta, nil
	}

	// Fan-out SELECT: one read task per elementary query; partial results
	// become the multitable.
	for _, el := range res.Queries {
		if _, err := b.addTask(el.Entry, false, RoleRead, 0, false, el.Stmt); err != nil {
			return nil, nil, err
		}
	}
	b.prog.Stmts = append(b.prog.Stmts, &dol.StatusStmt{Code: StatusSuccess})
	b.closeAll()
	return b.prog, b.meta, nil
}

// translateGlobal emits the subquery/ship/final pipeline of a decomposed
// cross-database query.
func (c *Context) translateGlobal(b *planBuilder, scope []semvar.ScopeEntry, el semvar.Elementary, q *msqlparser.QueryStmt) error {
	plan, err := decompose.Decompose(c.GDD, el)
	if err != nil {
		return err
	}
	entryFor := func(db string) semvar.ScopeEntry {
		for _, e := range scope {
			if e.Database == db || e.Name == db {
				return e
			}
		}
		return semvar.ScopeEntry{Database: db, Name: db}
	}

	if plan.Final == nil {
		// Single-database statement after all. Respect vitality for DML.
		sq := plan.Subqueries[0]
		entry := entryFor(sq.Database)
		role := RoleWrite
		if _, ok := sq.Stmt.(*sqlparser.SelectStmt); ok {
			role = RoleRead
		}
		kind, err := c.vitalKind(entry, q, sq.Stmt)
		if err != nil {
			return err
		}
		if role == RoleRead {
			kind = vitalTaskKind{}
		}
		task, err := b.addTask(entry, kind.noCommit, role, 0, kind.comp != nil, sq.Stmt)
		if err != nil {
			return err
		}
		if kind.isVital && role == RoleWrite {
			b.appendVitalSync([]vitalPair{{task: task, entry: entry, comp: kind.comp}})
		}
		return nil
	}

	// Subqueries (reads) in parallel, shipped to the coordinator.
	var srcTasks []string
	for _, sq := range plan.Subqueries {
		entry := entryFor(sq.Database)
		task, err := b.addTask(entry, false, RoleRead, 0, false, sq.Stmt)
		if err != nil {
			return err
		}
		srcTasks = append(srcTasks, task.Name)
	}
	coord := entryFor(plan.CoordinatorDB)
	coordAlias, err := b.open(coord)
	if err != nil {
		return err
	}
	for _, ship := range plan.Ships {
		cols := make([]sqlparser.ColumnDef, len(ship.Columns))
		for i, col := range ship.Columns {
			cols[i] = sqlparser.ColumnDef{Name: col.Name, Type: col.Type, Width: col.Width}
		}
		b.prog.Stmts = append(b.prog.Stmts, &dol.ShipStmt{
			Task:    srcTasks[ship.FromIndex],
			To:      coordAlias,
			Table:   ship.Table,
			Columns: cols,
		})
	}
	body := []sqlparser.Statement{plan.Final}
	for _, tmp := range plan.Cleanup {
		body = append(body, &sqlparser.DropTableStmt{Table: sqlparser.Name(tmp)})
	}
	role := RoleFinal
	finalKind := vitalTaskKind{}
	if _, isSelect := plan.Final.(*sqlparser.SelectStmt); !isSelect {
		// Final write (INSERT transfer): respect target vitality.
		k, err := c.vitalKind(coord, q, plan.Final)
		if err != nil {
			return err
		}
		finalKind = k
	}
	final, err := b.addTask(coord, finalKind.noCommit, role, 0, finalKind.comp != nil, body...)
	if err != nil {
		return err
	}
	for _, src := range srcTasks {
		if !containsString(final.After, src) {
			final.After = append(final.After, src)
		}
	}
	b.meta.FinalTask = final.Name
	if finalKind.isVital {
		b.appendVitalSync([]vitalPair{{task: final, entry: coord, comp: finalKind.comp}})
	}
	return nil
}

// appendVitalSync emits the vital-set synchronization block: commit every
// vital task if all reached their required state, otherwise abort and
// compensate.
func (b *planBuilder) appendVitalSync(vitals []vitalPair) {
	var conds []dol.Cond
	var commits []string
	for _, v := range vitals {
		if v.comp == nil {
			conds = append(conds, &dol.StatusCond{Task: v.task.Name, Status: dol.StatusPrepared})
			commits = append(commits, v.task.Name)
		} else {
			conds = append(conds, &dol.StatusCond{Task: v.task.Name, Status: dol.StatusCommitted})
		}
	}
	thenStmts := []dol.Stmt{}
	if len(commits) > 0 {
		thenStmts = append(thenStmts, &dol.CommitStmt{Tasks: commits})
	}
	thenStmts = append(thenStmts, &dol.StatusStmt{Code: StatusSuccess})
	elseStmts := b.abortAndCompensate(vitals)
	elseStmts = append(elseStmts, &dol.StatusStmt{Code: StatusAborted})
	b.prog.Stmts = append(b.prog.Stmts, &dol.IfStmt{Cond: conj(conds), Then: thenStmts, Else: elseStmts})
	for _, v := range vitals {
		if !containsString(b.meta.VitalNames, v.entry.Name) {
			b.meta.VitalNames = append(b.meta.VitalNames, v.entry.Name)
		}
	}
}
