package translate

import (
	"errors"
	"strings"
	"testing"

	"msql/internal/catalog"
	"msql/internal/dol"
	"msql/internal/msqlparser"
	"msql/internal/relstore"
	"msql/internal/semvar"
	"msql/internal/sqlval"
)

// paperContext builds AD+GDD for the appendix databases. Continental can
// optionally be registered on an autocommit-only service for the §3.3
// scenarios.
func paperContext(t testing.TB, continentalAutoCommit bool) *Context {
	t.Helper()
	ad := catalog.NewAD()
	ad.Incorporate(catalog.ServiceEntry{Name: "svc_cont", Site: "site1", Connect: true, AutoCommitOnly: continentalAutoCommit})
	ad.Incorporate(catalog.ServiceEntry{Name: "svc_delta", Site: "site2", Connect: true})
	ad.Incorporate(catalog.ServiceEntry{Name: "svc_unit", Site: "site3", Connect: true})
	ad.Incorporate(catalog.ServiceEntry{Name: "svc_avis", Site: "site4", Connect: true})
	ad.Incorporate(catalog.ServiceEntry{Name: "svc_natl", Site: "site5", Connect: true})

	g := catalog.NewGDD()
	put := func(db, svc, table string, cols ...string) {
		if _, err := g.ServiceOf(db); err != nil {
			g.DefineDatabase(db, svc)
		}
		def := catalog.TableDef{Name: table}
		for _, c := range cols {
			def.Columns = append(def.Columns, relstore.Column{Name: c, Type: sqlval.KindString})
		}
		if err := g.PutTable(db, def); err != nil {
			t.Fatal(err)
		}
	}
	put("continental", "svc_cont", "flights", "flnu", "source", "dep", "destination", "arr", "day", "rate")
	put("continental", "svc_cont", "f838", "seatnu", "seatty", "seatstatus", "clientname")
	put("delta", "svc_delta", "flight", "fnu", "source", "dest", "dep", "arr", "day", "rate")
	put("delta", "svc_delta", "fnu747", "snu", "sty", "sstat", "passname")
	put("united", "svc_unit", "flight", "fn", "sour", "dest", "depa", "arri", "day", "rates")
	put("avis", "svc_avis", "cars", "code", "cartype", "rate", "carst", "client")
	put("national", "svc_natl", "vehicle", "vcode", "vty", "vstat", "client")
	return &Context{AD: ad, GDD: g}
}

func scopeOf(t *testing.T, src string) []semvar.ScopeEntry {
	t.Helper()
	st, err := msqlparser.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	return semvar.ScopeFromUse(st.(*msqlparser.UseStmt))
}

func queryOf(t *testing.T, src string) *msqlparser.QueryStmt {
	t.Helper()
	st, err := msqlparser.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*msqlparser.QueryStmt)
}

const fareUpdate = `UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'`

// The E5 experiment: the §3.2 update translates into a DOL program with
// the paper's structure (Section 4.3 listing).
func TestTranslatePaperProgramStructure(t *testing.T) {
	c := paperContext(t, false)
	scope := scopeOf(t, "USE continental VITAL delta united VITAL")
	prog, meta, err := c.TranslateUnit(scope, []UnitQuery{{Query: queryOf(t, fareUpdate)}}, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	out := dol.Print(prog)

	// The paper's plan: three OPENs, vital tasks NOCOMMIT, the delta task
	// autocommitting, the (T1=P) AND (T3=P) condition, commit/abort with
	// matching DOLSTATUS codes, and a final CLOSE.
	for _, want := range []string{
		"OPEN continental AT site1 AS continental;",
		"OPEN delta AT site2 AS delta;",
		"OPEN united AT site3 AS united;",
		"TASK T1 NOCOMMIT FOR continental",
		"TASK T2 FOR delta",
		"TASK T3 NOCOMMIT FOR united",
		"IF (T1=P) AND (T3=P) THEN",
		"COMMIT T1, T3;",
		"DOLSTATUS=0;",
		"ABORT T1, T3;",
		"DOLSTATUS=1;",
		"CLOSE continental delta united;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("program missing %q:\n%s", want, out)
		}
	}
	// Task bodies carry the per-dialect substituted updates.
	for _, want := range []string{
		"UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston' AND destination = 'San Antonio'",
		"UPDATE flight SET rate = rate * 1.1 WHERE source = 'Houston' AND dest = 'San Antonio'",
		"UPDATE flight SET rates = rates * 1.1 WHERE sour = 'Houston' AND dest = 'San Antonio'",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("program missing body %q:\n%s", want, out)
		}
	}
	if len(meta.VitalNames) != 2 {
		t.Fatalf("vital names = %v", meta.VitalNames)
	}
	if meta.TaskFor("continental") != "T1" || meta.TaskFor("delta") != "T2" || meta.TaskFor("united") != "T3" {
		t.Fatalf("task mapping: %+v", meta.Tasks)
	}
	// The printed program reparses.
	if _, err := dol.Parse(out); err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
}

// §3.3: continental without 2PC and a COMP clause.
func TestTranslateCompensation(t *testing.T) {
	c := paperContext(t, true)
	scope := scopeOf(t, "USE continental VITAL delta united VITAL")
	q := queryOf(t, fareUpdate+`
COMP continental
UPDATE flights SET rate = rate / 1.1
WHERE source = 'Houston' AND destination = 'San Antonio'`)
	prog, meta, err := c.TranslateUnit(scope, []UnitQuery{{Query: q}}, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	out := dol.Print(prog)
	for _, want := range []string{
		"TASK T1 FOR continental", // autocommits: no NOCOMMIT
		"TASK T3 NOCOMMIT FOR united",
		"IF (T1=C) AND (T3=P) THEN",
		"COMMIT T3;",
		"ABORT T3;",
		"IF (T1=C) THEN", // compensate only when continental committed
		"UPDATE flights SET rate = rate / 1.1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("program missing %q:\n%s", want, out)
		}
	}
	var compTasks int
	for _, tm := range meta.Tasks {
		if tm.Role == RoleComp {
			compTasks++
		}
	}
	if compTasks != 1 {
		t.Fatalf("comp tasks = %d", compTasks)
	}
	if _, err := dol.Parse(out); err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
}

func TestTranslateVitalWithoutTwoPCRefused(t *testing.T) {
	c := paperContext(t, true)
	scope := scopeOf(t, "USE continental VITAL delta united VITAL")
	_, _, err := c.TranslateUnit(scope, []UnitQuery{{Query: queryOf(t, fareUpdate)}}, SyncCommit)
	if !errors.Is(err, ErrVitalNeedsComp) {
		t.Fatalf("err = %v", err)
	}
}

func TestTranslateNoVitalAlwaysSucceeds(t *testing.T) {
	c := paperContext(t, false)
	scope := scopeOf(t, "USE continental delta united")
	prog, _, err := c.TranslateUnit(scope, []UnitQuery{{Query: queryOf(t, fareUpdate)}}, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	out := dol.Print(prog)
	if strings.Contains(out, "NOCOMMIT") || strings.Contains(out, "IF") {
		t.Fatalf("no-vital plan should have no 2PC machinery:\n%s", out)
	}
	if !strings.Contains(out, "DOLSTATUS=0;") {
		t.Fatalf("missing unconditional success:\n%s", out)
	}
}

func TestTranslateRollbackMode(t *testing.T) {
	c := paperContext(t, false)
	scope := scopeOf(t, "USE continental VITAL united VITAL")
	prog, _, err := c.TranslateUnit(scope, []UnitQuery{{Query: queryOf(t, fareUpdate)}}, SyncRollback)
	if err != nil {
		t.Fatal(err)
	}
	out := dol.Print(prog)
	if !strings.Contains(out, "ABORT T1, T2;") {
		t.Fatalf("rollback plan must abort vitals:\n%s", out)
	}
	if strings.Contains(out, "COMMIT T") {
		t.Fatalf("rollback plan must not commit:\n%s", out)
	}
	if !strings.Contains(out, "DOLSTATUS=1;") {
		t.Fatalf("missing aborted status:\n%s", out)
	}
}

func TestTranslateSelectFanOut(t *testing.T) {
	c := paperContext(t, false)
	scope := scopeOf(t, "USE avis national")
	letStmt, err := msqlparser.ParseStatement("LET car.type.status BE cars.cartype.carst vehicle.vty.vstat")
	if err != nil {
		t.Fatal(err)
	}
	lets := letStmt.(*msqlparser.LetStmt).Bindings
	q := queryOf(t, "SELECT %code, type, ~rate FROM car WHERE status = 'available'")
	prog, meta, err := c.TranslateQuery(scope, lets, q)
	if err != nil {
		t.Fatal(err)
	}
	out := dol.Print(prog)
	for _, want := range []string{
		"OPEN avis AT site4 AS avis;",
		"OPEN national AT site5 AS national;",
		"SELECT code, cartype, rate FROM cars WHERE carst = 'available'",
		"SELECT vcode, vty, NULL FROM vehicle WHERE vstat = 'available'",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if len(meta.Tasks) != 2 || meta.Tasks[0].Role != RoleRead {
		t.Fatalf("tasks = %+v", meta.Tasks)
	}
}

func TestTranslateGlobalSelect(t *testing.T) {
	c := paperContext(t, false)
	scope := scopeOf(t, "USE continental united")
	q := queryOf(t, `SELECT c.flnu, u.fn FROM continental.flights c, united.flight u WHERE c.rate > u.rates`)
	prog, meta, err := c.TranslateQuery(scope, nil, q)
	if err != nil {
		t.Fatal(err)
	}
	out := dol.Print(prog)
	for _, want := range []string{
		"SHIP T1 TO continental TABLE mtmp_continental",
		"SHIP T2 TO continental TABLE mtmp_united",
		"AFTER T1 T2 FOR continental",
		"SELECT c_flnu AS flnu, u_fn AS fn FROM mtmp_continental, mtmp_united WHERE c_rate > u_rates",
		"DROP TABLE mtmp_continental",
		"DROP TABLE mtmp_united",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if meta.FinalTask == "" {
		t.Fatal("missing final task")
	}
	if _, err := dol.Parse(out); err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
}

func TestTranslateMultiTx(t *testing.T) {
	c := paperContext(t, false)
	src := `
BEGIN MULTITRANSACTION
  USE continental delta
  LET fitab.snu.sstat.clname BE
      f838.seatnu.seatstatus.clientname
      fnu747.snu.sstat.passname
  UPDATE fitab
  SET sstat = 'TAKEN', clname = 'wenders'
  WHERE snu = ( SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');
  USE avis national
  LET cartab.ccode.cstat BE
      cars.code.carst
      vehicle.vcode.vstat
  UPDATE cartab
  SET cstat = 'TAKEN', client = 'wenders'
  WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'FREE');
  COMMIT
    continental AND national
    delta AND avis
END MULTITRANSACTION`
	st, err := msqlparser.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, meta, err := c.TranslateMultiTx(st.(*msqlparser.MultiTxStmt))
	if err != nil {
		t.Fatal(err)
	}
	out := dol.Print(prog)
	for _, want := range []string{
		"TASK T1 NOCOMMIT FOR continental",
		"TASK T2 NOCOMMIT FOR delta",
		"TASK T3 NOCOMMIT FOR avis",
		"TASK T4 NOCOMMIT FOR national",
		"IF (T1=P) AND (T4=P) THEN", // preferred: continental AND national
		"COMMIT T1, T4;",
		"ABORT T2, T3;",
		"DOLSTATUS=0;",
		"IF (T2=P) AND (T3=P) THEN", // fallback: delta AND avis
		"COMMIT T2, T3;",
		"ABORT T1, T4;",
		"DOLSTATUS=1;",
		"ABORT T1, T2, T3, T4;", // failure block
		"DOLSTATUS=2;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if meta.FailStatus != 2 || len(meta.AcceptableStates) != 2 {
		t.Fatalf("meta = %+v", meta)
	}
	if _, err := dol.Parse(out); err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
}

func TestTranslateMultiTxErrors(t *testing.T) {
	c := paperContext(t, false)
	parse := func(src string) *msqlparser.MultiTxStmt {
		st, err := msqlparser.ParseStatement(src)
		if err != nil {
			t.Fatal(err)
		}
		return st.(*msqlparser.MultiTxStmt)
	}
	// Unknown database in acceptable state.
	_, _, err := c.TranslateMultiTx(parse(`
BEGIN MULTITRANSACTION
USE avis
UPDATE cars SET carst = 'TAKEN'
COMMIT bogus
END MULTITRANSACTION`))
	if !errors.Is(err, ErrBadState) {
		t.Fatalf("err = %v", err)
	}
	// A database used by two queries.
	_, _, err = c.TranslateMultiTx(parse(`
BEGIN MULTITRANSACTION
USE avis
UPDATE cars SET carst = 'TAKEN'
UPDATE cars SET carst = 'FREE'
COMMIT avis
END MULTITRANSACTION`))
	if !errors.Is(err, ErrDuplicateDB) {
		t.Fatalf("err = %v", err)
	}
	// Query without scope.
	_, _, err = c.TranslateMultiTx(parse(`
BEGIN MULTITRANSACTION
UPDATE cars SET carst = 'TAKEN'
COMMIT avis
END MULTITRANSACTION`))
	if !errors.Is(err, ErrNoScope) {
		t.Fatalf("err = %v", err)
	}
}

func TestTranslateMultiTxWithCompensation(t *testing.T) {
	// avis on an autocommit-only service inside a multitransaction.
	c := paperContext(t, false)
	c.AD.Incorporate(catalog.ServiceEntry{Name: "svc_avis", Site: "site4", Connect: true, AutoCommitOnly: true})
	src := `
BEGIN MULTITRANSACTION
USE avis national
UPDATE cars SET carst = 'TAKEN'
COMP avis UPDATE cars SET carst = 'FREE'
COMMIT avis
END MULTITRANSACTION`
	st, err := msqlparser.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := c.TranslateMultiTx(st.(*msqlparser.MultiTxStmt))
	if err != nil {
		t.Fatal(err)
	}
	out := dol.Print(prog)
	if !strings.Contains(out, "IF (T1=C) THEN") {
		t.Fatalf("state condition should test committed for autocommit service:\n%s", out)
	}
	if !strings.Contains(out, "UPDATE cars SET carst = 'FREE'") {
		t.Fatalf("missing compensation body:\n%s", out)
	}
}

func TestTranslateAmbiguousDMLRefused(t *testing.T) {
	c := paperContext(t, false)
	scope := scopeOf(t, "USE continental")
	// d% matches day/dep/destination -> ambiguous multiple update.
	q := queryOf(t, "UPDATE flights SET d% = 'x'")
	_, _, err := c.TranslateUnit(scope, []UnitQuery{{Query: q}}, SyncCommit)
	if !errors.Is(err, ErrAmbiguousDML) {
		t.Fatalf("err = %v", err)
	}
}

func TestTranslateUnitMultipleStatementsChainOnConnection(t *testing.T) {
	c := paperContext(t, false)
	scope := scopeOf(t, "USE avis VITAL")
	u1 := UnitQuery{Query: queryOf(t, "UPDATE cars SET carst = 'TAKEN' WHERE code = 1")}
	u2 := UnitQuery{Query: queryOf(t, "UPDATE cars SET client = 'wenders' WHERE code = 1")}
	prog, _, err := c.TranslateUnit(scope, []UnitQuery{u1, u2}, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	out := dol.Print(prog)
	if !strings.Contains(out, "TASK T2 NOCOMMIT AFTER T1 FOR avis") {
		t.Fatalf("second statement should chain after the first:\n%s", out)
	}
	if !strings.Contains(out, "IF (T1=P) AND (T2=P) THEN") {
		t.Fatalf("both statements join the vital condition:\n%s", out)
	}
}

func TestTranslateVitalDDLOnAutocommitDDLService(t *testing.T) {
	c := paperContext(t, false)
	// Record united's service as autocommitting CREATE, per INCORPORATE.
	c.AD.Incorporate(catalog.ServiceEntry{
		Name: "svc_unit", Site: "site3", Connect: true,
		DDLCommit: map[string]bool{"CREATE": true},
	})
	scope := scopeOf(t, "USE united VITAL")
	// VITAL CREATE without COMP: refused, the prepared state cannot
	// cover an autocommitted DDL.
	q := queryOf(t, "CREATE TABLE side (a INTEGER)")
	_, _, err := c.TranslateUnit(scope, []UnitQuery{{Query: q}}, SyncCommit)
	if !errors.Is(err, ErrVitalNeedsComp) {
		t.Fatalf("err = %v", err)
	}
	// With COMP: the task autocommits and the plan compensates on abort.
	q2 := queryOf(t, "CREATE TABLE side (a INTEGER) COMP united DROP TABLE side")
	prog, _, err := c.TranslateUnit(scope, []UnitQuery{{Query: q2}}, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	out := dol.Print(prog)
	if strings.Contains(out, "NOCOMMIT") {
		t.Fatalf("autocommitted DDL must not be NOCOMMIT:\n%s", out)
	}
	if !strings.Contains(out, "IF (T1=C) THEN") || !strings.Contains(out, "DROP TABLE side") {
		t.Fatalf("missing compensation path:\n%s", out)
	}
	// A VITAL UPDATE on the same service still uses the prepared state:
	// only the recorded DDL classes autocommit.
	q3 := queryOf(t, "UPDATE flight SET rates = rates + 1")
	prog, _, err = c.TranslateUnit(scope, []UnitQuery{{Query: q3}}, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dol.Print(prog), "TASK T1 NOCOMMIT FOR united") {
		t.Fatalf("UPDATE should stay NOCOMMIT:\n%s", dol.Print(prog))
	}
}

func TestTranslateEmptyScope(t *testing.T) {
	c := paperContext(t, false)
	if _, _, err := c.TranslateUnit(nil, nil, SyncCommit); !errors.Is(err, ErrNoScope) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.TranslateQuery(nil, nil, queryOf(t, "SELECT code FROM cars")); !errors.Is(err, ErrNoScope) {
		t.Fatalf("err = %v", err)
	}
}
