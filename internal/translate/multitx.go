package translate

import (
	"fmt"

	"msql/internal/dol"
	"msql/internal/msqlparser"
	"msql/internal/semvar"
	"msql/internal/sqlparser"
)

// mtxTask is one subquery of a multitransaction, addressed by its scope
// entry name in acceptable states.
type mtxTask struct {
	task  *dol.TaskStmt
	entry semvar.ScopeEntry
	comp  sqlparser.Statement // nil when the service has 2PC
	stmt  int
}

// TranslateMultiTx builds the plan for BEGIN/END MULTITRANSACTION (§3.4):
// every subquery runs NOCOMMIT (or autocommits with a registered COMP
// clause on non-2PC services) and stays prepared until the COMMIT point;
// the acceptable termination states are then checked in specification
// order, the first reachable one is installed, and everything outside it
// is rolled back or compensated. If no state is reachable the whole
// multitransaction is rolled back or compensated.
//
// DOLSTATUS reports the index of the achieved acceptable state, or
// Meta.FailStatus (== number of states) when the multitransaction failed.
func (c *Context) TranslateMultiTx(m *msqlparser.MultiTxStmt) (*dol.Program, *Meta, error) {
	b := newBuilder(c)

	var scope []semvar.ScopeEntry
	var lets []msqlparser.LetBinding
	byName := make(map[string]*mtxTask)
	var all []*mtxTask

	stmtIdx := 0
	for _, s := range m.Body {
		switch st := s.(type) {
		case *msqlparser.UseStmt:
			if st.Current {
				scope = append(scope, semvar.ScopeFromUse(st)...)
			} else {
				scope = semvar.ScopeFromUse(st)
			}
			lets = nil
		case *msqlparser.LetStmt:
			lets = append(lets, st.Bindings...)
		case *msqlparser.QueryStmt:
			if len(scope) == 0 {
				return nil, nil, ErrNoScope
			}
			res, err := semvar.Expand(c.GDD, scope, lets, st.Body)
			if err != nil {
				return nil, nil, fmt.Errorf("multitransaction statement %d: %w", stmtIdx+1, err)
			}
			b.meta.Skipped = append(b.meta.Skipped, res.Skipped...)
			for _, el := range res.Queries {
				if el.Global {
					return nil, nil, fmt.Errorf("multitransaction statement %d: %w", stmtIdx+1, ErrCrossInUnit)
				}
				if _, dup := byName[el.Entry.Name]; dup {
					return nil, nil, fmt.Errorf("%w: %s", ErrDuplicateDB, el.Entry.Name)
				}
				_, twoPC, err := c.serviceInfo(el.Entry.Database)
				if err != nil {
					return nil, nil, err
				}
				var comp sqlparser.Statement
				if !twoPC {
					body, ok := findComp(st, el.Entry)
					if !ok {
						return nil, nil, fmt.Errorf("%w: %s", ErrVitalNeedsComp, el.Entry.Name)
					}
					comp = body
				}
				task, err := b.addTask(el.Entry, twoPC, RoleWrite, stmtIdx, comp != nil, el.Stmt)
				if err != nil {
					return nil, nil, err
				}
				mt := &mtxTask{task: task, entry: el.Entry, comp: comp, stmt: stmtIdx}
				byName[el.Entry.Name] = mt
				all = append(all, mt)
			}
			stmtIdx++
		default:
			return nil, nil, fmt.Errorf("translate: unsupported statement %T in multitransaction", s)
		}
	}

	// Validate acceptable states.
	for _, state := range m.AcceptableStates {
		for _, name := range state {
			if _, ok := byName[name]; !ok {
				return nil, nil, fmt.Errorf("%w: %s", ErrBadState, name)
			}
		}
	}
	b.meta.AcceptableStates = m.AcceptableStates
	b.meta.FailStatus = len(m.AcceptableStates)

	// Build the nested IF chain: states in preference order, then the
	// failure block.
	fail := b.abortAndCompensate(pairsOf(all, nil))
	fail = append(fail, &dol.StatusStmt{Code: b.meta.FailStatus})
	chain := fail
	for i := len(m.AcceptableStates) - 1; i >= 0; i-- {
		state := m.AcceptableStates[i]
		inState := make(map[string]bool, len(state))
		var conds []dol.Cond
		var commits []string
		for _, name := range state {
			inState[name] = true
			mt := byName[name]
			if mt.comp == nil {
				conds = append(conds, &dol.StatusCond{Task: mt.task.Name, Status: dol.StatusPrepared})
				commits = append(commits, mt.task.Name)
			} else {
				conds = append(conds, &dol.StatusCond{Task: mt.task.Name, Status: dol.StatusCommitted})
			}
			if m.Effective {
				conds = append(conds, &dol.RowsCond{Task: mt.task.Name, MinRows: 0})
			}
		}
		var thenStmts []dol.Stmt
		if len(commits) > 0 {
			thenStmts = append(thenStmts, &dol.CommitStmt{Tasks: commits})
		}
		// Members outside the state are rolled back or compensated —
		// "the exclusion of Delta and Avis subtransactions is implicit".
		thenStmts = append(thenStmts, b.abortAndCompensate(pairsOf(all, inState))...)
		thenStmts = append(thenStmts, &dol.StatusStmt{Code: i})
		chain = []dol.Stmt{&dol.IfStmt{Cond: conj(conds), Then: thenStmts, Else: chain}}
	}
	b.prog.Stmts = append(b.prog.Stmts, chain...)
	b.closeAll()
	return b.prog, b.meta, nil
}

// pairsOf converts multitransaction tasks (excluding those in keep) into
// vital pairs for abortAndCompensate.
func pairsOf(all []*mtxTask, keep map[string]bool) []vitalPair {
	var out []vitalPair
	for _, mt := range all {
		if keep != nil && keep[mt.entry.Name] {
			continue
		}
		out = append(out, vitalPair{task: mt.task, entry: mt.entry, comp: mt.comp, stmt: mt.stmt})
	}
	return out
}
