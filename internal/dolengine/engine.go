// Package dolengine executes DOL programs, playing the role of the Narada
// engine in the paper's architecture (Figure 1). It opens connections to
// services through LAM clients, runs tasks concurrently (tasks start as
// soon as their AFTER dependencies settle), synchronizes at IF conditions
// and COMMIT/ABORT statements, ships partial results between connections,
// and reports the DOLSTATUS return code together with the final execution
// state of every task.
package dolengine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"msql/internal/dol"
	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/obs"
	"msql/internal/sqlengine"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
	"msql/internal/wire"
)

// Engine metrics (see DESIGN.md §8).
var (
	mTaskOutcomes = obs.Default().CounterVec("msql_tasks_total",
		"DOL tasks by terminal status.", "status")
	mTaskLatency = obs.Default().HistogramVec("msql_task_seconds",
		"Wall time of each DOL task from start to settle.", nil, "status")
	mInDoubtDwell = obs.Default().Histogram("msql_indoubt_dwell_seconds",
		"Time participants spent in the in-doubt window before the recovery loop resolved them.", nil)
	mInDoubtUnresolved = obs.Default().Counter("msql_indoubt_unresolved_total",
		"In-doubt participants the bounded recovery loop could not reach.")
)

// Engine errors.
var (
	ErrUnknownSite = errors.New("dolengine: unknown site")
	ErrUnknownConn = errors.New("dolengine: unknown connection")
	ErrUnknownTask = errors.New("dolengine: unknown task")
	ErrShipFailed  = errors.New("dolengine: ship source task did not succeed")
)

// Directory resolves site names to LAM clients — the Narada resource
// directory of §4.1.
type Directory interface {
	Resolve(site string) (lam.Client, error)
}

// MapDirectory is a Directory backed by a map.
type MapDirectory map[string]lam.Client

// Resolve implements Directory.
func (m MapDirectory) Resolve(site string) (lam.Client, error) {
	c, ok := m[site]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSite, site)
	}
	return c, nil
}

// TaskInfo is the final record of one task's execution.
type TaskInfo struct {
	Status       dol.TaskStatus
	Err          error
	Result       *sqlengine.Result // last statement's result
	RowsAffected int
	Database     string
	Conn         string
	// Plan is the site-local plan tree of the task's last EXPLAIN
	// statement, nil otherwise. Elapsed covers the task's statement body
	// (not its 2PC phases).
	Plan    *obs.PlanNode
	Elapsed time.Duration
}

// InDoubt identifies a participant whose prepared transaction could not
// be driven to its synchronization-point decision within the bounded
// recovery loop: the LAM stayed unreachable. Operators (or a later
// recovery pass) resolve it with lam.Resolve.
type InDoubt struct {
	Task      string
	Conn      string
	Database  string
	Addr      string
	SessionID int64
	// Commit is the recorded decision: true drives the participant to
	// commit, false to rollback.
	Commit bool
}

// Outcome is the result of running a program.
type Outcome struct {
	// Status is the DOLSTATUS return code (-1 when never set).
	Status int
	// Tasks maps task names to their final execution records.
	Tasks map[string]*TaskInfo
	// Unresolved lists in-doubt participants recovery could not reach;
	// their tasks keep dol.StatusInDoubt.
	Unresolved []InDoubt
}

// TaskStatus returns a task's final status, StatusNotRun for unknown
// names.
func (o *Outcome) TaskStatus(name string) dol.TaskStatus {
	if t, ok := o.Tasks[name]; ok {
		return t.Status
	}
	return dol.StatusNotRun
}

// TxLog receives the engine's durable-coordinator notifications: which
// participants entered the prepared-to-commit window, which
// synchronization-point decisions were taken, and each task's terminal
// outcome. A write-ahead journal (internal/mtlog, wired up by the core
// layer) implements it; Decision must make the record durable before
// returning, because the engine delivers the first COMMIT only after it
// returns successfully.
type TxLog interface {
	// TaskPrepared records a participant in the prepared state together
	// with its re-attach coordinates (empty addr = in-process session
	// that cannot outlive the coordinator).
	TaskPrepared(task, addr string, sessionID int64)
	// Decision records the commit/rollback decision for a set of tasks.
	// A commit decision that cannot be made durable must fail: the
	// engine then aborts instead of delivering an unlogged commit.
	Decision(commit bool, tasks []string) error
	// TaskOutcome records a task's terminal status.
	TaskOutcome(task string, st dol.TaskStatus)
}

// Engine executes DOL programs.
type Engine struct {
	dir Directory

	// Recovery paces the bounded in-doubt resolution loop run after a
	// plan whose commit/rollback decisions could not be delivered.
	Recovery lam.RetryPolicy
	// RecoverTimeout bounds each individual resolution attempt.
	RecoverTimeout time.Duration

	// resolve is lam.Resolve, injectable for tests.
	resolve func(ctx context.Context, addr string, sessionID int64, commit bool) (ldbms.SessionState, error)
}

// New returns an engine over a service directory.
func New(dir Directory) *Engine {
	return &Engine{
		dir:            dir,
		Recovery:       lam.RetryPolicy{Attempts: 4, BaseDelay: 25 * time.Millisecond, MaxDelay: 500 * time.Millisecond},
		RecoverTimeout: 2 * time.Second,
		resolve:        lam.Resolve,
	}
}

// conn is one open connection (session) with serialized task access. A
// conn with a nil session and a non-nil openErr is a degraded stub for a
// breaker-open site: its tasks fail with openErr instead of running.
type conn struct {
	mu      sync.Mutex
	session lam.Session
	db      string
	openErr error
}

// taskRT is the runtime state of one task. deps are resolved at spawn
// time on the walker goroutine so task goroutines never touch the shared
// task table.
type taskRT struct {
	stmt *dol.TaskStmt
	info *TaskInfo
	deps []*taskRT
	mu   sync.Mutex
	done chan struct{}

	// in-doubt bookkeeping (guarded by mu): where to reconnect and the
	// synchronization-point decision to deliver on recovery.
	recoverAddr   string
	recoverID     int64
	recoverCommit bool
	recoverable   bool
	inDoubtAt     time.Time // when the participant entered the in-doubt window
}

// markInDoubt records a participant whose prepared transaction lost its
// connection before the decision (commit/rollback) was acknowledged.
func (t *taskRT) markInDoubt(rec lam.Recoverable, commit bool, err error) {
	addr, id := rec.RecoveryInfo()
	t.mu.Lock()
	t.info.Status = dol.StatusInDoubt
	if err != nil && t.info.Err == nil {
		t.info.Err = err
	}
	t.recoverAddr, t.recoverID, t.recoverCommit, t.recoverable = addr, id, commit, true
	t.inDoubtAt = time.Now()
	t.mu.Unlock()
}

func (t *taskRT) status() dol.TaskStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.info.Status
}

func (t *taskRT) setStatus(s dol.TaskStatus, err error) {
	t.mu.Lock()
	t.info.Status = s
	if err != nil && t.info.Err == nil {
		t.info.Err = err
	}
	t.mu.Unlock()
}

// run carries the state of one program execution.
type run struct {
	eng   *Engine
	ctx   context.Context
	conns map[string]*conn
	tasks map[string]*taskRT
	out   *Outcome
	log   TxLog // nil when the plan is not journaled
	wg    sync.WaitGroup
}

// logPrepared notifies the journal of a prepared participant.
func (r *run) logPrepared(rt *taskRT, sess lam.Session) {
	if r.log == nil {
		return
	}
	addr, id := "", int64(0)
	if rec, ok := sess.(lam.Recoverable); ok {
		addr, id = rec.RecoveryInfo()
	}
	r.log.TaskPrepared(rt.stmt.Name, addr, id)
}

// logOutcome notifies the journal of a task's terminal status.
func (r *run) logOutcome(rt *taskRT) {
	if r.log == nil {
		return
	}
	st := rt.status()
	switch st {
	case dol.StatusCommitted, dol.StatusAborted, dol.StatusError:
		r.log.TaskOutcome(rt.stmt.Name, st)
	}
}

// Run executes a program to completion under ctx and returns its outcome.
// The context deadline bounds every remote LAM call; cancellation fails
// in-flight subqueries. The returned error covers engine-level failures
// (unknown sites, protocol errors); task-level SQL failures are reported
// per task in the Outcome. Before returning, participants left in-doubt
// by lost connections are driven to their recorded decision by a bounded
// recovery loop; the ones that stay unreachable are listed in
// Outcome.Unresolved.
func (e *Engine) Run(ctx context.Context, prog *dol.Program) (*Outcome, error) {
	return e.RunLogged(ctx, prog, nil)
}

// RunLogged is Run with a durable-coordinator journal attached: the
// engine reports prepared participants, synchronization-point decisions
// (before delivering them — the write-ahead rule), and terminal task
// outcomes through log. A nil log disables journaling.
func (e *Engine) RunLogged(ctx context.Context, prog *dol.Program, log TxLog) (*Outcome, error) {
	r := &run{
		eng:   e,
		ctx:   ctx,
		conns: make(map[string]*conn),
		tasks: make(map[string]*taskRT),
		out:   &Outcome{Status: -1, Tasks: make(map[string]*TaskInfo)},
		log:   log,
	}
	err := r.execStmts(prog.Stmts)
	r.wg.Wait()
	r.recoverInDoubt()
	// Close any connection the program forgot, rolling back leftovers.
	for _, c := range r.conns {
		c.mu.Lock()
		if c.session != nil {
			_ = c.session.Close()
			c.session = nil
		}
		c.mu.Unlock()
	}
	for _, info := range r.out.Tasks {
		mTaskOutcomes.With(info.Status.String()).Inc()
	}
	if err != nil {
		return r.out, err
	}
	return r.out, nil
}

// recoverParallelism bounds how many in-doubt participants a recovery
// sweep contacts concurrently. Serial sweeps do not scale past the
// three-site demo: at a 50-site fan-out one dead participant's full
// backoff sequence would stall every site behind it, so sweeps fan out
// bounded-parallel and the jittered RetryPolicy backoff decorrelates
// the retry instants across sites.
const recoverParallelism = 16

// recoverInDoubt is the coordinator's bounded recovery loop: each
// in-doubt participant is re-contacted (reconnect + wire.ReqAttach) and
// driven to its recorded decision. Recovery runs on a fresh context — the
// plan's deadline may already have expired, and delivering decisions for
// prepared transactions must still be attempted — bounded instead by the
// engine's Recovery policy and RecoverTimeout. Participants are
// contacted in parallel (recoverParallelism at a time) so one
// unreachable site's backoff does not serialize the rest of the sweep.
func (r *run) recoverInDoubt() {
	type pendingTask struct {
		name string
		rt   *taskRT
	}
	var pending []pendingTask
	for name, rt := range r.tasks {
		rt.mu.Lock()
		ok := rt.info.Status == dol.StatusInDoubt && rt.recoverable
		rt.mu.Unlock()
		if ok {
			pending = append(pending, pendingTask{name: name, rt: rt})
		}
	}
	if len(pending) == 0 {
		return
	}
	var (
		wg    sync.WaitGroup
		sem   = make(chan struct{}, recoverParallelism)
		outMu sync.Mutex
	)
	for _, p := range pending {
		wg.Add(1)
		sem <- struct{}{}
		go func(name string, rt *taskRT) {
			defer func() { <-sem; wg.Done() }()
			rt.mu.Lock()
			addr, id, commit := rt.recoverAddr, rt.recoverID, rt.recoverCommit
			db, connName := rt.info.Database, rt.info.Conn
			rt.mu.Unlock()
			rsp, _ := obs.StartSpan(r.ctx, "resolve:"+name, obs.KindRecovery)
			rsp.SetAttr("site", addr)
			resolved := false
			for attempt := 0; attempt <= r.eng.Recovery.Attempts; attempt++ {
				if attempt > 0 {
					time.Sleep(r.eng.Recovery.Backoff(attempt))
				}
				ctx, cancel := context.WithTimeout(context.Background(), r.eng.RecoverTimeout)
				st, err := r.eng.resolve(ctx, addr, id, commit)
				cancel()
				if err != nil {
					if errors.Is(err, wire.ErrNoSession) {
						// Termination protocol: a participant with no record of
						// the session either never voted or was acknowledged and
						// forgot. The recorded decision is the definite outcome —
						// presumed abort when it was rollback.
						st = ldbms.StateAborted
						if commit {
							st = ldbms.StateCommitted
						}
					} else if wire.Transient(err) {
						// Connection refused while the participant restarts (and
						// its transport kin) — keep trying under the policy.
						continue
					} else {
						break
					}
				}
				if st == ldbms.StateCommitted {
					rt.setStatus(dol.StatusCommitted, nil)
				} else {
					rt.setStatus(dol.StatusAborted, nil)
				}
				r.logOutcome(rt)
				resolved = true
				break
			}
			rt.mu.Lock()
			enteredAt := rt.inDoubtAt
			rt.mu.Unlock()
			if resolved {
				if !enteredAt.IsZero() {
					mInDoubtDwell.ObserveSince(enteredAt)
				}
				rsp.End()
			} else {
				mInDoubtUnresolved.Inc()
				rsp.EndErr(fmt.Errorf("dolengine: participant unreachable"))
				outMu.Lock()
				r.out.Unresolved = append(r.out.Unresolved, InDoubt{
					Task: name, Conn: connName, Database: db,
					Addr: addr, SessionID: id, Commit: commit,
				})
				outMu.Unlock()
			}
		}(p.name, p.rt)
	}
	wg.Wait()
}

// recoveryOf extracts the in-doubt recovery handle of a session, looking
// through wrappers that expose it by delegation. Wrappers forward the
// method unconditionally, so a handle with no re-attach address (an
// in-process session) does not count as recoverable.
func recoveryOf(s lam.Session) (lam.Recoverable, bool) {
	rec, ok := s.(lam.Recoverable)
	if !ok {
		return nil, false
	}
	if addr, _ := rec.RecoveryInfo(); addr == "" {
		return nil, false
	}
	return rec, true
}

func (r *run) execStmts(stmts []dol.Stmt) error {
	for _, s := range stmts {
		if err := r.execStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (r *run) execStmt(s dol.Stmt) error {
	switch st := s.(type) {
	case *dol.OpenStmt:
		client, err := r.eng.dir.Resolve(st.Site)
		if err != nil {
			return err
		}
		sess, err := client.Open(r.ctx, st.Database)
		if err != nil {
			// A breaker-open site is degraded, not fatal to the whole
			// plan: keep the connection as a stub that fails its tasks,
			// so tasks on healthy sites still run and the caller can
			// decide (per the vital set) whether partial results stand.
			if errors.Is(err, lam.ErrBreakerOpen) {
				r.conns[st.Alias] = &conn{db: st.Database, openErr: err}
				return nil
			}
			return fmt.Errorf("dolengine: open %s at %s: %w", st.Database, st.Site, err)
		}
		r.conns[st.Alias] = &conn{session: sess, db: st.Database}
		return nil

	case *dol.TaskStmt:
		c, ok := r.conns[st.Conn]
		if !ok {
			return fmt.Errorf("%w: %s (task %s)", ErrUnknownConn, st.Conn, st.Name)
		}
		rt := &taskRT{
			stmt: st,
			info: &TaskInfo{Status: dol.StatusNotRun, Database: c.db, Conn: st.Conn},
			done: make(chan struct{}),
		}
		for _, dep := range st.After {
			t, ok := r.tasks[dep]
			if !ok {
				return fmt.Errorf("%w: %s (AFTER of %s)", ErrUnknownTask, dep, st.Name)
			}
			rt.deps = append(rt.deps, t)
		}
		r.tasks[st.Name] = rt
		r.out.Tasks[st.Name] = rt.info
		r.wg.Add(1)
		go r.runTask(rt, c)
		return nil

	case *dol.ShipStmt:
		return r.execShip(st)

	case *dol.IfStmt:
		for _, name := range dol.TasksIn(st.Cond) {
			if err := r.waitTask(name); err != nil {
				return err
			}
		}
		holds := dol.Eval(st.Cond,
			func(task string) dol.TaskStatus {
				if t, ok := r.tasks[task]; ok {
					return t.status()
				}
				return dol.StatusNotRun
			},
			func(task string) int {
				if t, ok := r.tasks[task]; ok {
					t.mu.Lock()
					defer t.mu.Unlock()
					return t.info.RowsAffected
				}
				return 0
			})
		if holds {
			return r.execStmts(st.Then)
		}
		return r.execStmts(st.Else)

	case *dol.CommitStmt:
		// All named tasks must settle before the decision is journaled,
		// so every prepared record precedes the decision record.
		for _, name := range st.Tasks {
			if err := r.waitTask(name); err != nil {
				return err
			}
		}
		dsp, _ := obs.StartSpan(r.ctx, "2pc:decision", obs.Kind2PC)
		dsp.SetAttr("decision", "commit")
		defer dsp.End()
		if r.log != nil {
			if err := r.log.Decision(true, st.Tasks); err != nil {
				// The write-ahead rule: a commit decision that is not on
				// stable storage must never be delivered. Abort the named
				// tasks — presumed abort keeps that safe without a log.
				for _, name := range st.Tasks {
					_ = r.abortTask(name)
				}
				return fmt.Errorf("dolengine: commit decision not durable: %w", err)
			}
		}
		for _, name := range st.Tasks {
			if err := r.commitTask(name); err != nil {
				return err
			}
		}
		return nil

	case *dol.AbortStmt:
		for _, name := range st.Tasks {
			if err := r.waitTask(name); err != nil {
				return err
			}
		}
		if r.log != nil {
			// Presumed abort: recovery rolls back any task without a
			// logged commit decision, so a failed abort record is safe
			// to ignore.
			_ = r.log.Decision(false, st.Tasks)
		}
		for _, name := range st.Tasks {
			if err := r.abortTask(name); err != nil {
				return err
			}
		}
		return nil

	case *dol.StatusStmt:
		r.out.Status = st.Code
		return nil

	case *dol.CloseStmt:
		for _, alias := range st.Aliases {
			c, ok := r.conns[alias]
			if !ok {
				return fmt.Errorf("%w: %s", ErrUnknownConn, alias)
			}
			// Wait for tasks using this connection before closing it.
			for _, t := range r.tasks {
				if t.stmt.Conn == alias {
					<-t.done
				}
			}
			c.mu.Lock()
			if c.session != nil {
				_ = c.session.Close()
				c.session = nil
			}
			c.mu.Unlock()
		}
		return nil

	default:
		return fmt.Errorf("dolengine: unsupported statement %T", s)
	}
}

// runTask executes one task's body on its connection.
func (r *run) runTask(rt *taskRT, c *conn) {
	defer r.wg.Done()
	defer close(rt.done)

	// Honor AFTER dependencies.
	for _, dep := range rt.deps {
		<-dep.done
	}
	rt.setStatus(dol.StatusRunning, nil)
	start := time.Now()

	// The task span covers the task's subquery work; wire call spans made
	// through sctx parent under it. 2PC phases get their own child spans.
	span, sctx := obs.StartSpan(r.ctx, "task:"+rt.stmt.Name, obs.KindTask)
	span.SetAttr("conn", rt.stmt.Conn)
	span.SetAttr("db", c.db)
	defer func() {
		st := rt.status()
		span.SetAttr("status", st.String())
		span.End()
		mTaskLatency.With(st.String()).ObserveSince(start)
	}()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.session == nil {
		err := c.openErr
		if err == nil {
			err = fmt.Errorf("dolengine: connection %s closed", rt.stmt.Conn)
		}
		rt.setStatus(dol.StatusError, err)
		r.logOutcome(rt)
		return
	}
	for _, stmt := range rt.stmt.Body {
		res, err := c.session.Exec(sctx, sqlparser.Deparse(stmt))
		if err != nil {
			rt.setStatus(dol.StatusAborted, err)
			r.logOutcome(rt)
			return
		}
		rt.mu.Lock()
		// Keep the last row-producing result: cleanup statements (e.g. a
		// trailing DROP of shipped temp tables) must not mask the query
		// result the plan exists to produce.
		if len(res.Columns) > 0 || rt.info.Result == nil {
			rt.info.Result = res
		}
		if res.Plan != nil {
			rt.info.Plan = res.Plan
		}
		rt.info.RowsAffected += res.RowsAffected
		rt.info.Elapsed = time.Since(start)
		rt.mu.Unlock()
	}
	if rt.stmt.NoCommit {
		psp, pctx := obs.StartSpan(sctx, "prepare:"+rt.stmt.Name, obs.Kind2PC)
		err := c.session.Prepare(pctx)
		psp.EndErr(err)
		if err != nil {
			// A transport failure leaves the vote unknown: the LAM may have
			// prepared and parked the session. Record an in-doubt rollback —
			// the plan's IF sees the task as not-prepared and aborts the
			// unit, so rollback is the synchronization-point decision.
			if rec, ok := recoveryOf(c.session); ok && wire.Transient(err) {
				rt.markInDoubt(rec, false, err)
				return
			}
			rt.setStatus(dol.StatusAborted, err)
			r.logOutcome(rt)
			return
		}
		rt.setStatus(dol.StatusPrepared, nil)
		r.logPrepared(rt, c.session)
		return
	}
	csp, cctx := obs.StartSpan(sctx, "commit:"+rt.stmt.Name, obs.Kind2PC)
	err := c.session.Commit(cctx)
	csp.EndErr(err)
	if err != nil {
		rt.setStatus(dol.StatusAborted, err)
		r.logOutcome(rt)
		return
	}
	rt.setStatus(dol.StatusCommitted, nil)
	r.logOutcome(rt)
}

func (r *run) waitTask(name string) error {
	t, ok := r.tasks[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, name)
	}
	<-t.done
	return nil
}

// commitTask commits a prepared task. Committing an already committed
// task is a no-op; committing an aborted task leaves it aborted.
func (r *run) commitTask(name string) error {
	t, ok := r.tasks[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, name)
	}
	<-t.done
	if t.status() != dol.StatusPrepared {
		return nil
	}
	c := r.conns[t.stmt.Conn]
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.session == nil {
		t.setStatus(dol.StatusError, fmt.Errorf("dolengine: connection %s closed before commit", t.stmt.Conn))
		r.logOutcome(t)
		return nil
	}
	sp, sctx := obs.StartSpan(r.ctx, "commit:"+name, obs.Kind2PC)
	err := c.session.Commit(sctx)
	sp.EndErr(err)
	if err != nil {
		// The decision was COMMIT. If the transport failed the outcome is
		// unknown — never report Aborted (that would make the global state
		// silently Incorrect); record in-doubt for the recovery loop.
		if rec, ok := recoveryOf(c.session); ok && wire.Transient(err) {
			t.markInDoubt(rec, true, err)
			return nil
		}
		t.setStatus(dol.StatusAborted, err)
		r.logOutcome(t)
		return nil
	}
	t.setStatus(dol.StatusCommitted, nil)
	r.logOutcome(t)
	return nil
}

// abortTask rolls back a prepared or running task's session. Aborting a
// committed task is a no-op (compensation handles that case).
func (r *run) abortTask(name string) error {
	t, ok := r.tasks[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, name)
	}
	<-t.done
	st := t.status()
	if st != dol.StatusPrepared {
		return nil
	}
	c := r.conns[t.stmt.Conn]
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.session == nil {
		return nil
	}
	sp, sctx := obs.StartSpan(r.ctx, "rollback:"+name, obs.Kind2PC)
	err := c.session.Rollback(sctx)
	sp.EndErr(err)
	if err != nil {
		if rec, ok := recoveryOf(c.session); ok && wire.Transient(err) {
			t.markInDoubt(rec, false, err)
			return nil
		}
		t.setStatus(dol.StatusError, err)
		r.logOutcome(t)
		return nil
	}
	t.setStatus(dol.StatusAborted, nil)
	r.logOutcome(t)
	return nil
}

// execShip creates the destination table and copies the source task's
// result rows into it, inside the destination session's open transaction.
func (r *run) execShip(st *dol.ShipStmt) error {
	src, ok := r.tasks[st.Task]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, st.Task)
	}
	<-src.done
	status := src.status()
	if status != dol.StatusPrepared && status != dol.StatusCommitted {
		return fmt.Errorf("%w: task %s is %s", ErrShipFailed, st.Task, status)
	}
	c, ok := r.conns[st.To]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownConn, st.To)
	}
	src.mu.Lock()
	result := src.info.Result
	src.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.session == nil {
		return fmt.Errorf("dolengine: connection %s closed before ship", st.To)
	}
	var create strings.Builder
	create.WriteString("CREATE TABLE ")
	create.WriteString(st.Table)
	create.WriteString(" (")
	for i, col := range st.Columns {
		if i > 0 {
			create.WriteString(", ")
		}
		create.WriteString(col.Name)
		create.WriteString(" ")
		create.WriteString(typeNameOf(col))
	}
	create.WriteString(")")
	if _, err := c.session.Exec(r.ctx, create.String()); err != nil {
		return fmt.Errorf("dolengine: ship create: %w", err)
	}
	if result == nil || len(result.Rows) == 0 {
		return nil
	}
	const batch = 64
	for start := 0; start < len(result.Rows); start += batch {
		end := start + batch
		if end > len(result.Rows) {
			end = len(result.Rows)
		}
		var ins strings.Builder
		ins.WriteString("INSERT INTO ")
		ins.WriteString(st.Table)
		ins.WriteString(" VALUES ")
		for ri, row := range result.Rows[start:end] {
			if ri > 0 {
				ins.WriteString(", ")
			}
			ins.WriteString("(")
			for vi, v := range row {
				if vi > 0 {
					ins.WriteString(", ")
				}
				ins.WriteString(v.SQL())
			}
			ins.WriteString(")")
		}
		if _, err := c.session.Exec(r.ctx, ins.String()); err != nil {
			return fmt.Errorf("dolengine: ship insert: %w", err)
		}
	}
	return nil
}

func typeNameOf(c sqlparser.ColumnDef) string {
	switch c.Type {
	case sqlval.KindInt:
		return "INTEGER"
	case sqlval.KindFloat:
		return "FLOAT"
	case sqlval.KindBool:
		return "BOOLEAN"
	default:
		if c.Width > 0 {
			return fmt.Sprintf("CHAR(%d)", c.Width)
		}
		return "CHAR"
	}
}
