package dolengine

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"msql/internal/dol"
	"msql/internal/lam"
	"msql/internal/ldbms"
)

// airlineFederation builds continental/delta/united servers with the
// paper's flight data and returns a directory mapping sites to LAMs.
func airlineFederation(t testing.TB) (MapDirectory, map[string]*ldbms.Server) {
	t.Helper()
	servers := map[string]*ldbms.Server{}
	dir := MapDirectory{}
	specs := []struct {
		site, db, create, insert string
	}{
		{"site1", "continental",
			"CREATE TABLE flights (flnu INTEGER, source CHAR(20), destination CHAR(20), rate FLOAT)",
			"INSERT INTO flights VALUES (1, 'Houston', 'San Antonio', 100.0), (2, 'Austin', 'Dallas', 50.0)"},
		{"site2", "delta",
			"CREATE TABLE flight (fnu INTEGER, source CHAR(20), dest CHAR(20), rate FLOAT)",
			"INSERT INTO flight VALUES (10, 'Houston', 'San Antonio', 110.0)"},
		{"site3", "united",
			"CREATE TABLE flight (fn INTEGER, sour CHAR(20), dest CHAR(20), rates FLOAT)",
			"INSERT INTO flight VALUES (20, 'Houston', 'San Antonio', 120.0)"},
	}
	for _, sp := range specs {
		srv := ldbms.NewServer(sp.site, ldbms.ProfileOracleLike(), 1)
		if err := srv.CreateDatabase(sp.db); err != nil {
			t.Fatal(err)
		}
		sess, err := srv.OpenSession(sp.db)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Exec(sp.create); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Exec(sp.insert); err != nil {
			t.Fatal(err)
		}
		sess.Commit()
		sess.Close()
		servers[sp.db] = srv
		dir[sp.site] = lam.NewLocal(srv)
	}
	return dir, servers
}

func rateOf(t *testing.T, srv *ldbms.Server, db, table, rateCol string, id int) float64 {
	t.Helper()
	sess, err := srv.OpenSession(db)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Exec(fmt.Sprintf("SELECT %s FROM %s", rateCol, table))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := res.Rows[0][0].AsFloat()
	return f
}

// paperProgram is the Section 4.3 evaluation plan.
const paperProgram = `
DOLBEGIN
OPEN continental AT site1 AS cont;
OPEN delta AT site2 AS delta;
OPEN united AT site3 AS unit;
TASK T1 NOCOMMIT FOR cont
{ UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston' AND destination = 'San Antonio' }
ENDTASK;
TASK T2 FOR delta
{ UPDATE flight SET rate = rate * 1.1 WHERE source = 'Houston' AND dest = 'San Antonio' }
ENDTASK;
TASK T3 NOCOMMIT FOR unit
{ UPDATE flight SET rates = rates * 1.1 WHERE sour = 'Houston' AND dest = 'San Antonio' }
ENDTASK;
IF (T1=P) AND (T3=P) THEN
BEGIN
COMMIT T1, T3;
DOLSTATUS=0;
END;
ELSE
BEGIN
ABORT T1, T3;
DOLSTATUS=1;
END;
CLOSE cont delta unit;
DOLEND
`

func runProgram(t *testing.T, dir Directory, src string) *Outcome {
	t.Helper()
	prog, err := dol.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := New(dir).Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPaperProgramSuccessPath(t *testing.T) {
	dir, servers := airlineFederation(t)
	out := runProgram(t, dir, paperProgram)
	if out.Status != 0 {
		t.Fatalf("DOLSTATUS = %d", out.Status)
	}
	if out.TaskStatus("T1") != dol.StatusCommitted || out.TaskStatus("T3") != dol.StatusCommitted {
		t.Fatalf("vital tasks: T1=%s T3=%s", out.TaskStatus("T1"), out.TaskStatus("T3"))
	}
	if out.TaskStatus("T2") != dol.StatusCommitted {
		t.Fatalf("T2 = %s", out.TaskStatus("T2"))
	}
	// All three rates raised.
	for db, probe := range map[string][3]string{
		"continental": {"flights", "rate", "110"},
		"delta":       {"flight", "rate", "121"},
		"united":      {"flight", "rates", "132"},
	} {
		got := rateOf(t, servers[db], db, probe[0], probe[1], 0)
		if got < 109 || got > 133 {
			t.Errorf("%s rate = %v", db, got)
		}
	}
	cont := rateOf(t, servers["continental"], "continental", "flights", "rate", 0)
	if cont < 109.9 || cont > 110.1 {
		t.Errorf("continental rate = %v", cont)
	}
}

func TestPaperProgramVitalFailureRollsBackBoth(t *testing.T) {
	dir, servers := airlineFederation(t)
	// Force united's update to fail: both vital tasks must end aborted,
	// DOLSTATUS=1, continental's prepared update rolled back.
	servers["united"].Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "united"})
	out := runProgram(t, dir, paperProgram)
	if out.Status != 1 {
		t.Fatalf("DOLSTATUS = %d", out.Status)
	}
	if out.TaskStatus("T1") != dol.StatusAborted || out.TaskStatus("T3") != dol.StatusAborted {
		t.Fatalf("T1=%s T3=%s", out.TaskStatus("T1"), out.TaskStatus("T3"))
	}
	if got := rateOf(t, servers["continental"], "continental", "flights", "rate", 0); got != 100 {
		t.Errorf("continental rate = %v, want rolled back to 100", got)
	}
	if got := rateOf(t, servers["united"], "united", "flight", "rates", 0); got != 120 {
		t.Errorf("united rate = %v", got)
	}
	// Delta is NON VITAL: its autocommitted update survives regardless.
	if got := rateOf(t, servers["delta"], "delta", "flight", "rate", 0); got < 120.9 || got > 121.1 {
		t.Errorf("delta rate = %v, non-vital update should stand", got)
	}
}

func TestPrepareFaultAbortsVitalSet(t *testing.T) {
	dir, servers := airlineFederation(t)
	servers["continental"].Faults().Add(ldbms.FaultRule{Op: ldbms.FaultPrepare, Database: "continental"})
	out := runProgram(t, dir, paperProgram)
	if out.Status != 1 {
		t.Fatalf("DOLSTATUS = %d", out.Status)
	}
	if out.TaskStatus("T1") != dol.StatusAborted {
		t.Fatalf("T1 = %s", out.TaskStatus("T1"))
	}
	if got := rateOf(t, servers["united"], "united", "flight", "rates", 0); got != 120 {
		t.Errorf("united rate = %v", got)
	}
	if err := out.Tasks["T1"].Err; !errors.Is(err, ldbms.ErrInjected) {
		t.Fatalf("T1 err = %v", err)
	}
}

func TestShipMovesRows(t *testing.T) {
	dir, servers := airlineFederation(t)
	src := `
DOLBEGIN
OPEN continental AT site1 AS cont;
OPEN delta AT site2 AS delta;
TASK T1 FOR delta
{ SELECT fnu, rate FROM flight }
ENDTASK;
SHIP T1 TO cont TABLE mtmp_delta (fnu INTEGER, rate FLOAT);
TASK T2 AFTER T1 FOR cont
{ SELECT COUNT(*) FROM mtmp_delta; DROP TABLE mtmp_delta }
ENDTASK;
CLOSE cont delta;
DOLEND
`
	out := runProgram(t, dir, src)
	if out.TaskStatus("T2") != dol.StatusCommitted {
		t.Fatalf("T2 = %s (%v)", out.TaskStatus("T2"), out.Tasks["T2"].Err)
	}
	// The temp table is gone after the program.
	sess, _ := servers["continental"].OpenSession("continental")
	defer sess.Close()
	if _, err := sess.Exec("SELECT * FROM mtmp_delta"); err == nil {
		t.Fatal("temp table survived")
	}
}

func TestShipFailedSourceErrors(t *testing.T) {
	dir, servers := airlineFederation(t)
	servers["delta"].Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "delta"})
	src := `
DOLBEGIN
OPEN continental AT site1 AS cont;
OPEN delta AT site2 AS delta;
TASK T1 FOR delta
{ SELECT fnu FROM flight }
ENDTASK;
SHIP T1 TO cont TABLE mtmp_x (fnu INTEGER);
CLOSE cont delta;
DOLEND
`
	prog, err := dol.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(dir).Run(context.Background(), prog)
	if !errors.Is(err, ErrShipFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompensationPath(t *testing.T) {
	// Continental on an autocommit-only server, compensation instead of
	// rollback: the §3.3 path "Continental committed, United aborted".
	dir := MapDirectory{}
	servers := map[string]*ldbms.Server{}

	contSrv := ldbms.NewServer("site1", ldbms.ProfileAutoCommitOnly(), 1)
	contSrv.CreateDatabase("continental")
	s, _ := contSrv.OpenSession("continental")
	s.Exec("CREATE TABLE flights (flnu INTEGER, source CHAR(20), destination CHAR(20), rate FLOAT)")
	s.Exec("INSERT INTO flights VALUES (1, 'Houston', 'San Antonio', 100.0)")
	s.Close()
	dir["site1"] = lam.NewLocal(contSrv)
	servers["continental"] = contSrv

	unitSrv := ldbms.NewServer("site3", ldbms.ProfileOracleLike(), 1)
	unitSrv.CreateDatabase("united")
	s2, _ := unitSrv.OpenSession("united")
	s2.Exec("CREATE TABLE flight (fn INTEGER, sour CHAR(20), dest CHAR(20), rates FLOAT)")
	s2.Exec("INSERT INTO flight VALUES (20, 'Houston', 'San Antonio', 120.0)")
	s2.Commit()
	s2.Close()
	dir["site3"] = lam.NewLocal(unitSrv)
	servers["united"] = unitSrv

	// Fail united's exec: continental already autocommitted, so the plan
	// compensates it.
	unitSrv.Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "united"})

	src := `
DOLBEGIN
OPEN continental AT site1 AS cont;
OPEN united AT site3 AS unit;
TASK T1 FOR cont
{ UPDATE flights SET rate = rate * 1.1 WHERE source = 'Houston' }
ENDTASK;
TASK T3 NOCOMMIT FOR unit
{ UPDATE flight SET rates = rates * 1.1 WHERE sour = 'Houston' }
ENDTASK;
IF (T1=C) AND (T3=P) THEN
BEGIN
COMMIT T3;
DOLSTATUS=0;
END;
ELSE
BEGIN
ABORT T3;
IF (T1=C) THEN
BEGIN
TASK TC1 FOR cont
{ UPDATE flights SET rate = rate / 1.1 WHERE source = 'Houston' }
ENDTASK;
END;
DOLSTATUS=1;
END;
CLOSE cont unit;
DOLEND
`
	out := runProgram(t, dir, src)
	if out.Status != 1 {
		t.Fatalf("DOLSTATUS = %d", out.Status)
	}
	if out.TaskStatus("TC1") != dol.StatusCommitted {
		t.Fatalf("TC1 = %s", out.TaskStatus("TC1"))
	}
	// Compensation restored the fare.
	got := rateOf(t, servers["continental"], "continental", "flights", "rate", 0)
	if got < 99.999 || got > 100.001 {
		t.Errorf("compensated rate = %v", got)
	}
}

func TestParallelTasksOverlap(t *testing.T) {
	// Three independent tasks run concurrently; total status must be
	// committed for all. (Timing assertions live in the benchmarks.)
	dir, _ := airlineFederation(t)
	src := `
DOLBEGIN
OPEN continental AT site1 AS c1;
OPEN delta AT site2 AS c2;
OPEN united AT site3 AS c3;
TASK T1 FOR c1 { SELECT COUNT(*) FROM flights } ENDTASK;
TASK T2 FOR c2 { SELECT COUNT(*) FROM flight } ENDTASK;
TASK T3 FOR c3 { SELECT COUNT(*) FROM flight } ENDTASK;
CLOSE c1 c2 c3;
DOLEND
`
	out := runProgram(t, dir, src)
	for _, name := range []string{"T1", "T2", "T3"} {
		if out.TaskStatus(name) != dol.StatusCommitted {
			t.Errorf("%s = %s", name, out.TaskStatus(name))
		}
	}
}

func TestEngineErrors(t *testing.T) {
	dir, _ := airlineFederation(t)
	cases := []string{
		"DOLBEGIN\nOPEN x AT nowhere AS c;\nDOLEND",
		"DOLBEGIN\nTASK T1 FOR nope { SELECT 1 } ENDTASK;\nDOLEND",
		"DOLBEGIN\nCLOSE ghost;\nDOLEND",
		"DOLBEGIN\nCOMMIT T9;\nDOLEND",
		"DOLBEGIN\nOPEN continental AT site1 AS c;\nTASK T2 AFTER T9 FOR c { SELECT 1 } ENDTASK;\nDOLEND",
	}
	for _, src := range cases {
		prog, err := dol.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := New(dir).Run(context.Background(), prog); err == nil {
			t.Errorf("Run(%q) succeeded, want error", src)
		}
	}
}

func TestAfterChainsObserveOrder(t *testing.T) {
	// T2 AFTER T1 on the same connection: T2's read must observe T1's
	// uncommitted write (same session, same transaction).
	dir, _ := airlineFederation(t)
	out := runProgram(t, dir, `
DOLBEGIN
OPEN continental AT site1 AS c;
TASK T1 FOR c
{ INSERT INTO flights VALUES (500, 'Austin', 'Houston', 42.0) }
ENDTASK;
TASK T2 AFTER T1 FOR c
{ SELECT rate FROM flights WHERE flnu = 500 }
ENDTASK;
CLOSE c;
DOLEND`)
	if out.TaskStatus("T2") != dol.StatusCommitted {
		t.Fatalf("T2 = %s (%v)", out.TaskStatus("T2"), out.Tasks["T2"].Err)
	}
	res := out.Tasks["T2"].Result
	if len(res.Rows) != 1 {
		t.Fatalf("T2 rows = %v", res.Rows)
	}
	if f, _ := res.Rows[0][0].AsFloat(); f != 42 {
		t.Fatalf("rate = %v", f)
	}
}

func TestNestedIf(t *testing.T) {
	dir, _ := airlineFederation(t)
	out := runProgram(t, dir, `
DOLBEGIN
OPEN continental AT site1 AS c;
TASK T1 FOR c { SELECT 1 } ENDTASK;
IF (T1=C) THEN
BEGIN
IF (T1=A) THEN
BEGIN
DOLSTATUS=5;
END;
ELSE
BEGIN
DOLSTATUS=7;
END;
END;
CLOSE c;
DOLEND`)
	if out.Status != 7 {
		t.Fatalf("status = %d", out.Status)
	}
}

func TestTaskOnPreviouslyClosedConnection(t *testing.T) {
	dir, _ := airlineFederation(t)
	prog, err := dol.Parse(`
DOLBEGIN
OPEN continental AT site1 AS c;
CLOSE c;
TASK T1 FOR c { SELECT 1 } ENDTASK;
DOLEND`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := New(dir).Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if out.TaskStatus("T1") != dol.StatusError {
		t.Fatalf("T1 = %s", out.TaskStatus("T1"))
	}
}

func TestOutcomeDefaults(t *testing.T) {
	dir, _ := airlineFederation(t)
	out := runProgram(t, dir, "DOLBEGIN\nOPEN continental AT site1 AS c;\nCLOSE c;\nDOLEND")
	if out.Status != -1 {
		t.Fatalf("default status = %d", out.Status)
	}
	if out.TaskStatus("missing") != dol.StatusNotRun {
		t.Fatal("unknown task should be not-run")
	}
}

func TestTaskResultExposed(t *testing.T) {
	dir, _ := airlineFederation(t)
	out := runProgram(t, dir, `
DOLBEGIN
OPEN continental AT site1 AS c;
TASK T1 FOR c { SELECT flnu, rate FROM flights WHERE source = 'Houston' } ENDTASK;
CLOSE c;
DOLEND`)
	info := out.Tasks["T1"]
	if info == nil || info.Result == nil {
		t.Fatal("missing task result")
	}
	if len(info.Result.Rows) != 1 || info.Database != "continental" {
		t.Fatalf("result = %+v", info)
	}
}
