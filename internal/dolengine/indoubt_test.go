package dolengine

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"msql/internal/dol"
	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/netfault"
	"msql/internal/relstore"
	"msql/internal/sqlengine"
)

// flakySession is a lam.Session + lam.Recoverable whose commit (or
// prepare) fails with a transport error, simulating a connection lost in
// the prepared-to-commit window.
type flakySession struct {
	addr       string
	id         int64
	failOp     string // "commit" | "prepare" | "rollback"
	mu         sync.Mutex
	execCalls  int
	commitTrys int
}

func (s *flakySession) Exec(ctx context.Context, sql string) (*sqlengine.Result, error) {
	s.mu.Lock()
	s.execCalls++
	s.mu.Unlock()
	return &sqlengine.Result{RowsAffected: 1}, nil
}

func (s *flakySession) Prepare(ctx context.Context) error {
	if s.failOp == "prepare" {
		return fmt.Errorf("lam fake (%s): prepare: %w", s.addr, io.EOF)
	}
	return nil
}

func (s *flakySession) Commit(ctx context.Context) error {
	s.mu.Lock()
	s.commitTrys++
	s.mu.Unlock()
	switch s.failOp {
	case "commit":
		return fmt.Errorf("lam fake (%s): commit: %w", s.addr, io.EOF)
	case "commit-definite":
		return fmt.Errorf("lam fake (%s): commit: disk full", s.addr)
	}
	return nil
}

func (s *flakySession) Rollback(ctx context.Context) error {
	if s.failOp == "rollback" {
		return fmt.Errorf("lam fake (%s): rollback: %w", s.addr, io.EOF)
	}
	return nil
}

func (s *flakySession) State(ctx context.Context) (ldbms.SessionState, error) {
	return ldbms.StateActive, nil
}
func (s *flakySession) Database() string              { return "db" }
func (s *flakySession) Close() error                  { return nil }
func (s *flakySession) RecoveryInfo() (string, int64) { return s.addr, s.id }

type flakyClient struct{ sess *flakySession }

func (c *flakyClient) ServiceName() string { return "fake" }
func (c *flakyClient) Profile(ctx context.Context) (ldbms.Profile, error) {
	return ldbms.ProfileOracleLike(), nil
}
func (c *flakyClient) Open(ctx context.Context, db string) (lam.Session, error) {
	return c.sess, nil
}
func (c *flakyClient) Describe(ctx context.Context, db, name string) ([]relstore.Column, error) {
	return nil, nil
}
func (c *flakyClient) ListTables(ctx context.Context, db string) ([]string, error) { return nil, nil }
func (c *flakyClient) ListViews(ctx context.Context, db string) ([]string, error)  { return nil, nil }
func (c *flakyClient) Close() error                                                { return nil }

const inDoubtProgram = `
DOLBEGIN
OPEN db AT fake AS c1;
TASK T1 NOCOMMIT FOR c1
{ UPDATE t SET x = 1 }
ENDTASK;
IF (T1=P) THEN
BEGIN
COMMIT T1;
DOLSTATUS=0;
END;
ELSE
BEGIN
ABORT T1;
DOLSTATUS=1;
END;
CLOSE c1;
DOLEND
`

func engineWith(t *testing.T, sess *flakySession) *Engine {
	t.Helper()
	eng := New(MapDirectory{"fake": &flakyClient{sess: sess}})
	eng.Recovery.BaseDelay = time.Millisecond
	eng.Recovery.MaxDelay = 5 * time.Millisecond
	eng.RecoverTimeout = 100 * time.Millisecond
	return eng
}

func TestCommitTransportFailureRecoversToCommitted(t *testing.T) {
	sess := &flakySession{addr: "10.0.0.1:9001", id: 7, failOp: "commit"}
	eng := engineWith(t, sess)

	var calls int
	var gotAddr string
	var gotID int64
	var gotCommit bool
	eng.resolve = func(ctx context.Context, addr string, id int64, commit bool) (ldbms.SessionState, error) {
		calls++
		gotAddr, gotID, gotCommit = addr, id, commit
		if calls < 3 {
			return 0, fmt.Errorf("dial %s: %w", addr, io.EOF) // LAM still down
		}
		return ldbms.StateCommitted, nil
	}

	prog, err := dol.Parse(inDoubtProgram)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.TaskStatus("T1"); got != dol.StatusCommitted {
		t.Fatalf("T1 = %v, want committed after recovery", got)
	}
	if len(out.Unresolved) != 0 {
		t.Fatalf("unresolved = %+v, want none", out.Unresolved)
	}
	if calls != 3 {
		t.Fatalf("resolve calls = %d, want 3 (2 failures + success)", calls)
	}
	if gotAddr != "10.0.0.1:9001" || gotID != 7 || !gotCommit {
		t.Fatalf("resolve(%s, %d, %v), want recorded commit decision for session 7", gotAddr, gotID, gotCommit)
	}
}

func TestPermanentFailureReportsUnresolved(t *testing.T) {
	sess := &flakySession{addr: "10.0.0.2:9001", id: 9, failOp: "commit"}
	eng := engineWith(t, sess)
	eng.Recovery.Attempts = 2

	calls := 0
	eng.resolve = func(ctx context.Context, addr string, id int64, commit bool) (ldbms.SessionState, error) {
		calls++
		return 0, fmt.Errorf("dial %s: %w", addr, io.EOF)
	}

	prog, err := dol.Parse(inDoubtProgram)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.TaskStatus("T1"); got != dol.StatusInDoubt {
		t.Fatalf("T1 = %v, want in-doubt when the LAM stays down", got)
	}
	if calls != 3 { // first try + 2 retries
		t.Fatalf("resolve calls = %d, want 3", calls)
	}
	if len(out.Unresolved) != 1 {
		t.Fatalf("unresolved = %+v, want one participant", out.Unresolved)
	}
	u := out.Unresolved[0]
	if u.Task != "T1" || u.Addr != "10.0.0.2:9001" || u.SessionID != 9 || !u.Commit {
		t.Fatalf("unresolved = %+v", u)
	}
	// The commit was attempted exactly once — never blindly replayed.
	if sess.commitTrys != 1 {
		t.Fatalf("commit attempts = %d, want 1", sess.commitTrys)
	}
}

func TestPrepareTransportFailureRecoversToAborted(t *testing.T) {
	sess := &flakySession{addr: "10.0.0.3:9001", id: 4, failOp: "prepare"}
	eng := engineWith(t, sess)

	var gotCommit bool
	eng.resolve = func(ctx context.Context, addr string, id int64, commit bool) (ldbms.SessionState, error) {
		gotCommit = commit
		return ldbms.StateAborted, nil
	}

	prog, err := dol.Parse(inDoubtProgram)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	// A lost prepare vote resolves to rollback — the unit aborted.
	if got := out.TaskStatus("T1"); got != dol.StatusAborted {
		t.Fatalf("T1 = %v, want aborted", got)
	}
	if gotCommit {
		t.Fatal("lost prepare must resolve with a rollback decision")
	}
	if out.Status != 1 {
		t.Fatalf("DOLSTATUS = %d, want 1 (abort branch)", out.Status)
	}
}

// TestReplayedCommitReturnsRecordedOutcome covers the lost-ack replay: a
// coordinator that crashes after its COMMIT reached the LAM but before
// the acknowledged outcome hit its journal re-delivers the same decision
// on recovery. The LAM's outcome tombstone must answer the replay with
// the recorded terminal state — not an "unknown session" error, and
// without applying the commit a second time.
func TestReplayedCommitReturnsRecordedOutcome(t *testing.T) {
	srv := ldbms.NewServer("svc", ldbms.ProfileOracleLike(), 1)
	if err := srv.CreateDatabase("db"); err != nil {
		t.Fatal(err)
	}
	seed, err := srv.OpenSession("db")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"CREATE TABLE t (x INTEGER)", "INSERT INTO t VALUES (1)"} {
		if _, err := seed.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	seed.Commit()
	seed.Close()

	ts, err := lam.Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	proxy, err := netfault.New(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	ctx := context.Background()
	c, err := lam.DialWith(ctx, proxy.Addr(), lam.DialOptions{
		CallTimeout: 2 * time.Second,
		Retry:       lam.RetryPolicy{Attempts: 0, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(ctx, "db")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, "UPDATE t SET x = x + 1"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	_, id := sess.(lam.Recoverable).RecoveryInfo()
	proxy.Sever() // coordinator dies in the prepared-to-commit window
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ids := ts.InDoubt(); len(ids) == 1 && ids[0] == id {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %d never parked; in-doubt = %v", id, ts.InDoubt())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// First delivery drives the parked session to commit.
	st, err := lam.Resolve(ctx, proxy.Addr(), id, true)
	if err != nil {
		t.Fatal(err)
	}
	if st != ldbms.StateCommitted {
		t.Fatalf("first resolve state = %v, want committed", st)
	}
	// The replay (the first ack was lost) answers from the tombstone.
	st, err = lam.Resolve(ctx, proxy.Addr(), id, true)
	if err != nil {
		t.Fatalf("replayed commit errored: %v", err)
	}
	if st != ldbms.StateCommitted {
		t.Fatalf("replayed resolve state = %v, want the recorded committed outcome", st)
	}

	// The update applied exactly once.
	check, err := srv.OpenSession("db")
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	res, err := check.Exec("SELECT x FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := res.Rows[0][0].AsFloat(); f != 2 {
		t.Fatalf("x = %v, want 2 (committed once, replay must not re-apply)", f)
	}
}

func TestDefiniteCommitErrorIsNotInDoubt(t *testing.T) {
	// A definite (server-answered) commit failure must go to Aborted
	// directly — the outcome is known, so no recovery and no resolve calls.
	sess := &flakySession{addr: "10.0.0.4:9001", id: 2, failOp: "commit-definite"}
	eng := engineWith(t, sess)
	resolveCalled := false
	eng.resolve = func(ctx context.Context, addr string, id int64, commit bool) (ldbms.SessionState, error) {
		resolveCalled = true
		return ldbms.StateAborted, nil
	}
	prog, err := dol.Parse(inDoubtProgram)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Run(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.TaskStatus("T1"); got != dol.StatusAborted {
		t.Fatalf("T1 = %v, want aborted on a definite commit failure", got)
	}
	if resolveCalled {
		t.Fatal("definite failure is not in-doubt, resolve must not run")
	}
}
