// Package catalog implements the two multidatabase-level dictionaries of
// the paper's schema architecture (Figure 2): the Auxiliary Directory
// (AD), which records the services of the federation together with their
// access and commit capabilities, and the Global Data Dictionary (GDD),
// which records the names, types and widths of the database objects
// visible at the multidatabase level. The GDD is what multiple identifier
// substitution consults to expand '%' patterns.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"msql/internal/relstore"
	"msql/internal/sqlval"
)

// Catalog errors.
var (
	ErrNoService     = errors.New("catalog: service not incorporated")
	ErrServiceExists = errors.New("catalog: service already incorporated")
	ErrNoGlobalDB    = errors.New("catalog: database not known to the federation")
	ErrNoGlobalTable = errors.New("catalog: table not known to the federation")
)

// DDLClass names the statement classes whose commit behaviour INCORPORATE
// records individually.
var DDLClasses = []string{"CREATE", "INSERT", "DROP"}

// ServiceEntry is one Auxiliary Directory record, the product of an
// INCORPORATE SERVICE statement.
type ServiceEntry struct {
	// Name of the service inside the federation.
	Name string
	// Site is the service address; empty for in-process services.
	Site string
	// Connect is the CONNECTMODE: true (CONNECT) when the LDBMS supports
	// multiple databases.
	Connect bool
	// AutoCommitOnly is the COMMITMODE: true (COMMIT) when the LDBMS
	// autocommits everything; false (NOCOMMIT) when it offers 2PC.
	AutoCommitOnly bool
	// DDLCommit records, per DDL class, whether the class autocommits
	// (COMMIT) even on a 2PC service.
	DDLCommit map[string]bool
}

// Clone deep-copies the entry.
func (e *ServiceEntry) Clone() *ServiceEntry {
	c := *e
	c.DDLCommit = make(map[string]bool, len(e.DDLCommit))
	for k, v := range e.DDLCommit {
		c.DDLCommit[k] = v
	}
	return &c
}

// SupportsTwoPC reports whether the service provides a 2PC interface.
func (e *ServiceEntry) SupportsTwoPC() bool { return !e.AutoCommitOnly }

// AD is the Auxiliary Directory.
type AD struct {
	mu       sync.RWMutex
	services map[string]*ServiceEntry
}

// NewAD returns an empty directory.
func NewAD() *AD { return &AD{services: make(map[string]*ServiceEntry)} }

// Incorporate inserts or replaces a service record.
func (a *AD) Incorporate(e ServiceEntry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e.DDLCommit == nil {
		e.DDLCommit = make(map[string]bool)
	}
	a.services[e.Name] = e.Clone()
}

// Lookup returns the record of a service.
func (a *AD) Lookup(name string) (*ServiceEntry, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	e, ok := a.services[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoService, name)
	}
	return e.Clone(), nil
}

// Remove deletes a service record.
func (a *AD) Remove(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.services[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoService, name)
	}
	delete(a.services, name)
	return nil
}

// Names returns sorted service names.
func (a *AD) Names() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.services))
	for n := range a.services {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TableDef is the GDD record of one table or view.
type TableDef struct {
	Name    string
	IsView  bool
	Columns []relstore.Column
}

// Clone deep-copies the definition.
func (t *TableDef) Clone() *TableDef {
	c := *t
	c.Columns = append([]relstore.Column(nil), t.Columns...)
	return &c
}

// ColumnNames lists the column names.
func (t *TableDef) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// HasColumn reports whether the table has the named column.
func (t *TableDef) HasColumn(name string) bool {
	for _, c := range t.Columns {
		if c.Name == name {
			return true
		}
	}
	return false
}

// DatabaseDef is the GDD record of one database.
type DatabaseDef struct {
	Name    string
	Service string
	Tables  map[string]*TableDef
}

// GDD is the Global Data Dictionary.
type GDD struct {
	mu       sync.RWMutex
	dbs      map[string]*DatabaseDef
	multidbs map[string][]string
}

// NewGDD returns an empty dictionary.
func NewGDD() *GDD {
	return &GDD{
		dbs:      make(map[string]*DatabaseDef),
		multidbs: make(map[string][]string),
	}
}

// ErrNameTaken reports a multidatabase/database name collision.
var ErrNameTaken = errors.New("catalog: name already in use")

// DefineMultidatabase registers a named multidatabase (virtual database):
// a set of member databases usable in USE scopes. Members must be known
// databases; the name must not collide with a database.
func (g *GDD) DefineMultidatabase(name string, members []string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.dbs[name]; ok {
		return fmt.Errorf("%w: %s is a database", ErrNameTaken, name)
	}
	if len(members) == 0 {
		return fmt.Errorf("catalog: multidatabase %s needs at least one member", name)
	}
	for _, m := range members {
		if _, ok := g.dbs[m]; !ok {
			return fmt.Errorf("%w: %s (member of %s)", ErrNoGlobalDB, m, name)
		}
	}
	g.multidbs[name] = append([]string(nil), members...)
	return nil
}

// DropMultidatabase removes a multidatabase definition.
func (g *GDD) DropMultidatabase(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.multidbs[name]; !ok {
		return fmt.Errorf("catalog: no multidatabase %s", name)
	}
	delete(g.multidbs, name)
	return nil
}

// Multidatabase returns the members of a named multidatabase.
func (g *GDD) Multidatabase(name string) ([]string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	m, ok := g.multidbs[name]
	if !ok {
		return nil, false
	}
	return append([]string(nil), m...), true
}

// MultidatabaseNames lists the defined multidatabases.
func (g *GDD) MultidatabaseNames() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.multidbs))
	for n := range g.multidbs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DefineDatabase registers (or re-targets) a database at the global level.
// Database names are unique inside the federation, per §3.1.
func (g *GDD) DefineDatabase(name, service string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if d, ok := g.dbs[name]; ok {
		d.Service = service
		return
	}
	g.dbs[name] = &DatabaseDef{Name: name, Service: service, Tables: make(map[string]*TableDef)}
}

// DropDatabase removes a database from the dictionary.
func (g *GDD) DropDatabase(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.dbs[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoGlobalDB, name)
	}
	delete(g.dbs, name)
	return nil
}

// Database returns the record of one database.
func (g *GDD) Database(name string) (*DatabaseDef, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	d, ok := g.dbs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoGlobalDB, name)
	}
	// Shallow-clone the map so callers can iterate without racing.
	c := &DatabaseDef{Name: d.Name, Service: d.Service, Tables: make(map[string]*TableDef, len(d.Tables))}
	for k, v := range d.Tables {
		c.Tables[k] = v.Clone()
	}
	return c, nil
}

// ServiceOf returns the service hosting a database.
func (g *GDD) ServiceOf(db string) (string, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	d, ok := g.dbs[db]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoGlobalDB, db)
	}
	return d.Service, nil
}

// DatabaseNames returns sorted database names.
func (g *GDD) DatabaseNames() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.dbs))
	for n := range g.dbs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PutTable inserts or replaces a table definition; IMPORT "replaces the
// definition of previously imported database objects, if necessary".
func (g *GDD) PutTable(db string, def TableDef) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	d, ok := g.dbs[db]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoGlobalDB, db)
	}
	d.Tables[def.Name] = def.Clone()
	return nil
}

// MergeTableColumns adds columns to a table definition, creating it when
// absent (partial IMPORT ... COLUMN).
func (g *GDD) MergeTableColumns(db, table string, isView bool, cols []relstore.Column) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	d, ok := g.dbs[db]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoGlobalDB, db)
	}
	def, ok := d.Tables[table]
	if !ok {
		def = &TableDef{Name: table, IsView: isView}
		d.Tables[table] = def
	}
	for _, c := range cols {
		if !def.HasColumn(c.Name) {
			def.Columns = append(def.Columns, c)
		}
	}
	return nil
}

// DropTable removes a table from the dictionary.
func (g *GDD) DropTable(db, table string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	d, ok := g.dbs[db]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoGlobalDB, db)
	}
	if _, ok := d.Tables[table]; !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoGlobalTable, db, table)
	}
	delete(d.Tables, table)
	return nil
}

// Table returns one table definition.
func (g *GDD) Table(db, table string) (*TableDef, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	d, ok := g.dbs[db]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoGlobalDB, db)
	}
	t, ok := d.Tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoGlobalTable, db, table)
	}
	return t.Clone(), nil
}

// MatchName reports whether name matches an MSQL multiple identifier
// pattern, where '%' stands for any run of characters. A pattern without
// '%' matches only itself.
func MatchName(name, pattern string) bool {
	if !strings.Contains(pattern, "%") {
		return name == pattern
	}
	return sqlval.Like(name, pattern)
}

// TablesMatching returns the sorted table names of db matching an MSQL
// multiple identifier pattern.
func (g *GDD) TablesMatching(db, pattern string) ([]string, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	d, ok := g.dbs[db]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoGlobalDB, db)
	}
	var out []string
	for name := range d.Tables {
		if MatchName(name, pattern) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// ColumnsMatching returns the sorted column names of db.table matching a
// pattern.
func (g *GDD) ColumnsMatching(db, table, pattern string) ([]string, error) {
	t, err := g.Table(db, table)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, c := range t.Columns {
		if MatchName(c.Name, pattern) {
			out = append(out, c.Name)
		}
	}
	sort.Strings(out)
	return out, nil
}
