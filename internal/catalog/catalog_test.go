package catalog

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/relstore"
	"msql/internal/sqlval"
)

func TestADIncorporateLookupRemove(t *testing.T) {
	ad := NewAD()
	ad.Incorporate(ServiceEntry{
		Name:           "oracle1",
		Site:           "127.0.0.1:9001",
		Connect:        true,
		AutoCommitOnly: false,
		DDLCommit:      map[string]bool{"CREATE": true},
	})
	e, err := ad.Lookup("oracle1")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Connect || !e.SupportsTwoPC() || !e.DDLCommit["CREATE"] {
		t.Fatalf("entry = %+v", e)
	}
	// Clone isolation: mutating the returned entry does not affect the AD.
	e.DDLCommit["DROP"] = true
	e2, _ := ad.Lookup("oracle1")
	if e2.DDLCommit["DROP"] {
		t.Fatal("lookup returned a shared map")
	}
	if _, err := ad.Lookup("none"); !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v", err)
	}
	// Replace semantics.
	ad.Incorporate(ServiceEntry{Name: "oracle1", AutoCommitOnly: true})
	e3, _ := ad.Lookup("oracle1")
	if e3.SupportsTwoPC() {
		t.Fatal("replace did not take effect")
	}
	if err := ad.Remove("oracle1"); err != nil {
		t.Fatal(err)
	}
	if err := ad.Remove("oracle1"); !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v", err)
	}
}

func TestADNames(t *testing.T) {
	ad := NewAD()
	ad.Incorporate(ServiceEntry{Name: "zeta"})
	ad.Incorporate(ServiceEntry{Name: "alpha"})
	names := ad.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v", names)
	}
}

func populatedGDD(t *testing.T) *GDD {
	t.Helper()
	g := NewGDD()
	g.DefineDatabase("continental", "svc1")
	g.DefineDatabase("delta", "svc2")
	g.DefineDatabase("united", "svc3")
	put := func(db, table string, cols ...string) {
		def := TableDef{Name: table}
		for _, c := range cols {
			def.Columns = append(def.Columns, relstore.Column{Name: c, Type: sqlval.KindString})
		}
		if err := g.PutTable(db, def); err != nil {
			t.Fatal(err)
		}
	}
	put("continental", "flights", "flnu", "source", "dep", "destination", "arr", "day", "rate")
	put("continental", "f838", "seatnu", "seatty", "seatstatus", "clientname")
	put("delta", "flight", "fnu", "source", "dest", "dep", "arr", "day", "rate")
	put("delta", "fnu747", "snu", "sty", "sstat", "passname")
	put("united", "flight", "fn", "sour", "dest", "depa", "arri", "day", "rates")
	put("united", "fn727", "sn", "st", "sst", "pasna")
	return g
}

func TestGDDTablesMatchingPaperPattern(t *testing.T) {
	g := populatedGDD(t)
	// The paper's UPDATE flight% resolves to flights/flight/flight.
	for db, want := range map[string]string{
		"continental": "flights",
		"delta":       "flight",
		"united":      "flight",
	} {
		got, err := g.TablesMatching(db, "flight%")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != want {
			t.Fatalf("%s: matches = %v, want [%s]", db, got, want)
		}
	}
}

func TestGDDColumnsMatchingPaperPatterns(t *testing.T) {
	g := populatedGDD(t)
	cases := []struct {
		db, table, pattern, want string
	}{
		{"continental", "flights", "rate%", "rate"},
		{"united", "flight", "rate%", "rates"},
		{"continental", "flights", "sour%", "source"},
		{"united", "flight", "sour%", "sour"},
		{"continental", "flights", "dest%", "destination"},
		{"delta", "flight", "dest%", "dest"},
	}
	for _, c := range cases {
		got, err := g.ColumnsMatching(c.db, c.table, c.pattern)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != c.want {
			t.Fatalf("%s.%s %s: matches = %v, want [%s]", c.db, c.table, c.pattern, got, c.want)
		}
	}
}

func TestGDDMultipleMatches(t *testing.T) {
	g := populatedGDD(t)
	got, err := g.TablesMatching("continental", "f%")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("matches = %v", got)
	}
	// Exact name without % matches only itself.
	got, _ = g.TablesMatching("continental", "f838")
	if len(got) != 1 || got[0] != "f838" {
		t.Fatalf("exact = %v", got)
	}
	got, _ = g.TablesMatching("continental", "f83")
	if len(got) != 0 {
		t.Fatalf("prefix without %% matched: %v", got)
	}
}

func TestGDDErrors(t *testing.T) {
	g := populatedGDD(t)
	if _, err := g.TablesMatching("nodb", "%"); !errors.Is(err, ErrNoGlobalDB) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.Table("continental", "missing"); !errors.Is(err, ErrNoGlobalTable) {
		t.Fatalf("err = %v", err)
	}
	if err := g.DropTable("continental", "missing"); !errors.Is(err, ErrNoGlobalTable) {
		t.Fatalf("err = %v", err)
	}
	if err := g.DropDatabase("nodb"); !errors.Is(err, ErrNoGlobalDB) {
		t.Fatalf("err = %v", err)
	}
	if err := g.PutTable("nodb", TableDef{Name: "t"}); !errors.Is(err, ErrNoGlobalDB) {
		t.Fatalf("err = %v", err)
	}
}

func TestGDDDropAndServiceOf(t *testing.T) {
	g := populatedGDD(t)
	svc, err := g.ServiceOf("delta")
	if err != nil || svc != "svc2" {
		t.Fatalf("service = %s, %v", svc, err)
	}
	if err := g.DropTable("delta", "flight"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Table("delta", "flight"); err == nil {
		t.Fatal("dropped table still present")
	}
	if err := g.DropDatabase("delta"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ServiceOf("delta"); !errors.Is(err, ErrNoGlobalDB) {
		t.Fatalf("err = %v", err)
	}
}

func TestMergeTableColumns(t *testing.T) {
	g := NewGDD()
	g.DefineDatabase("d", "svc")
	if err := g.MergeTableColumns("d", "t", false, []relstore.Column{{Name: "a", Type: sqlval.KindInt}}); err != nil {
		t.Fatal(err)
	}
	if err := g.MergeTableColumns("d", "t", false, []relstore.Column{{Name: "a"}, {Name: "b"}}); err != nil {
		t.Fatal(err)
	}
	def, err := g.Table("d", "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Columns) != 2 {
		t.Fatalf("cols = %+v", def.Columns)
	}
}

func newAvisService(t testing.TB) *ldbms.Server {
	srv := ldbms.NewServer("avis-svc", ldbms.ProfileOracleLike(), 3)
	if err := srv.CreateDatabase("avis"); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.OpenSession("avis")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"CREATE TABLE cars (code INTEGER, cartype CHAR(20), rate FLOAT, carst CHAR(10), from_d CHAR(10), to_d CHAR(10), client CHAR(20))",
		"CREATE VIEW available AS SELECT code, cartype FROM cars WHERE carst = 'available'",
	} {
		if _, err := sess.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	sess.Commit()
	sess.Close()
	return srv
}

func TestImportDatabaseAll(t *testing.T) {
	srv := newAvisService(t)
	ad, gdd := NewAD(), NewGDD()
	ad.Incorporate(ServiceEntry{Name: "avis-svc", Connect: true})
	if err := ImportDatabase(context.Background(), gdd, ad, lam.NewLocal(srv), "avis", "avis-svc", ImportSpec{}); err != nil {
		t.Fatal(err)
	}
	def, err := gdd.Table("avis", "cars")
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Columns) != 7 || def.IsView {
		t.Fatalf("cars = %+v", def)
	}
	vdef, err := gdd.Table("avis", "available")
	if err != nil {
		t.Fatal(err)
	}
	if !vdef.IsView || len(vdef.Columns) != 2 {
		t.Fatalf("view = %+v", vdef)
	}
}

func TestImportSingleTableAndColumns(t *testing.T) {
	srv := newAvisService(t)
	ad, gdd := NewAD(), NewGDD()
	ad.Incorporate(ServiceEntry{Name: "avis-svc", Connect: true})
	c := lam.NewLocal(srv)
	if err := ImportDatabase(context.Background(), gdd, ad, c, "avis", "avis-svc", ImportSpec{Table: "cars", Columns: []string{"code", "rate"}}); err != nil {
		t.Fatal(err)
	}
	def, err := gdd.Table("avis", "cars")
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Columns) != 2 {
		t.Fatalf("partial import cols = %+v", def.Columns)
	}
	// Unknown column fails.
	err = ImportDatabase(context.Background(), gdd, ad, c, "avis", "avis-svc", ImportSpec{Table: "cars", Columns: []string{"bogus"}})
	if err == nil {
		t.Fatal("expected error for unknown column")
	}
	// Unincorporated service fails.
	err = ImportDatabase(context.Background(), gdd, NewAD(), c, "avis", "avis-svc", ImportSpec{})
	if !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v", err)
	}
}

func TestImportReplacesDefinitions(t *testing.T) {
	srv := newAvisService(t)
	ad, gdd := NewAD(), NewGDD()
	ad.Incorporate(ServiceEntry{Name: "avis-svc", Connect: true})
	c := lam.NewLocal(srv)
	if err := ImportDatabase(context.Background(), gdd, ad, c, "avis", "avis-svc", ImportSpec{}); err != nil {
		t.Fatal(err)
	}
	// Alter the local schema and re-import.
	sess, _ := srv.OpenSession("avis")
	sess.Exec("DROP TABLE cars")
	sess.Exec("CREATE TABLE cars (code INTEGER, newcol CHAR(5))")
	sess.Commit()
	sess.Close()
	if err := ImportDatabase(context.Background(), gdd, ad, c, "avis", "avis-svc", ImportSpec{Table: "cars"}); err != nil {
		t.Fatal(err)
	}
	def, _ := gdd.Table("avis", "cars")
	if len(def.Columns) != 2 || def.Columns[1].Name != "newcol" {
		t.Fatalf("reimported = %+v", def.Columns)
	}
}

func TestMatchName(t *testing.T) {
	cases := []struct {
		name, pattern string
		want          bool
	}{
		{"flights", "flight%", true},
		{"flight", "flight%", true},
		{"flight", "flights", false},
		{"code", "%code", true},
		{"vcode", "%code", true},
		{"codex", "%code", false},
		{"rate", "rate", true},
		{"anything", "%", true},
	}
	for _, c := range cases {
		if got := MatchName(c.name, c.pattern); got != c.want {
			t.Errorf("MatchName(%q,%q) = %v, want %v", c.name, c.pattern, got, c.want)
		}
	}
}

func TestMultidatabaseRegistry(t *testing.T) {
	g := populatedGDD(t)
	if err := g.DefineMultidatabase("airlines", []string{"continental", "delta", "united"}); err != nil {
		t.Fatal(err)
	}
	members, ok := g.Multidatabase("airlines")
	if !ok || len(members) != 3 {
		t.Fatalf("members = %v, %v", members, ok)
	}
	// Returned slice is a copy.
	members[0] = "mutated"
	again, _ := g.Multidatabase("airlines")
	if again[0] != "continental" {
		t.Fatal("Multidatabase returned shared slice")
	}
	if names := g.MultidatabaseNames(); len(names) != 1 || names[0] != "airlines" {
		t.Fatalf("names = %v", names)
	}
	// Name collision with a database.
	if err := g.DefineMultidatabase("delta", []string{"continental"}); !errors.Is(err, ErrNameTaken) {
		t.Fatalf("err = %v", err)
	}
	// Unknown member.
	if err := g.DefineMultidatabase("m", []string{"ghost"}); !errors.Is(err, ErrNoGlobalDB) {
		t.Fatalf("err = %v", err)
	}
	// Empty members.
	if err := g.DefineMultidatabase("m", nil); err == nil {
		t.Fatal("empty members should fail")
	}
	if err := g.DropMultidatabase("airlines"); err != nil {
		t.Fatal(err)
	}
	if err := g.DropMultidatabase("airlines"); err == nil {
		t.Fatal("double drop should fail")
	}
	if _, ok := g.Multidatabase("airlines"); ok {
		t.Fatal("dropped multidatabase still visible")
	}
}

// Property: every table name matches the universal pattern and its own
// exact name; names never match a disjoint literal.
func TestQuickMatchName(t *testing.T) {
	f := func(s string) bool {
		clean := ""
		for _, r := range s {
			if r != '%' {
				clean += string(r)
			}
		}
		return MatchName(clean, "%") && MatchName(clean, clean) &&
			!MatchName(clean, clean+"x")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
