package catalog

import (
	"context"
	"fmt"

	"msql/internal/lam"
	"msql/internal/relstore"
)

// ImportSpec selects what an IMPORT DATABASE statement brings into the
// GDD. Zero value imports every public table and view of the database.
type ImportSpec struct {
	Table   string   // single table; empty = all tables
	Columns []string // partial table definition; empty = all columns
	View    string   // single view; empty with Table empty = all views too
}

// ImportDatabase implements the paper's IMPORT statement: it copies
// schema information from a service's Local Conceptual Schema into the
// GDD, replacing previously imported definitions. The context bounds the
// remote Describe/List calls.
func ImportDatabase(ctx context.Context, gdd *GDD, ad *AD, client lam.Client, db, service string, spec ImportSpec) error {
	if _, err := ad.Lookup(service); err != nil {
		return err
	}
	gdd.DefineDatabase(db, service)

	importOne := func(name string, isView bool, only []string) error {
		cols, err := client.Describe(ctx, db, name)
		if err != nil {
			return fmt.Errorf("catalog: import %s.%s: %w", db, name, err)
		}
		if len(only) > 0 {
			var sub []relstore.Column
			for _, want := range only {
				found := false
				for _, c := range cols {
					if c.Name == want {
						sub = append(sub, c)
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("catalog: import %s.%s: no column %q", db, name, want)
				}
			}
			return gdd.MergeTableColumns(db, name, isView, sub)
		}
		return gdd.PutTable(db, TableDef{Name: name, IsView: isView, Columns: cols})
	}

	switch {
	case spec.Table != "":
		return importOne(spec.Table, false, spec.Columns)
	case spec.View != "":
		return importOne(spec.View, true, spec.Columns)
	default:
		tables, err := client.ListTables(ctx, db)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := importOne(t, false, nil); err != nil {
				return err
			}
		}
		views, err := client.ListViews(ctx, db)
		if err != nil {
			return err
		}
		for _, v := range views {
			if err := importOne(v, true, nil); err != nil {
				return err
			}
		}
		return nil
	}
}
