// Package experiments implements the reproduction harness for every
// artifact of the paper's evaluation (see DESIGN.md §3 and
// EXPERIMENTS.md): the semantic experiments E1–E5 regenerate the worked
// examples and the Section 4.3 DOL listing; F1/F2 exercise the
// architecture of Figures 1 and 2; B1–B6 measure the performance
// properties the paper claims qualitatively (parallelism, commit-mode
// overhead, early release through compensation, substitution cost,
// transport overhead, cross-database join shipping).
//
// Each experiment returns a Table that cmd/msqlbench prints; bench_test.go
// wraps the same code paths in testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one printable experiment result.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// ms formats a duration as fractional milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f ms", float64(d.Microseconds())/1000.0)
}

// us formats a duration as fractional microseconds.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1f µs", float64(d.Nanoseconds())/1000.0)
}

// timeIt runs fn once untimed (warmup), then n timed times, returning the
// mean duration.
func timeIt(n int, fn func() error) (time.Duration, error) {
	if err := fn(); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}
