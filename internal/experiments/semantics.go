package experiments

import (
	"fmt"
	"sort"
	"strings"

	"msql/internal/core"
	"msql/internal/demo"
	"msql/internal/ldbms"
)

// The paper's queries, verbatim in structure.
const (
	Section2Query = `
USE avis national
LET car.type.status BE cars.cartype.carst
                       vehicle.vty.vstat
SELECT %code, type, ~rate
FROM car
WHERE status = 'available'
`
	Section32Update = `
USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
`
	Section33Update = Section32Update + `
COMP continental
UPDATE flights
SET rate = rate / 1.1
WHERE source = 'Houston' AND destination = 'San Antonio'
`
	Section34MultiTx = `
BEGIN MULTITRANSACTION
  USE continental delta
  LET fitab.snu.sstat.clname BE
      f838.seatnu.seatstatus.clientname
      fnu747.snu.sstat.passname
  UPDATE fitab
  SET sstat = 'TAKEN', clname = 'wenders'
  WHERE snu = ( SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');
  USE avis national
  LET cartab.ccode.cstat BE
      cars.code.carst
      vehicle.vcode.vstat
  UPDATE cartab
  SET cstat = 'TAKEN', client = 'wenders'
  WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'FREE');
  COMMIT
    continental AND national
    delta AND avis
END MULTITRANSACTION
`
)

// RunSelect executes an MSQL script against a fresh demo federation and
// returns the last result.
func runScript(opts demo.Options, faults map[string]ldbms.FaultRule, script string) (*core.Result, error) {
	fed, err := demo.Build(opts)
	if err != nil {
		return nil, err
	}
	for svc, rule := range faults {
		fed.Server(svc).Faults().Add(rule)
	}
	results, err := fed.ExecScript(script)
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("experiments: script produced no results")
	}
	return results[len(results)-1], nil
}

// E1Multitable reproduces the Section 2 example: the multitable contents
// with heterogeneity resolved.
func E1Multitable() (*Table, error) {
	res, err := runScript(demo.Options{Seed: 1}, nil, Section2Query)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E1",
		Title:  "Section 2 multiple query — multitable result",
		Note:   "naming heterogeneity via LET/%code, schema heterogeneity via ~rate (NULL where absent)",
		Header: []string{"database", "code", "type", "rate"},
	}
	if res.Multitable == nil {
		return nil, fmt.Errorf("E1: no multitable")
	}
	for _, tab := range res.Multitable.Tables {
		for _, row := range tab.Rows {
			t.AddRow(tab.Database, row[0].String(), row[1].String(), row[2].String())
		}
	}
	return t, nil
}

// e2Scenario is one row of the vital-set outcome matrix.
type e2Scenario struct {
	name   string
	faults map[string]ldbms.FaultRule
}

// E2OutcomeMatrix reproduces the Section 3.2 semantics: the global state
// of the vital update under injected local failures.
func E2OutcomeMatrix() (*Table, error) {
	scenarios := []e2Scenario{
		{"no failures", nil},
		{"delta (NON VITAL) fails", map[string]ldbms.FaultRule{
			"svc_delta": {Op: ldbms.FaultExec, Database: "delta"}}},
		{"united (VITAL) fails at exec", map[string]ldbms.FaultRule{
			"svc_unit": {Op: ldbms.FaultExec, Database: "united"}}},
		{"continental (VITAL) fails at prepare", map[string]ldbms.FaultRule{
			"svc_cont": {Op: ldbms.FaultPrepare, Database: "continental"}}},
		{"united (VITAL) fails at commit", map[string]ldbms.FaultRule{
			"svc_unit": {Op: ldbms.FaultCommit, Database: "united"}}},
	}
	t := &Table{
		ID:     "E2",
		Title:  "Section 3.2 vital update — outcome matrix under local failures",
		Note:   "success = all VITAL committed; aborted = all VITAL rolled back; incorrect = mixed (commit-time fault)",
		Header: []string{"scenario", "continental", "delta", "united", "global state", "DOLSTATUS"},
	}
	for _, sc := range scenarios {
		res, err := runScript(demo.Options{Seed: 1}, sc.faults, Section32Update)
		if err != nil {
			return nil, fmt.Errorf("E2 %s: %w", sc.name, err)
		}
		t.AddRow(sc.name,
			res.TaskStates["continental"].String(),
			res.TaskStates["delta"].String(),
			res.TaskStates["united"].String(),
			res.State.String(),
			fmt.Sprintf("%d", res.Status))
	}
	return t, nil
}

// E3Paths reproduces the four execution paths of Section 3.3, with
// continental on an autocommit-only service and a COMP clause.
func E3Paths() (*Table, error) {
	scenarios := []e2Scenario{
		{"continental C, united P", nil},
		{"continental C, united A", map[string]ldbms.FaultRule{
			"svc_unit": {Op: ldbms.FaultExec, Database: "united"}}},
		{"continental A, united P", map[string]ldbms.FaultRule{
			"svc_cont": {Op: ldbms.FaultExec, Database: "continental"}}},
		{"continental A, united A", map[string]ldbms.FaultRule{
			"svc_cont": {Op: ldbms.FaultExec, Database: "continental"},
			"svc_unit": {Op: ldbms.FaultExec, Database: "united"}}},
	}
	wantVerdict := []string{
		"MSQL query successful",
		"continental compensated; successfully aborted",
		"united rolled back; successfully aborted",
		"successfully aborted",
	}
	t := &Table{
		ID:     "E3",
		Title:  "Section 3.3 compensation — the four execution paths",
		Note:   "continental on an autocommit-only service with a COMP clause; united 2PC",
		Header: []string{"path", "continental", "united", "compensated", "global state", "paper verdict"},
	}
	for i, sc := range scenarios {
		res, err := runScript(demo.Options{Seed: 1, ContinentalAutoCommit: true}, sc.faults, Section33Update)
		if err != nil {
			return nil, fmt.Errorf("E3 %s: %w", sc.name, err)
		}
		comp := "-"
		if len(res.Compensated) > 0 {
			comp = strings.Join(res.Compensated, ",")
		}
		t.AddRow(sc.name,
			res.TaskStates["continental"].String(),
			res.TaskStates["united"].String(),
			comp,
			res.State.String(),
			wantVerdict[i])
	}
	return t, nil
}

// E4States reproduces the travel-agent multitransaction preference order.
func E4States() (*Table, error) {
	scenarios := []e2Scenario{
		{"all healthy", nil},
		{"national down", map[string]ldbms.FaultRule{
			"svc_natl": {Op: ldbms.FaultExec, Database: "national"}}},
		{"continental down", map[string]ldbms.FaultRule{
			"svc_cont": {Op: ldbms.FaultExec, Database: "continental"}}},
		{"both rentals down", map[string]ldbms.FaultRule{
			"svc_natl": {Op: ldbms.FaultExec, Database: "national"},
			"svc_avis": {Op: ldbms.FaultExec, Database: "avis"}}},
		{"both airlines down", map[string]ldbms.FaultRule{
			"svc_cont":  {Op: ldbms.FaultExec, Database: "continental"},
			"svc_delta": {Op: ldbms.FaultExec, Database: "delta"}}},
	}
	t := &Table{
		ID:     "E4",
		Title:  "Section 3.4 multitransaction — acceptable termination states in preference order",
		Note:   "states: [0] continental AND national (preferred), [1] delta AND avis; 2 = failure",
		Header: []string{"scenario", "achieved state", "DOLSTATUS", "member states"},
	}
	for _, sc := range scenarios {
		res, err := runScript(demo.Options{Seed: 1}, sc.faults, Section34MultiTx)
		if err != nil {
			return nil, fmt.Errorf("E4 %s: %w", sc.name, err)
		}
		achieved := "(none — rolled back)"
		if res.AchievedState != nil {
			achieved = strings.Join(res.AchievedState, " AND ")
		}
		var members []string
		for _, name := range []string{"continental", "delta", "avis", "national"} {
			if st, ok := res.TaskStates[name]; ok {
				members = append(members, name+"="+st.Letter())
			}
		}
		sort.Strings(members)
		t.AddRow(sc.name, achieved, fmt.Sprintf("%d", res.Status), strings.Join(members, " "))
	}
	return t, nil
}

// E5Program regenerates the Section 4.3 DOL listing for the Section 3.2
// update.
func E5Program() (string, error) {
	fed, err := demo.Build(demo.Options{Seed: 1})
	if err != nil {
		return "", err
	}
	fed.DryRun = true
	results, err := fed.ExecScript(Section32Update)
	if err != nil {
		return "", err
	}
	for _, r := range results {
		if r.DOL != "" {
			return r.DOL, nil
		}
	}
	return "", fmt.Errorf("E5: no program generated")
}
