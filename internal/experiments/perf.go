package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"msql/internal/catalog"
	"msql/internal/core"
	"msql/internal/demo"
	"msql/internal/dol"
	"msql/internal/dolengine"
	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/msqlparser"
	"msql/internal/obs"
	"msql/internal/relstore"
	"msql/internal/semvar"
	"msql/internal/sqlengine"
	"msql/internal/sqlparser"
	"msql/internal/sqlval"
)

// F1PhaseBreakdown times each phase of the pipeline of Figure 1 for the
// Section 3.2 update: MSQL parse, identifier substitution, plan
// generation, and execution.
func F1PhaseBreakdown(iters int) (*Table, error) {
	fed, err := demo.Build(demo.Options{Seed: 1})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "F1",
		Title:  "Figure 1 pipeline — phase latency for the §3.2 vital update",
		Header: []string{"phase", "mean latency"},
	}

	parseTime, err := timeIt(iters, func() error {
		_, err := msqlparser.Parse(Section32Update)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("MSQL parse", us(parseTime))

	script, err := msqlparser.Parse(Section32Update)
	if err != nil {
		return nil, err
	}
	use := script.Stmts[0].(*msqlparser.UseStmt)
	q := script.Stmts[1].(*msqlparser.QueryStmt)
	scope := semvar.ScopeFromUse(use)

	expandTime, err := timeIt(iters, func() error {
		_, err := semvar.Expand(fed.GDD, scope, nil, q.Body)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("substitution+disambiguation", us(expandTime))

	fed.DryRun = true
	translateTime, err := timeIt(iters, func() error {
		_, err := fed.ExecScript(Section32Update)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("plan generation (incl. above)", us(translateTime))

	fed.DryRun = false
	execTime, err := timeIt(iters, func() error {
		_, err := fed.ExecScript(Section32Update)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("end-to-end execution", us(execTime))
	return t, nil
}

// F2ImportScaling measures INCORPORATE+IMPORT against growing local
// conceptual schemas (Figure 2's dictionary architecture).
func F2ImportScaling(sizes []int) (*Table, error) {
	t := &Table{
		ID:     "F2",
		Title:  "Figure 2 schema architecture — IMPORT DATABASE scaling with schema size",
		Header: []string{"tables in LCS", "import time", "GDD tables after"},
	}
	for _, n := range sizes {
		srv := ldbms.NewServer("svc_big", ldbms.ProfileOracleLike(), 1)
		if err := srv.CreateDatabase("big"); err != nil {
			return nil, err
		}
		sess, err := srv.OpenSession("big")
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			ddl := fmt.Sprintf("CREATE TABLE tab%d (id INTEGER, name CHAR(20), val FLOAT)", i)
			if _, err := sess.Exec(ddl); err != nil {
				return nil, err
			}
		}
		if err := sess.Commit(); err != nil {
			return nil, err
		}
		sess.Close()

		fed := core.New()
		fed.RegisterClient("svc_big", lam.NewLocal(srv))
		if _, err := fed.ExecScript("INCORPORATE SERVICE svc_big CONNECTMODE CONNECT COMMITMODE NOCOMMIT"); err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := fed.ExecScript("IMPORT DATABASE big FROM SERVICE svc_big"); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		db, err := fed.GDD.Database("big")
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), ms(elapsed), fmt.Sprintf("%d", len(db.Tables)))
	}
	return t, nil
}

// genericFederation builds n generic databases (d1..dn on s1..sn), each
// with an items table of the given row count.
func genericFederation(n, rows int) (*core.Federation, error) {
	fed := core.New()
	var setup string
	for i := 1; i <= n; i++ {
		svc := fmt.Sprintf("s%d", i)
		db := fmt.Sprintf("d%d", i)
		srv := fed.AddLocalService(svc, ldbms.ProfileOracleLike(), int64(i))
		if err := srv.CreateDatabase(db); err != nil {
			return nil, err
		}
		sess, err := srv.OpenSession(db)
		if err != nil {
			return nil, err
		}
		if _, err := sess.Exec("CREATE TABLE items (id INTEGER, grp CHAR(4), val FLOAT)"); err != nil {
			return nil, err
		}
		for r := 0; r < rows; r++ {
			grp := "a"
			if r%3 == 0 {
				grp = "b"
			}
			ins := fmt.Sprintf("INSERT INTO items VALUES (%d, '%s', %d.5)", r, grp, r%500)
			if _, err := sess.Exec(ins); err != nil {
				return nil, err
			}
		}
		if err := sess.Commit(); err != nil {
			return nil, err
		}
		sess.Close()
		setup += fmt.Sprintf("INCORPORATE SERVICE %s CONNECTMODE CONNECT COMMITMODE NOCOMMIT;\nIMPORT DATABASE %s FROM SERVICE %s;\n", svc, db, svc)
	}
	if _, err := fed.ExecScript(setup); err != nil {
		return nil, err
	}
	return fed, nil
}

// useAll returns "USE d1 d2 ... dn".
func useAll(n int) string {
	out := "USE"
	for i := 1; i <= n; i++ {
		out += fmt.Sprintf(" d%d", i)
	}
	return out
}

// sequentialize chains every task after its predecessor, turning the
// engine's parallel fan-out into the sequential baseline the paper's
// optimization discussion compares against.
func sequentialize(prog *dol.Program) {
	prev := ""
	for _, s := range prog.Stmts {
		if task, ok := s.(*dol.TaskStmt); ok {
			if prev != "" {
				task.After = []string{prev}
			}
			prev = task.Name
		}
	}
}

// B1Parallelism compares parallel and sequential execution of the same
// fan-out plan over 1..n databases. Each simulated remote site carries a
// per-operation service latency, the quantity the paper's "optimization
// related to parallelism" overlaps.
func B1Parallelism(dbCounts []int, rows, iters int, siteLatency time.Duration) (*Table, error) {
	t := &Table{
		ID:    "B1",
		Title: "parallel vs sequential subquery execution (fan-out aggregate query)",
		Note: fmt.Sprintf("%d rows per database, %v simulated service latency per site; the DOL engine overlaps independent tasks",
			rows, siteLatency),
		Header: []string{"databases", "sequential", "parallel", "speedup"},
	}
	maxN := 0
	for _, n := range dbCounts {
		if n > maxN {
			maxN = n
		}
	}
	fed, err := genericFederation(maxN, rows)
	if err != nil {
		return nil, err
	}
	for i := 1; i <= maxN; i++ {
		fed.Server(fmt.Sprintf("s%d", i)).SetLatency(siteLatency)
	}
	for _, n := range dbCounts {
		script := useAll(n) + "\nSELECT COUNT(id), AVG(val) FROM items WHERE grp = 'a'"
		fed.DryRun = true
		results, err := fed.ExecScript(script)
		if err != nil {
			return nil, err
		}
		fed.DryRun = false
		var dolText string
		for _, r := range results {
			if r.DOL != "" {
				dolText = r.DOL
			}
		}
		engine := dolengine.New(fed)
		seqProg, err := dol.Parse(dolText)
		if err != nil {
			return nil, err
		}
		sequentialize(seqProg)
		seq, err := timeIt(iters, func() error {
			_, err := engine.Run(context.Background(), seqProg)
			return err
		})
		if err != nil {
			return nil, err
		}
		parProg, err := dol.Parse(dolText)
		if err != nil {
			return nil, err
		}
		par, err := timeIt(iters, func() error {
			_, err := engine.Run(context.Background(), parProg)
			return err
		})
		if err != nil {
			return nil, err
		}
		speedup := float64(seq) / float64(par)
		t.AddRow(fmt.Sprintf("%d", n), ms(seq), ms(par), fmt.Sprintf("%.2fx", speedup))
	}
	return t, nil
}

// B2CommitModes measures the per-update cost of the commit protocols the
// AD records: autocommit (one round trip to the LAM) vs user-controlled
// 2PC (exec + prepare + commit). Measured over the TCP transport, where
// message rounds — the real cost of 2PC in the paper's setting — are
// visible.
func B2CommitModes(iters int) (*Table, error) {
	t := &Table{
		ID:     "B2",
		Title:  "commit-capability heterogeneity — per-update cost by protocol (TCP LAM)",
		Header: []string{"protocol", "mean per update", "message rounds"},
	}
	build := func(p ldbms.Profile) (lam.Session, func(), error) {
		srv := ldbms.NewServer("b2", p, 1)
		if err := srv.CreateDatabase("db"); err != nil {
			return nil, nil, err
		}
		boot, err := srv.OpenSession("db")
		if err != nil {
			return nil, nil, err
		}
		if _, err := boot.Exec("CREATE TABLE t (id INTEGER, val FLOAT)"); err != nil {
			return nil, nil, err
		}
		if _, err := boot.Exec("INSERT INTO t VALUES (1, 0.0)"); err != nil {
			return nil, nil, err
		}
		if err := boot.Commit(); err != nil {
			return nil, nil, err
		}
		boot.Close()
		ts, err := lam.Serve("127.0.0.1:0", srv)
		if err != nil {
			return nil, nil, err
		}
		client, err := lam.Dial(ts.Addr())
		if err != nil {
			ts.Close()
			return nil, nil, err
		}
		sess, err := client.Open(context.Background(), "db")
		if err != nil {
			client.Close()
			ts.Close()
			return nil, nil, err
		}
		cleanup := func() {
			sess.Close()
			client.Close()
			ts.Close()
		}
		return sess, cleanup, nil
	}

	auto, cleanupAuto, err := build(ldbms.ProfileAutoCommitOnly())
	if err != nil {
		return nil, err
	}
	defer cleanupAuto()
	autoTime, err := timeIt(iters, func() error {
		_, err := auto.Exec(context.Background(), "UPDATE t SET val = val + 1 WHERE id = 1")
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("autocommit (COMMITMODE COMMIT)", us(autoTime), "1 (exec, immediately durable)")

	twopc, cleanupTwo, err := build(ldbms.ProfileOracleLike())
	if err != nil {
		return nil, err
	}
	defer cleanupTwo()
	twoTime, err := timeIt(iters, func() error {
		if _, err := twopc.Exec(context.Background(), "UPDATE t SET val = val + 1 WHERE id = 1"); err != nil {
			return err
		}
		if err := twopc.Prepare(context.Background()); err != nil {
			return err
		}
		return twopc.Commit(context.Background())
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("2PC (COMMITMODE NOCOMMIT)", us(twoTime), "3 (exec + prepare + commit)")
	ratio := float64(twoTime) / float64(autoTime)
	t.Note = fmt.Sprintf("2PC costs %.2fx the autocommit path (extra protocol rounds)", ratio)
	return t, nil
}

// B3EarlyRelease measures the paper's §3.4 claim that compensation
// improves performance "through earlier release of the resources held by
// global transactions": workers updating a hot table either hold their
// locks across a simulated global-transaction delay (2PC hold) or commit
// immediately (compensation mode).
func B3EarlyRelease(workers, opsPerWorker int, hold time.Duration) (*Table, error) {
	run := func(early bool) (time.Duration, error) {
		srv := ldbms.NewServer("b3", ldbms.ProfileOracleLike(), 1)
		if err := srv.CreateDatabase("db"); err != nil {
			return 0, err
		}
		boot, err := srv.OpenSession("db")
		if err != nil {
			return 0, err
		}
		if _, err := boot.Exec("CREATE TABLE hot (id INTEGER, val FLOAT)"); err != nil {
			return 0, err
		}
		if _, err := boot.Exec("INSERT INTO hot VALUES (1, 0.0)"); err != nil {
			return 0, err
		}
		if err := boot.Commit(); err != nil {
			return 0, err
		}
		boot.Close()

		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sess, err := srv.OpenSession("db")
				if err != nil {
					errs[w] = err
					return
				}
				defer sess.Close()
				sess.SetLockTimeout(30 * time.Second)
				for i := 0; i < opsPerWorker; i++ {
					if _, err := sess.Exec("UPDATE hot SET val = val + 1 WHERE id = 1"); err != nil {
						errs[w] = err
						return
					}
					if early {
						// Compensation mode: commit now, release locks,
						// do the rest of the global transaction after.
						if err := sess.Commit(); err != nil {
							errs[w] = err
							return
						}
						time.Sleep(hold)
					} else {
						// 2PC mode: stay prepared (locks held) until the
						// global transaction finishes elsewhere.
						if err := sess.Prepare(); err != nil {
							errs[w] = err
							return
						}
						time.Sleep(hold)
						if err := sess.Commit(); err != nil {
							errs[w] = err
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	holdTime, err := run(false)
	if err != nil {
		return nil, err
	}
	earlyTime, err := run(true)
	if err != nil {
		return nil, err
	}
	totalOps := workers * opsPerWorker
	t := &Table{
		ID:    "B3",
		Title: "compensation enables earlier resource release (§3.4)",
		Note: fmt.Sprintf("%d workers × %d updates on one hot row; %v of global-transaction work per update",
			workers, opsPerWorker, hold),
		Header: []string{"mode", "total time", "throughput"},
	}
	t.AddRow("2PC hold (prepared across delay)", ms(holdTime),
		fmt.Sprintf("%.0f ops/s", float64(totalOps)/holdTime.Seconds()))
	t.AddRow("compensation (commit early)", ms(earlyTime),
		fmt.Sprintf("%.0f ops/s", float64(totalOps)/earlyTime.Seconds()))
	return t, nil
}

// B4Substitution measures multiple identifier substitution against
// dictionaries of growing size.
func B4Substitution(sizes []int, iters int) (*Table, error) {
	t := &Table{
		ID:     "B4",
		Title:  "multiple identifier substitution cost vs dictionary size",
		Note:   "pattern tab% matches every table; exact names stay cheap",
		Header: []string{"tables", "expand tab% (all match)", "expand exact name", "queries generated"},
	}
	for _, n := range sizes {
		fed := core.New()
		fed.GDD.DefineDatabase("big", "svc")
		for i := 0; i < n; i++ {
			def := catalog.TableDef{Name: fmt.Sprintf("tab%d", i)}
			for c := 0; c < 4; c++ {
				def.Columns = append(def.Columns, relstore.Column{
					Name: fmt.Sprintf("c%d", c), Type: sqlval.KindString,
				})
			}
			if err := fed.GDD.PutTable("big", def); err != nil {
				return nil, err
			}
		}
		scope := []semvar.ScopeEntry{{Database: "big", Name: "big"}}
		patBody, err := sqlparser.ParseStatement("SELECT c0 FROM tab%")
		if err != nil {
			return nil, err
		}
		var generated int
		patTime, err := timeIt(iters, func() error {
			res, err := semvar.Expand(fed.GDD, scope, nil, patBody)
			if err != nil {
				return err
			}
			generated = len(res.Queries)
			return nil
		})
		if err != nil {
			return nil, err
		}
		exactBody, err := sqlparser.ParseStatement("SELECT c0 FROM tab0")
		if err != nil {
			return nil, err
		}
		exactTime, err := timeIt(iters, func() error {
			_, err := semvar.Expand(fed.GDD, scope, nil, exactBody)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), us(patTime), us(exactTime), fmt.Sprintf("%d", generated))
	}
	return t, nil
}

// B5Transport compares the in-process and TCP LAM transports.
func B5Transport(iters int) (*Table, error) {
	srv := ldbms.NewServer("b5", ldbms.ProfileOracleLike(), 1)
	if err := srv.CreateDatabase("db"); err != nil {
		return nil, err
	}
	boot, err := srv.OpenSession("db")
	if err != nil {
		return nil, err
	}
	if _, err := boot.Exec("CREATE TABLE t (id INTEGER, val FLOAT)"); err != nil {
		return nil, err
	}
	for i := 0; i < 64; i++ {
		if _, err := boot.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d.0)", i, i)); err != nil {
			return nil, err
		}
	}
	if err := boot.Commit(); err != nil {
		return nil, err
	}
	boot.Close()

	t := &Table{
		ID:     "B5",
		Title:  "LAM transport — in-process vs TCP round trip (64-row scan)",
		Header: []string{"transport", "mean per query"},
	}

	local := lam.NewLocal(srv)
	lsess, err := local.Open(context.Background(), "db")
	if err != nil {
		return nil, err
	}
	defer lsess.Close()
	localTime, err := timeIt(iters, func() error {
		_, err := lsess.Exec(context.Background(), "SELECT id, val FROM t")
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("in-process", us(localTime))

	ts, err := lam.Serve("127.0.0.1:0", srv)
	if err != nil {
		return nil, err
	}
	defer ts.Close()
	remote, err := lam.Dial(ts.Addr())
	if err != nil {
		return nil, err
	}
	defer remote.Close()
	rsess, err := remote.Open(context.Background(), "db")
	if err != nil {
		return nil, err
	}
	defer rsess.Close()
	tcpTime, err := timeIt(iters, func() error {
		_, err := rsess.Exec(context.Background(), "SELECT id, val FROM t")
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("TCP (gob)", us(tcpTime))
	t.Note = fmt.Sprintf("TCP adds %.2fx over in-process on loopback", float64(tcpTime)/float64(localTime))
	return t, nil
}

// B6CrossJoin measures the ship-to-coordinator plan against data size.
func B6CrossJoin(sizes []int, iters int) (*Table, error) {
	t := &Table{
		ID:     "B6",
		Title:  "cross-database join — ship partial results to the coordinator",
		Note:   "SELECT COUNT(d1 rows cheaper than d2) across two databases",
		Header: []string{"rows per database", "mean per join", "shipped rows"},
	}
	for _, n := range sizes {
		fed, err := genericFederation(2, n)
		if err != nil {
			return nil, err
		}
		script := `USE d1 d2
SELECT COUNT(a.id) AS n FROM d1.items a, d2.items b WHERE a.id = b.id AND a.val < b.val`
		d, err := timeIt(iters, func() error {
			_, err := fed.ExecScript(script)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), ms(d), fmt.Sprintf("%d", 2*n))
	}
	return t, nil
}

// B7ConsistencyLevels ablates the paper's consistency knob (§3.2.1):
// the same multiple update executed with no VITAL designators, with the
// full vital set under 2PC, and with compensation instead of 2PC.
func B7ConsistencyLevels(iters int) (*Table, error) {
	t := &Table{
		ID:     "B7",
		Title:  "ablation — consistency level of the same multiple update",
		Note:   "\"different query evaluation plans are possible for the same multiple query, depending on the required level of consistency\"",
		Header: []string{"consistency level", "mean per statement", "plan shape"},
	}
	type variant struct {
		name, script, shape string
		contAuto            bool
	}
	noVital := `
USE continental delta united
UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston' AND dest% = 'San Antonio'
`
	variants := []variant{
		{"NON VITAL everywhere (best effort)", noVital,
			"3 autocommit tasks, no synchronization branch", false},
		{"vital set via 2PC (§3.2)", Section32Update,
			"2 NOCOMMIT tasks + prepared-state check + commit", false},
		{"vital set via compensation (§3.3)", Section33Update,
			"autocommit + COMP path on the non-2PC member", true},
	}
	const siteLatency = 500 * time.Microsecond
	t.Note += fmt.Sprintf("; %v simulated service latency per operation", siteLatency)
	for _, v := range variants {
		fed, err := demo.Build(demo.Options{Seed: 1, ContinentalAutoCommit: v.contAuto})
		if err != nil {
			return nil, err
		}
		for _, svc := range []string{"svc_cont", "svc_delta", "svc_unit"} {
			fed.Server(svc).SetLatency(siteLatency)
		}
		d, err := timeIt(iters, func() error {
			_, err := fed.ExecScript(v.script)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("B7 %s: %w", v.name, err)
		}
		t.AddRow(v.name, us(d), v.shape)
	}
	return t, nil
}

// B8SyncGranularity ablates synchronization granularity: k vital updates
// issued as k separate units (sync point after each) versus one unit
// synchronized once, per §3.2.2's deferred synchronization points.
func B8SyncGranularity(batch, iters int) (*Table, error) {
	t := &Table{
		ID:     "B8",
		Title:  "ablation — synchronization granularity for a batch of vital updates",
		Note:   fmt.Sprintf("%d updates on one VITAL database; sync per statement vs one deferred sync point", batch),
		Header: []string{"strategy", "mean per batch", "2PC rounds"},
	}
	perStatement := "USE avis VITAL\n"
	for i := 0; i < batch; i++ {
		perStatement += fmt.Sprintf("UPDATE cars SET rate = rate + 1 WHERE code = 1\nCOMMIT\n")
		_ = i
	}
	oneUnit := "USE avis VITAL\n"
	for i := 0; i < batch; i++ {
		oneUnit += "UPDATE cars SET rate = rate + 1 WHERE code = 1\n"
	}
	oneUnit += "COMMIT\n"

	run := func(script string) (time.Duration, error) {
		fed, err := demo.Build(demo.Options{Seed: 1})
		if err != nil {
			return 0, err
		}
		return timeIt(iters, func() error {
			_, err := fed.ExecScript(script)
			return err
		})
	}
	perD, err := run(perStatement)
	if err != nil {
		return nil, err
	}
	oneD, err := run(oneUnit)
	if err != nil {
		return nil, err
	}
	t.AddRow("sync after every statement", us(perD), fmt.Sprintf("%d prepare/commit pairs", batch))
	t.AddRow("one deferred sync point", us(oneD), "1 prepare/commit pair")
	t.Note += fmt.Sprintf("; batching saves %.2fx", float64(perD)/float64(oneD))
	return t, nil
}

// B9JoinOptimization ablates the coordinator's join strategy for the
// cross-database query of B6: hash equi-join with predicate pushdown (the
// kind of DOL-plan optimization the paper's conclusion anticipates)
// against the naive cartesian enumeration.
func B9JoinOptimization(rows, iters int) (*Table, error) {
	t := &Table{
		ID:     "B9",
		Title:  "ablation — coordinator join strategy for the cross-database query",
		Note:   fmt.Sprintf("%d rows per database; same plan, different local join algorithm", rows),
		Header: []string{"join strategy", "mean per join"},
	}
	fed, err := genericFederation(2, rows)
	if err != nil {
		return nil, err
	}
	script := `USE d1 d2
SELECT COUNT(a.id) AS n FROM d1.items a, d2.items b WHERE a.id = b.id AND a.val < b.val`

	run := func(disable bool) (time.Duration, error) {
		sqlengine.DisableJoinOptimization = disable
		defer func() { sqlengine.DisableJoinOptimization = false }()
		return timeIt(iters, func() error {
			_, err := fed.ExecScript(script)
			return err
		})
	}
	naive, err := run(true)
	if err != nil {
		return nil, err
	}
	optimized, err := run(false)
	if err != nil {
		return nil, err
	}
	t.AddRow("nested loop (no pushdown)", ms(naive))
	t.AddRow("hash join + pushdown", ms(optimized))
	t.Note += fmt.Sprintf("; optimization wins %.1fx", float64(naive)/float64(optimized))
	return t, nil
}

// ObsStats is the machine-readable core of B10, committed in
// BENCH_obs.json and consumed by msqlbench -baseline as the
// observability regression smoke.
type ObsStats struct {
	SelectUS  float64 `json:"select_us"`  // plain decomposed join
	ExplainUS float64 `json:"explain_us"` // translate-only EXPLAIN
	AnalyzeUS float64 `json:"analyze_us"` // EXPLAIN ANALYZE, slow log installed
	// OverheadPct is the EXPLAIN ANALYZE wall-time overhead over the
	// plain statement, in percent.
	OverheadPct float64 `json:"overhead_pct"`
	// PlanNodes counts the federation plan tree's nodes for the join,
	// a structural fingerprint of the decomposition.
	PlanNodes int `json:"plan_nodes"`
}

// B10ObservabilityOverhead prices the observability plane: the same
// cross-database join executed plain, as a translate-only EXPLAIN, and
// under EXPLAIN ANALYZE with a slow-query log capturing every statement.
func B10ObservabilityOverhead(iters int) (*Table, *ObsStats, error) {
	t := &Table{
		ID:     "B10",
		Title:  "observability overhead — EXPLAIN ANALYZE and the slow-query log",
		Note:   "decomposed two-site join; ANALYZE wraps every shipped subquery in a site-local EXPLAIN ANALYZE",
		Header: []string{"execution mode", "mean per statement"},
	}
	fed, err := demo.Build(demo.Options{Seed: 1})
	if err != nil {
		return nil, nil, err
	}
	const join = `USE continental united
SELECT c.flnu, u.fn FROM continental.flights c, united.flight u WHERE c.rate < u.rates`
	run := func(script string) (time.Duration, error) {
		return timeIt(iters, func() error {
			_, err := fed.ExecScript(script)
			return err
		})
	}
	plainD, err := run(join)
	if err != nil {
		return nil, nil, err
	}
	explainD, err := run("USE continental united\nEXPLAIN " + strings.TrimPrefix(join, "USE continental united\n"))
	if err != nil {
		return nil, nil, err
	}
	// ANALYZE with the slow-query log catching everything: the worst case
	// a production -slow-query-ms setting can configure.
	obs.SetSlowQueryLog(obs.NewSlowQueryLog(io.Discard, time.Nanosecond))
	analyzeScript := "USE continental united\nEXPLAIN ANALYZE " + strings.TrimPrefix(join, "USE continental united\n")
	analyzeD, err := run(analyzeScript)
	obs.SetSlowQueryLog(nil)
	if err != nil {
		return nil, nil, err
	}
	results, err := fed.ExecScript(analyzeScript)
	if err != nil {
		return nil, nil, err
	}
	plan := results[len(results)-1].Plan
	nodes := 0
	var count func(n *obs.PlanNode)
	count = func(n *obs.PlanNode) {
		nodes++
		for _, c := range n.Children {
			count(c)
		}
	}
	count(plan)

	stats := &ObsStats{
		SelectUS:  float64(plainD.Microseconds()),
		ExplainUS: float64(explainD.Microseconds()),
		AnalyzeUS: float64(analyzeD.Microseconds()),
		PlanNodes: nodes,
	}
	if plainD > 0 {
		stats.OverheadPct = 100 * (float64(analyzeD)/float64(plainD) - 1)
	}
	t.AddRow("plain SELECT", us(plainD))
	t.AddRow("EXPLAIN (translate only)", us(explainD))
	t.AddRow("EXPLAIN ANALYZE + slow log", us(analyzeD))
	t.Note += fmt.Sprintf("; ANALYZE overhead %.1f%%, %d plan nodes", stats.OverheadPct, nodes)
	return t, stats, nil
}
