package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestE1Multitable(t *testing.T) {
	tbl, err := E1Multitable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	// avis row carries a rate, national's is NULL.
	for _, r := range tbl.Rows {
		if r[0] == "national" && r[3] != "NULL" {
			t.Fatalf("national rate = %s", r[3])
		}
		if r[0] == "avis" && r[3] == "NULL" {
			t.Fatal("avis rate lost")
		}
	}
}

func TestE2OutcomeMatrix(t *testing.T) {
	tbl, err := E2OutcomeMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	states := map[string]string{}
	for _, r := range tbl.Rows {
		states[r[0]] = r[4]
	}
	if states["no failures"] != "success" ||
		states["delta (NON VITAL) fails"] != "success" ||
		states["united (VITAL) fails at exec"] != "aborted" ||
		states["united (VITAL) fails at commit"] != "incorrect" {
		t.Fatalf("states = %v", states)
	}
}

func TestE3Paths(t *testing.T) {
	tbl, err := E3Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][4] != "success" {
		t.Fatalf("path 1 = %v", tbl.Rows[0])
	}
	if tbl.Rows[1][3] != "continental" {
		t.Fatalf("path 2 should compensate continental: %v", tbl.Rows[1])
	}
	for i := 1; i < 4; i++ {
		if tbl.Rows[i][4] != "aborted" {
			t.Fatalf("path %d = %v", i+1, tbl.Rows[i])
		}
	}
}

func TestE4States(t *testing.T) {
	tbl, err := E4States()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]string{}
	for _, r := range tbl.Rows {
		byName[r[0]] = r
	}
	if byName["all healthy"][1] != "continental AND national" {
		t.Fatalf("preferred = %v", byName["all healthy"])
	}
	if byName["national down"][1] != "delta AND avis" {
		t.Fatalf("fallback = %v", byName["national down"])
	}
	if !strings.Contains(byName["both rentals down"][1], "none") {
		t.Fatalf("failure = %v", byName["both rentals down"])
	}
}

func TestE5Program(t *testing.T) {
	prog, err := E5Program()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"TASK T1 NOCOMMIT FOR continental",
		"TASK T2 FOR delta",
		"TASK T3 NOCOMMIT FOR united",
		"IF (T1=P) AND (T3=P) THEN",
		"COMMIT T1, T3;",
		"DOLSTATUS=1;",
	} {
		if !strings.Contains(prog, want) {
			t.Errorf("program missing %q", want)
		}
	}
}

func TestF1PhaseBreakdown(t *testing.T) {
	tbl, err := F1PhaseBreakdown(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
}

func TestF2ImportScaling(t *testing.T) {
	tbl, err := F2ImportScaling([]int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][2] != "2" || tbl.Rows[1][2] != "8" {
		t.Fatalf("GDD counts = %v", tbl.Rows)
	}
}

func TestB1Parallelism(t *testing.T) {
	tbl, err := B1Parallelism([]int{1, 2}, 50, 2, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
}

func TestB2CommitModes(t *testing.T) {
	tbl, err := B2CommitModes(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
}

func TestB3EarlyRelease(t *testing.T) {
	tbl, err := B3EarlyRelease(2, 2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
}

func TestB4Substitution(t *testing.T) {
	tbl, err := B4Substitution([]int{1, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][3] != "1" || tbl.Rows[1][3] != "4" {
		t.Fatalf("generated counts = %v", tbl.Rows)
	}
}

func TestB5Transport(t *testing.T) {
	tbl, err := B5Transport(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
}

func TestB6CrossJoin(t *testing.T) {
	tbl, err := B6CrossJoin([]int{20}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][2] != "40" {
		t.Fatalf("shipped = %v", tbl.Rows)
	}
}

func TestB7ConsistencyLevels(t *testing.T) {
	tbl, err := B7ConsistencyLevels(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
}

func TestB8SyncGranularity(t *testing.T) {
	tbl, err := B8SyncGranularity(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	if !strings.Contains(tbl.Rows[0][2], "3 prepare/commit") {
		t.Fatalf("rounds = %v", tbl.Rows[0])
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		ID:     "X",
		Title:  "demo",
		Note:   "note",
		Header: []string{"a", "bb"},
	}
	tbl.AddRow("1", "2")
	out := tbl.Format()
	for _, want := range []string{"== X: demo ==", "note", "a", "bb", "--", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestB9JoinOptimization(t *testing.T) {
	tbl, err := B9JoinOptimization(60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
}

// TestE5GoldenProgram compares the regenerated §4.3 DOL listing against
// the checked-in golden file byte for byte.
func TestE5GoldenProgram(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "e5_paper_program.dol"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := E5Program()
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("generated program diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
