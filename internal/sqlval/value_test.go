package sqlval

import (
	"testing"
	"testing/quick"
)

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v.String() != "NULL" {
		t.Fatalf("String() = %q, want NULL", v.String())
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "FLOAT",
		KindString: "CHAR", KindBool: "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestCompareNumericCoercion(t *testing.T) {
	c, ok := Compare(Int(3), Float(3.0))
	if !ok || c != 0 {
		t.Fatalf("Compare(3, 3.0) = %d,%v want 0,true", c, ok)
	}
	c, ok = Compare(Int(2), Float(2.5))
	if !ok || c != -1 {
		t.Fatalf("Compare(2, 2.5) = %d,%v want -1,true", c, ok)
	}
}

func TestCompareNullNeverComparable(t *testing.T) {
	if _, ok := Compare(Null(), Int(1)); ok {
		t.Fatal("NULL must be incomparable")
	}
	if _, ok := Compare(Null(), Null()); ok {
		t.Fatal("NULL must be incomparable with NULL")
	}
	if Equal(Null(), Null()) {
		t.Fatal("NULL = NULL must not hold")
	}
}

func TestCompareStrings(t *testing.T) {
	c, ok := Compare(Str("avis"), Str("national"))
	if !ok || c >= 0 {
		t.Fatalf("avis < national expected, got %d,%v", c, ok)
	}
}

func TestCompareIncompatibleKinds(t *testing.T) {
	if _, ok := Compare(Str("1"), Int(1)); ok {
		t.Fatal("string and int must be incomparable")
	}
}

func TestCompareBools(t *testing.T) {
	if c, ok := Compare(Bool(false), Bool(true)); !ok || c != -1 {
		t.Fatalf("false < true expected, got %d,%v", c, ok)
	}
	if c, ok := Compare(Bool(true), Bool(true)); !ok || c != 0 {
		t.Fatalf("true = true expected, got %d,%v", c, ok)
	}
}

func TestSortCompareTotalOrder(t *testing.T) {
	// NULL first, then bool, numeric, string.
	seq := []Value{Null(), Bool(false), Int(1), Str("a")}
	for i := 0; i < len(seq); i++ {
		for j := 0; j < len(seq); j++ {
			got := SortCompare(seq[i], seq[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("SortCompare(%v,%v) = %d, want %d", seq[i], seq[j], got, want)
			}
		}
	}
}

func TestArithIntStaysInt(t *testing.T) {
	v, err := Arith(OpAdd, Int(2), Int(3))
	if err != nil || v != Int(5) {
		t.Fatalf("2+3 = %v,%v", v, err)
	}
	v, err = Arith(OpDiv, Int(6), Int(3))
	if err != nil || v != Int(2) {
		t.Fatalf("6/3 = %v,%v", v, err)
	}
	v, err = Arith(OpDiv, Int(7), Int(2))
	if err != nil || v != Float(3.5) {
		t.Fatalf("7/2 = %v,%v", v, err)
	}
}

func TestArithRateRaise(t *testing.T) {
	// The paper's fare update: rate * 1.1.
	v, err := Arith(OpMul, Int(100), Float(1.1))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := v.AsFloat()
	if f < 109.99 || f > 110.01 {
		t.Fatalf("100*1.1 = %v", v)
	}
}

func TestArithNullPropagates(t *testing.T) {
	v, err := Arith(OpMul, Null(), Int(3))
	if err != nil || !v.IsNull() {
		t.Fatalf("NULL*3 = %v,%v want NULL,nil", v, err)
	}
}

func TestArithDivisionByZero(t *testing.T) {
	if _, err := Arith(OpDiv, Int(1), Int(0)); err == nil {
		t.Fatal("int division by zero must error")
	}
	if _, err := Arith(OpDiv, Float(1), Float(0)); err == nil {
		t.Fatal("float division by zero must error")
	}
	if _, err := Arith(OpMod, Int(1), Int(0)); err == nil {
		t.Fatal("modulo by zero must error")
	}
}

func TestArithStringConcat(t *testing.T) {
	v, err := Arith(OpAdd, Str("san "), Str("antonio"))
	if err != nil || v.S != "san antonio" {
		t.Fatalf("concat = %v,%v", v, err)
	}
}

func TestArithTypeError(t *testing.T) {
	if _, err := Arith(OpMul, Str("a"), Int(1)); err == nil {
		t.Fatal("string*int must error")
	}
}

func TestNeg(t *testing.T) {
	if v, _ := Neg(Int(4)); v != Int(-4) {
		t.Fatalf("neg 4 = %v", v)
	}
	if v, _ := Neg(Float(2.5)); v != Float(-2.5) {
		t.Fatalf("neg 2.5 = %v", v)
	}
	if v, _ := Neg(Null()); !v.IsNull() {
		t.Fatalf("neg NULL = %v", v)
	}
	if _, err := Neg(Str("x")); err == nil {
		t.Fatal("neg string must error")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"flights", "flight%", true},
		{"flight", "flight%", true},
		{"fl", "flight%", false},
		{"rate", "rate%", true},
		{"rates", "rate%", true},
		{"Houston", "H_uston", true},
		{"Houston", "h%", false}, // case sensitive
		{"abc", "%b%", true},
		{"abc", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%c", true},
		{"axbxc", "a%b%c", true},
		{"ac", "a%b%c", false},
	}
	for _, c := range cases {
		if got := Like(c.s, c.p); got != c.want {
			t.Errorf("Like(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestSQLQuoting(t *testing.T) {
	if got := Str("O'Hare").SQL(); got != "'O''Hare'" {
		t.Fatalf("SQL() = %q", got)
	}
	if got := Int(5).SQL(); got != "5" {
		t.Fatalf("SQL() = %q", got)
	}
}

func TestCoerceTo(t *testing.T) {
	v, err := CoerceTo(Str("12"), KindInt)
	if err != nil || v != Int(12) {
		t.Fatalf("coerce '12' to int = %v,%v", v, err)
	}
	v, err = CoerceTo(Int(3), KindFloat)
	if err != nil || v != Float(3) {
		t.Fatalf("coerce 3 to float = %v,%v", v, err)
	}
	v, err = CoerceTo(Float(4.0), KindInt)
	if err != nil || v != Int(4) {
		t.Fatalf("coerce 4.0 to int = %v,%v", v, err)
	}
	if _, err = CoerceTo(Float(4.5), KindInt); err == nil {
		t.Fatal("coerce 4.5 to int must error")
	}
	v, err = CoerceTo(Int(7), KindString)
	if err != nil || v.S != "7" {
		t.Fatalf("coerce 7 to string = %v,%v", v, err)
	}
	if v, err := CoerceTo(Null(), KindInt); err != nil || !v.IsNull() {
		t.Fatalf("coerce NULL = %v,%v", v, err)
	}
}

func TestGroupKeyIntFloatUnify(t *testing.T) {
	if Int(3).GroupKey() != Float(3.0).GroupKey() {
		t.Fatal("3 and 3.0 must share a group key")
	}
	if Int(3).GroupKey() == Str("3").GroupKey() {
		t.Fatal("3 and '3' must not share a group key")
	}
}

// Property: Compare is antisymmetric and consistent with Equal for non-null
// numeric pairs.
func TestQuickCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1 := Compare(Int(a), Int(b))
		c2, ok2 := Compare(Int(b), Int(a))
		return ok1 && ok2 && c1 == -c2 && (c1 == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SortCompare is a total order (antisymmetric over a value pool).
func TestQuickSortCompareAntisymmetry(t *testing.T) {
	f := func(ai, bi int64, as, bs string, pick uint8) bool {
		pool := []Value{Null(), Int(ai), Int(bi), Float(float64(ai) / 3), Str(as), Str(bs), Bool(ai%2 == 0)}
		a := pool[int(pick)%len(pool)]
		b := pool[int(pick/7)%len(pool)]
		return SortCompare(a, b) == -SortCompare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Like(s, s) holds for wildcard-free strings, and "%"+s matches s.
func TestQuickLikeIdentity(t *testing.T) {
	f := func(s string) bool {
		clean := ""
		for _, r := range s {
			if r != '%' && r != '_' {
				clean += string(r)
			}
		}
		return Like(clean, clean) && Like(clean, "%"+clean) && Like(clean, clean+"%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: integer arithmetic matches Go semantics when no division is
// involved.
func TestQuickIntArith(t *testing.T) {
	f := func(a, b int32) bool {
		add, _ := Arith(OpAdd, Int(int64(a)), Int(int64(b)))
		sub, _ := Arith(OpSub, Int(int64(a)), Int(int64(b)))
		mul, _ := Arith(OpMul, Int(int64(a)), Int(int64(b)))
		return add == Int(int64(a)+int64(b)) && sub == Int(int64(a)-int64(b)) && mul == Int(int64(a)*int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRenderings(t *testing.T) {
	cases := map[string]Value{
		"NULL":  Null(),
		"42":    Int(42),
		"1.5":   Float(1.5),
		"hello": Str("hello"),
		"TRUE":  Bool(true),
		"FALSE": Bool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
	if (Value{K: Kind(99)}).String() == "" {
		t.Error("unknown kind should still render")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind name should still render")
	}
}

func TestGroupKeyAllKinds(t *testing.T) {
	keys := map[string]bool{}
	for _, v := range []Value{Null(), Int(1), Float(2.5), Str("s"), Bool(true), Bool(false)} {
		k := v.GroupKey()
		if keys[k] {
			t.Errorf("duplicate group key %q", k)
		}
		keys[k] = true
	}
	if (Value{K: Kind(99)}).GroupKey() != "?" {
		t.Error("unknown kind group key")
	}
}

func TestArithOpStrings(t *testing.T) {
	for _, op := range []ArithOp{OpAdd, OpSub, OpMul, OpDiv, OpMod} {
		if op.String() == "?" {
			t.Errorf("op %d has no name", op)
		}
	}
	if ArithOp(99).String() != "?" {
		t.Error("unknown op should be ?")
	}
}

func TestArithModulo(t *testing.T) {
	v, err := Arith(OpMod, Int(7), Int(3))
	if err != nil || v != Int(1) {
		t.Fatalf("7%%3 = %v, %v", v, err)
	}
	v, err = Arith(OpMod, Float(7), Float(3))
	if err != nil || v.K != KindFloat {
		t.Fatalf("7.0%%3.0 = %v, %v", v, err)
	}
	if _, err := Arith(OpMod, Float(1), Float(0)); err == nil {
		t.Fatal("float mod by zero should error")
	}
}

func TestCoerceBool(t *testing.T) {
	v, err := CoerceTo(Int(1), KindBool)
	if err != nil || v != Bool(true) {
		t.Fatalf("coerce 1 to bool = %v, %v", v, err)
	}
	if _, err := CoerceTo(Str("x"), KindBool); err == nil {
		t.Fatal("coerce string to bool should error")
	}
	v, err = CoerceTo(Str("2.5"), KindFloat)
	if err != nil || v != Float(2.5) {
		t.Fatalf("coerce '2.5' = %v, %v", v, err)
	}
}
