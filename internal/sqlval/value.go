// Package sqlval implements the typed value system shared by every layer of
// the multidatabase engine: the local SQL engine, the wire protocol, the
// multitable result representation and the MSQL front end.
//
// Values are small, comparable-by-function structs rather than interfaces so
// that rows can be stored and copied cheaply in the in-memory stores.
package sqlval

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a Value can take.
type Kind uint8

// The supported value kinds. KindNull is the zero value so that a zero
// Value is SQL NULL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "CHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed SQL value. The zero Value is NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B bool
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a floating point value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{K: KindBool, B: b} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// IsNumeric reports whether v is an integer or float.
func (v Value) IsNumeric() bool { return v.K == KindInt || v.K == KindFloat }

// AsFloat converts a numeric value to float64. It returns false for
// non-numeric values.
func (v Value) AsFloat() (float64, bool) {
	switch v.K {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// AsInt converts a numeric value to int64, truncating floats. It returns
// false for non-numeric values.
func (v Value) AsInt() (int64, bool) {
	switch v.K {
	case KindInt:
		return v.I, true
	case KindFloat:
		return int64(v.F), true
	default:
		return 0, false
	}
}

// Truthy reports whether v counts as true in a WHERE clause. NULL is not
// truthy (SQL three-valued logic collapses UNKNOWN to false at the filter).
func (v Value) Truthy() bool {
	switch v.K {
	case KindBool:
		return v.B
	case KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	default:
		return false
	}
}

// String renders the value the way the result printer and the tests expect:
// NULL, unquoted numbers, bare strings, TRUE/FALSE.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("Value(%d)", uint8(v.K))
	}
}

// SQL renders the value as a literal that the SQL parser will read back:
// strings are single-quoted with embedded quotes doubled.
func (v Value) SQL() string {
	if v.K == KindString {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return v.String()
}

// Equal reports strict equality under numeric coercion. NULL never equals
// anything, including NULL (use IsNull for that).
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Compare orders two values. It returns ok=false when either value is NULL
// or the kinds are incomparable. Numeric kinds compare after coercion to
// float64; strings compare lexicographically; booleans order false < true.
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.K == KindString && b.K == KindString {
		return strings.Compare(a.S, b.S), true
	}
	if a.K == KindBool && b.K == KindBool {
		switch {
		case a.B == b.B:
			return 0, true
		case !a.B:
			return -1, true
		default:
			return 1, true
		}
	}
	return 0, false
}

// SortCompare is a total order used by ORDER BY and GROUP BY: NULL sorts
// first, then booleans, numbers, strings; incomparable kinds order by kind.
func SortCompare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	if c, ok := Compare(a, b); ok {
		return c
	}
	ra, rb := kindRank(a.K), kindRank(b.K)
	switch {
	case ra < rb:
		return -1
	case ra > rb:
		return 1
	default:
		return 0
	}
}

func kindRank(k Kind) int {
	switch k {
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	default:
		return 0
	}
}

// GroupKey returns a string key identifying the value for hash grouping and
// DISTINCT. Integral floats and ints with the same numeric value share keys.
func (v Value) GroupKey() string {
	switch v.K {
	case KindNull:
		return "n"
	case KindInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		if v.F == float64(int64(v.F)) {
			return "i" + strconv.FormatInt(int64(v.F), 10)
		}
		return "f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "s" + v.S
	case KindBool:
		if v.B {
			return "bt"
		}
		return "bf"
	default:
		return "?"
	}
}

// ArithOp is a binary arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return "?"
	}
}

// Arith applies op to two values. NULL operands yield NULL. Integer
// operands stay integral except for division, which promotes to float when
// inexact, matching what the engine's UPDATE arithmetic needs.
func Arith(op ArithOp, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if op == OpAdd && a.K == KindString && b.K == KindString {
		return Str(a.S + b.S), nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null(), fmt.Errorf("cannot apply %s to %s and %s", op, a.K, b.K)
	}
	if a.K == KindInt && b.K == KindInt {
		switch op {
		case OpAdd:
			return Int(a.I + b.I), nil
		case OpSub:
			return Int(a.I - b.I), nil
		case OpMul:
			return Int(a.I * b.I), nil
		case OpDiv:
			if b.I == 0 {
				return Null(), fmt.Errorf("division by zero")
			}
			if a.I%b.I == 0 {
				return Int(a.I / b.I), nil
			}
			return Float(float64(a.I) / float64(b.I)), nil
		case OpMod:
			if b.I == 0 {
				return Null(), fmt.Errorf("division by zero")
			}
			return Int(a.I % b.I), nil
		}
	}
	af, _ := a.AsFloat()
	bf, _ := b.AsFloat()
	switch op {
	case OpAdd:
		return Float(af + bf), nil
	case OpSub:
		return Float(af - bf), nil
	case OpMul:
		return Float(af * bf), nil
	case OpDiv:
		if bf == 0 {
			return Null(), fmt.Errorf("division by zero")
		}
		return Float(af / bf), nil
	case OpMod:
		if bf == 0 {
			return Null(), fmt.Errorf("division by zero")
		}
		return Float(float64(int64(af) % int64(bf))), nil
	}
	return Null(), fmt.Errorf("unknown arithmetic operator")
}

// Neg negates a numeric value; NULL passes through.
func Neg(v Value) (Value, error) {
	switch v.K {
	case KindNull:
		return Null(), nil
	case KindInt:
		return Int(-v.I), nil
	case KindFloat:
		return Float(-v.F), nil
	default:
		return Null(), fmt.Errorf("cannot negate %s", v.K)
	}
}

// Like implements the SQL LIKE operator with % (any run) and _ (any one
// character) wildcards. Matching is case sensitive, as in the paper's
// examples.
func Like(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Iterative matcher with backtracking over the last %.
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			starSi = si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// CoerceTo converts v to the column type named by kind, used when inserting
// literals into typed columns. Integers widen to floats; integral floats
// narrow to ints; everything converts to string via String(); strings parse
// into numerics when well-formed.
func CoerceTo(v Value, k Kind) (Value, error) {
	if v.IsNull() || v.K == k {
		return v, nil
	}
	switch k {
	case KindFloat:
		if f, ok := v.AsFloat(); ok {
			return Float(f), nil
		}
		if v.K == KindString {
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64); err == nil {
				return Float(f), nil
			}
		}
	case KindInt:
		if v.K == KindFloat && v.F == float64(int64(v.F)) {
			return Int(int64(v.F)), nil
		}
		if v.K == KindString {
			if i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64); err == nil {
				return Int(i), nil
			}
		}
	case KindString:
		return Str(v.String()), nil
	case KindBool:
		if v.K == KindInt {
			return Bool(v.I != 0), nil
		}
	}
	return Null(), fmt.Errorf("cannot coerce %s %q to %s", v.K, v.String(), k)
}
