// Package mdserver is the multidatabase coordinator server: it exposes a
// shared core.Federation to many concurrent clients over the wire
// protocol. Each accepted connection gets its own core.Session — USE
// scope, LET bindings, and the pending transaction unit are per
// connection, while the directories, LAM clients, DOL engine, and the
// group-committing coordinator journal are shared — so independent
// clients run independent multitransactions in parallel.
//
// The server enforces two capacity boundaries. MaxSessions caps live
// connections: a client beyond it is answered wire.CodeOverload on its
// first request and disconnected, never silently queued. Statement-level
// admission control and timeouts come from the federation itself
// (core.Federation.SetAdmission / StmtTimeout) and surface to clients as
// wire errors per script.
//
// A client that disconnects mid-script cancels the connection context:
// the in-flight statement's subqueries fail promptly, and the engine's
// termination protocol drives any prepared participant to a clean
// presumed-abort or completed commit on its own recovery budget — an
// abandoned session is never left parked.
package mdserver
