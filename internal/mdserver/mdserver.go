package mdserver

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"msql/internal/admit"
	"msql/internal/core"
	"msql/internal/obs"
	"msql/internal/wire"
)

var (
	mSessions = obs.Default().Gauge("msql_coord_sessions",
		"Live client sessions on the coordinator server.")
	mScripts = obs.Default().CounterVec("msql_coord_scripts_total",
		"Scripts executed by the coordinator server, by outcome.", "outcome")
	mRejected = obs.Default().Counter("msql_coord_sessions_rejected_total",
		"Connections rejected with overload because MaxSessions was reached.")
)

// Options configure the coordinator server.
type Options struct {
	// MaxSessions caps concurrent client connections (default 64). A
	// connection beyond the cap is answered wire.CodeOverload and closed.
	MaxSessions int
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	return o
}

// Server accepts client connections and executes their MSQL scripts
// against a shared federation.
type Server struct {
	fed  *core.Federation
	ln   net.Listener
	opts Options

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts a coordinator server for fed at addr (use "127.0.0.1:0"
// for an ephemeral port) and returns immediately.
func Serve(addr string, fed *core.Federation, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{fed: fed, ln: ln, opts: opts.withDefaults(), conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ActiveSessions reports the number of live client connections.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Close stops the listener and severs all client connections, then waits
// for their handlers to finish. Statements already executing run to
// completion against the (canceled) connection context — the engine's
// termination protocol still resolves any prepared participants.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		over := len(s.conns) >= s.opts.MaxSessions
		if !over {
			s.conns[conn] = struct{}{}
			mSessions.Set(int64(len(s.conns)))
		}
		s.mu.Unlock()
		s.wg.Add(1)
		if over {
			go s.reject(conn)
			continue
		}
		go s.handle(conn)
	}
}

// reject answers an over-cap connection's first request with an
// overload error, then closes it. The client gets a definite in-protocol
// answer — it was shed, nothing executed — instead of a silent hangup.
func (s *Server) reject(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	mRejected.Inc()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var req wire.Request
	if err := dec.Decode(&req); err != nil {
		return
	}
	resp := &wire.Response{}
	resp.ErrCode, resp.ErrMsg = wire.EncodeError(
		fmt.Errorf("%d sessions at capacity: %w", s.opts.MaxSessions, admit.ErrOverload))
	_ = enc.Encode(resp)
}

// handle runs one connection's request loop. Requests are decoded by a
// reader goroutine feeding a channel: when the client disconnects — even
// while a statement is executing — the decode error cancels the
// connection context, so abandoned work is interrupted at the next
// cancellation point instead of running blind until completion.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		mSessions.Set(int64(len(s.conns)))
		s.mu.Unlock()
		conn.Close()
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	type decoded struct {
		req *wire.Request
		err error
	}
	reqCh := make(chan decoded)
	go func() {
		for {
			var req wire.Request
			if err := dec.Decode(&req); err != nil {
				cancel() // client gone: interrupt any in-flight statement
				select {
				case reqCh <- decoded{err: err}:
				case <-ctx.Done():
				}
				close(reqCh)
				return
			}
			select {
			case reqCh <- decoded{req: &req}:
			case <-ctx.Done():
				return
			}
		}
	}()

	var sess *core.Session
	for d := range reqCh {
		if d.err != nil {
			return
		}
		req := d.req
		resp := &wire.Response{}
		switch req.Kind {
		case wire.ReqHello:
			resp.ServiceNm = "msqld"
		case wire.ReqScript:
			if sess == nil {
				sess = s.fed.NewSession(req.Tenant)
			}
			results, err := sess.ExecScriptContext(ctx, req.SQL)
			resp.Script = toScriptResults(results, err)
			if err != nil {
				resp.ErrCode, resp.ErrMsg = wire.EncodeError(err)
				mScripts.With("error").Inc()
			} else {
				mScripts.With("ok").Inc()
			}
		default:
			resp.ErrCode, resp.ErrMsg = wire.EncodeError(
				fmt.Errorf("mdserver: unsupported request kind %s", req.Kind))
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// toScriptResults converts the coordinator's per-statement results to
// their wire form. A trailing script error is appended as a failed
// entry so the client's transcript shows where execution stopped.
func toScriptResults(results []*core.Result, scriptErr error) []wire.ScriptResult {
	out := make([]wire.ScriptResult, 0, len(results)+1)
	for _, r := range results {
		out = append(out, toScriptResult(r))
	}
	if scriptErr != nil {
		out = append(out, wire.ScriptResult{Kind: "error", Failed: true, Detail: scriptErr.Error()})
	}
	return out
}

func toScriptResult(r *core.Result) wire.ScriptResult {
	w := wire.ScriptResult{Kind: kindString(r.Kind)}
	switch r.Kind {
	case core.KindSelect:
		if r.Multitable != nil {
			if flat, err := r.Multitable.Flatten(); err == nil {
				for _, c := range flat.Columns {
					w.Columns = append(w.Columns, c.Name)
				}
				for _, row := range flat.Rows {
					cells := make([]string, len(row))
					for i, v := range row {
						cells[i] = v.String()
					}
					w.Rows = append(w.Rows, cells)
				}
			}
			w.Detail = fmt.Sprintf("%d row(s)", r.Multitable.TotalRows())
		}
	case core.KindSync, core.KindGlobalDML:
		w.State = r.State.String()
		w.Detail = fmt.Sprintf("DOLSTATUS=%d", r.Status)
	case core.KindMultiTx:
		if r.AchievedState != nil {
			w.State = "success"
			w.Detail = fmt.Sprintf("acceptable state %d: %s", r.Status, strings.Join(r.AchievedState, " AND "))
		} else {
			w.State = "failed"
			w.Detail = fmt.Sprintf("no acceptable state reachable (DOLSTATUS=%d)", r.Status)
		}
	case core.KindExplain:
		if r.Plan != nil {
			w.Columns = []string{"QUERY PLAN"}
			text := r.Plan.Render()
			if r.PlanJSON {
				text = r.Plan.JSON()
			}
			for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
				w.Rows = append(w.Rows, []string{line})
			}
			w.Detail = "plan digest " + r.Plan.Digest()
		}
	case core.KindIncorporate:
		w.Detail = "service incorporated"
	case core.KindImport:
		w.Detail = "database imported"
	}
	return w
}

func kindString(k core.ResultKind) string {
	switch k {
	case core.KindSelect:
		return "select"
	case core.KindSync:
		return "sync"
	case core.KindGlobalDML:
		return "global-dml"
	case core.KindMultiTx:
		return "multitx"
	case core.KindIncorporate:
		return "incorporate"
	case core.KindImport:
		return "import"
	case core.KindNoop:
		return "noop"
	case core.KindExplain:
		return "explain"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ErrClientClosed marks calls on an already-closed Client.
var ErrClientClosed = errors.New("mdserver: client closed")
