package mdserver

import (
	"context"
	"encoding/gob"
	"net"
	"sync/atomic"
	"time"

	"msql/internal/wire"
)

// Client is one connection to a coordinator server. Sequential Script
// calls share server-side session state (USE scope, LET bindings, the
// open unit); concurrent multitransactions come from concurrent Clients.
// A Client must be used from one goroutine at a time, except Close,
// which may be called concurrently to abandon an in-flight Script (the
// soak tests do this deliberately to exercise mid-2PC disconnects).
type Client struct {
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	tenant string
	broken atomic.Bool // may be set by a concurrent Close
}

// Dial connects to a coordinator server. The tenant string is this
// client's admission-control identity; empty means anonymous.
func Dial(addr, tenant string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn:   conn,
		enc:    gob.NewEncoder(conn),
		dec:    gob.NewDecoder(conn),
		tenant: tenant,
	}, nil
}

// Script executes an MSQL script in the connection's session and
// returns the per-statement outcomes. Script-level failures (parse
// error, admission shed, statement timeout) come back as the error —
// errors.Is works for sentinels the wire preserves, admit.ErrOverload
// among them — alongside whatever statements completed first. The
// context deadline bounds the whole round trip; a canceled context or
// transport failure leaves the connection unusable (the gob stream
// cannot be resynchronized) and the client must be discarded.
func (c *Client) Script(ctx context.Context, src string) ([]wire.ScriptResult, error) {
	if c.broken.Load() {
		return nil, ErrClientClosed
	}
	deadline := time.Time{}
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	_ = c.conn.SetDeadline(deadline)
	stop := make(chan struct{})
	defer close(stop)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				_ = c.conn.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
	}
	fail := func(err error) ([]wire.ScriptResult, error) {
		c.broken.Store(true)
		_ = c.conn.Close()
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = ctxErr
		}
		return nil, err
	}
	req := &wire.Request{Kind: wire.ReqScript, SQL: src, Tenant: c.tenant}
	if err := c.enc.Encode(req); err != nil {
		return fail(err)
	}
	var resp wire.Response
	if err := c.dec.Decode(&resp); err != nil {
		return fail(err)
	}
	_ = c.conn.SetDeadline(time.Time{})
	return resp.Script, resp.Err()
}

// Close severs the connection. Safe to call while a Script is in
// flight: the in-flight call fails and the server treats the session as
// disconnected.
func (c *Client) Close() error {
	c.broken.Store(true)
	return c.conn.Close()
}
