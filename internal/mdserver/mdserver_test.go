package mdserver

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"msql/internal/admit"
	"msql/internal/core"
	"msql/internal/demo"
	"msql/internal/mtlog"
)

// startServer serves a fresh demo federation with a group-committing
// coordinator journal and returns the server plus its federation.
func startServer(t *testing.T, opts Options) (*Server, *core.Federation) {
	t.Helper()
	fed, err := demo.Build(demo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := mtlog.Open(filepath.Join(t.TempDir(), "coord.log"))
	if err != nil {
		t.Fatal(err)
	}
	j.SetGroupCommit(time.Millisecond)
	fed.SetJournal(j)
	srv, err := Serve("127.0.0.1:0", fed, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		j.Close()
	})
	return srv, fed
}

// scriptOK runs a script and fails the test on any script-level error or
// failed sync.
func scriptOK(t *testing.T, c *Client, src string) []string {
	t.Helper()
	res, err := c.Script(context.Background(), src)
	if err != nil {
		t.Fatalf("script failed: %v", err)
	}
	var states []string
	for _, r := range res {
		if r.Failed {
			t.Fatalf("statement failed: %s", r.Detail)
		}
		if r.State != "" {
			states = append(states, r.State)
		}
	}
	return states
}

// TestParallelSessionsCommit runs many concurrent client connections,
// each committing two-site vital units, and checks every unit
// eventually reaches success and all rows land. Concurrent units on the
// same table pair can deadlock across sites (each unit's fan-out tasks
// acquire their per-site X locks in parallel, so two units can grab
// them in opposite orders); the storage lock timeout breaks the cycle
// by aborting one side, which surfaces as a clean "aborted" sync — the
// multidatabase answer to global deadlock. The test therefore retries
// aborted units: the invariant is convergence, not first-try success.
func TestParallelSessionsCommit(t *testing.T) {
	srv, _ := startServer(t, Options{})

	const clients = 8
	const opsPer = 2
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr(), fmt.Sprintf("tenant%d", i%2))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for n := 0; n < opsPer; n++ {
				fn := 5000 + i*10 + n
				// flight% fans out to delta and united inside one vital
				// unit: each op is a genuine two-site 2PC.
				src := fmt.Sprintf(`USE delta VITAL united VITAL;
INSERT INTO flight%% VALUES (%d, 'Houston', 'Austin', '07:00', '08:00', 'wed', 55.0);
COMMIT;`, fn)
				deadline := time.Now().Add(30 * time.Second)
				for {
					res, err := c.Script(context.Background(), src)
					if err != nil {
						errCh <- fmt.Errorf("client %d op %d: %w", i, n, err)
						return
					}
					state := ""
					for _, r := range res {
						if r.Kind == "sync" {
							state = r.State
						}
					}
					if state == "success" {
						break
					}
					if state == "" {
						errCh <- fmt.Errorf("client %d op %d: no sync result (unit never formed)", i, n)
						return
					}
					if time.Now().After(deadline) {
						errCh <- fmt.Errorf("client %d op %d: never committed, last state %s", i, n, state)
						return
					}
					// Clean abort under contention: back off and retry.
					time.Sleep(time.Duration(10+i*7) * time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Verify through a fresh client that the rows are visible.
	c, err := Dial(srv.Addr(), "verifier")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Script(context.Background(),
		`USE delta; SELECT COUNT(*) FROM delta.flight WHERE fnu >= 5000;`)
	if err != nil {
		t.Fatal(err)
	}
	var count string
	for _, r := range res {
		if r.Kind == "select" && len(r.Rows) > 0 {
			count = r.Rows[0][len(r.Rows[0])-1]
		}
	}
	if want := fmt.Sprintf("%d", clients*opsPer); count != want {
		t.Fatalf("delta row count = %q, want %s", count, want)
	}
}

// TestSequentialScriptsShareSession checks scope set by one Script call
// is visible to the next on the same connection, and not on another.
func TestSequentialScriptsShareSession(t *testing.T) {
	srv, _ := startServer(t, Options{})
	a, err := Dial(srv.Addr(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.Script(context.Background(), `USE delta;`); err != nil {
		t.Fatal(err)
	}
	// Unqualified table name resolves through the session's scope.
	res, err := a.Script(context.Background(), `SELECT * FROM delta.flight;`)
	if err != nil {
		t.Fatalf("scoped select on same conn: %v", err)
	}
	found := false
	for _, r := range res {
		if r.Kind == "select" && len(r.Rows) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("scoped select returned no rows")
	}

	// A different connection has no scope: the same select must fail.
	b, err := Dial(srv.Addr(), "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Script(context.Background(), `SELECT * FROM delta.flight;`); err == nil {
		t.Fatal("select without USE succeeded on a fresh connection")
	}
}

// TestMaxSessionsShedsWithOverload fills the connection cap and checks
// the next client is answered ErrOverload in-protocol, then admitted
// once a slot frees up.
func TestMaxSessionsShedsWithOverload(t *testing.T) {
	srv, _ := startServer(t, Options{MaxSessions: 2})

	var held []*Client
	for i := 0; i < 2; i++ {
		c, err := Dial(srv.Addr(), "holder")
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, c)
		// A round trip guarantees the server registered the connection.
		if _, err := c.Script(context.Background(), `USE delta;`); err != nil {
			t.Fatal(err)
		}
	}

	over, err := Dial(srv.Addr(), "late")
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	_, err = over.Script(context.Background(), `USE delta;`)
	if !errors.Is(err, admit.ErrOverload) {
		t.Fatalf("over-cap script err = %v, want ErrOverload", err)
	}

	// Freeing a session restores service for a fresh connection.
	held[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := Dial(srv.Addr(), "retry")
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Script(context.Background(), `USE delta;`)
		c.Close()
		if err == nil {
			break
		}
		if !errors.Is(err, admit.ErrOverload) {
			t.Fatalf("retry err = %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("service never restored after closing a session")
		}
		time.Sleep(10 * time.Millisecond)
	}
	held[1].Close()
}

// TestStatementAdmissionShedOverWire wires a saturated admission
// controller into the federation and checks the shed surfaces to the
// client as ErrOverload through the wire error table.
func TestStatementAdmissionShedOverWire(t *testing.T) {
	srv, fed := startServer(t, Options{})
	ctrl := admit.New(admit.Config{MaxConcurrent: 1, MaxQueuePerTenant: 1, MaxWait: 30 * time.Millisecond})
	fed.SetAdmission(ctrl)
	hold, err := ctrl.Acquire(context.Background(), "hog")
	if err != nil {
		t.Fatal(err)
	}

	c, err := Dial(srv.Addr(), "loud")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Script(context.Background(), `USE delta;`)
	if !errors.Is(err, admit.ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload across the wire", err)
	}

	hold()
	// The same connection stays usable after a shed: nothing executed,
	// nothing broke the stream.
	if _, err := c.Script(context.Background(), `USE delta;`); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestStmtTimeoutSurfacesOverWire checks a federation statement timeout
// fails the script with a deadline error the client can see.
func TestStmtTimeoutSurfacesOverWire(t *testing.T) {
	srv, fed := startServer(t, Options{})
	c, err := Dial(srv.Addr(), "t")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	scriptOK(t, c, `USE delta;`)

	fed.StmtTimeout = time.Nanosecond
	_, err = c.Script(context.Background(), `SELECT * FROM delta.flight;`)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want a deadline error", err)
	}
	fed.StmtTimeout = 0
	scriptOK(t, c, `SELECT * FROM delta.flight;`)
}

// TestAbandonedSessionReleasesResources disconnects clients without
// reading their replies — some with a pending never-synced unit — and
// checks the server drains the sessions and later writers on the same
// tables are not blocked by leftover locks.
func TestAbandonedSessionReleasesResources(t *testing.T) {
	srv, _ := startServer(t, Options{})

	for i := 0; i < 8; i++ {
		c, err := Dial(srv.Addr(), "churn")
		if err != nil {
			t.Fatal(err)
		}
		src := fmt.Sprintf(`USE delta VITAL united VITAL;
INSERT INTO flight%% VALUES (%d, 'Houston', 'Austin', '07:00', '08:00', 'wed', 55.0);
COMMIT;`, 7000+i)
		if i%2 == 0 {
			// Fire the script and hang up without reading the reply.
			go func() { _, _ = c.Script(context.Background(), src) }()
			time.Sleep(time.Millisecond)
			c.Close()
		} else {
			// Hang up with a pending unit that never reached its sync point.
			if _, err := c.Script(context.Background(),
				`USE delta VITAL; INSERT INTO delta.flight VALUES (1, 'x', 'y', '01:00', '02:00', 'mon', 1.0);`); err != nil {
				t.Fatal(err)
			}
			c.Close()
		}
	}

	// All sessions must drain.
	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveSessions() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions never drained: %d live", srv.ActiveSessions())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A fresh client must be able to write the same tables promptly —
	// leftover locks from abandoned sessions would time this out.
	c, err := Dial(srv.Addr(), "after")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	states := scriptOK(t, c, `USE delta VITAL united VITAL;
INSERT INTO flight% VALUES (7999, 'Houston', 'Austin', '07:00', '08:00', 'wed', 55.0);
COMMIT;`)
	if len(states) == 0 || states[len(states)-1] != "success" {
		t.Fatalf("post-churn unit states = %v, want success", states)
	}
}
