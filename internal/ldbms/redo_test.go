package ldbms

import "testing"

// TestSessionRedoTracking: the redo list mirrors the open transaction —
// effect-bearing statements accumulate, selects are skipped, and every
// transaction outcome (commit, rollback, autocommit) clears it.
func TestSessionRedoTracking(t *testing.T) {
	srv := NewServer("svc", ProfileOracleLike(), 1)
	if err := srv.CreateDatabase("db"); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.OpenSession("db")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	mustExec := func(q string) {
		t.Helper()
		if _, err := sess.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec("CREATE TABLE t (a INTEGER)")
	mustExec("INSERT INTO t VALUES (1)")
	mustExec("SELECT a FROM t")
	if redo := sess.Redo(); len(redo) != 2 || redo[1] != "INSERT INTO t VALUES (1)" {
		t.Fatalf("redo = %v, want create+insert (selects excluded)", redo)
	}
	// Redo survives the prepared state: it is exactly what a restarted
	// server replays to re-materialize the vote.
	if err := sess.Prepare(); err != nil {
		t.Fatal(err)
	}
	if redo := sess.Redo(); len(redo) != 2 {
		t.Fatalf("redo after prepare = %v", redo)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	if redo := sess.Redo(); len(redo) != 0 {
		t.Fatalf("redo after commit = %v, want empty", redo)
	}

	mustExec("INSERT INTO t VALUES (2)")
	if err := sess.Rollback(); err != nil {
		t.Fatal(err)
	}
	if redo := sess.Redo(); len(redo) != 0 {
		t.Fatalf("redo after rollback = %v, want empty", redo)
	}
}

// TestSessionRedoAutocommitCleared: on a server that autocommits a
// statement class, the silent commit empties the redo list — those
// effects are the local DBMS's own durability problem, not the 2PC
// window's.
func TestSessionRedoAutocommitCleared(t *testing.T) {
	srv := NewServer("svc", ProfileIngresLike(), 1)
	if err := srv.CreateDatabase("db"); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.OpenSession("db")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// ProfileIngresLike autocommits DDL: CREATE silently commits.
	if _, err := sess.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if sess.State() != StateCommitted {
		t.Skip("profile does not autocommit CREATE; redo-clearing is covered elsewhere")
	}
	if redo := sess.Redo(); len(redo) != 0 {
		t.Fatalf("redo after autocommit = %v, want empty", redo)
	}
}
