package ldbms

import (
	"fmt"
	"sync"
	"time"

	"msql/internal/backend"
	"msql/internal/relstore"
	"msql/internal/sqlengine"
	"msql/internal/sqlparser"
)

// SessionState is the observable transaction state of a session. Prepared
// is the visible prepared-to-commit state the paper's evaluation plans
// test with conditions like (T1=P).
type SessionState uint8

// Session states.
const (
	StateIdle SessionState = iota // no open transaction
	StateActive
	StatePrepared
	StateCommitted // last transaction committed
	StateAborted   // last transaction rolled back
)

func (s SessionState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateActive:
		return "active"
	case StatePrepared:
		return "prepared"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	default:
		return fmt.Sprintf("SessionState(%d)", uint8(s))
	}
}

// Session is one connection to a server's database. Statements accumulate
// in an implicit transaction; the profile decides when the server commits
// on its own.
type Session struct {
	srv *Server
	db  string

	mu          sync.Mutex
	tx          backend.Tx
	state       SessionState
	lockTimeout time.Duration
	// redo holds the effect-bearing SQL of the open transaction in
	// execution order, so a participant journal can re-materialize a
	// prepared session on a restarted server. Cleared whenever the
	// transaction reaches an outcome (commit, rollback, autocommit).
	redo []string
}

// Database returns the connected database name.
func (s *Session) Database() string { return s.db }

// State returns the session's transaction state.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// SetLockTimeout overrides the lock wait budget for subsequent
// transactions (tests use short timeouts to simulate deadlocks quickly).
func (s *Session) SetLockTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockTimeout = d
}

func (s *Session) beginLocked() backend.Tx {
	tx := s.srv.be.Begin()
	if s.lockTimeout > 0 {
		tx.SetLockTimeout(s.lockTimeout)
	}
	s.tx = tx
	s.state = StateActive
	s.redo = nil
	return tx
}

// Redo returns the effect-bearing SQL statements of the open transaction
// in execution order — what a restarted server must re-execute to bring
// a prepared transaction back to its voted state. Empty outside an open
// transaction.
func (s *Session) Redo() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.redo...)
}

// Exec parses and executes one SQL statement. Errors abort the open
// transaction, mirroring an LDBMS that aborts its local subquery on
// failure. BEGIN/COMMIT/ROLLBACK statements map onto the session's
// transaction control.
func (s *Session) Exec(sql string) (*sqlengine.Result, error) {
	stmt, err := sqlparser.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	switch stmt.(type) {
	case *sqlparser.BeginStmt:
		s.mu.Lock()
		if s.tx == nil {
			s.beginLocked()
		}
		s.mu.Unlock()
		return &sqlengine.Result{}, nil
	case *sqlparser.CommitStmt:
		return &sqlengine.Result{}, s.Commit()
	case *sqlparser.RollbackStmt:
		return &sqlengine.Result{}, s.Rollback()
	}
	return s.execStmt(sql, stmt)
}

func (s *Session) execStmt(sql string, stmt sqlparser.Statement) (*sqlengine.Result, error) {
	s.srv.simulateLatency()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == StatePrepared {
		return nil, fmt.Errorf("%w: exec while prepared", ErrSessionState)
	}
	if err := s.srv.faults.Check(FaultExec, s.db); err != nil {
		s.abortLocked()
		return nil, err
	}
	if s.tx == nil {
		s.beginLocked()
	}
	s.srv.bump(func(st *Stats) { st.Execs++ })
	res, err := s.tx.Exec(s.db, sql, stmt)
	if err != nil {
		s.abortLocked()
		return nil, err
	}
	class := ClassifySQL(sql)
	if s.srv.profile.AutoCommits(class) && class != ClassSelect {
		// The server commits on its own: the statement itself and every
		// previously issued uncommitted statement become durable.
		if err := s.tx.Commit(); err != nil {
			s.abortLocked()
			return nil, err
		}
		s.tx = nil
		s.state = StateCommitted
		s.redo = nil
		s.srv.bump(func(st *Stats) { st.Commits++; st.SilentCommits++ })
		if err := s.srv.checkpoint(); err != nil {
			return nil, err
		}
	} else if class != ClassSelect {
		s.redo = append(s.redo, sql)
	}
	return res, nil
}

// Prepare moves the open transaction to the prepared-to-commit state.
// Servers without a 2PC interface refuse.
func (s *Session) Prepare() error {
	s.srv.simulateLatency()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.srv.profile.TwoPC {
		return fmt.Errorf("%w (%s)", ErrNoTwoPC, s.srv.profile.Name)
	}
	if err := s.srv.faults.Check(FaultPrepare, s.db); err != nil {
		s.abortLocked()
		return err
	}
	if s.tx == nil {
		// Nothing pending (e.g. everything was autocommitted): prepare an
		// empty transaction so the protocol can proceed uniformly.
		s.beginLocked()
	}
	if err := s.tx.Prepare(); err != nil {
		return err
	}
	s.state = StatePrepared
	s.srv.bump(func(st *Stats) { st.Prepares++ })
	return nil
}

// Commit commits the open transaction (from active or prepared state).
func (s *Session) Commit() error {
	s.srv.simulateLatency()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx == nil {
		return nil // nothing pending; autocommit already made it durable
	}
	if err := s.srv.faults.Check(FaultCommit, s.db); err != nil {
		s.abortLocked()
		return err
	}
	if err := s.tx.Commit(); err != nil {
		return err
	}
	s.tx = nil
	s.state = StateCommitted
	s.redo = nil
	s.srv.bump(func(st *Stats) { st.Commits++ })
	return s.srv.checkpoint()
}

// Rollback aborts the open transaction.
func (s *Session) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx == nil {
		s.state = StateAborted
		return nil
	}
	s.abortLocked()
	return nil
}

func (s *Session) abortLocked() {
	if s.tx != nil {
		_ = s.tx.Rollback()
		s.tx = nil
		s.srv.bump(func(st *Stats) { st.Rollbacks++ })
	}
	s.state = StateAborted
	s.redo = nil
}

// Close rolls back any open transaction.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx != nil {
		s.abortLocked()
	}
}

// Describe reports the schema of a table or view, for IMPORT.
func (s *Session) Describe(name string) ([]relstore.Column, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx := s.tx
	temp := false
	if tx == nil {
		tx = s.srv.be.Begin()
		temp = true
	}
	cols, err := tx.Describe(s.db, name)
	if temp {
		_ = tx.Rollback()
	}
	return cols, err
}

// ListTables returns the table names of the connected database.
func (s *Session) ListTables() ([]string, error) {
	return s.srv.be.ListTables(s.db)
}

// ListViews returns the view names of the connected database.
func (s *Session) ListViews() ([]string, error) {
	return s.srv.be.ListViews(s.db)
}
