package ldbms

import (
	"errors"
	"testing"
	"time"

	"msql/internal/relstore"
)

func newUnited(t testing.TB, p Profile) *Server {
	t.Helper()
	srv := NewServer("united-svc", p, 1)
	if err := srv.CreateDatabase("united"); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.OpenSession("united")
	if err != nil {
		t.Fatal(err)
	}
	setup := []string{
		"CREATE TABLE flight (fn INTEGER, sour CHAR(20), dest CHAR(20), rates FLOAT)",
		"INSERT INTO flight VALUES (1, 'Houston', 'San Antonio', 100.0), (2, 'Houston', 'Dallas', 80.0)",
	}
	for _, q := range setup {
		if _, err := sess.Exec(q); err != nil {
			t.Fatalf("setup %q: %v", q, err)
		}
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	return srv
}

func rate(t *testing.T, srv *Server, fn int) float64 {
	t.Helper()
	sess, err := srv.OpenSession("united")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Exec("SELECT rates FROM flight WHERE fn = 1")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := res.Rows[0][0].AsFloat()
	return f
}

func TestClassifySQL(t *testing.T) {
	cases := map[string]StmtClass{
		"SELECT * FROM t":        ClassSelect,
		"insert into t values":   ClassInsert,
		"Update t set x = 1":     ClassUpdate,
		"DELETE FROM t":          ClassDelete,
		"CREATE TABLE t (a INT)": ClassCreate,
		"DROP TABLE t":           ClassDrop,
		"COMMIT":                 ClassOther,
		"":                       ClassOther,
	}
	for sql, want := range cases {
		if got := ClassifySQL(sql); got != want {
			t.Errorf("ClassifySQL(%q) = %s, want %s", sql, got, want)
		}
	}
}

func TestTwoPCPrepareCommit(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	sess, _ := srv.OpenSession("united")
	if _, err := sess.Exec("UPDATE flight SET rates = rates * 1.1 WHERE sour = 'Houston'"); err != nil {
		t.Fatal(err)
	}
	if sess.State() != StateActive {
		t.Fatalf("state = %s", sess.State())
	}
	if err := sess.Prepare(); err != nil {
		t.Fatal(err)
	}
	if sess.State() != StatePrepared {
		t.Fatalf("state = %s", sess.State())
	}
	// Exec while prepared is refused.
	if _, err := sess.Exec("SELECT 1"); !errors.Is(err, ErrSessionState) {
		t.Fatalf("exec while prepared err = %v", err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := rate(t, srv, 1); got < 109.9 || got > 110.1 {
		t.Fatalf("rate = %v", got)
	}
}

func TestTwoPCPrepareRollback(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	sess, _ := srv.OpenSession("united")
	if _, err := sess.Exec("UPDATE flight SET rates = 999 WHERE fn = 1"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Prepare(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Rollback(); err != nil {
		t.Fatal(err)
	}
	if sess.State() != StateAborted {
		t.Fatalf("state = %s", sess.State())
	}
	if got := rate(t, srv, 1); got != 100 {
		t.Fatalf("rate = %v", got)
	}
}

func TestAutoCommitOnlyServer(t *testing.T) {
	srv := newUnited(t, ProfileAutoCommitOnly())
	sess, _ := srv.OpenSession("united")
	if _, err := sess.Exec("UPDATE flight SET rates = 120 WHERE fn = 1"); err != nil {
		t.Fatal(err)
	}
	// Statement already durable; state reports committed.
	if sess.State() != StateCommitted {
		t.Fatalf("state = %s", sess.State())
	}
	if err := sess.Prepare(); !errors.Is(err, ErrNoTwoPC) {
		t.Fatalf("prepare err = %v", err)
	}
	// Rollback cannot undo what autocommit made durable.
	sess.Rollback()
	if got := rate(t, srv, 1); got != 120 {
		t.Fatalf("rate = %v", got)
	}
}

func TestIngresLikeDDLAutoCommitsPriorWork(t *testing.T) {
	// The paper's observed quirk: DDL commits itself and all previously
	// issued uncommitted statements.
	srv := newUnited(t, ProfileIngresLike())
	srv.ResetStats()
	sess, _ := srv.OpenSession("united")
	if _, err := sess.Exec("UPDATE flight SET rates = 500 WHERE fn = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("CREATE TABLE side (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if sess.State() != StateCommitted {
		t.Fatalf("state after DDL = %s", sess.State())
	}
	// Rollback after the DDL autocommit is a no-op for the prior update.
	sess.Rollback()
	if got := rate(t, srv, 1); got != 500 {
		t.Fatalf("rate = %v (DDL should have dragged the update to durability)", got)
	}
	st := srv.Stats()
	if st.SilentCommits != 1 {
		t.Fatalf("silent commits = %d", st.SilentCommits)
	}
}

func TestOracleLikeDDLRollsBack(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	sess, _ := srv.OpenSession("united")
	if _, err := sess.Exec("CREATE TABLE side (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Rollback(); err != nil {
		t.Fatal(err)
	}
	sess2, _ := srv.OpenSession("united")
	defer sess2.Close()
	if _, err := sess2.Exec("SELECT a FROM side"); err == nil {
		t.Fatal("side table survived rollback on a DDL-rollback profile")
	}
}

func TestNoConnectServer(t *testing.T) {
	srv := NewServer("syb", ProfileSybaseLike(), 1)
	if err := srv.CreateDatabase("main"); err != nil {
		t.Fatal(err)
	}
	if err := srv.CreateDatabase("other"); !errors.Is(err, ErrNoConnect) {
		t.Fatalf("second db err = %v", err)
	}
	if _, err := srv.OpenSession("other"); !errors.Is(err, ErrNoConnect) {
		t.Fatalf("open other err = %v", err)
	}
	// Empty database name connects to the default.
	sess, err := srv.OpenSession("")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Database() != "main" {
		t.Fatalf("db = %s", sess.Database())
	}
	if srv.DefaultDatabase() != "main" {
		t.Fatalf("default = %s", srv.DefaultDatabase())
	}
}

func TestExecErrorAbortsTransaction(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	sess, _ := srv.OpenSession("united")
	if _, err := sess.Exec("UPDATE flight SET rates = 999 WHERE fn = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("SELECT * FROM missing_table"); err == nil {
		t.Fatal("expected error")
	}
	if sess.State() != StateAborted {
		t.Fatalf("state = %s", sess.State())
	}
	if got := rate(t, srv, 1); got != 100 {
		t.Fatalf("rate = %v, prior update should be gone", got)
	}
}

func TestFaultInjectionExec(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	srv.Faults().Add(FaultRule{Op: FaultExec, Database: "united"})
	sess, _ := srv.OpenSession("united")
	_, err := sess.Exec("SELECT 1")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	// One-shot: next exec succeeds.
	if _, err := sess.Exec("SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if srv.Faults().Fired() != 1 {
		t.Fatalf("fired = %d", srv.Faults().Fired())
	}
}

func TestFaultInjectionPrepareAndCommit(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	srv.Faults().Add(FaultRule{Op: FaultPrepare, Database: "united"})
	sess, _ := srv.OpenSession("united")
	sess.Exec("UPDATE flight SET rates = 1 WHERE fn = 1")
	if err := sess.Prepare(); !errors.Is(err, ErrInjected) {
		t.Fatalf("prepare err = %v", err)
	}
	if sess.State() != StateAborted {
		t.Fatalf("state = %s", sess.State())
	}
	if got := rate(t, srv, 1); got != 100 {
		t.Fatalf("rate = %v", got)
	}

	srv.Faults().Add(FaultRule{Op: FaultCommit, Database: "united"})
	sess2, _ := srv.OpenSession("united")
	sess2.Exec("UPDATE flight SET rates = 2 WHERE fn = 1")
	if err := sess2.Commit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("commit err = %v", err)
	}
	if got := rate(t, srv, 1); got != 100 {
		t.Fatalf("rate = %v", got)
	}
}

func TestFaultSkipCountsDown(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	srv.Faults().Add(FaultRule{Op: FaultExec, Skip: 2})
	sess, _ := srv.OpenSession("united")
	for i := 0; i < 2; i++ {
		if _, err := sess.Exec("SELECT 1"); err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
	}
	if _, err := sess.Exec("SELECT 1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("third exec err = %v", err)
	}
}

func TestFaultSticky(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	srv.Faults().Add(FaultRule{Op: FaultExec, Sticky: true})
	sess, _ := srv.OpenSession("united")
	for i := 0; i < 3; i++ {
		if _, err := sess.Exec("SELECT 1"); !errors.Is(err, ErrInjected) {
			t.Fatalf("exec %d err = %v", i, err)
		}
	}
	srv.Faults().Clear()
	if _, err := sess.Exec("SELECT 1"); err != nil {
		t.Fatal(err)
	}
}

func TestFaultProbabilisticOneShot(t *testing.T) {
	// A non-sticky probabilistic rule must be removed after its first
	// firing — it used to keep firing forever regardless of Sticky.
	f := NewFaultInjector(1)
	f.Add(FaultRule{Op: FaultExec, Probability: 1.0})
	if err := f.Check(FaultExec, "db"); !errors.Is(err, ErrInjected) {
		t.Fatalf("first check err = %v, want ErrInjected", err)
	}
	for i := 0; i < 5; i++ {
		if err := f.Check(FaultExec, "db"); err != nil {
			t.Fatalf("check %d after one-shot fired: %v", i, err)
		}
	}
	if got := f.Fired(); got != 1 {
		t.Fatalf("fired = %d, want 1", got)
	}

	// Sticky keeps a probabilistic rule installed.
	f.Add(FaultRule{Op: FaultExec, Probability: 1.0, Sticky: true})
	for i := 0; i < 3; i++ {
		if err := f.Check(FaultExec, "db"); !errors.Is(err, ErrInjected) {
			t.Fatalf("sticky check %d err = %v", i, err)
		}
	}
}

func TestFaultProbabilisticDeterministicSeed(t *testing.T) {
	count := func() int {
		f := NewFaultInjector(42)
		f.Add(FaultRule{Op: FaultExec, Probability: 0.5, Sticky: true})
		n := 0
		for i := 0; i < 100; i++ {
			if err := f.Check(FaultExec, "db"); err != nil {
				n++
			}
		}
		return n
	}
	a, b := count(), count()
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a < 30 || a > 70 {
		t.Fatalf("suspicious fire rate %d/100 for p=0.5", a)
	}
}

func TestSessionTransactionControlStatements(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	sess, _ := srv.OpenSession("united")
	if _, err := sess.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	sess.Exec("UPDATE flight SET rates = 7 WHERE fn = 1")
	if _, err := sess.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if got := rate(t, srv, 1); got != 100 {
		t.Fatalf("rate = %v", got)
	}
	sess.Exec("UPDATE flight SET rates = 7 WHERE fn = 1")
	if _, err := sess.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if got := rate(t, srv, 1); got != 7 {
		t.Fatalf("rate = %v", got)
	}
}

func TestDescribeAndList(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	sess, _ := srv.OpenSession("united")
	defer sess.Close()
	cols, err := sess.Describe("flight")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 4 || cols[1].Name != "sour" {
		t.Fatalf("cols = %+v", cols)
	}
	tables, err := sess.ListTables()
	if err != nil || len(tables) != 1 || tables[0] != "flight" {
		t.Fatalf("tables = %v, %v", tables, err)
	}
	if _, err := sess.Describe("missing"); !errors.Is(err, relstore.ErrNoTable) {
		t.Fatalf("describe missing err = %v", err)
	}
	views, err := sess.ListViews()
	if err != nil || len(views) != 0 {
		t.Fatalf("views = %v, %v", views, err)
	}
}

func TestStatsCounters(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	srv.ResetStats()
	sess, _ := srv.OpenSession("united")
	sess.Exec("SELECT 1")
	sess.Exec("UPDATE flight SET rates = 1 WHERE fn = 1")
	sess.Prepare()
	sess.Commit()
	st := srv.Stats()
	if st.Execs != 2 || st.Prepares != 1 || st.Commits != 1 || st.Rollbacks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPrepareWithNoPendingWork(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	sess, _ := srv.OpenSession("united")
	if err := sess.Prepare(); err != nil {
		t.Fatal(err)
	}
	if sess.State() != StatePrepared {
		t.Fatalf("state = %s", sess.State())
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatedLatency(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	srv.SetLatency(20 * time.Millisecond)
	sess, _ := srv.OpenSession("united")
	defer sess.Close()
	start := time.Now()
	if _, err := sess.Exec("SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
	// Prepare and commit rounds also pay latency.
	sess.Exec("UPDATE flight SET rates = 1 WHERE fn = 1")
	start = time.Now()
	sess.Prepare()
	sess.Commit()
	if elapsed := time.Since(start); elapsed < 36*time.Millisecond {
		t.Fatalf("prepare/commit latency not applied: %v", elapsed)
	}
	srv.SetLatency(0)
	start = time.Now()
	sess.Exec("SELECT 1")
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("latency not cleared: %v", elapsed)
	}
}

func TestProfileAccessors(t *testing.T) {
	srv := newUnited(t, ProfileIngresLike())
	if srv.Name() != "united-svc" {
		t.Fatalf("name = %s", srv.Name())
	}
	p := srv.Profile()
	if p.Name != "ingres-like" || !p.AutoCommits(ClassCreate) {
		t.Fatalf("profile = %+v", p)
	}
	// Profile() returns a copy.
	p.AutoCommitClasses[ClassUpdate] = true
	if srv.Profile().AutoCommits(ClassUpdate) {
		t.Fatal("Profile returned shared state")
	}
	if dbs := srv.Databases(); len(dbs) != 1 || dbs[0] != "united" {
		t.Fatalf("dbs = %v", dbs)
	}
	if srv.Store() == nil {
		t.Fatal("store accessor nil")
	}
	for _, s := range []SessionState{StateIdle, StateActive, StatePrepared, StateCommitted, StateAborted} {
		if s.String() == "" {
			t.Fatal("empty state name")
		}
	}
	for _, c := range []StmtClass{ClassSelect, ClassInsert, ClassUpdate, ClassDelete, ClassCreate, ClassDrop, ClassOther} {
		if c.String() == "" {
			t.Fatal("empty class name")
		}
	}
	for _, op := range []FaultOp{FaultExec, FaultPrepare, FaultCommit} {
		if op.String() == "" {
			t.Fatal("empty op name")
		}
	}
}

func TestSessionLockTimeout(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	a, _ := srv.OpenSession("united")
	b, _ := srv.OpenSession("united")
	defer a.Close()
	defer b.Close()
	b.SetLockTimeout(50 * time.Millisecond)
	if _, err := a.Exec("UPDATE flight SET rates = 1 WHERE fn = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec("UPDATE flight SET rates = 2 WHERE fn = 1"); !errors.Is(err, relstore.ErrLockTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestOpenSessionErrors(t *testing.T) {
	srv := newUnited(t, ProfileOracleLike())
	if _, err := srv.OpenSession("nope"); !errors.Is(err, relstore.ErrNoDatabase) {
		t.Fatalf("err = %v", err)
	}
}
