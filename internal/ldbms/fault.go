package ldbms

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// FaultOp is the execution point a fault fires at.
type FaultOp uint8

// Fault points.
const (
	FaultExec FaultOp = iota
	FaultPrepare
	FaultCommit
)

func (op FaultOp) String() string {
	switch op {
	case FaultExec:
		return "exec"
	case FaultPrepare:
		return "prepare"
	case FaultCommit:
		return "commit"
	default:
		return fmt.Sprintf("FaultOp(%d)", uint8(op))
	}
}

// ErrInjected marks failures produced by the injector; callers can
// distinguish them from genuine engine errors.
var ErrInjected = errors.New("ldbms: injected fault")

// FaultRule describes one failure to inject. A rule matches when the
// operation and database agree (empty Database matches all), it then fires
// deterministically after Skip more matching calls, or randomly with
// Probability when Probability > 0. Once fired, one-shot rules are
// removed.
type FaultRule struct {
	Op          FaultOp
	Database    string
	Skip        int     // number of matching calls to let through first
	Probability float64 // 0 => deterministic; otherwise fire with this chance
	Sticky      bool    // keep firing instead of one-shot (applies to probabilistic rules too)
	Message     string
}

// FaultInjector holds the active rules of one server.
type FaultInjector struct {
	mu    sync.Mutex
	rules []*FaultRule
	rng   *rand.Rand
	fired int
}

// NewFaultInjector returns an injector whose probabilistic rules draw from
// the given seed, keeping experiments reproducible.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{rng: rand.New(rand.NewSource(seed))}
}

// Add installs a rule.
func (f *FaultInjector) Add(rule FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := rule
	f.rules = append(f.rules, &r)
}

// Clear removes all rules.
func (f *FaultInjector) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Fired reports how many faults have fired.
func (f *FaultInjector) Fired() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// Check consults the rules for an (op, database) event. It returns an
// error when a fault fires.
func (f *FaultInjector) Check(op FaultOp, database string) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, r := range f.rules {
		if r.Op != op {
			continue
		}
		if r.Database != "" && r.Database != database {
			continue
		}
		if r.Probability > 0 {
			if f.rng.Float64() >= r.Probability {
				return nil
			}
		} else if r.Skip > 0 {
			r.Skip--
			continue
		}
		if !r.Sticky {
			f.rules = append(f.rules[:i], f.rules[i+1:]...)
		}
		f.fired++
		msg := r.Message
		if msg == "" {
			msg = "local failure"
		}
		return fmt.Errorf("%w: %s at %s on %s", ErrInjected, msg, op, database)
	}
	return nil
}
