// Package ldbms simulates the heterogeneous local database systems of the
// paper's federation (Oracle, Ingres and Sybase in the original testbed).
// Each server wraps a relstore/sqlengine pair behind a session interface
// and a capability profile that reproduces exactly the observable commit
// behaviours Section 3.2.2 of the paper builds its semantics on:
//
//   - COMMITMODE COMMIT servers autocommit every statement and cannot
//     expose a prepared-to-commit state;
//   - COMMITMODE NOCOMMIT servers provide a user-controlled 2PC interface
//     with a visible prepared state;
//   - some 2PC servers autocommit DDL together with all previously issued
//     uncommitted statements (the paper's Ingres observation), while
//     others can roll DDL back (the paper's Oracle observation).
//
// Fault injection hooks let tests and experiments force local aborts at
// exec, prepare or commit time — the "local conflicts, failure, deadlock"
// causes the paper lists.
package ldbms

import "strings"

// StmtClass partitions statements the way the INCORPORATE statement's
// per-command commit modes do.
type StmtClass uint8

// Statement classes.
const (
	ClassSelect StmtClass = iota
	ClassInsert
	ClassUpdate
	ClassDelete
	ClassCreate // CREATE TABLE/DATABASE/VIEW
	ClassDrop   // DROP TABLE/DATABASE/VIEW
	ClassOther
)

func (c StmtClass) String() string {
	switch c {
	case ClassSelect:
		return "SELECT"
	case ClassInsert:
		return "INSERT"
	case ClassUpdate:
		return "UPDATE"
	case ClassDelete:
		return "DELETE"
	case ClassCreate:
		return "CREATE"
	case ClassDrop:
		return "DROP"
	default:
		return "OTHER"
	}
}

// ClassifySQL reports the statement class of a SQL text.
func ClassifySQL(sql string) StmtClass {
	fields := strings.Fields(strings.ToUpper(sql))
	if len(fields) == 0 {
		return ClassOther
	}
	switch fields[0] {
	case "SELECT", "EXPLAIN":
		// EXPLAIN targets are restricted to SELECT by the engine, so the
		// statement class follows the read-only target.
		return ClassSelect
	case "INSERT":
		return ClassInsert
	case "UPDATE":
		return ClassUpdate
	case "DELETE":
		return ClassDelete
	case "CREATE":
		return ClassCreate
	case "DROP":
		return ClassDrop
	default:
		return ClassOther
	}
}

// Profile is the capability description of a local DBMS product, the
// information the Auxiliary Directory records at INCORPORATE time.
type Profile struct {
	// Name labels the product the profile imitates.
	Name string
	// MultiDatabase is the CONNECTMODE: true (CONNECT) when the server
	// hosts several named databases, false (NOCONNECT) when it exposes a
	// single default database.
	MultiDatabase bool
	// TwoPC is the COMMITMODE: true (NOCOMMIT) when the server offers a
	// user-controlled two-phase commit interface with a visible
	// prepared-to-commit state, false (COMMIT) when every statement
	// autocommits.
	TwoPC bool
	// AutoCommitClasses lists statement classes that commit immediately
	// even on a 2PC server, dragging all previously issued uncommitted
	// statements with them (the paper's Ingres DDL behaviour).
	AutoCommitClasses map[StmtClass]bool
}

// AutoCommits reports whether executing class forces an immediate commit
// of the session's open transaction.
func (p Profile) AutoCommits(class StmtClass) bool {
	if !p.TwoPC {
		return true
	}
	return p.AutoCommitClasses[class]
}

// Clone deep-copies the profile.
func (p Profile) Clone() Profile {
	c := p
	c.AutoCommitClasses = make(map[StmtClass]bool, len(p.AutoCommitClasses))
	for k, v := range p.AutoCommitClasses {
		c.AutoCommitClasses[k] = v
	}
	return c
}

// ProfileOracleLike models the paper's DBMS that "allows DDL commands to
// be rolled back": full 2PC, nothing autocommits.
func ProfileOracleLike() Profile {
	return Profile{
		Name:              "oracle-like",
		MultiDatabase:     true,
		TwoPC:             true,
		AutoCommitClasses: map[StmtClass]bool{},
	}
}

// ProfileIngresLike models the paper's DBMS that "automatically commits
// [DDL] together with all previously issued uncommitted statements".
func ProfileIngresLike() Profile {
	return Profile{
		Name:          "ingres-like",
		MultiDatabase: true,
		TwoPC:         true,
		AutoCommitClasses: map[StmtClass]bool{
			ClassCreate: true,
			ClassDrop:   true,
		},
	}
}

// ProfileSybaseLike models a single-database (NOCONNECT) 2PC server.
func ProfileSybaseLike() Profile {
	return Profile{
		Name:              "sybase-like",
		MultiDatabase:     false,
		TwoPC:             true,
		AutoCommitClasses: map[StmtClass]bool{},
	}
}

// ProfileAutoCommitOnly models a COMMITMODE COMMIT server without any 2PC
// interface; VITAL use requires compensation (§3.3).
func ProfileAutoCommitOnly() Profile {
	return Profile{
		Name:              "autocommit-only",
		MultiDatabase:     true,
		TwoPC:             false,
		AutoCommitClasses: map[StmtClass]bool{},
	}
}
