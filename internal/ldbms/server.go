package ldbms

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"msql/internal/backend"
	"msql/internal/relbackend"
	"msql/internal/relstore"
)

// Server errors.
var (
	ErrNoTwoPC      = errors.New("ldbms: server does not support two-phase commit")
	ErrNoConnect    = errors.New("ldbms: server supports a single default database only")
	ErrSessionState = errors.New("ldbms: invalid session state for operation")
)

// Stats counts server operations for the benchmark harness.
type Stats struct {
	Execs         int64
	Commits       int64
	SilentCommits int64 // commits forced by autocommit classes
	Rollbacks     int64
	Prepares      int64
}

// Server simulates one local DBMS product instance. The storage engine
// behind it is pluggable (see internal/backend): the capability profile
// is the only thing the federation above ever observes, exactly as the
// paper's multidatabase layer sees products through their INCORPORATE
// declarations rather than their internals.
type Server struct {
	name    string
	profile Profile
	be      backend.Backend
	faults  *FaultInjector

	mu        sync.Mutex
	defaultDB string
	stats     Stats
	latency   time.Duration
}

// NewServer creates a server with the given capability profile over a
// fresh in-memory relstore engine. seed drives probabilistic fault
// injection.
func NewServer(name string, profile Profile, seed int64) *Server {
	return NewServerWith(name, profile, seed, relstore.NewStore())
}

// NewServerWith creates a server over an existing store — typically one
// opened with relstore.Options{Dir: ...} for disk persistence. When the
// store is disk-backed, every commit checkpoints it, and databases that
// survived a restart are adopted: the first (alphabetically) becomes the
// NOCONNECT default database.
func NewServerWith(name string, profile Profile, seed int64, store *relstore.Store) *Server {
	return NewServerOn(name, profile, seed, relbackend.New(store))
}

// NewServerOn creates a server over an arbitrary storage backend — the
// seam heterogeneous-fleet topologies use to mix genuinely different
// engines (relstore, csvstore) behind the uniform profile surface.
// Databases that survived a restart are adopted: the first becomes the
// NOCONNECT default database.
func NewServerOn(name string, profile Profile, seed int64, be backend.Backend) *Server {
	s := &Server{
		name:    name,
		profile: profile.Clone(),
		be:      be,
		faults:  NewFaultInjector(seed),
	}
	if names := be.DatabaseNames(); len(names) > 0 {
		s.defaultDB = names[0]
	}
	return s
}

// checkpoint makes committed state durable on durable backends; it is a
// no-op for memory-backed ones.
func (s *Server) checkpoint() error {
	if !s.be.Durable() {
		return nil
	}
	return s.be.Checkpoint()
}

// Close checkpoints and releases the storage backend. Memory-backed
// engines have nothing to release.
func (s *Server) Close() error { return s.be.Close() }

// Name returns the service name.
func (s *Server) Name() string { return s.name }

// Profile returns the server's capability profile.
func (s *Server) Profile() Profile { return s.profile.Clone() }

// Backend exposes the storage engine behind the server.
func (s *Server) Backend() backend.Backend { return s.be }

// Store exposes the underlying relstore for bootstrap and inspection
// (snapshot Load/Save). It returns nil for servers on non-relstore
// backends, which have no snapshot surface.
func (s *Server) Store() *relstore.Store {
	if rb, ok := s.be.(interface{ Store() *relstore.Store }); ok {
		return rb.Store()
	}
	return nil
}

// Faults exposes the fault injector.
func (s *Server) Faults() *FaultInjector { return s.faults }

// Stats returns a snapshot of operation counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the counters.
func (s *Server) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// CreateDatabase creates a database on the server. On NOCONNECT servers
// only the first database — the default one — may be created.
func (s *Server) CreateDatabase(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.profile.MultiDatabase && s.defaultDB != "" && s.defaultDB != name {
		return fmt.Errorf("%w (default %q)", ErrNoConnect, s.defaultDB)
	}
	if err := s.be.CreateDatabase(name); err != nil {
		return err
	}
	if s.defaultDB == "" {
		s.defaultDB = name
	}
	return nil
}

// DefaultDatabase returns the NOCONNECT default database name.
func (s *Server) DefaultDatabase() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.defaultDB
}

// Databases lists the databases hosted by the server.
func (s *Server) Databases() []string { return s.be.DatabaseNames() }

// OpenSession connects to a database. On NOCONNECT servers db may be
// empty or must equal the default database.
func (s *Server) OpenSession(db string) (*Session, error) {
	s.mu.Lock()
	defaultDB := s.defaultDB
	multi := s.profile.MultiDatabase
	s.mu.Unlock()
	if !multi {
		if db == "" {
			db = defaultDB
		}
		if db != defaultDB {
			return nil, fmt.Errorf("%w: cannot connect to %q (default %q)", ErrNoConnect, db, defaultDB)
		}
	}
	if !s.be.HasDatabase(db) {
		return nil, fmt.Errorf("%w: %s", relstore.ErrNoDatabase, db)
	}
	return &Session{srv: s, db: db}, nil
}

func (s *Server) bump(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// SetLatency configures a simulated per-operation service latency, the
// stand-in for a remote site's network and service time. Zero disables
// it.
func (s *Server) SetLatency(d time.Duration) {
	s.mu.Lock()
	s.latency = d
	s.mu.Unlock()
}

// simulateLatency sleeps the configured per-operation latency.
func (s *Server) simulateLatency() {
	s.mu.Lock()
	d := s.latency
	s.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}
