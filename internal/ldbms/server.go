package ldbms

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"msql/internal/relstore"
)

// Server errors.
var (
	ErrNoTwoPC      = errors.New("ldbms: server does not support two-phase commit")
	ErrNoConnect    = errors.New("ldbms: server supports a single default database only")
	ErrSessionState = errors.New("ldbms: invalid session state for operation")
)

// Stats counts server operations for the benchmark harness.
type Stats struct {
	Execs         int64
	Commits       int64
	SilentCommits int64 // commits forced by autocommit classes
	Rollbacks     int64
	Prepares      int64
}

// Server simulates one local DBMS product instance.
type Server struct {
	name    string
	profile Profile
	store   *relstore.Store
	faults  *FaultInjector

	mu        sync.Mutex
	defaultDB string
	stats     Stats
	latency   time.Duration
}

// NewServer creates a server with the given capability profile. seed
// drives probabilistic fault injection.
func NewServer(name string, profile Profile, seed int64) *Server {
	return NewServerWith(name, profile, seed, relstore.NewStore())
}

// NewServerWith creates a server over an existing store — typically one
// opened with relstore.Options{Dir: ...} for disk persistence. When the
// store is disk-backed, every commit checkpoints it, and databases that
// survived a restart are adopted: the first (alphabetically) becomes the
// NOCONNECT default database.
func NewServerWith(name string, profile Profile, seed int64, store *relstore.Store) *Server {
	s := &Server{
		name:    name,
		profile: profile.Clone(),
		store:   store,
		faults:  NewFaultInjector(seed),
	}
	if names := store.DatabaseNames(); len(names) > 0 {
		s.defaultDB = names[0]
	}
	return s
}

// checkpoint makes committed state durable on disk-backed stores; it is
// a no-op for memory-backed ones.
func (s *Server) checkpoint() error {
	if s.store.Dir() == "" {
		return nil
	}
	return s.store.Checkpoint()
}

// Close checkpoints and releases a disk-backed store. Memory-backed
// servers have nothing to release.
func (s *Server) Close() error {
	if s.store.Dir() == "" {
		return nil
	}
	return s.store.Close()
}

// Name returns the service name.
func (s *Server) Name() string { return s.name }

// Profile returns the server's capability profile.
func (s *Server) Profile() Profile { return s.profile.Clone() }

// Store exposes the underlying storage for bootstrap and inspection.
func (s *Server) Store() *relstore.Store { return s.store }

// Faults exposes the fault injector.
func (s *Server) Faults() *FaultInjector { return s.faults }

// Stats returns a snapshot of operation counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the counters.
func (s *Server) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// CreateDatabase creates a database on the server. On NOCONNECT servers
// only the first database — the default one — may be created.
func (s *Server) CreateDatabase(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.profile.MultiDatabase && s.defaultDB != "" && s.defaultDB != name {
		return fmt.Errorf("%w (default %q)", ErrNoConnect, s.defaultDB)
	}
	if err := s.store.CreateDatabase(name); err != nil {
		return err
	}
	if s.defaultDB == "" {
		s.defaultDB = name
	}
	return nil
}

// DefaultDatabase returns the NOCONNECT default database name.
func (s *Server) DefaultDatabase() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.defaultDB
}

// Databases lists the databases hosted by the server.
func (s *Server) Databases() []string { return s.store.DatabaseNames() }

// OpenSession connects to a database. On NOCONNECT servers db may be
// empty or must equal the default database.
func (s *Server) OpenSession(db string) (*Session, error) {
	s.mu.Lock()
	defaultDB := s.defaultDB
	multi := s.profile.MultiDatabase
	s.mu.Unlock()
	if !multi {
		if db == "" {
			db = defaultDB
		}
		if db != defaultDB {
			return nil, fmt.Errorf("%w: cannot connect to %q (default %q)", ErrNoConnect, db, defaultDB)
		}
	}
	if _, err := s.store.Database(db); err != nil {
		return nil, err
	}
	return &Session{srv: s, db: db}, nil
}

func (s *Server) bump(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// SetLatency configures a simulated per-operation service latency, the
// stand-in for a remote site's network and service time. Zero disables
// it.
func (s *Server) SetLatency(d time.Duration) {
	s.mu.Lock()
	s.latency = d
	s.mu.Unlock()
}

// simulateLatency sleeps the configured per-operation latency.
func (s *Server) simulateLatency() {
	s.mu.Lock()
	d := s.latency
	s.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}
