package lam

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"msql/internal/ldbms"
	"msql/internal/relstore"
	"msql/internal/sqlengine"
	"msql/internal/wire"
)

// ErrBreakerOpen marks a call rejected without touching the network
// because the LAM's circuit breaker is open: the site has failed
// repeatedly and the breaker fast-fails new work until the cooldown
// elapses or a health probe sees the site recover. Callers (the DOL
// engine) treat it as a degraded-site signal, not an in-doubt one — no
// transaction work was started.
var ErrBreakerOpen = errors.New("lam: circuit breaker open")

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState uint8

// Breaker states.
const (
	// BreakerClosed: calls flow normally; transient failures count
	// toward the trip threshold.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls fast-fail with ErrBreakerOpen until the
	// cooldown elapses or a health probe succeeds.
	BreakerOpen
	// BreakerHalfOpen: one trial call is in flight; its outcome closes
	// or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", uint8(s))
	}
}

// BreakerPolicy configures a per-LAM circuit breaker.
type BreakerPolicy struct {
	// Threshold is the number of consecutive transient failures that
	// trips the breaker (default 3). Definite, server-answered errors
	// never count: a site that answers is alive.
	Threshold int
	// Cooldown is how long the breaker stays open before the next call
	// is let through as a half-open trial (default 5s).
	Cooldown time.Duration
	// ProbeInterval, when positive, starts a background health probe
	// (the LAM's Profile op) while the breaker is open; a successful
	// probe closes the breaker before the cooldown expires.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each health probe (default 1s).
	ProbeTimeout time.Duration
	// OnTransition, when non-nil, is called after every breaker state
	// change with the service name and the states left and entered. It
	// runs outside the breaker's lock (calling back into the breaker is
	// safe) but on the goroutine that caused the transition, so it must
	// not block. Transitions are also always recorded as metrics
	// (msql_breaker_transitions_total, msql_breaker_state) whether or
	// not a callback is installed.
	OnTransition func(service string, from, to BreakerState)
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Threshold <= 0 {
		p.Threshold = 3
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 5 * time.Second
	}
	if p.ProbeTimeout <= 0 {
		p.ProbeTimeout = time.Second
	}
	return p
}

// BreakerClient wraps a Client with a circuit breaker. New sessions and
// control-plane calls are gated: when the breaker is open they fail
// immediately with ErrBreakerOpen instead of eating the full dial/retry
// budget. Operations on already-open sessions are never blocked — a 2PC
// participant mid-transaction cannot be abandoned by a breaker — but
// their transport failures feed the failure counter.
type BreakerClient struct {
	inner Client
	pol   BreakerPolicy

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	trips    int
	probing  bool
	stopCh   chan struct{}
}

// WithBreaker wraps a client in a circuit breaker under the policy.
func WithBreaker(c Client, pol BreakerPolicy) *BreakerClient {
	return &BreakerClient{inner: c, pol: pol.withDefaults()}
}

// State reports the breaker's current state, accounting for an elapsed
// cooldown (an open breaker past its cooldown reports half-open).
func (b *BreakerClient) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && time.Since(b.openedAt) >= b.pol.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips reports how many times the breaker has opened (for tests and
// operational counters).
func (b *BreakerClient) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// setStateLocked moves the automaton to a new state and returns the
// notification (metrics + OnTransition callback) to deliver once the
// caller drops b.mu, nil when the state did not change. Delivering
// outside the lock keeps callbacks free to call back into the breaker.
func (b *BreakerClient) setStateLocked(to BreakerState) func() {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	svc := b.inner.ServiceName()
	cb := b.pol.OnTransition
	return func() {
		mBreakerTransitions.With(svc, to.String()).Inc()
		mBreakerState.With(svc).Set(int64(to))
		if cb != nil {
			cb(svc, from, to)
		}
	}
}

func notify(f func()) {
	if f != nil {
		f()
	}
}

// allow decides whether a gated call may proceed. In the open state it
// fails fast until the cooldown elapses, then admits a single trial
// (half-open).
func (b *BreakerClient) allow() error {
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return nil
	case BreakerOpen:
		if time.Since(b.openedAt) < b.pol.Cooldown {
			err := fmt.Errorf("%w: %s (cooldown %s)", ErrBreakerOpen, b.inner.ServiceName(), b.pol.Cooldown)
			b.mu.Unlock()
			return err
		}
		n := b.setStateLocked(BreakerHalfOpen)
		b.mu.Unlock()
		notify(n)
		return nil
	default: // BreakerHalfOpen: one trial at a time
		err := fmt.Errorf("%w: %s (trial in flight)", ErrBreakerOpen, b.inner.ServiceName())
		b.mu.Unlock()
		return err
	}
}

// record feeds one call outcome into the automaton.
func (b *BreakerClient) record(err error) {
	b.mu.Lock()
	var n func()
	if err == nil || !wire.Transient(err) {
		// Success, or a definite answer from the server: the site is
		// reachable. Close the breaker and reset the count.
		n = b.setStateLocked(BreakerClosed)
		b.fails = 0
		b.mu.Unlock()
		notify(n)
		return
	}
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= b.pol.Threshold {
		n = b.tripLocked()
	}
	b.mu.Unlock()
	notify(n)
}

// tripLocked opens the breaker and starts the health probe, returning
// the transition notification. Caller holds b.mu.
func (b *BreakerClient) tripLocked() func() {
	n := b.setStateLocked(BreakerOpen)
	b.openedAt = time.Now()
	b.trips++
	if b.pol.ProbeInterval > 0 && !b.probing {
		b.probing = true
		b.stopCh = make(chan struct{})
		go b.probeLoop(b.stopCh)
	}
	return n
}

// probeLoop pings the LAM's Profile op while the breaker is open; the
// first success closes the breaker early.
func (b *BreakerClient) probeLoop(stop chan struct{}) {
	t := time.NewTicker(b.pol.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		b.mu.Lock()
		open := b.state == BreakerOpen
		b.mu.Unlock()
		if !open {
			b.mu.Lock()
			b.probing = false
			b.mu.Unlock()
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), b.pol.ProbeTimeout)
		_, err := b.inner.Profile(ctx)
		cancel()
		if err == nil {
			b.mu.Lock()
			n := b.setStateLocked(BreakerClosed)
			b.fails = 0
			b.probing = false
			b.mu.Unlock()
			notify(n)
			return
		}
	}
}

// ServiceName implements Client.
func (b *BreakerClient) ServiceName() string { return b.inner.ServiceName() }

// Profile implements Client (gated).
func (b *BreakerClient) Profile(ctx context.Context) (ldbms.Profile, error) {
	if err := b.allow(); err != nil {
		return ldbms.Profile{}, err
	}
	p, err := b.inner.Profile(ctx)
	b.record(err)
	return p, err
}

// Open implements Client (gated): an open breaker rejects new sessions
// within one scheduling quantum instead of a full dial/retry budget.
func (b *BreakerClient) Open(ctx context.Context, db string) (Session, error) {
	if err := b.allow(); err != nil {
		return nil, err
	}
	s, err := b.inner.Open(ctx, db)
	b.record(err)
	if err != nil {
		return nil, err
	}
	return &breakerSession{Session: s, b: b}, nil
}

// Describe implements Client (gated).
func (b *BreakerClient) Describe(ctx context.Context, db, name string) ([]relstore.Column, error) {
	if err := b.allow(); err != nil {
		return nil, err
	}
	cols, err := b.inner.Describe(ctx, db, name)
	b.record(err)
	return cols, err
}

// ListTables implements Client (gated).
func (b *BreakerClient) ListTables(ctx context.Context, db string) ([]string, error) {
	if err := b.allow(); err != nil {
		return nil, err
	}
	names, err := b.inner.ListTables(ctx, db)
	b.record(err)
	return names, err
}

// ListViews implements Client (gated).
func (b *BreakerClient) ListViews(ctx context.Context, db string) ([]string, error) {
	if err := b.allow(); err != nil {
		return nil, err
	}
	names, err := b.inner.ListViews(ctx, db)
	b.record(err)
	return names, err
}

// Close implements Client and stops the health probe.
func (b *BreakerClient) Close() error {
	b.mu.Lock()
	if b.stopCh != nil && b.probing {
		close(b.stopCh)
		b.probing = false
	}
	b.mu.Unlock()
	return b.inner.Close()
}

// breakerSession feeds session-op outcomes into the breaker without
// ever gating them: once a session exists, its 2PC protocol must be
// allowed to finish.
type breakerSession struct {
	Session
	b *BreakerClient
}

func (s *breakerSession) Exec(ctx context.Context, sql string) (*sqlengine.Result, error) {
	res, err := s.Session.Exec(ctx, sql)
	s.b.record(err)
	return res, err
}

func (s *breakerSession) Prepare(ctx context.Context) error {
	err := s.Session.Prepare(ctx)
	s.b.record(err)
	return err
}

func (s *breakerSession) Commit(ctx context.Context) error {
	err := s.Session.Commit(ctx)
	s.b.record(err)
	return err
}

func (s *breakerSession) Rollback(ctx context.Context) error {
	err := s.Session.Rollback(ctx)
	s.b.record(err)
	return err
}

// RecoveryInfo exposes the wrapped session's in-doubt recovery handle.
func (s *breakerSession) RecoveryInfo() (string, int64) {
	if rec, ok := s.Session.(Recoverable); ok {
		return rec.RecoveryInfo()
	}
	return "", 0
}
