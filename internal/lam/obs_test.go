package lam

import (
	"context"
	"sync"
	"testing"
	"time"

	"msql/internal/obs"
)

// TestTraceIDPropagatesOverTCP drives a session over a real TCP wire
// round trip with a trace in the context and checks both sides: the
// client records call spans with the server's reported processing time,
// and the server — given its own tracer, as if in another process —
// records correlated serve spans under the same trace id, parented on
// the client span ids that rode in on the requests.
func TestTraceIDPropagatesOverTCP(t *testing.T) {
	srv := deltaServer(t)
	ts, err := Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	serverTr := obs.NewTracer(8)
	ts.SetTracer(serverTr)

	c, err := Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	clientTr := obs.NewTracer(8)
	trace := clientTr.Start("stmt")
	ctx := obs.WithTrace(context.Background(), trace)

	sess, err := c.Open(ctx, "delta")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, "SELECT fnu FROM flight"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	trace.Finish()

	snap := clientTr.ByID(trace.ID())
	if snap == nil {
		t.Fatal("client trace missing")
	}
	var calls []string
	callIDs := map[uint64]bool{}
	for _, s := range snap.Spans {
		if s.Kind != obs.KindCall {
			continue
		}
		calls = append(calls, s.Name)
		callIDs[s.ID] = true
		if s.Attrs["site"] != ts.Addr() {
			t.Fatalf("call span site = %q, want %q", s.Attrs["site"], ts.Addr())
		}
		if s.ServerNS < 0 {
			t.Fatalf("call span server time = %d", s.ServerNS)
		}
	}
	if len(calls) < 2 { // open and exec at minimum (close runs untraced)
		t.Fatalf("call spans = %v", calls)
	}

	// The server never saw the client's tracer, so it synthesized a
	// remote trace under the propagated id.
	ssnap := serverTr.ByID(trace.ID())
	if ssnap == nil {
		t.Fatalf("server recorded no trace for id %s", trace.ID())
	}
	if len(ssnap.Spans) != len(calls) {
		t.Fatalf("server spans = %d, client call spans = %d", len(ssnap.Spans), len(calls))
	}
	for _, s := range ssnap.Spans {
		if s.Kind != obs.KindServer || !s.Remote {
			t.Fatalf("server span = %+v", s)
		}
		if !callIDs[s.Parent] {
			t.Fatalf("server span parent %d is not a client call span id %v", s.Parent, callIDs)
		}
	}
}

// TestUntracedCallsCarryNoTraceID guards the inverse: without a trace in
// the context, requests carry no trace id and the server records nothing.
func TestUntracedCallsCarryNoTraceID(t *testing.T) {
	srv := deltaServer(t)
	ts, err := Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	serverTr := obs.NewTracer(8)
	ts.SetTracer(serverTr)

	c, err := Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Profile(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := serverTr.Recent(10); len(got) != 0 {
		t.Fatalf("server recorded %d traces for untraced calls", len(got))
	}
}

// TestBreakerOnTransitionCallback exercises the satellite hook: every
// state change of the automaton is delivered to the policy callback, in
// order, outside the breaker's lock (the callback re-enters the breaker).
func TestBreakerOnTransitionCallback(t *testing.T) {
	type hop struct{ from, to BreakerState }
	var mu sync.Mutex
	var hops []hop

	fc := &flakyClient{}
	var b *BreakerClient
	b = WithBreaker(fc, BreakerPolicy{
		Threshold: 2,
		Cooldown:  10 * time.Millisecond,
		OnTransition: func(service string, from, to BreakerState) {
			if service != "flaky" {
				t.Errorf("service = %q", service)
			}
			b.State() // must not deadlock: callback runs outside the lock
			mu.Lock()
			hops = append(hops, hop{from, to})
			mu.Unlock()
		},
	})

	ctx := context.Background()
	fc.setFailing(true, false)
	for i := 0; i < 2; i++ {
		b.Profile(ctx)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %s", b.State())
	}
	time.Sleep(15 * time.Millisecond) // cooldown elapses
	fc.setFailing(false, false)
	if _, err := b.Profile(ctx); err != nil { // half-open trial succeeds
		t.Fatal(err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %s", b.State())
	}

	mu.Lock()
	defer mu.Unlock()
	want := []hop{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if len(hops) != len(want) {
		t.Fatalf("transitions = %v, want %v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, hops[i], want[i])
		}
	}
}
