package lam

import (
	"context"
	"errors"
	"sync"
	"syscall"
	"testing"
	"time"

	"msql/internal/ldbms"
	"msql/internal/relstore"
	"msql/internal/sqlengine"
)

// flakyClient is a Client whose calls fail on demand, with either a
// transient transport error or a definite server-answered one.
type flakyClient struct {
	mu       sync.Mutex
	failing  bool
	definite bool
	calls    int
}

func (f *flakyClient) setFailing(failing, definite bool) {
	f.mu.Lock()
	f.failing, f.definite = failing, definite
	f.mu.Unlock()
}

func (f *flakyClient) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *flakyClient) err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if !f.failing {
		return nil
	}
	if f.definite {
		return errors.New("definite server error")
	}
	return syscall.ECONNREFUSED
}

func (f *flakyClient) ServiceName() string { return "flaky" }
func (f *flakyClient) Profile(ctx context.Context) (ldbms.Profile, error) {
	return ldbms.Profile{Name: "flaky"}, f.err()
}
func (f *flakyClient) Open(ctx context.Context, db string) (Session, error) {
	if err := f.err(); err != nil {
		return nil, err
	}
	return &flakySession{c: f, db: db}, nil
}
func (f *flakyClient) Describe(ctx context.Context, db, name string) ([]relstore.Column, error) {
	return nil, f.err()
}
func (f *flakyClient) ListTables(ctx context.Context, db string) ([]string, error) {
	return nil, f.err()
}
func (f *flakyClient) ListViews(ctx context.Context, db string) ([]string, error) {
	return nil, f.err()
}
func (f *flakyClient) Close() error { return nil }

type flakySession struct {
	c  *flakyClient
	db string
}

func (s *flakySession) Exec(ctx context.Context, sql string) (*sqlengine.Result, error) {
	if err := s.c.err(); err != nil {
		return nil, err
	}
	return &sqlengine.Result{}, nil
}
func (s *flakySession) Prepare(ctx context.Context) error  { return s.c.err() }
func (s *flakySession) Commit(ctx context.Context) error   { return s.c.err() }
func (s *flakySession) Rollback(ctx context.Context) error { return s.c.err() }
func (s *flakySession) State(ctx context.Context) (ldbms.SessionState, error) {
	return ldbms.StateActive, nil
}
func (s *flakySession) Database() string { return s.db }
func (s *flakySession) Close() error     { return nil }

func TestBreakerTripsAfterConsecutiveTransientFailures(t *testing.T) {
	fc := &flakyClient{}
	b := WithBreaker(fc, BreakerPolicy{Threshold: 3, Cooldown: time.Hour})
	fc.setFailing(true, false)

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := b.Profile(ctx); err == nil {
			t.Fatal("expected failure")
		}
	}
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %s after %d transient failures, want open", st, 3)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d", b.Trips())
	}
	// Open breaker fast-fails without touching the network.
	before := fc.callCount()
	_, err := b.Open(ctx, "db")
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if fc.callCount() != before {
		t.Fatal("open breaker still reached the inner client")
	}
}

func TestDefiniteErrorsNeverTrip(t *testing.T) {
	fc := &flakyClient{}
	b := WithBreaker(fc, BreakerPolicy{Threshold: 2, Cooldown: time.Hour})
	fc.setFailing(true, true) // server answers, albeit with an error

	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := b.Profile(ctx); err == nil {
			t.Fatal("expected failure")
		}
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state = %s, want closed — a site that answers is alive", st)
	}
}

func TestHalfOpenTrialClosesAndReopens(t *testing.T) {
	fc := &flakyClient{}
	b := WithBreaker(fc, BreakerPolicy{Threshold: 1, Cooldown: 20 * time.Millisecond})
	ctx := context.Background()

	fc.setFailing(true, false)
	_, _ = b.Profile(ctx) // trips (threshold 1)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %s, want open", b.State())
	}
	time.Sleep(30 * time.Millisecond)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %s after cooldown, want half-open", b.State())
	}

	// Trial failure re-opens immediately.
	if _, err := b.Profile(ctx); err == nil {
		t.Fatal("trial should fail")
	}
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state = %s trips = %d, want re-opened", b.State(), b.Trips())
	}

	// Next trial succeeds and closes the breaker.
	time.Sleep(30 * time.Millisecond)
	fc.setFailing(false, false)
	if _, err := b.Profile(ctx); err != nil {
		t.Fatalf("trial call failed: %v", err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %s, want closed after successful trial", b.State())
	}
}

func TestHealthProbeClosesBreakerEarly(t *testing.T) {
	fc := &flakyClient{}
	b := WithBreaker(fc, BreakerPolicy{
		Threshold: 1, Cooldown: time.Hour, // cooldown alone would keep it open
		ProbeInterval: 5 * time.Millisecond, ProbeTimeout: time.Second,
	})
	defer b.Close()
	ctx := context.Background()

	fc.setFailing(true, false)
	_, _ = b.Profile(ctx)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %s, want open", b.State())
	}
	fc.setFailing(false, false) // site recovers; only the probe can see it
	deadline := time.Now().Add(2 * time.Second)
	for b.State() != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("probe did not close the breaker (state %s)", b.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSessionOpsAreNeverGatedButFeedTheBreaker(t *testing.T) {
	fc := &flakyClient{}
	b := WithBreaker(fc, BreakerPolicy{Threshold: 2, Cooldown: time.Hour})
	ctx := context.Background()

	sess, err := b.Open(ctx, "db")
	if err != nil {
		t.Fatal(err)
	}
	// Site dies mid-transaction: session ops must keep reaching the
	// network (a 2PC participant cannot be abandoned by a breaker) even
	// as their failures trip it.
	fc.setFailing(true, false)
	for i := 0; i < 2; i++ {
		if _, err := sess.Exec(ctx, "SELECT 1"); errors.Is(err, ErrBreakerOpen) {
			t.Fatal("session op was gated by the breaker")
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %s, want open from session-op failures", b.State())
	}
	if err := sess.Commit(ctx); errors.Is(err, ErrBreakerOpen) {
		t.Fatal("commit was gated by an open breaker")
	}
	// New sessions, by contrast, fast-fail.
	if _, err := b.Open(ctx, "db"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open err = %v, want ErrBreakerOpen", err)
	}
}
