package lam

import (
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync"

	"msql/internal/ldbms"
	"msql/internal/wire"
)

// TCPServer serves a local DBMS over the wire protocol. Each accepted
// connection runs its own request loop with its own session table, so one
// remote client session maps to one connection and parallel tasks do not
// serialize on a shared socket.
type TCPServer struct {
	srv *ldbms.Server
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts serving srv on a fresh listener at addr (use "127.0.0.1:0"
// for an ephemeral port) and returns immediately.
func Serve(addr string, srv *ldbms.Server) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCPServer{srv: srv, ln: ln, conns: make(map[net.Conn]struct{})}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listen address.
func (t *TCPServer) Addr() string { return t.ln.Addr().String() }

// Close stops the listener and all connections.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	t.closed = true
	err := t.ln.Close()
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}

func (t *TCPServer) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.handle(conn)
	}
}

func (t *TCPServer) handle(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		conn.Close()
	}()

	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	sessions := make(map[int64]*ldbms.Session)
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()
	var nextID int64

	for {
		var req wire.Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				return
			}
			return
		}
		resp := t.dispatch(&req, sessions, &nextID)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (t *TCPServer) dispatch(req *wire.Request, sessions map[int64]*ldbms.Session, nextID *int64) *wire.Response {
	resp := &wire.Response{}
	fail := func(err error) *wire.Response {
		resp.ErrCode, resp.ErrMsg = wire.EncodeError(err)
		return resp
	}
	session := func() (*ldbms.Session, bool) {
		s, ok := sessions[req.SessionID]
		return s, ok
	}

	switch req.Kind {
	case wire.ReqHello:
		resp.ServiceNm = t.srv.Name()
	case wire.ReqProfile:
		resp.Profile = wire.FromProfile(t.srv.Profile())
		resp.ServiceNm = t.srv.Name()
	case wire.ReqOpen:
		s, err := t.srv.OpenSession(req.Database)
		if err != nil {
			return fail(err)
		}
		*nextID++
		sessions[*nextID] = s
		resp.SessionID = *nextID
	case wire.ReqExec:
		s, ok := session()
		if !ok {
			return fail(errors.New("lam: unknown session"))
		}
		res, err := s.Exec(req.SQL)
		if err != nil {
			return fail(err)
		}
		wres := &wire.Result{RowsAffected: res.RowsAffected, Rows: res.Rows}
		for _, c := range res.Columns {
			wres.Columns = append(wres.Columns, wire.Column{Name: c.Name, Type: uint8(c.Type)})
		}
		resp.Result = wres
	case wire.ReqPrepare:
		s, ok := session()
		if !ok {
			return fail(errors.New("lam: unknown session"))
		}
		if err := s.Prepare(); err != nil {
			return fail(err)
		}
	case wire.ReqCommit:
		s, ok := session()
		if !ok {
			return fail(errors.New("lam: unknown session"))
		}
		if err := s.Commit(); err != nil {
			return fail(err)
		}
	case wire.ReqRollback:
		s, ok := session()
		if !ok {
			return fail(errors.New("lam: unknown session"))
		}
		if err := s.Rollback(); err != nil {
			return fail(err)
		}
	case wire.ReqState:
		s, ok := session()
		if !ok {
			return fail(errors.New("lam: unknown session"))
		}
		resp.State = uint8(s.State())
	case wire.ReqCloseSession:
		if s, ok := session(); ok {
			s.Close()
			delete(sessions, req.SessionID)
		}
	case wire.ReqDescribe:
		s, err := t.srv.OpenSession(req.Database)
		if err != nil {
			return fail(err)
		}
		defer s.Close()
		cols, err := s.Describe(req.Name)
		if err != nil {
			return fail(err)
		}
		resp.Columns = wire.FromRelstoreColumns(cols)
	case wire.ReqListTables:
		s, err := t.srv.OpenSession(req.Database)
		if err != nil {
			return fail(err)
		}
		defer s.Close()
		names, err := s.ListTables()
		if err != nil {
			return fail(err)
		}
		resp.Names = names
	case wire.ReqListViews:
		s, err := t.srv.OpenSession(req.Database)
		if err != nil {
			return fail(err)
		}
		defer s.Close()
		names, err := s.ListViews()
		if err != nil {
			return fail(err)
		}
		resp.Names = names
	default:
		return fail(errors.New("lam: unknown request kind"))
	}
	return resp
}
