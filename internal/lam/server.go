package lam

import (
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"time"

	"msql/internal/ldbms"
	"msql/internal/obs"
	"msql/internal/wire"
)

// TCPServer serves a local DBMS over the wire protocol. Each accepted
// connection runs its own request loop with its own session table, so one
// remote client session maps to one connection and parallel tasks do not
// serialize on a shared socket.
//
// Session ids are allocated server-wide: when a connection dies while a
// session is prepared-to-commit (the in-doubt window of §3.2.2), the
// session is parked rather than rolled back, and a recovering coordinator
// re-binds it by id with wire.ReqAttach to drive it to commit or
// rollback. Sessions that reached an outcome after having been prepared
// leave a tombstone so a coordinator whose commit acknowledgment was lost
// still learns the definite result.
type TCPServer struct {
	srv *ldbms.Server
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	sessMu   sync.Mutex
	nextID   int64
	detached map[int64]*ldbms.Session     // prepared sessions orphaned by connection loss
	outcomes map[int64]ldbms.SessionState // terminal states of once-prepared sessions

	errMu    sync.Mutex
	connErrs []error // non-benign connection errors (see ConnErrors)

	obsMu  sync.Mutex
	tracer *obs.Tracer // nil = obs.DefaultTracer
}

// SetTracer directs this server's request spans to tr instead of the
// process-wide obs.DefaultTracer (used by tests and embedders running
// several servers in one process).
func (t *TCPServer) SetTracer(tr *obs.Tracer) {
	t.obsMu.Lock()
	t.tracer = tr
	t.obsMu.Unlock()
}

func (t *TCPServer) obsTracer() *obs.Tracer {
	t.obsMu.Lock()
	defer t.obsMu.Unlock()
	if t.tracer != nil {
		return t.tracer
	}
	return obs.DefaultTracer
}

// Serve starts serving srv on a fresh listener at addr (use "127.0.0.1:0"
// for an ephemeral port) and returns immediately.
func Serve(addr string, srv *ldbms.Server) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCPServer{
		srv:      srv,
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
		detached: make(map[int64]*ldbms.Session),
		outcomes: make(map[int64]ldbms.SessionState),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listen address.
func (t *TCPServer) Addr() string { return t.ln.Addr().String() }

// Close stops the listener and all connections. Parked in-doubt sessions
// are rolled back — a server shutdown aborts unresolved participants —
// and their outcome recorded.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	t.closed = true
	err := t.ln.Close()
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	t.sessMu.Lock()
	for id, s := range t.detached {
		s.Close()
		t.outcomes[id] = s.State()
		delete(t.detached, id)
	}
	t.sessMu.Unlock()
	return err
}

// InDoubt reports the ids of parked prepared sessions awaiting a
// coordinator decision (for tests and operational inspection).
func (t *TCPServer) InDoubt() []int64 {
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	ids := make([]int64, 0, len(t.detached))
	for id := range t.detached {
		ids = append(ids, id)
	}
	return ids
}

func (t *TCPServer) allocID() int64 {
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	t.nextID++
	return t.nextID
}

// park saves a prepared session orphaned by its connection.
func (t *TCPServer) park(id int64, s *ldbms.Session) {
	t.sessMu.Lock()
	t.detached[id] = s
	t.sessMu.Unlock()
}

// attach re-binds a parked session; when the session already reached an
// outcome it returns the recorded terminal state instead.
func (t *TCPServer) attach(id int64) (*ldbms.Session, ldbms.SessionState, bool) {
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	if s, ok := t.detached[id]; ok {
		delete(t.detached, id)
		return s, s.State(), true
	}
	if st, ok := t.outcomes[id]; ok {
		return nil, st, true
	}
	return nil, 0, false
}

// recordOutcome remembers the terminal state of a once-prepared session.
func (t *TCPServer) recordOutcome(id int64, st ldbms.SessionState) {
	t.sessMu.Lock()
	t.outcomes[id] = st
	t.sessMu.Unlock()
}

func (t *TCPServer) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.handle(conn)
	}
}

// connState is the per-connection session table.
type connState struct {
	sessions map[int64]*ldbms.Session
	prepared map[int64]bool // sessions that entered the prepared state
}

func (t *TCPServer) handle(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		conn.Close()
	}()

	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	cs := &connState{sessions: make(map[int64]*ldbms.Session), prepared: make(map[int64]bool)}
	defer func() {
		// The connection is gone. Prepared sessions are in-doubt: park them
		// for coordinator recovery instead of rolling back. Everything else
		// dies with the connection, leaving an outcome tombstone when the
		// session had been prepared (its fate matters to a coordinator).
		for id, s := range cs.sessions {
			if s.State() == ldbms.StatePrepared {
				t.park(id, s)
				continue
			}
			s.Close()
			if cs.prepared[id] {
				t.recordOutcome(id, s.State())
			}
		}
	}()

	for {
		var req wire.Request
		if err := dec.Decode(&req); err != nil {
			// A client hanging up between requests (EOF, reset, or our own
			// shutdown closing the socket under the read) is the normal end
			// of a connection's life, not an error. Only genuinely abnormal
			// failures — a frame torn mid-message, undecodable bytes — are
			// recorded.
			t.noteConnErr(err)
			return
		}
		start := time.Now()
		resp := t.dispatch(&req, cs)
		elapsed := time.Since(start)
		resp.ServerNS = elapsed.Nanoseconds()
		op := req.Kind.String()
		mServerRequests.With(op).Inc()
		mServerLatency.With(op).Observe(elapsed.Seconds())
		if req.TraceID != "" {
			// Correlate this server-side span with the coordinator's call
			// span: same trace id, parented under the client span id that
			// rode in on the request.
			t.obsTracer().RecordServerSpan(req.TraceID, "serve:"+op, obs.KindServer,
				obs.SpanID(req.ParentSpan), start, elapsed, resp.ErrMsg)
		}
		if err := enc.Encode(resp); err != nil {
			t.noteConnErr(err)
			return
		}
	}
}

// noteConnErr records a connection-loop failure unless it is a benign
// close or the race of a clean server shutdown against an in-flight
// read.
func (t *TCPServer) noteConnErr(err error) {
	if wire.BenignClose(err) {
		return
	}
	t.mu.Lock()
	closing := t.closed
	t.mu.Unlock()
	if closing {
		// Shutdown severs client connections mid-frame by design; the
		// resulting decode errors are expected.
		return
	}
	t.errMu.Lock()
	t.connErrs = append(t.connErrs, err)
	t.errMu.Unlock()
}

// ConnErrors returns the non-benign connection-loop errors seen so far
// (for tests and operational monitoring). Ordinary disconnects never
// appear here.
func (t *TCPServer) ConnErrors() []error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return append([]error(nil), t.connErrs...)
}

func (t *TCPServer) dispatch(req *wire.Request, cs *connState) *wire.Response {
	resp := &wire.Response{}
	fail := func(err error) *wire.Response {
		resp.ErrCode, resp.ErrMsg = wire.EncodeError(err)
		return resp
	}
	session := func() (*ldbms.Session, bool) {
		s, ok := cs.sessions[req.SessionID]
		return s, ok
	}

	switch req.Kind {
	case wire.ReqHello:
		resp.ServiceNm = t.srv.Name()
	case wire.ReqProfile:
		resp.Profile = wire.FromProfile(t.srv.Profile())
		resp.ServiceNm = t.srv.Name()
	case wire.ReqOpen:
		s, err := t.srv.OpenSession(req.Database)
		if err != nil {
			return fail(err)
		}
		id := t.allocID()
		cs.sessions[id] = s
		resp.SessionID = id
	case wire.ReqExec:
		s, ok := session()
		if !ok {
			return fail(errors.New("lam: unknown session"))
		}
		res, err := s.Exec(req.SQL)
		if err != nil {
			return fail(err)
		}
		wres := &wire.Result{RowsAffected: res.RowsAffected, Rows: res.Rows}
		for _, c := range res.Columns {
			wres.Columns = append(wres.Columns, wire.Column{Name: c.Name, Type: uint8(c.Type)})
		}
		resp.Result = wres
	case wire.ReqPrepare:
		s, ok := session()
		if !ok {
			return fail(errors.New("lam: unknown session"))
		}
		if err := s.Prepare(); err != nil {
			return fail(err)
		}
		cs.prepared[req.SessionID] = true
	case wire.ReqCommit:
		s, ok := session()
		if !ok {
			return fail(errors.New("lam: unknown session"))
		}
		if err := s.Commit(); err != nil {
			return fail(err)
		}
	case wire.ReqRollback:
		s, ok := session()
		if !ok {
			return fail(errors.New("lam: unknown session"))
		}
		if err := s.Rollback(); err != nil {
			return fail(err)
		}
	case wire.ReqState:
		s, ok := session()
		if !ok {
			return fail(errors.New("lam: unknown session"))
		}
		resp.State = uint8(s.State())
	case wire.ReqAttach:
		s, st, ok := t.attach(req.SessionID)
		if !ok {
			return fail(errors.New("lam: unknown session"))
		}
		if s != nil {
			cs.sessions[req.SessionID] = s
			cs.prepared[req.SessionID] = true
		}
		resp.State = uint8(st)
	case wire.ReqCloseSession:
		if s, ok := session(); ok {
			s.Close()
			if cs.prepared[req.SessionID] {
				t.recordOutcome(req.SessionID, s.State())
			}
			delete(cs.sessions, req.SessionID)
			delete(cs.prepared, req.SessionID)
		}
	case wire.ReqDescribe:
		s, err := t.srv.OpenSession(req.Database)
		if err != nil {
			return fail(err)
		}
		defer s.Close()
		cols, err := s.Describe(req.Name)
		if err != nil {
			return fail(err)
		}
		resp.Columns = wire.FromRelstoreColumns(cols)
	case wire.ReqListTables:
		s, err := t.srv.OpenSession(req.Database)
		if err != nil {
			return fail(err)
		}
		defer s.Close()
		names, err := s.ListTables()
		if err != nil {
			return fail(err)
		}
		resp.Names = names
	case wire.ReqListViews:
		s, err := t.srv.OpenSession(req.Database)
		if err != nil {
			return fail(err)
		}
		defer s.Close()
		names, err := s.ListViews()
		if err != nil {
			return fail(err)
		}
		resp.Names = names
	default:
		return fail(errors.New("lam: unknown request kind"))
	}
	return resp
}
