package lam

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"msql/internal/ldbms"
	"msql/internal/mtlog"
	"msql/internal/obs"
	"msql/internal/wire"
)

// TCPServer serves a local DBMS over the wire protocol. Each accepted
// connection runs its own request loop with its own session table, so one
// remote client session maps to one connection and parallel tasks do not
// serialize on a shared socket.
//
// Session ids are allocated server-wide: when a connection dies while a
// session is prepared-to-commit (the in-doubt window of §3.2.2), the
// session is parked rather than rolled back, and a recovering coordinator
// re-binds it by id with wire.ReqAttach to drive it to commit or
// rollback. Sessions that reached an outcome after having been prepared
// leave a tombstone so a coordinator whose commit acknowledgment was lost
// still learns the definite result.
//
// With a participant journal (ServeOptions.Journal) the prepared state
// itself is durable: the vote does not go on the wire before the
// session's redo statements are on stable storage, a restarted server
// re-materializes its in-doubt sessions from the journal, and outcome
// tombstones survive the process. Tombstones are released by coordinator
// acknowledgment (wire.ReqForget) or by TTL, whichever comes first, so
// neither the map nor the journal grows without bound.
type TCPServer struct {
	srv     *ldbms.Server
	ln      net.Listener
	journal *mtlog.ParticipantJournal
	opts    ServeOptions

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	sessMu    sync.Mutex
	nextID    int64
	parked    map[int64]*parkedSession
	tombstone map[int64]tombstone
	acks      int // ReqForget/TTL evictions since the last compaction

	janitorStop chan struct{}
	janitorDone chan struct{}

	errMu    sync.Mutex
	connErrs []error // non-benign connection errors (see ConnErrors)

	obsMu  sync.Mutex
	tracer *obs.Tracer // nil = obs.DefaultTracer
}

// parkedSession is a prepared session orphaned by connection loss,
// awaiting a coordinator decision. Recovered sessions were
// re-materialized from the participant journal after a restart rather
// than parked live.
type parkedSession struct {
	sess *ldbms.Session
	// mtid is the coordinator multitransaction id the prepare carried
	// (zero for unjournaled coordinators), reported by ReqInDoubt so a
	// recovering coordinator can match the session against its journal.
	mtid      uint64
	recovered bool
}

// tombstone is the recorded terminal state of a once-prepared session,
// kept until the coordinator acknowledges it (wire.ReqForget) or the
// TTL expires.
type tombstone struct {
	state ldbms.SessionState
	at    time.Time
}

// ServeOptions configure participant durability.
type ServeOptions struct {
	// Journal, when non-nil, makes prepared-session state durable: votes
	// are journaled (and fsynced) before they return on the wire, and a
	// server restarted on the same journal re-materializes its in-doubt
	// sessions. The server owns the journal from ServeWith on and closes
	// it in Close.
	Journal *mtlog.ParticipantJournal
	// TombstoneTTL bounds how long an unacknowledged outcome tombstone is
	// retained. Zero keeps tombstones until a coordinator ReqForget (or
	// server close). Under presumed abort an evicted tombstone is safe:
	// an asker finding no session is answered ErrNoSession and concludes
	// abort unless its own journal says commit.
	TombstoneTTL time.Duration
	// CompactEvery triggers journal compaction after that many
	// acknowledgments (ReqForget or TTL eviction). Zero means a default
	// of 16; compaction only runs when a journal is configured.
	CompactEvery int
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.CompactEvery <= 0 {
		o.CompactEvery = 16
	}
	return o
}

// SetTracer directs this server's request spans to tr instead of the
// process-wide obs.DefaultTracer (used by tests and embedders running
// several servers in one process).
func (t *TCPServer) SetTracer(tr *obs.Tracer) {
	t.obsMu.Lock()
	t.tracer = tr
	t.obsMu.Unlock()
}

func (t *TCPServer) obsTracer() *obs.Tracer {
	t.obsMu.Lock()
	defer t.obsMu.Unlock()
	if t.tracer != nil {
		return t.tracer
	}
	return obs.DefaultTracer
}

// Serve starts serving srv on a fresh listener at addr (use "127.0.0.1:0"
// for an ephemeral port) and returns immediately. The server is not
// durable; use ServeWith to journal prepared-session state.
func Serve(addr string, srv *ldbms.Server) (*TCPServer, error) {
	return ServeWith(addr, srv, ServeOptions{})
}

// ServeWith starts serving srv at addr with participant durability
// options. When opts.Journal is set, the journal is replayed before the
// listener accepts its first connection: in-doubt sessions are
// re-materialized in a recovering-prepared state (re-executing their
// journaled redo statements and re-preparing), committed-but-unacked
// sessions have their effects re-applied and leave tombstones, and
// acknowledged sessions are dropped. A replay failure fails the start —
// a participant that cannot re-establish its votes must not open for
// business.
func ServeWith(addr string, srv *ldbms.Server, opts ServeOptions) (*TCPServer, error) {
	t := &TCPServer{
		srv:       srv,
		journal:   opts.Journal,
		opts:      opts.withDefaults(),
		conns:     make(map[net.Conn]struct{}),
		parked:    make(map[int64]*parkedSession),
		tombstone: make(map[int64]tombstone),
	}
	if t.journal != nil {
		if err := t.replay(); err != nil {
			return nil, fmt.Errorf("lam: journal replay: %w", err)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t.ln = ln
	if t.opts.TombstoneTTL > 0 {
		t.janitorStop = make(chan struct{})
		t.janitorDone = make(chan struct{})
		go t.janitor()
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// replay folds the participant journal back into server state; see
// ServeWith. It runs before the listener exists, so no locking is
// needed beyond what the ldbms sessions do themselves.
func (t *TCPServer) replay() error {
	sessions, err := t.journal.Sessions()
	if err != nil {
		return err
	}
	now := time.Now()
	for _, ps := range sessions {
		if ps.SID > t.nextID {
			// Never reissue a journaled session id: tombstones and parked
			// sessions are keyed by it.
			t.nextID = ps.SID
		}
		if ps.Acked {
			continue
		}
		switch ps.State {
		case 0: // still prepared: the in-doubt window spans the restart
			s, err := t.replaySession(ps)
			if err != nil {
				return err
			}
			if err := s.Prepare(); err != nil {
				s.Close()
				return fmt.Errorf("session %d: re-prepare: %w", ps.SID, err)
			}
			t.parked[ps.SID] = &parkedSession{sess: s, mtid: ps.MTID, recovered: true}
			// A later prepared round supersedes an earlier committed round's
			// tombstone for the same id (multi-sync-point programs).
			delete(t.tombstone, ps.SID)
			mReplayed.With(t.srv.Name(), "prepared").Inc()
		case mtlog.StatusCommitted:
			// The decision arrived and committed, but the coordinator never
			// acknowledged: the effects must exist after the restart, and
			// the tombstone must keep answering a retrying coordinator.
			s, err := t.replaySession(ps)
			if err != nil {
				return err
			}
			if err := s.Commit(); err != nil {
				s.Close()
				return fmt.Errorf("session %d: re-commit: %w", ps.SID, err)
			}
			s.Close()
			t.tombstone[ps.SID] = tombstone{state: ldbms.StateCommitted, at: now}
			mReplayed.With(t.srv.Name(), "committed").Inc()
		case mtlog.StatusAborted:
			// Presumed abort: no effects to re-apply, only the answer.
			t.tombstone[ps.SID] = tombstone{state: ldbms.StateAborted, at: now}
			mReplayed.With(t.srv.Name(), "aborted").Inc()
		}
	}
	t.publishGauges()
	return nil
}

// replaySession opens a session on the journaled database and re-executes
// the redo statements in their original order.
func (t *TCPServer) replaySession(ps *mtlog.PSession) (*ldbms.Session, error) {
	s, err := t.srv.OpenSession(ps.DB)
	if err != nil {
		return nil, fmt.Errorf("session %d: open %s: %w", ps.SID, ps.DB, err)
	}
	for _, q := range ps.Redo {
		if _, err := s.Exec(q); err != nil {
			s.Close()
			return nil, fmt.Errorf("session %d: redo %q: %w", ps.SID, q, err)
		}
	}
	return s, nil
}

// janitor evicts outcome tombstones older than the TTL, standing in for
// coordinator acknowledgments that never arrived.
func (t *TCPServer) janitor() {
	defer close(t.janitorDone)
	period := t.opts.TombstoneTTL / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-t.janitorStop:
			return
		case <-tick.C:
			cutoff := time.Now().Add(-t.opts.TombstoneTTL)
			t.sessMu.Lock()
			var expired []int64
			for id, tb := range t.tombstone {
				if tb.at.Before(cutoff) {
					expired = append(expired, id)
					delete(t.tombstone, id)
				}
			}
			t.publishGaugesLocked()
			t.sessMu.Unlock()
			for _, id := range expired {
				t.ack(id)
			}
		}
	}
}

// Addr returns the listen address.
func (t *TCPServer) Addr() string { return t.ln.Addr().String() }

// Close stops the listener and all connections. Without a journal,
// parked in-doubt sessions are rolled back — the shutdown aborts
// unresolved participants — and their outcome recorded. With a journal
// they are left journaled: the next ServeWith on the same journal
// re-materializes them, which is the difference between a crash and an
// amnesiac restart.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	t.closed = true
	err := t.ln.Close()
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	if t.janitorStop != nil {
		close(t.janitorStop)
		<-t.janitorDone
	}
	t.sessMu.Lock()
	if t.journal == nil {
		for id, p := range t.parked {
			p.sess.Close()
			t.tombstone[id] = tombstone{state: p.sess.State(), at: time.Now()}
			delete(t.parked, id)
		}
	}
	t.publishGaugesLocked()
	t.sessMu.Unlock()
	if t.journal != nil {
		if jerr := t.journal.Close(); err == nil {
			err = jerr
		}
	}
	return err
}

// InDoubt reports the ids of parked prepared sessions awaiting a
// coordinator decision (for tests and operational inspection).
func (t *TCPServer) InDoubt() []int64 {
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	ids := make([]int64, 0, len(t.parked))
	for id := range t.parked {
		ids = append(ids, id)
	}
	return ids
}

// Tombstones reports how many unacknowledged outcome tombstones the
// server currently retains (for tests and operational inspection).
func (t *TCPServer) Tombstones() int {
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	return len(t.tombstone)
}

func (t *TCPServer) allocID() int64 {
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	t.nextID++
	return t.nextID
}

// park saves a prepared session orphaned by its connection.
func (t *TCPServer) park(id int64, s *ldbms.Session, mtid uint64) {
	t.sessMu.Lock()
	t.parked[id] = &parkedSession{sess: s, mtid: mtid}
	t.publishGaugesLocked()
	t.sessMu.Unlock()
}

// attach re-binds a parked session; when the session already reached an
// outcome it returns the recorded terminal state instead.
func (t *TCPServer) attach(id int64) (*ldbms.Session, ldbms.SessionState, uint64, bool) {
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	if p, ok := t.parked[id]; ok {
		delete(t.parked, id)
		t.publishGaugesLocked()
		return p.sess, p.sess.State(), p.mtid, true
	}
	if tb, ok := t.tombstone[id]; ok {
		return nil, tb.state, 0, true
	}
	return nil, 0, 0, false
}

// inDoubtSessions snapshots the parked prepared sessions for ReqInDoubt.
func (t *TCPServer) inDoubtSessions() []wire.InDoubtSession {
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	out := make([]wire.InDoubtSession, 0, len(t.parked))
	for id, p := range t.parked {
		out = append(out, wire.InDoubtSession{SessionID: id, MTID: p.mtid})
	}
	return out
}

// recordOutcome remembers the terminal state of a once-prepared session,
// journaling it when the server is durable (fsynced for commits: the
// tombstone must answer a retrying coordinator even across a crash).
func (t *TCPServer) recordOutcome(id int64, st ldbms.SessionState) {
	if t.journal != nil {
		status := mtlog.StatusAborted
		if st == ldbms.StateCommitted {
			status = mtlog.StatusCommitted
		}
		if err := t.journal.Append(&mtlog.Record{Type: mtlog.POutcome, SessionID: id, Status: status}); err != nil {
			// The local outcome stands regardless; losing the durable
			// tombstone only matters if we crash before the coordinator
			// acknowledges, and then presumed abort plus the coordinator's
			// own journal still terminate correctly. Record for operators.
			t.noteConnErr(fmt.Errorf("lam: journal outcome session %d: %w", id, err))
		}
	}
	t.sessMu.Lock()
	t.tombstone[id] = tombstone{state: st, at: time.Now()}
	t.publishGaugesLocked()
	t.sessMu.Unlock()
}

// forget handles a coordinator end-of-multitransaction acknowledgment:
// the tombstone (or nothing — forget is idempotent) is released and the
// journal eventually compacted.
func (t *TCPServer) forget(id int64) {
	t.sessMu.Lock()
	_, had := t.tombstone[id]
	delete(t.tombstone, id)
	t.publishGaugesLocked()
	t.sessMu.Unlock()
	if had {
		t.ack(id)
	}
}

// ack journals a PAck for the session and compacts the journal when
// enough acknowledgments have accumulated.
func (t *TCPServer) ack(id int64) {
	if t.journal == nil {
		return
	}
	if err := t.journal.Append(&mtlog.Record{Type: mtlog.PAck, SessionID: id}); err != nil {
		t.noteConnErr(fmt.Errorf("lam: journal ack session %d: %w", id, err))
		return
	}
	t.sessMu.Lock()
	t.acks++
	compact := t.acks >= t.opts.CompactEvery
	if compact {
		t.acks = 0
	}
	t.sessMu.Unlock()
	if compact {
		if _, err := t.journal.Compact(); err != nil {
			t.noteConnErr(fmt.Errorf("lam: journal compact: %w", err))
		}
	}
}

// publishGauges exports the live tombstone and parked-session counts.
func (t *TCPServer) publishGauges() {
	t.sessMu.Lock()
	t.publishGaugesLocked()
	t.sessMu.Unlock()
}

func (t *TCPServer) publishGaugesLocked() {
	svc := t.srv.Name()
	mTombstones.With(svc).Set(int64(len(t.tombstone)))
	mParked.With(svc).Set(int64(len(t.parked)))
}

func (t *TCPServer) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.handle(conn)
	}
}

// connState is the per-connection session table. prepared maps sessions
// that entered the prepared state to the multitransaction id their
// prepare carried.
type connState struct {
	sessions map[int64]*ldbms.Session
	prepared map[int64]uint64
}

func (t *TCPServer) handle(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		conn.Close()
	}()

	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	cs := &connState{sessions: make(map[int64]*ldbms.Session), prepared: make(map[int64]uint64)}
	defer func() {
		// The connection is gone. Prepared sessions are in-doubt: park them
		// for coordinator recovery instead of rolling back. Everything else
		// dies with the connection, leaving an outcome tombstone when the
		// session had been prepared (its fate matters to a coordinator).
		for id, s := range cs.sessions {
			if s.State() == ldbms.StatePrepared {
				t.park(id, s, cs.prepared[id])
				continue
			}
			s.Close()
			if _, ok := cs.prepared[id]; ok {
				t.recordOutcome(id, s.State())
			}
		}
	}()

	for {
		var req wire.Request
		if err := dec.Decode(&req); err != nil {
			// A client hanging up between requests (EOF, reset, or our own
			// shutdown closing the socket under the read) is the normal end
			// of a connection's life, not an error. Only genuinely abnormal
			// failures — a frame torn mid-message, undecodable bytes — are
			// recorded.
			t.noteConnErr(err)
			return
		}
		start := time.Now()
		resp := t.dispatch(&req, cs)
		elapsed := time.Since(start)
		resp.ServerNS = elapsed.Nanoseconds()
		op := req.Kind.String()
		mServerRequests.With(op).Inc()
		mServerLatency.With(op).Observe(elapsed.Seconds())
		if req.TraceID != "" {
			// Correlate this server-side span with the coordinator's call
			// span: same trace id, parented under the client span id that
			// rode in on the request.
			t.obsTracer().RecordServerSpan(req.TraceID, "serve:"+op, obs.KindServer,
				obs.SpanID(req.ParentSpan), start, elapsed, resp.ErrMsg)
		}
		if err := enc.Encode(resp); err != nil {
			t.noteConnErr(err)
			return
		}
	}
}

// noteConnErr records a connection-loop failure unless it is a benign
// close or the race of a clean server shutdown against an in-flight
// read.
func (t *TCPServer) noteConnErr(err error) {
	if wire.BenignClose(err) {
		return
	}
	t.mu.Lock()
	closing := t.closed
	t.mu.Unlock()
	if closing {
		// Shutdown severs client connections mid-frame by design; the
		// resulting decode errors are expected.
		return
	}
	t.errMu.Lock()
	t.connErrs = append(t.connErrs, err)
	t.errMu.Unlock()
}

// ConnErrors returns the non-benign connection-loop errors seen so far
// (for tests and operational monitoring). Ordinary disconnects never
// appear here.
func (t *TCPServer) ConnErrors() []error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return append([]error(nil), t.connErrs...)
}

func (t *TCPServer) dispatch(req *wire.Request, cs *connState) *wire.Response {
	resp := &wire.Response{}
	fail := func(err error) *wire.Response {
		resp.ErrCode, resp.ErrMsg = wire.EncodeError(err)
		return resp
	}
	session := func() (*ldbms.Session, bool) {
		s, ok := cs.sessions[req.SessionID]
		return s, ok
	}
	noSession := func() *wire.Response {
		return fail(fmt.Errorf("%w: %d", wire.ErrNoSession, req.SessionID))
	}

	switch req.Kind {
	case wire.ReqHello:
		resp.ServiceNm = t.srv.Name()
	case wire.ReqProfile:
		resp.Profile = wire.FromProfile(t.srv.Profile())
		resp.ServiceNm = t.srv.Name()
	case wire.ReqOpen:
		s, err := t.srv.OpenSession(req.Database)
		if err != nil {
			return fail(err)
		}
		id := t.allocID()
		cs.sessions[id] = s
		resp.SessionID = id
	case wire.ReqExec:
		s, ok := session()
		if !ok {
			return noSession()
		}
		res, err := s.Exec(req.SQL)
		if err != nil {
			return fail(err)
		}
		wres := &wire.Result{RowsAffected: res.RowsAffected, Rows: res.Rows, Plan: res.Plan}
		for _, c := range res.Columns {
			wres.Columns = append(wres.Columns, wire.Column{Name: c.Name, Type: uint8(c.Type)})
		}
		resp.Result = wres
	case wire.ReqPrepare:
		s, ok := session()
		if !ok {
			return noSession()
		}
		if err := s.Prepare(); err != nil {
			return fail(err)
		}
		if t.journal != nil {
			// The participant's half of the write-ahead rule: the redo
			// state (and the multitransaction correlation) reaches stable
			// storage before the PREPARED vote goes on the wire. If it
			// cannot, the vote must be NO.
			rec := &mtlog.Record{Type: mtlog.PPrepared, SessionID: req.SessionID,
				MTID: req.MTID, DB: s.Database(), Redo: s.Redo()}
			if err := t.journal.Append(rec); err != nil {
				_ = s.Rollback()
				return fail(fmt.Errorf("lam: journal prepare: %w", err))
			}
		}
		cs.prepared[req.SessionID] = req.MTID
	case wire.ReqCommit:
		s, ok := session()
		if !ok {
			return noSession()
		}
		if err := s.Commit(); err != nil {
			return fail(err)
		}
		if _, ok := cs.prepared[req.SessionID]; ok {
			// The once-prepared session reached its outcome on a live
			// connection: record the tombstone now (journaled and fsynced
			// for commits), so a crash between this reply and the
			// coordinator's acknowledgment cannot forget the answer. The
			// session itself stays open — a DOL program may run further
			// transactions on the same connection alias.
			t.recordOutcome(req.SessionID, ldbms.StateCommitted)
			delete(cs.prepared, req.SessionID)
		}
	case wire.ReqRollback:
		s, ok := session()
		if !ok {
			return noSession()
		}
		if err := s.Rollback(); err != nil {
			return fail(err)
		}
		if _, ok := cs.prepared[req.SessionID]; ok {
			t.recordOutcome(req.SessionID, ldbms.StateAborted)
			delete(cs.prepared, req.SessionID)
		}
	case wire.ReqState:
		s, ok := session()
		if !ok {
			return noSession()
		}
		resp.State = uint8(s.State())
	case wire.ReqAttach:
		s, st, mtid, ok := t.attach(req.SessionID)
		if !ok {
			return noSession()
		}
		if s != nil {
			cs.sessions[req.SessionID] = s
			cs.prepared[req.SessionID] = mtid
		}
		resp.State = uint8(st)
	case wire.ReqForget:
		t.forget(req.SessionID)
	case wire.ReqInDoubt:
		resp.InDoubt = t.inDoubtSessions()
	case wire.ReqCloseSession:
		if s, ok := session(); ok {
			s.Close()
			if _, wasPrepared := cs.prepared[req.SessionID]; wasPrepared {
				t.recordOutcome(req.SessionID, s.State())
			}
			delete(cs.sessions, req.SessionID)
			delete(cs.prepared, req.SessionID)
		}
	case wire.ReqDescribe:
		s, err := t.srv.OpenSession(req.Database)
		if err != nil {
			return fail(err)
		}
		defer s.Close()
		cols, err := s.Describe(req.Name)
		if err != nil {
			return fail(err)
		}
		resp.Columns = wire.FromRelstoreColumns(cols)
	case wire.ReqListTables:
		s, err := t.srv.OpenSession(req.Database)
		if err != nil {
			return fail(err)
		}
		defer s.Close()
		names, err := s.ListTables()
		if err != nil {
			return fail(err)
		}
		resp.Names = names
	case wire.ReqListViews:
		s, err := t.srv.OpenSession(req.Database)
		if err != nil {
			return fail(err)
		}
		defer s.Close()
		names, err := s.ListViews()
		if err != nil {
			return fail(err)
		}
		resp.Names = names
	default:
		return fail(errors.New("lam: unknown request kind"))
	}
	return resp
}
