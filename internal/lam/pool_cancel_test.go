package lam

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"msql/internal/ldbms"
	"msql/internal/netfault"
)

// proxiedServer starts a LAM TCP server behind a netfault proxy and
// returns the proxy (clients dial proxy.Addr()).
func proxiedServer(t *testing.T) *netfault.Proxy {
	t.Helper()
	srv := deltaServer(t)
	ts, err := Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	p, err := netfault.New(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestCancelUnblocksCallHungMidFrame drives a call into a blackholed
// link — bytes vanish, the reply never comes — and cancels its context.
// The caller must get control back promptly instead of sitting out the
// full CallTimeout pinned on the read.
func TestCancelUnblocksCallHungMidFrame(t *testing.T) {
	p := proxiedServer(t)
	r, err := DialWith(context.Background(), p.Addr(), DialOptions{CallTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sess, err := r.Open(context.Background(), "delta")
	if err != nil {
		t.Fatal(err)
	}

	p.SetBlackhole(true)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = sess.Exec(ctx, "SELECT * FROM flight")
	if err == nil {
		t.Fatal("exec on a blackholed link succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancellation took %v; the caller was pinned mid-frame", d)
	}
}

// TestWaiterNotPinnedBehindHungCall issues a second call on a connection
// whose current call is hung on a blackholed link. The second caller's
// short deadline must bound ITS wait for the connection — it gives up
// when its context dies, not when the hung call's generous CallTimeout
// finally fires.
func TestWaiterNotPinnedBehindHungCall(t *testing.T) {
	p := proxiedServer(t)
	r, err := DialWith(context.Background(), p.Addr(), DialOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sess, err := r.Open(context.Background(), "delta")
	if err != nil {
		t.Fatal(err)
	}

	p.SetBlackhole(true)
	hung := make(chan error, 1)
	hctx, hcancel := context.WithCancel(context.Background())
	defer hcancel()
	go func() {
		_, err := sess.Exec(hctx, "SELECT * FROM flight")
		hung <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the first call occupy the wire

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = sess.Exec(ctx, "SELECT * FROM flight")
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("waiter blocked %v behind the hung call", elapsed)
	}

	hcancel()
	if err := <-hung; err == nil {
		t.Fatal("hung call succeeded on a blackholed link")
	}
}

// TestSessionConnPooling checks that cleanly closed session connections
// are reused by later opens, the pool never grows past PoolSize, and a
// pooled connection gone stale falls through to a fresh dial instead of
// failing the open.
func TestSessionConnPooling(t *testing.T) {
	p := proxiedServer(t)
	r, err := DialWith(context.Background(), p.Addr(), DialOptions{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()

	idleLen := func() int {
		r.poolMu.Lock()
		defer r.poolMu.Unlock()
		return len(r.idle)
	}

	s1, err := r.Open(ctx, "delta")
	if err != nil {
		t.Fatal(err)
	}
	firstConn := s1.(*remoteSession).conn
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if idleLen() != 1 {
		t.Fatalf("idle = %d after clean close, want 1", idleLen())
	}

	s2, err := r.Open(ctx, "delta")
	if err != nil {
		t.Fatal(err)
	}
	if s2.(*remoteSession).conn != firstConn {
		t.Fatal("open did not reuse the pooled connection")
	}
	if idleLen() != 0 {
		t.Fatalf("idle = %d while pooled conn in use, want 0", idleLen())
	}
	// The reused session must actually work.
	if _, err := s2.Exec(ctx, "SELECT * FROM flight"); err != nil {
		t.Fatal(err)
	}

	// Three concurrent sessions, all closed: pool keeps only PoolSize.
	s3, err := r.Open(ctx, "delta")
	if err != nil {
		t.Fatal(err)
	}
	s4, err := r.Open(ctx, "delta")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Session{s2, s3, s4} {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if idleLen() != 2 {
		t.Fatalf("idle = %d, want capped at PoolSize 2", idleLen())
	}

	// Kill the pooled connections under the pool's feet: the next open
	// must discard them and dial fresh.
	p.Sever()
	time.Sleep(20 * time.Millisecond)
	s5, err := r.Open(ctx, "delta")
	if err != nil {
		t.Fatalf("open after severed pooled conns: %v", err)
	}
	if _, err := s5.Exec(ctx, "SELECT * FROM flight"); err != nil {
		t.Fatal(err)
	}
	s5.Close()
}

// TestPoolNeverReusesFailedConn checks a connection that carried a
// transport failure — whose server-side state is unknowable — is
// discarded on session close, not returned to the pool.
func TestPoolNeverReusesFailedConn(t *testing.T) {
	p := proxiedServer(t)
	r, err := DialWith(context.Background(), p.Addr(),
		DialOptions{PoolSize: 2, CallTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()

	sess, err := r.Open(ctx, "delta")
	if err != nil {
		t.Fatal(err)
	}
	p.SetBlackhole(true)
	if _, err := sess.Exec(ctx, "SELECT * FROM flight"); err == nil {
		t.Fatal("exec on blackholed link succeeded")
	}
	p.SetBlackhole(false)
	sess.Close()
	r.poolMu.Lock()
	n := len(r.idle)
	r.poolMu.Unlock()
	if n != 0 {
		t.Fatalf("poisoned connection was pooled (idle = %d)", n)
	}
}

// gatedClient blocks Profile until released, so a half-open trial can be
// held in flight while concurrent callers probe the breaker.
type gatedClient struct {
	flakyClient
	entered chan struct{} // one send per Profile call entering
	release chan struct{} // Profile returns when closed
}

func (g *gatedClient) Profile(ctx context.Context) (ldbms.Profile, error) {
	g.entered <- struct{}{}
	<-g.release
	return ldbms.Profile{Name: "flaky"}, g.err()
}

// TestHalfOpenAdmitsSingleConcurrentProbe hammers a cooled-down open
// breaker with concurrent gated calls: exactly one may pass as the
// half-open trial; every other caller must fail fast with
// ErrBreakerOpen while the trial is still in flight, and a successful
// trial closes the breaker for everyone.
func TestHalfOpenAdmitsSingleConcurrentProbe(t *testing.T) {
	gc := &gatedClient{
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	b := WithBreaker(gc, BreakerPolicy{Threshold: 1, Cooldown: 20 * time.Millisecond})

	gc.setFailing(true, false)
	if _, err := b.Describe(context.Background(), "db", "t"); err == nil {
		t.Fatal("expected transient failure")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %s, want open", b.State())
	}
	gc.setFailing(false, false)
	time.Sleep(30 * time.Millisecond) // cooldown elapses → next call is the trial

	const callers = 16
	errCh := make(chan error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := b.Profile(context.Background())
			errCh <- err
		}()
	}

	// Exactly one trial enters the inner client...
	select {
	case <-gc.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("no trial reached the inner client")
	}
	// ...and while it is in flight, every other caller fails fast.
	fastFailed := 0
	for fastFailed < callers-1 {
		select {
		case err := <-errCh:
			if !errors.Is(err, ErrBreakerOpen) {
				t.Fatalf("concurrent caller err = %v, want ErrBreakerOpen", err)
			}
			fastFailed++
		case <-gc.entered:
			t.Fatal("second probe reached the inner client during the trial")
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d/%d callers failed fast; rest are stuck behind the trial",
				fastFailed, callers-1)
		}
	}

	close(gc.release) // trial succeeds
	if err := <-errCh; err != nil {
		t.Fatalf("trial err = %v, want success", err)
	}
	wg.Wait()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %s after successful trial, want closed", b.State())
	}
}
