package lam

import (
	"testing"
	"time"
)

// TestBackoffJitterBounds pins the equal-jitter envelope: every sample
// must land in [d/2, 3d/2) around the deterministic exponential delay.
// Fleet-wide recovery sweeps (50+ sites restarting together) rely on
// this spread to avoid retrying in lockstep.
func TestBackoffJitterBounds(t *testing.T) {
	p := RetryPolicy{Attempts: 5, BaseDelay: 40 * time.Millisecond, MaxDelay: 400 * time.Millisecond}
	for attempt := 1; attempt <= 5; attempt++ {
		base := 40 * time.Millisecond
		for i := 1; i < attempt; i++ {
			base *= 2
			if base >= p.MaxDelay {
				base = p.MaxDelay
				break
			}
		}
		lo, hi := base/2, base+base/2
		for i := 0; i < 200; i++ {
			d := p.Backoff(attempt)
			if d < lo || d >= hi {
				t.Fatalf("attempt %d: Backoff = %v, want in [%v, %v)", attempt, d, lo, hi)
			}
		}
	}
}

// TestBackoffJitterSpread asserts the samples are actually spread out,
// not a constant: a fleet of recovering coordinators sampling the same
// attempt must not collapse onto one retry instant.
func TestBackoffJitterSpread(t *testing.T) {
	p := DefaultRetry()
	seen := make(map[time.Duration]bool)
	for i := 0; i < 100; i++ {
		seen[p.Backoff(2)] = true
	}
	// 100 draws over a 50ms-wide nanosecond-granular window: even a
	// heavily quantized RNG should produce far more than 10 values.
	if len(seen) < 10 {
		t.Fatalf("100 jittered backoffs produced only %d distinct values — retries would sync in lockstep", len(seen))
	}
}

// TestBackoffCapsAtMaxDelay verifies the exponential growth clamps: a
// large attempt number must not overflow past MaxDelay's jitter band.
func TestBackoffCapsAtMaxDelay(t *testing.T) {
	p := RetryPolicy{Attempts: 30, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond}
	for i := 0; i < 100; i++ {
		d := p.Backoff(30)
		if d >= p.MaxDelay+p.MaxDelay/2 {
			t.Fatalf("Backoff(30) = %v, want < %v", d, p.MaxDelay+p.MaxDelay/2)
		}
	}
}

// TestBackoffZeroValueDefaults: a zero BaseDelay falls back to a sane
// default instead of hot-looping.
func TestBackoffZeroValueDefaults(t *testing.T) {
	var p RetryPolicy
	if d := p.Backoff(1); d <= 0 {
		t.Fatalf("zero-value Backoff = %v, want > 0", d)
	}
}
