package lam

import (
	"context"
	"fmt"

	"msql/internal/ldbms"
	"msql/internal/wire"
)

// Resolve drives one in-doubt participant to the recorded
// synchronization-point decision. It reconnects to the LAM at addr,
// re-binds the parked prepared session with wire.ReqAttach, inspects its
// state, and issues the decision (commit when commit is true, rollback
// otherwise). When the participant already reached an outcome — its
// prepare-to-commit was resolved on another path, or the commit
// acknowledgment was lost — the recorded terminal state is returned
// without further action.
//
// Resolve performs a single attempt; callers (the DOL engine's recovery
// loop) bound and pace retries.
func Resolve(ctx context.Context, addr string, sessionID int64, commit bool) (ldbms.SessionState, error) {
	opts := DialOptions{}.withDefaults()
	if _, ok := ctx.Deadline(); !ok {
		// No caller deadline: still bound each call so a half-dead LAM
		// cannot hang recovery.
		opts.CallTimeout = 2 * opts.DialTimeout
	}
	conn, err := dialConn(ctx, addr, opts)
	if err != nil {
		return 0, err
	}
	defer conn.close()

	resp, err := conn.call(ctx, &wire.Request{Kind: wire.ReqAttach, SessionID: sessionID})
	if err != nil {
		return 0, err
	}
	state := ldbms.SessionState(resp.State)
	if state != ldbms.StatePrepared {
		// Already resolved: the server answered with the recorded outcome.
		return state, nil
	}
	decision := wire.ReqRollback
	if commit {
		decision = wire.ReqCommit
	}
	if _, err := conn.call(ctx, &wire.Request{Kind: decision, SessionID: sessionID}); err != nil {
		return 0, fmt.Errorf("lam: resolve session %d at %s: %w", sessionID, addr, err)
	}
	final := ldbms.StateAborted
	if commit {
		final = ldbms.StateCommitted
	}
	// Release the re-bound session; its outcome tombstone survives on the
	// server for coordinators that retry after a lost acknowledgment.
	_, _ = conn.call(ctx, &wire.Request{Kind: wire.ReqCloseSession, SessionID: sessionID})
	return final, nil
}
