package lam

import (
	"context"
	"fmt"

	"msql/internal/ldbms"
	"msql/internal/wire"
)

// mtidKey carries the coordinator's multitransaction id in a context so
// the transport can stamp it onto prepare requests.
type mtidKey struct{}

// WithMTID returns a context carrying the coordinator's multitransaction
// id. Remote sessions propagate it on wire.ReqPrepare so the
// participant's journal can correlate its prepared records with the
// coordinator's journal.
func WithMTID(ctx context.Context, mtid uint64) context.Context {
	return context.WithValue(ctx, mtidKey{}, mtid)
}

// MTIDFrom extracts the multitransaction id from a context (zero when
// absent — an unjournaled coordinator).
func MTIDFrom(ctx context.Context) uint64 {
	if v, ok := ctx.Value(mtidKey{}).(uint64); ok {
		return v
	}
	return 0
}

// dialResolveConn dials a one-shot recovery connection, wrapping dial
// failures in *OpError so a refused connection during a participant
// restart reports its site and stays recognizable to wire.Transient —
// retry and breaker policies treat it exactly like any other transport
// fault.
func dialResolveConn(ctx context.Context, addr string, op wire.ReqKind, sessionID int64) (*rpcConn, error) {
	opts := DialOptions{}.withDefaults()
	if _, ok := ctx.Deadline(); !ok {
		// No caller deadline: still bound each call so a half-dead LAM
		// cannot hang recovery.
		opts.CallTimeout = 2 * opts.DialTimeout
	}
	conn, err := dialConn(ctx, addr, opts)
	if err != nil {
		return nil, &OpError{Addr: addr, Op: op, Session: sessionID, Err: err}
	}
	return conn, nil
}

// Resolve drives one in-doubt participant to the recorded
// synchronization-point decision. It reconnects to the LAM at addr,
// re-binds the parked prepared session with wire.ReqAttach, inspects its
// state, and issues the decision (commit when commit is true, rollback
// otherwise). When the participant already reached an outcome — its
// prepare-to-commit was resolved on another path, or the commit
// acknowledgment was lost — the recorded terminal state is returned
// without further action.
//
// A participant with no record of the session answers wire.ErrNoSession,
// which Resolve passes through unchanged: under presumed abort that is a
// definite answer (never voted, or acknowledged and forgotten), not a
// failure to retry.
//
// Resolve performs a single attempt; callers (the DOL engine's recovery
// loop) bound and pace retries.
func Resolve(ctx context.Context, addr string, sessionID int64, commit bool) (ldbms.SessionState, error) {
	conn, err := dialResolveConn(ctx, addr, wire.ReqAttach, sessionID)
	if err != nil {
		return 0, err
	}
	defer conn.close()

	resp, err := conn.call(ctx, &wire.Request{Kind: wire.ReqAttach, SessionID: sessionID})
	if err != nil {
		return 0, err
	}
	state := ldbms.SessionState(resp.State)
	if state != ldbms.StatePrepared {
		// Already resolved: the server answered with the recorded outcome.
		return state, nil
	}
	decision := wire.ReqRollback
	if commit {
		decision = wire.ReqCommit
	}
	if _, err := conn.call(ctx, &wire.Request{Kind: decision, SessionID: sessionID}); err != nil {
		return 0, fmt.Errorf("lam: resolve session %d at %s: %w", sessionID, addr, err)
	}
	final := ldbms.StateAborted
	if commit {
		final = ldbms.StateCommitted
	}
	// Release the re-bound session; its outcome tombstone survives on the
	// server for coordinators that retry after a lost acknowledgment.
	_, _ = conn.call(ctx, &wire.Request{Kind: wire.ReqCloseSession, SessionID: sessionID})
	return final, nil
}

// InDoubtSessions asks the LAM at addr for its parked prepared sessions
// (wire.ReqInDoubt) — the participant's in-doubt inventory. A
// recovering coordinator matches the listing against its own journal:
// sessions it has no prepared record for were orphaned by a crash that
// landed between the participant's vote and the coordinator's journal
// write, and fall under presumed abort.
func InDoubtSessions(ctx context.Context, addr string) ([]wire.InDoubtSession, error) {
	conn, err := dialResolveConn(ctx, addr, wire.ReqInDoubt, 0)
	if err != nil {
		return nil, err
	}
	defer conn.close()
	resp, err := conn.call(ctx, &wire.Request{Kind: wire.ReqInDoubt})
	if err != nil {
		return nil, err
	}
	return resp.InDoubt, nil
}

// Forget delivers the coordinator's end-of-multitransaction
// acknowledgment for a once-prepared session: the coordinator holds a
// durable terminal outcome and will never ask again, so the participant
// may drop its tombstone and compact the session out of its journal.
// The acknowledgment is idempotent — forgetting an unknown session is a
// no-op — making it safe to retry or to skip entirely (the participant's
// tombstone TTL is the backstop).
func Forget(ctx context.Context, addr string, sessionID int64) error {
	conn, err := dialResolveConn(ctx, addr, wire.ReqForget, sessionID)
	if err != nil {
		return err
	}
	defer conn.close()
	_, err = conn.call(ctx, &wire.Request{Kind: wire.ReqForget, SessionID: sessionID})
	return err
}
