package lam

import (
	"encoding/gob"
	"net"
	"sync"

	"msql/internal/ldbms"
	"msql/internal/relstore"
	"msql/internal/sqlengine"
	"msql/internal/sqlval"
	"msql/internal/wire"
)

// Remote is the TCP transport client. Control operations share one base
// connection; every session gets its own connection so that parallel
// tasks in an evaluation plan do not serialize on a socket.
type Remote struct {
	addr    string
	service string

	mu   sync.Mutex
	base *rpcConn
}

// rpcConn is one gob request/response channel.
type rpcConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func dialConn(addr string) (*rpcConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &rpcConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

func (c *rpcConn) call(req *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	var resp wire.Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *rpcConn) close() error { return c.conn.Close() }

// Dial connects to a LAM TCP server.
func Dial(addr string) (*Remote, error) {
	base, err := dialConn(addr)
	if err != nil {
		return nil, err
	}
	resp, err := base.call(&wire.Request{Kind: wire.ReqHello})
	if err != nil {
		base.close()
		return nil, err
	}
	return &Remote{addr: addr, service: resp.ServiceNm, base: base}, nil
}

// ServiceName implements Client.
func (r *Remote) ServiceName() string { return r.service }

// Profile implements Client.
func (r *Remote) Profile() (ldbms.Profile, error) {
	resp, err := r.base.call(&wire.Request{Kind: wire.ReqProfile})
	if err != nil {
		return ldbms.Profile{}, err
	}
	return resp.Profile.ToProfile(), nil
}

// Open implements Client: it dials a dedicated connection for the session.
func (r *Remote) Open(db string) (Session, error) {
	conn, err := dialConn(r.addr)
	if err != nil {
		return nil, err
	}
	resp, err := conn.call(&wire.Request{Kind: wire.ReqOpen, Database: db})
	if err != nil {
		conn.close()
		return nil, err
	}
	return &remoteSession{conn: conn, id: resp.SessionID, db: db}, nil
}

// Describe implements Client.
func (r *Remote) Describe(db, name string) ([]relstore.Column, error) {
	resp, err := r.base.call(&wire.Request{Kind: wire.ReqDescribe, Database: db, Name: name})
	if err != nil {
		return nil, err
	}
	return wire.ToRelstoreColumns(resp.Columns), nil
}

// ListTables implements Client.
func (r *Remote) ListTables(db string) ([]string, error) {
	resp, err := r.base.call(&wire.Request{Kind: wire.ReqListTables, Database: db})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// ListViews implements Client.
func (r *Remote) ListViews(db string) ([]string, error) {
	resp, err := r.base.call(&wire.Request{Kind: wire.ReqListViews, Database: db})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Close implements Client.
func (r *Remote) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base.close()
}

type remoteSession struct {
	conn *rpcConn
	id   int64
	db   string
}

func (s *remoteSession) Exec(sql string) (*sqlengine.Result, error) {
	resp, err := s.conn.call(&wire.Request{Kind: wire.ReqExec, SessionID: s.id, SQL: sql})
	if err != nil {
		return nil, err
	}
	res := &sqlengine.Result{RowsAffected: resp.Result.RowsAffected, Rows: resp.Result.Rows}
	for _, c := range resp.Result.Columns {
		res.Columns = append(res.Columns, sqlengine.ResultCol{Name: c.Name, Type: sqlval.Kind(c.Type)})
	}
	return res, nil
}

func (s *remoteSession) Prepare() error {
	_, err := s.conn.call(&wire.Request{Kind: wire.ReqPrepare, SessionID: s.id})
	return err
}

func (s *remoteSession) Commit() error {
	_, err := s.conn.call(&wire.Request{Kind: wire.ReqCommit, SessionID: s.id})
	return err
}

func (s *remoteSession) Rollback() error {
	_, err := s.conn.call(&wire.Request{Kind: wire.ReqRollback, SessionID: s.id})
	return err
}

func (s *remoteSession) State() (ldbms.SessionState, error) {
	resp, err := s.conn.call(&wire.Request{Kind: wire.ReqState, SessionID: s.id})
	if err != nil {
		return 0, err
	}
	return ldbms.SessionState(resp.State), nil
}

func (s *remoteSession) Database() string { return s.db }

func (s *remoteSession) Close() error {
	_, err := s.conn.call(&wire.Request{Kind: wire.ReqCloseSession, SessionID: s.id})
	cerr := s.conn.close()
	if err != nil {
		return err
	}
	return cerr
}
