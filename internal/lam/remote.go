package lam

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"msql/internal/ldbms"
	"msql/internal/obs"
	"msql/internal/relstore"
	"msql/internal/sqlengine"
	"msql/internal/sqlval"
	"msql/internal/wire"
)

// ErrConnBroken marks calls issued on a connection already poisoned by an
// earlier transport failure (a torn gob stream cannot be resynchronized).
var ErrConnBroken = errors.New("lam: connection broken by earlier failure")

// OpError wraps a transport-level failure with the peer address, the
// operation kind, and the session it concerned, so a severed connection
// reports "lam continental (10.0.0.1:9001): exec: EOF" instead of a bare
// EOF.
type OpError struct {
	Service string
	Addr    string
	Op      wire.ReqKind
	Session int64
	Err     error
}

func (e *OpError) Error() string {
	svc := e.Service
	if svc == "" {
		svc = "?"
	}
	if e.Session != 0 {
		return fmt.Sprintf("lam %s (%s): %s [session %d]: %v", svc, e.Addr, e.Op, e.Session, e.Err)
	}
	return fmt.Sprintf("lam %s (%s): %s: %v", svc, e.Addr, e.Op, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// RetryPolicy bounds the exponential backoff used for transient
// control-plane failures. Data-plane calls inside an open transaction are
// never retried — their outcome at the server is unknown, and blind
// replays would corrupt the paper's Success/Aborted/Incorrect accounting.
type RetryPolicy struct {
	// Attempts is the number of retries after the first try.
	Attempts int
	// BaseDelay is the first backoff; each retry doubles it up to MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// DefaultRetry is the control-plane policy used when DialOptions leaves
// Retry zero-valued: 2 retries, 25ms base backoff capped at 250ms.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{Attempts: 2, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond}
}

// Backoff returns the sleep before retry attempt (1-based), with ±50%
// jitter so synchronized retry storms across parallel tasks decorrelate.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = 25 * time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	half := d / 2
	if half > 0 {
		d = half + time.Duration(rand.Int63n(int64(d)))
	}
	return d
}

// sleep waits the backoff for the given attempt, returning early with the
// context error when the caller's deadline expires first.
func (p RetryPolicy) sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(p.Backoff(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// DialOptions configure the TCP transport client.
type DialOptions struct {
	// CallTimeout bounds every RPC on the connection (0 = rely on the
	// caller's context deadline only). The effective per-call deadline is
	// the earlier of the context deadline and now+CallTimeout.
	CallTimeout time.Duration
	// DialTimeout bounds TCP connection establishment (default 5s).
	DialTimeout time.Duration
	// Retry is the transient-failure policy for control-plane calls
	// (profile, describe, list, open). Zero value means DefaultRetry.
	Retry RetryPolicy
	// PoolSize caps the idle session connections kept for reuse by Open
	// (0 = pooling disabled; every session dials a fresh connection).
	// Pooling amortizes the TCP+gob handshake under session churn; a
	// connection is only returned to the pool after a clean session
	// close, so a conn that ever carried a transport failure — whose
	// server-side state is unknowable — is discarded, preserving the
	// conn-death ⇒ in-doubt 2PC semantics.
	PoolSize int
}

func (o DialOptions) withDefaults() DialOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.Retry == (RetryPolicy{}) {
		o.Retry = DefaultRetry()
	}
	return o
}

// Remote is the TCP transport client. Control operations share one base
// connection (redialed transparently after transient failures); every
// session gets its own connection so that parallel tasks in an evaluation
// plan do not serialize on a socket.
type Remote struct {
	addr    string
	service string
	opts    DialOptions

	// base is guarded by the rpcConn's own lock plus this one for swap.
	baseMu struct {
		ch chan *rpcConn // 1-buffered slot; nil element = needs redial
	}

	// pool holds idle session connections for reuse by Open when
	// opts.PoolSize > 0.
	poolMu     sync.Mutex
	idle       []*rpcConn
	poolClosed bool
}

// rpcConn is one gob request/response channel. The 1-buffered semaphore
// serializes request/response exchanges — the stream carries one call at
// a time — while letting a caller whose context dies while waiting give
// up immediately instead of sitting behind a hung call for the peer's
// full timeout (a mutex would pin it there).
type rpcConn struct {
	sem     chan struct{}
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	addr    string
	service string
	timeout time.Duration
	broken  error // guarded by sem
}

func dialConn(ctx context.Context, addr string, opts DialOptions) (*rpcConn, error) {
	d := net.Dialer{Timeout: opts.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &rpcConn{
		sem:     make(chan struct{}, 1),
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		dec:     gob.NewDecoder(conn),
		addr:    addr,
		timeout: opts.CallTimeout,
	}, nil
}

// call issues one request/response exchange, recording the round trip as
// a per-site latency observation and — when the context carries a trace —
// as a call span whose id propagates to the server in the request, so
// the LAM's server-side span correlates with this one.
func (c *rpcConn) call(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	op := req.Kind.String()
	if tr := obs.TraceFrom(ctx); tr != nil {
		sp := tr.StartSpan("call:"+op, obs.KindCall, obs.SpanFrom(ctx))
		sp.SetAttr("site", c.addr)
		req.TraceID = tr.ID()
		req.ParentSpan = uint64(sp.ID())
		start := time.Now()
		resp, err := c.exchange(ctx, req)
		c.noteCall(op, start, err)
		if resp != nil {
			sp.SetServerNS(resp.ServerNS)
		}
		sp.EndErr(err)
		return resp, err
	}
	start := time.Now()
	resp, err := c.exchange(ctx, req)
	c.noteCall(op, start, err)
	return resp, err
}

// noteCall records the latency and transient-failure metrics of one
// exchange.
func (c *rpcConn) noteCall(op string, start time.Time, err error) {
	mCallLatency.With(c.addr, op).ObserveSince(start)
	if err != nil && wire.Transient(err) {
		mTransientErrs.With(c.addr, op).Inc()
	}
}

// exchange performs the raw request/response round trip. The connection
// deadline is the earlier of the context deadline and the per-call
// timeout; a transport failure (timeout, severed connection, torn
// stream) poisons the connection and is wrapped in *OpError. Errors the
// server answered with are returned as-is — they are definite.
func (c *rpcConn) exchange(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		// Never started: the wire was not touched, so the outcome is
		// definite (nothing happened), not in-doubt.
		return nil, ctx.Err()
	}
	defer func() { <-c.sem }()
	if c.broken != nil {
		return nil, &OpError{Service: c.service, Addr: c.addr, Op: req.Kind, Session: req.SessionID,
			Err: fmt.Errorf("%w: %v", ErrConnBroken, c.broken)}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	deadline := time.Time{}
	if c.timeout > 0 {
		deadline = time.Now().Add(c.timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	_ = c.conn.SetDeadline(deadline)
	// Propagate context cancellation into the blocking read/write.
	stop := make(chan struct{})
	defer close(stop)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				_ = c.conn.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
	}
	fail := func(err error) (*wire.Response, error) {
		c.broken = err
		_ = c.conn.Close()
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = fmt.Errorf("%w (%v)", ctxErr, err)
		} else if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
			// The conn deadline derived from the context fired before the
			// context's own timer did; report the caller's deadline anyway.
			err = fmt.Errorf("%w (%v)", context.DeadlineExceeded, err)
		}
		return nil, &OpError{Service: c.service, Addr: c.addr, Op: req.Kind, Session: req.SessionID, Err: err}
	}
	if err := c.enc.Encode(req); err != nil {
		return fail(err)
	}
	var resp wire.Response
	if err := c.dec.Decode(&resp); err != nil {
		return fail(err)
	}
	_ = c.conn.SetDeadline(time.Time{})
	if err := resp.Err(); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *rpcConn) close() error { return c.conn.Close() }

// idleAndHealthy reports whether the connection has no call in flight
// and no recorded transport failure, using a non-blocking semaphore
// probe so a hung in-flight call never blocks the check.
func (c *rpcConn) idleAndHealthy() bool {
	select {
	case c.sem <- struct{}{}:
		ok := c.broken == nil
		<-c.sem
		return ok
	default:
		return false
	}
}

// Dial connects to a LAM TCP server with default options.
func Dial(addr string) (*Remote, error) {
	return DialWith(context.Background(), addr, DialOptions{})
}

// DialWith connects to a LAM TCP server with explicit fault-tolerance
// options.
func DialWith(ctx context.Context, addr string, opts DialOptions) (*Remote, error) {
	r := &Remote{addr: addr, opts: opts.withDefaults()}
	r.baseMu.ch = make(chan *rpcConn, 1)
	r.baseMu.ch <- nil
	resp, err := r.control(ctx, &wire.Request{Kind: wire.ReqHello})
	if err != nil {
		return nil, err
	}
	r.service = resp.ServiceNm
	return r, nil
}

// acquireBase takes the base connection slot, redialing when it is absent
// or poisoned.
func (r *Remote) acquireBase(ctx context.Context) (*rpcConn, error) {
	var c *rpcConn
	select {
	case c = <-r.baseMu.ch:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if c != nil && c.broken == nil {
		return c, nil
	}
	if c != nil {
		c.close()
	}
	nc, err := dialConn(ctx, r.addr, r.opts)
	if err != nil {
		r.baseMu.ch <- nil
		return nil, err
	}
	nc.service = r.service
	return nc, nil
}

func (r *Remote) releaseBase(c *rpcConn) { r.baseMu.ch <- c }

// control runs one control-plane request on the base connection, retrying
// transient failures (with redial) under the retry policy.
func (r *Remote) control(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	var last error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := r.opts.Retry.sleep(ctx, attempt); err != nil {
				return nil, last
			}
		}
		c, err := r.acquireBase(ctx)
		if err == nil {
			var resp *wire.Response
			resp, err = c.call(ctx, req)
			r.releaseBase(c)
			if err == nil {
				return resp, nil
			}
		}
		last = err
		if !wire.Transient(err) || attempt >= r.opts.Retry.Attempts {
			return nil, last
		}
		mRetries.With(r.addr).Inc()
	}
}

// ServiceName implements Client.
func (r *Remote) ServiceName() string { return r.service }

// Profile implements Client.
func (r *Remote) Profile(ctx context.Context) (ldbms.Profile, error) {
	resp, err := r.control(ctx, &wire.Request{Kind: wire.ReqProfile})
	if err != nil {
		return ldbms.Profile{}, err
	}
	return resp.Profile.ToProfile(), nil
}

// Open implements Client: it takes a pooled idle connection when one is
// available, else dials a dedicated connection for the session. The
// dial+open pair is retried as a unit on transient failures — no
// transaction state exists yet, so the replay is safe (an orphaned
// server-side session from a lost reply dies with its connection).
func (r *Remote) Open(ctx context.Context, db string) (Session, error) {
	// Pooled conns first. A pooled conn gone stale (server restarted,
	// idle timeout) just falls through to the dial path; stale pops do
	// not consume retry attempts.
	for {
		conn := r.popIdle()
		if conn == nil {
			break
		}
		resp, err := conn.call(ctx, &wire.Request{Kind: wire.ReqOpen, Database: db})
		if err == nil {
			mPoolReuse.With(r.addr).Inc()
			return &remoteSession{conn: conn, r: r, addr: r.addr, id: resp.SessionID, db: db}, nil
		}
		conn.close()
		if !wire.Transient(err) {
			return nil, err
		}
	}
	var last error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := r.opts.Retry.sleep(ctx, attempt); err != nil {
				return nil, last
			}
		}
		conn, err := dialConn(ctx, r.addr, r.opts)
		if err == nil {
			conn.service = r.service
			var resp *wire.Response
			resp, err = conn.call(ctx, &wire.Request{Kind: wire.ReqOpen, Database: db})
			if err == nil {
				return &remoteSession{conn: conn, r: r, addr: r.addr, id: resp.SessionID, db: db}, nil
			}
			conn.close()
		}
		last = err
		if !wire.Transient(err) || attempt >= r.opts.Retry.Attempts {
			return nil, last
		}
		mRetries.With(r.addr).Inc()
	}
}

// popIdle takes an idle pooled connection, newest first (most likely
// still alive), or nil when the pool is empty or pooling is off.
func (r *Remote) popIdle() *rpcConn {
	if r.opts.PoolSize <= 0 {
		return nil
	}
	r.poolMu.Lock()
	defer r.poolMu.Unlock()
	if n := len(r.idle); n > 0 {
		c := r.idle[n-1]
		r.idle = r.idle[:n-1]
		return c
	}
	return nil
}

// putIdle offers a healthy session connection back to the pool, closing
// it instead when pooling is off, the pool is full, or the Remote is
// closed. Health is judged with a non-blocking probe of the call
// semaphore: a conn with a call still in flight (someone else may be
// mid-frame on it) or a recorded transport failure is never pooled.
func (r *Remote) putIdle(c *rpcConn) {
	if r.opts.PoolSize <= 0 || !c.idleAndHealthy() {
		c.close()
		return
	}
	r.poolMu.Lock()
	if r.poolClosed || len(r.idle) >= r.opts.PoolSize {
		r.poolMu.Unlock()
		c.close()
		return
	}
	r.idle = append(r.idle, c)
	r.poolMu.Unlock()
}

// Describe implements Client.
func (r *Remote) Describe(ctx context.Context, db, name string) ([]relstore.Column, error) {
	resp, err := r.control(ctx, &wire.Request{Kind: wire.ReqDescribe, Database: db, Name: name})
	if err != nil {
		return nil, err
	}
	return wire.ToRelstoreColumns(resp.Columns), nil
}

// ListTables implements Client.
func (r *Remote) ListTables(ctx context.Context, db string) ([]string, error) {
	resp, err := r.control(ctx, &wire.Request{Kind: wire.ReqListTables, Database: db})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// ListViews implements Client.
func (r *Remote) ListViews(ctx context.Context, db string) ([]string, error) {
	resp, err := r.control(ctx, &wire.Request{Kind: wire.ReqListViews, Database: db})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Close implements Client.
func (r *Remote) Close() error {
	r.poolMu.Lock()
	r.poolClosed = true
	idle := r.idle
	r.idle = nil
	r.poolMu.Unlock()
	for _, c := range idle {
		c.close()
	}
	c := <-r.baseMu.ch
	r.baseMu.ch <- nil
	if c != nil {
		return c.close()
	}
	return nil
}

type remoteSession struct {
	conn *rpcConn
	r    *Remote // for returning conn to the pool; nil in recovery paths
	addr string
	id   int64
	db   string
}

func (s *remoteSession) call(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	req.SessionID = s.id
	return s.conn.call(ctx, req)
}

// RecoveryInfo implements Recoverable: the coordinator reconnects to addr
// and resolves the server-side session id.
func (s *remoteSession) RecoveryInfo() (string, int64) { return s.addr, s.id }

func (s *remoteSession) Exec(ctx context.Context, sql string) (*sqlengine.Result, error) {
	resp, err := s.call(ctx, &wire.Request{Kind: wire.ReqExec, SQL: sql})
	if err != nil {
		return nil, err
	}
	res := &sqlengine.Result{RowsAffected: resp.Result.RowsAffected, Rows: resp.Result.Rows, Plan: resp.Result.Plan}
	for _, c := range resp.Result.Columns {
		res.Columns = append(res.Columns, sqlengine.ResultCol{Name: c.Name, Type: sqlval.Kind(c.Type)})
	}
	return res, nil
}

func (s *remoteSession) Prepare(ctx context.Context) error {
	// The multitransaction id (when the coordinator journals) rides on the
	// prepare so the participant's journal can correlate with ours.
	_, err := s.call(ctx, &wire.Request{Kind: wire.ReqPrepare, MTID: MTIDFrom(ctx)})
	return err
}

func (s *remoteSession) Commit(ctx context.Context) error {
	_, err := s.call(ctx, &wire.Request{Kind: wire.ReqCommit})
	return err
}

func (s *remoteSession) Rollback(ctx context.Context) error {
	_, err := s.call(ctx, &wire.Request{Kind: wire.ReqRollback})
	return err
}

func (s *remoteSession) State(ctx context.Context) (ldbms.SessionState, error) {
	resp, err := s.call(ctx, &wire.Request{Kind: wire.ReqState})
	if err != nil {
		return 0, err
	}
	return ldbms.SessionState(resp.State), nil
}

func (s *remoteSession) Database() string { return s.db }

func (s *remoteSession) Close() error {
	_, err := s.call(context.Background(), &wire.Request{Kind: wire.ReqCloseSession})
	if err == nil && s.r != nil {
		s.r.putIdle(s.conn)
		return nil
	}
	cerr := s.conn.close()
	if err != nil {
		return err
	}
	return cerr
}
