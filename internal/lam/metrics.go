package lam

import "msql/internal/obs"

// Federation metrics recorded by the LAM layer (see DESIGN.md §8).
// Client-side metrics are labeled by site address so a coordinator's
// /metrics separates the latency and failure behavior of each member
// DBMS; server-side metrics are labeled by operation.
var (
	mCallLatency = obs.Default().HistogramVec("msql_site_call_seconds",
		"Round-trip latency of wire calls to each LAM site.",
		nil, "site", "op")
	mTransientErrs = obs.Default().CounterVec("msql_site_transient_errors_total",
		"Transport-level failures (timeout, severed/refused connection, torn stream) per site and operation.",
		"site", "op")
	mRetries = obs.Default().CounterVec("msql_site_retries_total",
		"Control-plane retries after transient failures, per site.",
		"site")
	mPoolReuse = obs.Default().CounterVec("msql_site_conn_reuse_total",
		"Session opens served by a pooled idle connection instead of a fresh dial, per site.",
		"site")
	mBreakerTransitions = obs.Default().CounterVec("msql_breaker_transitions_total",
		"Circuit-breaker state transitions per service, labeled by the state entered.",
		"service", "to")
	mBreakerState = obs.Default().GaugeVec("msql_breaker_state",
		"Current circuit-breaker state per service (0=closed, 1=open, 2=half-open).",
		"service")
	mServerRequests = obs.Default().CounterVec("msql_server_requests_total",
		"Requests handled by this LAM server, per operation.",
		"op")
	mServerLatency = obs.Default().HistogramVec("msql_server_request_seconds",
		"Server-side processing time per operation (excludes wire time).",
		nil, "op")
	mTombstones = obs.Default().GaugeVec("msql_lam_tombstones",
		"Unacknowledged outcome tombstones of once-prepared sessions, per service.",
		"service")
	mParked = obs.Default().GaugeVec("msql_lam_parked_sessions",
		"Parked in-doubt sessions awaiting a coordinator decision, per service.",
		"service")
	mReplayed = obs.Default().CounterVec("msql_lam_journal_replayed_total",
		"Sessions re-materialized from the participant journal at startup, by kind.",
		"service", "kind")
)
