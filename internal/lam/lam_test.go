package lam

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"msql/internal/ldbms"
	"msql/internal/sqlval"
)

var bg = context.Background()

func deltaServer(t testing.TB) *ldbms.Server {
	t.Helper()
	srv := ldbms.NewServer("delta-svc", ldbms.ProfileOracleLike(), 7)
	if err := srv.CreateDatabase("delta"); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.OpenSession("delta")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"CREATE TABLE flight (fnu INTEGER, source CHAR(20), dest CHAR(20), rate FLOAT)",
		"INSERT INTO flight VALUES (10, 'Houston', 'San Antonio', 150.0), (11, 'Austin', 'Dallas', 90.0)",
		"CREATE VIEW cheap AS SELECT fnu FROM flight WHERE rate < 100",
	} {
		if _, err := sess.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	return srv
}

// runClientSuite exercises one Client implementation end to end.
func runClientSuite(t *testing.T, c Client) {
	t.Helper()
	if c.ServiceName() != "delta-svc" {
		t.Fatalf("service = %s", c.ServiceName())
	}
	p, err := c.Profile(bg)
	if err != nil {
		t.Fatal(err)
	}
	if !p.TwoPC || p.Name != "oracle-like" {
		t.Fatalf("profile = %+v", p)
	}

	tables, err := c.ListTables(bg, "delta")
	if err != nil || len(tables) != 1 || tables[0] != "flight" {
		t.Fatalf("tables = %v, %v", tables, err)
	}
	views, err := c.ListViews(bg, "delta")
	if err != nil || len(views) != 1 || views[0] != "cheap" {
		t.Fatalf("views = %v, %v", views, err)
	}
	cols, err := c.Describe(bg, "delta", "flight")
	if err != nil || len(cols) != 4 || cols[3].Name != "rate" {
		t.Fatalf("cols = %+v, %v", cols, err)
	}

	sess, err := c.Open(bg, "delta")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Database() != "delta" {
		t.Fatalf("db = %s", sess.Database())
	}
	res, err := sess.Exec(bg, "SELECT fnu, rate FROM flight WHERE source = 'Houston'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Columns[0].Name != "fnu" {
		t.Fatalf("res = %+v", res)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 10 {
		t.Fatalf("fnu = %v", res.Rows[0][0])
	}
	if res.Rows[0][1].K != sqlval.KindFloat {
		t.Fatalf("rate kind = %v", res.Rows[0][1].K)
	}

	// 2PC cycle with state inspection.
	if _, err := sess.Exec(bg, "UPDATE flight SET rate = rate * 1.1 WHERE fnu = 10"); err != nil {
		t.Fatal(err)
	}
	st, err := sess.State(bg)
	if err != nil || st != ldbms.StateActive {
		t.Fatalf("state = %v, %v", st, err)
	}
	if err := sess.Prepare(bg); err != nil {
		t.Fatal(err)
	}
	st, _ = sess.State(bg)
	if st != ldbms.StatePrepared {
		t.Fatalf("state = %v", st)
	}
	if err := sess.Rollback(bg); err != nil {
		t.Fatal(err)
	}
	st, _ = sess.State(bg)
	if st != ldbms.StateAborted {
		t.Fatalf("state = %v", st)
	}
	res, err = sess.Exec(bg, "SELECT rate FROM flight WHERE fnu = 10")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := res.Rows[0][0].AsFloat(); f != 150 {
		t.Fatalf("rate after rollback = %v", f)
	}
	// Commit path: update, prepare, commit, verify durable, restore.
	if _, err := sess.Exec(bg, "UPDATE flight SET rate = 160 WHERE fnu = 10"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Prepare(bg); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(bg); err != nil {
		t.Fatal(err)
	}
	res, err = sess.Exec(bg, "SELECT rate FROM flight WHERE fnu = 10")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := res.Rows[0][0].AsFloat(); f != 160 {
		t.Fatalf("rate after commit = %v", f)
	}
	if _, err := sess.Exec(bg, "UPDATE flight SET rate = 150 WHERE fnu = 10"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(bg); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// Error propagation with sentinel preservation.
	sess2, err := c.Open(bg, "delta")
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	_, err = sess2.Exec(bg, "SELECT * FROM not_a_table")
	if err == nil {
		t.Fatal("expected error for missing table")
	}
	if _, err := c.Open(bg, "not_a_db"); err == nil {
		t.Fatal("expected error for missing database")
	}
}

func TestLocalClient(t *testing.T) {
	srv := deltaServer(t)
	c := NewLocal(srv)
	defer c.Close()
	runClientSuite(t, c)
}

func TestRemoteClient(t *testing.T) {
	srv := deltaServer(t)
	ts, err := Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	c, err := Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runClientSuite(t, c)
}

func TestRemoteSentinelErrorsSurviveWire(t *testing.T) {
	srv := ldbms.NewServer("auto", ldbms.ProfileAutoCommitOnly(), 1)
	if err := srv.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	ts, err := Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	c, err := Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(bg, "d")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Prepare(bg); !errors.Is(err, ldbms.ErrNoTwoPC) {
		t.Fatalf("prepare err = %v, want ErrNoTwoPC across the wire", err)
	}

	srv.Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec})
	if _, err := sess.Exec(bg, "SELECT 1"); !errors.Is(err, ldbms.ErrInjected) {
		t.Fatalf("exec err = %v, want ErrInjected across the wire", err)
	}
}

func TestRemoteParallelSessions(t *testing.T) {
	srv := deltaServer(t)
	ts, err := Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	c, err := Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := c.Open(bg, "delta")
			if err != nil {
				errs[i] = err
				return
			}
			defer sess.Close()
			for j := 0; j < 5; j++ {
				if _, err := sess.Exec(bg, "SELECT COUNT(*) FROM flight"); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

func TestRemoteNullsAndValuesRoundTrip(t *testing.T) {
	srv := deltaServer(t)
	ts, _ := Serve("127.0.0.1:0", srv)
	defer ts.Close()
	c, err := Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(bg, "delta")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Exec(bg, "INSERT INTO flight (fnu) VALUES (99)"); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec(bg, "SELECT fnu, source, rate FROM flight WHERE fnu = 99")
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if n, _ := r[0].AsInt(); n != 99 {
		t.Fatalf("fnu = %v", r[0])
	}
	if !r[1].IsNull() || !r[2].IsNull() {
		t.Fatalf("nulls lost: %v %v", r[1], r[2])
	}
}

func TestRemoteLargeResultSet(t *testing.T) {
	srv := ldbms.NewServer("big", ldbms.ProfileOracleLike(), 1)
	if err := srv.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	boot, err := srv.OpenSession("d")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := boot.Exec("CREATE TABLE big (id INTEGER, label CHAR(32))"); err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i += 100 {
		stmt := "INSERT INTO big VALUES "
		for j := 0; j < 100; j++ {
			if j > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'row-%d-label-padding')", i+j, i+j)
		}
		if _, err := boot.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	boot.Commit()
	boot.Close()

	ts, err := Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	c, err := Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(bg, "d")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Exec(bg, "SELECT id, label FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != n {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Spot-check content integrity across the wire.
	last := res.Rows[n-1]
	if id, _ := last[0].AsInt(); id != n-1 {
		t.Fatalf("last id = %v", last[0])
	}
	if last[1].S != fmt.Sprintf("row-%d-label-padding", n-1) {
		t.Fatalf("last label = %v", last[1])
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv := deltaServer(t)
	ts, _ := Serve("127.0.0.1:0", srv)
	c, err := Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if _, err := c.Profile(bg); err == nil {
		t.Fatal("call after server close should fail")
	}
	c.Close()
}
