// Package lam implements the Local Access Managers of the paper's
// architecture (Figure 1): the components that give the DOL engine
// transparent access to heterogeneous local DBMSs. A LAM exposes the same
// Client/Session interface over two transports — direct in-process calls
// and gob-over-TCP — so evaluation plans run identically against local
// and remote services.
//
// Every operation takes a context.Context: the remote transport turns the
// context deadline (capped by the dial options' per-call timeout) into
// net.Conn deadlines, so a partitioned or black-holed LAM fails the call
// within a bounded time instead of hanging the evaluation plan.
package lam

import (
	"context"

	"msql/internal/ldbms"
	"msql/internal/relstore"
	"msql/internal/sqlengine"
)

// Session is one open connection to a database behind a LAM, carrying an
// implicit transaction driven by the evaluation plan.
type Session interface {
	// Exec runs one SQL statement on the local database.
	Exec(ctx context.Context, sql string) (*sqlengine.Result, error)
	// Prepare enters the prepared-to-commit state (2PC servers only).
	Prepare(ctx context.Context) error
	// Commit commits the open transaction.
	Commit(ctx context.Context) error
	// Rollback aborts the open transaction.
	Rollback(ctx context.Context) error
	// State reports the observable session state.
	State(ctx context.Context) (ldbms.SessionState, error)
	// Database names the connected database.
	Database() string
	// Close releases the session, rolling back uncommitted work.
	Close() error
}

// Client is the access point for one incorporated service.
type Client interface {
	// ServiceName returns the service's name in the federation.
	ServiceName() string
	// Profile reports the service's commit/connect capabilities.
	Profile(ctx context.Context) (ldbms.Profile, error)
	// Open starts a session on a database.
	Open(ctx context.Context, db string) (Session, error)
	// Describe reports the schema of a table or view, for IMPORT.
	Describe(ctx context.Context, db, name string) ([]relstore.Column, error)
	// ListTables lists the public tables of a database.
	ListTables(ctx context.Context, db string) ([]string, error)
	// ListViews lists the views of a database.
	ListViews(ctx context.Context, db string) ([]string, error)
	// Close releases the client.
	Close() error
}

// Recoverable is implemented by sessions whose prepared transaction can be
// driven to an outcome after a lost connection: RecoveryInfo names where a
// recovering coordinator reconnects and which server-side session to
// resolve (the in-doubt protocol of DESIGN.md §7).
type Recoverable interface {
	RecoveryInfo() (addr string, sessionID int64)
}

// Local is the in-process transport: a Client wired directly to an
// ldbms.Server in the same address space.
type Local struct {
	srv *ldbms.Server
}

// NewLocal wraps a server as an in-process LAM client.
func NewLocal(srv *ldbms.Server) *Local { return &Local{srv: srv} }

// ServiceName implements Client.
func (l *Local) ServiceName() string { return l.srv.Name() }

// Profile implements Client.
func (l *Local) Profile(ctx context.Context) (ldbms.Profile, error) {
	if err := ctx.Err(); err != nil {
		return ldbms.Profile{}, err
	}
	return l.srv.Profile(), nil
}

// Open implements Client.
func (l *Local) Open(ctx context.Context, db string) (Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := l.srv.OpenSession(db)
	if err != nil {
		return nil, err
	}
	return &localSession{sess: s}, nil
}

// Describe implements Client.
func (l *Local) Describe(ctx context.Context, db, name string) ([]relstore.Column, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := l.srv.OpenSession(db)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Describe(name)
}

// ListTables implements Client.
func (l *Local) ListTables(ctx context.Context, db string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := l.srv.OpenSession(db)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.ListTables()
}

// ListViews implements Client.
func (l *Local) ListViews(ctx context.Context, db string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := l.srv.OpenSession(db)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.ListViews()
}

// Close implements Client.
func (l *Local) Close() error { return nil }

type localSession struct {
	sess *ldbms.Session
}

func (s *localSession) Exec(ctx context.Context, sql string) (*sqlengine.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.sess.Exec(sql)
}

func (s *localSession) Prepare(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.sess.Prepare()
}

func (s *localSession) Commit(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.sess.Commit()
}

func (s *localSession) Rollback(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.sess.Rollback()
}

func (s *localSession) State(ctx context.Context) (ldbms.SessionState, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return s.sess.State(), nil
}

func (s *localSession) Database() string { return s.sess.Database() }

func (s *localSession) Close() error {
	s.sess.Close()
	return nil
}
