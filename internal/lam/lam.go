// Package lam implements the Local Access Managers of the paper's
// architecture (Figure 1): the components that give the DOL engine
// transparent access to heterogeneous local DBMSs. A LAM exposes the same
// Client/Session interface over two transports — direct in-process calls
// and gob-over-TCP — so evaluation plans run identically against local
// and remote services.
package lam

import (
	"msql/internal/ldbms"
	"msql/internal/relstore"
	"msql/internal/sqlengine"
)

// Session is one open connection to a database behind a LAM, carrying an
// implicit transaction driven by the evaluation plan.
type Session interface {
	// Exec runs one SQL statement on the local database.
	Exec(sql string) (*sqlengine.Result, error)
	// Prepare enters the prepared-to-commit state (2PC servers only).
	Prepare() error
	// Commit commits the open transaction.
	Commit() error
	// Rollback aborts the open transaction.
	Rollback() error
	// State reports the observable session state.
	State() (ldbms.SessionState, error)
	// Database names the connected database.
	Database() string
	// Close releases the session, rolling back uncommitted work.
	Close() error
}

// Client is the access point for one incorporated service.
type Client interface {
	// ServiceName returns the service's name in the federation.
	ServiceName() string
	// Profile reports the service's commit/connect capabilities.
	Profile() (ldbms.Profile, error)
	// Open starts a session on a database.
	Open(db string) (Session, error)
	// Describe reports the schema of a table or view, for IMPORT.
	Describe(db, name string) ([]relstore.Column, error)
	// ListTables lists the public tables of a database.
	ListTables(db string) ([]string, error)
	// ListViews lists the views of a database.
	ListViews(db string) ([]string, error)
	// Close releases the client.
	Close() error
}

// Local is the in-process transport: a Client wired directly to an
// ldbms.Server in the same address space.
type Local struct {
	srv *ldbms.Server
}

// NewLocal wraps a server as an in-process LAM client.
func NewLocal(srv *ldbms.Server) *Local { return &Local{srv: srv} }

// ServiceName implements Client.
func (l *Local) ServiceName() string { return l.srv.Name() }

// Profile implements Client.
func (l *Local) Profile() (ldbms.Profile, error) { return l.srv.Profile(), nil }

// Open implements Client.
func (l *Local) Open(db string) (Session, error) {
	s, err := l.srv.OpenSession(db)
	if err != nil {
		return nil, err
	}
	return &localSession{sess: s}, nil
}

// Describe implements Client.
func (l *Local) Describe(db, name string) ([]relstore.Column, error) {
	s, err := l.srv.OpenSession(db)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Describe(name)
}

// ListTables implements Client.
func (l *Local) ListTables(db string) ([]string, error) {
	s, err := l.srv.OpenSession(db)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.ListTables()
}

// ListViews implements Client.
func (l *Local) ListViews(db string) ([]string, error) {
	s, err := l.srv.OpenSession(db)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.ListViews()
}

// Close implements Client.
func (l *Local) Close() error { return nil }

type localSession struct {
	sess *ldbms.Session
}

func (s *localSession) Exec(sql string) (*sqlengine.Result, error) { return s.sess.Exec(sql) }
func (s *localSession) Prepare() error                             { return s.sess.Prepare() }
func (s *localSession) Commit() error                              { return s.sess.Commit() }
func (s *localSession) Rollback() error                            { return s.sess.Rollback() }
func (s *localSession) State() (ldbms.SessionState, error)         { return s.sess.State(), nil }
func (s *localSession) Database() string                           { return s.sess.Database() }
func (s *localSession) Close() error {
	s.sess.Close()
	return nil
}
