package lam

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"msql/internal/ldbms"
	"msql/internal/mtlog"
	"msql/internal/wire"
)

// durableServe boots a fresh delta server on the journal at path. Each
// call builds a new ldbms.Server from the same bootstrap, modeling a
// restarted process whose in-memory store is gone and must be
// re-materialized from the journal.
func durableServe(t *testing.T, path string, opts ServeOptions) *TCPServer {
	t.Helper()
	j, err := mtlog.OpenParticipant(path)
	if err != nil {
		t.Fatal(err)
	}
	opts.Journal = j
	ts, err := ServeWith("127.0.0.1:0", deltaServer(t), opts)
	if err != nil {
		j.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	return ts
}

// prepareAndOrphan opens a session, runs an update, prepares it, and
// severs the connection without closing the session — leaving the server
// with a parked in-doubt participant. Returns the orphaned session id.
func prepareAndOrphan(t *testing.T, addr string) int64 {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(bg, "delta")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(bg, "UPDATE flight SET rate = 175.0 WHERE fnu = 10"); err != nil {
		t.Fatal(err)
	}
	ctx := WithMTID(bg, 99)
	if err := sess.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	rs := sess.(*remoteSession)
	id := rs.id
	rs.conn.close() // sever, do not ReqCloseSession
	return id
}

// rate10 reads the rate of flight 10 through a fresh client session.
func rate10(t *testing.T, addr string) float64 {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(bg, "delta")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Exec(bg, "SELECT rate FROM flight WHERE fnu = 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	f, _ := res.Rows[0][0].AsFloat()
	return f
}

// TestDurableRestartResolvesPrepared is the participant half of the
// §3.2.2 in-doubt window across a restart: a session prepared on server
// 1 (whose store dies with it) must be re-materialized by server 2 from
// the journal and drivable to commit, with the effects visible
// exactly once.
func TestDurableRestartResolvesPrepared(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.journal")
	ts1 := durableServe(t, path, ServeOptions{})
	id := prepareAndOrphan(t, ts1.Addr())

	// Wait for the server to park the orphan, then stop it. With a
	// journal, Close leaves parked sessions journaled instead of
	// aborting them.
	waitParked(t, ts1, id)
	if err := ts1.Close(); err != nil {
		t.Fatal(err)
	}

	ts2 := durableServe(t, path, ServeOptions{})
	if ids := ts2.InDoubt(); len(ids) != 1 || ids[0] != id {
		t.Fatalf("in-doubt after restart = %v, want [%d]", ids, id)
	}
	st, err := Resolve(bg, ts2.Addr(), id, true)
	if err != nil {
		t.Fatal(err)
	}
	if st != ldbms.StateCommitted {
		t.Fatalf("resolved state = %v, want committed", st)
	}
	if got := rate10(t, ts2.Addr()); got != 175.0 {
		t.Fatalf("rate after recovery = %v, want 175 (exactly once)", got)
	}
	// The outcome tombstone answers a retrying coordinator...
	if st, err := Resolve(bg, ts2.Addr(), id, true); err != nil || st != ldbms.StateCommitted {
		t.Fatalf("re-resolve = %v, %v", st, err)
	}
	// ...until the END acknowledgment releases it and compacts the journal.
	if err := Forget(bg, ts2.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if n := ts2.Tombstones(); n != 0 {
		t.Fatalf("tombstones after forget = %d, want 0", n)
	}
}

// TestDurableRestartCommittedUnacked: the participant committed but
// crashed before the coordinator acknowledged. The restarted server must
// re-apply the committed effects (its store was lost) and keep answering
// "committed" from the durable tombstone.
func TestDurableRestartCommittedUnacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.journal")
	ts1 := durableServe(t, path, ServeOptions{})
	id := prepareAndOrphan(t, ts1.Addr())
	waitParked(t, ts1, id)

	// Coordinator resolves to commit, but its END acknowledgment never
	// arrives before the "crash".
	if st, err := Resolve(bg, ts1.Addr(), id, true); err != nil || st != ldbms.StateCommitted {
		t.Fatalf("resolve = %v, %v", st, err)
	}
	if err := ts1.Close(); err != nil {
		t.Fatal(err)
	}

	ts2 := durableServe(t, path, ServeOptions{})
	if got := rate10(t, ts2.Addr()); got != 175.0 {
		t.Fatalf("rate after restart = %v, want 175 (committed effects re-applied)", got)
	}
	if st, err := Resolve(bg, ts2.Addr(), id, true); err != nil || st != ldbms.StateCommitted {
		t.Fatalf("resolve after restart = %v, %v (tombstone must survive)", st, err)
	}
}

// TestDurableRestartPresumedAbort: a session that never reached its
// decision resolves to rollback after restart, and an id the server has
// never heard of answers the definite wire.ErrNoSession — the presumed
// abort answer, not a retryable fault.
func TestDurableRestartPresumedAbort(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.journal")
	ts1 := durableServe(t, path, ServeOptions{})
	id := prepareAndOrphan(t, ts1.Addr())
	waitParked(t, ts1, id)
	if err := ts1.Close(); err != nil {
		t.Fatal(err)
	}

	ts2 := durableServe(t, path, ServeOptions{})
	st, err := Resolve(bg, ts2.Addr(), id, false)
	if err != nil {
		t.Fatal(err)
	}
	if st != ldbms.StateAborted {
		t.Fatalf("state = %v, want aborted", st)
	}
	if got := rate10(t, ts2.Addr()); got != 150.0 {
		t.Fatalf("rate after abort = %v, want the seed 150", got)
	}

	_, nerr := Resolve(bg, ts2.Addr(), id+1000, true)
	if !errors.Is(nerr, wire.ErrNoSession) {
		t.Fatalf("unknown session error = %v, want wire.ErrNoSession", nerr)
	}
	if wire.Transient(nerr) {
		t.Fatalf("ErrNoSession must be definite, not transient: %v", nerr)
	}
}

// TestTombstoneTTLEviction: without coordinator acknowledgments the TTL
// janitor bounds the tombstone map, journaling the eviction as an ack so
// compaction can reclaim the session.
func TestTombstoneTTLEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.journal")
	ts := durableServe(t, path, ServeOptions{TombstoneTTL: 50 * time.Millisecond, CompactEvery: 1})
	id := prepareAndOrphan(t, ts.Addr())
	waitParked(t, ts, id)
	if st, err := Resolve(bg, ts.Addr(), id, true); err != nil || st != ldbms.StateCommitted {
		t.Fatalf("resolve = %v, %v", st, err)
	}
	if n := ts.Tombstones(); n != 1 {
		t.Fatalf("tombstones = %d, want 1", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ts.Tombstones() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("tombstone never evicted by TTL")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The eviction acked the session: compaction (CompactEvery=1) must
	// have emptied the journal.
	waitEmptyJournal(t, ts)
}

// TestForgetCompactsJournal: the ACK round releases the journal — after
// forget, a compacting server retains nothing for the session.
func TestForgetCompactsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.journal")
	ts := durableServe(t, path, ServeOptions{CompactEvery: 1})
	id := prepareAndOrphan(t, ts.Addr())
	waitParked(t, ts, id)
	if st, err := Resolve(bg, ts.Addr(), id, true); err != nil || st != ldbms.StateCommitted {
		t.Fatalf("resolve = %v, %v", st, err)
	}
	if err := Forget(bg, ts.Addr(), id); err != nil {
		t.Fatal(err)
	}
	waitEmptyJournal(t, ts)
	// Idempotent: forgetting again is a no-op, not an error.
	if err := Forget(bg, ts.Addr(), id); err != nil {
		t.Fatalf("second forget = %v", err)
	}
}

func waitParked(t *testing.T, ts *TCPServer, id int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ids := ts.InDoubt()
		if len(ids) == 1 && ids[0] == id {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %d never parked; in-doubt = %v", id, ids)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitEmptyJournal(t *testing.T, ts *TCPServer) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sessions, err := ts.journal.Sessions()
		if err != nil {
			t.Fatal(err)
		}
		if len(sessions) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never compacted; sessions = %+v", sessions)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
