package lam

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"msql/internal/ldbms"
	"msql/internal/netfault"
	"msql/internal/wire"
)

// deltaProxy serves deltaServer behind a netfault proxy.
func deltaProxy(t *testing.T) (*TCPServer, *netfault.Proxy) {
	t.Helper()
	srv := deltaServer(t)
	ts, err := Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	p, err := netfault.New(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return ts, p
}

func TestCallTimeoutOnBlackholedConnection(t *testing.T) {
	_, p := deltaProxy(t)
	const timeout = 150 * time.Millisecond
	c, err := DialWith(bg, p.Addr(), DialOptions{
		CallTimeout: timeout,
		Retry:       RetryPolicy{Attempts: 0, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(bg, "delta")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	p.SetBlackhole(true)
	start := time.Now()
	_, err = sess.Exec(bg, "SELECT fnu FROM flight")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("exec through a black hole should fail")
	}
	if !wire.Transient(err) {
		t.Fatalf("timeout error should be transient: %v", err)
	}
	if elapsed < timeout/2 || elapsed > 10*timeout {
		t.Fatalf("elapsed = %v, want ~%v (the configured call timeout)", elapsed, timeout)
	}

	// The torn stream poisons the connection: later calls fail fast with
	// ErrConnBroken rather than hanging.
	p.SetBlackhole(false)
	if _, err := sess.Exec(bg, "SELECT 1"); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("call on poisoned connection = %v, want ErrConnBroken", err)
	}
}

func TestContextDeadlineBoundsCall(t *testing.T) {
	_, p := deltaProxy(t)
	// No CallTimeout: only the context bounds the call.
	c, err := DialWith(bg, p.Addr(), DialOptions{Retry: RetryPolicy{Attempts: 0, BaseDelay: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(bg, "delta")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	p.SetBlackhole(true)
	ctx, cancel := context.WithTimeout(bg, 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = sess.Exec(ctx, "SELECT fnu FROM flight")
	if err == nil {
		t.Fatal("exec should fail at the context deadline")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("elapsed = %v, call did not respect the context deadline", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
}

func TestOpErrorIdentifiesPeerAndOperation(t *testing.T) {
	_, p := deltaProxy(t)
	c, err := DialWith(bg, p.Addr(), DialOptions{Retry: RetryPolicy{Attempts: 0, BaseDelay: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(bg, "delta")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	p.Sever()
	_, err = sess.Exec(bg, "SELECT fnu FROM flight")
	if err == nil {
		t.Fatal("exec on severed connection should fail")
	}
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %T %v, want *OpError", err, err)
	}
	if oe.Op != wire.ReqExec || oe.Addr != p.Addr() || oe.Session == 0 {
		t.Fatalf("OpError = %+v, want exec op, proxy addr, nonzero session", oe)
	}
	msg := err.Error()
	for _, want := range []string{"delta-svc", p.Addr(), "exec", "session"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestControlPlaneRetriesAfterSever(t *testing.T) {
	_, p := deltaProxy(t)
	c, err := DialWith(bg, p.Addr(), DialOptions{
		Retry: RetryPolicy{Attempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Profile(bg); err != nil {
		t.Fatal(err)
	}
	// Kill the base connection; the next control call must transparently
	// redial and succeed (profile reads are idempotent).
	p.Sever()
	profile, err := c.Profile(bg)
	if err != nil {
		t.Fatalf("control call after sever = %v, want transparent retry", err)
	}
	if profile.Name != "oracle-like" {
		t.Fatalf("profile = %+v", profile)
	}

	tables, err := c.ListTables(bg, "delta")
	if err != nil || len(tables) != 1 {
		t.Fatalf("tables after recovery = %v, %v", tables, err)
	}
}

func TestDataPlaneIsNotRetried(t *testing.T) {
	_, p := deltaProxy(t)
	c, err := DialWith(bg, p.Addr(), DialOptions{
		Retry: RetryPolicy{Attempts: 5, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(bg, "delta")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Exec(bg, "UPDATE flight SET rate = 1 WHERE fnu = 10"); err != nil {
		t.Fatal(err)
	}
	p.Sever()
	// The exec is inside an open transaction: it must surface the failure,
	// not silently replay on a fresh connection.
	if _, err := sess.Exec(bg, "UPDATE flight SET rate = 2 WHERE fnu = 10"); err == nil {
		t.Fatal("data-plane call after sever must fail, not retry")
	}
}

func TestServerRejectsMalformedRequestKind(t *testing.T) {
	srv := deltaServer(t)
	ts, err := Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	conn, err := net.Dial("tcp", ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := enc.Encode(&wire.Request{Kind: wire.ReqKind(99)}); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err() == nil || !strings.Contains(resp.Err().Error(), "unknown request kind") {
		t.Fatalf("resp err = %v", resp.Err())
	}
	// The connection survives a malformed request: a valid one still works.
	if err := enc.Encode(&wire.Request{Kind: wire.ReqHello}); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ServiceNm != "delta-svc" {
		t.Fatalf("hello after bad request = %+v", resp)
	}
}

func TestServerRejectsUnknownSession(t *testing.T) {
	srv := deltaServer(t)
	ts, err := Serve("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	conn, err := net.Dial("tcp", ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	for _, kind := range []wire.ReqKind{wire.ReqExec, wire.ReqPrepare, wire.ReqCommit, wire.ReqRollback, wire.ReqState, wire.ReqAttach} {
		if err := enc.Encode(&wire.Request{Kind: kind, SessionID: 424242, SQL: "SELECT 1"}); err != nil {
			t.Fatal(err)
		}
		var resp wire.Response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.Err() == nil || !strings.Contains(resp.Err().Error(), "unknown session") {
			t.Fatalf("%s with bogus session: err = %v", kind, resp.Err())
		}
	}
}

func TestMidStreamCloseWrapsError(t *testing.T) {
	_, p := deltaProxy(t)
	c, err := DialWith(bg, p.Addr(), DialOptions{Retry: RetryPolicy{Attempts: 0, BaseDelay: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(bg, "delta")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	p.Close() // kills every proxied connection mid-stream
	err = sess.Prepare(bg)
	if err == nil {
		t.Fatal("prepare over dead proxy should fail")
	}
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %T %v, want wrapped *OpError, not a bare EOF", err, err)
	}
	if oe.Op != wire.ReqPrepare {
		t.Fatalf("op = %v, want prepare", oe.Op)
	}
}

// prepareOrphan opens a session, updates a row, prepares it, and kills the
// connection so the server parks the session in-doubt. Returns the
// server-side session id.
func prepareOrphan(t *testing.T, ts *TCPServer, p *netfault.Proxy) int64 {
	t.Helper()
	c, err := DialWith(bg, p.Addr(), DialOptions{
		CallTimeout: 2 * time.Second,
		Retry:       RetryPolicy{Attempts: 0, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(bg, "delta")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(bg, "UPDATE flight SET rate = 999 WHERE fnu = 10"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Prepare(bg); err != nil {
		t.Fatal(err)
	}
	_, id := sess.(Recoverable).RecoveryInfo()
	p.Sever()
	// Wait for the server to notice the dead connection and park the
	// prepared session.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ids := ts.InDoubt(); len(ids) == 1 && ids[0] == id {
			return id
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %d never parked; in-doubt = %v", id, ts.InDoubt())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestResolveCommitsInDoubtSession(t *testing.T) {
	ts, p := deltaProxy(t)
	id := prepareOrphan(t, ts, p)

	st, err := Resolve(bg, p.Addr(), id, true)
	if err != nil {
		t.Fatal(err)
	}
	if st != ldbms.StateCommitted {
		t.Fatalf("state = %v, want committed", st)
	}
	if n := len(ts.InDoubt()); n != 0 {
		t.Fatalf("in-doubt after resolve = %d", n)
	}

	// The committed update is durable.
	c, err := DialWith(bg, p.Addr(), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(bg, "delta")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Exec(bg, "SELECT rate FROM flight WHERE fnu = 10")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := res.Rows[0][0].AsFloat(); f != 999 {
		t.Fatalf("rate after resolved commit = %v, want 999", f)
	}
}

func TestResolveRollsBackInDoubtSession(t *testing.T) {
	ts, p := deltaProxy(t)
	id := prepareOrphan(t, ts, p)

	st, err := Resolve(bg, p.Addr(), id, false)
	if err != nil {
		t.Fatal(err)
	}
	if st != ldbms.StateAborted {
		t.Fatalf("state = %v, want aborted", st)
	}

	c, err := DialWith(bg, p.Addr(), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(bg, "delta")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Exec(bg, "SELECT rate FROM flight WHERE fnu = 10")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := res.Rows[0][0].AsFloat(); f != 150 {
		t.Fatalf("rate after resolved rollback = %v, want original 150", f)
	}
}

func TestResolveAnswersFromOutcomeTombstone(t *testing.T) {
	// Lost-acknowledgment case: the first Resolve commits; a second
	// Resolve (the coordinator retrying because the ack was lost) must
	// learn the definite outcome instead of failing or re-deciding.
	ts, p := deltaProxy(t)
	id := prepareOrphan(t, ts, p)

	if _, err := Resolve(bg, p.Addr(), id, true); err != nil {
		t.Fatal(err)
	}
	st, err := Resolve(bg, p.Addr(), id, true)
	if err != nil {
		t.Fatal(err)
	}
	if st != ldbms.StateCommitted {
		t.Fatalf("retried resolve state = %v, want recorded committed outcome", st)
	}
	// Even a rollback-decision retry learns the truth — the recorded
	// outcome wins over the stale decision.
	st, err = Resolve(bg, p.Addr(), id, false)
	if err != nil {
		t.Fatal(err)
	}
	if st != ldbms.StateCommitted {
		t.Fatalf("conflicting retry state = %v, want recorded committed outcome", st)
	}
}

func TestResolveUnknownSession(t *testing.T) {
	_, p := deltaProxy(t)
	if _, err := Resolve(bg, p.Addr(), 31337, true); err == nil {
		t.Fatal("resolving a never-existing session should fail")
	}
}

func TestServerCloseRecordsOutcomesForParked(t *testing.T) {
	ts, p := deltaProxy(t)
	id := prepareOrphan(t, ts, p)
	ts.Close()
	// Shutdown rolled the parked session back; nothing stays in doubt.
	if n := len(ts.InDoubt()); n != 0 {
		t.Fatalf("in-doubt after close = %d", n)
	}
	_ = id
}

func TestCleanDisconnectLeavesNoConnErrors(t *testing.T) {
	ts, p := deltaProxy(t)

	// A well-behaved client: dial, work, close the session, hang up.
	c, err := DialWith(bg, p.Addr(), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.Open(bg, "delta")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(bg, "SELECT rate FROM flight WHERE fnu = 10"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The server notices the hangup as EOF (or a close race) — a benign
	// close, never a recorded connection error.
	deadline := time.Now().Add(2 * time.Second)
	for len(ts.InDoubt()) != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the conn loop wind down
	if errs := ts.ConnErrors(); len(errs) != 0 {
		t.Fatalf("clean disconnect recorded conn errors: %v", errs)
	}

	// Shutdown with no live connections is just as quiet.
	ts.Close()
	if errs := ts.ConnErrors(); len(errs) != 0 {
		t.Fatalf("server close recorded conn errors: %v", errs)
	}
}
