package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"msql/internal/admit"
	"msql/internal/core"
	"msql/internal/lam"
	"msql/internal/mdserver"
	"msql/internal/mtlog"
	"msql/internal/obs"
)

// EnvCoordConfig carries a coordinator child's JSON configuration; its
// presence turns the test binary into a coordinator server process
// (mdserver over a journaled federation of already-running LAM
// children).
const EnvCoordConfig = "MSQL_CHAOS_COORD"

// CoordSite names one participant the coordinator child federates:
// a LAM child (see Config) serving DB at a fixed Addr.
type CoordSite struct {
	Service string
	DB      string
	Addr    string
	// AutoCommitOnly marks a site without a prepare interface (the csv
	// backend, or any !TwoPC profile): the coordinator incorporates it
	// COMMITMODE COMMIT — the federation rejects NOCOMMIT declarations
	// for such products at INCORPORATE time.
	AutoCommitOnly bool
}

// CoordConfig describes one coordinator child process.
type CoordConfig struct {
	// Addr is the fixed mdserver listen address, stable across restarts
	// so soak clients can redial through a crash.
	Addr string
	// Journal is the coordinator multitransaction journal, shared by
	// every incarnation.
	Journal string
	// AddrFile is the readiness handshake; the address lands there only
	// after crash recovery (Recover plus the orphan sweep) completes, so
	// a parent that sees the file knows the in-doubt backlog is gone.
	AddrFile string
	// Sites are the participants; their LAM children must already be
	// running when the coordinator starts.
	Sites []CoordSite
	// GroupCommitMS is the journal's group-commit batch window.
	GroupCommitMS int
	// MaxSessions, MaxConcurrent, MaxQueuePerTenant, MaxWaitMS configure
	// the connection cap and statement admission control (zero
	// MaxConcurrent runs ungated).
	MaxSessions       int
	MaxConcurrent     int
	MaxQueuePerTenant int
	MaxWaitMS         int
	// StmtTimeoutMS bounds each statement (zero = unbounded).
	StmtTimeoutMS int
	// PoolSize enables LAM client connection pooling.
	PoolSize int
	// SlowQueryMS enables the slow-query log at this threshold.
	// Entries append to SlowQueryLog, so the file accumulates across
	// crash-restart incarnations of the child.
	SlowQueryMS  int
	SlowQueryLog string
}

// IsCoordChild reports whether this process was launched as a chaos
// coordinator child.
func IsCoordChild() bool { return os.Getenv(EnvCoordConfig) != "" }

// CoordMain runs the coordinator child: federate the configured sites,
// open the journal with group commit, run crash recovery — the
// journal-driven pass first, then the participant-side orphan sweep —
// and only then serve clients and write the readiness file. It never
// returns.
func CoordMain() {
	cfg := CoordConfig{}
	if err := json.Unmarshal([]byte(os.Getenv(EnvCoordConfig)), &cfg); err != nil {
		fatalCoord("bad config: %v", err)
	}
	fed := core.New()
	fed.SetRecovery(lam.RetryPolicy{Attempts: 10, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 100 * time.Millisecond}, 2*time.Second)

	var setup strings.Builder
	for _, s := range cfg.Sites {
		client, err := lam.DialWith(context.Background(), s.Addr, lam.DialOptions{
			CallTimeout: 5 * time.Second,
			PoolSize:    cfg.PoolSize,
		})
		if err != nil {
			fatalCoord("dial %s at %s: %v", s.Service, s.Addr, err)
		}
		mode := "NOCOMMIT"
		if s.AutoCommitOnly {
			mode = "COMMIT"
		}
		fmt.Fprintf(&setup, "INCORPORATE SERVICE %s SITE '%s' CONNECTMODE CONNECT COMMITMODE %s;\n",
			s.Service, s.Addr, mode)
		fmt.Fprintf(&setup, "IMPORT DATABASE %s FROM SERVICE %s;\n", s.DB, s.Service)
		fed.RegisterClient(s.Addr, client)
	}
	if _, err := fed.ExecScript(setup.String()); err != nil {
		fatalCoord("federate: %v", err)
	}

	j, err := mtlog.Open(cfg.Journal)
	if err != nil {
		fatalCoord("open journal: %v", err)
	}
	if cfg.GroupCommitMS > 0 {
		j.SetGroupCommit(time.Duration(cfg.GroupCommitMS) * time.Millisecond)
	}
	fed.SetJournal(j)

	// Crash recovery before the first client. Recover drives every
	// journaled in-doubt participant to its logged decision;
	// RecoverOrphans then sweeps participant-side prepared sessions the
	// journal never heard of (the vote-vs-journal-write crash window).
	ctx := context.Background()
	rep, err := fed.Recover(ctx)
	if err != nil {
		fatalCoord("recover: %v", err)
	}
	if len(rep.Unreachable) > 0 {
		fatalCoord("recover left %d unreachable participants: %+v", len(rep.Unreachable), rep.Unreachable)
	}
	swept, err := fed.RecoverOrphans(ctx)
	if err != nil {
		fatalCoord("orphan sweep: %v", err)
	}

	if cfg.MaxConcurrent > 0 {
		fed.SetAdmission(admit.New(admit.Config{
			MaxConcurrent:     cfg.MaxConcurrent,
			MaxQueuePerTenant: cfg.MaxQueuePerTenant,
			MaxWait:           time.Duration(cfg.MaxWaitMS) * time.Millisecond,
		}))
	}
	if cfg.StmtTimeoutMS > 0 {
		fed.StmtTimeout = time.Duration(cfg.StmtTimeoutMS) * time.Millisecond
	}
	if cfg.SlowQueryMS > 0 && cfg.SlowQueryLog != "" {
		slow, err := os.OpenFile(cfg.SlowQueryLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatalCoord("slow-query log: %v", err)
		}
		obs.SetSlowQueryLog(obs.NewSlowQueryLog(slow, time.Duration(cfg.SlowQueryMS)*time.Millisecond))
	}

	srv, err := mdserver.Serve(cfg.Addr, fed, mdserver.Options{MaxSessions: cfg.MaxSessions})
	if err != nil {
		fatalCoord("serve: %v", err)
	}
	tmp := cfg.AddrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(srv.Addr()), 0o644); err != nil {
		fatalCoord("addr file: %v", err)
	}
	if err := os.Rename(tmp, cfg.AddrFile); err != nil {
		fatalCoord("addr file rename: %v", err)
	}
	fmt.Fprintf(os.Stderr, "chaos coord: serving %d sites on %s (journal %s, recovered %d mts, swept %d orphans)\n",
		len(cfg.Sites), srv.Addr(), cfg.Journal, rep.Multitransactions, len(swept))
	select {} // serve until SIGKILLed
}

func fatalCoord(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chaos coord: "+format+"\n", args...)
	os.Exit(1)
}

// CoordProc is one coordinator child process and its relaunch state,
// the coordinator-tier sibling of Proc.
type CoordProc struct {
	Cfg CoordConfig
	Dir string

	mu     sync.Mutex
	cmd    *childCmd
	addr   string
	launch int
}

// LaunchCoord starts a coordinator child for cfg (filling in Addr,
// Journal, and AddrFile under dir when empty) and waits until recovery
// has finished and it accepts connections.
func LaunchCoord(dir string, cfg CoordConfig) (*CoordProc, error) {
	if cfg.Addr == "" {
		a, err := PickAddr()
		if err != nil {
			return nil, err
		}
		cfg.Addr = a
	}
	if cfg.Journal == "" {
		cfg.Journal = filepath.Join(dir, "coord.journal")
	}
	if cfg.AddrFile == "" {
		cfg.AddrFile = filepath.Join(dir, "coord.addr")
	}
	if cfg.SlowQueryMS > 0 && cfg.SlowQueryLog == "" {
		cfg.SlowQueryLog = filepath.Join(dir, "slow-query.log")
	}
	p := &CoordProc{Cfg: cfg, Dir: dir}
	if err := p.start(); err != nil {
		return nil, err
	}
	return p, nil
}

// Addr returns the coordinator's listen address.
func (p *CoordProc) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

func (p *CoordProc) start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.startLocked()
}

func (p *CoordProc) startLocked() error {
	cfgJSON, err := json.Marshal(p.Cfg)
	if err != nil {
		return err
	}
	p.launch++
	cmd, addr, err := launchChildProcess(p.Dir, "coord", p.launch,
		EnvCoordConfig+"="+string(cfgJSON), p.Cfg.AddrFile)
	if err != nil {
		return err
	}
	p.cmd, p.addr = cmd, addr
	return nil
}

// Kill delivers SIGKILL and reaps the process — a coordinator crash,
// stranding whatever 2PC windows were open.
func (p *CoordProc) Kill() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd == nil {
		return nil
	}
	err := p.cmd.kill()
	p.cmd = nil
	return err
}

// Restart relaunches the coordinator on the same address and journal.
// It returns only after the child's recovery pass finished (the
// readiness file is written after Recover and the orphan sweep).
func (p *CoordProc) Restart() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd != nil {
		if err := p.cmd.kill(); err != nil {
			return err
		}
		p.cmd = nil
	}
	return p.startLocked()
}

// Stop kills the coordinator if it is still running (for cleanups).
func (p *CoordProc) Stop() { _ = p.Kill() }

// JournalStates reads and reconstructs the coordinator journal from
// outside the process (read-only). Compaction swaps the file by rename,
// so a concurrent read sees a consistent before-or-after image.
func (p *CoordProc) JournalStates() ([]*mtlog.TxState, error) {
	data, err := os.ReadFile(p.Cfg.Journal)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	recs, _, _ := mtlog.DecodeAll(data)
	return mtlog.Reconstruct(recs), nil
}

// SaveArtifacts copies the shared scratch directory (journals, child
// logs) into dst for post-mortem inspection.
func (p *CoordProc) SaveArtifacts(dst string) error {
	return saveDir(p.Dir, dst)
}
