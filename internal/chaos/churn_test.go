package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msql/internal/admit"
	"msql/internal/mdserver"
)

// The churn soak: a coordinator child serving two LAM children, loaded
// by dozens of concurrent client sessions that commit two-site vital
// units while a fraction of them hang up mid-2PC, the admission
// controller sheds overload, and the coordinator is SIGKILLed and
// recovered under load. The acceptance bar is the robustness
// tentpole's: after recovery both journal tiers drain to empty — zero
// stranded in-doubt sessions — overload is answered with ErrOverload
// rather than unbounded queueing, and tail latency stays bounded.

const (
	soakClients   = 36
	soakTables    = 4 // disjoint table pairs limit lock serialization
	soakTenants   = 4
	soakLoadPhase = 1500 * time.Millisecond
)

func soakBoot() []string {
	boot := make([]string, 0, soakTables)
	for i := 0; i < soakTables; i++ {
		boot = append(boot, fmt.Sprintf(
			"CREATE TABLE booking%d (id INTEGER, who CHAR(20), amt FLOAT)", i))
	}
	return boot
}

// soakCounters aggregates worker outcomes.
type soakCounters struct {
	commits  atomic.Int64
	aborts   atomic.Int64
	sheds    atomic.Int64
	abandons atomic.Int64
	connErrs atomic.Int64

	latMu sync.Mutex
	lats  []time.Duration
}

func (c *soakCounters) recordLatency(d time.Duration) {
	c.latMu.Lock()
	c.lats = append(c.lats, d)
	c.latMu.Unlock()
}

func (c *soakCounters) p99() time.Duration {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	if len(c.lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), c.lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)*99)/100]
}

// soakWorker drives one client identity: redial through coordinator
// crashes, commit two-site units, occasionally abandon the connection
// mid-script, back off briefly on shed.
func soakWorker(id int, addr string, stop <-chan struct{}, ctr *soakCounters) {
	rng := rand.New(rand.NewSource(int64(id)*7919 + 13))
	tenant := fmt.Sprintf("t%d", id%soakTenants)
	var c *mdserver.Client
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	running := func() bool {
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}
	n := 0
	for running() {
		if c == nil {
			cc, err := mdserver.Dial(addr, tenant)
			if err != nil {
				ctr.connErrs.Add(1)
				time.Sleep(20 * time.Millisecond)
				continue
			}
			c = cc
		}
		n++
		key := id*1_000_000 + n
		tbl := id % soakTables
		// The %-suffixed unqualified name fans the INSERT out to both
		// scope databases inside one vital unit: a genuine two-site 2PC
		// per operation, not two independent single-site commits.
		src := fmt.Sprintf(`USE delta VITAL united VITAL;
INSERT INTO booking%d%% VALUES (%d, 'c%d', 1.0);
COMMIT;`, tbl, key, id)

		if rng.Intn(100) < 15 {
			// Mid-2PC disconnect: fire the script and hang up without
			// reading the reply. The server must cancel the session and
			// terminate the unit cleanly on its own.
			done := make(chan struct{})
			go func(cl *mdserver.Client) {
				defer close(done)
				_, _ = cl.Script(context.Background(), src)
			}(c)
			time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)
			c.Close()
			<-done
			c = nil
			ctr.abandons.Add(1)
			continue
		}

		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		start := time.Now()
		res, err := c.Script(ctx, src)
		cancel()
		switch {
		case err == nil:
			committed := false
			for _, r := range res {
				if r.Kind == "sync" && r.State == "success" {
					committed = true
				}
			}
			if committed {
				ctr.commits.Add(1)
				ctr.recordLatency(time.Since(start))
			} else {
				ctr.aborts.Add(1) // lock timeout etc.: clean abort, not an error
			}
		case errors.Is(err, admit.ErrOverload):
			// Shed, not queued: the connection stays usable; back off.
			ctr.sheds.Add(1)
			time.Sleep(time.Duration(5+rng.Intn(10)) * time.Millisecond)
		default:
			// Transport failure (likely the coordinator crash): discard
			// the connection and redial.
			ctr.connErrs.Add(1)
			c.Close()
			c = nil
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// waitJournalsDrained polls until the coordinator journal holds no open
// multitransaction and no participant journal holds an unacknowledged
// session.
func waitJournalsDrained(t *testing.T, coord *CoordProc, parts []*Proc) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		open := 0
		states, err := coord.JournalStates()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range states {
			if !s.Ended {
				open++
			}
		}
		unacked := 0
		for _, p := range parts {
			sessions, err := p.JournalSessions()
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range sessions {
				if !s.Acked {
					unacked++
				}
			}
		}
		if open == 0 && unacked == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("journals never drained: %d open multitransactions, %d unacked participant sessions",
				open, unacked)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestChurnSoak(t *testing.T) {
	dir := t.TempDir()
	saveOnFailure := func() {
		if t.Failed() {
			if dst := os.Getenv(EnvArtifacts); dst != "" {
				_ = saveDir(dir, filepath.Join(dst, t.Name()))
			}
		}
	}
	defer saveOnFailure()

	// Two participant LAM children. Aggressive compaction and a short
	// tombstone TTL: acknowledgments lost to the coordinator crash must
	// not pin their journals forever.
	launchLAM := func(service, db string) *Proc {
		p, err := Launch(dir, Config{
			Service: service, DB: db, Boot: soakBoot(),
			CompactEvery: 1, TombstoneTTLMS: 1500,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Stop)
		return p
	}
	delta := launchLAM("svc_delta", "delta")
	united := launchLAM("svc_unit", "united")

	// The coordinator child: tight admission so overload is observable,
	// group commit on, pooled LAM connections.
	coord, err := LaunchCoord(dir, CoordConfig{
		Sites: []CoordSite{
			{Service: "svc_delta", DB: "delta", Addr: delta.Addr()},
			{Service: "svc_unit", DB: "united", Addr: united.Addr()},
		},
		GroupCommitMS: 2,
		MaxSessions:   64,
		// Tight enough that 36 clients over 4 tenants overflow the queues
		// and sheds are guaranteed, loose enough that admitted work flows
		// and the commit floor is met even under -race scheduling.
		MaxConcurrent: 8, MaxQueuePerTenant: 4, MaxWaitMS: 150,
		StmtTimeoutMS: 5000,
		PoolSize:      4,
		// 1ms threshold: the 2ms group-commit window alone pushes every
		// synchronized unit over it, so the soak exercises the slow-query
		// log across both coordinator incarnations.
		SlowQueryMS: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)

	ctr := &soakCounters{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < soakClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			soakWorker(i, coord.Addr(), stop, ctr)
		}(i)
	}

	// Phase 1: load. Then the crash: SIGKILL mid-traffic, restart on the
	// same journal — Restart returns only after the child's recovery
	// (journal replay + orphan sweep) finished. Phase 2: load again.
	time.Sleep(soakLoadPhase)
	if err := coord.Kill(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let workers hit the dead server
	if err := coord.Restart(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(soakLoadPhase)
	close(stop)
	wg.Wait()

	t.Logf("soak: %d commits, %d clean aborts, %d sheds, %d abandons, %d conn errors, p99 %v",
		ctr.commits.Load(), ctr.aborts.Load(), ctr.sheds.Load(),
		ctr.abandons.Load(), ctr.connErrs.Load(), ctr.p99())

	// The soak only proves something if every churn ingredient actually
	// occurred.
	if c := ctr.commits.Load(); c < 12 {
		t.Errorf("commits = %d, want a meaningfully loaded soak (>= 12)", c)
	}
	if s := ctr.sheds.Load(); s == 0 {
		t.Error("no ErrOverload sheds observed; admission control never engaged")
	}
	if a := ctr.abandons.Load(); a == 0 {
		t.Error("no mid-2PC disconnects occurred")
	}
	if p99 := ctr.p99(); p99 > 10*time.Second {
		t.Errorf("p99 latency %v, want bounded under churn", p99)
	}

	// A final crash+recover mops up whatever the load's tail stranded,
	// then both journal tiers must drain completely: no multitransaction
	// without an end record, no participant session without its
	// acknowledgment — zero stranded in-doubt sessions anywhere.
	if err := coord.Restart(); err != nil {
		t.Fatal(err)
	}
	waitJournalsDrained(t, coord, []*Proc{delta, united})

	// And the recovered coordinator still serves: a fresh client commits
	// a two-site unit end to end.
	c, err := mdserver.Dial(coord.Addr(), "verifier")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Script(context.Background(), `USE delta VITAL united VITAL;
INSERT INTO booking0% VALUES (999999999, 'verify', 1.0);
COMMIT;`)
	if err != nil {
		t.Fatalf("post-recovery unit: %v", err)
	}
	committed := false
	for _, r := range res {
		if r.Kind == "sync" && r.State == "success" {
			committed = true
		}
	}
	if !committed {
		t.Fatalf("post-recovery unit did not commit: %+v", res)
	}

	// The slow-query log is part of the soak's deliverable: statements
	// crossed the 1ms threshold in both coordinator incarnations, every
	// line is well-formed JSON, and the file is saved for the CI artifact
	// upload whether or not the test failed.
	slowPath := filepath.Join(dir, "slow-query.log")
	data, err := os.ReadFile(slowPath)
	if err != nil {
		t.Fatalf("slow-query log: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(data) == 0 || len(lines) == 0 {
		t.Error("slow-query log is empty after a loaded soak")
	}
	for i, line := range lines {
		var e struct {
			SQL       string  `json:"sql"`
			ElapsedMS float64 `json:"elapsed_ms"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("slow-query log line %d is not JSON: %q: %v", i+1, line, err)
		}
		if e.SQL == "" || e.ElapsedMS < 1 {
			t.Fatalf("slow-query log line %d below threshold or missing sql: %q", i+1, line)
		}
	}
	t.Logf("slow-query log: %d entries over the 1ms threshold", len(lines))
	if dst := os.Getenv(EnvArtifacts); dst != "" {
		if err := os.MkdirAll(dst, 0o755); err == nil {
			_ = os.WriteFile(filepath.Join(dst, "churn-slow-query.log"), data, 0o644)
		}
	}
}
