// Package chaos is a process-level crash-test harness for participant
// durability: it launches a real LAM TCP server as a child process
// (re-executing the test binary), kills it with SIGKILL at chosen 2PC
// phase boundaries, and relaunches it on the same participant journal.
// Tests drive a coordinator against the child and assert the §3.2.2
// guarantees across the crash: no lost commits, no double-applied
// effects, clean journal compaction.
//
// The child half runs when the test binary finds MSQL_CHAOS_CONFIG in
// its environment: TestMain must call IsChild/ChildMain before running
// tests. The child builds an ldbms server from the configured bootstrap
// (modeling the deterministic base state a real site would reload),
// opens the participant journal — replaying any prepared state a
// previous incarnation left — serves it on the configured fixed
// address, writes the address to a readiness file, and blocks until
// killed.
package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"msql/internal/csvstore"
	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/mtlog"
	"msql/internal/relstore"
)

const (
	// EnvConfig carries the child's JSON configuration; its presence turns
	// the test binary into a LAM server process.
	EnvConfig = "MSQL_CHAOS_CONFIG"
	// EnvArtifacts names a directory where SaveArtifacts copies journals
	// and child logs for post-mortem (CI uploads it on failure).
	EnvArtifacts = "MSQL_CHAOS_ARTIFACTS"
)

// Config describes one child LAM server.
type Config struct {
	// Service and DB name the ldbms server and its database.
	Service string
	DB      string
	// Addr is the fixed listen address. It must be stable across restarts:
	// the coordinator's journal records it at prepare time and recovery
	// re-dials it.
	Addr string
	// Journal is the participant journal path, shared by every
	// incarnation of the child.
	Journal string
	// AddrFile is the readiness handshake: the child writes its listen
	// address there (atomically) once it is accepting connections.
	AddrFile string
	// Boot is the bootstrap SQL establishing the deterministic base state,
	// executed and committed before the journal is replayed.
	Boot []string
	// Backend selects the storage engine: "rel" (default — the full
	// relstore engine, prepared-state replay and all) or "csv" (the
	// flat-file store: write-through, no prepare interface).
	Backend string
	// Profile selects the ldbms capability profile: "oracle" (default),
	// "ingres", "sybase", or "autocommit". A "csv" backend is normally
	// paired with "autocommit" — the store cannot hold a prepared state.
	Profile string
	// Dir is the data directory for the "csv" backend; table files there
	// survive SIGKILL and are reloaded by the next incarnation. Empty
	// keeps the store in memory (state dies with the process).
	Dir string
	// TombstoneTTLMS and CompactEvery configure the server's tombstone
	// eviction and journal compaction (zero = server defaults).
	TombstoneTTLMS int
	CompactEvery   int
}

// IsChild reports whether this process was launched as a chaos child.
func IsChild() bool { return os.Getenv(EnvConfig) != "" }

// ChildMain runs the child LAM server. It never returns: the process
// serves until killed (exit code 1 on startup failure).
func ChildMain() {
	cfg := Config{}
	if err := json.Unmarshal([]byte(os.Getenv(EnvConfig)), &cfg); err != nil {
		fatal("bad config: %v", err)
	}
	var profile ldbms.Profile
	switch cfg.Profile {
	case "", "oracle":
		profile = ldbms.ProfileOracleLike()
	case "ingres":
		profile = ldbms.ProfileIngresLike()
	case "sybase":
		profile = ldbms.ProfileSybaseLike()
	case "autocommit":
		profile = ldbms.ProfileAutoCommitOnly()
	default:
		fatal("unknown profile %q", cfg.Profile)
	}
	var srv *ldbms.Server
	switch cfg.Backend {
	case "", "rel":
		srv = ldbms.NewServer(cfg.Service, profile, 1)
	case "csv":
		cs, err := csvstore.Open(cfg.Dir)
		if err != nil {
			fatal("open csv store: %v", err)
		}
		srv = ldbms.NewServerOn(cfg.Service, profile, 1, cs)
	default:
		fatal("unknown backend %q", cfg.Backend)
	}
	// A durable csv child relaunched on its data directory already holds
	// the database — and its bootstrapped tables — on disk; only a fresh
	// database runs the bootstrap SQL.
	fresh := true
	if err := srv.CreateDatabase(cfg.DB); err != nil {
		if !errors.Is(err, csvstore.ErrExists) && !errors.Is(err, relstore.ErrDBExists) {
			fatal("create database: %v", err)
		}
		fresh = false
	}
	if fresh {
		sess, err := srv.OpenSession(cfg.DB)
		if err != nil {
			fatal("open session: %v", err)
		}
		for _, q := range cfg.Boot {
			if _, err := sess.Exec(q); err != nil {
				fatal("boot %q: %v", q, err)
			}
		}
		if err := sess.Commit(); err != nil {
			fatal("boot commit: %v", err)
		}
		sess.Close()
	}

	j, err := mtlog.OpenParticipant(cfg.Journal)
	if err != nil {
		fatal("open journal: %v", err)
	}
	ts, err := lam.ServeWith(cfg.Addr, srv, lam.ServeOptions{
		Journal:      j,
		TombstoneTTL: time.Duration(cfg.TombstoneTTLMS) * time.Millisecond,
		CompactEvery: cfg.CompactEvery,
	})
	if err != nil {
		fatal("serve: %v", err)
	}
	// Readiness: the address lands atomically so the parent never reads a
	// torn file.
	tmp := cfg.AddrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ts.Addr()), 0o644); err != nil {
		fatal("addr file: %v", err)
	}
	if err := os.Rename(tmp, cfg.AddrFile); err != nil {
		fatal("addr file rename: %v", err)
	}
	fmt.Fprintf(os.Stderr, "chaos child: %s serving %s on %s (journal %s)\n",
		cfg.Service, cfg.DB, ts.Addr(), cfg.Journal)
	select {} // serve until SIGKILLed
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chaos child: "+format+"\n", args...)
	os.Exit(1)
}

// PickAddr reserves a fixed loopback address by binding an ephemeral
// port and releasing it. The brief gap before the child binds it is a
// test-only race, acceptable here and unavoidable without fd passing.
func PickAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	return addr, ln.Close()
}

// childCmd wraps one launched child process for kill-and-reap.
type childCmd struct{ cmd *exec.Cmd }

func (c *childCmd) kill() error {
	if c.cmd == nil || c.cmd.Process == nil {
		return nil
	}
	if err := c.cmd.Process.Kill(); err != nil {
		return err
	}
	_, _ = c.cmd.Process.Wait()
	return nil
}

// launchChildProcess re-executes the test binary as a child carrying
// env, logging to <name>-run<launch>.log under dir, and waits up to 10s
// for the readiness address file. TestMain's IsChild/IsCoordChild hooks
// route the child before any test runs.
func launchChildProcess(dir, name string, launch int, env, addrFile string) (*childCmd, string, error) {
	_ = os.Remove(addrFile)
	logPath := filepath.Join(dir, fmt.Sprintf("%s-run%d.log", name, launch))
	logf, err := os.Create(logPath)
	if err != nil {
		return nil, "", err
	}
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), env)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return nil, "", err
	}
	logf.Close() // the child holds its own descriptor

	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return &childCmd{cmd: cmd}, string(b), nil
		}
		if st := cmd.ProcessState; st != nil || time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
			log, _ := os.ReadFile(logPath)
			return nil, "", fmt.Errorf("chaos child %s never became ready; log:\n%s", name, log)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Proc is one child server process and its relaunch state. Kill and
// Restart are safe to call from different goroutines (a test's fault
// injector kills from the engine's path while a timer restarts).
type Proc struct {
	Cfg Config
	Dir string // scratch dir: addr file, child logs

	mu     sync.Mutex
	cmd    *childCmd
	addr   string
	launch int
}

// Launch starts a child LAM server for cfg (filling in Addr, Journal,
// and AddrFile under dir when empty) and waits until it accepts
// connections.
func Launch(dir string, cfg Config) (*Proc, error) {
	if cfg.Addr == "" {
		a, err := PickAddr()
		if err != nil {
			return nil, err
		}
		cfg.Addr = a
	}
	if cfg.Journal == "" {
		cfg.Journal = filepath.Join(dir, cfg.Service+".journal")
	}
	if cfg.AddrFile == "" {
		cfg.AddrFile = filepath.Join(dir, cfg.Service+".addr")
	}
	p := &Proc{Cfg: cfg, Dir: dir}
	if err := p.start(); err != nil {
		return nil, err
	}
	return p, nil
}

// Addr returns the child's listen address.
func (p *Proc) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

func (p *Proc) start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.startLocked()
}

func (p *Proc) startLocked() error {
	cfgJSON, err := json.Marshal(p.Cfg)
	if err != nil {
		return err
	}
	p.launch++
	cmd, addr, err := launchChildProcess(p.Dir, p.Cfg.Service, p.launch,
		EnvConfig+"="+string(cfgJSON), p.Cfg.AddrFile)
	if err != nil {
		return err
	}
	p.cmd, p.addr = cmd, addr
	return nil
}

// Kill delivers SIGKILL — a crash, not a shutdown: no deferred
// rollbacks, no journal close, no flushes beyond what fsync already
// forced — and reaps the process.
func (p *Proc) Kill() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killLocked()
}

func (p *Proc) killLocked() error {
	if p.cmd == nil {
		return nil
	}
	err := p.cmd.kill()
	p.cmd = nil
	return err
}

// Restart relaunches the child on the same address and journal,
// triggering its replay of the prepared state the crash left behind.
func (p *Proc) Restart() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd != nil {
		if err := p.killLocked(); err != nil {
			return err
		}
	}
	return p.startLocked()
}

// Stop kills the child if it is still running (for cleanups).
func (p *Proc) Stop() { _ = p.Kill() }

// SaveArtifacts copies the child's journal and logs into dst for
// post-mortem inspection (CI uploads this directory when a crash test
// fails). A missing dst disables saving.
func (p *Proc) SaveArtifacts(dst string) error {
	return saveDir(p.Dir, dst)
}

// saveDir copies every regular file under src into dst (creating it);
// an empty dst disables saving.
func saveDir(src, dst string) error {
	if dst == "" {
		return nil
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if err := copyFile(filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// JournalSessions reads and reconstructs the child's participant journal
// from outside the process (read-only: no truncation, no repair).
func (p *Proc) JournalSessions() ([]*mtlog.PSession, error) {
	data, err := os.ReadFile(p.Cfg.Journal)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	recs, _, _ := mtlog.DecodeAll(data)
	return mtlog.ReconstructParticipant(recs), nil
}
