package chaos

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"msql/internal/core"
	"msql/internal/lam"
	"msql/internal/ldbms"
	"msql/internal/mtlog"
)

// TestMain routes child processes — LAM servers and coordinator
// servers — before any test runs; the parent proceeds normally.
func TestMain(m *testing.M) {
	if IsCoordChild() {
		CoordMain() // never returns
	}
	if IsChild() {
		ChildMain() // never returns
	}
	os.Exit(m.Run())
}

var bg = context.Background()

var unitedBoot = []string{
	"CREATE TABLE flight (fn INTEGER, sour CHAR(20), dest CHAR(20), rates FLOAT)",
	"INSERT INTO flight VALUES (300, 'Houston', 'San Antonio', 120.0)",
}

// launchChild starts the united LAM child. On test failure its journal
// and logs are copied into $MSQL_CHAOS_ARTIFACTS/<test> for post-mortem
// (CI uploads that directory).
func launchChild(t *testing.T, compactEvery int) *Proc {
	t.Helper()
	p, err := Launch(t.TempDir(), Config{
		Service: "svc_unit", DB: "united", Boot: unitedBoot, CompactEvery: compactEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if t.Failed() {
			if dst := os.Getenv(EnvArtifacts); dst != "" {
				_ = p.SaveArtifacts(filepath.Join(dst, t.Name()))
			}
		}
		p.Stop()
	})
	return p
}

// killClient wraps the TCP LAM client for the child so a test can
// SIGKILL the server at exact 2PC phase boundaries — the process-level
// analog of the netfault sever wrappers.
type killClient struct {
	lam.Client
	proc *Proc
	// killBeforePrepare crashes the server before the vote request can
	// reach it; killAfterPrepare crashes it after the vote is durable and
	// acknowledged but before any decision arrives; killAfterCommit lets
	// the commit succeed server-side, then crashes and reports a lost
	// reply.
	killBeforePrepare atomic.Bool
	killAfterPrepare  atomic.Bool
	killAfterCommit   atomic.Bool
}

func (c *killClient) Open(ctx context.Context, db string) (lam.Session, error) {
	s, err := c.Client.Open(ctx, db)
	if err != nil {
		return nil, err
	}
	return &killSession{Session: s, c: c}, nil
}

type killSession struct {
	lam.Session
	c *killClient
}

func (s *killSession) Prepare(ctx context.Context) error {
	if s.c.killBeforePrepare.Load() {
		s.c.killBeforePrepare.Store(false)
		_ = s.c.proc.Kill()
	}
	err := s.Session.Prepare(ctx)
	if err == nil && s.c.killAfterPrepare.Load() {
		s.c.killAfterPrepare.Store(false)
		_ = s.c.proc.Kill()
	}
	return err
}

func (s *killSession) Commit(ctx context.Context) error {
	err := s.Session.Commit(ctx)
	if err == nil && s.c.killAfterCommit.Load() {
		s.c.killAfterCommit.Store(false)
		_ = s.c.proc.Kill()
		return fmt.Errorf("chaos: commit reply lost in crash: %w", syscall.ECONNRESET)
	}
	return err
}

// RecoveryInfo delegates so the engine's in-doubt machinery sees the
// real transport session behind the wrapper.
func (s *killSession) RecoveryInfo() (string, int64) {
	return s.Session.(lam.Recoverable).RecoveryInfo()
}

// chaosFederation builds a journaled two-site federation: continental
// in-process (a plain TCP LAM in the parent), united in the chaos child
// behind a killClient.
func chaosFederation(t *testing.T, p *Proc) (*core.Federation, *ldbms.Server, *killClient) {
	t.Helper()
	cont := ldbms.NewServer("svc_cont", ldbms.ProfileOracleLike(), 1)
	if err := cont.CreateDatabase("continental"); err != nil {
		t.Fatal(err)
	}
	sess, err := cont.OpenSession("continental")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"CREATE TABLE flights (flnu INTEGER, source CHAR(20), destination CHAR(20), rate FLOAT)",
		"INSERT INTO flights VALUES (100, 'Houston', 'San Antonio', 100.0)",
	} {
		if _, err := sess.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	sess.Commit()
	sess.Close()
	contSrv, err := lam.Serve("127.0.0.1:0", cont)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { contSrv.Close() })

	fed := core.New()
	fed.SetRecovery(lam.RetryPolicy{Attempts: 4, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 100 * time.Millisecond}, time.Second)
	inner, err := lam.DialWith(bg, p.Addr(), lam.DialOptions{
		CallTimeout: 2 * time.Second,
		Retry:       lam.RetryPolicy{Attempts: 1, BaseDelay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	kc := &killClient{Client: inner, proc: p}
	fed.RegisterClient(p.Addr(), kc)

	setup := fmt.Sprintf(`
INCORPORATE SERVICE svc_cont SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
INCORPORATE SERVICE svc_unit SITE '%s' CONNECTMODE CONNECT COMMITMODE NOCOMMIT;
IMPORT DATABASE continental FROM SERVICE svc_cont;
IMPORT DATABASE united FROM SERVICE svc_unit;
`, contSrv.Addr(), p.Addr())
	if _, err := fed.ExecScript(setup); err != nil {
		t.Fatal(err)
	}

	j, err := mtlog.Open(filepath.Join(t.TempDir(), "mt.journal"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	fed.SetJournal(j)
	return fed, cont, kc
}

const vitalUpdate = `
USE continental VITAL united VITAL
UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston'
`

// tcpRate reads united's flight 300 rate through a fresh TCP client —
// the ground truth of what the participant actually holds.
func tcpRate(t *testing.T, addr string) float64 {
	t.Helper()
	c, err := lam.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open(bg, "united")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Exec(bg, "SELECT rates FROM flight WHERE fn = 300")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("united flight rows = %v, want exactly one (no duplicated effects)", res.Rows)
	}
	f, _ := res.Rows[0][0].AsFloat()
	return f
}

func contRate(t *testing.T, cont *ldbms.Server) float64 {
	t.Helper()
	sess, err := cont.OpenSession("continental")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Exec("SELECT rate FROM flights WHERE flnu = 100")
	if err != nil {
		t.Fatal(err)
	}
	f, _ := res.Rows[0][0].AsFloat()
	return f
}

func waitChildJournalEmpty(t *testing.T, p *Proc) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		sessions, err := p.JournalSessions()
		if err != nil {
			t.Fatal(err)
		}
		live := 0
		for _, s := range sessions {
			if !s.Acked {
				live++
			}
		}
		if live == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("child journal never drained; sessions = %+v", sessions)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestKillAfterPreparedRecoversLoggedCommit is the acceptance scenario:
// the united LAM is SIGKILLed after its PREPARED vote is durable and on
// the wire but before any decision arrives. The unit ends Unresolved;
// the child restarts on the same journal, re-materializes the in-doubt
// session, and the coordinator's Recover drives it to the journaled
// COMMIT — with zero lost or duplicated effects in the final table.
func TestKillAfterPreparedRecoversLoggedCommit(t *testing.T) {
	p := launchChild(t, 1)
	fed, cont, kc := chaosFederation(t, p)
	kc.killAfterPrepare.Store(true)

	results, err := fed.ExecScript(vitalUpdate)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != core.StateUnresolved {
		t.Fatalf("state = %s, want unresolved while the participant is down (tasks %v)",
			sync.State, sync.TaskStates)
	}
	if len(sync.Unresolved) != 1 || !sync.Unresolved[0].Commit {
		t.Fatalf("unresolved = %+v, want the united participant with a commit decision",
			sync.Unresolved)
	}
	// Continental already committed its half: the decision was logged.
	if f := contRate(t, cont); f < 109.9 || f > 110.1 {
		t.Fatalf("continental rate = %v, want 110", f)
	}

	// The participant comes back from the crash on the same journal.
	if err := p.Restart(); err != nil {
		t.Fatal(err)
	}
	rep, err := fed.Recover(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Resolved) != 1 || !rep.Resolved[0].Commit {
		t.Fatalf("resolved = %+v, want united driven to commit", rep.Resolved)
	}
	if len(rep.Unreachable) != 0 {
		t.Fatalf("unreachable = %+v", rep.Unreachable)
	}
	// Exactly once: 120 * 1.1, not 120 (lost) and not 145.2 (doubled).
	if f := tcpRate(t, p.Addr()); f < 131.9 || f > 132.1 {
		t.Fatalf("united rate after recovery = %v, want 132", f)
	}
	// Both journals drain: the coordinator compacts its multitransaction,
	// the END acknowledgment lets the participant compact its sessions.
	states, err := fed.Journal().States()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 0 {
		t.Fatalf("coordinator journal still holds %d multitransactions", len(states))
	}
	waitChildJournalEmpty(t, p)
	// Idempotent: nothing left for a second pass.
	rep2, err := fed.Recover(bg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Multitransactions != 0 || len(rep2.Resolved) != 0 {
		t.Fatalf("second recovery pass not a no-op: %+v", rep2)
	}
}

// TestKillAfterCommitReplyLost: the participant commits, then crashes
// before the coordinator sees the reply. The restarted child re-applies
// the committed effects from its journal and answers the retrying
// coordinator from the durable tombstone — never re-executing.
func TestKillAfterCommitReplyLost(t *testing.T) {
	p := launchChild(t, 1)
	fed, _, kc := chaosFederation(t, p)
	kc.killAfterCommit.Store(true)

	results, err := fed.ExecScript(vitalUpdate)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != core.StateUnresolved {
		t.Fatalf("state = %s, want unresolved after the lost reply (tasks %v)",
			sync.State, sync.TaskStates)
	}

	if err := p.Restart(); err != nil {
		t.Fatal(err)
	}
	rep, err := fed.Recover(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Resolved) != 1 || !rep.Resolved[0].Commit {
		t.Fatalf("resolved = %+v, want united answered committed", rep.Resolved)
	}
	// The effects survived the crash exactly once — the tombstone, not a
	// re-execution, answered the coordinator.
	if f := tcpRate(t, p.Addr()); f < 131.9 || f > 132.1 {
		t.Fatalf("united rate = %v, want 132 (exactly once)", f)
	}
	waitChildJournalEmpty(t, p)
}

// TestKillBeforePrepareResolvesThroughRestart: the crash lands before
// the vote, so nothing was promised — presumed abort. The engine's own
// in-doubt loop keeps retrying through connection-refused while the
// participant restarts in the background, and terminates the unit as
// aborted from the participant's definite no-record answer.
func TestKillBeforePrepareResolvesThroughRestart(t *testing.T) {
	p := launchChild(t, 1)
	fed, cont, kc := chaosFederation(t, p)
	// Generous pacing: the loop must outlive the ~300ms restart window.
	fed.SetRecovery(lam.RetryPolicy{Attempts: 40, BaseDelay: 50 * time.Millisecond,
		MaxDelay: 100 * time.Millisecond}, time.Second)
	kc.killBeforePrepare.Store(true)

	go func() {
		time.Sleep(300 * time.Millisecond)
		_ = p.Restart()
	}()
	results, err := fed.ExecScript(vitalUpdate)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != core.StateAborted {
		t.Fatalf("state = %s, want aborted (tasks %v, unresolved %+v)",
			sync.State, sync.TaskStates, sync.Unresolved)
	}
	if len(sync.Unresolved) != 0 {
		t.Fatalf("unresolved = %+v, want none — the loop resolved through the restart",
			sync.Unresolved)
	}
	// Neither site kept any effect.
	if f := contRate(t, cont); f < 99.99 || f > 100.01 {
		t.Fatalf("continental rate = %v, want the seed 100", f)
	}
	if f := tcpRate(t, p.Addr()); f < 119.9 || f > 120.1 {
		t.Fatalf("united rate = %v, want the seed 120", f)
	}
}

// TestCleanRunAcksAndCompacts: with no faults at all, the
// end-of-multitransaction acknowledgment round lets the participant
// forget immediately — its journal holds nothing once the unit ends.
func TestCleanRunAcksAndCompacts(t *testing.T) {
	p := launchChild(t, 1)
	fed, cont, _ := chaosFederation(t, p)

	results, err := fed.ExecScript(vitalUpdate)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != core.StateSuccess {
		t.Fatalf("state = %s, want success (tasks %v)", sync.State, sync.TaskStates)
	}
	if f := tcpRate(t, p.Addr()); f < 131.9 || f > 132.1 {
		t.Fatalf("united rate = %v, want 132", f)
	}
	if f := contRate(t, cont); f < 109.9 || f > 110.1 {
		t.Fatalf("continental rate = %v, want 110", f)
	}
	waitChildJournalEmpty(t, p)
	// A restart after a fully acknowledged unit finds nothing to replay
	// and seeds the table fresh — no ghost effects.
	if err := p.Restart(); err != nil {
		t.Fatal(err)
	}
	if f := tcpRate(t, p.Addr()); f < 119.9 || f > 120.1 {
		t.Fatalf("united rate after clean restart = %v, want the boot seed 120", f)
	}
}
