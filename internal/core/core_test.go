package core

import (
	"errors"
	"strings"
	"testing"

	"msql/internal/dol"
	"msql/internal/ldbms"
	"msql/internal/translate"
)

// E1: the Section 2 multiple query produces a multitable of two tables
// with heterogeneity resolved.
func TestE1MultipleSelect(t *testing.T) {
	f := paperFederation(t, false)
	results, err := f.ExecScript(`
USE avis national
LET car.type.status BE cars.cartype.carst
                       vehicle.vty.vstat
SELECT %code, type, ~rate
FROM car
WHERE status = 'available'
`)
	if err != nil {
		t.Fatal(err)
	}
	var sel *Result
	for _, r := range results {
		if r.Kind == KindSelect {
			sel = r
		}
	}
	if sel == nil || sel.Multitable == nil {
		t.Fatal("no select result")
	}
	mt := sel.Multitable
	if len(mt.Tables) != 2 {
		t.Fatalf("multitable has %d tables", len(mt.Tables))
	}
	byDB := map[string][][]string{}
	for _, tab := range mt.Tables {
		var rows [][]string
		for _, r := range tab.Rows {
			var cells []string
			for _, v := range r {
				cells = append(cells, v.String())
			}
			rows = append(rows, cells)
		}
		byDB[tab.Database] = rows
	}
	// avis: car 1 (suv, 49.5) is available.
	if len(byDB["avis"]) != 1 || byDB["avis"][0][0] != "1" || byDB["avis"][0][1] != "suv" || byDB["avis"][0][2] != "49.5" {
		t.Fatalf("avis rows = %v", byDB["avis"])
	}
	// national: vehicle 11 (sedan), rate is NULL (schema heterogeneity).
	if len(byDB["national"]) != 1 || byDB["national"][0][0] != "11" || byDB["national"][0][2] != "NULL" {
		t.Fatalf("national rows = %v", byDB["national"])
	}
	// Flattening works.
	flat, err := mt.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Rows) != 2 || flat.Columns[0].Name != "origin" {
		t.Fatalf("flat = %+v", flat)
	}
}

// E2: the Section 3.2 vital update succeeds on the happy path and rolls
// back the whole vital set on failure.
func TestE2VitalUpdateSuccess(t *testing.T) {
	f := paperFederation(t, false)
	results, err := f.ExecScript(`
USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
`)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.Kind != KindSync || sync.State != StateSuccess || sync.Status != translate.StatusSuccess {
		t.Fatalf("sync = %+v", sync)
	}
	if got := localRate(t, f, "svc_cont", "continental", "SELECT rate FROM flights WHERE flnu = 100"); got < 109.9 || got > 110.1 {
		t.Fatalf("continental rate = %v", got)
	}
	if got := localRate(t, f, "svc_unit", "united", "SELECT rates FROM flight WHERE fn = 300"); got < 131.9 || got > 132.1 {
		t.Fatalf("united rate = %v", got)
	}
	if sync.RowsAffected["continental"] != 1 || sync.RowsAffected["united"] != 1 {
		t.Fatalf("rows affected = %v", sync.RowsAffected)
	}
}

func TestE2VitalUpdateFailureAbortsVitalSet(t *testing.T) {
	f := paperFederation(t, false)
	f.Server("svc_unit").Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "united"})
	results, err := f.ExecScript(`
USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
`)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != StateAborted || sync.Status != translate.StatusAborted {
		t.Fatalf("sync = state %s status %d", sync.State, sync.Status)
	}
	if sync.TaskStates["continental"] != dol.StatusAborted || sync.TaskStates["united"] != dol.StatusAborted {
		t.Fatalf("task states = %v", sync.TaskStates)
	}
	// Vital databases untouched.
	if got := localRate(t, f, "svc_cont", "continental", "SELECT rate FROM flights WHERE flnu = 100"); got != 100 {
		t.Fatalf("continental rate = %v", got)
	}
	// Delta (NON VITAL) committed regardless.
	if sync.TaskStates["delta"] != dol.StatusCommitted {
		t.Fatalf("delta = %s", sync.TaskStates["delta"])
	}
	if got := localRate(t, f, "svc_delta", "delta", "SELECT rate FROM flight WHERE fnu = 200"); got < 120.9 || got > 121.1 {
		t.Fatalf("delta rate = %v (non-vital update must stand)", got)
	}
}

// E3: compensation — all four execution paths of Section 3.3.
const e3Script = `
USE continental VITAL united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
COMP continental
UPDATE flights
SET rate = rate / 1.1
WHERE source = 'Houston' AND destination = 'San Antonio'
`

func TestE3PathBothSucceed(t *testing.T) {
	f := paperFederation(t, true) // continental autocommit-only
	results, err := f.ExecScript(e3Script)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != StateSuccess {
		t.Fatalf("state = %s", sync.State)
	}
	if got := localRate(t, f, "svc_cont", "continental", "SELECT rate FROM flights WHERE flnu = 100"); got < 109.9 || got > 110.1 {
		t.Fatalf("continental rate = %v", got)
	}
}

func TestE3PathContinentalCommittedUnitedAborted(t *testing.T) {
	f := paperFederation(t, true)
	f.Server("svc_unit").Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "united"})
	results, err := f.ExecScript(e3Script)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != StateAborted {
		t.Fatalf("state = %s", sync.State)
	}
	if len(sync.Compensated) != 1 || sync.Compensated[0] != "continental" {
		t.Fatalf("compensated = %v", sync.Compensated)
	}
	// Compensation restored continental's fare.
	if got := localRate(t, f, "svc_cont", "continental", "SELECT rate FROM flights WHERE flnu = 100"); got < 99.99 || got > 100.01 {
		t.Fatalf("continental rate = %v", got)
	}
	if got := localRate(t, f, "svc_unit", "united", "SELECT rates FROM flight WHERE fn = 300"); got != 120 {
		t.Fatalf("united rate = %v", got)
	}
}

func TestE3PathContinentalAbortedUnitedPrepared(t *testing.T) {
	f := paperFederation(t, true)
	f.Server("svc_cont").Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "continental"})
	results, err := f.ExecScript(e3Script)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != StateAborted {
		t.Fatalf("state = %s", sync.State)
	}
	if len(sync.Compensated) != 0 {
		t.Fatalf("nothing to compensate, got %v", sync.Compensated)
	}
	// United rolled back.
	if got := localRate(t, f, "svc_unit", "united", "SELECT rates FROM flight WHERE fn = 300"); got != 120 {
		t.Fatalf("united rate = %v", got)
	}
}

func TestE3PathBothAborted(t *testing.T) {
	f := paperFederation(t, true)
	f.Server("svc_cont").Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "continental"})
	f.Server("svc_unit").Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "united"})
	results, err := f.ExecScript(e3Script)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != StateAborted || len(sync.Compensated) != 0 {
		t.Fatalf("sync = %+v", sync)
	}
	if got := localRate(t, f, "svc_cont", "continental", "SELECT rate FROM flights WHERE flnu = 100"); got != 100 {
		t.Fatalf("continental rate = %v", got)
	}
}

func TestVitalWithoutCompRefused(t *testing.T) {
	f := paperFederation(t, true)
	_, err := f.ExecScript(`
USE continental VITAL united VITAL
UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston'
`)
	if !errors.Is(err, translate.ErrVitalNeedsComp) {
		t.Fatalf("err = %v", err)
	}
}

// E4: the travel-agent multitransaction (§3.4).
const e4Script = `
BEGIN MULTITRANSACTION
  USE continental delta
  LET fitab.snu.sstat.clname BE
      f838.seatnu.seatstatus.clientname
      fnu747.snu.sstat.passname
  UPDATE fitab
  SET sstat = 'TAKEN', clname = 'wenders'
  WHERE snu = ( SELECT MIN(snu) FROM fitab WHERE sstat = 'FREE');
  USE avis national
  LET cartab.ccode.cstat BE
      cars.code.carst
      vehicle.vcode.vstat
  UPDATE cartab
  SET cstat = 'TAKEN', client = 'wenders'
  WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'FREE');
  COMMIT
    continental AND national
    delta AND avis
END MULTITRANSACTION
`

func TestE4MultiTxPreferredState(t *testing.T) {
	f := paperFederation(t, false)
	results, err := f.ExecScript(e4Script)
	if err != nil {
		t.Fatal(err)
	}
	mtx := results[len(results)-1]
	if mtx.Kind != KindMultiTx {
		t.Fatalf("kind = %v", mtx.Kind)
	}
	if mtx.Status != 0 || len(mtx.AchievedState) != 2 {
		t.Fatalf("status = %d achieved = %v", mtx.Status, mtx.AchievedState)
	}
	if mtx.AchievedState[0] != "continental" || mtx.AchievedState[1] != "national" {
		t.Fatalf("achieved = %v", mtx.AchievedState)
	}
	// Continental seat taken, national vehicle taken.
	sess, _ := f.Server("svc_cont").OpenSession("continental")
	res, err := sess.Exec("SELECT clientname FROM f838 WHERE seatnu = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].S != "wenders" {
		t.Fatalf("continental seat client = %v", res.Rows[0][0])
	}
	sess.Close()
	// Delta and avis rolled back: delta seat 1 still FREE.
	sess2, _ := f.Server("svc_delta").OpenSession("delta")
	res, err = sess2.Exec("SELECT sstat FROM fnu747 WHERE snu = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].S != "FREE" {
		t.Fatalf("delta seat = %v (excluded member must roll back)", res.Rows[0][0])
	}
	sess2.Close()
	sess3, _ := f.Server("svc_avis").OpenSession("avis")
	res, err = sess3.Exec("SELECT carst FROM cars WHERE code = 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].S != "FREE" {
		t.Fatalf("avis car = %v", res.Rows[0][0])
	}
	sess3.Close()
}

func TestE4MultiTxFallbackState(t *testing.T) {
	f := paperFederation(t, false)
	// Make the preferred state unreachable: national fails.
	f.Server("svc_natl").Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "national"})
	results, err := f.ExecScript(e4Script)
	if err != nil {
		t.Fatal(err)
	}
	mtx := results[len(results)-1]
	if mtx.Status != 1 {
		t.Fatalf("status = %d (want fallback state 1)", mtx.Status)
	}
	if len(mtx.AchievedState) != 2 || mtx.AchievedState[0] != "delta" || mtx.AchievedState[1] != "avis" {
		t.Fatalf("achieved = %v", mtx.AchievedState)
	}
	// Delta seat taken, continental rolled back.
	sess, _ := f.Server("svc_delta").OpenSession("delta")
	res, _ := sess.Exec("SELECT sstat FROM fnu747 WHERE snu = 1")
	if res.Rows[0][0].S != "TAKEN" {
		t.Fatalf("delta seat = %v", res.Rows[0][0])
	}
	sess.Close()
	sess2, _ := f.Server("svc_cont").OpenSession("continental")
	res, _ = sess2.Exec("SELECT seatstatus FROM f838 WHERE seatnu = 1")
	if res.Rows[0][0].S != "FREE" {
		t.Fatalf("continental seat = %v", res.Rows[0][0])
	}
	sess2.Close()
}

func TestE4MultiTxTotalFailure(t *testing.T) {
	f := paperFederation(t, false)
	// Both car rental databases fail: neither acceptable state reachable.
	f.Server("svc_natl").Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "national"})
	f.Server("svc_avis").Faults().Add(ldbms.FaultRule{Op: ldbms.FaultExec, Database: "avis"})
	results, err := f.ExecScript(e4Script)
	if err != nil {
		t.Fatal(err)
	}
	mtx := results[len(results)-1]
	if mtx.Status != 2 || mtx.AchievedState != nil || mtx.State != StateAborted {
		t.Fatalf("mtx = status %d achieved %v state %s", mtx.Status, mtx.AchievedState, mtx.State)
	}
	// Everything rolled back.
	sess, _ := f.Server("svc_cont").OpenSession("continental")
	res, _ := sess.Exec("SELECT seatstatus FROM f838 WHERE seatnu = 1")
	if res.Rows[0][0].S != "FREE" {
		t.Fatalf("continental seat = %v", res.Rows[0][0])
	}
	sess.Close()
}

func TestGlobalCrossDatabaseJoin(t *testing.T) {
	f := paperFederation(t, false)
	results, err := f.ExecScript(`
USE continental united
SELECT c.flnu, u.fn
FROM continental.flights c, united.flight u
WHERE c.rate < u.rates
`)
	if err != nil {
		t.Fatal(err)
	}
	sel := results[len(results)-1]
	if sel.Multitable == nil || len(sel.Multitable.Tables) != 1 {
		t.Fatalf("multitable = %+v", sel.Multitable)
	}
	rows := sel.Multitable.Tables[0].Rows
	// continental rates 100, 80; united rate 120 -> both flights qualify.
	if len(rows) != 2 {
		t.Fatalf("join rows = %v", rows)
	}
	// Temp tables cleaned up.
	sess, _ := f.Server("svc_cont").OpenSession("continental")
	defer sess.Close()
	if _, err := sess.Exec("SELECT * FROM mtmp_united"); err == nil {
		t.Fatal("temp table survived")
	}
}

func TestGlobalInsertTransfer(t *testing.T) {
	f := paperFederation(t, false)
	_, err := f.ExecScript(`
USE avis national
INSERT INTO avis.cars (code, cartype)
SELECT v.vcode, v.vty FROM national.vehicle v WHERE v.vstat = 'FREE'
`)
	if err != nil {
		t.Fatal(err)
	}
	sess, _ := f.Server("svc_avis").OpenSession("avis")
	defer sess.Close()
	res, err := sess.Exec("SELECT cartype FROM cars WHERE code = 12")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "truck" {
		t.Fatalf("transferred rows = %v", res.Rows)
	}
}

func TestExplicitCommitAndRollback(t *testing.T) {
	f := paperFederation(t, false)
	// ROLLBACK undoes the vital update.
	results, err := f.ExecScript(`
USE avis VITAL
UPDATE cars SET rate = rate * 2 WHERE code = 1
ROLLBACK
`)
	if err != nil {
		t.Fatal(err)
	}
	last := results[len(results)-1]
	if last.State != StateAborted {
		t.Fatalf("state = %s", last.State)
	}
	if got := localRate(t, f, "svc_avis", "avis", "SELECT rate FROM cars WHERE code = 1"); got != 49.5 {
		t.Fatalf("rate = %v", got)
	}
	// COMMIT makes it durable.
	if _, err := f.ExecScript(`
USE avis VITAL
UPDATE cars SET rate = rate * 2 WHERE code = 1
COMMIT
`); err != nil {
		t.Fatal(err)
	}
	if got := localRate(t, f, "svc_avis", "avis", "SELECT rate FROM cars WHERE code = 1"); got != 99 {
		t.Fatalf("rate = %v", got)
	}
}

func TestScopeChangeIsSyncPoint(t *testing.T) {
	f := paperFederation(t, false)
	results, err := f.ExecScript(`
USE avis VITAL
UPDATE cars SET rate = rate + 1 WHERE code = 1
USE national
SELECT vcode FROM vehicle
`)
	if err != nil {
		t.Fatal(err)
	}
	// The USE national flushed the avis unit.
	var sawSync bool
	for _, r := range results {
		if r.Kind == KindSync && r.State == StateSuccess {
			sawSync = true
		}
	}
	if !sawSync {
		t.Fatal("scope change did not synchronize the unit")
	}
	if got := localRate(t, f, "svc_avis", "avis", "SELECT rate FROM cars WHERE code = 1"); got != 50.5 {
		t.Fatalf("rate = %v", got)
	}
}

func TestGDDMaintainedAfterDDL(t *testing.T) {
	f := paperFederation(t, false)
	_, err := f.ExecScript(`
USE avis
CREATE TABLE rentals (rid INTEGER, code INTEGER)
`)
	if err != nil {
		t.Fatal(err)
	}
	def, err := f.GDD.Table("avis", "rentals")
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Columns) != 2 || def.Columns[0].Name != "rid" {
		t.Fatalf("GDD def = %+v", def)
	}
	// And queryable through MSQL right away.
	if _, err := f.ExecScript("USE avis\nSELECT rid FROM rentals"); err != nil {
		t.Fatal(err)
	}
	// DROP removes it from the GDD.
	if _, err := f.ExecScript("USE avis\nDROP TABLE rentals"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.GDD.Table("avis", "rentals"); err == nil {
		t.Fatal("dropped table still in GDD")
	}
}

func TestCreateThenInsertInOneUnit(t *testing.T) {
	f := paperFederation(t, false)
	_, err := f.ExecScript(`
USE avis
CREATE TABLE rentals (rid INTEGER, code INTEGER)
INSERT INTO rentals (rid, code) VALUES (1, 3)
`)
	if err != nil {
		t.Fatal(err)
	}
	results, err := f.ExecScript("USE avis\nSELECT rid FROM rentals")
	if err != nil {
		t.Fatal(err)
	}
	sel := results[len(results)-1]
	if sel.Multitable.TotalRows() != 1 {
		t.Fatalf("rows = %d", sel.Multitable.TotalRows())
	}
}

func TestProvisionalDefDroppedOnFailure(t *testing.T) {
	f := paperFederation(t, false)
	// The CREATE's unit aborts (vital + injected fault): the provisional
	// GDD entry must disappear.
	f.Server("svc_avis").Faults().Add(ldbms.FaultRule{Op: ldbms.FaultPrepare, Database: "avis"})
	_, err := f.ExecScript(`
USE avis VITAL
CREATE TABLE ghost (gid INTEGER)
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.GDD.Table("avis", "ghost"); err == nil {
		t.Fatal("provisional definition survived an aborted unit")
	}
	// And in dry-run mode nothing sticks either.
	f.DryRun = true
	if _, err := f.ExecScript("USE avis\nCREATE TABLE ghost2 (gid INTEGER)"); err != nil {
		t.Fatal(err)
	}
	f.DryRun = false
	if _, err := f.GDD.Table("avis", "ghost2"); err == nil {
		t.Fatal("dry run left a GDD entry")
	}
}

func TestIngresLikeDDLQuirkVisibleThroughFederation(t *testing.T) {
	f := paperFederation(t, false)
	// united's service autocommits DDL (its AD record says CREATE
	// COMMIT): a VITAL CREATE cannot be held in the prepared state, so
	// the translator demands a COMP clause — the "subtle heterogeneities"
	// the per-command commit modes exist for.
	_, err := f.ExecScript(`
USE united VITAL
CREATE TABLE side (a INTEGER)
`)
	if !errors.Is(err, translate.ErrVitalNeedsComp) {
		t.Fatalf("err = %v, want ErrVitalNeedsComp", err)
	}
	// With compensation supplied the unit runs; the server commits the
	// DDL silently and the vital condition tests the committed state.
	results, err := f.ExecScript(`
USE united VITAL
CREATE TABLE side (a INTEGER)
COMP united DROP TABLE side
`)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != StateSuccess {
		t.Fatalf("state = %s", sync.State)
	}
	st := f.Server("svc_unit").Stats()
	if st.SilentCommits == 0 {
		t.Fatal("expected a silent commit from the Ingres-like DDL profile")
	}
	// A plain (NON VITAL) DDL statement needs no COMP.
	if _, err := f.ExecScript("USE united\nCREATE TABLE side2 (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
}

func TestIncorrectStateDetectedOnCommitFault(t *testing.T) {
	f := paperFederation(t, false)
	// Fault at commit time on united only: continental's commit succeeds,
	// united's fails after both prepared -> the "incorrect" execution the
	// paper warns about.
	f.Server("svc_unit").Faults().Add(ldbms.FaultRule{Op: ldbms.FaultCommit, Database: "united"})
	results, err := f.ExecScript(`
USE continental VITAL united VITAL
UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston'
`)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if sync.State != StateIncorrect {
		t.Fatalf("state = %s, want incorrect", sync.State)
	}
}

func TestSelectNeedsScope(t *testing.T) {
	f := paperFederation(t, false)
	_, err := f.ExecScript("SELECT code FROM cars")
	if !errors.Is(err, translate.ErrNoScope) {
		t.Fatalf("err = %v", err)
	}
}

func TestSkippedDatabasesReported(t *testing.T) {
	f := paperFederation(t, false)
	results, err := f.ExecScript(`
USE avis national
SELECT code FROM cars%
`)
	if err != nil {
		t.Fatal(err)
	}
	sel := results[len(results)-1]
	if len(sel.Skipped) != 1 || sel.Skipped[0].Entry.Name != "national" {
		t.Fatalf("skipped = %+v", sel.Skipped)
	}
}

func TestDryRunProducesDOLWithoutExecuting(t *testing.T) {
	f := paperFederation(t, false)
	f.DryRun = true
	results, err := f.ExecScript(`
USE continental VITAL delta united VITAL
UPDATE flight% SET rate% = rate% * 1.1 WHERE sour% = 'Houston' AND dest% = 'San Antonio'
`)
	if err != nil {
		t.Fatal(err)
	}
	sync := results[len(results)-1]
	if !strings.Contains(sync.DOL, "TASK T1 NOCOMMIT FOR continental") {
		t.Fatalf("DOL = %s", sync.DOL)
	}
	// No data changed.
	f.DryRun = false
	if got := localRate(t, f, "svc_cont", "continental", "SELECT rate FROM flights WHERE flnu = 100"); got != 100 {
		t.Fatalf("rate = %v", got)
	}
}

func TestUseCurrentExtendsScope(t *testing.T) {
	f := paperFederation(t, false)
	results, err := f.ExecScript(`
USE avis
USE CURRENT national
SELECT %code FROM car%
LET x BE y
`)
	// LET with single-component var is legal; the script just checks the
	// extended scope reaches both rental databases.
	if err != nil {
		t.Fatal(err)
	}
	var sel *Result
	for _, r := range results {
		if r.Kind == KindSelect {
			sel = r
		}
	}
	if sel == nil {
		t.Fatal("no select result")
	}
	// cars% matches avis only; but scope includes both, so one table plus
	// one skip.
	if len(sel.Multitable.Tables)+len(sel.Skipped) != 2 {
		t.Fatalf("tables = %d skipped = %d", len(sel.Multitable.Tables), len(sel.Skipped))
	}
}
